// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark wraps the corresponding internal/experiments function
// and prints the measured rows, so `go test -bench . -benchmem` reproduces
// the whole evaluation; cmd/nsbench runs the same experiments with more
// control. By default the multi-graph experiments use the four smaller
// graphs; set NS_BENCH_FULL=1 to sweep all seven (substantially slower,
// dominated by DepCache's redundant computation on wiki/twitter — which is
// the paper's own Table 3 story).
package neutronstar_test

import (
	"fmt"
	"os"
	"testing"

	"neutronstar/internal/dataset"
	"neutronstar/internal/experiments"
	"neutronstar/internal/nn"
)

// benchScale is the default experiment scale for benchmarks.
func benchScale() experiments.Scale {
	sc := experiments.Scale{
		Workers: 8,
		Epochs:  2,
		Graphs:  []string{"google", "pokec", "reddit", "livejournal"},
	}
	if os.Getenv("NS_BENCH_FULL") != "" {
		sc = experiments.DefaultScale()
	}
	return sc
}

func printRows(label string, rows []experiments.Row) {
	for _, r := range rows {
		fmt.Printf("%s: %s\n", label, r.Format())
	}
}

// BenchmarkTable2Datasets regenerates the dataset corpus (paper Table 2) and
// reports generation throughput.
func BenchmarkTable2Datasets(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		edges := 0
		for _, name := range append(dataset.BigGraphNames(), dataset.CitationNames()...) {
			ds, err := dataset.LoadByName(name)
			if err != nil {
				b.Fatal(err)
			}
			edges += ds.NumEdges()
		}
		b.ReportMetric(float64(edges), "edges")
	}
	for _, line := range experiments.Table2() {
		fmt.Println("table2: " + line)
	}
}

// BenchmarkFig2aGraphInputs: DepCache vs DepComm across graph inputs.
func BenchmarkFig2aGraphInputs(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		printRows("fig2a", experiments.Fig2a(sc))
	}
}

// BenchmarkFig2bHiddenSize: DepCache vs DepComm across hidden sizes.
func BenchmarkFig2bHiddenSize(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		printRows("fig2b", experiments.Fig2b(sc))
	}
}

// BenchmarkFig2cClusterEnv: DepCache vs DepComm across network profiles.
func BenchmarkFig2cClusterEnv(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		printRows("fig2c", experiments.Fig2c(sc))
	}
}

// BenchmarkFig9Ablation: raw engines plus the R/L/P optimisation stack.
func BenchmarkFig9Ablation(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9(sc)
		printRows("fig9", rows)
		var sum float64
		for _, r := range rows {
			sum += r.Values["speedup_RLP"]
		}
		b.ReportMetric(sum/float64(len(rows)), "mean_speedup_vs_depcache")
	}
}

// BenchmarkTable3CostBenefit: multi-epoch runtime plus the preprocessing
// (Algorithm 4) overhead.
func BenchmarkTable3CostBenefit(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(sc, 5)
		printRows("table3", rows)
		var worst float64
		for _, r := range rows {
			if p := r.Values["preprocess_pct"]; p > worst {
				worst = p
			}
		}
		b.ReportMetric(worst, "worst_preprocess_pct")
	}
}

// BenchmarkFig10Overall: the five systems across three models.
func BenchmarkFig10Overall(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	if os.Getenv("NS_BENCH_FULL") == "" {
		sc.Graphs = []string{"google", "reddit"} // 3 models x 5 systems is the big axis
	}
	for i := 0; i < b.N; i++ {
		printRows("fig10", experiments.Fig10(sc))
	}
}

// BenchmarkFig11Ratio: forced cache/communicate ratio sweep.
func BenchmarkFig11Ratio(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		printRows("fig11/gcn-reddit", experiments.Fig11(sc, nn.GCN, "reddit"))
		if os.Getenv("NS_BENCH_FULL") != "" {
			printRows("fig11/gat-orkut", experiments.Fig11(sc, nn.GAT, "orkut"))
		}
	}
}

// BenchmarkFig12Scaling: cluster sizes 1..16.
func BenchmarkFig12Scaling(b *testing.B) {
	b.ReportAllocs()
	sizes := []int{1, 2, 4, 8}
	graphs := []string{"pokec", "reddit"}
	if os.Getenv("NS_BENCH_FULL") != "" {
		sizes = []int{1, 2, 4, 8, 16}
		graphs = []string{"pokec", "reddit", "orkut", "wiki"}
	}
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			printRows("fig12", experiments.Fig12(g, sizes, 2))
		}
	}
}

// BenchmarkFig13Utilization: accelerator/host/network utilisation per system.
func BenchmarkFig13Utilization(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	graph := "pokec"
	if os.Getenv("NS_BENCH_FULL") != "" {
		graph = "orkut" // the paper's Figure 13 workload
	}
	for i := 0; i < b.N; i++ {
		for _, rep := range experiments.Fig13(sc, graph) {
			fmt.Printf("fig13: %-12s accel_util=%.2f host_util=%.2f sample_util=%.2f net_peak=%.1fMB/s net_cv=%.2f recv=%.1fMB\n",
				rep.System, rep.AcceleratorUtil, rep.HostUtil, rep.SampleUtil,
				rep.NetPeakMBs, rep.NetSmoothnessCV, rep.TotalRecvMB)
		}
	}
}

// BenchmarkFig14Accuracy: time-to-accuracy for the four training strategies.
func BenchmarkFig14Accuracy(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	maxEpochs, evalEvery := 25, 5
	if os.Getenv("NS_BENCH_FULL") != "" {
		maxEpochs, evalEvery = 45, 5
	}
	for i := 0; i < b.N; i++ {
		for _, c := range experiments.Fig14(sc, maxEpochs, evalEvery, 0.95) {
			fmt.Printf("fig14: %-18s best=%.4f time_to_95%%=%.1fs points=%d\n",
				c.System, c.Best, c.TimeToTarget, len(c.Points))
			for _, p := range c.Points {
				fmt.Printf("fig14:     t=%6.1fs epoch=%3d acc=%.4f\n", p.Seconds, p.Epoch, p.Accuracy)
			}
		}
	}
}

// BenchmarkFig15Partitioners: DepComm vs Hybrid under three partitioners.
func BenchmarkFig15Partitioners(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	sc.Graphs = []string{"reddit", "livejournal"}
	if os.Getenv("NS_BENCH_FULL") != "" {
		sc.Graphs = []string{"reddit", "orkut", "wiki"} // the paper's set
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig15(sc)
		printRows("fig15", rows)
		var minSp float64 = 1e9
		for _, r := range rows {
			if s := r.Values["hybrid_speedup"]; s < minSp {
				minSp = s
			}
		}
		b.ReportMetric(minSp, "min_hybrid_speedup")
	}
}

// BenchmarkTable4SharedMemory: shared-memory trainer vs distributed engines.
func BenchmarkTable4SharedMemory(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		printRows("table4", experiments.Table4(sc))
	}
}

// BenchmarkTable5SingleNode: single-worker engines on the small graphs.
func BenchmarkTable5SingleNode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		printRows("table5", experiments.Table5(2))
	}
}

// BenchmarkAblations toggles one engine mechanism at a time (complements
// Fig 9's cumulative stack): ring scheduling, lock-free enqueue,
// chunk-pipelined overlap, chunked vs broadcast transfer, all-reduce vs
// parameter server.
func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale()
	graph := "reddit"
	for i := 0; i < b.N; i++ {
		rows := experiments.Ablations(sc, graph)
		printRows("ablations", rows)
		for _, r := range rows {
			if r.Label == "chunk-overlap" {
				b.ReportMetric(r.Values["speedup"], "overlap_speedup")
			}
		}
	}
}
