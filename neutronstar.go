// Package neutronstar is a Go reproduction of "NeutronStar: Distributed GNN
// Training with Hybrid Dependency Management" (SIGMOD 2022): a distributed
// full-graph GNN training system that decides, per remote vertex dependency
// and per layer, whether to replicate the dependency's multi-hop
// neighborhood locally (DepCache) or to fetch its representation over the
// network every epoch (DepComm), using a probed cost model and a greedy
// partitioner (the paper's Algorithm 4).
//
// The "cluster" is simulated in-process: workers are goroutine groups that
// communicate exclusively through a message fabric with configurable
// bandwidth and latency, so the distributed algorithms — master–mirror
// exchange, ring scheduling, overlap, ring all-reduce — run for real, on one
// machine. All tensor math is genuine float32 computation; training
// converges and accuracy numbers are meaningful.
//
// Quick start:
//
//	ds, _ := neutronstar.LoadDataset("reddit")
//	s, _ := neutronstar.NewSession(ds, neutronstar.Config{
//		Workers: 8,
//		Engine:  neutronstar.EngineHybrid,
//		Model:   neutronstar.ModelGCN,
//	})
//	defer s.Close()
//	for _, ep := range s.Train(50) {
//		fmt.Printf("epoch %d loss %.4f (%.0f ms)\n", ep.Epoch, ep.Loss, ep.Millis)
//	}
//	fmt.Printf("test accuracy: %.2f%%\n", 100*s.Accuracy(neutronstar.SplitTest))
package neutronstar

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"neutronstar/internal/ckpt"
	"neutronstar/internal/comm"
	"neutronstar/internal/dataset"
	"neutronstar/internal/engine"
	"neutronstar/internal/graph"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
	"neutronstar/internal/obs"
	"neutronstar/internal/partition"
	"neutronstar/internal/serve"
	"neutronstar/internal/tensor"
)

// EngineKind selects the dependency-management strategy.
type EngineKind string

// The three engines of the paper, plus the tensor-parallel policy (DepTP,
// after NeutronTP), the replicated policy (DepRep, after CoFree-GNN), and the
// 3- and 4-way planners that mix them per layer. See POLICIES.md for the
// decision matrix.
const (
	EngineDepCache EngineKind = "depcache"
	EngineDepComm  EngineKind = "depcomm"
	EngineHybrid   EngineKind = "hybrid"
	EngineDepTP    EngineKind = "deptp"
	EngineHybrid3  EngineKind = "hybrid3"
	EngineDepRep   EngineKind = "deprep"
	EngineHybrid4  EngineKind = "hybrid4"
)

// ModelKind selects the GNN architecture.
type ModelKind string

// The three models of the paper's evaluation.
const (
	ModelGCN ModelKind = "gcn"
	ModelGIN ModelKind = "gin"
	ModelGAT ModelKind = "gat"
	// ModelSAGE is a GraphSAGE-style max-pooling model (extension beyond the
	// paper's three evaluated architectures).
	ModelSAGE ModelKind = "sage"
)

// NetworkKind names a simulated cluster fabric.
type NetworkKind string

// Cluster presets: Local is unthrottled in-memory, ECS approximates the
// paper's 6 Gb/s Aliyun cluster regime, IBV the 100 Gb/s InfiniBand cluster.
const (
	NetworkLocal NetworkKind = "local"
	NetworkECS   NetworkKind = "ecs"
	NetworkIBV   NetworkKind = "ibv"
)

// PartitionerKind names a graph partitioning algorithm.
type PartitionerKind string

// The partitioners evaluated in the paper's Figure 15.
const (
	PartitionChunk  PartitionerKind = "chunk"
	PartitionMetis  PartitionerKind = "metis"
	PartitionFennel PartitionerKind = "fennel"
)

// Split selects a labeled vertex subset for evaluation.
type Split int

// Dataset splits.
const (
	SplitTrain Split = iota
	SplitVal
	SplitTest
)

// Config configures a training session. Zero values select sensible
// defaults: 1 worker, Hybrid engine, GCN, unthrottled network, chunk
// partitioning, learning rate 0.01.
type Config struct {
	Workers     int
	Engine      EngineKind
	Model       ModelKind
	Network     NetworkKind
	Partitioner PartitionerKind
	// HiddenDim overrides the dataset's default hidden layer size; Layers
	// sets the propagation depth L (default 2, as in the paper).
	HiddenDim int
	Layers    int
	// Ring, LockFree and Overlap are the paper's R/L/P optimisations.
	Ring, LockFree, Overlap bool
	// TCP runs all worker communication over real loopback TCP sockets.
	TCP     bool
	LR      float64
	Dropout float64
	Seed    uint64
	// ClipNorm, when > 0, clips the global gradient norm before each step.
	ClipNorm float64
	// Schedule optionally decays the learning rate over epochs.
	Schedule LRSchedule
	// MemBudgetBytes caps per-worker replica storage for the Hybrid engine.
	MemBudgetBytes int64
	// RepBudgetBytes caps per-worker compressed replica storage for the
	// DepRep/Hybrid4 engines (0 = unlimited, matching MemBudgetBytes's
	// convention; use Hybrid3 to exclude replication entirely).
	RepBudgetBytes int64
	// RepQuant selects the replica feature storage format for DepRep/Hybrid4:
	// "off" (default, exact), "fp16" or "int8". Quantization applies only to
	// replica rows; owners keep full precision. See
	// partition.RequantizeErrorBound for the per-element error bounds.
	RepQuant string
	// Metrics enables utilisation collection (see Session.Metrics).
	Metrics bool
	// CkptDir enables checkpointing: a full training snapshot (parameters,
	// optimiser moments, RNG positions, loss history) is written into this
	// directory at every CkptEvery-th epoch barrier, and Resume restores the
	// newest one. Empty disables checkpointing.
	CkptDir string
	// CkptEvery is the checkpoint cadence in epochs (<=1 means every epoch).
	CkptEvery int
	// CkptRetain caps how many snapshots are kept (0 = default 3, negative =
	// unlimited).
	CkptRetain int
	// FaultSpec enables deterministic network fault injection, e.g.
	// "drop=0.05,jitter=1ms,seed=7" — see the grammar in internal/comm's
	// ParseFaultSpec. Faults degrade timing, never message content, so a
	// faulted run converges to the same losses as a clean one. Empty
	// disables injection.
	FaultSpec string
	// Pool recycles training-time tensor storage (tape intermediates,
	// gradients, message payloads) through a size-bucketed allocator whose
	// arenas drain back at every epoch barrier, cutting per-epoch heap
	// allocations sharply. Results are bit-identical either way: pooled
	// buffers are zeroed on checkout, so disabling the pool reproduces the
	// exact same training trajectory. Ignored under FaultSpec (retransmission
	// goroutines may hold payloads past the barrier).
	Pool bool
	// CritPath enables causal recording: every message carries a trace
	// context, each epoch closes with a critical-path extraction and
	// straggler indices (served on /critpath and via SlowEpochReport), and
	// the Chrome trace export gains cross-worker flow arrows.
	CritPath bool
	// WatchRules enables the anomaly watchdog, e.g.
	// "stall=30s,regress=1.5,straggler=3.0" or "default" — see the grammar
	// in internal/obs's ParseWatchRules. Alerts are logged, counted in the
	// metric registry and served on /healthwatch. Empty disables watching.
	WatchRules string
}

// LRSchedule selects a learning-rate decay policy. The zero value keeps a
// constant rate.
type LRSchedule struct {
	// Kind is "", "step" or "cosine".
	Kind string
	// StepSize/Gamma configure "step": LR *= Gamma every StepSize epochs.
	StepSize int
	Gamma    float64
	// MinLR/Span configure "cosine": anneal from LR to MinLR over Span epochs.
	MinLR float64
	Span  int
}

func (l LRSchedule) toScheduler(base float64) (nn.Scheduler, error) {
	switch l.Kind {
	case "":
		return nil, nil
	case "step":
		return nn.StepLR{Base: float32(base), StepSize: l.StepSize, Gamma: float32(l.Gamma)}, nil
	case "cosine":
		return nn.CosineLR{Base: float32(base), Min: float32(l.MinLR), Span: l.Span}, nil
	default:
		return nil, fmt.Errorf("neutronstar: unknown LR schedule %q", l.Kind)
	}
}

// Dataset is a graph with features, labels and train/val/test splits.
type Dataset struct {
	inner *dataset.Dataset
}

// LoadDataset generates one of the built-in synthetic datasets (see Names).
func LoadDataset(name string) (*Dataset, error) {
	ds, err := dataset.LoadByName(name)
	if err != nil {
		return nil, err
	}
	return &Dataset{inner: ds}, nil
}

// DatasetNames lists the built-in datasets (the paper's Table 2 corpus).
func DatasetNames() []string { return dataset.Names() }

// NewDataset builds a custom dataset from a directed edge list (edges[k] =
// [src, dst]; dst aggregates from src), per-vertex feature rows, integer
// class labels, and a train fraction in (0, 1]; the remainder is split
// evenly between validation and test.
func NewDataset(numVertices int, edges [][2]int, features [][]float32, labels []int, numClasses int, hiddenDim int, seed uint64) (*Dataset, error) {
	if len(features) != numVertices || len(labels) != numVertices {
		return nil, fmt.Errorf("neutronstar: %d vertices but %d feature rows, %d labels",
			numVertices, len(features), len(labels))
	}
	if numVertices == 0 {
		return nil, fmt.Errorf("neutronstar: empty dataset")
	}
	es := make([]graph.Edge, len(edges))
	for i, e := range edges {
		es[i] = graph.Edge{Src: int32(e[0]), Dst: int32(e[1])}
	}
	g, err := graph.FromEdges(numVertices, es)
	if err != nil {
		return nil, err
	}
	ftr := tensor.FromRows(features)
	lbl := make([]int32, numVertices)
	for i, l := range labels {
		if l < 0 || l >= numClasses {
			return nil, fmt.Errorf("neutronstar: label %d out of [0,%d)", l, numClasses)
		}
		lbl[i] = int32(l)
	}
	inner := &dataset.Dataset{
		Spec: dataset.Spec{
			Name: "custom", Vertices: numVertices,
			FeatureDim: ftr.Cols(), NumClasses: numClasses, HiddenDim: hiddenDim,
			Seed: seed,
		},
		Graph: g, Features: ftr, Labels: lbl,
	}
	rng := tensor.NewRNG(seed ^ 0x5EED)
	inner.TrainMask = make([]bool, numVertices)
	inner.ValMask = make([]bool, numVertices)
	inner.TestMask = make([]bool, numVertices)
	for i, p := range rng.Perm(numVertices) {
		switch {
		case i < numVertices*6/10:
			inner.TrainMask[p] = true
		case i < numVertices*8/10:
			inner.ValMask[p] = true
		default:
			inner.TestMask[p] = true
		}
	}
	return &Dataset{inner: inner}, nil
}

// NumVertices returns |V|.
func (d *Dataset) NumVertices() int { return d.inner.NumVertices() }

// NumEdges returns |E|.
func (d *Dataset) NumEdges() int { return d.inner.NumEdges() }

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.inner.Spec.Name }

// EpochResult reports one training epoch.
type EpochResult struct {
	Epoch  int
	Loss   float64
	Millis float64
	// CkptErr reports a failed checkpoint save at this epoch (training
	// continued; the previous snapshot is still intact on disk).
	CkptErr error
}

// Session is a live distributed training run.
type Session struct {
	ds    *Dataset
	eng   *engine.Engine
	coll  *metrics.Collector
	store *ckpt.Store
	rec   *obs.FlightRecorder
	watch *obs.Watchdog
	hist  *obs.History

	mu        sync.Mutex
	lastEpoch int
	lastLoss  float64
}

// NewSession builds the simulated cluster and plans dependency management
// per the configured engine. Close must be called when done.
func NewSession(ds *Dataset, cfg Config) (*Session, error) {
	opts, coll, err := toEngineOptions(cfg)
	if err != nil {
		return nil, err
	}
	var store *ckpt.Store
	if cfg.CkptDir != "" {
		store, err = ckpt.OpenStore(cfg.CkptDir)
		if err != nil {
			return nil, err
		}
		store.Retain = cfg.CkptRetain
		opts.Ckpt = &ckpt.Saver{Store: store, Every: cfg.CkptEvery}
	}
	// Every session records its epoch flights: the recorder's hot path is a
	// handful of atomic adds per stage switch, cheap enough to keep always-on.
	rec := obs.NewFlightRecorder()
	if cfg.CritPath {
		rec.EnableCausal()
	}
	opts.Recorder = rec
	var watch *obs.Watchdog
	if cfg.WatchRules != "" {
		rules, err := obs.ParseWatchRules(cfg.WatchRules)
		if err != nil {
			return nil, err
		}
		watch = obs.NewWatchdog(rules, nil, obs.Default())
	}
	// Every session keeps a metric history, sampled at each epoch barrier
	// (engine wiring below); the serving SLO rules evaluate on every sample.
	hist := obs.NewHistory(obs.Default(), 0)
	if watch != nil {
		hist.SetOnSample(func() { watch.EvaluateSLO(hist) })
	}
	opts.History = hist
	eng, err := engine.NewEngine(ds.inner, opts)
	if err != nil {
		return nil, err
	}
	return &Session{ds: ds, eng: eng, coll: coll, store: store, rec: rec, watch: watch, hist: hist}, nil
}

// Resume restores the newest snapshot in Config.CkptDir and reports whether
// one was loaded: (false, nil) means an empty checkpoint directory — the
// normal state of a fresh run. A snapshot taken under a different dataset,
// partitioning, model or seed is rejected with an error.
func (s *Session) Resume() (bool, error) {
	if s.store == nil {
		return false, fmt.Errorf("neutronstar: session has no checkpoint directory (set Config.CkptDir)")
	}
	snap, err := s.store.LoadLatest()
	if err != nil {
		return false, err
	}
	if snap == nil {
		return false, nil
	}
	if err := s.eng.Restore(snap); err != nil {
		return false, err
	}
	s.mu.Lock()
	s.lastEpoch = snap.Epoch
	if n := len(snap.History); n > 0 {
		s.lastLoss = snap.History[n-1].Loss
	}
	s.mu.Unlock()
	return true, nil
}

// Checkpoint forces an immediate snapshot save, regardless of the CkptEvery
// cadence. The session must not be training concurrently.
func (s *Session) Checkpoint() error {
	if s.store == nil {
		return fmt.Errorf("neutronstar: session has no checkpoint directory (set Config.CkptDir)")
	}
	_, err := s.store.Save(s.eng.Snapshot())
	return err
}

// History returns every completed epoch's result, including epochs restored
// from a snapshot — a resumed run reports a continuous loss curve.
func (s *Session) History() []EpochResult {
	hist := s.eng.History()
	out := make([]EpochResult, 0, len(hist))
	for _, st := range hist {
		out = append(out, EpochResult{
			Epoch: st.Epoch, Loss: st.Loss,
			Millis: float64(st.Duration.Microseconds()) / 1000,
		})
	}
	return out
}

func toEngineOptions(cfg Config) (engine.Options, *metrics.Collector, error) {
	var mode engine.Mode
	switch cfg.Engine {
	case EngineDepCache:
		mode = engine.DepCache
	case EngineDepComm:
		mode = engine.DepComm
	case EngineHybrid, "":
		mode = engine.Hybrid
	case EngineDepTP:
		mode = engine.DepTP
	case EngineHybrid3:
		mode = engine.Hybrid3
	case EngineDepRep:
		mode = engine.DepRep
	case EngineHybrid4:
		mode = engine.Hybrid4
	default:
		return engine.Options{}, nil, fmt.Errorf("neutronstar: unknown engine %q", cfg.Engine)
	}
	var profile comm.NetworkProfile
	switch cfg.Network {
	case NetworkLocal, "":
		profile = comm.ProfileLocal
	case NetworkECS:
		profile = comm.ProfileECS
	case NetworkIBV:
		profile = comm.ProfileIBV
	default:
		return engine.Options{}, nil, fmt.Errorf("neutronstar: unknown network %q", cfg.Network)
	}
	var model nn.ModelKind
	switch cfg.Model {
	case ModelGCN, "":
		model = nn.GCN
	case ModelGIN:
		model = nn.GIN
	case ModelGAT:
		model = nn.GAT
	case ModelSAGE:
		model = nn.SAGE
	default:
		return engine.Options{}, nil, fmt.Errorf("neutronstar: unknown model %q", cfg.Model)
	}
	var coll *metrics.Collector
	if cfg.Metrics {
		coll = metrics.NewCollector()
	}
	lr := cfg.LR
	if lr == 0 {
		lr = 0.01
	}
	sched, err := cfg.Schedule.toScheduler(lr)
	if err != nil {
		return engine.Options{}, nil, err
	}
	var fault *comm.FaultSpec
	if cfg.FaultSpec != "" {
		fault, err = comm.ParseFaultSpec(cfg.FaultSpec)
		if err != nil {
			return engine.Options{}, nil, err
		}
	}
	var pool *tensor.Pool
	if cfg.Pool {
		pool = tensor.NewPool()
	}
	repQuant, err := partition.ParseRepQuant(cfg.RepQuant)
	if err != nil {
		return engine.Options{}, nil, err
	}
	return engine.Options{
		Workers:     cfg.Workers,
		Mode:        mode,
		Model:       model,
		Hidden:      cfg.HiddenDim,
		Layers:      cfg.Layers,
		Partitioner: partition.Algorithm(cfg.Partitioner),
		Profile:     profile,
		Ring:        cfg.Ring,
		LockFree:    cfg.LockFree,
		Overlap:     cfg.Overlap,
		TCP:         cfg.TCP,
		LR:          float32(cfg.LR),
		Scheduler:   sched,
		ClipNorm:    cfg.ClipNorm,
		Dropout:     float32(cfg.Dropout),
		Seed:        cfg.Seed,
		MemBudget:   cfg.MemBudgetBytes,
		RepBudget:   cfg.RepBudgetBytes,
		RepQuant:    repQuant,
		Collector:   coll,
		Fault:       fault,
		Pool:        pool,
	}, coll, nil
}

// Train runs the given number of epochs and returns per-epoch results.
func (s *Session) Train(epochs int) []EpochResult {
	out := make([]EpochResult, 0, epochs)
	for i := 0; i < epochs; i++ {
		st := s.eng.RunEpoch()
		s.mu.Lock()
		s.lastEpoch, s.lastLoss = st.Epoch, st.Loss
		s.mu.Unlock()
		if s.watch != nil {
			if rec, ok := s.rec.Last(); ok {
				s.watch.ObserveEpoch(rec)
			}
		}
		out = append(out, EpochResult{
			Epoch: st.Epoch, Loss: st.Loss,
			Millis:  float64(st.Duration.Microseconds()) / 1000,
			CkptErr: st.CkptErr,
		})
	}
	return out
}

// Status is a point-in-time snapshot of a session, served as JSON by the
// debug server's /status endpoint.
type Status struct {
	Dataset string `json:"dataset"`
	Engine  string `json:"engine"`
	Workers int    `json:"workers"`
	// Epoch/Loss reflect the last completed epoch (zero before training).
	Epoch int     `json:"epoch"`
	Loss  float64 `json:"loss"`
	// Traffic totals require Config.Metrics; zero otherwise.
	BytesSent     int64 `json:"bytes_sent"`
	BytesReceived int64 `json:"bytes_received"`
	// ComputeBusy / CommBusy are per-worker busy fractions of the elapsed
	// run time (the live view of the paper's Figure 13 utilisation curves).
	ComputeBusy map[int]float64 `json:"compute_busy,omitempty"`
	CommBusy    map[int]float64 `json:"comm_busy,omitempty"`
}

// Status snapshots the session. Safe to call concurrently with Train — the
// debug server polls it from its own goroutines.
func (s *Session) Status() Status {
	s.mu.Lock()
	st := Status{Epoch: s.lastEpoch, Loss: s.lastLoss}
	s.mu.Unlock()
	st.Dataset = s.ds.Name()
	st.Engine = string(s.eng.Mode())
	st.Workers = s.eng.NumWorkers()
	if s.coll != nil {
		st.BytesSent = s.coll.BytesSent()
		st.BytesReceived = s.coll.BytesReceived()
		if elapsed := s.coll.Elapsed().Seconds(); elapsed > 0 {
			st.ComputeBusy = busyFractions(s.coll.BusyByWorker(metrics.Compute), elapsed)
			st.CommBusy = busyFractions(s.coll.BusyByWorker(metrics.Comm), elapsed)
		}
	}
	return st
}

func busyFractions(busy map[int]time.Duration, elapsed float64) map[int]float64 {
	if len(busy) == 0 {
		return nil
	}
	out := make(map[int]float64, len(busy))
	for w, d := range busy {
		out[w] = d.Seconds() / elapsed
	}
	return out
}

// TrainEpoch runs a single epoch.
func (s *Session) TrainEpoch() EpochResult {
	return s.Train(1)[0]
}

// Accuracy evaluates classification accuracy on the chosen split using a
// full-graph inference pass with the current parameters.
func (s *Session) Accuracy(split Split) float64 {
	switch split {
	case SplitTrain:
		return s.eng.Evaluate(s.ds.inner.TrainMask)
	case SplitVal:
		return s.eng.Evaluate(s.ds.inner.ValMask)
	default:
		return s.eng.Evaluate(s.ds.inner.TestMask)
	}
}

// CacheBytes returns the total replica storage the engine allocated — zero
// for pure DepComm, maximal for pure DepCache.
func (s *Session) CacheBytes() int64 { return s.eng.CacheBytes() }

// PreprocessMillis returns the hybrid dependency-partitioning time.
func (s *Session) PreprocessMillis() float64 {
	return float64(s.eng.PreprocessTime.Microseconds()) / 1000
}

// DependencySummary reports, per layer, how many remote dependencies were
// cached versus communicated across all workers.
func (s *Session) DependencySummary() (cached, communicated []int) {
	decs := s.eng.Decisions()
	if len(decs) == 0 {
		return nil, nil
	}
	L := len(decs[0].R)
	cached = make([]int, L)
	communicated = make([]int, L)
	for _, d := range decs {
		for l := 0; l < L; l++ {
			cached[l] += len(d.R[l])
			communicated[l] += len(d.C[l])
		}
	}
	return cached, communicated
}

// StageBreakdown is one stage's per-epoch mean attribution across the run:
// how many seconds the cluster spent in the stage each epoch, and how many
// bytes and messages the stage moved.
type StageBreakdown struct {
	Stage   string
	Seconds float64
	Bytes   int64
	Msgs    int64
}

// StageReport aggregates the flight recorder into per-stage per-epoch means.
// Empty before the first trained epoch. Stages that never accumulated time
// or traffic are omitted.
func (s *Session) StageReport() []StageBreakdown {
	recs := s.rec.Snapshot()
	if len(recs) == 0 {
		return nil
	}
	n := float64(len(recs))
	var out []StageBreakdown
	for _, stage := range obs.StageNames() {
		var sec float64
		var b, m int64
		for i := range recs {
			sec += recs[i].StageSeconds(stage)
			b += recs[i].StageBytes(stage)
			m += recs[i].StageMsgs(stage)
		}
		if sec == 0 && b == 0 && m == 0 {
			continue
		}
		out = append(out, StageBreakdown{Stage: stage, Seconds: sec / n,
			Bytes: int64(float64(b) / n), Msgs: int64(float64(m) / n)})
	}
	return out
}

// FlightTimeline returns the per-epoch flight records plus the cost-model
// validation as a JSON-marshalable value — the payload of the debug server's
// /epochs endpoint. Safe to call concurrently with Train.
func (s *Session) FlightTimeline() any {
	out := map[string]any{"epochs": s.rec.Snapshot()}
	if cr := s.eng.CostReport(); cr != nil {
		out["cost_report"] = cr
	}
	return out
}

// CritPathTimeline returns per-epoch critical paths and straggler indices as
// a JSON-marshalable value — the payload of the debug server's /critpath
// endpoint. Paths are non-null only under Config.CritPath; the straggler
// fields are always populated. Safe to call concurrently with Train.
func (s *Session) CritPathTimeline() any {
	type entry struct {
		Epoch          int           `json:"epoch"`
		WallSeconds    float64       `json:"wall_seconds"`
		StragglerIndex float64       `json:"straggler_index"`
		BarrierShare   float64       `json:"barrier_share"`
		SlowestWorker  int           `json:"slowest_worker"`
		CritPath       *obs.CritPath `json:"crit_path,omitempty"`
	}
	recs := s.rec.Snapshot()
	out := make([]entry, 0, len(recs))
	for _, r := range recs {
		out = append(out, entry{
			Epoch: r.Epoch, WallSeconds: r.WallSeconds,
			StragglerIndex: r.StragglerIndex, BarrierShare: r.BarrierShare,
			SlowestWorker: r.SlowestWorker, CritPath: r.CritPath,
		})
	}
	return map[string]any{"causal": s.rec.CausalEnabled(), "epochs": out}
}

// Watchdog returns the session's anomaly watchdog, or nil if
// Config.WatchRules was empty.
func (s *Session) Watchdog() *obs.Watchdog { return s.watch }

// MetricHistory returns the session's metric time-series ring buffer — the
// payload source of the debug server's /timeline endpoint. It is sampled at
// every epoch barrier; call its Start for periodic sampling between epochs
// (the session's Close stops it either way).
func (s *Session) MetricHistory() *obs.History { return s.hist }

// HealthWatch returns the watchdog's health report — the payload of the
// debug server's /healthwatch endpoint. Without a watchdog it reports
// healthy with no rules.
func (s *Session) HealthWatch() obs.HealthReport { return s.watch.Health() }

// SlowEpochReport renders the "why was this epoch slow" analysis as
// human-readable lines: the run's slowest epoch, its critical-path
// breakdown, and the straggler verdict. Empty before the first trained
// epoch; critical-path lines require Config.CritPath.
func (s *Session) SlowEpochReport() []string {
	recs := s.rec.Snapshot()
	if len(recs) == 0 {
		return nil
	}
	slow, wallSum := recs[0], 0.0
	for _, r := range recs {
		wallSum += r.WallSeconds
		if r.WallSeconds > slow.WallSeconds {
			slow = r
		}
	}
	mean := wallSum / float64(len(recs))
	lines := []string{fmt.Sprintf(
		"slowest epoch: %d at %.3fs (run mean %.3fs, %.2fx)",
		slow.Epoch, slow.WallSeconds, mean, slow.WallSeconds/mean)}
	if slow.Workers > 1 && slow.StragglerIndex > 0 {
		lines = append(lines, fmt.Sprintf(
			"straggler index %.2f (worker %d slowest, barrier share %.0f%%)",
			slow.StragglerIndex, slow.SlowestWorker, 100*slow.BarrierShare))
	}
	if p := slow.CritPath; p != nil {
		label, share := p.Dominant()
		lines = append(lines, fmt.Sprintf(
			"critical path: %d spans covering %.3fs of %.3fs wall; dominant %s at %.0f%%",
			len(p.Spans), p.CoveredSeconds, p.WallSeconds, label, 100*share))
		type kv struct {
			label string
			sec   float64
		}
		var parts []kv
		for l, sec := range p.Breakdown() {
			parts = append(parts, kv{l, sec})
		}
		sort.Slice(parts, func(i, j int) bool {
			if parts[i].sec != parts[j].sec {
				return parts[i].sec > parts[j].sec
			}
			return parts[i].label < parts[j].label
		})
		for i, part := range parts {
			if i == 3 {
				break // the top three explain the epoch; the rest is noise
			}
			lines = append(lines, fmt.Sprintf("  %-24s %.3fs (%.0f%%)",
				part.label, part.sec, 100*part.sec/p.CoveredSeconds))
		}
	}
	return lines
}

// CostSummary renders the cost-model validation (probed vs. fitted factors,
// per-layer residuals, counterfactual plan flips) as human-readable lines.
// Empty before the first trained epoch.
func (s *Session) CostSummary() []string {
	cr := s.eng.CostReport()
	if cr == nil {
		return nil
	}
	lines := []string{fmt.Sprintf(
		"cost model: probed Tv=%.3g Te=%.3g Tc=%.3g; fitted Tv=%.3g Te=%.3g Tc=%.3g (%s)",
		cr.Probed.Tv, cr.Probed.Te, cr.Probed.Tc,
		cr.Fitted.Tv, cr.Fitted.Te, cr.Fitted.Tc, cr.FitMethod)}
	for _, lr := range cr.Layers {
		lines = append(lines, fmt.Sprintf(
			"layer %d: compute meas/pred %.3g/%.3gs (res %+.0f%%), comm meas/pred %.3g/%.3gs (res %+.0f%%)",
			lr.Layer, lr.MeasComputeSeconds, lr.PredComputeSeconds, 100*lr.ComputeResidual,
			lr.MeasCommSeconds, lr.PredCommSeconds, 100*lr.CommResidual))
	}
	flip := fmt.Sprintf(
		"counterfactual (fitted costs): %d/%d decisions flip (%d cache->comm, %d comm->cache)",
		cr.Flips.Flips(), cr.Flips.Slots, cr.Flips.CacheToComm, cr.Flips.CommToCache)
	if cr.Flips.ToTP > 0 || cr.Flips.FromTP > 0 {
		flip += fmt.Sprintf(" + %d layers to TP, %d from TP", cr.Flips.ToTP, cr.Flips.FromTP)
	}
	if cr.Flips.ToRep > 0 || cr.Flips.FromRep > 0 {
		flip += fmt.Sprintf(" + %d layers to rep, %d from rep", cr.Flips.ToRep, cr.Flips.FromRep)
	}
	lines = append(lines, flip)
	return lines
}

// Metrics returns the utilisation collector, or nil if Config.Metrics was
// false.
func (s *Session) Metrics() *metrics.Collector { return s.coll }

// ReplicationFactor reports the vertex replication factor of the loaded plan,
// (|V| + replicas) / |V|, for engines that materialised a replication pass
// (DepRep); 1.0 otherwise.
func (s *Session) ReplicationFactor() float64 { return s.eng.ReplicationFactor() }

// Close tears down the simulated cluster and stops the metric history's
// periodic sampler.
func (s *Session) Close() {
	s.hist.Stop()
	s.eng.Close()
}

// ServeSource exposes the session's live parameters as a model source for a
// serve.Server: the version advances with every optimiser step (and on
// LoadModel/Restore), so a co-located serving path invalidates its embedding
// cache exactly when training moves the parameters.
func (s *Session) ServeSource() serve.Source { return serve.EngineSource(s.eng) }

// ServeConfig returns a serve.Config pre-filled with the session's graph,
// feature matrix and live model source. Callers set pool sizes, batching and
// cache budget before handing it to serve.New.
func (s *Session) ServeConfig() serve.Config {
	return serve.Config{
		Graph:    s.ds.inner.Graph,
		Features: s.ds.inner.Features,
		Source:   serve.EngineSource(s.eng),
	}
}

// SaveModel writes the current model parameters to w (gob encoding).
func (s *Session) SaveModel(w io.Writer) error { return s.eng.SaveModel(w) }

// LoadModel restores parameters previously saved with SaveModel into every
// worker replica. The checkpoint must match the session's architecture.
func (s *Session) LoadModel(r io.Reader) error { return s.eng.LoadModel(r) }

// SaveDataset writes a dataset to dir in the plain-text directory format
// (see internal/dataset: meta.txt, graph.txt, features.txt, labels.txt).
func SaveDataset(d *Dataset, dir string) error { return d.inner.Save(dir) }

// LoadDatasetDir reads a dataset directory previously written by
// SaveDataset (or hand-authored in the same format).
func LoadDatasetDir(dir string) (*Dataset, error) {
	inner, err := dataset.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return &Dataset{inner: inner}, nil
}
