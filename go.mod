module neutronstar

go 1.22
