package graph

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarises a graph's shape; it backs the Table 2 dataset listing and
// the partition-quality reporting.
type Stats struct {
	NumVertices int
	NumEdges    int
	AvgInDegree float64
	MaxInDegree int
	// DegreeP50/P90/P99 are in-degree percentiles; skew indicators that
	// predict how expensive DepCache replication will be.
	DegreeP50, DegreeP90, DegreeP99 int
	// Isolated counts vertices with neither in- nor out-edges.
	Isolated int
}

// ComputeStats scans the graph once and returns its statistics.
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	s := Stats{NumVertices: n, NumEdges: g.NumEdges()}
	if n == 0 {
		return s
	}
	degrees := make([]int, n)
	for v := 0; v < n; v++ {
		d := g.InDegree(int32(v))
		degrees[v] = d
		if d > s.MaxInDegree {
			s.MaxInDegree = d
		}
		if d == 0 && g.OutDegree(int32(v)) == 0 {
			s.Isolated++
		}
	}
	s.AvgInDegree = float64(g.NumEdges()) / float64(n)
	sort.Ints(degrees)
	s.DegreeP50 = degrees[n/2]
	s.DegreeP90 = degrees[min(n-1, n*9/10)]
	s.DegreeP99 = degrees[min(n-1, n*99/100)]
	return s
}

// String formats the stats as a single table-style row.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d avgdeg=%.2f maxdeg=%d p50/p90/p99=%d/%d/%d isolated=%d",
		s.NumVertices, s.NumEdges, s.AvgInDegree, s.MaxInDegree,
		s.DegreeP50, s.DegreeP90, s.DegreeP99, s.Isolated)
}

// GCNNormCoefficients returns, in CSC edge order, the symmetric GCN
// normalisation coefficient 1/sqrt((din(v)+1)(din(u)+1)) for each edge u->v,
// and for each vertex the self-loop coefficient 1/(din(v)+1). The +1 terms
// account for the implicit self-loop of Kipf & Welling's renormalisation
// trick without materialising self-edges.
func GCNNormCoefficients(g *Graph) (edgeNorm []float32, selfNorm []float32) {
	n := g.NumVertices()
	edgeNorm = make([]float32, g.NumEdges())
	selfNorm = make([]float32, n)
	invSqrt := make([]float64, n)
	for v := 0; v < n; v++ {
		invSqrt[v] = 1 / math.Sqrt(float64(g.InDegree(int32(v))+1))
		selfNorm[v] = float32(invSqrt[v] * invSqrt[v])
	}
	off := g.InOffsets()
	src := g.InSources()
	for v := 0; v < n; v++ {
		for e := off[v]; e < off[v+1]; e++ {
			edgeNorm[e] = float32(invSqrt[v] * invSqrt[src[e]])
		}
	}
	return edgeNorm, selfNorm
}
