package graph

// KHopInClosure returns, for each hop h in 1..k, the set of vertices reached
// by following in-edges h steps backward from seeds, matching the BFS
// dependency retrieval of Algorithm 2 (line 3-4): hop[h-1] is V_i^{L-h} \ V_i
// style frontier including revisits across hops being deduplicated per hop
// but a vertex may appear in multiple hops (layer-specific dependencies).
//
// The returned slices contain vertex ids in ascending order.
func (g *Graph) KHopInClosure(seeds []int32, k int) [][]int32 {
	hops := make([][]int32, k)
	frontier := seeds
	for h := 0; h < k; h++ {
		mark := make(map[int32]struct{})
		for _, v := range frontier {
			for _, u := range g.InNeighbors(v) {
				mark[u] = struct{}{}
			}
		}
		next := make([]int32, 0, len(mark))
		for u := range mark {
			next = append(next, u)
		}
		sortInt32(next)
		hops[h] = next
		frontier = next
	}
	return hops
}

// InClosureUnion returns the union of seeds and every vertex reachable by up
// to k in-edge steps backward from seeds, ascending. This is the full cached
// working set a DepCache worker needs for a k-layer model.
func (g *Graph) InClosureUnion(seeds []int32, k int) []int32 {
	inSet := make(map[int32]struct{}, len(seeds))
	for _, v := range seeds {
		inSet[v] = struct{}{}
	}
	frontier := seeds
	for h := 0; h < k; h++ {
		var next []int32
		for _, v := range frontier {
			for _, u := range g.InNeighbors(v) {
				if _, ok := inSet[u]; !ok {
					inSet[u] = struct{}{}
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	out := make([]int32, 0, len(inSet))
	for v := range inSet {
		out = append(out, v)
	}
	sortInt32(out)
	return out
}

// DependencySubtreeSize returns the number of distinct vertices and edges in
// the in-dependency subtree rooted at u, descending depth layers, excluding
// vertices in the exclude set (both as subtree members and as expansion
// roots). This is the quantity |V_i^k(u) \ V_i| and |E_i^k(u) \ E_i| of
// Eq. 1 aggregated over k, used by the cost model.
func (g *Graph) DependencySubtreeSize(u int32, depth int, exclude func(int32) bool) (vertices, edges int) {
	if depth <= 0 {
		return 0, 0
	}
	visited := map[int32]struct{}{u: {}}
	frontier := []int32{u}
	for h := 0; h < depth; h++ {
		var next []int32
		for _, v := range frontier {
			for _, w := range g.InNeighbors(v) {
				edges++
				if _, ok := visited[w]; ok {
					continue
				}
				visited[w] = struct{}{}
				if exclude != nil && exclude(w) {
					continue // counted as edge endpoint but not expanded or charged
				}
				vertices++
				next = append(next, w)
			}
		}
		frontier = next
	}
	return vertices, edges
}

// InducedSubgraph builds the subgraph on the given vertices (ascending,
// deduplicated by the caller) keeping only edges whose endpoints are both in
// the set. It returns the subgraph and the mapping local id -> global id.
// The inverse mapping is returned as a map for sparse lookup.
func (g *Graph) InducedSubgraph(vertices []int32) (*Graph, []int32, map[int32]int32) {
	toLocal := make(map[int32]int32, len(vertices))
	for i, v := range vertices {
		toLocal[v] = int32(i)
	}
	var edges []Edge
	for i, v := range vertices {
		for _, u := range g.InNeighbors(v) {
			if lu, ok := toLocal[u]; ok {
				edges = append(edges, Edge{Src: lu, Dst: int32(i)})
			}
		}
	}
	sub := MustFromEdges(len(vertices), edges)
	globals := make([]int32, len(vertices))
	copy(globals, vertices)
	return sub, globals, toLocal
}

func sortInt32(s []int32) {
	// Insertion sort for tiny inputs, otherwise a simple in-place quicksort;
	// avoids the interface overhead of sort.Slice in hot BFS loops.
	if len(s) < 32 {
		for i := 1; i < len(s); i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		return
	}
	quickSortInt32(s)
}

func quickSortInt32(s []int32) {
	for len(s) > 32 {
		p := partitionInt32(s)
		if p < len(s)-p {
			quickSortInt32(s[:p])
			s = s[p:]
		} else {
			quickSortInt32(s[p:])
			s = s[:p]
		}
	}
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

func partitionInt32(s []int32) int {
	mid := len(s) / 2
	if s[0] > s[mid] {
		s[0], s[mid] = s[mid], s[0]
	}
	if s[0] > s[len(s)-1] {
		s[0], s[len(s)-1] = s[len(s)-1], s[0]
	}
	if s[mid] > s[len(s)-1] {
		s[mid], s[len(s)-1] = s[len(s)-1], s[mid]
	}
	pivot := s[mid]
	i, j := 0, len(s)-1
	for {
		for s[i] < pivot {
			i++
		}
		for s[j] > pivot {
			j--
		}
		if i >= j {
			return j + 1
		}
		s[i], s[j] = s[j], s[i]
		i++
		j--
	}
}
