package graph

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"neutronstar/internal/tensor"
)

// diamond: 0->1, 0->2, 1->3, 2->3, 3->0 (a cycle through a diamond).
func diamond() *Graph {
	return MustFromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}})
}

func TestFromEdgesBasic(t *testing.T) {
	g := diamond()
	if g.NumVertices() != 4 || g.NumEdges() != 5 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if got := g.InNeighbors(3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("InNeighbors(3) = %v", got)
	}
	if got := g.OutNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("OutNeighbors(0) = %v", got)
	}
	if g.InDegree(0) != 1 || g.OutDegree(3) != 1 {
		t.Fatal("degree wrong")
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Fatal("expected error for out-of-range dst")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0}}); err == nil {
		t.Fatal("expected error for negative src")
	}
}

func TestHasEdge(t *testing.T) {
	g := diamond()
	if !g.HasEdge(0, 1) || !g.HasEdge(3, 0) {
		t.Fatal("missing existing edge")
	}
	if g.HasEdge(1, 0) || g.HasEdge(2, 2) {
		t.Fatal("found non-existent edge")
	}
}

func TestSelfLoopsAndMultiEdges(t *testing.T) {
	g := MustFromEdges(2, []Edge{{0, 0}, {0, 1}, {0, 1}})
	if g.InDegree(0) != 1 || g.InDegree(1) != 2 {
		t.Fatal("self loop / multi edge degrees wrong")
	}
	if !g.HasEdge(0, 0) {
		t.Fatal("self loop lost")
	}
}

func TestCSCToCSRMapping(t *testing.T) {
	g := diamond()
	dst := g.EdgeDst()
	m := g.CSCToCSR()
	for e := 0; e < g.NumEdges(); e++ {
		u := g.InSources()[e]
		v := dst[e]
		p := m[e]
		// CSR position p must lie in u's out range and point at v.
		if p < g.OutOffsets()[u] || p >= g.OutOffsets()[u+1] {
			t.Fatalf("edge %d mapped outside source %d's CSR range", e, u)
		}
		if g.OutDestinations()[p] != v {
			t.Fatalf("edge %d (%d->%d) CSR slot holds %d", e, u, v, g.OutDestinations()[p])
		}
	}
	// The mapping must be a bijection.
	seen := make([]bool, g.NumEdges())
	for _, p := range m {
		if seen[p] {
			t.Fatal("cscToCSR not injective")
		}
		seen[p] = true
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{0, 1}, {2, 1}, {1, 0}, {2, 0}}
	g := MustFromEdges(3, in)
	out := g.Edges()
	sortEdges(in)
	sortEdges(out)
	if len(in) != len(out) {
		t.Fatalf("edge count changed: %d vs %d", len(in), len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("edge %d: %v vs %v", i, in[i], out[i])
		}
	}
}

func sortEdges(e []Edge) {
	sort.Slice(e, func(i, j int) bool {
		if e[i].Dst != e[j].Dst {
			return e[i].Dst < e[j].Dst
		}
		return e[i].Src < e[j].Src
	})
}

func TestReverse(t *testing.T) {
	g := diamond()
	r := g.Reverse()
	if r.NumEdges() != g.NumEdges() {
		t.Fatal("reverse changed edge count")
	}
	for _, e := range g.Edges() {
		if !r.HasEdge(e.Dst, e.Src) {
			t.Fatalf("reverse missing %d->%d", e.Dst, e.Src)
		}
	}
}

func TestKHopInClosure(t *testing.T) {
	// Chain 0->1->2->3 plus 4->2.
	g := MustFromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {4, 2}})
	hops := g.KHopInClosure([]int32{3}, 2)
	if len(hops) != 2 {
		t.Fatalf("hops = %d", len(hops))
	}
	if len(hops[0]) != 1 || hops[0][0] != 2 {
		t.Fatalf("hop1 = %v", hops[0])
	}
	if len(hops[1]) != 2 || hops[1][0] != 1 || hops[1][1] != 4 {
		t.Fatalf("hop2 = %v", hops[1])
	}
}

func TestInClosureUnion(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {4, 2}})
	got := g.InClosureUnion([]int32{3}, 2)
	want := []int32{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("closure = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("closure = %v, want %v", got, want)
		}
	}
	// Depth 3 pulls in 0.
	if got := g.InClosureUnion([]int32{3}, 3); len(got) != 5 {
		t.Fatalf("depth-3 closure = %v", got)
	}
}

func TestDependencySubtreeSize(t *testing.T) {
	// Tree: 1,2 -> 3; 0 -> 1; depth 2 from 3: vertices {1,2,0}, edges {1->3,2->3,0->1}.
	g := MustFromEdges(4, []Edge{{1, 3}, {2, 3}, {0, 1}})
	v, e := g.DependencySubtreeSize(3, 2, nil)
	if v != 3 || e != 3 {
		t.Fatalf("subtree = %d vertices %d edges", v, e)
	}
	// Excluding vertex 1 removes it from the charge and stops expansion to 0.
	v, e = g.DependencySubtreeSize(3, 2, func(x int32) bool { return x == 1 })
	if v != 1 || e != 2 {
		t.Fatalf("excluded subtree = %d vertices %d edges", v, e)
	}
	if v, e := g.DependencySubtreeSize(3, 0, nil); v != 0 || e != 0 {
		t.Fatal("depth 0 should be empty")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := diamond()
	sub, globals, toLocal := g.InducedSubgraph([]int32{0, 1, 3})
	if sub.NumVertices() != 3 {
		t.Fatalf("sub V = %d", sub.NumVertices())
	}
	// Kept edges: 0->1 and 1->3 and 3->0 (2 dropped since 2 excluded... edge 0->2, 2->3 dropped).
	if sub.NumEdges() != 3 {
		t.Fatalf("sub E = %d", sub.NumEdges())
	}
	if globals[toLocal[3]] != 3 {
		t.Fatal("mapping broken")
	}
	if !sub.HasEdge(toLocal[0], toLocal[1]) || !sub.HasEdge(toLocal[3], toLocal[0]) {
		t.Fatal("subgraph lost an edge")
	}
}

func TestComputeStats(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {2, 1}, {3, 1}})
	s := ComputeStats(g)
	if s.NumVertices != 4 || s.NumEdges != 3 {
		t.Fatal("counts wrong")
	}
	if s.MaxInDegree != 3 {
		t.Fatalf("max degree = %d", s.MaxInDegree)
	}
	if math.Abs(s.AvgInDegree-0.75) > 1e-9 {
		t.Fatalf("avg = %v", s.AvgInDegree)
	}
	if s.Isolated != 0 {
		t.Fatalf("isolated = %d (vertex 0,2,3 have out-edges)", s.Isolated)
	}
	g2 := MustFromEdges(3, []Edge{{0, 1}})
	if ComputeStats(g2).Isolated != 1 {
		t.Fatal("vertex 2 should be isolated")
	}
}

func TestStatsEmptyGraph(t *testing.T) {
	g := MustFromEdges(0, nil)
	s := ComputeStats(g)
	if s.NumVertices != 0 || s.NumEdges != 0 {
		t.Fatal("empty graph stats wrong")
	}
	_ = s.String()
}

func TestGCNNormCoefficients(t *testing.T) {
	// 0->2, 1->2: din(2)=2, din(0)=din(1)=0.
	g := MustFromEdges(3, []Edge{{0, 2}, {1, 2}})
	edgeNorm, selfNorm := GCNNormCoefficients(g)
	want := 1 / math.Sqrt(3*1)
	for _, c := range edgeNorm {
		if math.Abs(float64(c)-want) > 1e-6 {
			t.Fatalf("edge norm = %v, want %v", c, want)
		}
	}
	if math.Abs(float64(selfNorm[2])-1.0/3) > 1e-6 {
		t.Fatalf("self norm(2) = %v", selfNorm[2])
	}
	if math.Abs(float64(selfNorm[0])-1) > 1e-6 {
		t.Fatalf("self norm(0) = %v", selfNorm[0])
	}
}

// Property: for random graphs, sum of in-degrees == sum of out-degrees == |E|,
// and CSR/CSC agree edge-by-edge.
func TestQuickCSRCSCConsistency(t *testing.T) {
	f := func(seed uint64, n8, e8 uint8) bool {
		n := int(n8%20) + 1
		ne := int(e8 % 60)
		rng := tensor.NewRNG(seed)
		edges := make([]Edge, ne)
		for i := range edges {
			edges[i] = Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
		}
		g := MustFromEdges(n, edges)
		var din, dout int
		for v := 0; v < n; v++ {
			din += g.InDegree(int32(v))
			dout += g.OutDegree(int32(v))
		}
		if din != ne || dout != ne {
			return false
		}
		// Every CSC edge must exist in CSR and vice versa (as a multiset).
		counts := map[Edge]int{}
		for _, e := range g.Edges() {
			counts[e]++
		}
		for u := int32(0); u < int32(n); u++ {
			for _, v := range g.OutNeighbors(u) {
				counts[Edge{u, v}]--
			}
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: InClosureUnion is monotone in depth and always contains the seeds.
func TestQuickClosureMonotone(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%15) + 2
		rng := tensor.NewRNG(seed)
		edges := make([]Edge, n*2)
		for i := range edges {
			edges[i] = Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
		}
		g := MustFromEdges(n, edges)
		seed0 := []int32{int32(rng.Intn(n))}
		prev := 0
		for k := 0; k <= 3; k++ {
			c := g.InClosureUnion(seed0, k)
			if len(c) < prev {
				return false
			}
			found := false
			for _, v := range c {
				if v == seed0[0] {
					found = true
				}
			}
			if !found {
				return false
			}
			prev = len(c)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSortInt32(t *testing.T) {
	rng := tensor.NewRNG(5)
	for _, n := range []int{0, 1, 5, 31, 32, 33, 100, 1000} {
		s := make([]int32, n)
		for i := range s {
			s[i] = int32(rng.Intn(50))
		}
		sortInt32(s)
		for i := 1; i < n; i++ {
			if s[i-1] > s[i] {
				t.Fatalf("n=%d not sorted at %d", n, i)
			}
		}
	}
}

func BenchmarkFromEdges100k(b *testing.B) {
	rng := tensor.NewRNG(1)
	const n, e = 10000, 100000
	edges := make([]Edge, e)
	for i := range edges {
		edges[i] = Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustFromEdges(n, edges)
	}
}
