// Package graph provides the static graph storage used throughout
// NeutronStar-Go: COO ingestion, CSC (in-edges grouped by destination, used
// by forward propagation) and CSR (out-edges grouped by source, used by
// backward propagation) builds, k-hop dependency closures, and degree
// statistics. Vertex ids are dense int32 in [0, NumVertices).
package graph

import (
	"fmt"
	"sort"
)

// Edge is a directed edge u -> v: v aggregates from u ("u is an in-neighbor
// of v"), matching the paper's vertex-dependency definition.
type Edge struct {
	Src, Dst int32
}

// Graph is an immutable directed graph in dual CSC/CSR form.
// CSC answers "who are v's in-neighbors" (forward pass);
// CSR answers "who are u's out-neighbors" (backward pass).
type Graph struct {
	numVertices int32
	numEdges    int64

	// CSC: in-edges of vertex v are InSrc[InOff[v]:InOff[v+1]].
	inOff []int64
	inSrc []int32

	// CSR: out-edges of vertex u are OutDst[OutOff[u]:OutOff[u+1]].
	outOff []int64
	outDst []int32

	// cscToCSR maps the i-th CSC edge to its position in CSR order, so
	// per-edge data laid out in one order can be permuted to the other.
	cscToCSR []int64
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return int(g.numVertices) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return int(g.numEdges) }

// InNeighbors returns the sources of v's in-edges (shared storage; do not
// mutate).
func (g *Graph) InNeighbors(v int32) []int32 {
	return g.inSrc[g.inOff[v]:g.inOff[v+1]]
}

// OutNeighbors returns the destinations of u's out-edges (shared storage).
func (g *Graph) OutNeighbors(u int32) []int32 {
	return g.outDst[g.outOff[u]:g.outOff[u+1]]
}

// InDegree returns the number of in-edges of v.
func (g *Graph) InDegree(v int32) int { return int(g.inOff[v+1] - g.inOff[v]) }

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u int32) int { return int(g.outOff[u+1] - g.outOff[u]) }

// InOffsets exposes the CSC offset array (len NumVertices+1).
func (g *Graph) InOffsets() []int64 { return g.inOff }

// InSources exposes the CSC source array: entry e is the source of the e-th
// in-edge in destination-sorted order.
func (g *Graph) InSources() []int32 { return g.inSrc }

// OutOffsets exposes the CSR offset array (len NumVertices+1).
func (g *Graph) OutOffsets() []int64 { return g.outOff }

// OutDestinations exposes the CSR destination array.
func (g *Graph) OutDestinations() []int32 { return g.outDst }

// CSCToCSR maps CSC edge position i to the corresponding CSR position.
func (g *Graph) CSCToCSR() []int64 { return g.cscToCSR }

// EdgeDst returns, for every CSC edge position, its destination vertex.
// The result is freshly allocated.
func (g *Graph) EdgeDst() []int32 {
	dst := make([]int32, g.numEdges)
	for v := int32(0); v < g.numVertices; v++ {
		for e := g.inOff[v]; e < g.inOff[v+1]; e++ {
			dst[e] = v
		}
	}
	return dst
}

// FromEdges builds a graph with numVertices vertices from a directed edge
// list. Duplicate edges are kept (multi-edges are legal); self-loops are
// legal. It returns an error for out-of-range endpoints.
func FromEdges(numVertices int, edges []Edge) (*Graph, error) {
	n := int32(numVertices)
	for i, e := range edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			return nil, fmt.Errorf("graph: edge %d (%d->%d) out of range [0,%d)", i, e.Src, e.Dst, n)
		}
	}
	g := &Graph{numVertices: n, numEdges: int64(len(edges))}

	// CSC build: counting sort by destination.
	g.inOff = make([]int64, n+1)
	for _, e := range edges {
		g.inOff[e.Dst+1]++
	}
	for v := int32(0); v < n; v++ {
		g.inOff[v+1] += g.inOff[v]
	}
	g.inSrc = make([]int32, len(edges))
	cursor := make([]int64, n)
	for _, e := range edges {
		p := g.inOff[e.Dst] + cursor[e.Dst]
		g.inSrc[p] = e.Src
		cursor[e.Dst]++
	}
	// Sort each in-neighbor list for determinism and binary search.
	for v := int32(0); v < n; v++ {
		seg := g.inSrc[g.inOff[v]:g.inOff[v+1]]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	}

	// CSR build + csc->csr map, derived from the (now canonical) CSC layout.
	g.outOff = make([]int64, n+1)
	for _, u := range g.inSrc {
		g.outOff[u+1]++
	}
	for v := int32(0); v < n; v++ {
		g.outOff[v+1] += g.outOff[v]
	}
	g.outDst = make([]int32, len(edges))
	g.cscToCSR = make([]int64, len(edges))
	clear(cursor)
	for v := int32(0); v < n; v++ {
		for e := g.inOff[v]; e < g.inOff[v+1]; e++ {
			u := g.inSrc[e]
			p := g.outOff[u] + cursor[u]
			g.outDst[p] = v
			g.cscToCSR[e] = p
			cursor[u]++
		}
	}
	return g, nil
}

// MustFromEdges is FromEdges that panics on error; for tests and generators
// whose inputs are constructed in-range.
func MustFromEdges(numVertices int, edges []Edge) *Graph {
	g, err := FromEdges(numVertices, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Edges reconstructs the edge list in CSC order (dst-major, src ascending).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	for v := int32(0); v < g.numVertices; v++ {
		for _, u := range g.InNeighbors(v) {
			out = append(out, Edge{Src: u, Dst: v})
		}
	}
	return out
}

// HasEdge reports whether an edge u->v exists (binary search on CSC).
func (g *Graph) HasEdge(u, v int32) bool {
	nbrs := g.InNeighbors(v)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= u })
	return i < len(nbrs) && nbrs[i] == u
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Graph) Reverse() *Graph {
	edges := make([]Edge, 0, g.numEdges)
	for v := int32(0); v < g.numVertices; v++ {
		for _, u := range g.InNeighbors(v) {
			edges = append(edges, Edge{Src: v, Dst: u})
		}
	}
	return MustFromEdges(int(g.numVertices), edges)
}
