package graph

import (
	"testing"
	"testing/quick"

	"neutronstar/internal/tensor"
)

// Supplementary k-hop and subgraph tests beyond graph_test.go: cycles,
// self-dependencies, and closure/subtree consistency properties.

func TestKHopOnCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0: every hop from any seed stays size 1 and cycles.
	g := MustFromEdges(3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}})
	hops := g.KHopInClosure([]int32{1}, 4)
	want := []int32{0, 2, 1, 0}
	for h, hop := range hops {
		if len(hop) != 1 || hop[0] != want[h] {
			t.Fatalf("hop %d = %v, want [%d]", h+1, hop, want[h])
		}
	}
	// Union closure of a cycle is the whole cycle.
	if got := g.InClosureUnion([]int32{1}, 3); len(got) != 3 {
		t.Fatalf("cycle closure = %v", got)
	}
}

func TestKHopWithSelfLoop(t *testing.T) {
	g := MustFromEdges(2, []Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}})
	hops := g.KHopInClosure([]int32{1}, 2)
	if len(hops[0]) != 1 || hops[0][0] != 0 {
		t.Fatalf("hop1 = %v", hops[0])
	}
	// 0's in-neighborhood is itself.
	if len(hops[1]) != 1 || hops[1][0] != 0 {
		t.Fatalf("hop2 = %v", hops[1])
	}
}

func TestDependencySubtreeWithSelfLoopTerminates(t *testing.T) {
	g := MustFromEdges(2, []Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}})
	v, e := g.DependencySubtreeSize(1, 5, nil)
	// Visited-set dedup must prevent re-expansion of the self loop: vertex 0
	// once, but its self-edge is charged at each level it is expanded at.
	if v != 1 {
		t.Fatalf("vertices = %d", v)
	}
	if e < 1 {
		t.Fatalf("edges = %d", e)
	}
}

func TestInducedSubgraphEmptySelection(t *testing.T) {
	g := MustFromEdges(3, []Edge{{Src: 0, Dst: 1}})
	sub, globals, toLocal := g.InducedSubgraph(nil)
	if sub.NumVertices() != 0 || sub.NumEdges() != 0 || len(globals) != 0 || len(toLocal) != 0 {
		t.Fatal("empty selection should give empty subgraph")
	}
}

// Property: the union closure equals seeds plus the union of per-hop
// frontiers from KHopInClosure.
func TestQuickClosureAgreesWithHops(t *testing.T) {
	f := func(seed uint64, n8, k8 uint8) bool {
		n := int(n8%20) + 2
		k := int(k8%4) + 1
		rng := tensor.NewRNG(seed)
		edges := make([]Edge, n*2)
		for i := range edges {
			edges[i] = Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
		}
		g := MustFromEdges(n, edges)
		seeds := []int32{int32(rng.Intn(n))}
		union := map[int32]struct{}{seeds[0]: {}}
		for _, hop := range g.KHopInClosure(seeds, k) {
			for _, v := range hop {
				union[v] = struct{}{}
			}
		}
		closure := g.InClosureUnion(seeds, k)
		if len(closure) > len(union) {
			// Closure may be SMALLER than hop-union (hops revisit already
			// closed vertices); it can never be larger.
			return false
		}
		for _, v := range closure {
			if _, ok := union[v]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: induced subgraph preserves degrees restricted to the selection.
func TestQuickInducedSubgraphDegrees(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%20) + 4
		rng := tensor.NewRNG(seed)
		edges := make([]Edge, n*2)
		for i := range edges {
			edges[i] = Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
		}
		g := MustFromEdges(n, edges)
		// Select every other vertex.
		var sel []int32
		for v := int32(0); v < int32(n); v += 2 {
			sel = append(sel, v)
		}
		sub, globals, toLocal := g.InducedSubgraph(sel)
		for li, gv := range globals {
			want := 0
			for _, u := range g.InNeighbors(gv) {
				if _, ok := toLocal[u]; ok {
					want++
				}
			}
			if sub.InDegree(int32(li)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
