package autograd_test

import (
	"testing"

	"neutronstar/internal/autograd"
	"neutronstar/internal/tensor"
	"neutronstar/internal/testkit"
)

// TestTapeOpGradients finite-differences the tape ops that the decoupled-op
// fixture in testkit does not already route through: structural ops (concat,
// slice, scale, elementwise mul, row reduction) and the loss heads. Together
// with testkit.CheckDecoupledOps this closes gradient coverage over every
// backward rule the tape implements.
func TestTapeOpGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	a := tensor.RandNormal(4, 3, 0, 1, rng)
	b := tensor.RandNormal(4, 3, 0, 1, rng)
	c := tensor.RandNormal(4, 2, 0, 1, rng)
	logits := tensor.RandNormal(5, 3, 0, 1, rng)
	labels := []int32{0, 2, 1, 0, 2}
	mask := []bool{true, false, true, true, false}
	targets := []float32{1, 0, 1, 0}
	mse := tensor.RandNormal(4, 3, 0, 1, rng)

	cases := []struct {
		name   string
		inputs []*tensor.Tensor
		build  testkit.Closure
	}{
		{"concat_cols", []*tensor.Tensor{a, c}, func(tp *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return tp.ConcatCols(xs[0], xs[1])
		}},
		{"concat_rows", []*tensor.Tensor{a, b}, func(tp *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return tp.ConcatRows(xs[0], xs[1])
		}},
		{"slice_rows", []*tensor.Tensor{a}, func(tp *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return tp.SliceRows(xs[0], 1, 3)
		}},
		{"scale", []*tensor.Tensor{a}, func(tp *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return tp.Scale(xs[0], 0.37)
		}},
		{"mul", []*tensor.Tensor{a, b}, func(tp *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return tp.Mul(xs[0], xs[1])
		}},
		{"row_sum", []*tensor.Tensor{a}, func(tp *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return tp.RowSum(xs[0])
		}},
		{"sigmoid", []*tensor.Tensor{a}, func(tp *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return tp.Sigmoid(xs[0])
		}},
		{"log_softmax", []*tensor.Tensor{logits}, func(tp *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return tp.LogSoftmax(xs[0])
		}},
		{"nll_masked", []*tensor.Tensor{logits}, func(tp *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			loss, _ := tp.NLLLossMasked(tp.LogSoftmax(xs[0]), labels, mask)
			return loss
		}},
		{"mse", []*tensor.Tensor{a}, func(tp *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return tp.MSELoss(xs[0], mse)
		}},
		{"bce_logits", []*tensor.Tensor{c}, func(tp *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return tp.BCEWithLogitsLoss(tp.RowSum(xs[0]), targets)
		}},
	}
	for _, tc := range cases {
		for _, r := range testkit.CheckClosure(tc.name, tc.inputs, tc.build, 91, 1e-3, 0) {
			if r.RelErr >= 1e-3 {
				t.Errorf("FAIL %s", r)
			} else {
				t.Logf("ok   %s", r)
			}
		}
	}
}
