package autograd

import (
	"fmt"
	"math"
	"time"

	"neutronstar/internal/tensor"
)

// The operations in this file are the differentiable halves of NeutronStar's
// decoupled graph operations (§4.1): ScatterToEdge is a Gather over source or
// destination indices, GatherByDst is a ScatterAddRows keyed by destination,
// and GAT's per-destination attention normalisation is SegmentSoftmax.
// Their backward rules are the paper's ScatterBackToEdge / GatherBySrc duals.

// Gather selects rows of x by idx: out[i] = x[idx[i]]. The same source row may
// appear many times (a vertex feeds all its out-edges); the backward pass
// scatter-adds edge gradients back to the vertex rows.
func (t *Tape) Gather(x *Variable, idx []int32) *Variable {
	start := time.Now()
	cols := x.Value.Cols()
	out := t.alloc(len(idx), cols)
	for i, src := range idx {
		copy(out.Row(i), x.Value.Row(int(src)))
	}
	obsGatherSeconds.Observe(time.Since(start).Seconds())
	return t.record(out, "gather", func(grad *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		g := t.alloc(x.Value.Rows(), x.Value.Cols())
		for i, src := range idx {
			dst := g.Row(int(src))
			gr := grad.Row(i)
			for j, v := range gr {
				dst[j] += v
			}
		}
		x.accumulate(g)
	}, x)
}

// ScatterAddRows sums rows of edges into numRows output rows keyed by idx:
// out[idx[e]] += edges[e]. This is GatherByDst with the sum aggregator.
// The backward pass gathers: dEdges[e] = dOut[idx[e]].
func (t *Tape) ScatterAddRows(edges *Variable, idx []int32, numRows int) *Variable {
	if len(idx) != edges.Value.Rows() {
		panic(fmt.Sprintf("autograd: ScatterAddRows %d indices for %d edges", len(idx), edges.Value.Rows()))
	}
	start := time.Now()
	cols := edges.Value.Cols()
	out := t.alloc(numRows, cols)
	for e, d := range idx {
		dst := out.Row(int(d))
		src := edges.Value.Row(e)
		for j, v := range src {
			dst[j] += v
		}
	}
	obsScatterSeconds.Observe(time.Since(start).Seconds())
	return t.record(out, "scatter_add", func(grad *tensor.Tensor) {
		if !edges.requiresGrad {
			return
		}
		g := t.alloc(len(idx), cols)
		for e, d := range idx {
			copy(g.Row(e), grad.Row(int(d)))
		}
		edges.accumulate(g)
	}, edges)
}

// ScatterMaxRows takes an element-wise max of edge rows into numRows output
// rows keyed by idx. Rows that receive no edge stay zero. The backward pass
// routes each output element's gradient to the (first) edge that attained the
// max, matching the subgradient convention of max-pooling aggregators.
func (t *Tape) ScatterMaxRows(edges *Variable, idx []int32, numRows int) *Variable {
	cols := edges.Value.Cols()
	out := t.alloc(numRows, cols)
	argmax := make([]int32, numRows*cols)
	for i := range argmax {
		argmax[i] = -1
	}
	neg := float32(math.Inf(-1))
	seen := make([]bool, numRows)
	for e, d := range idx {
		row := out.Row(int(d))
		if !seen[d] {
			for j := range row {
				row[j] = neg
			}
			seen[d] = true
		}
		src := edges.Value.Row(e)
		base := int(d) * cols
		for j, v := range src {
			if v > row[j] {
				row[j] = v
				argmax[base+j] = int32(e)
			}
		}
	}
	// Rows never written stay zero: vertices with no in-edges aggregate to
	// zero rather than -inf, because -inf is only seeded on first touch.
	return t.record(out, "scatter_max", func(grad *tensor.Tensor) {
		if !edges.requiresGrad {
			return
		}
		g := t.alloc(edges.Value.Rows(), cols)
		for i, e := range argmax {
			if e >= 0 {
				g.Data()[int(e)*cols+i%cols] += grad.Data()[i]
			}
		}
		edges.accumulate(g)
	}, edges)
}

// SegmentSoftmax normalises the Ex1 score column within contiguous segments.
// offsets has numSegments+1 entries; segment s spans rows
// [offsets[s], offsets[s+1]). Scores must therefore be ordered by segment
// (for GAT: edges sorted by destination, i.e. CSC order).
func (t *Tape) SegmentSoftmax(scores *Variable, offsets []int32) *Variable {
	if scores.Value.Cols() != 1 {
		panic("autograd: SegmentSoftmax wants an Ex1 score column")
	}
	e := scores.Value.Rows()
	if int(offsets[len(offsets)-1]) != e {
		panic(fmt.Sprintf("autograd: SegmentSoftmax offsets end %d != %d rows", offsets[len(offsets)-1], e))
	}
	out := t.alloc(e, 1)
	src := scores.Value.Data()
	dst := out.Data()
	for s := 0; s+1 < len(offsets); s++ {
		lo, hi := int(offsets[s]), int(offsets[s+1])
		if lo == hi {
			continue
		}
		maxV := float32(math.Inf(-1))
		for i := lo; i < hi; i++ {
			if src[i] > maxV {
				maxV = src[i]
			}
		}
		var sum float64
		for i := lo; i < hi; i++ {
			v := math.Exp(float64(src[i] - maxV))
			dst[i] = float32(v)
			sum += v
		}
		inv := float32(1 / sum)
		for i := lo; i < hi; i++ {
			dst[i] *= inv
		}
	}
	return t.record(out, "segment_softmax", func(grad *tensor.Tensor) {
		if !scores.requiresGrad {
			return
		}
		g := t.alloc(e, 1)
		gd, p := grad.Data(), out.Data()
		for s := 0; s+1 < len(offsets); s++ {
			lo, hi := int(offsets[s]), int(offsets[s+1])
			var dot float64
			for i := lo; i < hi; i++ {
				dot += float64(p[i]) * float64(gd[i])
			}
			for i := lo; i < hi; i++ {
				g.Data()[i] = p[i] * (gd[i] - float32(dot))
			}
		}
		scores.accumulate(g)
	}, scores)
}

// BroadcastColMul multiplies each row i of x by the scalar in column vector
// c (Ex1), differentiably in both arguments. Used to weight edge messages by
// attention coefficients.
func (t *Tape) BroadcastColMul(x, c *Variable) *Variable {
	if c.Value.Cols() != 1 || c.Value.Rows() != x.Value.Rows() {
		panic("autograd: BroadcastColMul wants c of shape Rx1 matching x rows")
	}
	r, cols := x.Value.Rows(), x.Value.Cols()
	out := t.alloc(r, cols)
	for i := 0; i < r; i++ {
		ci := c.Value.At(i, 0)
		src, dst := x.Value.Row(i), out.Row(i)
		for j, v := range src {
			dst[j] = v * ci
		}
	}
	return t.record(out, "broadcast_col_mul", func(grad *tensor.Tensor) {
		if x.requiresGrad {
			gx := t.alloc(r, cols)
			for i := 0; i < r; i++ {
				ci := c.Value.At(i, 0)
				src, dst := grad.Row(i), gx.Row(i)
				for j, v := range src {
					dst[j] = v * ci
				}
			}
			x.accumulate(gx)
		}
		if c.requiresGrad {
			gc := t.alloc(r, 1)
			for i := 0; i < r; i++ {
				gc.Set(i, 0, tensor.Dot(grad.Row(i), x.Value.Row(i)))
			}
			c.accumulate(gc)
		}
	}, x, c)
}
