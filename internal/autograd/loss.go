package autograd

import (
	"fmt"
	"math"

	"neutronstar/internal/tensor"
)

// LogSoftmax applies a row-wise log-softmax.
func (t *Tape) LogSoftmax(x *Variable) *Variable {
	out := t.alloc(x.Value.Rows(), x.Value.Cols())
	tensor.LogSoftmaxRowsInto(out, x.Value)
	return t.record(out, "log_softmax", func(grad *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		// d/dx_j = g_j - softmax(x)_j * sum_k g_k, per row.
		g := t.alloc(grad.Rows(), grad.Cols())
		for i := 0; i < grad.Rows(); i++ {
			gr := grad.Row(i)
			or := out.Row(i)
			var sum float64
			for _, v := range gr {
				sum += float64(v)
			}
			dst := g.Row(i)
			for j, v := range gr {
				dst[j] = v - float32(math.Exp(float64(or[j])))*float32(sum)
			}
		}
		x.accumulate(g)
	}, x)
}

// NLLLossMasked computes the mean negative log-likelihood of log-probability
// rows logp over the rows selected by mask (labels[i] is ignored where
// mask[i] is false). It returns a 1x1 loss variable and the number of rows
// that contributed. Rows with mask false receive zero gradient, which is how
// the engines restrict the loss to the labeled vertex set V_L.
func (t *Tape) NLLLossMasked(logp *Variable, labels []int32, mask []bool) (*Variable, int) {
	r := logp.Value.Rows()
	if len(labels) != r || len(mask) != r {
		panic(fmt.Sprintf("autograd: NLLLoss %d rows, %d labels, %d mask", r, len(labels), len(mask)))
	}
	n := 0
	var loss float64
	for i := 0; i < r; i++ {
		if !mask[i] {
			continue
		}
		n++
		loss -= float64(logp.Value.At(i, int(labels[i])))
	}
	out := t.alloc(1, 1)
	if n > 0 {
		out.Set(0, 0, float32(loss/float64(n)))
	}
	count := n
	v := t.record(out, "nll_loss", func(grad *tensor.Tensor) {
		if !logp.requiresGrad || count == 0 {
			return
		}
		scale := grad.At(0, 0) / float32(count)
		g := t.alloc(r, logp.Value.Cols())
		for i := 0; i < r; i++ {
			if mask[i] {
				g.Set(i, int(labels[i]), -scale)
			}
		}
		logp.accumulate(g)
	}, logp)
	return v, n
}

// MSELoss computes the mean squared error between pred and target
// (a constant), returning a 1x1 loss variable.
func (t *Tape) MSELoss(pred *Variable, target *tensor.Tensor) *Variable {
	pred.Value.SameShape(target)
	n := float64(pred.Value.Len())
	var loss float64
	for i, v := range pred.Value.Data() {
		d := float64(v - target.Data()[i])
		loss += d * d
	}
	out := t.alloc(1, 1)
	out.Set(0, 0, float32(loss/n))
	return t.record(out, "mse_loss", func(grad *tensor.Tensor) {
		if !pred.requiresGrad {
			return
		}
		scale := grad.At(0, 0) * float32(2/n)
		g := t.alloc(pred.Value.Rows(), pred.Value.Cols())
		for i, v := range pred.Value.Data() {
			g.Data()[i] = scale * (v - target.Data()[i])
		}
		pred.accumulate(g)
	}, pred)
}

// Sigmoid applies the logistic function element-wise.
func (t *Tape) Sigmoid(x *Variable) *Variable {
	out := t.alloc(x.Value.Rows(), x.Value.Cols())
	for i, v := range x.Value.Data() {
		out.Data()[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return t.record(out, "sigmoid", func(grad *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		g := t.alloc(grad.Rows(), grad.Cols())
		for i, s := range out.Data() {
			g.Data()[i] = grad.Data()[i] * s * (1 - s)
		}
		x.accumulate(g)
	}, x)
}

// BCEWithLogitsLoss computes the mean binary cross-entropy between logits
// and targets (0/1 values, captured by reference as constants), using the
// numerically stable formulation. It returns a 1x1 loss variable.
func (t *Tape) BCEWithLogitsLoss(logits *Variable, targets []float32) *Variable {
	n := logits.Value.Len()
	if len(targets) != n {
		panic(fmt.Sprintf("autograd: BCE %d logits, %d targets", n, len(targets)))
	}
	var loss float64
	for i, x := range logits.Value.Data() {
		xf := float64(x)
		tf := float64(targets[i])
		// max(x,0) - x*t + log(1+exp(-|x|))
		loss += math.Max(xf, 0) - xf*tf + math.Log1p(math.Exp(-math.Abs(xf)))
	}
	out := t.alloc(1, 1)
	out.Set(0, 0, float32(loss/float64(n)))
	return t.record(out, "bce_logits", func(grad *tensor.Tensor) {
		if !logits.requiresGrad {
			return
		}
		scale := grad.At(0, 0) / float32(n)
		g := t.alloc(logits.Value.Rows(), logits.Value.Cols())
		for i, x := range logits.Value.Data() {
			s := float32(1 / (1 + math.Exp(-float64(x))))
			g.Data()[i] = scale * (s - targets[i])
		}
		logits.accumulate(g)
	}, logits)
}

// RowSum reduces each row of x to its scalar sum, producing an Rx1 column —
// the pairing reduction used by dot-product edge decoders.
func (t *Tape) RowSum(x *Variable) *Variable {
	r := x.Value.Rows()
	out := t.alloc(r, 1)
	for i := 0; i < r; i++ {
		var s float32
		for _, v := range x.Value.Row(i) {
			s += v
		}
		out.Set(i, 0, s)
	}
	return t.record(out, "row_sum", func(grad *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		g := t.alloc(r, x.Value.Cols())
		for i := 0; i < r; i++ {
			gi := grad.At(i, 0)
			row := g.Row(i)
			for j := range row {
				row[j] = gi
			}
		}
		x.accumulate(g)
	}, x)
}
