// Package autograd implements tape-based reverse-mode automatic
// differentiation over the tensor package. It is the counterpart of the
// "flexible auto differentiation framework" of NeutronStar (§4.1): within a
// worker, each GNN layer is expressed as a chain of differentiable operations
// (NN ops and graph ops), and the backward pass is derived automatically by
// replaying the tape in reverse. Cross-worker dependency management
// (GetFromDepNbr / PostToDepNbr) lives above this package, in the engine:
// the engine feeds remote representations in as leaf variables and reads
// their accumulated gradients out after Backward, exactly mirroring the
// paper's synchronize-compute / compute-synchronize split.
package autograd

import (
	"fmt"

	"neutronstar/internal/tensor"
)

// Variable is a node in the computation graph: a value plus an optional
// gradient accumulator and the closure that propagates gradients to its
// parents.
type Variable struct {
	Value *tensor.Tensor
	Grad  *tensor.Tensor // lazily allocated; nil until first accumulation

	tape         *Tape
	requiresGrad bool
	backward     func(grad *tensor.Tensor)
	name         string
}

// RequiresGrad reports whether gradients flow into this variable.
func (v *Variable) RequiresGrad() bool { return v.requiresGrad }

// Tape returns the tape the variable is recorded on.
func (v *Variable) Tape() *Tape { return v.tape }

// Name returns the debug name assigned at creation (may be empty).
func (v *Variable) Name() string { return v.name }

// accumulate adds g into v.Grad, allocating it on first use.
func (v *Variable) accumulate(g *tensor.Tensor) {
	if !v.requiresGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = v.tape.alloc(v.Value.Rows(), v.Value.Cols())
	}
	tensor.AddInto(v.Grad, v.Grad, g)
}

// ZeroGrad clears the accumulated gradient.
func (v *Variable) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

// Tape records operations in execution order so Backward can replay them in
// reverse. A Tape is not safe for concurrent use; each worker builds its own.
type Tape struct {
	nodes []*Variable
	arena *tensor.Arena
}

// NewTape returns an empty tape whose intermediates are heap-allocated.
func NewTape() *Tape { return &Tape{} }

// NewTapeArena returns an empty tape that draws every op output, backward
// temporary and gradient accumulator from the arena. The caller owns the
// arena's lifetime: it must release only after the tape and everything that
// references its tensors (downstream tapes, in-flight messages, uncollected
// gradients) are dead — in the engine, the epoch barrier.
func NewTapeArena(a *tensor.Arena) *Tape { return &Tape{arena: a} }

// alloc returns a zeroed tensor from the tape's arena, or a fresh heap
// tensor when the tape has none (including the nil tape of detached ops).
func (t *Tape) alloc(rows, cols int) *tensor.Tensor {
	if t == nil {
		return tensor.New(rows, cols)
	}
	return t.arena.Get(rows, cols)
}

// Reset drops all recorded operations, keeping the backing storage for reuse.
func (t *Tape) Reset() { t.nodes = t.nodes[:0] }

// NumNodes returns the number of variables recorded on the tape.
func (t *Tape) NumNodes() int { return len(t.nodes) }

// Leaf registers value as a leaf variable. If requiresGrad is set, gradients
// accumulate into it during Backward (used for parameters and for remote
// dependency representations whose gradients must be posted back).
func (t *Tape) Leaf(value *tensor.Tensor, requiresGrad bool, name string) *Variable {
	v := &Variable{Value: value, tape: t, requiresGrad: requiresGrad, name: name}
	t.nodes = append(t.nodes, v)
	return v
}

// Constant registers value as a non-differentiable leaf.
func (t *Tape) Constant(value *tensor.Tensor, name string) *Variable {
	return t.Leaf(value, false, name)
}

// record registers an op output whose parents are parents and whose gradient
// rule is back. The output requires grad iff any parent does.
func (t *Tape) record(value *tensor.Tensor, name string, back func(grad *tensor.Tensor), parents ...*Variable) *Variable {
	req := false
	for _, p := range parents {
		if p != nil && p.requiresGrad {
			req = true
			break
		}
	}
	v := &Variable{Value: value, tape: t, requiresGrad: req, name: name}
	if req {
		v.backward = back
	}
	t.nodes = append(t.nodes, v)
	return v
}

// Backward runs reverse-mode differentiation from root. seed is the gradient
// of the loss with respect to root; pass nil for a scalar root to seed with 1.
// Leaves with requiresGrad accumulate into their Grad fields.
//
// Because ops always append their outputs after their inputs, the tape order
// is already a topological order and reverse iteration is a valid schedule.
func (t *Tape) Backward(root *Variable, seed *tensor.Tensor) {
	if root.tape != t {
		panic("autograd: Backward root from a different tape")
	}
	if seed == nil {
		if root.Value.Len() != 1 {
			panic(fmt.Sprintf("autograd: nil seed requires scalar root, got %dx%d",
				root.Value.Rows(), root.Value.Cols()))
		}
		seed = t.alloc(1, 1)
		seed.Set(0, 0, 1)
	}
	if !seed.SameShape(root.Value) {
		panic("autograd: seed shape mismatch with root value")
	}
	root.accumulateForce(seed)
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.backward != nil && n.Grad != nil {
			n.backward(n.Grad)
		}
	}
}

// accumulateForce seeds a gradient even on a node that is itself a
// non-requiresGrad leaf (harmless: its backward is nil).
func (v *Variable) accumulateForce(g *tensor.Tensor) {
	if v.Grad == nil {
		v.Grad = v.tape.alloc(v.Value.Rows(), v.Value.Cols())
	}
	tensor.AddInto(v.Grad, v.Grad, g)
}
