package autograd

import (
	"fmt"

	"neutronstar/internal/tensor"
)

// MatMul returns a @ b on the tape.
func (t *Tape) MatMul(a, b *Variable) *Variable {
	out := t.alloc(a.Value.Rows(), b.Value.Cols())
	tensor.MatMulInto(out, a.Value, b.Value)
	return t.record(out, "matmul", func(grad *tensor.Tensor) {
		if a.requiresGrad {
			ga := t.alloc(grad.Rows(), b.Value.Rows())
			tensor.MatMulTBInto(ga, grad, b.Value) // dA = dOut @ Bᵀ
			a.accumulate(ga)
		}
		if b.requiresGrad {
			gb := t.alloc(a.Value.Cols(), grad.Cols())
			tensor.MatMulTAInto(gb, a.Value, grad) // dB = Aᵀ @ dOut
			b.accumulate(gb)
		}
	}, a, b)
}

// Add returns a + b element-wise.
func (t *Tape) Add(a, b *Variable) *Variable {
	out := t.alloc(a.Value.Rows(), a.Value.Cols())
	tensor.AddInto(out, a.Value, b.Value)
	return t.record(out, "add", func(grad *tensor.Tensor) {
		a.accumulate(grad)
		b.accumulate(grad)
	}, a, b)
}

// AddBias adds the 1xC row vector bias to every row of x.
func (t *Tape) AddBias(x, bias *Variable) *Variable {
	out := t.alloc(x.Value.Rows(), x.Value.Cols())
	out.CopyFrom(x.Value)
	tensor.AddRowVector(out, bias.Value)
	return t.record(out, "add_bias", func(grad *tensor.Tensor) {
		x.accumulate(grad)
		if bias.requiresGrad {
			gb := t.alloc(1, grad.Cols())
			tensor.SumRowsInto(gb, grad)
			bias.accumulate(gb)
		}
	}, x, bias)
}

// AddBiasReLU fuses AddBias and ReLU: max(0, x + bias) in one pass, with no
// pre-activation intermediate on the tape. Forward and backward are
// bit-identical to the unfused chain (the rectifier's mask can be read off
// the fused output because out > 0 exactly when x+bias > 0).
func (t *Tape) AddBiasReLU(x, bias *Variable) *Variable {
	out := t.alloc(x.Value.Rows(), x.Value.Cols())
	tensor.AddBiasReLUInto(out, x.Value, bias.Value)
	return t.record(out, "add_bias_relu", func(grad *tensor.Tensor) {
		g := t.alloc(grad.Rows(), grad.Cols())
		tensor.ReLUBackwardInto(g, grad, out)
		x.accumulate(g)
		if bias.requiresGrad {
			gb := t.alloc(1, grad.Cols())
			tensor.SumRowsInto(gb, g)
			bias.accumulate(gb)
		}
	}, x, bias)
}

// Scale returns x * s.
func (t *Tape) Scale(x *Variable, s float32) *Variable {
	out := t.alloc(x.Value.Rows(), x.Value.Cols())
	tensor.ScaleInto(out, x.Value, s)
	return t.record(out, "scale", func(grad *tensor.Tensor) {
		g := t.alloc(grad.Rows(), grad.Cols())
		tensor.ScaleInto(g, grad, s)
		x.accumulate(g)
	}, x)
}

// Mul returns the element-wise product a*b.
func (t *Tape) Mul(a, b *Variable) *Variable {
	out := t.alloc(a.Value.Rows(), a.Value.Cols())
	tensor.MulInto(out, a.Value, b.Value)
	return t.record(out, "mul", func(grad *tensor.Tensor) {
		if a.requiresGrad {
			ga := t.alloc(grad.Rows(), grad.Cols())
			tensor.MulInto(ga, grad, b.Value)
			a.accumulate(ga)
		}
		if b.requiresGrad {
			gb := t.alloc(grad.Rows(), grad.Cols())
			tensor.MulInto(gb, grad, a.Value)
			b.accumulate(gb)
		}
	}, a, b)
}

// ReLU applies max(0, x) element-wise.
func (t *Tape) ReLU(x *Variable) *Variable {
	out := t.alloc(x.Value.Rows(), x.Value.Cols())
	tensor.ReLUInto(out, x.Value)
	return t.record(out, "relu", func(grad *tensor.Tensor) {
		g := t.alloc(grad.Rows(), grad.Cols())
		tensor.ReLUBackwardInto(g, grad, x.Value)
		x.accumulate(g)
	}, x)
}

// LeakyReLU applies x>0 ? x : slope*x element-wise.
func (t *Tape) LeakyReLU(x *Variable, slope float32) *Variable {
	out := t.alloc(x.Value.Rows(), x.Value.Cols())
	tensor.LeakyReLUInto(out, x.Value, slope)
	return t.record(out, "leaky_relu", func(grad *tensor.Tensor) {
		g := t.alloc(grad.Rows(), grad.Cols())
		tensor.LeakyReLUBackwardInto(g, grad, x.Value, slope)
		x.accumulate(g)
	}, x)
}

// Dropout applies inverted dropout with probability p when training is true;
// otherwise it is the identity.
func (t *Tape) Dropout(x *Variable, p float32, rng *tensor.RNG, training bool) *Variable {
	if !training || p <= 0 {
		return x
	}
	out := t.alloc(x.Value.Rows(), x.Value.Cols())
	mask := t.alloc(x.Value.Rows(), x.Value.Cols())
	tensor.DropoutInto(out, mask, x.Value, p, rng)
	return t.record(out, "dropout", func(grad *tensor.Tensor) {
		g := t.alloc(grad.Rows(), grad.Cols())
		tensor.MulInto(g, grad, mask)
		x.accumulate(g)
	}, x)
}

// ConcatCols concatenates a and b along columns: result is R x (Ca+Cb).
func (t *Tape) ConcatCols(a, b *Variable) *Variable {
	if a.Value.Rows() != b.Value.Rows() {
		panic(fmt.Sprintf("autograd: ConcatCols rows %d vs %d", a.Value.Rows(), b.Value.Rows()))
	}
	r, ca, cb := a.Value.Rows(), a.Value.Cols(), b.Value.Cols()
	out := t.alloc(r, ca+cb)
	for i := 0; i < r; i++ {
		row := out.Row(i)
		copy(row[:ca], a.Value.Row(i))
		copy(row[ca:], b.Value.Row(i))
	}
	return t.record(out, "concat_cols", func(grad *tensor.Tensor) {
		if a.requiresGrad {
			ga := t.alloc(r, ca)
			for i := 0; i < r; i++ {
				copy(ga.Row(i), grad.Row(i)[:ca])
			}
			a.accumulate(ga)
		}
		if b.requiresGrad {
			gb := t.alloc(r, cb)
			for i := 0; i < r; i++ {
				copy(gb.Row(i), grad.Row(i)[ca:])
			}
			b.accumulate(gb)
		}
	}, a, b)
}

// ConcatRows stacks variables vertically. All must share the column count.
func (t *Tape) ConcatRows(parts ...*Variable) *Variable {
	if len(parts) == 0 {
		panic("autograd: ConcatRows with no parts")
	}
	cols := parts[0].Value.Cols()
	total := 0
	for _, p := range parts {
		if p.Value.Cols() != cols {
			panic("autograd: ConcatRows column mismatch")
		}
		total += p.Value.Rows()
	}
	out := t.alloc(total, cols)
	off := 0
	for _, p := range parts {
		copy(out.Data()[off*cols:], p.Value.Data())
		off += p.Value.Rows()
	}
	ps := parts
	return t.record(out, "concat_rows", func(grad *tensor.Tensor) {
		off := 0
		for _, p := range ps {
			n := p.Value.Rows()
			if p.requiresGrad {
				g := t.alloc(n, cols)
				copy(g.Data(), grad.Data()[off*cols:(off+n)*cols])
				p.accumulate(g)
			}
			off += n
		}
	}, parts...)
}

// SliceRows takes rows [lo, hi) of x as a new variable.
func (t *Tape) SliceRows(x *Variable, lo, hi int) *Variable {
	src := x.Value.RowSlice(lo, hi)
	out := t.alloc(src.Rows(), src.Cols())
	out.CopyFrom(src)
	return t.record(out, "slice_rows", func(grad *tensor.Tensor) {
		if !x.requiresGrad {
			return
		}
		g := t.alloc(x.Value.Rows(), x.Value.Cols())
		copy(g.Data()[lo*g.Cols():hi*g.Cols()], grad.Data())
		x.accumulate(g)
	}, x)
}

// MulColVec multiplies each row i of x by coeff[i] (a per-row scalar).
// coeff is captured by reference and treated as a constant.
func (t *Tape) MulColVec(x *Variable, coeff []float32) *Variable {
	if len(coeff) != x.Value.Rows() {
		panic(fmt.Sprintf("autograd: MulColVec %d coeffs for %d rows", len(coeff), x.Value.Rows()))
	}
	out := t.alloc(x.Value.Rows(), x.Value.Cols())
	for i := 0; i < x.Value.Rows(); i++ {
		c := coeff[i]
		src, dst := x.Value.Row(i), out.Row(i)
		for j, v := range src {
			dst[j] = v * c
		}
	}
	return t.record(out, "mul_colvec", func(grad *tensor.Tensor) {
		g := t.alloc(grad.Rows(), grad.Cols())
		for i := 0; i < grad.Rows(); i++ {
			c := coeff[i]
			src, dst := grad.Row(i), g.Row(i)
			for j, v := range src {
				dst[j] = v * c
			}
		}
		x.accumulate(g)
	}, x)
}

// RowDot computes, for each row i, the dot product of x's row i with the 1xC
// vector w, yielding an Rx1 column. Used for attention score computation.
func (t *Tape) RowDot(x, w *Variable) *Variable {
	if w.Value.Rows() != 1 || w.Value.Cols() != x.Value.Cols() {
		panic("autograd: RowDot wants 1xC weight matching x columns")
	}
	r := x.Value.Rows()
	out := t.alloc(r, 1)
	for i := 0; i < r; i++ {
		out.Set(i, 0, tensor.Dot(x.Value.Row(i), w.Value.Row(0)))
	}
	return t.record(out, "row_dot", func(grad *tensor.Tensor) {
		if x.requiresGrad {
			gx := t.alloc(r, x.Value.Cols())
			for i := 0; i < r; i++ {
				gi := grad.At(i, 0)
				wr := w.Value.Row(0)
				dst := gx.Row(i)
				for j, wv := range wr {
					dst[j] = gi * wv
				}
			}
			x.accumulate(gx)
		}
		if w.requiresGrad {
			gw := t.alloc(1, w.Value.Cols())
			for i := 0; i < r; i++ {
				gi := grad.At(i, 0)
				xr := x.Value.Row(i)
				dst := gw.Row(0)
				for j, xv := range xr {
					dst[j] += gi * xv
				}
			}
			w.accumulate(gw)
		}
	}, x, w)
}
