package autograd

import "neutronstar/internal/obs"

// Forward-pass timing of the two graph-operation primitives every GNN layer
// funnels through (§4.1's ScatterToEdge / GatherByDst). Histograms live on
// the default registry for the debug server's /metrics endpoint.
var (
	obsGatherSeconds = obs.Default().Histogram("ns_autograd_gather_seconds",
		"Forward duration of Gather (ScatterToEdge) calls.", obs.TimeBuckets)
	obsScatterSeconds = obs.Default().Histogram("ns_autograd_scatter_seconds",
		"Forward duration of ScatterAddRows (GatherByDst) calls.", obs.TimeBuckets)
)
