package autograd

import (
	"math"
	"testing"
	"testing/quick"

	"neutronstar/internal/tensor"
)

// checkGrad verifies the analytic gradient of a scalar-valued function
// against central finite differences. build must construct the computation on
// the given tape from the leaf values and return the scalar output variable
// along with the leaf variables whose gradients should be checked.
func checkGrad(t *testing.T, name string, inputs []*tensor.Tensor,
	build func(tape *Tape, leaves []*Variable) *Variable) {
	t.Helper()

	run := func() ([]*Variable, *Variable) {
		tape := NewTape()
		leaves := make([]*Variable, len(inputs))
		for i, in := range inputs {
			leaves[i] = tape.Leaf(in, true, "leaf")
		}
		out := build(tape, leaves)
		if out.Value.Len() != 1 {
			t.Fatalf("%s: build must return scalar, got %dx%d", name, out.Value.Rows(), out.Value.Cols())
		}
		tape.Backward(out, nil)
		return leaves, out
	}
	leaves, _ := run()

	const eps = 1e-3
	for li, in := range inputs {
		for k := range in.Data() {
			orig := in.Data()[k]
			in.Data()[k] = orig + eps
			_, plus := run()
			in.Data()[k] = orig - eps
			_, minus := run()
			in.Data()[k] = orig
			num := (float64(plus.Value.At(0, 0)) - float64(minus.Value.At(0, 0))) / (2 * eps)
			ana := float64(leaves[li].Grad.Data()[k])
			if math.Abs(num-ana) > 2e-2*math.Max(1, math.Abs(num)) {
				t.Fatalf("%s: leaf %d elem %d: analytic %v vs numeric %v", name, li, k, ana, num)
			}
		}
	}
}

// sumAll reduces any variable to a scalar by summing (a fixed differentiable
// reduction for gradient checking): implemented as x @ ones then ones @ ... —
// simpler: MSE against zeros times n/2... Use MatMul with ones vectors.
func sumAll(tape *Tape, x *Variable) *Variable {
	onesR := tensor.New(1, x.Value.Rows())
	onesR.Fill(1)
	onesC := tensor.New(x.Value.Cols(), 1)
	onesC.Fill(1)
	l := tape.Constant(onesR, "onesR")
	r := tape.Constant(onesC, "onesC")
	return tape.MatMul(tape.MatMul(l, x), r)
}

func randT(rows, cols int, seed uint64) *tensor.Tensor {
	return tensor.RandNormal(rows, cols, 0, 1, tensor.NewRNG(seed))
}

func TestGradMatMul(t *testing.T) {
	checkGrad(t, "matmul", []*tensor.Tensor{randT(3, 4, 1), randT(4, 2, 2)},
		func(tape *Tape, l []*Variable) *Variable {
			return sumAll(tape, tape.MatMul(l[0], l[1]))
		})
}

func TestGradAddAndBias(t *testing.T) {
	checkGrad(t, "add", []*tensor.Tensor{randT(2, 3, 3), randT(2, 3, 4)},
		func(tape *Tape, l []*Variable) *Variable {
			return sumAll(tape, tape.Add(l[0], l[1]))
		})
	checkGrad(t, "add_bias", []*tensor.Tensor{randT(3, 4, 5), randT(1, 4, 6)},
		func(tape *Tape, l []*Variable) *Variable {
			// Weight the output so bias grads differ per column.
			w := randT(4, 1, 7)
			return sumAll(tape, tape.MatMul(tape.AddBias(l[0], l[1]), tape.Constant(w, "w")))
		})
}

func TestGradMulScale(t *testing.T) {
	checkGrad(t, "mul", []*tensor.Tensor{randT(2, 3, 8), randT(2, 3, 9)},
		func(tape *Tape, l []*Variable) *Variable {
			return sumAll(tape, tape.Mul(l[0], l[1]))
		})
	checkGrad(t, "scale", []*tensor.Tensor{randT(2, 3, 10)},
		func(tape *Tape, l []*Variable) *Variable {
			return sumAll(tape, tape.Scale(l[0], 2.5))
		})
}

func TestGradReLUFamily(t *testing.T) {
	// Shift away from 0 to avoid kinks breaking finite differences.
	x := randT(3, 3, 11)
	for i, v := range x.Data() {
		if math.Abs(float64(v)) < 0.1 {
			x.Data()[i] = v + 0.2
		}
	}
	checkGrad(t, "relu", []*tensor.Tensor{x.Clone()},
		func(tape *Tape, l []*Variable) *Variable {
			w := randT(3, 1, 12)
			return sumAll(tape, tape.MatMul(tape.ReLU(l[0]), tape.Constant(w, "w")))
		})
	checkGrad(t, "leaky_relu", []*tensor.Tensor{x.Clone()},
		func(tape *Tape, l []*Variable) *Variable {
			return sumAll(tape, tape.LeakyReLU(l[0], 0.2))
		})
}

func TestGradConcat(t *testing.T) {
	checkGrad(t, "concat_cols", []*tensor.Tensor{randT(3, 2, 13), randT(3, 4, 14)},
		func(tape *Tape, l []*Variable) *Variable {
			w := randT(6, 1, 15)
			return sumAll(tape, tape.MatMul(tape.ConcatCols(l[0], l[1]), tape.Constant(w, "w")))
		})
	checkGrad(t, "concat_rows", []*tensor.Tensor{randT(2, 3, 16), randT(4, 3, 17)},
		func(tape *Tape, l []*Variable) *Variable {
			w := randT(3, 1, 18)
			return sumAll(tape, tape.MatMul(tape.ConcatRows(l[0], l[1]), tape.Constant(w, "w")))
		})
}

func TestGradSliceRows(t *testing.T) {
	checkGrad(t, "slice_rows", []*tensor.Tensor{randT(5, 3, 19)},
		func(tape *Tape, l []*Variable) *Variable {
			w := randT(3, 1, 20)
			return sumAll(tape, tape.MatMul(tape.SliceRows(l[0], 1, 4), tape.Constant(w, "w")))
		})
}

func TestGradGatherScatter(t *testing.T) {
	idx := []int32{0, 2, 2, 1, 0}
	checkGrad(t, "gather", []*tensor.Tensor{randT(3, 2, 21)},
		func(tape *Tape, l []*Variable) *Variable {
			w := randT(2, 1, 22)
			return sumAll(tape, tape.MatMul(tape.Gather(l[0], idx), tape.Constant(w, "w")))
		})
	checkGrad(t, "scatter_add", []*tensor.Tensor{randT(5, 2, 23)},
		func(tape *Tape, l []*Variable) *Variable {
			w := randT(2, 1, 24)
			return sumAll(tape, tape.MatMul(tape.ScatterAddRows(l[0], idx, 3), tape.Constant(w, "w")))
		})
}

func TestGradScatterMax(t *testing.T) {
	idx := []int32{0, 1, 1, 0}
	checkGrad(t, "scatter_max", []*tensor.Tensor{randT(4, 3, 25)},
		func(tape *Tape, l []*Variable) *Variable {
			w := randT(3, 1, 26)
			return sumAll(tape, tape.MatMul(tape.ScatterMaxRows(l[0], idx, 2), tape.Constant(w, "w")))
		})
}

func TestGradSegmentSoftmax(t *testing.T) {
	offsets := []int32{0, 3, 5, 5, 7}
	checkGrad(t, "segment_softmax", []*tensor.Tensor{randT(7, 1, 27)},
		func(tape *Tape, l []*Variable) *Variable {
			w := randT(1, 1, 28)
			return sumAll(tape, tape.MatMul(tape.SegmentSoftmax(l[0], offsets), tape.Constant(w, "w")))
		})
}

func TestGradBroadcastColMul(t *testing.T) {
	checkGrad(t, "broadcast_col_mul", []*tensor.Tensor{randT(4, 3, 29), randT(4, 1, 30)},
		func(tape *Tape, l []*Variable) *Variable {
			w := randT(3, 1, 31)
			return sumAll(tape, tape.MatMul(tape.BroadcastColMul(l[0], l[1]), tape.Constant(w, "w")))
		})
}

func TestGradRowDot(t *testing.T) {
	checkGrad(t, "row_dot", []*tensor.Tensor{randT(4, 3, 32), randT(1, 3, 33)},
		func(tape *Tape, l []*Variable) *Variable {
			w := randT(1, 1, 34)
			return sumAll(tape, tape.MatMul(tape.RowDot(l[0], l[1]), tape.Constant(w, "w")))
		})
}

func TestGradMulColVec(t *testing.T) {
	checkGrad(t, "mul_colvec", []*tensor.Tensor{randT(3, 2, 35)},
		func(tape *Tape, l []*Variable) *Variable {
			return sumAll(tape, tape.MulColVec(l[0], []float32{0.5, -1.5, 2}))
		})
}

func TestGradLogSoftmaxNLL(t *testing.T) {
	labels := []int32{0, 2, 1}
	mask := []bool{true, false, true}
	checkGrad(t, "logsoftmax_nll", []*tensor.Tensor{randT(3, 3, 36)},
		func(tape *Tape, l []*Variable) *Variable {
			loss, n := tape.NLLLossMasked(tape.LogSoftmax(l[0]), labels, mask)
			if n != 2 {
				t.Fatalf("mask count = %d", n)
			}
			return loss
		})
}

func TestGradMSE(t *testing.T) {
	target := randT(2, 3, 37)
	checkGrad(t, "mse", []*tensor.Tensor{randT(2, 3, 38)},
		func(tape *Tape, l []*Variable) *Variable {
			return tape.MSELoss(l[0], target)
		})
}

func TestGradTwoLayerMLPChain(t *testing.T) {
	// End-to-end: x @ W1 -> relu -> @ W2 -> logsoftmax -> nll.
	labels := []int32{1, 0, 2, 1}
	mask := []bool{true, true, true, true}
	checkGrad(t, "mlp_chain",
		[]*tensor.Tensor{randT(4, 5, 39), randT(5, 6, 40), randT(6, 3, 41)},
		func(tape *Tape, l []*Variable) *Variable {
			h := tape.ReLU(tape.MatMul(l[0], l[1]))
			logits := tape.MatMul(h, l[2])
			loss, _ := tape.NLLLossMasked(tape.LogSoftmax(logits), labels, mask)
			return loss
		})
}

func TestBackwardAccumulatesOverReuse(t *testing.T) {
	// y = x + x should give dL/dx = 2 * ones.
	tape := NewTape()
	x := tape.Leaf(randT(2, 2, 42), true, "x")
	y := tape.Add(x, x)
	s := sumAll(tape, y)
	tape.Backward(s, nil)
	for _, v := range x.Grad.Data() {
		if math.Abs(float64(v)-2) > 1e-5 {
			t.Fatalf("reused-variable gradient = %v, want 2", v)
		}
	}
}

func TestConstantGetsNoGrad(t *testing.T) {
	tape := NewTape()
	c := tape.Constant(randT(2, 2, 43), "c")
	x := tape.Leaf(randT(2, 2, 44), true, "x")
	s := sumAll(tape, tape.Mul(c, x))
	tape.Backward(s, nil)
	if c.Grad != nil {
		t.Fatal("constant accumulated a gradient")
	}
	if x.Grad == nil {
		t.Fatal("leaf got no gradient")
	}
}

func TestDropoutTrainingFalseIsIdentity(t *testing.T) {
	tape := NewTape()
	x := tape.Leaf(randT(3, 3, 45), true, "x")
	y := tape.Dropout(x, 0.5, tensor.NewRNG(1), false)
	if y != x {
		t.Fatal("dropout in eval mode should be a no-op passthrough")
	}
}

func TestDropoutBackwardMask(t *testing.T) {
	tape := NewTape()
	in := tensor.New(1, 100)
	in.Fill(1)
	x := tape.Leaf(in, true, "x")
	y := tape.Dropout(x, 0.5, tensor.NewRNG(7), true)
	s := sumAll(tape, y)
	tape.Backward(s, nil)
	// Gradient must be zero exactly where output is zero, 1/(1-p) elsewhere.
	for i := range y.Value.Data() {
		out, g := y.Value.Data()[i], x.Grad.Data()[i]
		if out == 0 && g != 0 {
			t.Fatalf("grad leaked through dropped element %d", i)
		}
		if out != 0 && math.Abs(float64(g)-2) > 1e-5 {
			t.Fatalf("kept element %d grad = %v, want 2", i, g)
		}
	}
}

func TestTapeResetReuse(t *testing.T) {
	tape := NewTape()
	for iter := 0; iter < 3; iter++ {
		x := tape.Leaf(randT(2, 2, uint64(50+iter)), true, "x")
		s := sumAll(tape, tape.Scale(x, 3))
		tape.Backward(s, nil)
		for _, v := range x.Grad.Data() {
			if math.Abs(float64(v)-3) > 1e-5 {
				t.Fatalf("iter %d grad %v", iter, v)
			}
		}
		tape.Reset()
		if tape.NumNodes() != 0 {
			t.Fatal("Reset did not clear nodes")
		}
	}
}

func TestBackwardSeedShapePanics(t *testing.T) {
	tape := NewTape()
	x := tape.Leaf(randT(2, 2, 60), true, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar nil-seed root")
		}
	}()
	tape.Backward(x, nil)
}

// Property: gather then scatter-add with the same index is, in gradient
// terms, multiplication by the index multiplicity (the paper's
// ScatterToEdge/GatherBySrc duality).
func TestQuickGatherScatterDuality(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%6) + 2
		rng := tensor.NewRNG(seed)
		idx := make([]int32, n*2)
		count := make([]float32, n)
		for i := range idx {
			idx[i] = int32(rng.Intn(n))
			count[idx[i]]++
		}
		tape := NewTape()
		x := tape.Leaf(tensor.RandNormal(n, 3, 0, 1, rng), true, "x")
		edges := tape.Gather(x, idx)
		back := tape.ScatterAddRows(edges, idx, n)
		s := sumAll(tape, back)
		tape.Backward(s, nil)
		for i := 0; i < n; i++ {
			for _, g := range x.Grad.Row(i) {
				if math.Abs(float64(g-count[i])) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: segment softmax output sums to 1 within every non-empty segment.
func TestQuickSegmentSoftmaxNormalised(t *testing.T) {
	f := func(seed uint64, segs8 uint8) bool {
		rng := tensor.NewRNG(seed)
		nSeg := int(segs8%5) + 1
		offsets := make([]int32, nSeg+1)
		total := int32(0)
		for s := 1; s <= nSeg; s++ {
			total += int32(rng.Intn(4)) // segments may be empty
			offsets[s] = total
		}
		tape := NewTape()
		scores := tape.Leaf(tensor.RandNormal(int(total), 1, 0, 2, rng), true, "s")
		p := tape.SegmentSoftmax(scores, offsets)
		for s := 0; s < nSeg; s++ {
			lo, hi := offsets[s], offsets[s+1]
			if lo == hi {
				continue
			}
			var sum float64
			for i := lo; i < hi; i++ {
				sum += float64(p.Value.At(int(i), 0))
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherEmptyIndex(t *testing.T) {
	tape := NewTape()
	x := tape.Leaf(randT(3, 2, 70), true, "x")
	out := tape.Gather(x, nil)
	if out.Value.Rows() != 0 || out.Value.Cols() != 2 {
		t.Fatalf("empty gather shape %dx%d", out.Value.Rows(), out.Value.Cols())
	}
}

func TestScatterAddEmptyEdges(t *testing.T) {
	tape := NewTape()
	edges := tape.Leaf(tensor.New(0, 3), true, "e")
	out := tape.ScatterAddRows(edges, nil, 4)
	if out.Value.Rows() != 4 {
		t.Fatal("scatter to 4 rows failed")
	}
	if tensor.Norm(out.Value) != 0 {
		t.Fatal("empty scatter produced nonzero output")
	}
}

func TestBackwardIgnoresUnusedBranch(t *testing.T) {
	// A dead-end op (its output never reaches the root) must contribute no
	// gradient.
	tape := NewTape()
	x := tape.Leaf(randT(2, 2, 71), true, "x")
	_ = tape.Scale(x, 100) // dead branch
	out := tape.Scale(x, 2)
	s := sumAll(tape, out)
	tape.Backward(s, nil)
	for _, g := range x.Grad.Data() {
		if math.Abs(float64(g)-2) > 1e-5 {
			t.Fatalf("dead branch leaked gradient: %v", g)
		}
	}
}

func TestBackwardFromDifferentTapePanics(t *testing.T) {
	t1, t2 := NewTape(), NewTape()
	x := t1.Leaf(randT(1, 1, 72), true, "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected cross-tape panic")
		}
	}()
	t2.Backward(x, nil)
}

func TestSegmentSoftmaxBadOffsetsPanics(t *testing.T) {
	tape := NewTape()
	s := tape.Leaf(randT(5, 1, 73), true, "s")
	defer func() {
		if recover() == nil {
			t.Fatal("expected offsets panic")
		}
	}()
	tape.SegmentSoftmax(s, []int32{0, 3}) // ends at 3, not 5
}

func TestGradSigmoid(t *testing.T) {
	checkGrad(t, "sigmoid", []*tensor.Tensor{randT(2, 3, 80)},
		func(tape *Tape, l []*Variable) *Variable {
			return sumAll(tape, tape.Sigmoid(l[0]))
		})
}

func TestGradBCEWithLogits(t *testing.T) {
	targets := []float32{1, 0, 1, 1, 0, 0}
	checkGrad(t, "bce", []*tensor.Tensor{randT(6, 1, 81)},
		func(tape *Tape, l []*Variable) *Variable {
			return tape.BCEWithLogitsLoss(l[0], targets)
		})
}

func TestGradRowSum(t *testing.T) {
	checkGrad(t, "row_sum", []*tensor.Tensor{randT(3, 4, 82)},
		func(tape *Tape, l []*Variable) *Variable {
			w := randT(1, 1, 83)
			return sumAll(tape, tape.MatMul(tape.RowSum(l[0]), tape.Constant(w, "w")))
		})
}

func TestBCEStableAtExtremes(t *testing.T) {
	tape := NewTape()
	x := tape.Leaf(tensor.FromRows([][]float32{{50}, {-50}}), true, "x")
	loss := tape.BCEWithLogitsLoss(x, []float32{1, 0})
	if v := loss.Value.At(0, 0); math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || v > 1e-6 {
		t.Fatalf("extreme-logit BCE = %v, want ~0", v)
	}
	tape.Backward(loss, nil)
	for _, g := range x.Grad.Data() {
		if math.IsNaN(float64(g)) {
			t.Fatal("NaN gradient at extreme logits")
		}
	}
}
