package bench

import "fmt"

// Delta is one metric comparison between a baseline run and a current run.
type Delta struct {
	Run    string
	Metric string
	Old    float64
	New    float64
}

// Ratio returns New/Old (Inf-safe: 0 baseline with non-zero current reports
// a large ratio rather than dividing by zero).
func (d Delta) Ratio() float64 {
	if d.Old == 0 {
		if d.New == 0 {
			return 1
		}
		return 1e9
	}
	return d.New / d.Old
}

func (d Delta) String() string {
	return fmt.Sprintf("%s/%s: %.6g -> %.6g (%.2fx)", d.Run, d.Metric, d.Old, d.New, d.Ratio())
}

// Compare evaluates cur against base run-by-run (matched by name) and
// returns the regressions: metrics where cur exceeds base by more than tol
// (e.g. tol=0.15 flags >15% slower or >15% more traffic). Runs present in
// only one document are skipped — adding or removing a configuration is not
// a regression. The compared metrics are wall_median_seconds,
// bytes_per_epoch, allocs_per_epoch and straggler_index: time, traffic,
// allocator pressure, and load balance. Allocs and straggler indices are
// only compared when both documents report them (older baselines carry zero
// there and are skipped).
func Compare(base, cur *Doc, tol float64) []Delta {
	byName := make(map[string]*Run, len(base.Runs))
	for i := range base.Runs {
		byName[base.Runs[i].Name] = &base.Runs[i]
	}
	var regs []Delta
	for i := range cur.Runs {
		c := &cur.Runs[i]
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		if d := (Delta{Run: c.Name, Metric: "wall_median_seconds",
			Old: b.WallMedianSeconds, New: c.WallMedianSeconds}); d.Ratio() > 1+tol {
			regs = append(regs, d)
		}
		if d := (Delta{Run: c.Name, Metric: "bytes_per_epoch",
			Old: float64(b.BytesPerEpoch), New: float64(c.BytesPerEpoch)}); d.Ratio() > 1+tol {
			regs = append(regs, d)
		}
		if b.AllocsPerEpoch > 0 && c.AllocsPerEpoch > 0 {
			if d := (Delta{Run: c.Name, Metric: "allocs_per_epoch",
				Old: float64(b.AllocsPerEpoch), New: float64(c.AllocsPerEpoch)}); d.Ratio() > 1+tol {
				regs = append(regs, d)
			}
		}
		if b.StragglerIndex > 0 && c.StragglerIndex > 0 {
			if d := (Delta{Run: c.Name, Metric: "straggler_index",
				Old: b.StragglerIndex, New: c.StragglerIndex}); d.Ratio() > 1+tol {
				regs = append(regs, d)
			}
		}
	}
	regs = append(regs, compareServing(base.Serving, cur.Serving, tol)...)
	return regs
}

// compareServing gates the serving axes when both documents carry a serving
// block: p99 latency regresses upward, throughput regresses downward. Like
// run matching, a serving block present on only one side is skipped — adding
// serving coverage is not a regression.
func compareServing(b, c *ServingSummary, tol float64) []Delta {
	if b == nil || c == nil {
		return nil
	}
	var regs []Delta
	if d := (Delta{Run: "serving", Metric: "p99_latency_ms",
		Old: b.P99LatencyMs, New: c.P99LatencyMs}); d.Ratio() > 1+tol {
		regs = append(regs, d)
	}
	// Throughput is better-is-higher: regression when current falls below
	// baseline by more than the tolerance.
	if d := (Delta{Run: "serving", Metric: "qps",
		Old: b.QPS, New: c.QPS}); b.QPS > 0 && c.QPS < b.QPS/(1+tol) {
		regs = append(regs, d)
	}
	return regs
}
