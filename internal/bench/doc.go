// Package bench defines the machine-readable benchmark document (BENCH.json)
// and the pipeline that produces and compares it. The document is the
// repository's performance contract: nsbench -json emits it, tools/benchdiff
// compares two of them, and CI runs both on every change.
//
// Schema stability rules:
//
//   - SchemaVersion bumps on any breaking change (field rename/removal or a
//     semantic change to an existing field). Adding fields is non-breaking.
//   - Stage names come from obs.StageNames() and are part of the contract —
//     renaming a stage is a schema break.
//   - All durations are seconds (float64), all traffic is bytes (int64).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"neutronstar/internal/obs"
)

// SchemaVersion is the current BENCH.json schema version.
//
// v2 added allocator metrics: Run.AllocsPerEpoch, Run.HeapBytesPerEpoch and
// the optional Run.Pool summary.
//
// v3 added causal metrics: Run.StragglerIndex, Run.BarrierShare and the
// optional Run.CritPath (the critical path of the run's median epoch).
//
// v4 added the optional Doc.Serving block (online-inference load results from
// nsload: QPS, latency percentiles, cache effectiveness) and allowed
// serving-only documents with no training runs.
//
// v5 added the replication flip counters ResidualSummary.FlipsToRep /
// FlipsFromRep (counterfactual moves into and out of the replicated policy
// under the 4-way planner).
//
// Older tools reject newer documents (the version check is exact), so the
// committed baseline must be regenerated on a bump.
const SchemaVersion = 5

// Host records where the document was produced. Comparisons across different
// hosts are informational, not regressions.
type Host struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CurrentHost captures the running process's host metadata.
func CurrentHost() Host {
	return Host{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// GraphInfo describes the benchmark workload.
type GraphInfo struct {
	Name       string `json:"name"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`
	FeatureDim int    `json:"feature_dim"`
	HiddenDim  int    `json:"hidden_dim"`
	Classes    int    `json:"classes"`
	Layers     int    `json:"layers"`
}

// StageSummary aggregates one stage across the measured epochs of a run.
type StageSummary struct {
	Stage string `json:"stage"`
	// MedianSeconds is the median over epochs of the stage's total seconds
	// (summed across workers and layers within each epoch).
	MedianSeconds float64 `json:"median_seconds"`
	MeanSeconds   float64 `json:"mean_seconds"`
	// BytesPerEpoch / MsgsPerEpoch are per-epoch means.
	BytesPerEpoch int64 `json:"bytes_per_epoch,omitempty"`
	MsgsPerEpoch  int64 `json:"msgs_per_epoch,omitempty"`
}

// FactorSet is a JSON-stable rendering of costmodel.Costs.
type FactorSet struct {
	Tv float64 `json:"tv"`
	Te float64 `json:"te"`
	Tc float64 `json:"tc"`
}

// ResidualSummary condenses the cost-model validator's output.
type ResidualSummary struct {
	// FitMethod is how the empirical factors were recovered: "least_squares",
	// "scaled", or "probe" (nothing measurable).
	FitMethod string    `json:"fit_method"`
	Probed    FactorSet `json:"probed"`
	Fitted    FactorSet `json:"fitted"`
	// Max absolute per-layer residuals, (meas−pred)/pred.
	MaxAbsComputeResidual float64 `json:"max_abs_compute_residual"`
	MaxAbsCommResidual    float64 `json:"max_abs_comm_residual"`
	// Counterfactual plan diff: decisions that flip when the planner runs
	// under the fitted factors instead of the probed ones. The per-dependency
	// counters cover cache↔comm moves; the per-layer counters cover moves
	// into and out of tensor parallelism under the 3-way planner and moves
	// into and out of replication under the 4-way planner (the rep counters
	// are new in schema v5 — absent on documents from older binaries).
	FlipsCacheToComm int `json:"flips_cache_to_comm"`
	FlipsCommToCache int `json:"flips_comm_to_cache"`
	FlipsToTP        int `json:"flips_to_tp,omitempty"`
	FlipsFromTP      int `json:"flips_from_tp,omitempty"`
	FlipsToRep       int `json:"flips_to_rep,omitempty"`
	FlipsFromRep     int `json:"flips_from_rep,omitempty"`
	Slots            int `json:"slots"`
}

// PoolSummary reports the tensor pool's behaviour over a pooled run.
type PoolSummary struct {
	// Hits / Misses count pool Gets served from a bucket vs. freshly
	// allocated, over the whole run (warmup included).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// HighWaterBytes is the peak of pooled bytes checked out at once.
	HighWaterBytes int64 `json:"high_water_bytes"`
	// HitRate is Hits / (Hits+Misses).
	HitRate float64 `json:"hit_rate"`
}

// Run is one benchmark configuration's result.
type Run struct {
	Name    string `json:"name"`
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	// Epochs is the number of measured (post-warmup) epochs.
	Epochs            int     `json:"epochs"`
	WallMedianSeconds float64 `json:"wall_median_seconds"`
	WallMeanSeconds   float64 `json:"wall_mean_seconds"`
	EpochsPerSec      float64 `json:"epochs_per_sec"`
	// BytesPerEpoch is the per-epoch mean of total attributed traffic (each
	// logical message counted once on the sender and once on the receiver).
	BytesPerEpoch int64   `json:"bytes_per_epoch"`
	FinalLoss     float64 `json:"final_loss"`
	// AllocsPerEpoch / HeapBytesPerEpoch are runtime.MemStats deltas
	// (Mallocs, TotalAlloc) across the measured epochs divided by the epoch
	// count — the allocator pressure one training epoch exerts.
	AllocsPerEpoch    int64 `json:"allocs_per_epoch"`
	HeapBytesPerEpoch int64 `json:"heap_bytes_per_epoch"`
	// Pool summarises tensor-pool reuse; nil when the run had pooling off.
	Pool *PoolSummary `json:"pool,omitempty"`
	// StageCoverage is Σ stage seconds (excluding checkpoint) divided by
	// workers × wall — the accounting identity; ~1.0 when attribution is
	// gap-free.
	StageCoverage float64          `json:"stage_coverage"`
	Stages        []StageSummary   `json:"stages"`
	Residuals     *ResidualSummary `json:"residuals,omitempty"`
	// StragglerIndex is the median over measured epochs of max/mean
	// per-worker busy seconds (1.0 = perfect balance); BarrierShare is the
	// mean fraction of cluster wall time idled at the epoch barrier.
	StragglerIndex float64 `json:"straggler_index,omitempty"`
	BarrierShare   float64 `json:"barrier_share,omitempty"`
	// CritPath is the critical path of the epoch whose wall time is closest
	// to the run's median — the causal chain that bounded a representative
	// epoch. Its spans partition the epoch, so CoveredSeconds ≈ WallSeconds.
	CritPath *obs.CritPath `json:"crit_path,omitempty"`
}

// ServingSummary is one nsload run against a serving endpoint: the online
// inference counterpart of a training Run. Latencies are milliseconds.
type ServingSummary struct {
	// Mode is "closed" (fixed concurrency, next request on completion) or
	// "open" (fixed arrival rate, independent of completions).
	Mode string `json:"mode"`
	// Workload shape: requests sent, how many failed, queried vertices per
	// request, and the seed that pins the request mix.
	Requests    int64  `json:"requests"`
	Errors      int64  `json:"errors"`
	VertsPerReq int    `json:"verts_per_req"`
	Seed        uint64 `json:"seed"`
	// Concurrency is the closed-loop worker count; RateQPS the open-loop
	// target arrival rate (each zero in the other mode).
	Concurrency     int     `json:"concurrency,omitempty"`
	RateQPS         float64 `json:"rate_qps,omitempty"`
	DurationSeconds float64 `json:"duration_seconds"`
	QPS             float64 `json:"qps"`
	P50LatencyMs    float64 `json:"p50_latency_ms"`
	P99LatencyMs    float64 `json:"p99_latency_ms"`
	MeanLatencyMs   float64 `json:"mean_latency_ms"`
	// Cache effectiveness over the load window (deltas of the server's
	// counters, so a warm server still reports this window's behaviour).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Stages is the per-stage latency breakdown parsed from the server's
	// Server-Timing response headers, keyed by stage name (queue, cache,
	// extract, compute, total). Absent when the server predates the header.
	Stages map[string]StageQuantiles `json:"stages,omitempty"`
	// StageCoverage is mean(queue+cache+extract+compute) over mean
	// client-observed latency: how much of what the client waited for the
	// server can account for (the remainder is HTTP transport and
	// encode/decode). Zero when Stages is absent.
	StageCoverage float64 `json:"stage_coverage,omitempty"`
}

// StageQuantiles summarises one pipeline stage's latency over a load run,
// in milliseconds.
type StageQuantiles struct {
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// Doc is the top-level BENCH.json document.
type Doc struct {
	SchemaVersion int       `json:"schema_version"`
	Graph         GraphInfo `json:"graph"`
	Host          Host      `json:"host"`
	Runs          []Run     `json:"runs"`
	// Serving carries online-inference load results (nsload); nil for
	// training-only documents. A serving-only document may have no runs.
	Serving *ServingSummary `json:"serving,omitempty"`
}

// Validate checks the structural contract benchdiff hard-fails on. It does
// not judge performance — only that the document is well-formed.
func (d *Doc) Validate() error {
	if d.SchemaVersion != SchemaVersion {
		return fmt.Errorf("bench: schema_version %d, this tool understands %d", d.SchemaVersion, SchemaVersion)
	}
	if len(d.Runs) == 0 && d.Serving == nil {
		return fmt.Errorf("bench: document has no runs")
	}
	if s := d.Serving; s != nil {
		if s.Mode != "open" && s.Mode != "closed" {
			return fmt.Errorf("bench: serving mode %q (want open or closed)", s.Mode)
		}
		if s.Requests <= 0 {
			return fmt.Errorf("bench: serving requests = %d", s.Requests)
		}
		if s.QPS <= 0 {
			return fmt.Errorf("bench: serving qps = %g", s.QPS)
		}
		if s.P50LatencyMs < 0 || s.P99LatencyMs < s.P50LatencyMs {
			return fmt.Errorf("bench: serving latency percentiles p50=%g p99=%g",
				s.P50LatencyMs, s.P99LatencyMs)
		}
	}
	known := make(map[string]bool)
	for _, s := range obs.StageNames() {
		known[s] = true
	}
	seen := make(map[string]bool)
	for i := range d.Runs {
		r := &d.Runs[i]
		if r.Name == "" {
			return fmt.Errorf("bench: run %d has no name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("bench: duplicate run name %q", r.Name)
		}
		seen[r.Name] = true
		if r.Workers <= 0 {
			return fmt.Errorf("bench: run %q: workers = %d", r.Name, r.Workers)
		}
		if r.Epochs <= 0 {
			return fmt.Errorf("bench: run %q: epochs = %d", r.Name, r.Epochs)
		}
		if r.WallMedianSeconds <= 0 {
			return fmt.Errorf("bench: run %q: wall_median_seconds = %g", r.Name, r.WallMedianSeconds)
		}
		for _, s := range r.Stages {
			if !known[s.Stage] {
				return fmt.Errorf("bench: run %q: unknown stage %q", r.Name, s.Stage)
			}
			if s.MedianSeconds < 0 || s.MeanSeconds < 0 {
				return fmt.Errorf("bench: run %q stage %q: negative seconds", r.Name, s.Stage)
			}
		}
		if r.StragglerIndex < 0 {
			return fmt.Errorf("bench: run %q: straggler_index = %g", r.Name, r.StragglerIndex)
		}
		if p := r.CritPath; p != nil {
			if len(p.Spans) == 0 {
				return fmt.Errorf("bench: run %q: crit_path has no spans", r.Name)
			}
			for j, sp := range p.Spans {
				if sp.Kind != "compute" && sp.Kind != "net" {
					return fmt.Errorf("bench: run %q: crit_path span %d has kind %q", r.Name, j, sp.Kind)
				}
				if sp.EndSeconds < sp.StartSeconds {
					return fmt.Errorf("bench: run %q: crit_path span %d ends before it starts", r.Name, j)
				}
			}
		}
	}
	return nil
}

// ReadFile parses and validates a BENCH.json document.
func ReadFile(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

// WriteFile writes the document as indented JSON.
func (d *Doc) WriteFile(path string) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
