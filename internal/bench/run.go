package bench

import (
	"fmt"
	"runtime"
	"sort"

	"neutronstar/internal/dataset"
	"neutronstar/internal/engine"
	"neutronstar/internal/metrics"
	"neutronstar/internal/obs"
	"neutronstar/internal/tensor"
)

// RunSpec names one benchmark configuration.
type RunSpec struct {
	Name    string
	Mode    engine.Mode
	Workers int
	// Warmup epochs run but are not measured (first-epoch allocator and
	// cache effects would otherwise dominate the medians on small graphs).
	Warmup int
	Epochs int
	// Pool enables the tensor pool for the run; the emitted Run then carries
	// a PoolSummary alongside the allocator deltas.
	Pool bool
	// RepBudget is the per-worker compressed replica byte budget for
	// deprep/hybrid4 runs (0 is mapped to unlimited by the engine).
	RepBudget int64
	// Collector, when non-nil, attaches the utilisation collector to the
	// run's engine so nsbench -json can emit a Chrome trace (with the causal
	// flow arrows) alongside the document.
	Collector *metrics.Collector
}

// BenchSpec is the fixed small workload of the perf-smoke pipeline: an RMAT
// graph big enough that stage times are non-trivial, small enough for CI.
func BenchSpec() dataset.Spec {
	return dataset.Spec{
		Name:       "bench-rmat",
		Vertices:   4000,
		AvgDegree:  12,
		FeatureDim: 32,
		NumClasses: 8,
		HiddenDim:  16,
		Gen:        dataset.GenRMAT,
		Skew:       0.45,
		Seed:       99,
	}
}

// DefaultRuns covers the dependency policies — the hybrid plan and the
// all-communicate plan at the requested cluster size (both exercise the
// fabric), the all-cache plan on one worker (which must move zero bytes),
// and the 3-way plan, whose document rows witness the tensor-parallel
// collectives' exactly-once byte attribution — plus an unpooled hybrid run
// so the document itself witnesses what the tensor pool saves (compare
// allocs_per_epoch between hybrid-wN and hybrid-wN-nopool).
func DefaultRuns(workers int) []RunSpec {
	return []RunSpec{
		{Name: fmt.Sprintf("hybrid-w%d", workers), Mode: engine.Hybrid, Workers: workers, Warmup: 1, Epochs: 5, Pool: true},
		{Name: fmt.Sprintf("hybrid-w%d-nopool", workers), Mode: engine.Hybrid, Workers: workers, Warmup: 1, Epochs: 5},
		{Name: fmt.Sprintf("depcomm-w%d", workers), Mode: engine.DepComm, Workers: workers, Warmup: 1, Epochs: 5, Pool: true},
		{Name: "depcache-w1", Mode: engine.DepCache, Workers: 1, Warmup: 1, Epochs: 5, Pool: true},
		{Name: fmt.Sprintf("hybrid3-w%d", workers), Mode: engine.Hybrid3, Workers: workers, Warmup: 1, Epochs: 5, Pool: true},
	}
}

// PolicyRun builds one extra pinned-shape run for a named policy (the nsbench
// -policy flag), matching the DefaultRuns epoch/pool shape so its rows are
// comparable against the defaults.
func PolicyRun(policy string, workers int) (RunSpec, error) {
	mode := engine.Mode(policy)
	switch mode {
	case engine.DepCache, engine.DepComm, engine.Hybrid, engine.DepTP,
		engine.Hybrid3, engine.DepRep, engine.Hybrid4:
	default:
		return RunSpec{}, fmt.Errorf("bench: unknown policy %q", policy)
	}
	return RunSpec{
		Name: fmt.Sprintf("%s-w%d", policy, workers), Mode: mode,
		Workers: workers, Warmup: 1, Epochs: 5, Pool: true,
	}, nil
}

// Execute runs every spec on ds and assembles the document.
func Execute(ds *dataset.Dataset, specs []RunSpec) (*Doc, error) {
	doc := &Doc{
		SchemaVersion: SchemaVersion,
		Graph: GraphInfo{
			Name:       ds.Spec.Name,
			Vertices:   ds.NumVertices(),
			Edges:      ds.NumEdges(),
			FeatureDim: ds.Spec.FeatureDim,
			HiddenDim:  ds.Spec.HiddenDim,
			Classes:    ds.Spec.NumClasses,
			Layers:     2,
		},
		Host: CurrentHost(),
	}
	for _, spec := range specs {
		run, err := ExecuteRun(ds, spec)
		if err != nil {
			return nil, fmt.Errorf("bench: run %q: %w", spec.Name, err)
		}
		doc.Runs = append(doc.Runs, *run)
	}
	return doc, nil
}

// ExecuteRun trains one configuration under a flight recorder and summarises
// the measured epochs. Allocator pressure (Mallocs / TotalAlloc deltas) is
// measured across the post-warmup epochs only, with a GC between warmup and
// measurement so warmup garbage is not attributed to the measured window.
func ExecuteRun(ds *dataset.Dataset, spec RunSpec) (*Run, error) {
	if spec.Epochs <= 0 {
		return nil, fmt.Errorf("epochs = %d", spec.Epochs)
	}
	var pool *tensor.Pool
	if spec.Pool {
		pool = tensor.NewPool()
	}
	rec := obs.NewFlightRecorder()
	// Causal recording is always on for bench runs: the critical path and
	// straggler indices are part of the v3 document, and the per-event cost
	// is noise at this workload size.
	rec.EnableCausal()
	eng, err := engine.NewEngine(ds, engine.Options{
		Workers:   spec.Workers,
		Mode:      spec.Mode,
		Ring:      true,
		LockFree:  true,
		Overlap:   true,
		Seed:      1,
		Pool:      pool,
		RepBudget: spec.RepBudget,
		Recorder:  rec,
		Collector: spec.Collector,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	stats := eng.Train(spec.Warmup)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	stats = append(stats, eng.Train(spec.Epochs)...)
	runtime.ReadMemStats(&m1)
	recs := rec.Snapshot()
	if len(recs) < spec.Warmup+spec.Epochs {
		return nil, fmt.Errorf("recorded %d epochs, expected %d", len(recs), spec.Warmup+spec.Epochs)
	}
	recs = recs[spec.Warmup:]
	run := summarize(eng, spec, recs, stats[len(stats)-1].Loss)
	run.AllocsPerEpoch = int64(m1.Mallocs-m0.Mallocs) / int64(spec.Epochs)
	run.HeapBytesPerEpoch = int64(m1.TotalAlloc-m0.TotalAlloc) / int64(spec.Epochs)
	if pool != nil {
		ps := pool.Stats()
		run.Pool = &PoolSummary{
			Hits:           ps.Hits,
			Misses:         ps.Misses,
			HighWaterBytes: ps.HighWaterBytes,
			HitRate:        ps.HitRate(),
		}
	}
	return run, nil
}

func summarize(eng *engine.Engine, spec RunSpec, recs []obs.EpochRecord, finalLoss float64) *Run {
	run := &Run{
		Name:      spec.Name,
		Mode:      string(spec.Mode),
		Workers:   spec.Workers,
		Epochs:    len(recs),
		FinalLoss: finalLoss,
	}
	walls := make([]float64, len(recs))
	var wallSum float64
	var bytesSum int64
	var coverSum float64
	for i := range recs {
		r := &recs[i]
		walls[i] = r.WallSeconds
		wallSum += r.WallSeconds
		bytesSum += r.TotalBytes()
		var covered float64
		for _, s := range obs.StageNames() {
			if s == "checkpoint" {
				continue // saved outside the epoch wall by design
			}
			covered += r.StageSeconds(s)
		}
		if span := float64(r.Workers) * r.WallSeconds; span > 0 {
			coverSum += covered / span
		}
	}
	n := float64(len(recs))
	run.WallMedianSeconds = median(walls)
	run.WallMeanSeconds = wallSum / n
	if wallSum > 0 {
		run.EpochsPerSec = n / wallSum
	}
	run.BytesPerEpoch = int64(float64(bytesSum) / n)
	run.StageCoverage = coverSum / n

	// Causal summary: the straggler index is a per-epoch median (robust to
	// one skewed epoch), the barrier share a mean, and the critical path is
	// taken from the epoch closest to the median wall time — a representative
	// epoch, not a cherry-picked best or worst.
	stragglers := make([]float64, 0, len(recs))
	var barrierSum float64
	medianIdx, medianDist := -1, 0.0
	for i := range recs {
		r := &recs[i]
		if r.StragglerIndex > 0 {
			stragglers = append(stragglers, r.StragglerIndex)
		}
		barrierSum += r.BarrierShare
		if d := abs(r.WallSeconds - run.WallMedianSeconds); medianIdx < 0 || d < medianDist {
			medianIdx, medianDist = i, d
		}
	}
	run.StragglerIndex = median(stragglers)
	run.BarrierShare = barrierSum / n
	if medianIdx >= 0 {
		run.CritPath = recs[medianIdx].CritPath
	}

	for _, stage := range obs.StageNames() {
		perEpoch := make([]float64, len(recs))
		var secSum float64
		var bSum, mSum int64
		for i := range recs {
			s := recs[i].StageSeconds(stage)
			perEpoch[i] = s
			secSum += s
			bSum += recs[i].StageBytes(stage)
			mSum += recs[i].StageMsgs(stage)
		}
		if secSum == 0 && bSum == 0 && mSum == 0 {
			continue
		}
		run.Stages = append(run.Stages, StageSummary{
			Stage:         stage,
			MedianSeconds: median(perEpoch),
			MeanSeconds:   secSum / n,
			BytesPerEpoch: int64(float64(bSum) / n),
			MsgsPerEpoch:  int64(float64(mSum) / n),
		})
	}

	if cr := eng.CostReportFrom(recs); cr != nil {
		rs := &ResidualSummary{
			FitMethod:        cr.FitMethod,
			Probed:           FactorSet{Tv: cr.Probed.Tv, Te: cr.Probed.Te, Tc: cr.Probed.Tc},
			Fitted:           FactorSet{Tv: cr.Fitted.Tv, Te: cr.Fitted.Te, Tc: cr.Fitted.Tc},
			FlipsCacheToComm: cr.Flips.CacheToComm,
			FlipsCommToCache: cr.Flips.CommToCache,
			FlipsToTP:        cr.Flips.ToTP,
			FlipsFromTP:      cr.Flips.FromTP,
			FlipsToRep:       cr.Flips.ToRep,
			FlipsFromRep:     cr.Flips.FromRep,
			Slots:            cr.Flips.Slots,
		}
		for _, lr := range cr.Layers {
			rs.MaxAbsComputeResidual = maxAbs(rs.MaxAbsComputeResidual, lr.ComputeResidual)
			rs.MaxAbsCommResidual = maxAbs(rs.MaxAbsCommResidual, lr.CommResidual)
		}
		run.Residuals = rs
	}
	return run
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxAbs(cur, x float64) float64 {
	if x < 0 {
		x = -x
	}
	if x > cur {
		return x
	}
	return cur
}
