package bench

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"neutronstar/internal/obs"
)

// -update regenerates testdata/golden.json from goldenDoc. Run it after any
// intentional schema change — and bump SchemaVersion if the change is
// breaking.
var update = flag.Bool("update", false, "rewrite golden files")

// goldenDoc is a fixed document exercising every schema field, including the
// optional residual block, the optional pool summary (present on the pooled
// run, absent on the unpooled one), the v3 causal fields (straggler index,
// barrier share and a critical path on the multi-worker run; absent on the
// single-worker one), the v5 replication flip counters and a residual-free
// run. Host metadata is pinned so the golden bytes are host-independent.
func goldenDoc() *Doc {
	return &Doc{
		SchemaVersion: SchemaVersion,
		Graph: GraphInfo{Name: "bench-rmat", Vertices: 4000, Edges: 48000,
			FeatureDim: 32, HiddenDim: 16, Classes: 8, Layers: 2},
		Host: Host{GoVersion: "go1.22.0", GOOS: "linux", GOARCH: "amd64",
			GOMAXPROCS: 8, NumCPU: 8},
		Runs: []Run{
			{
				Name: "hybrid-w4", Mode: "hybrid", Workers: 4, Epochs: 5,
				WallMedianSeconds: 0.025, WallMeanSeconds: 0.026,
				EpochsPerSec: 38.5, BytesPerEpoch: 800000, FinalLoss: 1.9,
				AllocsPerEpoch: 52000, HeapBytesPerEpoch: 9400000,
				Pool: &PoolSummary{Hits: 11800, Misses: 600,
					HighWaterBytes: 2500000, HitRate: 0.9516},
				StageCoverage: 0.998,
				Stages: []StageSummary{
					{Stage: "forward", MedianSeconds: 0.040, MeanSeconds: 0.041},
					{Stage: "backward", MedianSeconds: 0.030, MeanSeconds: 0.031},
					{Stage: "dep_fetch_recv", MedianSeconds: 0.010, MeanSeconds: 0.011,
						BytesPerEpoch: 400000, MsgsPerEpoch: 24},
					{Stage: "grad_sync", MedianSeconds: 0.008, MeanSeconds: 0.008,
						BytesPerEpoch: 120000, MsgsPerEpoch: 24},
					{Stage: "barrier", MedianSeconds: 0.002, MeanSeconds: 0.002},
				},
				Residuals: &ResidualSummary{
					FitMethod:             "least_squares",
					Probed:                FactorSet{Tv: 1e-8, Te: 2e-9, Tc: 5e-9},
					Fitted:                FactorSet{Tv: 1.1e-8, Te: 2.2e-9, Tc: 6e-9},
					MaxAbsComputeResidual: 0.08, MaxAbsCommResidual: 0.15,
					FlipsCacheToComm: 3, FlipsCommToCache: 0,
					FlipsToTP: 1, FlipsFromTP: 0,
					FlipsToRep: 1, FlipsFromRep: 0, Slots: 420,
				},
				StragglerIndex: 1.18, BarrierShare: 0.06,
				CritPath: &obs.CritPath{
					WallSeconds: 0.025, CoveredSeconds: 0.025,
					Spans: []obs.CritSpan{
						{Kind: "compute", Worker: 2, Stage: "forward", Layer: 1,
							StartSeconds: 0, EndSeconds: 0.011},
						{Kind: "net", Worker: 3, From: 2, MsgKind: "rep", Layer: 2,
							StartSeconds: 0.011, EndSeconds: 0.014},
						{Kind: "compute", Worker: 3, Stage: "backward", Layer: 2,
							StartSeconds: 0.014, EndSeconds: 0.025},
					},
				},
			},
			{
				Name: "depcache-w1", Mode: "depcache", Workers: 1, Epochs: 5,
				WallMedianSeconds: 0.060, WallMeanSeconds: 0.061,
				EpochsPerSec: 16.4, BytesPerEpoch: 0, FinalLoss: 1.9,
				AllocsPerEpoch: 81000, HeapBytesPerEpoch: 14000000,
				StageCoverage: 1.0,
				Stages: []StageSummary{
					{Stage: "forward", MedianSeconds: 0.035, MeanSeconds: 0.035},
					{Stage: "backward", MedianSeconds: 0.025, MeanSeconds: 0.026},
				},
			},
		},
		Serving: &ServingSummary{
			Mode: "closed", Requests: 400, Errors: 0, VertsPerReq: 4, Seed: 7,
			Concurrency: 8, DurationSeconds: 1.6, QPS: 250,
			P50LatencyMs: 2.1, P99LatencyMs: 9.8, MeanLatencyMs: 2.9,
			CacheHits: 5200, CacheMisses: 800,
		},
	}
}

// TestGoldenRoundTrip pins the on-disk schema: the committed golden file must
// parse, validate, and re-serialise to byte-identical JSON. A diff here means
// the schema changed — regenerate with -update and review the diff under the
// stability rules in the package comment.
func TestGoldenRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := goldenDoc().WriteFile(golden); err != nil {
			t.Fatal(err)
		}
	}
	doc, err := ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "roundtrip.json")
	if err := doc.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("round-trip changed the document; schema drift?\n--- golden ---\n%s\n--- round-trip ---\n%s", want, got)
	}
}

func TestValidateRejectsMalformedDocs(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Doc)
		wantErr string
	}{
		{"wrong schema version", func(d *Doc) { d.SchemaVersion = 99 }, "schema_version"},
		{"no runs", func(d *Doc) { d.Runs = nil; d.Serving = nil }, "no runs"},
		{"bad serving mode", func(d *Doc) { d.Serving.Mode = "burst" }, "serving mode"},
		{"zero serving requests", func(d *Doc) { d.Serving.Requests = 0 }, "serving requests"},
		{"zero serving qps", func(d *Doc) { d.Serving.QPS = 0 }, "serving qps"},
		{"inverted percentiles", func(d *Doc) { d.Serving.P99LatencyMs = 1 }, "percentiles"},
		{"unnamed run", func(d *Doc) { d.Runs[0].Name = "" }, "no name"},
		{"duplicate names", func(d *Doc) { d.Runs[1].Name = d.Runs[0].Name }, "duplicate"},
		{"zero workers", func(d *Doc) { d.Runs[0].Workers = 0 }, "workers"},
		{"zero epochs", func(d *Doc) { d.Runs[0].Epochs = 0 }, "epochs"},
		{"zero wall", func(d *Doc) { d.Runs[0].WallMedianSeconds = 0 }, "wall_median_seconds"},
		{"unknown stage", func(d *Doc) { d.Runs[0].Stages[0].Stage = "warp_drive" }, "unknown stage"},
		{"negative seconds", func(d *Doc) { d.Runs[0].Stages[0].MeanSeconds = -1 }, "negative seconds"},
		{"negative straggler", func(d *Doc) { d.Runs[0].StragglerIndex = -1 }, "straggler_index"},
		{"empty crit path", func(d *Doc) { d.Runs[0].CritPath.Spans = nil }, "no spans"},
		{"bad span kind", func(d *Doc) { d.Runs[0].CritPath.Spans[0].Kind = "magic" }, "kind"},
		{"inverted span", func(d *Doc) { d.Runs[0].CritPath.Spans[0].EndSeconds = -1 }, "ends before"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := goldenDoc()
			tc.mutate(d)
			err := d.Validate()
			if err == nil {
				t.Fatal("Validate accepted a malformed document")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateAcceptsGolden(t *testing.T) {
	if err := goldenDoc().Validate(); err != nil {
		t.Fatal(err)
	}
}

// A serving-only document (nsload output with no training runs) is valid as
// of schema v4.
func TestValidateAcceptsServingOnlyDoc(t *testing.T) {
	d := goldenDoc()
	d.Runs = nil
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, tc := range cases {
		if got := median(tc.in); got != tc.want {
			t.Fatalf("median(%v) = %g, want %g", tc.in, got, tc.want)
		}
	}
	// median must not reorder its argument.
	xs := []float64{3, 1, 2}
	median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("median mutated its input: %v", xs)
	}
}
