package bench

import "testing"

func TestCompareIdenticalDocsClean(t *testing.T) {
	if regs := Compare(goldenDoc(), goldenDoc(), 0.15); len(regs) != 0 {
		t.Fatalf("identical docs regressed: %v", regs)
	}
}

func TestCompareFlagsWallRegression(t *testing.T) {
	base, cur := goldenDoc(), goldenDoc()
	cur.Runs[0].WallMedianSeconds = base.Runs[0].WallMedianSeconds * 1.5
	regs := Compare(base, cur, 0.15)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly one", regs)
	}
	if regs[0].Run != "hybrid-w4" || regs[0].Metric != "wall_median_seconds" {
		t.Fatalf("flagged %s/%s", regs[0].Run, regs[0].Metric)
	}
}

func TestCompareFlagsByteRegression(t *testing.T) {
	base, cur := goldenDoc(), goldenDoc()
	cur.Runs[0].BytesPerEpoch = base.Runs[0].BytesPerEpoch * 2
	regs := Compare(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "bytes_per_epoch" {
		t.Fatalf("regressions = %v, want one bytes_per_epoch delta", regs)
	}
}

func TestCompareFlagsAllocRegression(t *testing.T) {
	base, cur := goldenDoc(), goldenDoc()
	cur.Runs[0].AllocsPerEpoch = base.Runs[0].AllocsPerEpoch * 2
	regs := Compare(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "allocs_per_epoch" {
		t.Fatalf("regressions = %v, want one allocs_per_epoch delta", regs)
	}
}

func TestCompareSkipsAllocsWhenBaselineLacksThem(t *testing.T) {
	// A pre-v2 baseline deserialises with AllocsPerEpoch == 0; current runs
	// always report a positive count, which must not read as a regression.
	base, cur := goldenDoc(), goldenDoc()
	base.Runs[0].AllocsPerEpoch = 0
	if regs := Compare(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("alloc count compared against absent baseline: %v", regs)
	}
}

func TestCompareWithinToleranceClean(t *testing.T) {
	base, cur := goldenDoc(), goldenDoc()
	cur.Runs[0].WallMedianSeconds = base.Runs[0].WallMedianSeconds * 1.10
	if regs := Compare(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("+10%% flagged at 15%% tolerance: %v", regs)
	}
	// Improvements are never regressions.
	cur.Runs[0].WallMedianSeconds = base.Runs[0].WallMedianSeconds * 0.5
	if regs := Compare(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("a speedup was flagged: %v", regs)
	}
}

func TestCompareSkipsUnmatchedRuns(t *testing.T) {
	base, cur := goldenDoc(), goldenDoc()
	cur.Runs[0].Name = "brand-new-config"
	cur.Runs[0].WallMedianSeconds *= 100
	if regs := Compare(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("unmatched run compared: %v", regs)
	}
}

func TestDeltaRatioZeroBaseline(t *testing.T) {
	// A run that moved zero bytes at baseline and now moves some must be a
	// huge ratio, not a division by zero.
	d := Delta{Old: 0, New: 10}
	if d.Ratio() < 1e6 {
		t.Fatalf("ratio = %g", d.Ratio())
	}
	if (Delta{Old: 0, New: 0}).Ratio() != 1 {
		t.Fatal("0/0 ratio should be 1")
	}
}

func TestCompareServingAxes(t *testing.T) {
	base, cur := goldenDoc(), goldenDoc()

	// Within tolerance: nothing flagged.
	cur.Serving.P99LatencyMs = base.Serving.P99LatencyMs * 1.10
	cur.Serving.QPS = base.Serving.QPS * 0.95
	if regs := Compare(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("within-tolerance serving deltas flagged: %v", regs)
	}

	// p99 regresses upward.
	cur = goldenDoc()
	cur.Serving.P99LatencyMs = base.Serving.P99LatencyMs * 1.30
	regs := Compare(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "p99_latency_ms" {
		t.Fatalf("p99 blow-up not flagged: %v", regs)
	}

	// QPS regresses downward.
	cur = goldenDoc()
	cur.Serving.QPS = base.Serving.QPS * 0.5
	regs = Compare(base, cur, 0.15)
	if len(regs) != 1 || regs[0].Metric != "qps" {
		t.Fatalf("throughput collapse not flagged: %v", regs)
	}

	// Faster and higher-throughput is never a regression.
	cur = goldenDoc()
	cur.Serving.P99LatencyMs = base.Serving.P99LatencyMs * 0.5
	cur.Serving.QPS = base.Serving.QPS * 2
	if regs := Compare(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("a serving improvement was flagged: %v", regs)
	}

	// Serving on one side only is skipped, like unmatched runs.
	cur = goldenDoc()
	cur.Serving.QPS = base.Serving.QPS * 0.1
	base.Serving = nil
	if regs := Compare(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("one-sided serving block compared: %v", regs)
	}
}
