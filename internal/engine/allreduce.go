package engine

import (
	"neutronstar/internal/comm"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
)

// allReduceGrads sums every parameter gradient across workers with a ring
// all-reduce (the AllReduceUpdate of Fig. 6). Every worker finishes with
// bit-identical summed gradients, which keeps the model replicas in exact
// sync after the deterministic optimiser step.
func (ws *workerState) allReduceGrads(epoch int, params []*nn.Param) {
	m := ws.eng.opts.Workers
	if m == 1 {
		return
	}
	coll := ws.eng.opts.Collector
	stop := coll.Track(ws.id, metrics.Comm)
	defer stop()

	total := 0
	for _, p := range params {
		total += p.Grad.Len()
	}
	buf := make([]float32, total)
	off := 0
	for _, p := range params {
		copy(buf[off:], p.Grad.Data())
		off += p.Grad.Len()
	}
	comm.RingAllReduce(ws.eng.fabric, ws.id, m, epoch, buf)
	off = 0
	for _, p := range params {
		copy(p.Grad.Data(), buf[off:off+p.Grad.Len()])
		off += p.Grad.Len()
	}
}
