package engine

import (
	"neutronstar/internal/comm"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
	"neutronstar/internal/obs"
)

// allReduceGrads sums every parameter gradient across workers with a ring
// all-reduce (the AllReduceUpdate of Fig. 6). Every worker finishes with
// bit-identical summed gradients, which keeps the model replicas in exact
// sync after the deterministic optimiser step.
func (ws *workerState) allReduceGrads(epoch int, params []*nn.Param) {
	m := ws.eng.opts.Workers
	if m == 1 {
		return
	}
	coll := ws.eng.opts.Collector

	total := 0
	for _, p := range params {
		total += p.Grad.Len()
	}
	sp := coll.Span(ws.id, metrics.Comm, "allreduce",
		obs.Int("epoch", epoch), obs.Int("bytes", 4*total))
	defer sp.End()
	buf := make([]float32, total)
	off := 0
	for _, p := range params {
		copy(buf[off:], p.Grad.Data())
		off += p.Grad.Len()
	}
	comm.RingAllReduce(ws.eng.fabric, ws.id, m, epoch, buf, coll)
	off = 0
	for _, p := range params {
		copy(p.Grad.Data(), buf[off:off+p.Grad.Len()])
		off += p.Grad.Len()
	}
}
