package engine

import (
	"math"
	"testing"

	"neutronstar/internal/costmodel"
	"neutronstar/internal/dataset"
	"neutronstar/internal/graph"
	"neutronstar/internal/obs"
	"neutronstar/internal/tensor"
)

// ringDataset builds a directed ring i → i+1 (every vertex has in-degree 1),
// the smallest graph whose chunk partition has cross-worker dependencies
// with exactly predictable subtree costs.
func ringDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{Src: int32(i), Dst: int32((i + 1) % n)}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int32, n)
	train := make([]bool, n)
	for i := range labels {
		labels[i] = int32(i % 2)
		train[i] = true
	}
	return &dataset.Dataset{
		Spec: dataset.Spec{Name: "ring", Vertices: n, FeatureDim: 4,
			NumClasses: 2, HiddenDim: 4, Seed: 1},
		Graph:     g,
		Features:  tensor.RandNormal(n, 4, 0, 1, tensor.NewRNG(1)),
		Labels:    labels,
		TrainMask: train, ValMask: make([]bool, n), TestMask: make([]bool, n),
	}
}

// pinnedCosts are forced environment factors: generous Tc makes the greedy
// cache every layer-2 dependency (t_r = (Tv+Te)·4 = 8e-6 < Tc·4 = 4e-5).
var pinnedCosts = costmodel.Costs{Tv: 1e-6, Te: 1e-6, Tc: 1e-5}

// ringEngine builds a 2-worker DepComm engine over the ring with pinned
// costs — DepComm so every layer has communication work to validate against.
func ringEngine(t *testing.T) *Engine {
	t.Helper()
	eng, err := NewEngine(ringDataset(t, 40), Options{
		Workers: 2, Mode: DepComm, Costs: pinnedCosts, Seed: 1,
		Recorder: obs.NewFlightRecorder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// syntheticRecord fabricates an epoch whose measured stage seconds are given
// per layer: compute lands in "forward", communication in "dep_fetch_recv".
func syntheticRecord(layers int, compute, comm []float64) obs.EpochRecord {
	r := obs.EpochRecord{Epoch: 1, WallSeconds: 1, Workers: 2, Layers: layers}
	for l := 1; l <= layers; l++ {
		r.Cells = append(r.Cells,
			obs.StageCell{Worker: 0, Stage: "forward", Layer: l, Seconds: compute[l-1]},
			obs.StageCell{Worker: 0, Stage: "dep_fetch_recv", Layer: l, Seconds: comm[l-1]},
		)
	}
	return r
}

// probeWork reads the validator's own work counts (and hence exact
// predictions) by running it once on a throwaway record.
func probeWork(t *testing.T, eng *Engine) *CostReport {
	t.Helper()
	cr := eng.CostReportFrom([]obs.EpochRecord{syntheticRecord(2, []float64{1, 1}, []float64{1, 1})})
	if cr == nil || len(cr.Layers) != 2 {
		t.Fatalf("probe report = %+v", cr)
	}
	return cr
}

// TestCostReportZeroResidualsWhenModelExact: feed the validator measurements
// that equal the model's own predictions under the pinned factors — every
// residual must vanish, the fitted factors must reproduce the pinned ones,
// and the counterfactual plan must not flip a single decision.
func TestCostReportZeroResidualsWhenModelExact(t *testing.T) {
	eng := ringEngine(t)
	probe := probeWork(t, eng)
	compute := []float64{probe.Layers[0].PredComputeSeconds, probe.Layers[1].PredComputeSeconds}
	comm := []float64{probe.Layers[0].PredCommSeconds, probe.Layers[1].PredCommSeconds}
	cr := eng.CostReportFrom([]obs.EpochRecord{syntheticRecord(2, compute, comm)})
	if cr == nil {
		t.Fatal("nil report")
	}
	for _, lr := range cr.Layers {
		if math.Abs(lr.ComputeResidual) > 1e-9 || math.Abs(lr.CommResidual) > 1e-9 {
			t.Fatalf("layer %d residuals not ~0: compute %g comm %g",
				lr.Layer, lr.ComputeResidual, lr.CommResidual)
		}
		if lr.RecvRows == 0 {
			t.Fatalf("layer %d: DepComm plan has no recv rows", lr.Layer)
		}
	}
	if rel := math.Abs(cr.Fitted.Tc-pinnedCosts.Tc) / pinnedCosts.Tc; rel > 1e-9 {
		t.Fatalf("fitted Tc %g, want %g", cr.Fitted.Tc, pinnedCosts.Tc)
	}
	// Compute factors may come back exact (least squares) or as a unit
	// rescale of the probe — either way they must reproduce the pinned model.
	predUnderFitted := float64(cr.Layers[0].VertexOps)*cr.Fitted.Tv + float64(cr.Layers[0].EdgeOps)*cr.Fitted.Te
	predUnderPinned := float64(cr.Layers[0].VertexOps)*pinnedCosts.Tv + float64(cr.Layers[0].EdgeOps)*pinnedCosts.Te
	if rel := math.Abs(predUnderFitted-predUnderPinned) / predUnderPinned; rel > 1e-9 {
		t.Fatalf("fitted compute factors predict %g, pinned predict %g", predUnderFitted, predUnderPinned)
	}
	if cr.Flips.Flips() != 0 {
		t.Fatalf("exact model flipped %d decisions: %+v", cr.Flips.Flips(), cr.Flips)
	}
}

// TestCostReportTcOffByTenFlipsDecisions: the probe said Tc = 1e-5, under
// which caching a layer-2 ring dependency (t_r = 8e-6) beats fetching it
// (t_c = 4e-5). Measurements implying the true Tc is 10× lower (t_c = 4e-6)
// must flip those decisions to DepComm in the counterfactual plan.
func TestCostReportTcOffByTenFlipsDecisions(t *testing.T) {
	const trueTc = 1e-6
	eng := ringEngine(t)
	probe := probeWork(t, eng)
	compute := []float64{probe.Layers[0].PredComputeSeconds, probe.Layers[1].PredComputeSeconds}
	comm := make([]float64, 2)
	for i, lr := range probe.Layers {
		comm[i] = float64(lr.RecvRows) * trueTc * float64(eng.dims[lr.Layer-1])
	}
	cr := eng.CostReportFrom([]obs.EpochRecord{syntheticRecord(2, compute, comm)})
	if cr == nil {
		t.Fatal("nil report")
	}
	if rel := math.Abs(cr.Fitted.Tc-trueTc) / trueTc; rel > 1e-9 {
		t.Fatalf("fitted Tc %g, want %g", cr.Fitted.Tc, trueTc)
	}
	if cr.Flips.CacheToComm == 0 {
		t.Fatalf("10x-off Tc flipped nothing: %+v", cr.Flips)
	}
	if cr.Flips.CommToCache != 0 {
		t.Fatalf("cheaper comm must not create new cache decisions: %+v", cr.Flips)
	}
}

// TestLayerWorkCounts pins the validator's work counts on the ring: every
// vertex is computed once per layer with exactly one in-edge, and each
// worker fetches its single boundary dependency.
func TestLayerWorkCounts(t *testing.T) {
	eng := ringEngine(t)
	works := eng.layerWorks()
	if len(works) != 2 {
		t.Fatalf("layers = %d", len(works))
	}
	for l, w := range works {
		if w.vertexOps != 40 {
			t.Fatalf("layer %d vertexOps = %d, want 40", l+1, w.vertexOps)
		}
		if w.edgeOps != 40 {
			t.Fatalf("layer %d edgeOps = %d, want 40", l+1, w.edgeOps)
		}
		if w.recvRows != 2 {
			t.Fatalf("layer %d recvRows = %d, want 2 (one boundary dep per worker)", l+1, w.recvRows)
		}
	}
}
