package engine

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"neutronstar/internal/ckpt"
	"neutronstar/internal/comm"
	"neutronstar/internal/obs"
)

// trainLosses runs a fresh engine for `epochs` and returns the loss curve.
func trainLosses(t *testing.T, opts Options, epochs int) []float64 {
	t.Helper()
	ds := testDataset(t, 300, 6, 3)
	e, err := NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	out := make([]float64, 0, epochs)
	for _, st := range e.Train(epochs) {
		if st.CkptErr != nil {
			t.Fatalf("epoch %d checkpoint: %v", st.Epoch, st.CkptErr)
		}
		out = append(out, st.Loss)
	}
	return out
}

// TestSameSeedBitIdentical is the determinism regression: two runs with the
// same seed must produce bit-identical loss curves. This is what the
// worker-id-ordered loss summation in RunEpoch buys — any reordering of the
// float additions would break it.
func TestSameSeedBitIdentical(t *testing.T) {
	opts := Options{Workers: 4, Mode: Hybrid, Seed: 11}
	a := trainLosses(t, opts, 5)
	b := trainLosses(t, opts, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d: losses diverge bitwise: %.17g vs %.17g", i+1, a[i], b[i])
		}
	}
}

// TestKillAndResumeMatchesUninterrupted trains 6 epochs straight through,
// then separately trains 3 epochs, "kills" the engine, rebuilds it from the
// snapshot, and trains 3 more. The resumed curve must match the
// uninterrupted one within 1e-5 (bit-exact in-process, since the probed cost
// model is memoised; the tolerance absorbs cross-process plan differences).
func TestKillAndResumeMatchesUninterrupted(t *testing.T) {
	const k, total = 3, 6
	opts := Options{Workers: 4, Mode: Hybrid, Seed: 5}
	ds := testDataset(t, 300, 6, 3)

	full, err := NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 0, total)
	for _, st := range full.Train(total) {
		want = append(want, st.Loss)
	}
	full.Close()

	store, err := ckpt.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	optsCkpt := opts
	optsCkpt.Ckpt = &ckpt.Saver{Store: store, Every: 1}
	first, err := NewEngine(ds, optsCkpt)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range first.Train(k) {
		if st.CkptErr != nil {
			t.Fatalf("epoch %d checkpoint: %v", st.Epoch, st.CkptErr)
		}
		if st.Loss != want[i] {
			t.Fatalf("pre-kill epoch %d loss %.17g, uninterrupted %.17g", i+1, st.Loss, want[i])
		}
	}
	first.Close() // the "crash"

	snap, err := store.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot on disk after 3 checkpointed epochs")
	}
	if snap.Epoch != k {
		t.Fatalf("latest snapshot is epoch %d, want %d", snap.Epoch, k)
	}

	second, err := NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if err := second.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := len(second.History()); got != k {
		t.Fatalf("restored history has %d epochs, want %d", got, k)
	}
	for i, st := range second.Train(total - k) {
		if st.Epoch != k+i+1 {
			t.Fatalf("resumed epoch numbered %d, want %d", st.Epoch, k+i+1)
		}
		if diff := math.Abs(st.Loss - want[k+i]); diff > 1e-5 {
			t.Fatalf("resumed epoch %d loss %.17g, uninterrupted %.17g (diff %g)",
				st.Epoch, st.Loss, want[k+i], diff)
		}
	}
	if !second.ReplicasInSync() {
		t.Fatal("replicas diverged after resume")
	}
}

// TestRestoreRejectsMismatchedFingerprint: a snapshot from a different
// cluster shape must be refused, not loaded misaligned.
func TestRestoreRejectsMismatchedFingerprint(t *testing.T) {
	ds := testDataset(t, 300, 6, 3)
	a, err := NewEngine(ds, Options{Workers: 4, Mode: Hybrid, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.RunEpoch()
	snap := a.Snapshot()

	b, err := NewEngine(ds, Options{Workers: 2, Mode: Hybrid, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Restore(snap); err == nil {
		t.Fatal("restore of a 4-worker snapshot into a 2-worker engine succeeded")
	}
}

// TestFaultInjectedRunCompletes is the acceptance run: 5% drop with jittered
// delay on every kind. Retransmission must carry the run to completion, the
// fault counters must show real injected faults, and — because faults touch
// timing, never content — the loss curve must match the clean run exactly.
func TestFaultInjectedRunCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injected training is slow under -short")
	}
	spec, err := comm.ParseFaultSpec("drop=0.05,delay=100us,jitter=500us,dup=0.02,seed=9,timeout=500us")
	if err != nil {
		t.Fatal(err)
	}
	clean := trainLosses(t, Options{Workers: 4, Mode: Hybrid, Seed: 7}, 3)
	before := metricValues(t, "ns_comm_fault_dropped_total", "ns_comm_fault_retransmissions_total")
	faulted := trainLosses(t, Options{Workers: 4, Mode: Hybrid, Seed: 7, Fault: spec}, 3)
	after := metricValues(t, "ns_comm_fault_dropped_total", "ns_comm_fault_retransmissions_total")
	for i := range clean {
		if clean[i] != faulted[i] {
			t.Fatalf("epoch %d: faulted loss %.17g differs from clean %.17g — faults must never alter content",
				i+1, faulted[i], clean[i])
		}
	}
	for name, b := range before {
		if after[name] <= b {
			t.Errorf("metric %s did not increase over the faulted run (%g -> %g)", name, b, after[name])
		}
	}
}

// metricValues renders the default registry the way /metrics would and sums
// every sample of the named families.
func metricValues(t *testing.T, names ...string) map[string]float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.Default().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64, len(names))
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		metric := fields[0]
		if i := strings.IndexByte(metric, '{'); i >= 0 {
			metric = metric[:i]
		}
		for _, name := range names {
			if metric == name {
				v, err := strconv.ParseFloat(fields[1], 64)
				if err != nil {
					t.Fatalf("metric line %q: %v", line, err)
				}
				out[name] += v
			}
		}
	}
	return out
}
