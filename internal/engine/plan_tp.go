package engine

import (
	"neutronstar/internal/costmodel"
	"neutronstar/internal/graph"
	"neutronstar/internal/partition"
	"neutronstar/internal/tensor"
)

// Tensor-parallel (DepTP) execution structures. A TP layer inverts the data
// placement of the other policies: every worker holds the full graph
// structure, but features, aggregations and gradients are sharded along the
// feature dimension — worker j owns an F/N-wide column slice. Per-vertex
// dependency traffic disappears; two slice-exchange collectives (a forward
// re-gather and its backward re-scatter adjoint) move the sharded tensors
// between the column layout and the row layout instead, with volume
// |V|·F/N-shaped and independent of the degree distribution.

// tpShared is the cluster-global tensor-parallel geometry, built once and
// shared read-only by every worker's plan. All workers agree on the
// owner-block row order: worker 0's owned vertices first (in partition
// order), then worker 1's, and so on — so a row range identifies an owner
// without any per-vertex index exchange.
type tpShared struct {
	// slice selects the dataflow: column-sliced edge aggregation for
	// sum-decomposable models, full-width assemble for models whose edge
	// stage mixes columns (attention, pooling).
	slice bool
	// blockStart[j]..blockStart[j+1] is worker j's owned row range in
	// owner-block order (length m+1).
	blockStart []int32
	// globalRow maps a global vertex id to its owner-block row.
	globalRow []int32
	// Full-graph CSC over owner-block rows for the slice dataflow (nil when
	// assemble): edges grouped per destination, in-neighbor order within a
	// group — the buildBlock convention, so per-vertex sums reduce in the
	// same float order as the other policies.
	srcRow, dstRow []int32
	edgeNorm       []float32
	// selfNorm[r] is row r's GCN self coefficient in owner-block order
	// (slice dataflow only).
	selfNorm []float32
}

// tpLayerPlan is one worker's plan for one tensor-parallel layer.
type tpLayerPlan struct {
	shared *tpShared
	// colStart[j]..colStart[j+1] is worker j's column slice of d^(l-1)
	// (length m+1). Zero-width slices compute and exchange nothing.
	colStart []int32
	// selfNormOwned is the owned rows' self coefficients (slice dataflow).
	selfNormOwned []float32
	// full is the worker's owned destination block over the global
	// owner-block row universe (assemble dataflow).
	full blockPlan
}

// buildTPShared derives the cluster-global geometry.
func buildTPShared(g *graph.Graph, part *partition.Partition, slice bool, selfNormAll []float32) *tpShared {
	m := part.NumParts
	n := g.NumVertices()
	sh := &tpShared{slice: slice, blockStart: make([]int32, m+1), globalRow: make([]int32, n)}
	row := int32(0)
	for j := 0; j < m; j++ {
		sh.blockStart[j] = row
		for _, v := range part.Parts[j] {
			sh.globalRow[v] = row
			row++
		}
	}
	sh.blockStart[m] = row
	if !slice {
		return sh
	}
	sh.selfNorm = make([]float32, n)
	for j := 0; j < m; j++ {
		for _, v := range part.Parts[j] {
			r := sh.globalRow[v]
			sh.selfNorm[r] = selfNormAll[v]
			dNorm := gcnInvSqrt(g.InDegree(v))
			for _, u := range g.InNeighbors(v) {
				sh.srcRow = append(sh.srcRow, sh.globalRow[u])
				sh.dstRow = append(sh.dstRow, r)
				sh.edgeNorm = append(sh.edgeNorm, dNorm*gcnInvSqrt(g.InDegree(u)))
			}
		}
	}
	return sh
}

// buildTPLayer derives worker `worker`'s plan for TP layer l.
func buildTPLayer(g *graph.Graph, part *partition.Partition, sh *tpShared,
	dims []int, l, worker int, selfNormAll []float32) *tpLayerPlan {

	m := part.NumParts
	tp := &tpLayerPlan{shared: sh, colStart: make([]int32, m+1)}
	for j := 0; j <= m; j++ {
		lo, _ := costmodel.TPColRange(dims[l-1], m, j)
		tp.colStart[j] = int32(lo)
	}
	if sh.slice {
		tp.selfNormOwned = sh.selfNorm[sh.blockStart[worker]:sh.blockStart[worker+1]]
	} else {
		tp.full = buildTPBlock(g, part.Parts[worker], sh, selfNormAll)
	}
	return tp
}

// buildTPBlock builds the assemble-dataflow owned destination block: edge
// sources and destination selves both index the global owner-block row
// universe (the assembled full-width input).
func buildTPBlock(g *graph.Graph, dsts []int32, sh *tpShared, selfNormAll []float32) blockPlan {
	b := blockPlan{dsts: dsts, offsets: make([]int32, len(dsts)+1)}
	b.selfRow = make([]int32, len(dsts))
	b.selfNorm = make([]float32, len(dsts))
	for r, v := range dsts {
		b.selfRow[r] = sh.globalRow[v]
		b.selfNorm[r] = selfNormAll[v]
		dNorm := gcnInvSqrt(g.InDegree(v))
		for _, u := range g.InNeighbors(v) {
			b.srcRow = append(b.srcRow, sh.globalRow[u])
			b.dstRow = append(b.dstRow, int32(r))
			b.edgeNorm = append(b.edgeNorm, dNorm*gcnInvSqrt(g.InDegree(u)))
		}
		b.offsets[r+1] = int32(len(b.srcRow))
	}
	return b
}

// tpSharedOf returns the cluster's tensor-parallel geometry, nil when no
// layer is tensor-parallel.
func tpSharedOf(plans []*workerPlan) *tpShared {
	for _, p := range plans {
		for _, tp := range p.tpLayers {
			if tp != nil {
				return tp.shared
			}
		}
	}
	return nil
}

// TPSliceExchange models the two DepTP collectives over plain tensors,
// independent of any engine instance. slices[j] is worker j's column slice
// of a |V|-row matrix in owner-block order (ColStart[j+1]-ColStart[j]
// columns); ReGather assembles one worker's full-width owned block from
// them, and ReScatter routes a gradient block back. The pair being exact
// adjoints — ⟨ReGather(A), B⟩ == Σ_j ⟨A_j, ReScatter(B)_j⟩ — is what makes
// the TP backward pass compute the same gradients as a single machine; the
// gradcheck sweep tests exactly that identity.
type TPSliceExchange struct {
	// BlockStart[w]..BlockStart[w+1] is worker w's owned row range.
	BlockStart []int
	// ColStart[j]..ColStart[j+1] is worker j's column slice.
	ColStart []int
}

// NumWorkers returns the cluster size implied by the row blocks.
func (x TPSliceExchange) NumWorkers() int { return len(x.BlockStart) - 1 }

// ReGather assembles worker w's full-width owned block from every worker's
// column slice: out[r][c] = slices[j][BlockStart[w]+r][c-ColStart[j]] for
// the j whose slice covers column c.
func (x TPSliceExchange) ReGather(slices []*tensor.Tensor, w int) *tensor.Tensor {
	rows := x.BlockStart[w+1] - x.BlockStart[w]
	out := tensor.New(rows, x.ColStart[len(x.ColStart)-1])
	for j, s := range slices {
		lo, hi := x.ColStart[j], x.ColStart[j+1]
		if hi == lo {
			continue
		}
		for r := 0; r < rows; r++ {
			copy(out.Row(r)[lo:hi], s.Row(x.BlockStart[w]+r))
		}
	}
	return out
}

// ReScatter is ReGather's adjoint: it routes worker w's full-width gradient
// block back into the per-worker column slices, accumulating (+=) so
// scatters from different owners compose the way the backward pass does.
func (x TPSliceExchange) ReScatter(grad *tensor.Tensor, w int, slices []*tensor.Tensor) {
	rows := x.BlockStart[w+1] - x.BlockStart[w]
	for j, s := range slices {
		lo, hi := x.ColStart[j], x.ColStart[j+1]
		if hi == lo {
			continue
		}
		for r := 0; r < rows; r++ {
			src := grad.Row(r)[lo:hi]
			dst := s.Row(x.BlockStart[w] + r)
			for c, g := range src {
				dst[c] += g
			}
		}
	}
}
