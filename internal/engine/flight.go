package engine

import (
	"neutronstar/internal/comm"
	"neutronstar/internal/obs"
)

// recordingNet wraps the engine's fabric to attribute send-side traffic to
// the flight recorder. It sits OUTSIDE any FaultyFabric wrapper, so one
// logical Send is counted exactly once no matter how many retransmissions or
// duplicates the fault layer injects underneath; the receive side is counted
// in the mailbox after dedup (see comm/stage.go for the full contract).
type recordingNet struct {
	inner comm.Network
	rec   *obs.FlightRecorder
}

func newRecordingNet(inner comm.Network, rec *obs.FlightRecorder) *recordingNet {
	n := &recordingNet{inner: inner, rec: rec}
	for i := 0; i < inner.NumWorkers(); i++ {
		inner.Mailbox(i).SetStageRecorder(rec, i)
	}
	return n
}

func (n *recordingNet) Send(msg *comm.Message) {
	if msg.From != msg.To {
		stage, layer := comm.StageOfMsg(msg, false)
		n.rec.AddTraffic(msg.From, stage, layer, int64(msg.WireBytes()), 1)
		// Stamp the trace context here, at the logical send, for the same
		// reason bytes are counted here: fault-layer retransmissions and
		// duplicates below copy the message verbatim, so every physical copy
		// carries the original causal id and dedup keeps tracing exact-once.
		if tid, sid, parent, sent, ok := n.rec.CausalSendContext(msg.From); ok {
			msg.Trace = comm.TraceContext{
				TraceID: tid, SpanID: sid, Parent: parent, SentUnixNano: sent,
			}
		}
	}
	n.inner.Send(msg)
}

func (n *recordingNet) Mailbox(i int) *comm.Mailbox { return n.inner.Mailbox(i) }
func (n *recordingNet) NumWorkers() int             { return n.inner.NumWorkers() }
func (n *recordingNet) Close()                      { n.inner.Close() }
