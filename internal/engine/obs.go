package engine

import "neutronstar/internal/obs"

// Process-wide engine metrics on the default registry, feeding the optional
// debug server's /metrics endpoint. Gauges reflect the most recent epoch of
// whichever engine ran last; the dependency-cache counters accumulate across
// all engines in the process (registration is idempotent).
var (
	obsEpoch = obs.Default().Gauge("ns_engine_epoch",
		"Epochs completed by the most recently stepped engine.")
	obsLoss = obs.Default().Gauge("ns_engine_loss",
		"Mean training loss of the last completed epoch.")
	obsEpochSeconds = obs.Default().Gauge("ns_engine_epoch_duration_seconds",
		"Wall-clock duration of the last completed epoch.")
	obsCacheRatio = obs.Default().Gauge("ns_engine_cache_ratio",
		"Fraction of remote dependencies the planner chose to cache (0..1).")
	depCacheHits = obs.Default().Counter("ns_engine_dep_cache_hits_total",
		"Remote dependencies served from the local replica cache (DepCache path).")
	depCacheMisses = obs.Default().Counter("ns_engine_dep_cache_misses_total",
		"Remote dependencies fetched over the fabric (DepComm path).")
)
