package engine

import (
	"neutronstar/internal/autograd"
	"neutronstar/internal/comm"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
	"neutronstar/internal/obs"
	"neutronstar/internal/tensor"
)

// Tensor-parallel layer execution. Two dataflows share the KindSlice message
// kind, distinguished by Seq:
//
// Slice dataflow (sum-decomposable layers — the edge stage is column-wise, so
// each worker aggregates the full graph over its own column slice):
//
//	Seq 0  slice-scatter   owner j ships peer w the w-columns of its owned rows
//	Seq 1  re-gather       worker j ships owner w the j-columns of w's rows
//	Seq 2  re-scatter      owner j ships worker w the w-columns of dAgg (adjoint of 1)
//	Seq 3  grad-scatter    worker j ships owner w the j-columns of dX (adjoint of 0)
//
// Assemble dataflow (attention/pooling layers mix columns in the edge stage,
// so slicing is unsound; the collective degrades to an all-gather):
//
//	Seq 0  all-gather      owner j broadcasts its full-width owned block
//	Seq 2  grad-scatter    worker j ships owner w its gradient for w's rows
//
// Every exchange is expectation-symmetric: a message from j exists iff the
// sender's owned block and the receiver's slice are both non-empty, and both
// sides derive that from the shared plan — zero-width slices and empty
// partitions exchange nothing.

// tpLayerRun holds the tensor-parallel tape state of one layer between the
// forward and backward sweeps.
type tpLayerRun struct {
	plan *tpLayerPlan
	// Slice dataflow: the edge stage runs on its own tape so the backward
	// can stop at the aggregation boundary, re-scatter the full-width
	// gradient, and only then push the assembled slice gradient through.
	sliceTape *autograd.Tape
	x         *autograd.Variable // slice input leaf X_j (|V| × width_j)
	aggSlice  *autograd.Variable // A_j = edge stage over the slice (|V| × width_j)
	agg       *autograd.Variable // main-tape leaf: re-gathered aggregation (|owned| × d)
	// Assemble dataflow:
	hAll *autograd.Variable // leaf: all-gathered full-width input (|V| × d)
}

// forwardLayerTP dispatches a tensor-parallel layer's forward pass.
func (ws *workerState) forwardLayerTP(epoch, l int, prevVal *tensor.Tensor,
	coll *metrics.Collector, training bool, sc *obs.StageClock) layerRun {
	if ws.plan.tpLayers[l-1].shared.slice {
		return ws.forwardLayerTPSlice(epoch, l, prevVal, coll, training, sc)
	}
	return ws.forwardLayerTPAssemble(epoch, l, prevVal, coll, training, sc)
}

// backwardLayerTP dispatches a tensor-parallel layer's backward pass.
func (ws *workerState) backwardLayerTP(epoch, l int, runs []layerRun, sc *obs.StageClock) {
	if runs[l-1].tp.plan.shared.slice {
		ws.backwardLayerTPSlice(epoch, l, runs, sc)
	} else {
		ws.backwardLayerTPAssemble(epoch, l, runs, sc)
	}
}

// tpSend posts one slice-exchange message.
func (ws *workerState) tpSend(epoch, l, seq, to int, rows *tensor.Tensor) {
	ws.eng.fabric.Send(&comm.Message{
		From: ws.id, To: to, Kind: comm.KindSlice,
		Epoch: epoch, Layer: l, Seq: seq, Rows: rows,
	})
}

// tpSeedBackward assembles the upper layer's input gradient and runs this
// layer's main tape backward. For the top layer the loss already
// back-propagated on the same tape, so there is nothing to seed.
func (ws *workerState) tpSeedBackward(epoch, l int, runs []layerRun, sc *obs.StageClock) {
	if l >= len(runs) {
		return
	}
	run := &runs[l-1]
	upper := &runs[l]
	seed := upper.hPrev.Grad
	if seed == nil {
		seed = ws.alloc(true, run.out.Value.Rows(), run.out.Value.Cols())
	}
	// No-op unless the upper layer is a regular one that received mirrors —
	// impossible under the suffix invariant, but harmless and uniform.
	ws.receiveMirrorGrads(epoch, l+1, seed, sc)
	sc.Switch(obs.StageBackward, l)
	run.tape.Backward(run.out, seed)
}

// ---- Slice dataflow ----

// forwardLayerTPSlice: assemble the layer input's column slice over all |V|
// owner-block rows (static features at layer 1, a slice-scatter above),
// aggregate the full graph over that slice on a dedicated tape, re-gather the
// owned rows to full width, and run the vertex stage on the main tape.
func (ws *workerState) forwardLayerTPSlice(epoch, l int, prevVal *tensor.Tensor,
	coll *metrics.Collector, training bool, sc *obs.StageClock) layerRun {

	tp := ws.plan.tpLayers[l-1]
	sh := tp.shared
	layer := ws.model.Layers[l-1]
	sd := layer.(nn.SumDecomposable)
	tape := ws.newTape(training)
	totalV := len(sh.globalRow)
	nOwned := len(ws.plan.owned)
	d := layer.InDim()
	lo, hi := int(tp.colStart[ws.id]), int(tp.colStart[ws.id+1])
	width := hi - lo
	requiresGrad := training && l > 1

	lg := coll.Group(ws.id, "layer", obs.Int("layer", l))
	defer lg.End()
	sc.Switch(obs.StageForward, l)

	// 1. Slice input X_j (|V| × width_j). Layer 1 reads the static feature
	// slice assembled at construction; deeper layers run the slice-scatter.
	xVal := ws.sliceFeat
	if l > 1 {
		sc.Switch(obs.StageDepFetchSend, l)
		sp := coll.Span(ws.id, metrics.Comm, "tp_slice_scatter", obs.Int("layer", l))
		for _, j := range ws.peerOrder() {
			plo, phi := int(tp.colStart[j]), int(tp.colStart[j+1])
			if nOwned == 0 || phi == plo {
				continue
			}
			rows := ws.alloc(training, nOwned, phi-plo)
			for r := 0; r < nOwned; r++ {
				copy(rows.Row(r), prevVal.Row(r)[plo:phi])
			}
			ws.tpSend(epoch, l, 0, j, rows)
		}
		sp.End()
		xVal = nil
		if width > 0 {
			xVal = ws.alloc(training, totalV, width)
			sc.Switch(obs.StageDepFetchRecv, l)
			spR := coll.Span(ws.id, metrics.Comm, "tp_slice_gather", obs.Int("layer", l))
			for _, j := range ws.peerOrder() {
				if sh.blockStart[j+1] == sh.blockStart[j] {
					continue
				}
				msg := ws.mb.Wait(comm.KindSlice, epoch, l, 0, j)
				base := int(sh.blockStart[j])
				for r := 0; r < msg.Rows.Rows(); r++ {
					copy(xVal.Row(base+r), msg.Rows.Row(r))
				}
			}
			spR.End()
			base := int(sh.blockStart[ws.id])
			for r := 0; r < nOwned; r++ {
				copy(xVal.Row(base+r), prevVal.Row(r)[lo:hi])
			}
		}
		sc.Switch(obs.StageForward, l)
	}

	// 2. Edge stage over the full graph, restricted to this worker's columns,
	// on its own tape.
	run := layerRun{tape: tape}
	trun := &tpLayerRun{plan: tp}
	if width > 0 {
		sp := coll.Span(ws.id, metrics.Compute, "tp_edge_stage",
			obs.Int("layer", l), obs.Int("rows", totalV))
		sliceTape := ws.newTape(training)
		xLeaf := sliceTape.Leaf(xVal, requiresGrad, "tp_x")
		trun.sliceTape = sliceTape
		trun.x = xLeaf
		trun.aggSlice = sd.EdgeStage(sliceTape,
			sliceTape.Gather(xLeaf, sh.srcRow), sh.edgeNorm, sh.dstRow, totalV)
		sp.End()
	}

	// 3. Re-gather: every owner receives its rows' aggregation at full width.
	aggFull := ws.alloc(training, nOwned, d)
	sc.Switch(obs.StageDepFetchSend, l)
	sp := coll.Span(ws.id, metrics.Comm, "tp_re_gather", obs.Int("layer", l))
	if width > 0 {
		for _, j := range ws.peerOrder() {
			blo, bhi := int(sh.blockStart[j]), int(sh.blockStart[j+1])
			if bhi == blo {
				continue
			}
			ws.tpSend(epoch, l, 1, j, trun.aggSlice.Value.RowSlice(blo, bhi))
		}
	}
	if nOwned > 0 {
		sc.Switch(obs.StageDepFetchRecv, l)
		for _, j := range ws.peerOrder() {
			plo, phi := int(tp.colStart[j]), int(tp.colStart[j+1])
			if phi == plo {
				continue
			}
			msg := ws.mb.Wait(comm.KindSlice, epoch, l, 1, j)
			for r := 0; r < nOwned; r++ {
				copy(aggFull.Row(r)[plo:phi], msg.Rows.Row(r))
			}
		}
		if width > 0 {
			base := int(sh.blockStart[ws.id])
			for r := 0; r < nOwned; r++ {
				copy(aggFull.Row(r)[lo:hi], trun.aggSlice.Value.Row(base+r))
			}
		}
	}
	sp.End()
	sc.Switch(obs.StageForward, l)

	// 4. Vertex stage on the main tape. prevVal is exactly the owned rows
	// (TP layers admit no cached block below them), so it doubles as self.
	spV := coll.Span(ws.id, metrics.Compute, "tp_vertex_stage",
		obs.Int("layer", l), obs.Int("rows", nOwned))
	hPrev := tape.Leaf(prevVal, requiresGrad, "h_prev")
	aggLeaf := tape.Leaf(aggFull, requiresGrad, "tp_agg")
	out := sd.VertexStage(tape, aggLeaf, hPrev, tp.selfNormOwned, training, ws.rng)
	spV.End()
	trun.agg = aggLeaf
	run.hPrev = hPrev
	run.out = out
	run.tp = trun
	return run
}

// backwardLayerTPSlice reverses forwardLayerTPSlice: main tape backward,
// re-scatter dAgg into column slices (Seq 2), slice tape backward, scatter dX
// back to the owners (Seq 3) who accumulate it with the self-path gradient.
func (ws *workerState) backwardLayerTPSlice(epoch, l int, runs []layerRun, sc *obs.StageClock) {
	run := &runs[l-1]
	tp := run.tp.plan
	sh := tp.shared
	coll := ws.eng.opts.Collector
	bg := coll.Group(ws.id, "backward", obs.Int("layer", l))
	defer bg.End()
	sc.Switch(obs.StageBackward, l)
	ws.tpSeedBackward(epoch, l, runs, sc)
	if l == 1 {
		return // layer-1 inputs are static features: param grads only
	}

	nOwned := len(ws.plan.owned)
	totalV := len(sh.globalRow)
	d := run.tp.agg.Value.Cols()
	lo, hi := int(tp.colStart[ws.id]), int(tp.colStart[ws.id+1])
	width := hi - lo

	dAgg := run.tp.agg.Grad
	if dAgg == nil {
		dAgg = ws.alloc(true, nOwned, d)
	}

	// Re-scatter (adjoint of the re-gather): route each worker's columns of
	// my owned rows' aggregation gradient back to that worker.
	sc.Switch(obs.StageMirrorScatter, l)
	sp := coll.Span(ws.id, metrics.Comm, "tp_re_scatter", obs.Int("layer", l))
	for _, j := range ws.peerOrder() {
		plo, phi := int(tp.colStart[j]), int(tp.colStart[j+1])
		if nOwned == 0 || phi == plo {
			continue
		}
		rows := ws.alloc(true, nOwned, phi-plo)
		for r := 0; r < nOwned; r++ {
			copy(rows.Row(r), dAgg.Row(r)[plo:phi])
		}
		ws.tpSend(epoch, l, 2, j, rows)
	}
	var dASlice *tensor.Tensor
	if width > 0 {
		dASlice = ws.alloc(true, totalV, width)
		for _, j := range ws.peerOrder() {
			if sh.blockStart[j+1] == sh.blockStart[j] {
				continue
			}
			msg := ws.mb.Wait(comm.KindSlice, epoch, l, 2, j)
			base := int(sh.blockStart[j])
			for r := 0; r < msg.Rows.Rows(); r++ {
				copy(dASlice.Row(base+r), msg.Rows.Row(r))
			}
		}
		base := int(sh.blockStart[ws.id])
		for r := 0; r < nOwned; r++ {
			copy(dASlice.Row(base+r), dAgg.Row(r)[lo:hi])
		}
	}
	sp.End()
	sc.Switch(obs.StageBackward, l)

	// Slice-tape backward: dA_j → dX_j over the full graph.
	var dX *tensor.Tensor
	if width > 0 {
		spB := coll.Span(ws.id, metrics.Compute, "tp_edge_backward", obs.Int("layer", l))
		run.tp.sliceTape.Backward(run.tp.aggSlice, dASlice)
		dX = run.tp.x.Grad
		if dX == nil {
			dX = ws.alloc(true, totalV, width)
		}
		spB.End()
	}

	// Gradient scatter (adjoint of the slice-scatter): ship each owner its
	// rows of dX; owners accumulate every worker's columns — plus the local
	// self-path gradient already on hPrev — into the layer input's gradient.
	sc.Switch(obs.StageMirrorScatter, l)
	spG := coll.Span(ws.id, metrics.Comm, "tp_grad_scatter", obs.Int("layer", l))
	if width > 0 {
		for _, j := range ws.peerOrder() {
			blo, bhi := int(sh.blockStart[j]), int(sh.blockStart[j+1])
			if bhi == blo {
				continue
			}
			ws.tpSend(epoch, l, 3, j, dX.RowSlice(blo, bhi))
		}
	}
	hg := run.hPrev.Grad
	if hg == nil {
		hg = ws.alloc(true, run.hPrev.Value.Rows(), run.hPrev.Value.Cols())
		run.hPrev.Grad = hg
	}
	if width > 0 && nOwned > 0 {
		base := int(sh.blockStart[ws.id])
		for r := 0; r < nOwned; r++ {
			dst := hg.Row(r)[lo:hi]
			src := dX.Row(base + r)
			for c, g := range src {
				dst[c] += g
			}
		}
	}
	for _, j := range ws.peerOrder() {
		plo, phi := int(tp.colStart[j]), int(tp.colStart[j+1])
		if nOwned == 0 || phi == plo {
			continue
		}
		msg := ws.mb.Wait(comm.KindSlice, epoch, l, 3, j)
		for r := 0; r < nOwned; r++ {
			dst := hg.Row(r)[plo:phi]
			src := msg.Rows.Row(r)
			for c, g := range src {
				dst[c] += g
			}
		}
	}
	spG.End()
	sc.Switch(obs.StageBackward, l)
}

// ---- Assemble dataflow ----

// forwardLayerTPAssemble: all-gather every worker's full-width owned block
// into the owner-block row universe, then run the owned destination block
// over it — the layer's edge stage (attention, pooling) sees every source at
// full width, so no model assumption is needed.
func (ws *workerState) forwardLayerTPAssemble(epoch, l int, prevVal *tensor.Tensor,
	coll *metrics.Collector, training bool, sc *obs.StageClock) layerRun {

	tp := ws.plan.tpLayers[l-1]
	sh := tp.shared
	layer := ws.model.Layers[l-1]
	tape := ws.newTape(training)
	totalV := len(sh.globalRow)
	nOwned := len(ws.plan.owned)
	requiresGrad := training && l > 1

	lg := coll.Group(ws.id, "layer", obs.Int("layer", l))
	defer lg.End()
	sc.Switch(obs.StageForward, l)

	hAllVal := ws.eng.tpFeatAll
	if l > 1 {
		sc.Switch(obs.StageDepFetchSend, l)
		sp := coll.Span(ws.id, metrics.Comm, "tp_all_gather", obs.Int("layer", l))
		if nOwned > 0 {
			// One shared view for every peer, like the broadcast path.
			block := prevVal.RowSlice(0, nOwned)
			for _, j := range ws.peerOrder() {
				ws.tpSend(epoch, l, 0, j, block)
			}
		}
		hAllVal = ws.alloc(training, totalV, layer.InDim())
		sc.Switch(obs.StageDepFetchRecv, l)
		for _, j := range ws.peerOrder() {
			if sh.blockStart[j+1] == sh.blockStart[j] {
				continue
			}
			msg := ws.mb.Wait(comm.KindSlice, epoch, l, 0, j)
			base := int(sh.blockStart[j])
			for r := 0; r < msg.Rows.Rows(); r++ {
				copy(hAllVal.Row(base+r), msg.Rows.Row(r))
			}
		}
		base := int(sh.blockStart[ws.id])
		for r := 0; r < nOwned; r++ {
			copy(hAllVal.Row(base+r), prevVal.Row(r))
		}
		sp.End()
		sc.Switch(obs.StageForward, l)
	}

	hAll := tape.Leaf(hAllVal, requiresGrad, "tp_h_all")
	zAll := hAll
	if pt, ok := layer.(nn.PreTransformer); ok {
		sp := coll.Span(ws.id, metrics.Compute, "pre_transform", obs.Int("layer", l))
		zAll = pt.PreTransform(tape, hAll, training, ws.rng)
		sp.End()
	}
	sp := coll.Span(ws.id, metrics.Compute, "compute_owned",
		obs.Int("layer", l), obs.Int("rows", nOwned))
	out := ws.runBlock(tape, layer, &tp.full, zAll, zAll, training)
	sp.End()

	// hPrev is a carrier for the lower layer's backward seed: the layer
	// consumed hAll, not prevVal, so this leaf is off the gradient path and
	// its Grad is assembled manually by the backward grad-scatter.
	hPrev := tape.Leaf(prevVal, false, "h_prev")
	return layerRun{tape: tape, hPrev: hPrev, out: out,
		tp: &tpLayerRun{plan: tp, hAll: hAll}}
}

// backwardLayerTPAssemble reverses the all-gather: each worker scatters its
// gradient for every owner's rows back to that owner, and owners sum their
// own contribution with every peer's (schedule order, so the float sum is
// deterministic) into the layer input's gradient.
func (ws *workerState) backwardLayerTPAssemble(epoch, l int, runs []layerRun, sc *obs.StageClock) {
	run := &runs[l-1]
	sh := run.tp.plan.shared
	coll := ws.eng.opts.Collector
	bg := coll.Group(ws.id, "backward", obs.Int("layer", l))
	defer bg.End()
	sc.Switch(obs.StageBackward, l)
	ws.tpSeedBackward(epoch, l, runs, sc)
	if l == 1 {
		return // layer-1 inputs are static features: param grads only
	}

	nOwned := len(ws.plan.owned)
	d := run.hPrev.Value.Cols()
	dHAll := run.tp.hAll.Grad
	if dHAll == nil {
		dHAll = ws.alloc(true, len(sh.globalRow), d)
	}

	sc.Switch(obs.StageMirrorScatter, l)
	sp := coll.Span(ws.id, metrics.Comm, "tp_grad_scatter", obs.Int("layer", l))
	for _, j := range ws.peerOrder() {
		blo, bhi := int(sh.blockStart[j]), int(sh.blockStart[j+1])
		if bhi == blo {
			continue
		}
		ws.tpSend(epoch, l, 2, j, dHAll.RowSlice(blo, bhi))
	}
	dPrev := run.hPrev.Grad
	if dPrev == nil {
		dPrev = ws.alloc(true, run.hPrev.Value.Rows(), d)
		run.hPrev.Grad = dPrev
	}
	if nOwned > 0 {
		base := int(sh.blockStart[ws.id])
		for r := 0; r < nOwned; r++ {
			dst := dPrev.Row(r)
			src := dHAll.Row(base + r)
			for c, g := range src {
				dst[c] += g
			}
		}
		for _, j := range ws.peerOrder() {
			msg := ws.mb.Wait(comm.KindSlice, epoch, l, 2, j)
			for r := 0; r < nOwned; r++ {
				dst := dPrev.Row(r)
				src := msg.Rows.Row(r)
				for c, g := range src {
					dst[c] += g
				}
			}
		}
	}
	sp.End()
	sc.Switch(obs.StageBackward, l)
}
