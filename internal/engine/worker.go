package engine

import (
	"neutronstar/internal/autograd"
	"neutronstar/internal/comm"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
	"neutronstar/internal/obs"
	"neutronstar/internal/partition"
	"neutronstar/internal/tensor"
)

// workerState is one simulated cluster node: a model replica, the worker's
// slice of features and labels laid out in plan order, and its mailbox.
type workerState struct {
	id    int
	eng   *Engine
	plan  *workerPlan
	model *nn.Model
	opt   nn.Optimizer
	mb    *comm.Mailbox
	rng   *tensor.RNG
	// arena recycles this worker's training-time tensors (tape intermediates,
	// gradients, outgoing payloads) through the engine's pool; the engine
	// releases it at every epoch barrier. Nil when pooling is off or fault
	// injection is on (retransmissions may outlive the barrier).
	arena *tensor.Arena

	// feat is the layer-1 input in prev-layout: owned features followed by
	// cached (replicated) features — the one-time fetch of Algorithm 2
	// line 5 happens here at construction.
	feat *tensor.Tensor
	// sliceFeat is the worker's column slice of all features in owner-block
	// row order — the layer-1 input when that layer runs the tensor-parallel
	// slice dataflow (nil otherwise). Assembled once at construction, like
	// feat.
	sliceFeat *tensor.Tensor
	// labels / trainMask are aligned with the owned rows.
	labels    []int32
	trainMask []bool
	// totalLabeled is Σ_i |V_L ∩ V_i| — the global normaliser that makes the
	// distributed loss equal the single-machine mean loss.
	totalLabeled int
}

// layerRun keeps the tape state of one layer's forward pass for the
// backward sweep.
type layerRun struct {
	tape  *autograd.Tape
	hPrev *autograd.Variable // leaf: previous layer's output (prev-layout)
	hRecv *autograd.Variable // leaf: received mirror rows (nil if none)
	out   *autograd.Variable // this layer's output (owned ++ cached layout)
	// chunkLeaves holds per-peer received leaves when the layer ran through
	// the chunk-pipelined path (hRecv is nil then).
	chunkLeaves []chunkLeaf
	// tp holds the tensor-parallel tape state when the layer ran the DepTP
	// dataflow (everything above is nil or a carrier then).
	tp *tpLayerRun
}

// chunkLeaf is one peer's received chunk as a tape leaf.
type chunkLeaf struct {
	peer int
	v    *autograd.Variable
}

func newWorkerState(id int, e *Engine, model *nn.Model) *workerState {
	plan := e.plans[id]
	ds := e.ds
	ws := &workerState{
		id: id, eng: e, plan: plan, model: model,
		opt: nn.NewAdam(e.opts.LR),
		mb:  e.fabric.Mailbox(id),
		rng: tensor.NewRNG(e.opts.Seed ^ (uint64(id)+1)*0x9E3779B9),
	}
	if e.opts.Fault == nil {
		ws.arena = e.opts.Pool.Arena()
	}
	// Assemble the layer-1 input block: owned features ++ cached features.
	dim := ds.Spec.FeatureDim
	cached0 := plan.cachedComputeAt(0)
	ws.feat = tensor.New(len(plan.owned)+len(cached0), dim)
	for r, v := range plan.owned {
		copy(ws.feat.Row(r), ds.Features.Row(int(v)))
	}
	for r, v := range cached0 {
		copy(ws.feat.Row(len(plan.owned)+r), ds.Features.Row(int(v)))
	}
	// Replicated plans may store replica features (re)quantized (CoFree-GNN's
	// requantized vertex copies): round-trip only the replica rows through the
	// storage format. Owners keep full precision, and every worker replicating
	// the same vertex round-trips the same source row identically, so the runs
	// stay deterministic and the deviation from the exact run is bounded by
	// partition.RequantizeErrorBound.
	if q := e.repQuant; q != partition.RepQuantOff && e.decs[id].NumRep() > 0 {
		for r := range cached0 {
			partition.Requantize(q, ws.feat.Row(len(plan.owned)+r))
		}
	}
	if tp := plan.tpLayers[0]; tp != nil && tp.shared.slice {
		sh := tp.shared
		lo, hi := int(tp.colStart[id]), int(tp.colStart[id+1])
		ws.sliceFeat = tensor.New(ds.NumVertices(), hi-lo)
		if hi > lo {
			for v := 0; v < ds.NumVertices(); v++ {
				copy(ws.sliceFeat.Row(int(sh.globalRow[v])), ds.Features.Row(v)[lo:hi])
			}
		}
	}
	ws.labels = make([]int32, len(plan.owned))
	ws.trainMask = make([]bool, len(plan.owned))
	for r, v := range plan.owned {
		ws.labels[r] = ds.Labels[v]
		ws.trainMask[r] = ds.TrainMask[v]
	}
	ws.totalLabeled = ds.TrainLabeledCount()
	return ws
}

// newTape returns the tape for one layer's forward pass: arena-backed during
// training (everything on it dies by the epoch barrier), plain-allocating for
// inference, whose outputs outlive any barrier.
func (ws *workerState) newTape(training bool) *autograd.Tape {
	if training && ws.arena != nil {
		return autograd.NewTapeArena(ws.arena)
	}
	return autograd.NewTape()
}

// alloc returns a zeroed tensor from the worker's arena when it may be
// recycled at the epoch barrier (training), or a plain allocation otherwise.
func (ws *workerState) alloc(training bool, rows, cols int) *tensor.Tensor {
	if training {
		return ws.arena.Get(rows, cols)
	}
	return tensor.New(rows, cols)
}

// peerOrder returns the peer iteration order for this worker under the
// configured schedule.
func (ws *workerState) peerOrder() []int {
	if ws.eng.opts.Ring {
		return comm.RingOrder(ws.id, ws.eng.opts.Workers)
	}
	return comm.NaiveOrder(ws.id, ws.eng.opts.Workers)
}

// runEpoch performs one full forward/backward/update cycle and returns the
// local loss sum and labeled-vertex count.
func (ws *workerState) runEpoch(epoch int) (lossSum float64, count int) {
	L := len(ws.plan.layers)
	runs := make([]layerRun, L)
	coll := ws.eng.opts.Collector
	eg := coll.Group(ws.id, "epoch",
		obs.Int("epoch", epoch), obs.String("mode", string(ws.eng.opts.Mode)))
	defer eg.End()
	// sc is this worker's exclusive stage clock for the epoch (nil when
	// recording is off — every method on it is nil-safe). It lives on this
	// goroutine only; background send goroutines must never touch it.
	sc := ws.eng.opts.Recorder.Clock(ws.id)
	defer sc.End()

	// ---- Forward: synchronize-compute per layer ----
	prevVal := ws.feat
	for l := 1; l <= L; l++ {
		if ws.plan.tpLayers[l-1] != nil {
			runs[l-1] = ws.forwardLayerTP(epoch, l, prevVal, coll, true, sc)
		} else {
			runs[l-1] = ws.forwardLayer(epoch, l, prevVal, coll, true, sc)
		}
		prevVal = runs[l-1].out.Value
	}

	// ---- Loss on owned rows of the final layer ----
	sc.Switch(obs.StageBackward, L)
	last := &runs[L-1]
	lossSp := coll.Span(ws.id, metrics.Compute, "loss_backward", obs.Int("epoch", epoch))
	tape := last.tape
	ownedRows := len(ws.plan.owned)
	logits := last.out
	if logits.Value.Rows() != ownedRows {
		// Final layer has no cached block by construction; guard regardless.
		logits = tape.SliceRows(logits, 0, ownedRows)
	}
	loss, n := tape.NLLLossMasked(tape.LogSoftmax(logits), ws.labels, ws.trainMask)
	count = n
	lossSum = float64(loss.Value.At(0, 0)) * float64(n)

	// Seed so that the aggregated gradient equals the gradient of the
	// global mean loss: d(global mean)/d(local mean) = n / totalLabeled.
	seed := ws.alloc(true, 1, 1)
	if ws.totalLabeled > 0 {
		seed.Set(0, 0, float32(n)/float32(ws.totalLabeled))
	}
	tape.Backward(loss, seed)
	lossSp.End()

	// ---- Backward: compute-synchronize per layer ----
	for l := L; l >= 1; l-- {
		if runs[l-1].tp != nil {
			ws.backwardLayerTP(epoch, l, runs, sc)
		} else {
			ws.backwardLayer(epoch, l, runs, sc)
		}
	}

	// ---- Parameter update: collect, synchronise, step ----
	sc.Switch(obs.StageBackward, 0)
	collectSp := coll.Span(ws.id, metrics.Compute, "collect_grads")
	params := ws.model.Params()
	for _, p := range params {
		p.CollectGrad()
	}
	collectSp.End()
	if sched := ws.eng.opts.Scheduler; sched != nil {
		nn.SetLR(ws.opt, sched.LR(epoch))
	}
	sc.Switch(obs.StageGradSync, 0)
	if ws.eng.opts.ParamServer {
		// Clipping happens on the server after summation; workers receive
		// the already-stepped parameters.
		ws.paramServerUpdate(epoch, params)
	} else {
		ws.allReduceGrads(epoch, params)
		if ws.eng.opts.ClipNorm > 0 {
			nn.ClipGradNorm(params, ws.eng.opts.ClipNorm)
		}
		ws.opt.Step(params)
	}
	nn.ZeroGrads(params)
	return lossSum, count
}

// forwardLayer executes one layer: send master rows, redundantly compute the
// cached block, receive mirror rows, compute the owned block.
func (ws *workerState) forwardLayer(epoch, l int, prevVal *tensor.Tensor, coll *metrics.Collector, training bool, sc *obs.StageClock) layerRun {
	lp := &ws.plan.layers[l-1]
	layer := ws.model.Layers[l-1]
	tape := ws.newTape(training)
	lg := coll.Group(ws.id, "layer", obs.Int("layer", l))
	defer lg.End()
	sc.Switch(obs.StageForward, l)

	sendDone := make(chan struct{})
	send := func() {
		defer close(sendDone)
		ws.sendReps(epoch, l, prevVal, training)
	}
	if ws.eng.opts.Overlap {
		// Background send must never touch sc: the clock is single-goroutine.
		// Its wire bytes are still attributed via the fabric hooks.
		go send()
	} else {
		sc.Switch(obs.StageDepFetchSend, l)
		send()
		sc.Switch(obs.StageForward, l)
	}

	// Chunk-pipelined path (§4.3, Fig. 8): for sum-decomposable layers each
	// received chunk's edge stage runs as the chunk arrives, so compute on
	// chunk k overlaps delivery of chunk k+1.
	if sd, ok := layer.(nn.SumDecomposable); ok && ws.eng.opts.Overlap && !ws.eng.opts.Broadcast {
		run := ws.forwardLayerChunked(epoch, l, prevVal, coll, training, sd, tape, sc)
		<-sendDone
		return run
	}

	requireFeatGrad := training && l > 1 // layer 1's input is the static feature block
	hPrev := tape.Leaf(prevVal, requireFeatGrad, "h_prev")

	// Vertex-level pre-transform (e.g. GAT's z = W·h) applies to every row
	// universe exactly once.
	zPrev := hPrev
	pt, hasPT := layer.(nn.PreTransformer)
	if hasPT {
		sp := coll.Span(ws.id, metrics.Compute, "pre_transform", obs.Int("layer", l))
		zPrev = pt.PreTransform(tape, hPrev, training, ws.rng)
		sp.End()
	}

	// Cached (DepCache) block: all sources are local, so it runs while the
	// mirror exchange is in flight — the overlap of Fig. 8.
	var outCached *autograd.Variable
	if lp.cached.numDst() > 0 {
		depCacheHits.Add(float64(lp.cached.numDst()))
		sp := coll.Span(ws.id, metrics.Compute, "compute_cached",
			obs.Int("layer", l), obs.Int("rows", lp.cached.numDst()))
		outCached = ws.runBlock(tape, layer, &lp.cached, zPrev, zPrev, training)
		sp.End()
	}

	// Receive mirror chunks; assemble the received row block.
	var hRecv *autograd.Variable
	zAll := zPrev
	numRecv := lp.numHAllRows - lp.numPrevRows
	if numRecv > 0 {
		depCacheMisses.Add(float64(numRecv))
		sc.Switch(obs.StageDepFetchRecv, l)
		sp := coll.Span(ws.id, metrics.Comm, "gather_dep_nbr",
			obs.Int("layer", l), obs.Int("rows", numRecv))
		recvBytes := 0
		recvVal := ws.alloc(training, numRecv, layer.InDim())
		for _, j := range ws.peerOrder() {
			verts := lp.recv[j]
			if len(verts) == 0 {
				continue
			}
			base := int(lp.recvOffset[j]) - lp.numPrevRows
			if ws.eng.opts.Broadcast {
				msg := ws.mb.Wait(comm.KindBlock, epoch, l, 0, j)
				recvBytes += msg.WireBytes()
				for r, v := range verts {
					idx := searchVertex(msg.Vertices, v)
					copy(recvVal.Row(base+r), msg.Rows.Row(idx))
				}
				continue
			}
			msg := ws.mb.Wait(comm.KindRep, epoch, l, 0, j)
			recvBytes += msg.WireBytes()
			for r := range verts {
				copy(recvVal.Row(base+r), msg.Rows.Row(r))
			}
		}
		sp.SetAttrs(obs.Int("bytes", recvBytes))
		sp.End()
		sc.Switch(obs.StageForward, l)
		hRecv = tape.Leaf(recvVal, true, "h_recv")
		zRecv := hRecv
		if hasPT {
			spC := coll.Span(ws.id, metrics.Compute, "pre_transform", obs.Int("layer", l))
			zRecv = pt.PreTransform(tape, hRecv, training, ws.rng)
			spC.End()
		}
		zAll = tape.ConcatRows(zPrev, zRecv)
	}

	// Owned block: sources may live anywhere in zAll.
	sp := coll.Span(ws.id, metrics.Compute, "compute_owned",
		obs.Int("layer", l), obs.Int("rows", lp.owned.numDst()))
	outOwned := ws.runBlock(tape, layer, &lp.owned, zAll, zPrev, training)
	out := outOwned
	if outCached != nil {
		out = tape.ConcatRows(outOwned, outCached)
	}
	sp.End()

	<-sendDone
	return layerRun{tape: tape, hPrev: hPrev, hRecv: hRecv, out: out}
}

// runForward executes a forward-only (inference) pass and returns the owned
// vertices' final-layer outputs. Parameters bound on the throwaway tapes are
// released immediately. epoch must be unique per collective (the engine uses
// a dedicated counter range so inference messages never alias training ones).
func (ws *workerState) runForward(epoch int) *tensor.Tensor {
	L := len(ws.plan.layers)
	prevVal := ws.feat
	for l := 1; l <= L; l++ {
		// Inference passes carry a nil clock: they run outside any epoch and
		// the recorder would drop their samples anyway.
		var run layerRun
		if ws.plan.tpLayers[l-1] != nil {
			run = ws.forwardLayerTP(epoch, l, prevVal, ws.eng.opts.Collector, false, nil)
		} else {
			run = ws.forwardLayer(epoch, l, prevVal, ws.eng.opts.Collector, false, nil)
		}
		prevVal = run.out.Value
	}
	for _, p := range ws.model.Params() {
		p.CollectGrad()
	}
	return prevVal.RowSlice(0, len(ws.plan.owned))
}

// forwardLayerChunked is the incremental-aggregation forward: the owned
// block's edges are processed per source region (local first, then each
// peer's chunk in arrival schedule order), partial aggregations are summed,
// and the vertex stage runs once at the end.
func (ws *workerState) forwardLayerChunked(epoch, l int, prevVal *tensor.Tensor,
	coll *metrics.Collector, training bool, sd nn.SumDecomposable, tape *autograd.Tape,
	sc *obs.StageClock) layerRun {

	lp := &ws.plan.layers[l-1]
	layer := ws.model.Layers[l-1]
	hPrev := tape.Leaf(prevVal, training && l > 1, "h_prev")

	// Cached (DepCache) block first: pure local work that hides behind the
	// in-flight mirror exchange.
	var outCached *autograd.Variable
	if lp.cached.numDst() > 0 {
		depCacheHits.Add(float64(lp.cached.numDst()))
		sp := coll.Span(ws.id, metrics.Compute, "compute_cached",
			obs.Int("layer", l), obs.Int("rows", lp.cached.numDst()))
		outCached = ws.runBlock(tape, layer, &lp.cached, hPrev, hPrev, training)
		sp.End()
	}

	numDst := lp.owned.numDst()
	var partials []*autograd.Variable
	groupFor := make(map[int]*chunkGroup, len(lp.ownedGroups))
	for gi := range lp.ownedGroups {
		g := &lp.ownedGroups[gi]
		if g.peer < 0 {
			// Local region: aggregate immediately.
			if len(g.srcLocal) > 0 {
				sp := coll.Span(ws.id, metrics.Compute, "edge_stage",
					obs.Int("layer", l), obs.Int("peer", -1))
				partials = append(partials,
					sd.EdgeStage(tape, tape.Gather(hPrev, g.srcLocal), g.edgeNorm, g.dstRow, numDst))
				sp.End()
			}
			continue
		}
		groupFor[g.peer] = g
	}

	var leaves []chunkLeaf
	for _, j := range ws.peerOrder() {
		g := groupFor[j]
		verts := lp.recv[j]
		if len(verts) == 0 {
			continue
		}
		depCacheMisses.Add(float64(len(verts)))
		sc.Switch(obs.StageDepFetchRecv, l)
		sp := coll.Span(ws.id, metrics.Comm, "recv_chunk",
			obs.Int("layer", l), obs.Int("peer", j), obs.Int("rows", len(verts)))
		msg := ws.mb.Wait(comm.KindRep, epoch, l, 0, j)
		sp.SetAttrs(obs.Int("bytes", msg.WireBytes()))
		sp.End()
		sc.Switch(obs.StageForward, l)
		leaf := tape.Leaf(msg.Rows, true, "h_chunk")
		leaves = append(leaves, chunkLeaf{peer: j, v: leaf})
		if g == nil {
			continue // received for availability but no owned edge uses it
		}
		spC := coll.Span(ws.id, metrics.Compute, "edge_stage",
			obs.Int("layer", l), obs.Int("peer", j))
		partials = append(partials,
			sd.EdgeStage(tape, tape.Gather(leaf, g.srcLocal), g.edgeNorm, g.dstRow, numDst))
		spC.End()
	}

	vertexSp := coll.Span(ws.id, metrics.Compute, "vertex_stage",
		obs.Int("layer", l), obs.Int("rows", numDst))
	var agg *autograd.Variable
	for _, p := range partials {
		if agg == nil {
			agg = p
		} else {
			agg = tape.Add(agg, p)
		}
	}
	if agg == nil {
		agg = tape.Constant(ws.alloc(training, numDst, layer.InDim()), "agg_zero")
	}
	self := tape.Gather(hPrev, lp.owned.selfRow)
	outOwned := sd.VertexStage(tape, agg, self, lp.owned.selfNorm, training, ws.rng)
	out := outOwned
	if outCached != nil {
		out = tape.ConcatRows(outOwned, outCached)
	}
	vertexSp.End()
	return layerRun{tape: tape, hPrev: hPrev, out: out, chunkLeaves: leaves}
}

// runBlock executes one destination block through the layer's Forward.
// srcUniverse provides edge-source rows; selfUniverse provides the
// destinations' own rows (always within the prev-layout part).
func (ws *workerState) runBlock(tape *autograd.Tape, layer nn.Layer, b *blockPlan,
	srcUniverse, selfUniverse *autograd.Variable, training bool) *autograd.Variable {
	ctx := &nn.ForwardCtx{
		Tape:     tape,
		EdgeSrc:  tape.Gather(srcUniverse, b.srcRow),
		Self:     tape.Gather(selfUniverse, b.selfRow),
		Offsets:  b.offsets,
		EdgeDst:  b.dstRow,
		EdgeNorm: b.edgeNorm,
		SelfNorm: b.selfNorm,
		Training: training,
		RNG:      ws.rng,
	}
	return layer.Forward(ctx)
}

// sendReps packs and sends this worker's master rows needed by each peer at
// layer l. prevVal rows 0..len(owned) are the owned vertices in ascending
// order, so row lookup is the position in the owned list. Training sends draw
// payload buffers from the arena (the receiver is done with them by the epoch
// barrier); inference payloads must outlive barriers and allocate plainly.
func (ws *workerState) sendReps(epoch, l int, prevVal *tensor.Tensor, training bool) {
	var arena *tensor.Arena
	if training {
		arena = ws.arena
	}
	lp := &ws.plan.layers[l-1]
	coll := ws.eng.opts.Collector
	ownedPos := ws.plan.prevIndex[l-1] // owned rows come first in every layout
	for _, j := range ws.peerOrder() {
		verts := lp.send[j]
		if len(verts) == 0 {
			continue
		}
		sp := coll.Span(ws.id, metrics.Comm, "send_dep_nbr",
			obs.Int("layer", l), obs.Int("peer", j))
		if ws.eng.opts.Broadcast {
			// ROC-style: ship the whole owned block; the receiver picks the
			// rows it needs.
			msg := &comm.Message{
				From: ws.id, To: j, Kind: comm.KindBlock,
				Epoch: epoch, Layer: l,
				Vertices: ws.plan.owned,
				Rows:     prevVal.RowSlice(0, len(ws.plan.owned)),
			}
			sp.SetAttrs(obs.Int("bytes", msg.WireBytes()))
			ws.eng.fabric.Send(msg)
			sp.End()
			continue
		}
		buf := comm.NewEnqueuerArena(ws.eng.opts.LockFree, verts, prevVal.Cols(), arena)
		tensor.ParallelRows(len(verts), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				// verts is the buffer's own vertex list, so position k IS the
				// destination row: skip the per-vertex position lookup.
				buf.WriteRowAt(k, prevVal.Row(int(ownedPos[verts[k]])))
			}
		})
		rows, ids := buf.Finish()
		msg := &comm.Message{
			From: ws.id, To: j, Kind: comm.KindRep,
			Epoch: epoch, Layer: l, Vertices: ids, Rows: rows,
		}
		sp.SetAttrs(obs.Int("bytes", msg.WireBytes()))
		ws.eng.fabric.Send(msg)
		sp.End()
	}
}

// searchVertex returns the index of v in the ascending list, or -1.
func searchVertex(list []int32, v int32) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if list[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(list) && list[lo] == v {
		return lo
	}
	return -1
}

// backwardLayer runs layer l's tape backward (seeded by the upper layer's
// input gradient plus remote mirror gradients), then posts mirror gradients
// back to their masters (PostToDepNbr).
func (ws *workerState) backwardLayer(epoch, l int, runs []layerRun, sc *obs.StageClock) {
	lp := &ws.plan.layers[l-1]
	run := &runs[l-1]
	coll := ws.eng.opts.Collector
	bg := coll.Group(ws.id, "backward", obs.Int("layer", l))
	defer bg.End()
	sc.Switch(obs.StageBackward, l)

	// Seed: for the top layer the loss already back-propagated on the same
	// tape, so out.Grad is populated; for lower layers assemble the seed
	// from the upper layer's hPrev gradient and received mirror gradients.
	if l < len(runs) {
		upper := &runs[l]
		seed := upper.hPrev.Grad
		if seed == nil {
			seed = ws.alloc(true, run.out.Value.Rows(), run.out.Value.Cols())
		}
		// Mirror gradients for my masters sent at layer l+1 arrive from
		// every peer I sent rows to.
		ws.receiveMirrorGrads(epoch, l+1, seed, sc)
		sc.Switch(obs.StageBackward, l)
		sp := coll.Span(ws.id, metrics.Compute, "tape_backward", obs.Int("layer", l))
		run.tape.Backward(run.out, seed)
		sp.End()
	}
	// Post mirror gradients of chunk-pipelined leaves (one message per peer
	// chunk) — except layer 1, whose inputs are static features.
	if len(run.chunkLeaves) > 0 && l > 1 {
		sc.Switch(obs.StageMirrorScatter, l)
		sp := coll.Span(ws.id, metrics.Comm, "post_to_dep_nbr", obs.Int("layer", l))
		for _, cl := range run.chunkLeaves {
			verts := lp.recv[cl.peer]
			grad := cl.v.Grad
			if grad == nil {
				grad = ws.alloc(true, cl.v.Value.Rows(), cl.v.Value.Cols())
			}
			ws.eng.fabric.Send(&comm.Message{
				From: ws.id, To: cl.peer, Kind: comm.KindGrad,
				Epoch: epoch, Layer: l, Vertices: verts, Rows: grad,
			})
		}
		sp.End()
		sc.Switch(obs.StageBackward, l)
	}
	// Post mirror gradients of this layer's received rows to their masters
	// — except layer 1, whose inputs are static features.
	if run.hRecv != nil && l > 1 {
		grad := run.hRecv.Grad
		if grad == nil {
			grad = ws.alloc(true, run.hRecv.Value.Rows(), run.hRecv.Value.Cols())
		}
		sc.Switch(obs.StageMirrorScatter, l)
		sp := coll.Span(ws.id, metrics.Comm, "post_to_dep_nbr", obs.Int("layer", l))
		for _, j := range ws.peerOrder() {
			verts := lp.recv[j]
			if len(verts) == 0 {
				continue
			}
			base := int(lp.recvOffset[j]) - lp.numPrevRows
			if ws.eng.opts.Broadcast {
				// ROC-style: a full-width gradient block aligned with the
				// master's owned list, zero-padded.
				ownerOwned := ws.eng.plans[j].owned
				block := ws.alloc(true, len(ownerOwned), grad.Cols())
				for r, v := range verts {
					pos := searchVertex(ownerOwned, v)
					copy(block.Row(pos), grad.Row(base+r))
				}
				ws.eng.fabric.Send(&comm.Message{
					From: ws.id, To: j, Kind: comm.KindGrad,
					Epoch: epoch, Layer: l, Vertices: ownerOwned, Rows: block,
				})
				continue
			}
			rows := ws.arena.GetCopy(grad.RowSlice(base, base+len(verts)))
			ws.eng.fabric.Send(&comm.Message{
				From: ws.id, To: j, Kind: comm.KindGrad,
				Epoch: epoch, Layer: l, Vertices: verts, Rows: rows,
			})
		}
		sp.End()
		sc.Switch(obs.StageBackward, l)
	}
}

// receiveMirrorGrads waits for the gradient chunks of the masters this
// worker sent at layer l and accumulates them into seed's owned rows.
// Layer-1 sends carry features and produce no gradients.
func (ws *workerState) receiveMirrorGrads(epoch, l int, seed *tensor.Tensor, sc *obs.StageClock) {
	if l <= 1 {
		return
	}
	lp := &ws.plan.layers[l-1]
	coll := ws.eng.opts.Collector
	ownedPos := ws.plan.prevIndex[l-1]
	// Waiting on mirror gradients is scatter-side time of the layer that sent
	// the mirrors; the caller flips the clock back to backward-compute.
	sc.Switch(obs.StageMirrorScatter, l)
	for _, j := range ws.peerOrder() {
		verts := lp.send[j]
		if len(verts) == 0 {
			continue
		}
		sp := coll.Span(ws.id, metrics.Comm, "recv_mirror_grads",
			obs.Int("layer", l), obs.Int("peer", j))
		msg := ws.mb.Wait(comm.KindGrad, epoch, l, 0, j)
		sp.SetAttrs(obs.Int("bytes", msg.WireBytes()))
		if ws.eng.opts.Broadcast {
			// Full-width block aligned with my owned rows (which are the
			// first rows of every layout).
			for r := range msg.Vertices {
				dst := seed.Row(r)
				src := msg.Rows.Row(r)
				for c, g := range src {
					dst[c] += g
				}
			}
			sp.End()
			continue
		}
		for r, v := range verts {
			dst := seed.Row(int(ownedPos[v]))
			src := msg.Rows.Row(r)
			for c, g := range src {
				dst[c] += g
			}
		}
		sp.End()
	}
}
