package engine

import (
	"os"
	"runtime"
	"testing"

	"neutronstar/internal/nn"
	"neutronstar/internal/tensor"
)

// TestPooledBitIdenticalToUnpooled is the core pooling-correctness contract:
// pool Gets zero their storage, so the exact same training run — losses,
// bitwise — must come out whether tensors are recycled or freshly allocated.
func TestPooledBitIdenticalToUnpooled(t *testing.T) {
	base := Options{Workers: 4, Mode: Hybrid, Seed: 11}
	plain := trainLosses(t, base, 5)
	pooled := base
	pooled.Pool = tensor.NewPool()
	recycled := trainLosses(t, pooled, 5)
	for i := range plain {
		if plain[i] != recycled[i] {
			t.Fatalf("epoch %d: pooled run diverges bitwise: %.17g vs %.17g",
				i+1, plain[i], recycled[i])
		}
	}
}

// TestPooledMatchesUnpooledAcrossModes repeats the bit-identity check on the
// other two dependency policies and on a deeper model, since they exercise
// different worker code paths (mirror exchange off, chunked aggregation).
func TestPooledMatchesUnpooledAcrossModes(t *testing.T) {
	for _, mode := range []Mode{DepCache, DepComm} {
		base := Options{Workers: 3, Mode: mode, Model: nn.GIN, Seed: 4, Layers: 3}
		plain := trainLosses(t, base, 3)
		pooled := base
		pooled.Pool = tensor.NewPool()
		recycled := trainLosses(t, pooled, 3)
		for i := range plain {
			if plain[i] != recycled[i] {
				t.Fatalf("%s epoch %d: %.17g vs %.17g", mode, i+1, plain[i], recycled[i])
			}
		}
	}
}

// TestArenasDrainAtBarrier checks the epoch lifecycle: after Train returns
// (past the final barrier) every arena tensor has been released back to the
// pool, and the pool actually got reuse after the first epoch.
func TestArenasDrainAtBarrier(t *testing.T) {
	pool := tensor.NewPool()
	opts := Options{Workers: 4, Mode: Hybrid, Seed: 11, Pool: pool}
	trainLosses(t, opts, 3)
	s := pool.Stats()
	if s.BytesInFlight != 0 {
		t.Fatalf("%d bytes still checked out after the final barrier", s.BytesInFlight)
	}
	if s.Hits == 0 {
		t.Fatal("three epochs produced zero pool hits; arenas are not recycling")
	}
	// No hit-rate threshold here: under -race sync.Pool deliberately drops
	// items at random, so only the env-gated alloc test asserts reuse levels.
}

// TestPooledEpochAllocReduction is the CI perf gate for the tentpole: a
// pooled epoch must allocate at most 70% of what an unpooled epoch does.
// Gated behind NS_PERF_ALLOCS (meaningless under -race, noisy under load);
// the perf-smoke job runs it without -race.
func TestPooledEpochAllocReduction(t *testing.T) {
	if os.Getenv("NS_PERF_ALLOCS") == "" {
		t.Skip("set NS_PERF_ALLOCS=1 to run alloc-budget tests")
	}
	ds := testDataset(t, 600, 8, 3)
	measure := func(pool *tensor.Pool) uint64 {
		e, err := NewEngine(ds, Options{Workers: 4, Mode: Hybrid, Seed: 11, Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.Train(1) // warm up: planner, caches, first-touch growth
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		e.Train(4)
		runtime.ReadMemStats(&m1)
		return (m1.Mallocs - m0.Mallocs) / 4
	}
	plain := measure(nil)
	pooled := measure(tensor.NewPool())
	t.Logf("allocs/epoch: unpooled %d, pooled %d (%.1f%%)",
		plain, pooled, 100*float64(pooled)/float64(plain))
	if float64(pooled) > 0.7*float64(plain) {
		t.Fatalf("pooled epoch allocates %d, unpooled %d; want <= 70%%", pooled, plain)
	}
}
