package engine

import (
	"neutronstar/internal/costmodel"
	"neutronstar/internal/hybrid"
	"neutronstar/internal/nn"
	"neutronstar/internal/obs"
	"neutronstar/internal/partition"
)

// Cost-model validation: the planner decided the DepCache/DepComm split from
// probed environment factors (Tv, Te, Tc) and Eq. 1–3's work counts. The
// flight recorder measures what those stages actually cost, so we can close
// the loop three ways:
//
//  1. Per-layer residuals — modeled vs. measured compute and communication
//     seconds, (meas−pred)/pred.
//  2. Fitted factors — empirical Tv/Te recovered from measured layer times by
//     least squares (falling back to a uniform rescale of the probe when the
//     layers cannot separate the two), and empirical Tc as measured
//     comm-seconds per communicated element.
//  3. A counterfactual plan — Algorithm 4 re-run under the fitted factors,
//     diffed against the plan under the probed ones: how many cache/comm
//     decisions would flip had the probe been right.

// LayerResidual compares modeled and measured cost at one layer, summed
// across workers and averaged over the sampled epochs.
type LayerResidual struct {
	Layer int `json:"layer"`
	// VertexOps / EdgeOps are the destination rows and edges the cluster
	// computes at this layer (owned + redundantly recomputed cached blocks).
	VertexOps int64 `json:"vertex_ops"`
	EdgeOps   int64 `json:"edge_ops"`
	// RecvRows is the number of dependency rows fetched over the network.
	RecvRows int64 `json:"recv_rows"`
	// RecvElems is the slice-exchange collective element volume of
	// tensor-parallel layers (zero elsewhere).
	RecvElems int64 `json:"recv_elems"`
	// Compute: prediction is (VertexOps·Tv + EdgeOps·Te)·d^(l) (the Eq. 1
	// work terms); measurement is the forward+backward stage seconds.
	PredComputeSeconds float64 `json:"pred_compute_seconds"`
	MeasComputeSeconds float64 `json:"meas_compute_seconds"`
	ComputeResidual    float64 `json:"compute_residual"`
	// Communication: prediction is RecvRows·Tc·d^(l-1) (Eq. 2–3);
	// measurement is dep-fetch send+recv plus the layer's mirror-gradient
	// scatter (Tc is calibrated for the bidirectional exchange).
	PredCommSeconds float64 `json:"pred_comm_seconds"`
	MeasCommSeconds float64 `json:"meas_comm_seconds"`
	CommResidual    float64 `json:"comm_residual"`
}

// CostReport is the full validator output.
type CostReport struct {
	// Epochs is the number of flight records averaged over.
	Epochs int `json:"epochs"`
	// Probed are the factors the planner used; Fitted are the empirical ones.
	Probed costmodel.Costs `json:"probed"`
	Fitted costmodel.Costs `json:"fitted"`
	// FitMethod is "least_squares" when Tv/Te separated cleanly, "scaled"
	// when the probe was uniformly rescaled, "probe" when nothing was
	// measurable (e.g. zero recorded compute time).
	FitMethod string          `json:"fit_method"`
	Layers    []LayerResidual `json:"layers"`
	// Flips diffs greedy plans under probed vs. fitted costs.
	Flips hybrid.FlipReport `json:"flips"`
}

// layerWork tallies cluster-wide modeled work per layer from the execution
// plans — the same quantities Eq. 1–3 charge, counted exactly.
type layerWork struct {
	vertexOps int64
	edgeOps   int64
	recvRows  int64
	// recvElems is the tensor-parallel slice-exchange volume (elements, not
	// rows: TP messages are column slices of varying width).
	recvElems int64
}

func (e *Engine) layerWorks() []layerWork {
	L := len(e.dims) - 1
	works := make([]layerWork, L)
	for _, p := range e.plans {
		for l := 0; l < L; l++ {
			if tp := p.tpLayers[l]; tp != nil {
				sh := tp.shared
				nOwned := len(p.owned)
				d := e.dims[l]
				width := int(tp.colStart[p.id+1] - tp.colStart[p.id])
				works[l].vertexOps += int64(nOwned)
				if sh.slice {
					// The edge stage covers all |E| edges at width/d of the
					// feature dimension: charge the pro-rated edge work.
					if d > 0 {
						works[l].edgeOps += int64(len(sh.srcRow)) * int64(width) / int64(d)
					}
				} else {
					works[l].edgeOps += int64(len(tp.full.srcRow))
				}
				works[l].recvElems += costmodel.TPVolume(sh.slice, l == 0,
					len(sh.globalRow), nOwned, d, width)
				continue
			}
			lp := &p.layers[l]
			works[l].vertexOps += int64(lp.owned.numDst() + lp.cached.numDst())
			works[l].edgeOps += int64(len(lp.owned.srcRow) + len(lp.cached.srcRow))
			for _, verts := range lp.recv {
				works[l].recvRows += int64(len(verts))
			}
		}
	}
	return works
}

// CostReport validates the cost model against the engine's flight records.
// Returns nil when no recorder is attached or no epoch has completed.
func (e *Engine) CostReport() *CostReport {
	if e.opts.Recorder == nil {
		return nil
	}
	return e.CostReportFrom(e.opts.Recorder.Snapshot())
}

// CostReportFrom validates against an explicit set of epoch records (the
// bench pipeline passes only post-warmup epochs).
func (e *Engine) CostReportFrom(recs []obs.EpochRecord) *CostReport {
	if len(recs) == 0 {
		return nil
	}
	works := e.layerWorks()
	L := len(works)
	rep := &CostReport{Epochs: len(recs), Probed: e.costs, Fitted: e.costs, FitMethod: "probe"}

	// Average measured stage seconds per layer across the sampled epochs.
	measCompute := make([]float64, L+1)
	measComm := make([]float64, L+1)
	for i := range recs {
		r := &recs[i]
		for l := 1; l <= L; l++ {
			measCompute[l] += r.LayerStageSeconds("forward", l) + r.LayerStageSeconds("backward", l)
			measComm[l] += r.LayerStageSeconds("dep_fetch_send", l) +
				r.LayerStageSeconds("dep_fetch_recv", l) +
				r.LayerStageSeconds("mirror_scatter", l)
		}
	}
	n := float64(len(recs))
	for l := 1; l <= L; l++ {
		measCompute[l] /= n
		measComm[l] /= n
	}

	// Fit empirical compute factors over the layers.
	var vElems, eElems, seconds []float64
	var predSum, measSum float64
	for l := 1; l <= L; l++ {
		w := works[l-1]
		d := float64(e.dims[l])
		vElems = append(vElems, float64(w.vertexOps)*d)
		eElems = append(eElems, float64(w.edgeOps)*d)
		seconds = append(seconds, measCompute[l])
		predSum += (float64(w.vertexOps)*e.costs.Tv + float64(w.edgeOps)*e.costs.Te) * d
		measSum += measCompute[l]
	}
	if tv, te, ok := costmodel.FitComputeFactors(vElems, eElems, seconds); ok {
		rep.Fitted.Tv, rep.Fitted.Te = tv, te
		rep.FitMethod = "least_squares"
	} else if predSum > 0 && measSum > 0 {
		scale := measSum / predSum
		rep.Fitted.Tv = e.costs.Tv * scale
		rep.Fitted.Te = e.costs.Te * scale
		rep.FitMethod = "scaled"
	}

	// Fit empirical Tc as comm seconds per communicated element — dependency
	// rows at their layer width plus TP collective volume.
	var commElems, commSeconds float64
	for l := 1; l <= L; l++ {
		commElems += float64(works[l-1].recvRows)*float64(e.dims[l-1]) +
			float64(works[l-1].recvElems)
		commSeconds += measComm[l]
	}
	if commElems > 0 && commSeconds > 0 {
		rep.Fitted.Tc = commSeconds / commElems
	}

	for l := 1; l <= L; l++ {
		w := works[l-1]
		lr := LayerResidual{
			Layer: l, VertexOps: w.vertexOps, EdgeOps: w.edgeOps,
			RecvRows: w.recvRows, RecvElems: w.recvElems,
			PredComputeSeconds: (float64(w.vertexOps)*e.costs.Tv + float64(w.edgeOps)*e.costs.Te) * float64(e.dims[l]),
			MeasComputeSeconds: measCompute[l],
			PredCommSeconds: float64(w.recvRows)*e.costs.CommCost(e.dims[l-1]) +
				e.costs.TPCost(w.recvElems),
			MeasCommSeconds: measComm[l],
		}
		if lr.PredComputeSeconds > 0 {
			lr.ComputeResidual = (lr.MeasComputeSeconds - lr.PredComputeSeconds) / lr.PredComputeSeconds
		}
		if lr.PredCommSeconds > 0 {
			lr.CommResidual = (lr.MeasCommSeconds - lr.PredCommSeconds) / lr.PredCommSeconds
		}
		rep.Layers = append(rep.Layers, lr)
	}

	rep.Flips = e.counterfactualFlips(rep.Fitted)
	return rep
}

// counterfactualFlips re-runs Algorithm 4 under probed and fitted costs and
// reports the decision diff. Planning is repeated from scratch (it is cheap
// relative to training) so the comparison is policy-to-policy regardless of
// the engine's actual mode.
func (e *Engine) counterfactualFlips(fitted costmodel.Costs) hybrid.FlipReport {
	// Engines planned with the 3-way family re-plan 3-way, so the
	// counterfactual can also report flips into or out of tensor parallelism;
	// the 4-way family likewise re-plans 4-way to expose replication flips.
	mode := hybrid.ModeHybrid
	if e.opts.Mode == DepTP || e.opts.Mode == Hybrid3 {
		mode = hybrid.ModeHybrid3
	}
	if e.opts.Mode == DepRep || e.opts.Mode == Hybrid4 {
		mode = hybrid.ModeHybrid4
	}
	sliceTP := nn.SliceSeparable(e.opts.Model)
	repComp := partition.CompressionFactor(e.repQuant)
	base := &hybrid.Planner{
		Graph: e.ds.Graph, Part: e.part, Dims: e.dims,
		Costs: e.costs, MemBudget: e.opts.MemBudget, SliceTP: sliceTP,
		RepBudget: e.opts.RepBudget, RepCompression: repComp,
	}
	alt := &hybrid.Planner{
		Graph: e.ds.Graph, Part: e.part, Dims: e.dims,
		Costs: fitted, MemBudget: e.opts.MemBudget, SliceTP: sliceTP,
		RepBudget: e.opts.RepBudget, RepCompression: repComp,
	}
	planA, errA := base.DecideAll(mode)
	planB, errB := alt.DecideAll(mode)
	if errA != nil || errB != nil {
		return hybrid.FlipReport{}
	}
	return hybrid.DiffDecisions(planA, planB)
}
