package engine

import (
	"fmt"
	"math"
	"testing"

	"neutronstar/internal/comm"
	"neutronstar/internal/costmodel"
	"neutronstar/internal/dataset"
	"neutronstar/internal/hybrid"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
	"neutronstar/internal/partition"
	"neutronstar/internal/tensor"
)

func testDataset(t testing.TB, n int, deg float64, seed uint64) *dataset.Dataset {
	t.Helper()
	return dataset.Load(dataset.Spec{
		Name: "eng", Vertices: n, AvgDegree: deg, FeatureDim: 12,
		NumClasses: 4, HiddenDim: 8, Gen: dataset.GenSBM, Homophily: 0.85, Seed: seed,
	})
}

// referenceLosses trains the single-machine reference for `epochs` and
// returns the loss per epoch.
func referenceLosses(ds *dataset.Dataset, kind nn.ModelKind, epochs int, seed uint64) []float64 {
	dims := []int{ds.Spec.FeatureDim, ds.Spec.HiddenDim, ds.Spec.NumClasses}
	model := nn.MustNewModel(kind, dims, 0, seed+7)
	opt := nn.NewAdam(0.01)
	out := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		loss := ReferenceTrainStep(ds.Graph, model, ds.Features, ds.Labels, ds.TrainMask)
		opt.Step(model.Params())
		nn.ZeroGrads(model.Params())
		out = append(out, loss)
	}
	return out
}

func engineLosses(t *testing.T, ds *dataset.Dataset, opts Options, epochs int) []float64 {
	t.Helper()
	e, err := NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	out := make([]float64, 0, epochs)
	for i := 0; i < epochs; i++ {
		st := e.RunEpoch()
		out = append(out, st.Loss)
	}
	if !e.ReplicasInSync() {
		t.Fatalf("replicas diverged (%s, %d workers)", opts.Mode, opts.Workers)
	}
	return out
}

func assertLossesClose(t *testing.T, label string, got, want []float64, tol float64) {
	t.Helper()
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("%s: epoch %d loss %v, reference %v (all got %v, want %v)",
				label, i, got[i], want[i], got, want)
		}
	}
}

// The central correctness claim: DepCache, DepComm and Hybrid all compute
// the exact full-graph gradient, so their loss trajectories match the
// single-machine reference for every model and worker count.
func TestAllModesMatchReference(t *testing.T) {
	ds := testDataset(t, 240, 5, 21)
	const epochs = 4
	for _, kind := range []nn.ModelKind{nn.GCN, nn.GIN, nn.GAT, nn.SAGE} {
		ref := referenceLosses(ds, kind, epochs, 42)
		for _, mode := range []Mode{DepCache, DepComm, Hybrid} {
			for _, workers := range []int{1, 2, 4} {
				label := fmt.Sprintf("%s/%s/%dw", kind, mode, workers)
				got := engineLosses(t, ds, Options{
					Workers: workers, Mode: mode, Model: kind, Seed: 42,
				}, epochs)
				assertLossesClose(t, label, got, ref, 2e-3)
			}
		}
	}
}

func TestOptimizationsPreserveResults(t *testing.T) {
	ds := testDataset(t, 200, 6, 22)
	const epochs = 3
	ref := referenceLosses(ds, nn.GCN, epochs, 5)
	for _, opt := range []struct {
		name string
		o    Options
	}{
		{"ring", Options{Ring: true}},
		{"lockfree", Options{LockFree: true}},
		{"overlap", Options{Overlap: true}},
		{"all", Options{Ring: true, LockFree: true, Overlap: true}},
	} {
		o := opt.o
		o.Workers = 3
		o.Mode = Hybrid
		o.Model = nn.GCN
		o.Seed = 5
		got := engineLosses(t, ds, o, epochs)
		assertLossesClose(t, opt.name, got, ref, 2e-3)
	}
}

func TestForcedRatioEndpointsMatchPureModes(t *testing.T) {
	ds := testDataset(t, 200, 6, 23)
	const epochs = 3
	ref := referenceLosses(ds, nn.GCN, epochs, 9)
	for _, ratio := range []float64{0, 0.5, 1} {
		got := engineLosses(t, ds, Options{
			Workers: 3, Mode: Hybrid, Model: nn.GCN, Seed: 9,
			ForceRatio: true, CacheRatio: ratio,
		}, epochs)
		assertLossesClose(t, fmt.Sprintf("ratio %.1f", ratio), got, ref, 2e-3)
	}
}

func TestPartitionersAllCorrect(t *testing.T) {
	ds := testDataset(t, 300, 6, 24)
	const epochs = 2
	ref := referenceLosses(ds, nn.GCN, epochs, 11)
	for _, algo := range []partition.Algorithm{partition.Chunk, partition.Metis, partition.Fennel} {
		got := engineLosses(t, ds, Options{
			Workers: 4, Mode: Hybrid, Model: nn.GCN, Seed: 11, Partitioner: algo,
		}, epochs)
		assertLossesClose(t, string(algo), got, ref, 2e-3)
	}
}

func TestThrottledNetworkStillCorrect(t *testing.T) {
	ds := testDataset(t, 150, 5, 25)
	ref := referenceLosses(ds, nn.GCN, 2, 13)
	got := engineLosses(t, ds, Options{
		Workers: 3, Mode: DepComm, Model: nn.GCN, Seed: 13,
		Profile: comm.NetworkProfile{Name: "t", BytesPerSec: 200e6},
		Ring:    true, Overlap: true,
	}, 2)
	assertLossesClose(t, "throttled", got, ref, 2e-3)
}

func TestTrainingImprovesAccuracy(t *testing.T) {
	ds := testDataset(t, 400, 8, 26)
	e, err := NewEngine(ds, Options{Workers: 4, Mode: Hybrid, Model: nn.GCN, Seed: 3, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	before := e.Evaluate(ds.TestMask)
	stats := e.Train(40)
	after := e.Evaluate(ds.TestMask)
	if after < before+0.2 {
		t.Fatalf("accuracy went %v -> %v; no learning", before, after)
	}
	if stats[len(stats)-1].Loss >= stats[0].Loss {
		t.Fatalf("loss did not decrease: %v -> %v", stats[0].Loss, stats[len(stats)-1].Loss)
	}
	if after < 0.55 {
		t.Fatalf("final accuracy %v too low for a homophilous SBM", after)
	}
}

func TestDepCacheMovesNoRepBytes(t *testing.T) {
	// DepCache must not exchange representation messages — only all-reduce
	// traffic.
	ds := testDataset(t, 200, 6, 27)
	e, err := NewEngine(ds, Options{Workers: 3, Mode: DepCache, Model: nn.GCN, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, p := range e.plans {
		for l := range p.layers {
			for j := range p.layers[l].recv {
				if len(p.layers[l].recv[j]) != 0 {
					t.Fatalf("DepCache worker %d layer %d receives from %d", p.id, l+1, j)
				}
			}
		}
	}
	if e.CacheBytes() == 0 {
		t.Fatal("DepCache replicated nothing on a cut graph")
	}
	e.RunEpoch()
}

func TestDepCommCachesNothing(t *testing.T) {
	ds := testDataset(t, 200, 6, 28)
	e, err := NewEngine(ds, Options{Workers: 3, Mode: DepComm, Model: nn.GCN, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, p := range e.plans {
		for k, c := range p.cachedCompute {
			if len(c) != 0 {
				t.Fatalf("DepComm worker %d cached %d vertices at level %d", p.id, len(c), k)
			}
		}
	}
}

// Plan structural invariants, checked across modes: every in-edge of every
// owned vertex appears exactly once in the owned block; row indices are in
// range; send/recv lists are symmetric.
func TestPlanInvariants(t *testing.T) {
	ds := testDataset(t, 180, 7, 29)
	for _, mode := range []Mode{DepCache, DepComm, Hybrid} {
		e, err := NewEngine(ds, Options{Workers: 4, Mode: mode, Model: nn.GCN, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		g := ds.Graph
		for _, p := range e.plans {
			for l := range p.layers {
				lp := &p.layers[l]
				// Owned block edge count equals total in-degree of owned set.
				wantEdges := 0
				for _, v := range p.owned {
					wantEdges += g.InDegree(v)
				}
				if len(lp.owned.srcRow) != wantEdges {
					t.Fatalf("%s worker %d layer %d: %d edges, want %d",
						mode, p.id, l+1, len(lp.owned.srcRow), wantEdges)
				}
				for _, r := range lp.owned.srcRow {
					if r < 0 || int(r) >= lp.numHAllRows {
						t.Fatalf("%s: srcRow %d out of %d", mode, r, lp.numHAllRows)
					}
				}
				for _, r := range lp.cached.srcRow {
					if r < 0 || int(r) >= lp.numPrevRows {
						t.Fatalf("%s: cached srcRow %d outside prev rows %d", mode, r, lp.numPrevRows)
					}
				}
				// Symmetry: my send list to j equals j's recv list from me.
				for j := range lp.send {
					if j == p.id {
						continue
					}
					other := e.plans[j].layers[l].recv[p.id]
					if len(lp.send[j]) != len(other) {
						t.Fatalf("%s: send/recv asymmetry %d<->%d", mode, p.id, j)
					}
					for k := range other {
						if lp.send[j][k] != other[k] {
							t.Fatalf("%s: send/recv order mismatch", mode)
						}
					}
					// Everything I send must be owned by me.
					for _, v := range lp.send[j] {
						if e.part.Assign[v] != int32(p.id) {
							t.Fatalf("%s: worker %d sends non-owned %d", mode, p.id, v)
						}
					}
				}
			}
		}
		e.Close()
	}
}

func TestHybridCachesLessThanDepCache(t *testing.T) {
	ds := testDataset(t, 400, 10, 30)
	// Comm-expensive regime: hybrid should still cache less than DepCache
	// overall (DepCache caches everything).
	costs := costmodel.Costs{Tv: 1e-7, Te: 1e-8, Tc: 1e-6}
	h, err := NewEngine(ds, Options{Workers: 4, Mode: Hybrid, Model: nn.GCN, Costs: costs, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	c, err := NewEngine(ds, Options{Workers: 4, Mode: DepCache, Model: nn.GCN, Costs: costs, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if h.CacheBytes() > c.CacheBytes() {
		t.Fatalf("hybrid cache %d > depcache %d", h.CacheBytes(), c.CacheBytes())
	}
}

func TestEpochStatsPopulated(t *testing.T) {
	ds := testDataset(t, 100, 4, 31)
	e, err := NewEngine(ds, Options{Workers: 2, Mode: Hybrid, Model: nn.GCN, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	st := e.RunEpoch()
	if st.Epoch != 1 || st.Loss <= 0 || st.Duration <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	st2 := e.RunEpoch()
	if st2.Epoch != 2 {
		t.Fatal("epoch counter broken")
	}
}

func TestUnknownModeRejected(t *testing.T) {
	ds := testDataset(t, 50, 3, 32)
	if _, err := NewEngine(ds, Options{Workers: 2, Mode: "bogus"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSingleWorkerNoComm(t *testing.T) {
	ds := testDataset(t, 100, 4, 33)
	e, err := NewEngine(ds, Options{Workers: 1, Mode: DepComm, Model: nn.GCN, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.RunEpoch()
	// With one worker there are no dependencies and no replicas.
	if e.CacheBytes() != 0 {
		t.Fatal("single worker cached something")
	}
}

func TestMemBudgetLimitsHybridReplicas(t *testing.T) {
	ds := testDataset(t, 300, 10, 34)
	costs := costmodel.Costs{Tv: 1e-9, Te: 1e-10, Tc: 1e-3} // cache-greedy regime
	unlimited, err := NewEngine(ds, Options{Workers: 4, Mode: Hybrid, Model: nn.GCN, Costs: costs, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer unlimited.Close()
	limited, err := NewEngine(ds, Options{Workers: 4, Mode: Hybrid, Model: nn.GCN, Costs: costs,
		MemBudget: 4096, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer limited.Close()
	if limited.CacheBytes() >= unlimited.CacheBytes() {
		t.Fatalf("budgeted %d >= unlimited %d", limited.CacheBytes(), unlimited.CacheBytes())
	}
	// Both must still train correctly.
	ref := referenceLosses(ds, nn.GCN, 2, 10+7-7)
	_ = ref
	limited.RunEpoch()
	if !limited.ReplicasInSync() {
		t.Fatal("budgeted hybrid diverged")
	}
}

func TestBroadcastModeMatchesReference(t *testing.T) {
	ds := testDataset(t, 200, 6, 35)
	const epochs = 3
	ref := referenceLosses(ds, nn.GCN, epochs, 15)
	got := engineLosses(t, ds, Options{
		Workers: 3, Mode: DepComm, Model: nn.GCN, Seed: 15, Broadcast: true,
	}, epochs)
	assertLossesClose(t, "broadcast", got, ref, 2e-3)
}

func TestBroadcastMovesMoreBytes(t *testing.T) {
	ds := testDataset(t, 300, 8, 36)
	run := func(broadcast bool) int64 {
		coll := metrics.NewCollector()
		e, err := NewEngine(ds, Options{
			Workers: 4, Mode: DepComm, Model: nn.GCN, Seed: 16,
			Broadcast: broadcast, Collector: coll,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		e.RunEpoch()
		return coll.BytesSent()
	}
	chunked := run(false)
	broadcast := run(true)
	if broadcast <= chunked {
		t.Fatalf("broadcast bytes %d <= chunked %d", broadcast, chunked)
	}
}

func TestParamServerMatchesReference(t *testing.T) {
	ds := testDataset(t, 200, 6, 37)
	const epochs = 3
	ref := referenceLosses(ds, nn.GCN, epochs, 17)
	got := engineLosses(t, ds, Options{
		Workers: 4, Mode: Hybrid, Model: nn.GCN, Seed: 17, ParamServer: true,
	}, epochs)
	assertLossesClose(t, "paramserver", got, ref, 2e-3)
}

func TestParamServerSingleWorker(t *testing.T) {
	ds := testDataset(t, 80, 4, 38)
	e, err := NewEngine(ds, Options{Workers: 1, Mode: Hybrid, Model: nn.GCN, Seed: 18, ParamServer: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stats := e.Train(3)
	if stats[2].Loss >= stats[0].Loss {
		t.Fatalf("PS single worker did not learn: %v", stats)
	}
}

// referenceLossesDepth mirrors referenceLosses for arbitrary model depth.
func referenceLossesDepth(ds *dataset.Dataset, kind nn.ModelKind, layers, epochs int, seed uint64) []float64 {
	dims := []int{ds.Spec.FeatureDim}
	for l := 1; l < layers; l++ {
		dims = append(dims, ds.Spec.HiddenDim)
	}
	dims = append(dims, ds.Spec.NumClasses)
	model := nn.MustNewModel(kind, dims, 0, seed+7)
	opt := nn.NewAdam(0.01)
	out := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		loss := ReferenceTrainStep(ds.Graph, model, ds.Features, ds.Labels, ds.TrainMask)
		opt.Step(model.Params())
		nn.ZeroGrads(model.Params())
		out = append(out, loss)
	}
	return out
}

// Depth 3 exercises two-hop dependency subtrees in DepCache and the hybrid
// planner — the structurally hardest path in the plan derivation.
func TestThreeLayerModelsMatchReference(t *testing.T) {
	ds := testDataset(t, 180, 4, 40)
	const epochs = 3
	ref := referenceLossesDepth(ds, nn.GCN, 3, epochs, 23)
	for _, mode := range []Mode{DepCache, DepComm, Hybrid} {
		got := engineLosses(t, ds, Options{
			Workers: 3, Mode: mode, Model: nn.GCN, Layers: 3, Seed: 23,
		}, epochs)
		assertLossesClose(t, fmt.Sprintf("3layer/%s", mode), got, ref, 2e-3)
	}
}

func TestFourLayerHybrid(t *testing.T) {
	ds := testDataset(t, 120, 3, 41)
	ref := referenceLossesDepth(ds, nn.GCN, 4, 2, 29)
	got := engineLosses(t, ds, Options{
		Workers: 4, Mode: Hybrid, Model: nn.GCN, Layers: 4, Seed: 29,
		Ring: true, Overlap: true,
	}, 2)
	assertLossesClose(t, "4layer", got, ref, 2e-3)
}

func TestSchedulerAndClipping(t *testing.T) {
	ds := testDataset(t, 150, 4, 42)
	e, err := NewEngine(ds, Options{
		Workers: 3, Mode: Hybrid, Model: nn.GCN, Seed: 33,
		Scheduler: nn.CosineLR{Base: 0.05, Min: 0.001, Span: 10},
		ClipNorm:  1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stats := e.Train(10)
	if stats[9].Loss >= stats[0].Loss {
		t.Fatalf("scheduled training did not learn: %v -> %v", stats[0].Loss, stats[9].Loss)
	}
	if !e.ReplicasInSync() {
		t.Fatal("replicas diverged under scheduler+clipping")
	}
}

func TestDistributedPredictMatchesReference(t *testing.T) {
	ds := testDataset(t, 220, 5, 43)
	for _, mode := range []Mode{DepCache, DepComm, Hybrid} {
		e, err := NewEngine(ds, Options{Workers: 4, Mode: mode, Model: nn.GCN, Seed: 44})
		if err != nil {
			t.Fatal(err)
		}
		e.Train(2)
		got := e.Predict()
		want := ReferenceForward(ds.Graph, e.Model(), ds.Features)
		if !got.AllClose(want, 1e-3) {
			t.Fatalf("%s: distributed predict deviates, maxdiff %v", mode, got.MaxAbsDiff(want))
		}
		// Prediction must not disturb subsequent training.
		st := e.RunEpoch()
		if st.Loss <= 0 || !e.ReplicasInSync() {
			t.Fatalf("%s: training broken after Predict", mode)
		}
		e.Close()
	}
}

// newEngineWithDecisions builds an engine around externally constructed
// dependency decisions, bypassing the planner — the test-only path for
// exercising arbitrary R/C splits.
func newEngineWithDecisions(t *testing.T, ds *dataset.Dataset, decs []*hybrid.Decision,
	part *partition.Partition, workers int, seed uint64) *Engine {
	t.Helper()
	dims := []int{ds.Spec.FeatureDim, ds.Spec.HiddenDim, ds.Spec.NumClasses}
	plans, err := buildPlans(ds.Graph, part, decs, dims, false)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Workers: workers, Mode: Hybrid, Model: nn.GCN, Seed: seed}.withDefaults()
	e := &Engine{
		opts: opts, ds: ds, part: part, decs: decs, plans: plans, dims: dims,
		fabric: comm.NewFabric(workers, comm.ProfileLocal, nil),
	}
	e.states = make([]*workerState, workers)
	for i := 0; i < workers; i++ {
		model, err := nn.NewModel(nn.GCN, dims, 0, seed+7)
		if err != nil {
			t.Fatal(err)
		}
		e.states[i] = newWorkerState(i, e, model)
	}
	return e
}

// Any valid per-layer cache/communicate split — including splits no cost
// model would ever choose — must produce the exact full-graph gradients.
// This fuzzes the plan derivation (subtree expansion, row maps, mirror
// exchange) far outside the paths the three standard modes exercise.
func TestRandomDecisionsMatchReference(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		seed := uint64(500 + trial)
		ds := testDataset(t, 160, 5, seed)
		const workers = 3
		part, err := partition.New(partition.Chunk, ds.Graph, workers)
		if err != nil {
			t.Fatal(err)
		}
		rng := tensor.NewRNG(seed * 31)
		decs := make([]*hybrid.Decision, workers)
		for w := 0; w < workers; w++ {
			// Recompute this worker's dependency set.
			depSet := map[int32]struct{}{}
			for _, v := range part.Parts[w] {
				for _, u := range ds.Graph.InNeighbors(v) {
					if part.Assign[u] != int32(w) {
						depSet[u] = struct{}{}
					}
				}
			}
			d := &hybrid.Decision{R: make([][]int32, 2), C: make([][]int32, 2)}
			for u := range depSet {
				for l := 0; l < 2; l++ {
					if rng.Float32() < 0.5 {
						d.R[l] = append(d.R[l], u)
					} else {
						d.C[l] = append(d.C[l], u)
					}
				}
			}
			decs[w] = d
		}
		e := newEngineWithDecisions(t, ds, decs, part, workers, seed)
		ref := referenceLosses(ds, nn.GCN, 3, seed)
		var got []float64
		for i := 0; i < 3; i++ {
			got = append(got, e.RunEpoch().Loss)
		}
		if !e.ReplicasInSync() {
			t.Fatalf("trial %d: replicas diverged", trial)
		}
		e.Close()
		assertLossesClose(t, fmt.Sprintf("random-decision trial %d", trial), got, ref, 2e-3)
	}
}

// The whole training protocol must serialise over real TCP sockets: loss
// trajectories over the TCP fabric match the in-process reference exactly.
func TestTCPTransportMatchesReference(t *testing.T) {
	ds := testDataset(t, 180, 5, 45)
	const epochs = 3
	ref := referenceLosses(ds, nn.GCN, epochs, 19)
	for _, mode := range []Mode{DepComm, Hybrid} {
		got := engineLosses(t, ds, Options{
			Workers: 3, Mode: mode, Model: nn.GCN, Seed: 19, TCP: true,
			Ring: true, Overlap: true,
		}, epochs)
		assertLossesClose(t, fmt.Sprintf("tcp/%s", mode), got, ref, 2e-3)
	}
}
