package engine

import (
	"math"
	"testing"

	"neutronstar/internal/nn"
	"neutronstar/internal/tensor"
)

func TestReferenceForwardShapes(t *testing.T) {
	ds := testDataset(t, 90, 4, 60)
	for _, kind := range []nn.ModelKind{nn.GCN, nn.GIN, nn.GAT, nn.SAGE} {
		model := nn.MustNewModel(kind, []int{ds.Spec.FeatureDim, 8, ds.Spec.NumClasses}, 0, 1)
		logits := ReferenceForward(ds.Graph, model, ds.Features)
		if logits.Rows() != ds.NumVertices() || logits.Cols() != ds.Spec.NumClasses {
			t.Fatalf("%s: logits %dx%d", kind, logits.Rows(), logits.Cols())
		}
		for _, v := range logits.Data() {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite logit", kind)
			}
		}
	}
}

func TestReferenceForwardDeterministic(t *testing.T) {
	ds := testDataset(t, 80, 4, 61)
	model := nn.MustNewModel(nn.GCN, []int{ds.Spec.FeatureDim, 8, ds.Spec.NumClasses}, 0, 2)
	a := ReferenceForward(ds.Graph, model, ds.Features)
	b := ReferenceForward(ds.Graph, model, ds.Features)
	if !a.Equal(b) {
		t.Fatal("inference not deterministic")
	}
}

func TestReferenceTrainStepReducesLoss(t *testing.T) {
	ds := testDataset(t, 120, 4, 62)
	model := nn.MustNewModel(nn.GCN, []int{ds.Spec.FeatureDim, 8, ds.Spec.NumClasses}, 0, 3)
	opt := nn.NewAdam(0.02)
	first := ReferenceTrainStep(ds.Graph, model, ds.Features, ds.Labels, ds.TrainMask)
	opt.Step(model.Params())
	nn.ZeroGrads(model.Params())
	var last float64
	for i := 0; i < 10; i++ {
		last = ReferenceTrainStep(ds.Graph, model, ds.Features, ds.Labels, ds.TrainMask)
		opt.Step(model.Params())
		nn.ZeroGrads(model.Params())
	}
	if last >= first {
		t.Fatalf("loss %v -> %v", first, last)
	}
}

func TestInferenceDoesNotMutateParams(t *testing.T) {
	ds := testDataset(t, 60, 3, 63)
	model := nn.MustNewModel(nn.GAT, []int{ds.Spec.FeatureDim, 8, ds.Spec.NumClasses}, 0, 4)
	before := make([]*tensor.Tensor, 0)
	for _, p := range model.Params() {
		before = append(before, p.Value.Clone())
	}
	ReferenceForward(ds.Graph, model, ds.Features)
	for i, p := range model.Params() {
		if !p.Value.Equal(before[i]) {
			t.Fatalf("param %d mutated by inference", i)
		}
		if tensor.Norm(p.Grad) != 0 {
			t.Fatalf("param %d accumulated gradient during inference", i)
		}
	}
}

func TestEngineTrainAfterEvaluateInterleaved(t *testing.T) {
	// Alternating Train and Evaluate must not corrupt message routing or
	// replica sync (Evaluate runs distributed forward passes with their own
	// tag space).
	ds := testDataset(t, 100, 4, 64)
	e, err := NewEngine(ds, Options{Workers: 3, Mode: Hybrid, Model: nn.GCN, Seed: 9, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var prev float64 = math.Inf(1)
	for i := 0; i < 4; i++ {
		st := e.RunEpoch()
		_ = e.Evaluate(ds.ValMask)
		if st.Loss <= 0 {
			t.Fatal("bad loss")
		}
		prev = st.Loss
	}
	_ = prev
	if !e.ReplicasInSync() {
		t.Fatal("interleaved evaluate broke replica sync")
	}
}

// TestReferenceBackwardMatchesFiniteDifference is the engine-local anchor for
// the testkit harness (which builds on ReferenceBackward and so cannot be its
// own oracle): both a parameter gradient and the feature gradient are checked
// against central differences directly here.
func TestReferenceBackwardMatchesFiniteDifference(t *testing.T) {
	ds := testDataset(t, 30, 3, 65)
	model := nn.MustNewModel(nn.GCN, []int{ds.Spec.FeatureDim, 6, ds.Spec.NumClasses}, 0, 5)
	nn.ZeroGrads(model.Params())
	lossAt := func() float64 {
		logits := ReferenceForward(ds.Graph, model, ds.Features)
		logp := tensor.LogSoftmaxRows(logits)
		var sum float64
		n := 0
		for v := 0; v < logp.Rows(); v++ {
			if !ds.TrainMask[v] {
				continue
			}
			n++
			sum -= float64(logp.At(v, int(ds.Labels[v])))
		}
		return sum / float64(n)
	}
	loss, featGrad := ReferenceBackward(ds.Graph, model, ds.Features, ds.Labels, ds.TrainMask)
	if math.Abs(loss-lossAt()) > 1e-5*math.Max(1, math.Abs(loss)) {
		t.Fatalf("backward loss %v, forward loss %v", loss, lossAt())
	}
	if featGrad.Rows() != ds.NumVertices() || featGrad.Cols() != ds.Spec.FeatureDim {
		t.Fatalf("feature grad %dx%d", featGrad.Rows(), featGrad.Cols())
	}
	check := func(name string, x, analytic *tensor.Tensor) {
		const h = 1e-3
		data := x.Data()
		for _, i := range []int{0, x.Len() / 2, x.Len() - 1} {
			old := data[i]
			data[i] = old + h
			fp := lossAt()
			data[i] = old - h
			fm := lossAt()
			data[i] = old
			num := (fp - fm) / (2 * h)
			ana := float64(analytic.Data()[i])
			if diff := math.Abs(ana - num); diff > 1e-3*math.Max(0.05, math.Abs(ana)) {
				t.Errorf("%s[%d]: analytic %v, numeric %v", name, i, ana, num)
			}
		}
	}
	check("w0", model.Params()[0].Value, model.Params()[0].Grad)
	check("features", ds.Features, featGrad)
}

// TestReferenceBackwardLeavesTrainStepIntact pins the refactor: the loss
// ReferenceTrainStep reports must equal ReferenceBackward's, and both must
// produce identical parameter gradients.
func TestReferenceBackwardLeavesTrainStepIntact(t *testing.T) {
	ds := testDataset(t, 40, 3, 66)
	a := nn.MustNewModel(nn.GIN, []int{ds.Spec.FeatureDim, 6, ds.Spec.NumClasses}, 0, 6)
	b := nn.MustNewModel(nn.GIN, []int{ds.Spec.FeatureDim, 6, ds.Spec.NumClasses}, 0, 6)
	nn.ZeroGrads(a.Params())
	nn.ZeroGrads(b.Params())
	la := ReferenceTrainStep(ds.Graph, a, ds.Features, ds.Labels, ds.TrainMask)
	lb, _ := ReferenceBackward(ds.Graph, b, ds.Features, ds.Labels, ds.TrainMask)
	if la != lb {
		t.Fatalf("losses differ: %v vs %v", la, lb)
	}
	for i := range a.Params() {
		if !a.Params()[i].Grad.Equal(b.Params()[i].Grad) {
			t.Fatalf("param %d gradients differ", i)
		}
	}
}
