package engine

import (
	"math"
	"testing"

	"neutronstar/internal/nn"
	"neutronstar/internal/tensor"
)

func TestReferenceForwardShapes(t *testing.T) {
	ds := testDataset(t, 90, 4, 60)
	for _, kind := range []nn.ModelKind{nn.GCN, nn.GIN, nn.GAT, nn.SAGE} {
		model := nn.MustNewModel(kind, []int{ds.Spec.FeatureDim, 8, ds.Spec.NumClasses}, 0, 1)
		logits := ReferenceForward(ds.Graph, model, ds.Features)
		if logits.Rows() != ds.NumVertices() || logits.Cols() != ds.Spec.NumClasses {
			t.Fatalf("%s: logits %dx%d", kind, logits.Rows(), logits.Cols())
		}
		for _, v := range logits.Data() {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite logit", kind)
			}
		}
	}
}

func TestReferenceForwardDeterministic(t *testing.T) {
	ds := testDataset(t, 80, 4, 61)
	model := nn.MustNewModel(nn.GCN, []int{ds.Spec.FeatureDim, 8, ds.Spec.NumClasses}, 0, 2)
	a := ReferenceForward(ds.Graph, model, ds.Features)
	b := ReferenceForward(ds.Graph, model, ds.Features)
	if !a.Equal(b) {
		t.Fatal("inference not deterministic")
	}
}

func TestReferenceTrainStepReducesLoss(t *testing.T) {
	ds := testDataset(t, 120, 4, 62)
	model := nn.MustNewModel(nn.GCN, []int{ds.Spec.FeatureDim, 8, ds.Spec.NumClasses}, 0, 3)
	opt := nn.NewAdam(0.02)
	first := ReferenceTrainStep(ds.Graph, model, ds.Features, ds.Labels, ds.TrainMask)
	opt.Step(model.Params())
	nn.ZeroGrads(model.Params())
	var last float64
	for i := 0; i < 10; i++ {
		last = ReferenceTrainStep(ds.Graph, model, ds.Features, ds.Labels, ds.TrainMask)
		opt.Step(model.Params())
		nn.ZeroGrads(model.Params())
	}
	if last >= first {
		t.Fatalf("loss %v -> %v", first, last)
	}
}

func TestInferenceDoesNotMutateParams(t *testing.T) {
	ds := testDataset(t, 60, 3, 63)
	model := nn.MustNewModel(nn.GAT, []int{ds.Spec.FeatureDim, 8, ds.Spec.NumClasses}, 0, 4)
	before := make([]*tensor.Tensor, 0)
	for _, p := range model.Params() {
		before = append(before, p.Value.Clone())
	}
	ReferenceForward(ds.Graph, model, ds.Features)
	for i, p := range model.Params() {
		if !p.Value.Equal(before[i]) {
			t.Fatalf("param %d mutated by inference", i)
		}
		if tensor.Norm(p.Grad) != 0 {
			t.Fatalf("param %d accumulated gradient during inference", i)
		}
	}
}

func TestEngineTrainAfterEvaluateInterleaved(t *testing.T) {
	// Alternating Train and Evaluate must not corrupt message routing or
	// replica sync (Evaluate runs distributed forward passes with their own
	// tag space).
	ds := testDataset(t, 100, 4, 64)
	e, err := NewEngine(ds, Options{Workers: 3, Mode: Hybrid, Model: nn.GCN, Seed: 9, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var prev float64 = math.Inf(1)
	for i := 0; i < 4; i++ {
		st := e.RunEpoch()
		_ = e.Evaluate(ds.ValMask)
		if st.Loss <= 0 {
			t.Fatal("bad loss")
		}
		prev = st.Loss
	}
	_ = prev
	if !e.ReplicasInSync() {
		t.Fatal("interleaved evaluate broke replica sync")
	}
}
