package engine

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"neutronstar/internal/ckpt"
	"neutronstar/internal/nn"
)

// Fingerprint hashes everything a snapshot's worker-state layout depends on:
// the dataset identity and size, the cluster shape, the model architecture,
// the seed, and the exact vertex-to-worker assignment. Two engines with equal
// fingerprints hold structurally interchangeable state; Restore refuses
// anything else, because loading parameters onto a different partitioning
// would silently misalign every worker's owned block.
func (e *Engine) Fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	wInt := func(v int) {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	wStr := func(s string) {
		wInt(len(s))
		h.Write([]byte(s))
	}
	wStr(e.ds.Spec.Name)
	wInt(e.ds.NumVertices())
	wInt(e.ds.NumEdges())
	wInt(e.opts.Workers)
	wStr(string(e.opts.Mode))
	wStr(string(e.opts.Model))
	wStr(string(e.opts.Partitioner))
	wInt(len(e.dims))
	for _, d := range e.dims {
		wInt(d)
	}
	binary.LittleEndian.PutUint64(b[:], e.opts.Seed)
	h.Write(b[:])
	for _, owner := range e.part.Assign {
		binary.LittleEndian.PutUint32(b[:4], uint32(owner))
		h.Write(b[:4])
	}
	return h.Sum64()
}

// Snapshot captures the engine's full recoverable state: every worker's
// parameters, optimiser moments and RNG position, plus the epoch counter and
// loss history. Call it only between epochs (the engine is externally
// synchronous, so any caller respecting that is already at a barrier).
func (e *Engine) Snapshot() *ckpt.Snapshot {
	snap := &ckpt.Snapshot{Fingerprint: e.Fingerprint(), Epoch: e.epoch}
	for _, h := range e.history {
		snap.History = append(snap.History, ckpt.EpochRecord{
			Epoch:  h.Epoch,
			Loss:   h.Loss,
			Millis: float64(h.Duration.Microseconds()) / 1000,
		})
	}
	for _, ws := range e.states {
		params := ws.model.Params()
		opt := nn.CaptureOptState(ws.opt, params)
		w := ckpt.WorkerState{
			RNGState: ws.rng.State(),
			OptAlgo:  opt.Algo,
			OptStep:  opt.Step,
		}
		for i, p := range params {
			ps := ckpt.ParamState{
				Name: p.Name,
				Rows: p.Value.Rows(), Cols: p.Value.Cols(),
				Value: append([]float32(nil), p.Value.Data()...),
			}
			if opt.M != nil && opt.M[i] != nil {
				ps.M, ps.V = opt.M[i], opt.V[i] // CaptureOptState already copied
			}
			w.Params = append(w.Params, ps)
		}
		snap.Workers = append(snap.Workers, w)
	}
	return snap
}

// Restore loads a snapshot taken by an engine with the same fingerprint. All
// checks run before any mutation, so a rejected snapshot leaves the engine
// untouched.
func (e *Engine) Restore(snap *ckpt.Snapshot) error {
	if fp := e.Fingerprint(); snap.Fingerprint != fp {
		return fmt.Errorf("engine: snapshot fingerprint %#x does not match this configuration (%#x); dataset, partitioning, model or seed changed", snap.Fingerprint, fp)
	}
	if len(snap.Workers) != len(e.states) {
		return fmt.Errorf("engine: snapshot has %d workers, engine has %d", len(snap.Workers), len(e.states))
	}
	for wi, ws := range e.states {
		params := ws.model.Params()
		sw := &snap.Workers[wi]
		if len(sw.Params) != len(params) {
			return fmt.Errorf("engine: worker %d snapshot has %d params, model has %d", wi, len(sw.Params), len(params))
		}
		for i, p := range params {
			sp := &sw.Params[i]
			if sp.Rows != p.Value.Rows() || sp.Cols != p.Value.Cols() {
				return fmt.Errorf("engine: worker %d param %s is %dx%d in the snapshot, %dx%d in the model",
					wi, p.Name, sp.Rows, sp.Cols, p.Value.Rows(), p.Value.Cols())
			}
		}
	}
	for wi, ws := range e.states {
		sw := &snap.Workers[wi]
		params := ws.model.Params()
		opt := nn.OptState{Algo: sw.OptAlgo, Step: sw.OptStep,
			M: make([][]float32, len(params)), V: make([][]float32, len(params))}
		for i := range params {
			opt.M[i], opt.V[i] = sw.Params[i].M, sw.Params[i].V
		}
		if sw.OptAlgo == "sgd" {
			opt.M, opt.V = nil, nil
		}
		if err := nn.RestoreOptState(ws.opt, params, opt); err != nil {
			return fmt.Errorf("engine: worker %d: %w", wi, err)
		}
		for i, p := range params {
			copy(p.Value.Data(), sw.Params[i].Value)
		}
		ws.rng.SetState(sw.RNGState)
	}
	e.paramVersion.Add(1)
	e.epoch = snap.Epoch
	e.history = e.history[:0]
	for _, h := range snap.History {
		e.history = append(e.history, EpochStats{
			Epoch: h.Epoch, Loss: h.Loss,
			Duration: time.Duration(h.Millis * float64(time.Millisecond)),
		})
	}
	return nil
}

// History returns a copy of the per-epoch stats of every completed epoch
// (including epochs restored from a snapshot).
func (e *Engine) History() []EpochStats {
	return append([]EpochStats(nil), e.history...)
}
