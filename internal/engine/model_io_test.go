package engine

import (
	"bytes"
	"testing"

	"neutronstar/internal/nn"
)

// TestSaveLoadModelRoundTripAllKinds trains one epoch per architecture,
// round-trips the parameters through SaveModel/LoadModel into a second engine
// built with a different seed, worker count and mode, and asserts the two
// engines' full-graph forward outputs are bit-identical — the contract the
// serving handoff (nstrain -save-model → nsserve -model) depends on.
func TestSaveLoadModelRoundTripAllKinds(t *testing.T) {
	ds := testDataset(t, 120, 5, 64)
	for _, kind := range nn.ModelKinds() {
		t.Run(string(kind), func(t *testing.T) {
			e1, err := NewEngine(ds, Options{Workers: 2, Mode: Hybrid, Model: kind, Seed: 9, LR: 0.05})
			if err != nil {
				t.Fatal(err)
			}
			defer e1.Close()
			e1.RunEpoch() // move parameters off their init values

			var buf bytes.Buffer
			if err := e1.SaveModel(&buf); err != nil {
				t.Fatal(err)
			}

			e2, err := NewEngine(ds, Options{Workers: 3, Mode: DepComm, Model: kind, Seed: 123, LR: 0.05})
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			v0 := e2.ParamVersion()
			if err := e2.LoadModel(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			if e2.ParamVersion() == v0 {
				t.Fatal("LoadModel did not advance the parameter version")
			}

			ref1 := ReferenceForward(ds.Graph, e1.CloneModel(), ds.Features)
			ref2 := ReferenceForward(ds.Graph, e2.CloneModel(), ds.Features)
			if !ref1.Equal(ref2) {
				t.Fatalf("%s: forward outputs differ after save/load round-trip", kind)
			}

			// A checkpoint from a different architecture must be rejected
			// without partial mutation.
			for _, other := range nn.ModelKinds() {
				if other == kind {
					continue
				}
				e3, err := NewEngine(ds, Options{Workers: 2, Mode: Hybrid, Model: other, Seed: 4, LR: 0.05})
				if err != nil {
					t.Fatal(err)
				}
				if err := e3.LoadModel(bytes.NewReader(buf.Bytes())); err == nil {
					t.Fatalf("%s checkpoint loaded into %s engine", kind, other)
				}
				e3.Close()
				break
			}
		})
	}
}
