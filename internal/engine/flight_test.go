package engine

import (
	"math"
	"testing"

	"neutronstar/internal/obs"
)

// trainRecorded trains a small engine under a flight recorder and returns
// the completed records.
func trainRecorded(t *testing.T, opts Options, epochs int) []obs.EpochRecord {
	t.Helper()
	ds := testDataset(t, 600, 6, 21)
	rec := obs.NewFlightRecorder()
	opts.Recorder = rec
	eng, err := NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.Train(epochs)
	recs := rec.Snapshot()
	if len(recs) != epochs {
		t.Fatalf("recorded %d epochs, want %d", len(recs), epochs)
	}
	return recs
}

// TestFlightCoverageHybrid asserts the accounting identity on a real run:
// per epoch, the attributed stage seconds (excluding checkpoint) must sum to
// workers × wall within 2% — the flight recorder has no untracked bucket.
func TestFlightCoverageHybrid(t *testing.T) {
	recs := trainRecorded(t, Options{
		Workers: 4, Mode: Hybrid, Ring: true, LockFree: true, Overlap: true, Seed: 5,
	}, 3)
	for _, r := range recs {
		var covered float64
		for _, s := range obs.StageNames() {
			if s == "checkpoint" {
				continue
			}
			covered += r.StageSeconds(s)
		}
		span := float64(r.Workers) * r.WallSeconds
		// 2% relative plus a 2ms absolute floor: tiny epochs on a loaded CI
		// host have scheduling noise bigger than their stage times.
		tol := 0.02*span + 0.002
		if diff := math.Abs(covered - span); diff > tol {
			t.Fatalf("epoch %d: stage sum %.6fs vs %d×wall %.6fs (diff %.6fs > tol %.6fs)",
				r.Epoch, covered, r.Workers, r.WallSeconds, diff, tol)
		}
	}
}

// TestFlightBytesDepComm: a DepComm plan must move dependency traffic every
// epoch, with send-side and receive-side attribution in exact balance on a
// clean fabric.
func TestFlightBytesDepComm(t *testing.T) {
	recs := trainRecorded(t, Options{Workers: 4, Mode: DepComm, Seed: 5}, 2)
	for _, r := range recs {
		send := r.StageBytes("dep_fetch_send")
		recv := r.StageBytes("dep_fetch_recv")
		if send == 0 {
			t.Fatalf("epoch %d: DepComm moved no dependency bytes", r.Epoch)
		}
		if send != recv {
			t.Fatalf("epoch %d: send %d bytes != recv %d bytes", r.Epoch, send, recv)
		}
		if r.StageBytes("mirror_scatter") == 0 {
			t.Fatalf("epoch %d: no mirror-gradient traffic", r.Epoch)
		}
		if r.StageBytes("grad_sync") == 0 {
			t.Fatalf("epoch %d: no all-reduce traffic", r.Epoch)
		}
	}
}

// TestFlightBytesDepCacheSingle: one worker caching everything has no peers,
// so the recorder must attribute exactly zero network traffic.
func TestFlightBytesDepCacheSingle(t *testing.T) {
	recs := trainRecorded(t, Options{Workers: 1, Mode: DepCache, Seed: 5}, 2)
	for _, r := range recs {
		if b := r.TotalBytes(); b != 0 {
			t.Fatalf("epoch %d: single-worker DepCache attributed %d bytes", r.Epoch, b)
		}
		if r.StageSeconds("forward") == 0 {
			t.Fatalf("epoch %d: no forward time recorded", r.Epoch)
		}
	}
}

// TestFlightRecorderOffIsNilSafe: a nil Recorder must leave the engine
// untouched (the disabled path of every hook is a nil-receiver no-op).
func TestFlightRecorderOffIsNilSafe(t *testing.T) {
	ds := testDataset(t, 300, 5, 9)
	eng, err := NewEngine(ds, Options{Workers: 2, Mode: Hybrid, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	st := eng.Train(2)
	if st[1].Loss <= 0 {
		t.Fatalf("loss %v", st[1].Loss)
	}
	if rep := eng.CostReport(); rep != nil {
		t.Fatalf("CostReport without recorder = %+v, want nil", rep)
	}
}
