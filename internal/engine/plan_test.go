package engine

import (
	"testing"

	"neutronstar/internal/nn"
	"neutronstar/internal/partition"
)

// Chunk-group invariants: groups partition the owned block's edges exactly,
// local-group indices stay within prev rows, and peer-group indices stay
// within that peer's chunk.
func TestChunkGroupsPartitionOwnedEdges(t *testing.T) {
	ds := testDataset(t, 240, 7, 46)
	for _, mode := range []Mode{DepComm, Hybrid} {
		e, err := NewEngine(ds, Options{Workers: 4, Mode: mode, Model: nn.GCN, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range e.plans {
			for l := range p.layers {
				lp := &p.layers[l]
				total := 0
				for _, g := range lp.ownedGroups {
					total += len(g.srcLocal)
					if len(g.srcLocal) != len(g.dstRow) || len(g.srcLocal) != len(g.edgeNorm) {
						t.Fatalf("%s: ragged chunk group", mode)
					}
					for k, sr := range g.srcLocal {
						if g.peer < 0 {
							if int(sr) >= lp.numPrevRows {
								t.Fatalf("%s: local group row %d >= %d", mode, sr, lp.numPrevRows)
							}
						} else if int(sr) >= len(lp.recv[g.peer]) {
							t.Fatalf("%s: peer %d group row %d >= chunk %d",
								mode, g.peer, sr, len(lp.recv[g.peer]))
						}
						if int(g.dstRow[k]) >= lp.owned.numDst() {
							t.Fatalf("%s: dst row out of block", mode)
						}
					}
				}
				if total != len(lp.owned.srcRow) {
					t.Fatalf("%s worker %d layer %d: groups cover %d of %d edges",
						mode, p.id, l+1, total, len(lp.owned.srcRow))
				}
				// Edge norms must carry over unchanged (sum preserved).
				var a, b float64
				for _, v := range lp.owned.edgeNorm {
					a += float64(v)
				}
				for _, g := range lp.ownedGroups {
					for _, v := range g.edgeNorm {
						b += float64(v)
					}
				}
				if diff := a - b; diff > 1e-3 || diff < -1e-3 {
					t.Fatalf("%s: edge norm mass changed: %v vs %v", mode, a, b)
				}
			}
		}
		e.Close()
	}
}

// Every peer with a non-empty recv list must have (at most) one chunk group,
// and peers without recv entries must have none.
func TestChunkGroupsMatchRecvLists(t *testing.T) {
	ds := testDataset(t, 200, 6, 47)
	e, err := NewEngine(ds, Options{Workers: 3, Mode: DepComm, Model: nn.GCN, Seed: 5,
		Partitioner: partition.Fennel})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, p := range e.plans {
		for l := range p.layers {
			lp := &p.layers[l]
			seen := map[int]bool{}
			for _, g := range lp.ownedGroups {
				if seen[g.peer] {
					t.Fatalf("duplicate group for peer %d", g.peer)
				}
				seen[g.peer] = true
				if g.peer >= 0 && len(lp.recv[g.peer]) == 0 {
					t.Fatalf("group for peer %d with empty recv list", g.peer)
				}
			}
			if !seen[-1] {
				t.Fatal("local group missing")
			}
		}
	}
}

// DepCache plans have exactly one (local) chunk group per layer: nothing is
// ever received.
func TestChunkGroupsDepCacheLocalOnly(t *testing.T) {
	ds := testDataset(t, 150, 5, 48)
	e, err := NewEngine(ds, Options{Workers: 3, Mode: DepCache, Model: nn.GCN, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for _, p := range e.plans {
		for l := range p.layers {
			groups := p.layers[l].ownedGroups
			if len(groups) != 1 || groups[0].peer != -1 {
				t.Fatalf("DepCache worker %d layer %d has %d groups", p.id, l+1, len(groups))
			}
		}
	}
}
