package engine

import (
	"testing"
	"time"

	"neutronstar/internal/comm"
	"neutronstar/internal/metrics"
	"neutronstar/internal/obs"
)

// trainCausal trains a small engine with causal recording enabled and
// returns the epoch records and the collector used.
func trainCausal(t *testing.T, opts Options, epochs int) ([]obs.EpochRecord, *metrics.Collector) {
	t.Helper()
	ds := testDataset(t, 600, 6, 21)
	rec := obs.NewFlightRecorder()
	rec.EnableCausal()
	opts.Recorder = rec
	if opts.Collector == nil {
		opts.Collector = metrics.NewCollector()
	}
	eng, err := NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.Train(epochs)
	recs := rec.Snapshot()
	if len(recs) != epochs {
		t.Fatalf("recorded %d epochs, want %d", len(recs), epochs)
	}
	return recs, opts.Collector
}

// TestCausalCritPathCoversWall is the acceptance gate for the critical-path
// extractor on a real run: every epoch must carry a path whose span durations
// sum to the epoch wall time within 5%, with chronologically contiguous spans
// and a sane straggler index.
func TestCausalCritPathCoversWall(t *testing.T) {
	recs, _ := trainCausal(t, Options{
		Workers: 4, Mode: Hybrid, Ring: true, LockFree: true, Seed: 5,
	}, 3)
	for _, r := range recs {
		p := r.CritPath
		if p == nil || len(p.Spans) == 0 {
			t.Fatalf("epoch %d: no critical path recorded", r.Epoch)
		}
		if p.WallSeconds <= 0 {
			t.Fatalf("epoch %d: wall %v", r.Epoch, p.WallSeconds)
		}
		if ratio := p.CoveredSeconds / p.WallSeconds; ratio < 0.95 || ratio > 1.05 {
			t.Fatalf("epoch %d: path covers %.4f of the wall (%v of %v), want within 5%%",
				r.Epoch, ratio, p.CoveredSeconds, p.WallSeconds)
		}
		prev := 0.0
		for i, s := range p.Spans {
			if s.StartSeconds != prev {
				t.Fatalf("epoch %d span %d: starts at %v, previous ended at %v — path not contiguous",
					r.Epoch, i, s.StartSeconds, prev)
			}
			if s.EndSeconds < s.StartSeconds {
				t.Fatalf("epoch %d span %d inverted: %+v", r.Epoch, i, s)
			}
			prev = s.EndSeconds
		}
		if r.StragglerIndex < 1 {
			t.Fatalf("epoch %d: straggler index %v < 1 (max/mean cannot be)", r.Epoch, r.StragglerIndex)
		}
		if r.SlowestWorker < 0 || r.SlowestWorker >= r.Workers {
			t.Fatalf("epoch %d: slowest worker %d out of range", r.Epoch, r.SlowestWorker)
		}
	}
}

// TestCausalRunExportsFlowEvents: with a collector attached, every epoch's
// traced cross-worker wait-matches must surface as Chrome flow events.
func TestCausalRunExportsFlowEvents(t *testing.T) {
	_, col := trainCausal(t, Options{Workers: 3, Mode: DepComm, Seed: 7}, 2)
	flows := col.Tracer().Flows()
	if len(flows) == 0 {
		t.Fatal("causal multi-worker run exported no flow events")
	}
	for _, f := range flows {
		if f.ID == 0 {
			t.Fatalf("flow with zero span id: %+v", f)
		}
		if f.FromWorker == f.ToWorker {
			t.Fatalf("self-send surfaced as a flow: %+v", f)
		}
		if f.End < f.At {
			t.Fatalf("flow ends before it starts: %+v", f)
		}
	}
}

// TestCritPathShiftsUnderMessageDelay injects a large fixed delay on rep
// messages and checks the critical path notices: rep traffic must become the
// single largest label on the path — this is the synthetic slow-network
// attribution test. Dominance, not an absolute share, is the assertion: under
// the race detector scheduler latency puts real milliseconds on undelayed
// kinds too, and a clean run's shape is host-load-dependent, so both a fixed
// share bound and a clean-vs-delayed comparison flake.
func TestCritPathShiftsUnderMessageDelay(t *testing.T) {
	spec, err := comm.ParseFaultSpec("rep.delay=10ms,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := trainCausal(t, Options{Workers: 4, Mode: DepComm, Seed: 5, Fault: spec}, 2)
	agg := make(map[string]float64)
	var total float64
	for _, r := range recs {
		for label, sec := range r.CritPath.Breakdown() {
			agg[label] += sec
			total += sec
		}
	}
	top, best := "", 0.0
	for label, sec := range agg {
		if sec > best {
			top, best = label, sec
		}
	}
	if top != "net:rep" {
		t.Fatalf("rep delay did not dominate the path: top label %s at %.2f (all: %v)",
			top, best/total, agg)
	}
	if best/total < 0.25 {
		t.Fatalf("net:rep leads but holds only %.2f of the path: %v", best/total, agg)
	}
}

// TestCausalSameSeedSameStructure: two same-seed runs must agree on the
// critical path's structure — the kind of chain that bounds the epoch.
// Exact span counts and per-epoch dominant labels are NOT asserted: which
// individual wait blocks is wall-clock scheduling, and only the extractor
// itself is bit-deterministic (pinned by TestCritPathDeterministic on
// replayed DAGs). What the seeded protocol does determine is the aggregate
// shape: under a forced rep delay both runs bind substantially on rep
// traffic and are network-bound overall.
func TestCausalSameSeedSameStructure(t *testing.T) {
	// A heavy per-message delay makes every cross-worker rep wait genuinely
	// block, far above scheduling noise (and above race-detector compute
	// inflation), so the dependency kind is forced.
	spec, err := comm.ParseFaultSpec("rep.delay=8ms,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	structure := func() (top string, agg map[string]float64) {
		recs, _ := trainCausal(t, Options{Workers: 3, Mode: DepComm, Seed: 11, Fault: spec}, 2)
		agg = make(map[string]float64)
		for _, r := range recs {
			for label, sec := range r.CritPath.Breakdown() {
				agg[label] += sec
			}
		}
		best := 0.0
		for label, sec := range agg {
			if sec > best {
				top, best = label, sec
			}
		}
		return top, agg
	}
	aTop, aAgg := structure()
	bTop, bAgg := structure()
	// Which individual wait binds varies with host load (a congested
	// all-reduce can outweigh one rep delay), so per-epoch labels and exact
	// shares are not comparable; the aggregate shape is: both runs must be
	// bound by the same dependency kind — the delayed rep traffic.
	if aTop != "net:rep" || bTop != "net:rep" {
		t.Fatalf("same-seed runs not both rep-bound: %s vs %s (%v vs %v)", aTop, bTop, aAgg, bAgg)
	}
}

// TestWatchdogFiresOnInjectedStall wires a Watchdog to a real recorded run
// and then starves it: the stall rule must fire through the Health path the
// /healthwatch endpoint serves.
func TestWatchdogFiresOnInjectedStall(t *testing.T) {
	recs, _ := trainCausal(t, Options{Workers: 2, Mode: Hybrid, Seed: 3}, 2)
	w := obs.NewWatchdog(obs.WatchRules{Stall: 50 * time.Millisecond}, nil, nil)
	for _, r := range recs {
		w.ObserveEpoch(r)
	}
	if rep := w.Health(); !rep.Healthy {
		t.Fatalf("healthy run reported unhealthy: %+v", rep)
	}
	time.Sleep(80 * time.Millisecond)
	rep := w.Health()
	if rep.Healthy || len(rep.Alerts) != 1 || rep.Alerts[0].Rule != obs.RuleStall {
		t.Fatalf("starved watchdog did not fire stall: %+v", rep)
	}
}
