package engine

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"neutronstar/internal/ckpt"
	"neutronstar/internal/comm"
	"neutronstar/internal/costmodel"
	"neutronstar/internal/dataset"
	"neutronstar/internal/graph"
	"neutronstar/internal/hybrid"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
	"neutronstar/internal/obs"
	"neutronstar/internal/partition"
	"neutronstar/internal/tensor"
)

// Mode selects the dependency-management strategy.
type Mode string

const (
	// DepCache replicates every remote dependency's subtree (Algorithm 2).
	DepCache Mode = "depcache"
	// DepComm communicates every remote dependency per layer (Algorithm 3).
	DepComm Mode = "depcomm"
	// Hybrid splits dependencies by the Algorithm 4 cost model.
	Hybrid Mode = "hybrid"
	// DepTP runs every layer tensor-parallel: full graph structure on every
	// worker, features/aggregations/gradients sharded along the feature
	// dimension, dependency traffic replaced by slice-exchange collectives.
	DepTP Mode = "deptp"
	// Hybrid3 widens the planner to a per-layer 3-way choice: the Algorithm 4
	// cache/comm split competes against tensor-parallel suffixes on modeled
	// cost.
	Hybrid3 Mode = "hybrid3"
	// DepRep replicates every layer's remote dependencies as local vertex
	// copies (CoFree-GNN's vertex cut): after a one-time replica feature
	// broadcast, each worker computes all layers entirely locally and the
	// replica gradients reconcile through the parameter all-reduce at the
	// epoch barrier — zero per-layer dependency traffic. Replica features may
	// be stored (re)quantized (Options.RepQuant).
	DepRep Mode = "deprep"
	// Hybrid4 widens the planner once more: replicated layer suffixes compete
	// against the hybrid3 family on modeled cost, gated by Options.RepBudget.
	Hybrid4 Mode = "hybrid4"
)

// ModeNames lists every engine mode string, in declaration order — the
// single source of truth for CLI flag validation and the doclint
// flag-to-doc cross-check.
func ModeNames() []string {
	return []string{
		string(DepCache), string(DepComm), string(Hybrid),
		string(DepTP), string(Hybrid3), string(DepRep), string(Hybrid4),
	}
}

// Options configures an Engine.
type Options struct {
	// Workers is the simulated cluster size m.
	Workers int
	// Mode selects DepCache, DepComm or Hybrid.
	Mode Mode
	// Model selects the GNN architecture; Hidden overrides the dataset's
	// default hidden dimension when > 0; Layers sets the propagation depth L
	// (default 2, as in all of the paper's experiments — the machinery
	// supports arbitrary depth, with dependency subtrees growing accordingly).
	Model  nn.ModelKind
	Hidden int
	Layers int
	// Partitioner selects the graph partitioning algorithm (default Chunk).
	Partitioner partition.Algorithm
	// Profile is the simulated network; default ProfileLocal (unthrottled).
	Profile comm.NetworkProfile
	// TCP moves all worker communication over real loopback TCP sockets
	// (with the profile's pacing applied at egress) instead of in-process
	// channels — same protocol, real serialisation.
	TCP bool
	// Ring enables ring-based communication scheduling (the paper's "R").
	Ring bool
	// LockFree enables lock-free parallel message enqueuing ("L").
	LockFree bool
	// Overlap enables communication/computation overlapping ("P").
	Overlap bool
	// ParamServer replaces the ring all-reduce with a parameter-server
	// update: workers push gradients to worker 0, which applies the
	// optimiser once and broadcasts fresh parameters (the alternative the
	// paper notes the All-Reduce model can be swapped for, §4.1).
	ParamServer bool
	// Broadcast switches to ROC-style whole-block communication: a worker
	// sends its entire owned representation block to every peer that needs
	// any of it, and receivers pick out the rows they need. This reproduces
	// the communication inefficiency the paper measured in ROC (§5.3); the
	// default (false) is NeutronStar's source-specific chunking.
	Broadcast bool
	// LR is the optimiser learning rate (default 0.01, Adam). Scheduler,
	// when set, overrides LR per epoch (replicas evaluate it identically).
	LR        float32
	Scheduler nn.Scheduler
	// ClipNorm, when > 0, clips the global gradient L2 norm after the
	// all-reduce, before the optimiser step.
	ClipNorm float64
	// Dropout applies during training (default 0).
	Dropout float32
	// Seed fixes model init and dropout streams.
	Seed uint64
	// MemBudget caps per-worker replica bytes for Hybrid (0 = unlimited).
	MemBudget int64
	// RepBudget caps per-worker (compressed) replica bytes for Hybrid4's
	// replicated candidates: > 0 is a cap, < 0 unlimited. 0 (unset) defaults
	// to unlimited — use Hybrid3 to exclude replication outright; the
	// planner-level 0-disables semantics is reachable through
	// hybrid.Planner.RepBudget directly.
	RepBudget int64
	// RepQuant selects the replica feature storage format for DepRep/Hybrid4
	// plans with replicated layers: off (default, exact), fp16, or int8
	// (partition.RepQuant). Owners keep full precision; only replica rows
	// round-trip through the format, bounding the deviation from the exact
	// run by partition.RequantizeErrorBound.
	RepQuant partition.RepQuant
	// Costs overrides probed environment factors when non-zero; the Fig 11
	// sweep uses this together with ForceRatio.
	Costs costmodel.Costs
	// ForceRatio, when enabled, bypasses the cost-based greedy and caches a
	// fixed fraction (CacheRatio ∈ [0,1]) of dependencies per layer — the
	// manual sweep of Figure 11.
	ForceRatio bool
	CacheRatio float64
	// Collector receives utilisation metrics (may be nil).
	Collector *metrics.Collector
	// Fault, when non-nil, wraps the fabric in seeded fault injection
	// (drops, delays, duplicates per comm.FaultSpec) with retransmission.
	Fault *comm.FaultSpec
	// Ckpt, when non-nil, saves a snapshot at every due epoch barrier. A
	// failed save is reported on the epoch's EpochStats, never fatal.
	Ckpt *ckpt.Saver
	// Recorder, when non-nil, receives per-stage time/byte attribution for
	// every epoch (see obs.FlightRecorder). Nil disables all recording paths
	// at zero cost.
	Recorder *obs.FlightRecorder
	// History, when non-nil, takes a whole-registry metric snapshot at every
	// epoch barrier — the natural sampling point of a training run, where the
	// per-epoch gauges have just advanced. Periodic sampling between barriers
	// is the history's own Start; this hook only adds the barrier alignment.
	History *obs.History
	// Pool, when non-nil, recycles training-time tensor storage (tape
	// intermediates, gradients, message payloads) through per-worker arenas
	// released at each epoch barrier. Nil reproduces the allocate-per-call
	// behaviour bit-for-bit. Ignored when Fault is set: fault-injected
	// retransmission goroutines can hold message payloads past the barrier,
	// which would break the arena's quiescence requirement.
	Pool *tensor.Pool
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Mode == "" {
		o.Mode = Hybrid
	}
	if o.Model == "" {
		o.Model = nn.GCN
	}
	if o.Partitioner == "" {
		o.Partitioner = partition.Chunk
	}
	if o.LR == 0 {
		o.LR = 0.01
	}
	if o.RepBudget == 0 {
		o.RepBudget = -1
	}
	return o
}

// EpochStats reports one epoch's outcome.
type EpochStats struct {
	Epoch int
	// Loss is the mean training loss over all labeled vertices.
	Loss float64
	// Duration is the wall-clock epoch time (forward+backward+update).
	Duration time.Duration
	// CkptErr reports a failed checkpoint save at this epoch's barrier.
	// Training continues regardless: a full disk should not kill a run that
	// can still make progress.
	CkptErr error
}

// Engine trains one model on one dataset over a simulated cluster.
type Engine struct {
	opts   Options
	ds     *dataset.Dataset
	part   *partition.Partition
	decs   []*hybrid.Decision
	plans  []*workerPlan
	fabric comm.Network
	states []*workerState
	dims   []int
	// costs are the probed (or forced) environment factors the planner used;
	// the cost-model validator compares them against measured ones.
	costs costmodel.Costs
	// repQuant is the validated replica feature storage format (off when the
	// plan has no replicated layers or quantization is disabled).
	repQuant partition.RepQuant
	// replicas is the vertex-cut replication pass's output for DepRep engines
	// (nil otherwise); NewEngine cross-checks it against the execution plans.
	replicas *partition.ReplicaPlan
	// tpFeatAll is the full-width feature matrix in owner-block row order,
	// shared by all workers when layer 1 runs the assemble TP dataflow.
	tpFeatAll *tensor.Tensor
	epoch     int
	// history accumulates every completed epoch's stats; it rides along in
	// snapshots so a resumed run reports a continuous loss curve.
	history []EpochStats
	// predicts counts inference passes for message-tag uniqueness.
	predicts int
	// paramVersion counts parameter mutations (optimiser steps, LoadModel,
	// Restore). Serving caches key their freshness off it: any bump means
	// previously computed embeddings may be stale.
	paramVersion atomic.Uint64

	// PreprocessTime is the hybrid dependency-partitioning time (Table 3's
	// "Preprocessing" row).
	PreprocessTime time.Duration
}

// NewEngine builds the cluster: partitions the graph, runs the dependency
// planner for the chosen mode, derives execution plans, and replicates the
// model onto every worker.
func NewEngine(ds *dataset.Dataset, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	hiddenDim := ds.Spec.HiddenDim
	if opts.Hidden > 0 {
		hiddenDim = opts.Hidden
	}
	layers := opts.Layers
	if layers <= 0 {
		layers = 2
	}
	dims := make([]int, 0, layers+1)
	dims = append(dims, ds.Spec.FeatureDim)
	for l := 1; l < layers; l++ {
		dims = append(dims, hiddenDim)
	}
	dims = append(dims, ds.Spec.NumClasses)

	part, err := partition.New(opts.Partitioner, ds.Graph, opts.Workers)
	if err != nil {
		return nil, err
	}

	costs := opts.Costs
	if costs == (costmodel.Costs{}) {
		costs = probeCached(opts.Profile)
	}
	repQuant, err := partition.ParseRepQuant(string(opts.RepQuant))
	if err != nil {
		return nil, err
	}
	sliceTP := nn.SliceSeparable(opts.Model)
	planner := &hybrid.Planner{
		Graph: ds.Graph, Part: part, Dims: dims,
		Costs: costs, MemBudget: opts.MemBudget, Ratio: opts.CacheRatio,
		RepBudget: opts.RepBudget, RepCompression: partition.CompressionFactor(repQuant),
		SliceTP: sliceTP,
	}
	var mode hybrid.Mode
	switch opts.Mode {
	case DepCache:
		mode = hybrid.ModeAllCache
	case DepComm:
		mode = hybrid.ModeAllComm
	case DepTP:
		mode = hybrid.ModeAllTP
	case Hybrid3:
		mode = hybrid.ModeHybrid3
	case DepRep:
		mode = hybrid.ModeAllRep
	case Hybrid4:
		mode = hybrid.ModeHybrid4
	case Hybrid:
		if opts.ForceRatio {
			mode = hybrid.ModeRatio
		} else {
			mode = hybrid.ModeHybrid
		}
	default:
		return nil, fmt.Errorf("engine: unknown mode %q", opts.Mode)
	}
	start := time.Now()
	decs, err := planner.DecideAll(mode)
	if err != nil {
		return nil, err
	}
	preprocess := time.Since(start)

	plans, err := buildPlans(ds.Graph, part, decs, dims, sliceTP)
	if err != nil {
		return nil, err
	}

	// The replication pass in internal/partition is the authoritative
	// statement of what a communication-free execution must hold locally;
	// under DepRep the plan expansion must materialize exactly those sets, so
	// a disagreement means one of the two closures is wrong — fail loudly
	// rather than train against a silently incomplete replica store.
	var replicas *partition.ReplicaPlan
	if opts.Mode == DepRep {
		replicas = partition.BuildReplicas(ds.Graph, part, len(dims)-1)
		for i, p := range plans {
			for k := range p.cachedCompute {
				if !equalVerts(p.cachedCompute[k], replicas.Sets[i][k]) {
					return nil, fmt.Errorf("engine: worker %d level %d: replication pass (%d replicas) and execution plan (%d) disagree",
						i, k, len(replicas.Sets[i][k]), len(p.cachedCompute[k]))
				}
			}
		}
	}

	var fabric comm.Network
	if opts.TCP {
		fabric, err = comm.NewTCPFabric(opts.Workers, opts.Profile, opts.Collector)
		if err != nil {
			return nil, err
		}
	} else {
		fabric = comm.NewFabric(opts.Workers, opts.Profile, opts.Collector)
	}
	if opts.Fault != nil {
		fabric = comm.NewFaultyFabric(fabric, opts.Fault)
	}
	if opts.Recorder != nil {
		// Outermost wrapper: send-side attribution must see each logical
		// Send once, before fault injection multiplies transmissions.
		fabric = newRecordingNet(fabric, opts.Recorder)
	}
	e := &Engine{
		opts: opts, ds: ds, part: part, decs: decs, plans: plans, dims: dims,
		fabric:         fabric,
		costs:          costs,
		repQuant:       repQuant,
		replicas:       replicas,
		PreprocessTime: preprocess,
	}
	// Assemble-dataflow TP at layer 1 reads the full-width feature matrix in
	// owner-block order; it is static, so one engine-wide copy serves all
	// workers.
	if sh := tpSharedOf(plans); sh != nil && !sh.slice && plans[0].tpLayers[0] != nil {
		e.tpFeatAll = tensor.New(ds.NumVertices(), dims[0])
		for v := 0; v < ds.NumVertices(); v++ {
			copy(e.tpFeatAll.Row(int(sh.globalRow[v])), ds.Features.Row(v))
		}
	}
	cached, comms := 0, 0
	for _, d := range decs {
		cached += d.NumCached()
		comms += d.NumComm()
	}
	if cached+comms > 0 {
		obsCacheRatio.Set(float64(cached) / float64(cached+comms))
	} else {
		obsCacheRatio.Set(0)
	}
	e.states = make([]*workerState, opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		model, err := nn.NewModel(opts.Model, dims, opts.Dropout, opts.Seed+7)
		if err != nil {
			e.fabric.Close()
			return nil, err
		}
		e.states[i] = newWorkerState(i, e, model)
	}
	return e, nil
}

// probeCache memoises environment probes per network profile: the factors
// describe the host and fabric, not the workload, so one measurement per
// process is both faster and — more importantly — stable, keeping Algorithm
// 4's decisions deterministic across engines built in the same run.
var probeCache sync.Map // NetworkProfile -> costmodel.Costs

func probeCached(p comm.NetworkProfile) costmodel.Costs {
	if v, ok := probeCache.Load(p); ok {
		return v.(costmodel.Costs)
	}
	c := costmodel.Probe(p.BytesPerSec, p.Latency)
	probeCache.Store(p, c)
	return c
}

// Mode returns the engine's dependency-management mode.
func (e *Engine) Mode() Mode { return e.opts.Mode }

// NumWorkers returns the cluster size.
func (e *Engine) NumWorkers() int { return e.opts.Workers }

// Decisions exposes the per-worker dependency decisions (for reporting).
func (e *Engine) Decisions() []*hybrid.Decision { return e.decs }

// CacheBytes returns the total replica storage across workers.
func (e *Engine) CacheBytes() int64 {
	var b int64
	for _, p := range e.plans {
		b += p.cacheBytes
	}
	return b
}

// ReplicationFactor returns the vertex replication factor of a DepRep engine
// ((|V| + feature replicas)/|V|, from the partition-level replication pass)
// or 1 for every other mode.
func (e *Engine) ReplicationFactor() float64 {
	if e.replicas == nil {
		return 1
	}
	return e.replicas.Factor()
}

// equalVerts reports whether two ascending vertex lists are identical.
func equalVerts(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Close releases the fabric. The engine must not be used afterwards.
func (e *Engine) Close() { e.fabric.Close() }

// RunEpoch executes one synchronous training epoch across all workers and
// returns aggregate statistics.
func (e *Engine) RunEpoch() EpochStats {
	rec := e.opts.Recorder
	rec.BeginEpoch(e.epoch+1, e.opts.Workers, len(e.dims)-1)
	start := time.Now()
	type result struct {
		lossSum float64
		count   int
		busy    time.Duration
	}
	results := make([]result, len(e.states))
	var wg sync.WaitGroup
	for i, ws := range e.states {
		wg.Add(1)
		go func(i int, ws *workerState) {
			defer wg.Done()
			t0 := time.Now()
			sum, n := ws.runEpoch(e.epoch)
			results[i] = result{lossSum: sum, count: n, busy: time.Since(t0)}
		}(i, ws)
	}
	wg.Wait()
	// Barrier: every worker is quiescent — all tapes, gradients and message
	// payloads from this epoch are dead — so their arena tensors can go back
	// to the pool for the next epoch. Nil arenas (pool disabled) no-op.
	for _, ws := range e.states {
		ws.arena.Release()
	}
	wall := time.Since(start)
	// Barrier attribution: a worker that finished early idles until the
	// slowest one crosses the epoch barrier. That idle gap is wall minus its
	// own busy span (spawn skew makes it approximate, never negative).
	for i := range results {
		if gap := wall - results[i].busy; gap > 0 {
			rec.AddTime(i, obs.StageBarrier, 0, gap)
		}
	}
	// Sum in worker-id order: float addition is not associative, so summing
	// in completion order would make the reported loss depend on goroutine
	// scheduling — same-seed runs must be bit-identical.
	var lossSum float64
	var count int
	for _, r := range results {
		lossSum += r.lossSum
		count += r.count
	}
	e.epoch++
	e.paramVersion.Add(1)
	st := EpochStats{Epoch: e.epoch, Duration: wall}
	if count > 0 {
		st.Loss = lossSum / float64(count)
	}
	e.history = append(e.history, st)
	obsEpoch.Set(float64(st.Epoch))
	obsLoss.Set(st.Loss)
	obsEpochSeconds.Set(st.Duration.Seconds())
	// The epoch barrier has passed: every worker is quiescent, so the
	// snapshot sees one consistent cluster state.
	if e.opts.Ckpt.Due(e.epoch) {
		t0 := time.Now()
		err := e.opts.Ckpt.Save(e.Snapshot())
		rec.AddTime(0, obs.StageCheckpoint, 0, time.Since(t0))
		if err != nil {
			st.CkptErr = err
		}
	}
	rec.EndEpoch(wall, st.Loss)
	e.exportFlows(rec)
	e.opts.History.Sample(time.Now())
	return st
}

// exportFlows mirrors the finished epoch's cross-worker wait-matches into
// the collector's tracer as Chrome flow events, so the trace export draws a
// send→receive arrow for every message that a worker actually blocked on.
// The causal offsets are anchored at the epoch start; Offset rebases them
// onto the tracer's run-relative clock.
func (e *Engine) exportFlows(rec *obs.FlightRecorder) {
	if e.opts.Collector == nil || !rec.CausalEnabled() {
		return
	}
	last, ok := rec.Last()
	if !ok || last.CausalStart.IsZero() {
		return
	}
	tr := e.opts.Collector.Tracer()
	base := tr.Offset(last.CausalStart)
	for _, m := range last.Matches {
		if m.SpanID == 0 {
			continue // untraced message (sent outside the epoch window)
		}
		tr.AddFlow(obs.FlowEvent{
			ID:         m.SpanID,
			Name:       "msg:" + m.Kind,
			FromWorker: m.From,
			At:         base + m.Sent,
			ToWorker:   m.Worker,
			End:        base + m.WaitEnd,
		})
	}
}

// Train runs epochs epochs and returns the stats of each.
func (e *Engine) Train(epochs int) []EpochStats {
	out := make([]EpochStats, 0, epochs)
	for i := 0; i < epochs; i++ {
		out = append(out, e.RunEpoch())
	}
	return out
}

// Params returns worker 0's model parameters (replicas are identical).
func (e *Engine) Params() []*nn.Param { return e.states[0].model.Params() }

// Model returns worker 0's model replica.
func (e *Engine) Model() *nn.Model { return e.states[0].model }

// predictEpochBase keeps inference message tags disjoint from training
// epochs in the mailbox routing space.
const predictEpochBase = 1 << 28

// Predict runs one distributed forward-only pass (dropout disabled) and
// returns the final-layer logits for every vertex, assembled from the
// workers' owned blocks.
func (e *Engine) Predict() *tensor.Tensor {
	e.predicts++
	epoch := predictEpochBase + e.predicts
	type part struct {
		id   int
		rows *tensor.Tensor
	}
	results := make(chan part, len(e.states))
	for _, ws := range e.states {
		go func(ws *workerState) {
			results <- part{id: ws.id, rows: ws.runForward(epoch)}
		}(ws)
	}
	out := tensor.New(e.ds.NumVertices(), e.dims[len(e.dims)-1])
	for range e.states {
		p := <-results
		for r, v := range e.plans[p.id].owned {
			copy(out.Row(int(v)), p.rows.Row(r))
		}
	}
	return out
}

// Evaluate computes classification accuracy over the vertices selected by
// mask, using a distributed forward pass with the current parameters.
func (e *Engine) Evaluate(mask []bool) float64 {
	logits := e.Predict()
	pred := tensor.ArgMaxRows(logits)
	correct, total := 0, 0
	for v, m := range mask {
		if !m {
			continue
		}
		total++
		if int32(pred[v]) == e.ds.Labels[v] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// ReplicasInSync reports whether all workers hold bit-identical parameters;
// training correctness depends on this invariant.
func (e *Engine) ReplicasInSync() bool {
	ref := e.states[0].model.Params()
	for _, ws := range e.states[1:] {
		ps := ws.model.Params()
		for k := range ref {
			if !ref[k].Value.Equal(ps[k].Value) {
				return false
			}
		}
	}
	return true
}

// graphOf exposes the dataset graph to worker internals.
func (e *Engine) graphOf() *graph.Graph { return e.ds.Graph }

// SaveModel serialises the current parameters (all replicas are identical,
// so worker 0's copy is canonical).
func (e *Engine) SaveModel(w io.Writer) error {
	return e.states[0].model.SaveParams(w)
}

// LoadModel restores parameters into every worker's replica, preserving the
// replicas-identical invariant. The checkpoint must match the engine's
// model architecture.
func (e *Engine) LoadModel(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	for _, ws := range e.states {
		if err := ws.model.LoadParams(bytes.NewReader(data)); err != nil {
			return err
		}
	}
	e.paramVersion.Add(1)
	return nil
}

// ParamVersion returns the parameter mutation counter: it advances on every
// optimiser step (once per epoch), LoadModel and Restore. A serving layer
// sharing this engine compares versions to decide when its embedding caches
// went stale. Safe to call concurrently.
func (e *Engine) ParamVersion() uint64 { return e.paramVersion.Load() }

// CloneModel builds a fresh model of the engine's architecture carrying a
// copy of the current parameters — a serving-side snapshot that stays stable
// while training mutates the replicas. Call it between epochs (the engine is
// externally synchronous), like Snapshot.
func (e *Engine) CloneModel() *nn.Model {
	m := nn.MustNewModel(e.opts.Model, e.dims, e.opts.Dropout, e.opts.Seed+7)
	src := e.states[0].model.Params()
	dst := m.Params()
	for i := range dst {
		dst[i].Value.CopyFrom(src[i].Value)
	}
	return m
}
