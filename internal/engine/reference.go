package engine

import (
	"neutronstar/internal/autograd"
	"neutronstar/internal/graph"
	"neutronstar/internal/nn"
	"neutronstar/internal/tensor"
)

// ReferenceForward runs a single-machine, full-graph inference pass through
// model: the ground truth all distributed engines must match. Dropout is
// disabled (inference mode). It returns the final-layer logits for every
// vertex.
func ReferenceForward(g *graph.Graph, model *nn.Model, features *tensor.Tensor) *tensor.Tensor {
	h := features
	for _, layer := range model.Layers {
		h = referenceLayer(g, layer, h, false, nil)
	}
	return h
}

// ReferenceTrainStep runs one full-graph training step on a single machine
// and returns the mean loss over the labeled set. Engines' distributed
// gradients are validated against the parameter gradients this produces.
// Dropout is disabled so the comparison is deterministic.
func ReferenceTrainStep(g *graph.Graph, model *nn.Model, features *tensor.Tensor,
	labels []int32, trainMask []bool) float64 {
	loss, _ := referenceStep(g, model, features, labels, trainMask, false)
	return loss
}

// ReferenceBackward is ReferenceTrainStep with the input features registered
// as a differentiable leaf: alongside the loss it returns dLoss/dFeatures,
// the V x d^(0) gradient of the mean training loss with respect to every
// vertex's raw feature row. Parameter gradients accumulate into
// model.Params()[i].Grad exactly as in ReferenceTrainStep. The feature
// gradient is what the testkit finite-difference checker validates per-vertex
// — a regression in any backward dual (ScatterBackToEdge / GatherBySrc) shows
// up here even when the parameter path happens to cancel it.
func ReferenceBackward(g *graph.Graph, model *nn.Model, features *tensor.Tensor,
	labels []int32, trainMask []bool) (float64, *tensor.Tensor) {
	return referenceStep(g, model, features, labels, trainMask, true)
}

// referenceStep is the shared forward/backward ladder: one tape per layer,
// gradients handed down through each layer's input leaf. When featGrad is
// set, layer 0's input requires grad and its accumulated gradient is
// returned (zero tensor if no gradient flowed).
func referenceStep(g *graph.Graph, model *nn.Model, features *tensor.Tensor,
	labels []int32, trainMask []bool, featGrad bool) (float64, *tensor.Tensor) {

	type run struct {
		tape *autograd.Tape
		in   *autograd.Variable
		out  *autograd.Variable
	}
	var runs []run
	h := features
	for li, layer := range model.Layers {
		tape := autograd.NewTape()
		in := tape.Leaf(h, li > 0 || featGrad, "h")
		out := forwardOnTape(g, layer, tape, in, false, nil)
		runs = append(runs, run{tape: tape, in: in, out: out})
		h = out.Value
	}
	last := runs[len(runs)-1]
	loss, _ := last.tape.NLLLossMasked(last.tape.LogSoftmax(last.out), labels, trainMask)
	last.tape.Backward(loss, nil)
	for l := len(runs) - 2; l >= 0; l-- {
		seed := runs[l+1].in.Grad
		if seed == nil {
			seed = tensor.New(runs[l].out.Value.Rows(), runs[l].out.Value.Cols())
		}
		runs[l].tape.Backward(runs[l].out, seed)
	}
	for _, p := range model.Params() {
		p.CollectGrad()
	}
	var fg *tensor.Tensor
	if featGrad {
		fg = runs[0].in.Grad
		if fg == nil {
			fg = tensor.New(features.Rows(), features.Cols())
		}
	}
	return float64(loss.Value.At(0, 0)), fg
}

// referenceLayer evaluates one layer over the whole graph without autograd
// bookkeeping beyond a throwaway tape.
func referenceLayer(g *graph.Graph, layer nn.Layer, h *tensor.Tensor, training bool, rng *tensor.RNG) *tensor.Tensor {
	tape := autograd.NewTape()
	in := tape.Constant(h, "h")
	out := forwardOnTape(g, layer, tape, in, training, rng)
	// Detach parameters bound during inference so a later training pass does
	// not try to collect stale gradients.
	for _, p := range layer.Params() {
		p.CollectGrad()
	}
	return out.Value
}

// forwardOnTape builds the full-graph ForwardCtx for layer and runs it.
func forwardOnTape(g *graph.Graph, layer nn.Layer, tape *autograd.Tape,
	in *autograd.Variable, training bool, rng *tensor.RNG) *autograd.Variable {

	if rng == nil {
		rng = tensor.NewRNG(0)
	}
	rows := in
	if pt, ok := layer.(nn.PreTransformer); ok {
		rows = pt.PreTransform(tape, in, training, rng)
	}
	n := g.NumVertices()
	srcIdx := make([]int32, 0, g.NumEdges())
	dstIdx := make([]int32, 0, g.NumEdges())
	offsets := make([]int32, n+1)
	selfIdx := make([]int32, n)
	for v := 0; v < n; v++ {
		selfIdx[v] = int32(v)
		for _, u := range g.InNeighbors(int32(v)) {
			srcIdx = append(srcIdx, u)
			dstIdx = append(dstIdx, int32(v))
		}
		offsets[v+1] = int32(len(srcIdx))
	}
	edgeNorm, selfNorm := graph.GCNNormCoefficients(g)
	ctx := &nn.ForwardCtx{
		Tape:     tape,
		EdgeSrc:  tape.Gather(rows, srcIdx),
		Self:     rows,
		Offsets:  offsets,
		EdgeDst:  dstIdx,
		EdgeNorm: edgeNorm,
		SelfNorm: selfNorm,
		Training: training,
		RNG:      rng,
	}
	return layer.Forward(ctx)
}
