package engine

import (
	"neutronstar/internal/autograd"
	"neutronstar/internal/graph"
	"neutronstar/internal/nn"
	"neutronstar/internal/tensor"
)

// ReferenceForward runs a single-machine, full-graph inference pass through
// model: the ground truth all distributed engines must match. Dropout is
// disabled (inference mode). It returns the final-layer logits for every
// vertex.
func ReferenceForward(g *graph.Graph, model *nn.Model, features *tensor.Tensor) *tensor.Tensor {
	h := features
	for _, layer := range model.Layers {
		h = referenceLayer(g, layer, h, false, nil)
	}
	return h
}

// ReferenceTrainStep runs one full-graph training step on a single machine
// and returns the mean loss over the labeled set. Engines' distributed
// gradients are validated against the parameter gradients this produces.
// Dropout is disabled so the comparison is deterministic.
func ReferenceTrainStep(g *graph.Graph, model *nn.Model, features *tensor.Tensor,
	labels []int32, trainMask []bool) float64 {

	type run struct {
		tape *autograd.Tape
		in   *autograd.Variable
		out  *autograd.Variable
	}
	var runs []run
	h := features
	for li, layer := range model.Layers {
		tape := autograd.NewTape()
		in := tape.Leaf(h, li > 0, "h")
		out := forwardOnTape(g, layer, tape, in, false, nil)
		runs = append(runs, run{tape: tape, in: in, out: out})
		h = out.Value
	}
	last := runs[len(runs)-1]
	loss, _ := last.tape.NLLLossMasked(last.tape.LogSoftmax(last.out), labels, trainMask)
	last.tape.Backward(loss, nil)
	for l := len(runs) - 2; l >= 0; l-- {
		seed := runs[l+1].in.Grad
		if seed == nil {
			seed = tensor.New(runs[l].out.Value.Rows(), runs[l].out.Value.Cols())
		}
		runs[l].tape.Backward(runs[l].out, seed)
	}
	for _, p := range model.Params() {
		p.CollectGrad()
	}
	return float64(loss.Value.At(0, 0))
}

// referenceLayer evaluates one layer over the whole graph without autograd
// bookkeeping beyond a throwaway tape.
func referenceLayer(g *graph.Graph, layer nn.Layer, h *tensor.Tensor, training bool, rng *tensor.RNG) *tensor.Tensor {
	tape := autograd.NewTape()
	in := tape.Constant(h, "h")
	out := forwardOnTape(g, layer, tape, in, training, rng)
	// Detach parameters bound during inference so a later training pass does
	// not try to collect stale gradients.
	for _, p := range layer.Params() {
		p.CollectGrad()
	}
	return out.Value
}

// forwardOnTape builds the full-graph ForwardCtx for layer and runs it.
func forwardOnTape(g *graph.Graph, layer nn.Layer, tape *autograd.Tape,
	in *autograd.Variable, training bool, rng *tensor.RNG) *autograd.Variable {

	if rng == nil {
		rng = tensor.NewRNG(0)
	}
	rows := in
	if pt, ok := layer.(nn.PreTransformer); ok {
		rows = pt.PreTransform(tape, in, training, rng)
	}
	n := g.NumVertices()
	srcIdx := make([]int32, 0, g.NumEdges())
	dstIdx := make([]int32, 0, g.NumEdges())
	offsets := make([]int32, n+1)
	selfIdx := make([]int32, n)
	for v := 0; v < n; v++ {
		selfIdx[v] = int32(v)
		for _, u := range g.InNeighbors(int32(v)) {
			srcIdx = append(srcIdx, u)
			dstIdx = append(dstIdx, int32(v))
		}
		offsets[v+1] = int32(len(srcIdx))
	}
	edgeNorm, selfNorm := graph.GCNNormCoefficients(g)
	ctx := &nn.ForwardCtx{
		Tape:     tape,
		EdgeSrc:  tape.Gather(rows, srcIdx),
		Self:     rows,
		Offsets:  offsets,
		EdgeDst:  dstIdx,
		EdgeNorm: edgeNorm,
		SelfNorm: selfNorm,
		Training: training,
		RNG:      rng,
	}
	return layer.Forward(ctx)
}
