package engine

import (
	"testing"

	"neutronstar/internal/metrics"
	"neutronstar/internal/obs"
)

// TestEpochSpanHierarchy checks that a hybrid training epoch produces the
// structural epoch → layer → op span hierarchy: structural spans carry
// ClassNone (so utilisation series are unaffected), op spans carry their
// metrics.Kind and the attributes the trace viewer groups by.
func TestEpochSpanHierarchy(t *testing.T) {
	ds := testDataset(t, 120, 6, 3)
	coll := metrics.NewCollector()
	eng, err := NewEngine(ds, Options{
		Workers: 2, Mode: Hybrid, Collector: coll,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	busyBefore := coll.Busy(metrics.Compute) + coll.Busy(metrics.Comm)
	eng.RunEpoch()

	spans := coll.Tracer().Snapshot()
	byName := map[string][]obs.SpanData{}
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}

	epochs := byName["epoch"]
	if len(epochs) != 2 {
		t.Fatalf("epoch groups = %d, want one per worker", len(epochs))
	}
	for _, ep := range epochs {
		if ep.Class != obs.ClassNone {
			t.Fatalf("epoch span class = %d, want ClassNone", ep.Class)
		}
		if ep.Attr("mode") != string(Hybrid) {
			t.Fatalf("epoch mode attr = %v", ep.Attr("mode"))
		}
	}
	layers := byName["layer"]
	if len(layers) != 4 { // 2 workers x 2 layers
		t.Fatalf("layer groups = %d", len(layers))
	}
	for _, lg := range layers {
		if lg.Class != obs.ClassNone {
			t.Fatalf("layer span class = %d", lg.Class)
		}
		l, ok := lg.Attr("layer").(int)
		if !ok || l < 1 || l > 2 {
			t.Fatalf("layer attr = %v", lg.Attr("layer"))
		}
		// The layer group must contain at least one compute op within its
		// window on the same worker row (time-containment nesting).
		found := false
		for _, sp := range spans {
			if sp.Worker == lg.Worker && sp.Class == int(metrics.Compute) &&
				sp.Start >= lg.Start && sp.End <= lg.End {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("layer group on worker %d contains no compute span", lg.Worker)
		}
	}
	if len(byName["compute_owned"]) == 0 {
		t.Fatal("no compute_owned spans")
	}
	if len(byName["allreduce"]) != 2 {
		t.Fatalf("allreduce spans = %d", len(byName["allreduce"]))
	}
	for _, sp := range byName["allreduce"] {
		if sp.Class != int(metrics.Comm) {
			t.Fatalf("allreduce class = %d", sp.Class)
		}
		if b, ok := sp.Attr("bytes").(int); !ok || b <= 0 {
			t.Fatalf("allreduce bytes attr = %v", sp.Attr("bytes"))
		}
	}
	// Cross-worker communication happened, so dep-gather spans must carry a
	// positive byte attribute on at least one worker.
	gathers := append(byName["gather_dep_nbr"], byName["recv_chunk"]...)
	if len(gathers) == 0 {
		t.Fatal("no dependency-gather spans recorded")
	}
	for _, sp := range gathers {
		if sp.Class != int(metrics.Comm) {
			t.Fatalf("gather span class = %d", sp.Class)
		}
	}
	if coll.Busy(metrics.Compute)+coll.Busy(metrics.Comm) <= busyBefore {
		t.Fatal("busy accounting did not advance")
	}
	// Structural groups must not inflate the utilisation series: total busy
	// time equals the sum over class-bearing spans only.
	var classed int64
	for _, sp := range spans {
		if sp.Class >= 0 {
			classed += int64(sp.Duration())
		}
	}
	total := int64(coll.Busy(metrics.Compute) + coll.Busy(metrics.Comm) + coll.Busy(metrics.Sample))
	if classed != total {
		t.Fatalf("busy mismatch: classed spans %d vs Busy %d", classed, total)
	}
}
