package engine

import (
	"neutronstar/internal/comm"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
	"neutronstar/internal/obs"
	"neutronstar/internal/tensor"
)

// Message phase tags for the parameter-server exchange, carried in the
// Layer field (a PS round replaces the ring all-reduce entirely, so the
// tags cannot collide with it).
const (
	psPhaseGrad  = 1 // worker -> server: flattened gradients
	psPhaseParam = 2 // server -> worker: flattened updated parameters
)

// paramServerUpdate implements the centralised alternative to ring
// all-reduce: every worker pushes its partial gradients to worker 0, which
// sums them, applies the optimiser once (keeping the canonical state), and
// broadcasts the updated parameter values. Replicas remain bit-identical
// because every worker installs the same broadcast bytes.
//
// Compared to the ring, the server's NIC carries m-1 inbound gradient
// messages and m-1 outbound parameter messages per epoch — the incast
// pattern that motivates all-reduce in the first place, observable under a
// throttled NetworkProfile.
func (ws *workerState) paramServerUpdate(epoch int, params []*nn.Param) {
	m := ws.eng.opts.Workers
	if m == 1 {
		ws.opt.Step(params)
		return
	}
	coll := ws.eng.opts.Collector

	total := 0
	for _, p := range params {
		total += p.Grad.Len()
	}
	sp := coll.Span(ws.id, metrics.Comm, "param_server",
		obs.Int("epoch", epoch), obs.Int("bytes", 4*total))
	defer sp.End()

	if ws.id != 0 {
		// Push gradients, then install the broadcast parameters.
		buf := tensor.New(1, total)
		flattenInto(buf.Data(), params, func(p *nn.Param) []float32 { return p.Grad.Data() })
		ws.eng.fabric.Send(&comm.Message{
			From: ws.id, To: 0, Kind: comm.KindAllReduce,
			Epoch: epoch, Layer: psPhaseGrad, Rows: buf,
		})
		msg := ws.mb.Wait(comm.KindAllReduce, epoch, psPhaseParam, 0, 0)
		unflattenFrom(msg.Rows.Data(), params, func(p *nn.Param) []float32 { return p.Value.Data() })
		return
	}

	// Server: accumulate gradients from every worker into the local ones.
	for j := 1; j < m; j++ {
		msg := ws.mb.Wait(comm.KindAllReduce, epoch, psPhaseGrad, 0, j)
		off := 0
		for _, p := range params {
			dst := p.Grad.Data()
			src := msg.Rows.Data()[off : off+len(dst)]
			for k, v := range src {
				dst[k] += v
			}
			off += len(dst)
		}
	}
	if ws.eng.opts.ClipNorm > 0 {
		nn.ClipGradNorm(params, ws.eng.opts.ClipNorm)
	}
	ws.opt.Step(params)
	out := tensor.New(1, total)
	flattenInto(out.Data(), params, func(p *nn.Param) []float32 { return p.Value.Data() })
	for j := 1; j < m; j++ {
		ws.eng.fabric.Send(&comm.Message{
			From: 0, To: j, Kind: comm.KindAllReduce,
			Epoch: epoch, Layer: psPhaseParam, Rows: out,
		})
	}
}

func flattenInto(dst []float32, params []*nn.Param, field func(*nn.Param) []float32) {
	off := 0
	for _, p := range params {
		src := field(p)
		copy(dst[off:], src)
		off += len(src)
	}
}

func unflattenFrom(src []float32, params []*nn.Param, field func(*nn.Param) []float32) {
	off := 0
	for _, p := range params {
		dst := field(p)
		copy(dst, src[off:off+len(dst)])
		off += len(dst)
	}
}
