// Package engine executes distributed GNN training. It implements the
// paper's unified pipeline (Fig. 6): every layer runs GetFromDepNbr →
// ScatterToEdge → EdgeForward → GatherByDst → VertexForward, with the
// backward duals generated automatically by the autograd tape, and the
// cross-worker boundary handled by master–mirror messages
// (synchronize-compute forward, compute-synchronize backward, Fig. 7).
//
// The three training modes — DepCache, DepComm, Hybrid — share this single
// implementation; they differ only in the hybrid.Decision that assigns each
// remote dependency to replication or communication. The plan in this file
// turns a Decision into the static per-worker execution structures: which
// non-owned vertices are redundantly computed at each layer, which rows are
// exchanged with which peer, and the index arrays the gather/scatter ops use.
package engine

import (
	"fmt"
	"math"
	"sort"

	"neutronstar/internal/graph"
	"neutronstar/internal/hybrid"
	"neutronstar/internal/partition"
)

// blockPlan holds the edge-level index arrays for one destination block of
// one layer (the owned block or the cached block).
type blockPlan struct {
	// dsts are the global ids of the block's destination vertices, in output
	// row order.
	dsts []int32
	// srcRow[e] is the HAll row of edge e's source; edges are grouped by
	// destination (CSC order over the block).
	srcRow []int32
	// dstRow[e] is the output row of edge e's destination within the block.
	dstRow []int32
	// offsets delimits each destination's edge group (len(dsts)+1).
	offsets []int32
	// selfRow[r] is the prev-rows index of destination r itself.
	selfRow []int32
	// edgeNorm / selfNorm are GCN normalisation coefficients.
	edgeNorm []float32
	selfNorm []float32
}

func (b *blockPlan) numDst() int { return len(b.dsts) }

// chunkGroup is the owned block's edge subset whose sources live in one
// region: the local prev rows (peer == -1) or one peer's received chunk.
// srcLocal indexes within that region's own row space, so each group can
// gather directly from its chunk leaf — the basis of §4.3's incremental
// per-chunk aggregation.
type chunkGroup struct {
	peer     int
	srcLocal []int32
	dstRow   []int32
	edgeNorm []float32
}

// layerPlan is the per-layer execution structure of one worker.
type layerPlan struct {
	// recv[j] lists vertices received from peer j this layer (ascending);
	// empty for j == self and peers with nothing to send.
	recv [][]int32
	// recvOffset[j] is the starting HAll row of peer j's chunk.
	recvOffset []int32
	// send[j] lists owned vertices whose rows are sent to peer j.
	send [][]int32
	// owned is the block of destinations this worker owns; cached is the
	// block of replicated destinations whose layer output is recomputed
	// locally (the DepCache portion of the hybrid split).
	owned  blockPlan
	cached blockPlan
	// numPrevRows = |owned| + |cachedCompute[l-1]|: the rows carried over
	// from the previous layer's output (or the feature assembly for l=1).
	numPrevRows int
	// numHAllRows = numPrevRows + total received rows.
	numHAllRows int
	// ownedGroups re-expresses the owned block's edges grouped by source
	// region for chunk-pipelined aggregation.
	ownedGroups []chunkGroup
}

// workerPlan is the full static execution plan of one worker.
type workerPlan struct {
	id    int
	owned []int32
	// cachedCompute[k], k=0..L-1: non-owned vertices whose h^(k) this worker
	// computes redundantly (k>=1), or whose features it caches (k=0).
	cachedCompute [][]int32
	layers        []layerPlan
	// prevIndex[k] maps a global vertex id to its row in the layer-k output
	// layout (owned ++ cachedCompute[k]); -1 if absent.
	// Only vertices in the layout appear.
	prevIndex []map[int32]int32
	// cacheBytes is the replica storage implied by cachedCompute (for
	// reporting against the Decision estimate).
	cacheBytes int64
	// tpLayers[l-1] is the tensor-parallel plan of layer l, nil for layers
	// that run the regular master–mirror dataflow. Always length L.
	tpLayers []*tpLayerPlan
}

// buildPlans derives all workers' execution plans from the dependency
// decisions. dims is d^(0)..d^(L); sliceTP selects the tensor-parallel
// dataflow (column-sliced aggregation vs. full-width assemble) for any
// TP layers in the decisions.
func buildPlans(g *graph.Graph, part *partition.Partition, decs []*hybrid.Decision, dims []int, sliceTP bool) ([]*workerPlan, error) {
	m := part.NumParts
	L := len(dims) - 1
	if len(decs) != m {
		return nil, fmt.Errorf("engine: %d decisions for %d workers", len(decs), m)
	}
	// Per-edge coefficients are recomputed from degrees inside buildBlock
	// (indexing the global CSC edge array across worker-local edge orders
	// would be error-prone); only the per-vertex self coefficients are
	// precomputed here.
	_, selfNormAll := graph.GCNNormCoefficients(g)

	// The tensor-parallel geometry is cluster-global and identical across
	// workers, so it is built once and shared read-only.
	var shared *tpShared
	for _, d := range decs {
		if d.NumTP() > 0 {
			shared = buildTPShared(g, part, sliceTP, selfNormAll)
			break
		}
	}

	plans := make([]*workerPlan, m)
	for i := 0; i < m; i++ {
		p, err := buildWorkerPlan(g, part, decs[i], dims, i, selfNormAll, shared)
		if err != nil {
			return nil, err
		}
		plans[i] = p
	}

	// Wire send lists: worker i sends to j at layer l exactly what j's plan
	// receives from i.
	for i := 0; i < m; i++ {
		for l := 0; l < L; l++ {
			plans[i].layers[l].send = make([][]int32, m)
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				plans[i].layers[l].send[j] = plans[j].layers[l].recv[i]
			}
		}
	}
	return plans, nil
}

// buildWorkerPlan derives worker i's plan from its dependency decision.
func buildWorkerPlan(g *graph.Graph, part *partition.Partition, dec *hybrid.Decision,
	dims []int, i int, selfNormAll []float32, shared *tpShared) (*workerPlan, error) {

	L := len(dims) - 1
	owned := part.Parts[i]
	isOwned := func(v int32) bool { return part.Assign[v] == int32(i) }

	// Tensor-parallel layers must form a suffix: a TP layer's input is
	// exactly the owned rows, which a regular layer above it (whose cached
	// dependencies would widen the output below) cannot guarantee. The 3-way
	// planner only emits suffixes; reject anything else before it produces a
	// silently wrong plan.
	for l := 1; l < L; l++ {
		if dec.TPAt(l) && !dec.TPAt(l+1) {
			return nil, fmt.Errorf("engine: worker %d: tensor-parallel layers must form a suffix (layer %d TP under regular layer %d)", i, l, l+1)
		}
	}

	// 1. Derive cachedCompute sets by expanding every cached dependency's
	// subtree: caching u for layer l requires h^(l-1)_u locally, which
	// requires u at every lower level (self chain) and u's non-owned
	// in-neighbors one level down.
	cachedSet := make([]map[int32]struct{}, L) // index k = level
	for k := range cachedSet {
		cachedSet[k] = make(map[int32]struct{})
	}
	var need func(v int32, lvl int)
	need = func(v int32, lvl int) {
		if isOwned(v) || lvl < 0 {
			return
		}
		if _, ok := cachedSet[lvl][v]; ok {
			return
		}
		cachedSet[lvl][v] = struct{}{}
		// Self chain: h^(lvl)_v needs h^(lvl-1)_v (self term) ... down to
		// features.
		need(v, lvl-1)
		if lvl >= 1 {
			for _, w := range g.InNeighbors(v) {
				need(w, lvl-1)
			}
		}
	}
	for l := 1; l <= L; l++ {
		for _, u := range dec.R[l-1] {
			need(u, l-1)
		}
	}
	p := &workerPlan{id: i, owned: owned, cachedCompute: make([][]int32, L),
		tpLayers: make([]*tpLayerPlan, L)}
	for k := 0; k < L; k++ {
		p.cachedCompute[k] = sortedFromSet(cachedSet[k])
		p.cacheBytes += int64(len(p.cachedCompute[k])) * int64(4*dims[k])
	}

	// 2. prevIndex maps for each level layout (owned ++ cachedCompute[k]).
	p.prevIndex = make([]map[int32]int32, L)
	for k := 0; k < L; k++ {
		idx := make(map[int32]int32, len(owned)+len(p.cachedCompute[k]))
		for r, v := range owned {
			idx[v] = int32(r)
		}
		for r, v := range p.cachedCompute[k] {
			idx[v] = int32(len(owned) + r)
		}
		p.prevIndex[k] = idx
	}

	// 3. Per-layer recv chunks and edge index arrays.
	p.layers = make([]layerPlan, L)
	for l := 1; l <= L; l++ {
		lp := &p.layers[l-1]
		if dec.TPAt(l) {
			// Tensor-parallel layer: no per-vertex exchange, no cached block.
			// The regular structures stay empty (so the generic send/recv
			// wiring and backward loops no-op) and the slice-exchange plan
			// lives in tpLayers.
			if len(p.cachedCompute[l-1]) != 0 {
				return nil, fmt.Errorf("engine: worker %d layer %d: tensor-parallel input widened by %d replicas at level %d", i, l, len(p.cachedCompute[l-1]), l-1)
			}
			lp.recv = make([][]int32, part.NumParts)
			lp.recvOffset = make([]int32, part.NumParts)
			lp.numPrevRows = len(owned)
			lp.numHAllRows = len(owned)
			p.tpLayers[l-1] = buildTPLayer(g, part, shared, dims, l, i, selfNormAll)
			continue
		}
		lp.numPrevRows = len(owned) + len(p.cachedCompute[l-1])

		// Communicated dependencies still missing locally at this layer.
		recvByPeer := make([]map[int32]struct{}, part.NumParts)
		for _, u := range dec.C[l-1] {
			if _, cached := cachedSet[l-1][u]; cached {
				continue // replicated by another layer's subtree
			}
			o := part.Assign[u]
			if recvByPeer[o] == nil {
				recvByPeer[o] = make(map[int32]struct{})
			}
			recvByPeer[o][u] = struct{}{}
		}
		lp.recv = make([][]int32, part.NumParts)
		lp.recvOffset = make([]int32, part.NumParts)
		off := int32(lp.numPrevRows)
		for j := 0; j < part.NumParts; j++ {
			lp.recv[j] = sortedFromSet(recvByPeer[j])
			lp.recvOffset[j] = off
			off += int32(len(lp.recv[j]))
		}
		lp.numHAllRows = int(off)

		// Row resolver for edge sources in HAll.
		recvIndex := make(map[int32]int32)
		for j := 0; j < part.NumParts; j++ {
			for r, v := range lp.recv[j] {
				recvIndex[v] = lp.recvOffset[j] + int32(r)
			}
		}
		resolve := func(u int32) (int32, error) {
			if r, ok := p.prevIndex[l-1][u]; ok {
				return r, nil
			}
			if r, ok := recvIndex[u]; ok {
				return r, nil
			}
			return 0, fmt.Errorf("engine: worker %d layer %d: source %d unavailable", i, l, u)
		}

		var err error
		lp.owned, err = buildBlock(g, owned, resolve, p.prevIndex[l-1], selfNormAll)
		if err != nil {
			return nil, err
		}
		lp.cached, err = buildBlock(g, p.cachedComputeAt(l), resolve, p.prevIndex[l-1], selfNormAll)
		if err != nil {
			return nil, err
		}
		lp.ownedGroups = buildChunkGroups(lp, part.NumParts)
	}
	return p, nil
}

// buildChunkGroups splits the owned block's edges by source region.
func buildChunkGroups(lp *layerPlan, numPeers int) []chunkGroup {
	local := chunkGroup{peer: -1}
	byPeer := make(map[int]*chunkGroup)
	peerOf := func(row int32) int {
		for j := numPeers - 1; j >= 0; j-- {
			if len(lp.recv[j]) > 0 && row >= lp.recvOffset[j] {
				if row < lp.recvOffset[j]+int32(len(lp.recv[j])) {
					return j
				}
			}
		}
		return -1
	}
	for e, sr := range lp.owned.srcRow {
		if int(sr) < lp.numPrevRows {
			local.srcLocal = append(local.srcLocal, sr)
			local.dstRow = append(local.dstRow, lp.owned.dstRow[e])
			local.edgeNorm = append(local.edgeNorm, lp.owned.edgeNorm[e])
			continue
		}
		j := peerOf(sr)
		gp := byPeer[j]
		if gp == nil {
			gp = &chunkGroup{peer: j}
			byPeer[j] = gp
		}
		gp.srcLocal = append(gp.srcLocal, sr-lp.recvOffset[j])
		gp.dstRow = append(gp.dstRow, lp.owned.dstRow[e])
		gp.edgeNorm = append(gp.edgeNorm, lp.owned.edgeNorm[e])
	}
	groups := []chunkGroup{local}
	for j := 0; j < numPeers; j++ {
		if gp := byPeer[j]; gp != nil {
			groups = append(groups, *gp)
		}
	}
	return groups
}

// cachedComputeAt returns the cached set for level k, where level L is
// always empty (no one consumes h^(L) of a replica).
func (p *workerPlan) cachedComputeAt(k int) []int32 {
	if k >= len(p.cachedCompute) {
		return nil
	}
	return p.cachedCompute[k]
}

// buildBlock assembles the edge arrays for one destination block.
func buildBlock(g *graph.Graph, dsts []int32, resolve func(int32) (int32, error),
	prevIndex map[int32]int32, selfNormAll []float32) (blockPlan, error) {

	b := blockPlan{dsts: dsts, offsets: make([]int32, len(dsts)+1)}
	b.selfRow = make([]int32, len(dsts))
	b.selfNorm = make([]float32, len(dsts))
	for r, v := range dsts {
		sr, ok := prevIndex[v]
		if !ok {
			return b, fmt.Errorf("engine: destination %d has no previous-layer row", v)
		}
		b.selfRow[r] = sr
		b.selfNorm[r] = selfNormAll[v]
		dNorm := gcnInvSqrt(g.InDegree(v))
		for _, u := range g.InNeighbors(v) {
			row, err := resolve(u)
			if err != nil {
				return b, err
			}
			b.srcRow = append(b.srcRow, row)
			b.dstRow = append(b.dstRow, int32(r))
			b.edgeNorm = append(b.edgeNorm, dNorm*gcnInvSqrt(g.InDegree(u)))
		}
		b.offsets[r+1] = int32(len(b.srcRow))
	}
	return b, nil
}

// gcnInvSqrt returns 1/sqrt(d+1) as float32, matching
// graph.GCNNormCoefficients' per-edge formula.
func gcnInvSqrt(d int) float32 {
	return float32(1 / math.Sqrt(float64(d+1)))
}

func sortedFromSet(m map[int32]struct{}) []int32 {
	out := make([]int32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
