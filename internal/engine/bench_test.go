package engine

import (
	"testing"

	"neutronstar/internal/comm"
	"neutronstar/internal/dataset"
	"neutronstar/internal/nn"
)

// Ablation micro-benchmarks for the engine's design choices. The
// repository-level bench_test.go reproduces the paper's figures; these
// isolate single mechanisms on a fixed mid-size workload.

func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	return dataset.Load(dataset.Spec{
		Name: "bench", Vertices: 4000, AvgDegree: 12, FeatureDim: 32,
		NumClasses: 8, HiddenDim: 16, Gen: dataset.GenRMAT, Seed: 99,
	})
}

func benchEpochs(b *testing.B, opts Options) {
	b.Helper()
	ds := benchDataset(b)
	e, err := NewEngine(ds, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	e.RunEpoch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunEpoch()
	}
}

func BenchmarkEpochDepCache(b *testing.B) {
	benchEpochs(b, Options{Workers: 4, Mode: DepCache, Model: nn.GCN, Seed: 1})
}

func BenchmarkEpochDepComm(b *testing.B) {
	benchEpochs(b, Options{Workers: 4, Mode: DepComm, Model: nn.GCN, Seed: 1})
}

func BenchmarkEpochHybrid(b *testing.B) {
	benchEpochs(b, Options{Workers: 4, Mode: Hybrid, Model: nn.GCN, Seed: 1})
}

// Ring scheduling ablation under a throttled network, where send-order
// contention is visible.
func BenchmarkEpochNaiveOrder(b *testing.B) {
	benchEpochs(b, Options{Workers: 4, Mode: DepComm, Model: nn.GCN, Seed: 1,
		Profile: comm.ProfileECS})
}

func BenchmarkEpochRingOrder(b *testing.B) {
	benchEpochs(b, Options{Workers: 4, Mode: DepComm, Model: nn.GCN, Seed: 1,
		Profile: comm.ProfileECS, Ring: true})
}

// Overlap ablation: cached-block compute hiding behind mirror exchange.
func BenchmarkEpochHybridNoOverlap(b *testing.B) {
	benchEpochs(b, Options{Workers: 4, Mode: Hybrid, Model: nn.GCN, Seed: 1,
		Profile: comm.ProfileECS, Ring: true, LockFree: true})
}

func BenchmarkEpochHybridOverlap(b *testing.B) {
	benchEpochs(b, Options{Workers: 4, Mode: Hybrid, Model: nn.GCN, Seed: 1,
		Profile: comm.ProfileECS, Ring: true, LockFree: true, Overlap: true})
}

// Whole-block (ROC-style) vs source-specific chunk communication.
func BenchmarkEpochChunked(b *testing.B) {
	benchEpochs(b, Options{Workers: 4, Mode: DepComm, Model: nn.GCN, Seed: 1,
		Profile: comm.ProfileECS})
}

func BenchmarkEpochBroadcast(b *testing.B) {
	benchEpochs(b, Options{Workers: 4, Mode: DepComm, Model: nn.GCN, Seed: 1,
		Profile: comm.ProfileECS, Broadcast: true})
}

// Parameter synchronisation: ring all-reduce vs parameter server.
func BenchmarkEpochAllReduce(b *testing.B) {
	benchEpochs(b, Options{Workers: 4, Mode: Hybrid, Model: nn.GCN, Seed: 1,
		Profile: comm.ProfileECS})
}

func BenchmarkEpochParamServer(b *testing.B) {
	benchEpochs(b, Options{Workers: 4, Mode: Hybrid, Model: nn.GCN, Seed: 1,
		Profile: comm.ProfileECS, ParamServer: true})
}

// Plan construction cost (the per-job preprocessing beyond Algorithm 4).
func BenchmarkBuildPlans(b *testing.B) {
	ds := benchDataset(b)
	e, err := NewEngine(ds, Options{Workers: 4, Mode: Hybrid, Model: nn.GCN, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	dims := e.dims
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := buildPlans(ds.Graph, e.part, e.decs, dims, false); err != nil {
			b.Fatal(err)
		}
	}
}
