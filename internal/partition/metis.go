package partition

import (
	"neutronstar/internal/graph"
)

// metisBFSPartition approximates edge-cut minimisation with a multi-seed
// BFS growth phase followed by boundary label refinement. It provides the
// initial partition on small graphs; large graphs go through the multilevel
// pipeline in multilevel.go, which optimises the same objective (minimise
// cut subject to balance) much better — what Figure 15 needs is a
// partitioner with a visibly lower cut than chunking.
func metisBFSPartition(g *graph.Graph, numParts int) *Partition {
	n := g.NumVertices()
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	if numParts == 1 {
		for i := range assign {
			assign[i] = 0
		}
		return fromAssign(assign, 1)
	}

	capacity := (n + numParts - 1) / numParts
	// Allow modest imbalance so growth isn't starved near the end.
	capLimit := capacity + capacity/20 + 1
	sizes := make([]int, numParts)

	// Seed parts with vertices spread across the id space (ids carry
	// locality in crawl ordering, and exactly this helps real METIS too).
	frontiers := make([][]int32, numParts)
	step := n / numParts
	for i := 0; i < numParts; i++ {
		seed := int32(i * step)
		// Find an unassigned seed nearby.
		for assign[seed] != -1 {
			seed = (seed + 1) % int32(n)
		}
		assign[seed] = int32(i)
		sizes[i]++
		frontiers[i] = []int32{seed}
	}

	// Round-robin BFS growth over undirected adjacency (in + out edges).
	active := numParts
	for active > 0 {
		active = 0
		for i := 0; i < numParts; i++ {
			if len(frontiers[i]) == 0 || sizes[i] >= capLimit {
				frontiers[i] = nil
				continue
			}
			var next []int32
			// Grow by one BFS level, claiming unassigned neighbors.
			for _, v := range frontiers[i] {
				for _, u := range g.InNeighbors(v) {
					if assign[u] == -1 && sizes[i] < capLimit {
						assign[u] = int32(i)
						sizes[i]++
						next = append(next, u)
					}
				}
				for _, u := range g.OutNeighbors(v) {
					if assign[u] == -1 && sizes[i] < capLimit {
						assign[u] = int32(i)
						sizes[i]++
						next = append(next, u)
					}
				}
			}
			frontiers[i] = next
			if len(next) > 0 {
				active++
			}
		}
	}

	// Sweep up disconnected leftovers into the lightest parts.
	for v := 0; v < n; v++ {
		if assign[v] == -1 {
			best := 0
			for i := 1; i < numParts; i++ {
				if sizes[i] < sizes[best] {
					best = i
				}
			}
			assign[v] = int32(best)
			sizes[best]++
		}
	}

	refine(g, assign, sizes, numParts, capLimit)
	return fromAssign(assign, numParts)
}

// refine performs label-propagation style boundary refinement: each vertex
// may move to the neighboring part where most of its neighbors live, if the
// move respects the balance limit. A few passes capture most of the gain.
func refine(g *graph.Graph, assign []int32, sizes []int, numParts, capLimit int) {
	n := g.NumVertices()
	gain := make([]int, numParts)
	for pass := 0; pass < 4; pass++ {
		moved := 0
		for v := int32(0); v < int32(n); v++ {
			cur := assign[v]
			for i := range gain {
				gain[i] = 0
			}
			for _, u := range g.InNeighbors(v) {
				gain[assign[u]]++
			}
			for _, u := range g.OutNeighbors(v) {
				gain[assign[u]]++
			}
			best := cur
			for i := int32(0); i < int32(numParts); i++ {
				if i == cur {
					continue
				}
				if gain[i] > gain[best] && sizes[i] < capLimit {
					best = i
				}
			}
			if best != cur && gain[best] > gain[cur] {
				assign[v] = best
				sizes[cur]--
				sizes[best]++
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}
