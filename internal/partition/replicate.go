// Vertex-cut replication for the DepRep policy. Where the hybrid planner
// decides per dependency whether to cache or communicate, DepRep replicates
// every boundary vertex's multi-hop closure onto each worker that needs it
// (CoFree-GNN's communication-free vertex cut): once the replica features are
// broadcast at setup, an epoch runs without any per-layer dependency traffic.
// This file materializes those per-worker replica sets and provides the
// optional feature (re)quantization — replicas may store fp16 or int8 copies
// while owners keep full precision, trading a bounded numeric deviation for
// halved or quartered replica memory.
package partition

import (
	"fmt"
	"math"
	"sort"

	"neutronstar/internal/graph"
)

// RepQuant names a replica feature storage format.
type RepQuant string

const (
	// RepQuantOff stores replica features at full float32 precision; DepRep
	// then matches the 1-worker reference exactly (the oracle's 1e-5 bound).
	RepQuantOff RepQuant = "off"
	// RepQuantFP16 stores replica features as IEEE 754 binary16. Round-trip
	// error is at most 2⁻¹¹ relative for values in the half-precision normal
	// range (see RequantizeErrorBound).
	RepQuantFP16 RepQuant = "fp16"
	// RepQuantInt8 stores replica features as symmetric per-row int8 with an
	// absmax scale. Round-trip error is at most max|row|/254 per element.
	RepQuantInt8 RepQuant = "int8"
)

// ParseRepQuant validates a replica quantization name; the empty string means
// off.
func ParseRepQuant(s string) (RepQuant, error) {
	switch RepQuant(s) {
	case "", RepQuantOff:
		return RepQuantOff, nil
	case RepQuantFP16:
		return RepQuantFP16, nil
	case RepQuantInt8:
		return RepQuantInt8, nil
	}
	return "", fmt.Errorf("partition: unknown replica quantization %q (off, fp16, int8)", s)
}

// CompressionFactor returns the replica storage compression a format buys
// relative to float32: off 1×, fp16 2×, int8 4×. The cost model prices
// replica memory and the setup broadcast with this factor.
func CompressionFactor(q RepQuant) float64 {
	switch q {
	case RepQuantFP16:
		return 2
	case RepQuantInt8:
		return 4
	}
	return 1
}

// ReplicaPlan holds the per-worker vertex-cut replica closure of a fully
// replicated (DepRep) execution.
type ReplicaPlan struct {
	// Sets[i][k] lists the non-owned vertices worker i replicates at
	// representation level k (k = 0 holds feature replicas), ascending.
	// Levels run 0..L-1: nothing consumes a replica's h^(L).
	Sets [][][]int32
	// NumVertices is |V| of the underlying graph.
	NumVertices int
}

// BuildReplicas computes every worker's replica closure for levels 0..L-1.
// The closure is the fixpoint the replicated dataflow needs: level L-1 holds
// the worker's remote dependencies (non-owned in-neighbor sources of owned
// vertices), and level k additionally holds the non-owned in-neighbors of
// every level-k+1 replica — exactly the set a worker must recompute locally
// so that no layer ever waits on a peer. Dependencies appear at every level
// (each layer consumes them), which the downward self-chain provides.
func BuildReplicas(g *graph.Graph, p *Partition, levels int) *ReplicaPlan {
	rp := &ReplicaPlan{
		Sets:        make([][][]int32, p.NumParts),
		NumVertices: g.NumVertices(),
	}
	for i := 0; i < p.NumParts; i++ {
		rp.Sets[i] = make([][]int32, levels)
		if levels == 0 {
			continue
		}
		deps := make(map[int32]struct{})
		for _, v := range p.Parts[i] {
			for _, u := range g.InNeighbors(v) {
				if p.Assign[u] != int32(i) {
					deps[u] = struct{}{}
				}
			}
		}
		cur := deps
		for k := levels - 1; k >= 0; k-- {
			rp.Sets[i][k] = sortedKeys(cur)
			if k == 0 {
				break
			}
			next := make(map[int32]struct{}, len(cur))
			for v := range cur {
				next[v] = struct{}{} // self chain: h^(k)_v needs h^(k-1)_v
				for _, w := range g.InNeighbors(v) {
					if p.Assign[w] != int32(i) {
						next[w] = struct{}{}
					}
				}
			}
			cur = next
		}
	}
	return rp
}

// Replicas returns the total level-0 (feature) replica count across workers.
func (rp *ReplicaPlan) Replicas() int {
	n := 0
	for _, sets := range rp.Sets {
		if len(sets) > 0 {
			n += len(sets[0])
		}
	}
	return n
}

// Factor returns the vertex replication factor: (|V| + feature replicas)/|V|.
// 1.0 means no replication (a single worker or a dependency-free cut).
func (rp *ReplicaPlan) Factor() float64 {
	if rp.NumVertices == 0 {
		return 1
	}
	return float64(rp.NumVertices+rp.Replicas()) / float64(rp.NumVertices)
}

// Requantize round-trips row through the format's storage representation in
// place: the row afterwards holds exactly the values a worker would decode
// from a stored replica. The function is deterministic, so every worker
// replicating the same vertex holds bit-identical values.
func Requantize(q RepQuant, row []float32) {
	switch q {
	case RepQuantFP16:
		for i, x := range row {
			row[i] = f16to32(f32to16(x))
		}
	case RepQuantInt8:
		var absmax float32
		for _, x := range row {
			if a := float32(math.Abs(float64(x))); a > absmax {
				absmax = a
			}
		}
		if absmax == 0 {
			return
		}
		scale := absmax / 127
		for i, x := range row {
			step := math.RoundToEven(float64(x / scale))
			if step > 127 {
				step = 127
			} else if step < -127 {
				step = -127
			}
			row[i] = float32(step) * scale
		}
	}
}

// RequantizeErrorBound returns the documented per-element round-trip error
// bound of a format for a row with the given absolute maximum: fp16 is
// 2⁻¹¹·|x| relative (half an ulp of the 10-bit mantissa) plus 2⁻²⁵ absolute
// for the subnormal range; int8 is half a quantization step, absmax/254.
// Off is exact.
func RequantizeErrorBound(q RepQuant, absmax float64) float64 {
	switch q {
	case RepQuantFP16:
		return absmax/2048 + 0x1p-25
	case RepQuantInt8:
		return absmax / 254
	}
	return 0
}

// f32to16 converts a float32 to IEEE 754 binary16 bits with round-to-nearest-
// even; overflow saturates to infinity, NaN stays NaN.
func f32to16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127 + 15
	mant := bits & 0x7FFFFF
	switch {
	case exp >= 31:
		if bits&0x7FFFFFFF > 0x7F800000 {
			return sign | 0x7E00 // NaN
		}
		return sign | 0x7C00 // Inf (incl. overflow)
	case exp <= 0:
		if exp < -10 {
			return sign // underflows to zero
		}
		// Subnormal: shift the implicit leading 1 into the mantissa.
		mant |= 0x800000
		shift := uint32(14 - exp)
		m := mant >> shift
		rem := mant & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && m&1 == 1) {
			m++ // may carry into the exponent field, which is correct
		}
		return sign | uint16(m)
	default:
		m := mant >> 13
		rem := mant & 0x1FFF
		if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			m++ // mantissa overflow carries into the exponent, which is correct
		}
		return sign | uint16(exp)<<10 + uint16(m)
	}
}

// f16to32 converts IEEE 754 binary16 bits to float32 (exact).
func f16to32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x3FF)
	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (mant&0x3FF)<<13)
	case exp == 31:
		return math.Float32frombits(sign | 0x7F800000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

func sortedKeys(m map[int32]struct{}) []int32 {
	out := make([]int32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
