// Package partition assigns graph vertices to workers. NeutronStar decouples
// graph partitioning from dependency partitioning (§3, "Graph Partitioning");
// this package provides the three algorithms the paper evaluates against in
// Figure 15: chunk-based (Gemini-style contiguous ranges balanced by edges),
// a METIS-like multi-seed BFS grower with boundary refinement, and Fennel
// streaming partitioning. All three return the same Partition structure, so
// engines are oblivious to which algorithm produced the assignment.
package partition

import (
	"fmt"

	"neutronstar/internal/graph"
)

// Algorithm names a partitioning strategy.
type Algorithm string

const (
	// Chunk is contiguous-range partitioning balanced on α|V|+|E| (Gemini).
	Chunk Algorithm = "chunk"
	// Metis is a METIS-like BFS-grown partitioning with refinement.
	Metis Algorithm = "metis"
	// Fennel is streaming partitioning with the Fennel objective.
	Fennel Algorithm = "fennel"
)

// Partition maps every vertex to exactly one of NumParts workers.
type Partition struct {
	NumParts int
	// Assign[v] is the worker that owns vertex v.
	Assign []int32
	// Parts[i] lists the vertices owned by worker i in ascending order.
	Parts [][]int32
}

// Owner returns the worker owning vertex v.
func (p *Partition) Owner(v int32) int32 { return p.Assign[v] }

// PartSize returns |V_i| for worker i.
func (p *Partition) PartSize(i int) int { return len(p.Parts[i]) }

// Validate checks the structural invariants: every vertex appears in exactly
// one part, parts agree with Assign, and part lists are ascending.
func (p *Partition) Validate(numVertices int) error {
	if len(p.Assign) != numVertices {
		return fmt.Errorf("partition: %d assignments for %d vertices", len(p.Assign), numVertices)
	}
	seen := make([]bool, numVertices)
	total := 0
	for i, part := range p.Parts {
		prev := int32(-1)
		for _, v := range part {
			if v <= prev {
				return fmt.Errorf("partition: part %d not strictly ascending at %d", i, v)
			}
			prev = v
			if int(v) >= numVertices {
				return fmt.Errorf("partition: part %d contains out-of-range vertex %d", i, v)
			}
			if seen[v] {
				return fmt.Errorf("partition: vertex %d in multiple parts", v)
			}
			seen[v] = true
			if p.Assign[v] != int32(i) {
				return fmt.Errorf("partition: vertex %d in part %d but assigned %d", v, i, p.Assign[v])
			}
			total++
		}
	}
	if total != numVertices {
		return fmt.Errorf("partition: %d of %d vertices assigned", total, numVertices)
	}
	return nil
}

// fromAssign builds the Parts lists from an Assign array.
func fromAssign(assign []int32, numParts int) *Partition {
	p := &Partition{NumParts: numParts, Assign: assign, Parts: make([][]int32, numParts)}
	counts := make([]int, numParts)
	for _, w := range assign {
		counts[w]++
	}
	for i := range p.Parts {
		p.Parts[i] = make([]int32, 0, counts[i])
	}
	for v, w := range assign {
		p.Parts[w] = append(p.Parts[w], int32(v))
	}
	return p
}

// New partitions g into numParts using the named algorithm.
func New(algo Algorithm, g *graph.Graph, numParts int) (*Partition, error) {
	if numParts <= 0 {
		return nil, fmt.Errorf("partition: numParts = %d", numParts)
	}
	switch algo {
	case Chunk:
		return chunkPartition(g, numParts), nil
	case Metis:
		return multilevelPartition(g, numParts), nil
	case Fennel:
		return fennelPartition(g, numParts), nil
	default:
		return nil, fmt.Errorf("partition: unknown algorithm %q", algo)
	}
}

// chunkPartition splits vertices into contiguous ranges so that each range
// carries roughly the same α|V_i| + |E_i| load, the balancing objective of
// Gemini that NeutronStar adopts as its default.
func chunkPartition(g *graph.Graph, numParts int) *Partition {
	const alpha = 8 // weight of a vertex relative to an edge, as in Gemini
	n := g.NumVertices()
	assign := make([]int32, n)
	totalLoad := int64(n)*alpha + int64(g.NumEdges())
	perPart := (totalLoad + int64(numParts) - 1) / int64(numParts)
	part := int32(0)
	var acc int64
	for v := 0; v < n; v++ {
		assign[v] = part
		acc += alpha + int64(g.InDegree(int32(v)))
		if acc >= perPart && int(part) < numParts-1 {
			part++
			acc = 0
		}
	}
	return fromAssign(assign, numParts)
}

// Quality summarises how a partition interacts with a graph.
type Quality struct {
	// EdgeCut is the number of edges whose endpoints live on different
	// workers — exactly the dependencies the engines must cache or
	// communicate.
	EdgeCut int
	// CutRatio is EdgeCut / |E|.
	CutRatio float64
	// MaxLoad / MinLoad are the largest and smallest α|V_i|+|E_i| loads.
	MaxLoad, MinLoad int64
	// Imbalance is MaxLoad / mean load.
	Imbalance float64
}

// Evaluate computes partition quality metrics against g.
func Evaluate(p *Partition, g *graph.Graph) Quality {
	const alpha = 8
	var q Quality
	loads := make([]int64, p.NumParts)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		loads[p.Assign[v]] += alpha + int64(g.InDegree(v))
		for _, u := range g.InNeighbors(v) {
			if p.Assign[u] != p.Assign[v] {
				q.EdgeCut++
			}
		}
	}
	if g.NumEdges() > 0 {
		q.CutRatio = float64(q.EdgeCut) / float64(g.NumEdges())
	}
	q.MinLoad = loads[0]
	var total int64
	for _, l := range loads {
		total += l
		if l > q.MaxLoad {
			q.MaxLoad = l
		}
		if l < q.MinLoad {
			q.MinLoad = l
		}
	}
	if total > 0 {
		q.Imbalance = float64(q.MaxLoad) * float64(p.NumParts) / float64(total)
	}
	return q
}
