package partition

import (
	"testing"
	"testing/quick"

	"neutronstar/internal/dataset"
	"neutronstar/internal/graph"
	"neutronstar/internal/tensor"
)

func testGraph(t testing.TB, n int, avgDeg float64, seed uint64) *graph.Graph {
	t.Helper()
	d := dataset.Load(dataset.Spec{
		Name: "t", Vertices: n, AvgDegree: avgDeg, FeatureDim: 4,
		NumClasses: 4, HiddenDim: 4, Gen: dataset.GenRMAT, Seed: seed,
	})
	return d.Graph
}

func TestAllAlgorithmsValid(t *testing.T) {
	g := testGraph(t, 1000, 8, 1)
	for _, algo := range []Algorithm{Chunk, Metis, Fennel} {
		for _, parts := range []int{1, 2, 4, 7, 16} {
			p, err := New(algo, g, parts)
			if err != nil {
				t.Fatalf("%s/%d: %v", algo, parts, err)
			}
			if err := p.Validate(g.NumVertices()); err != nil {
				t.Fatalf("%s/%d: %v", algo, parts, err)
			}
			if p.NumParts != parts {
				t.Fatalf("%s: NumParts = %d", algo, p.NumParts)
			}
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	g := testGraph(t, 10, 2, 2)
	if _, err := New("bogus", g, 2); err == nil {
		t.Fatal("expected error")
	}
	if _, err := New(Chunk, g, 0); err == nil {
		t.Fatal("expected error for 0 parts")
	}
}

func TestChunkIsContiguous(t *testing.T) {
	g := testGraph(t, 500, 6, 3)
	p, _ := New(Chunk, g, 4)
	// Assignments must be non-decreasing over vertex ids.
	for v := 1; v < g.NumVertices(); v++ {
		if p.Assign[v] < p.Assign[v-1] {
			t.Fatalf("chunk assignment decreases at %d", v)
		}
	}
}

func TestChunkBalancesLoad(t *testing.T) {
	g := testGraph(t, 2000, 10, 4)
	p, _ := New(Chunk, g, 8)
	q := Evaluate(p, g)
	if q.Imbalance > 1.5 {
		t.Fatalf("chunk imbalance %v", q.Imbalance)
	}
}

func TestMetisBeatsChunkOnCut(t *testing.T) {
	// SBM graphs have community structure a cut-aware partitioner exploits.
	d := dataset.Load(dataset.Spec{
		Name: "sbm", Vertices: 2000, AvgDegree: 10, FeatureDim: 4,
		NumClasses: 8, HiddenDim: 4, Gen: dataset.GenSBM, Homophily: 0.9, Seed: 5,
	})
	chunk, _ := New(Chunk, d.Graph, 8)
	metis, _ := New(Metis, d.Graph, 8)
	qc, qm := Evaluate(chunk, d.Graph), Evaluate(metis, d.Graph)
	if qm.EdgeCut >= qc.EdgeCut {
		t.Fatalf("metis cut %d >= chunk cut %d", qm.EdgeCut, qc.EdgeCut)
	}
}

func TestFennelCutReasonable(t *testing.T) {
	d := dataset.Load(dataset.Spec{
		Name: "sbm", Vertices: 2000, AvgDegree: 10, FeatureDim: 4,
		NumClasses: 8, HiddenDim: 4, Gen: dataset.GenSBM, Homophily: 0.9, Seed: 6,
	})
	chunk, _ := New(Chunk, d.Graph, 8)
	fennel, _ := New(Fennel, d.Graph, 8)
	qc, qf := Evaluate(chunk, d.Graph), Evaluate(fennel, d.Graph)
	if float64(qf.EdgeCut) > 1.05*float64(qc.EdgeCut) {
		t.Fatalf("fennel cut %d much worse than chunk %d", qf.EdgeCut, qc.EdgeCut)
	}
	if qf.Imbalance > 1.25 {
		t.Fatalf("fennel imbalance %v", qf.Imbalance)
	}
}

func TestMetisBalance(t *testing.T) {
	g := testGraph(t, 3000, 8, 7)
	p, _ := New(Metis, g, 8)
	maxSize, minSize := 0, g.NumVertices()
	for i := 0; i < 8; i++ {
		s := p.PartSize(i)
		if s > maxSize {
			maxSize = s
		}
		if s < minSize {
			minSize = s
		}
	}
	mean := g.NumVertices() / 8
	if maxSize > mean*13/10 {
		t.Fatalf("metis part too large: %d vs mean %d", maxSize, mean)
	}
}

func TestSinglePartHasZeroCut(t *testing.T) {
	g := testGraph(t, 300, 5, 8)
	for _, algo := range []Algorithm{Chunk, Metis, Fennel} {
		p, _ := New(algo, g, 1)
		q := Evaluate(p, g)
		if q.EdgeCut != 0 {
			t.Fatalf("%s: single part has cut %d", algo, q.EdgeCut)
		}
	}
}

func TestOwnerMatchesParts(t *testing.T) {
	g := testGraph(t, 400, 6, 9)
	p, _ := New(Fennel, g, 5)
	for i, part := range p.Parts {
		for _, v := range part {
			if p.Owner(v) != int32(i) {
				t.Fatalf("Owner(%d) = %d, in part %d", v, p.Owner(v), i)
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := testGraph(t, 100, 4, 10)
	p, _ := New(Chunk, g, 4)
	p.Assign[0] = 3 // contradicts Parts
	if err := p.Validate(g.NumVertices()); err == nil {
		t.Fatal("Validate missed corrupted assignment")
	}
}

func TestMoreParts_ThanVertices(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{Src: 0, Dst: 1}})
	for _, algo := range []Algorithm{Chunk, Fennel} {
		p, err := New(algo, g, 8)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := p.Validate(3); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

// Property: every algorithm covers all vertices exactly once on random graphs.
func TestQuickPartitionCoverage(t *testing.T) {
	f := func(seed uint64, n8, p8 uint8) bool {
		n := int(n8%200) + 16
		parts := int(p8%8) + 1
		rng := tensor.NewRNG(seed)
		edges := make([]graph.Edge, n*3)
		for i := range edges {
			edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		for _, algo := range []Algorithm{Chunk, Metis, Fennel} {
			p, err := New(algo, g, parts)
			if err != nil || p.Validate(n) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMetis10k(b *testing.B) {
	g := testGraph(b, 10000, 10, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		multilevelPartition(g, 8)
	}
}

func BenchmarkFennel10k(b *testing.B) {
	g := testGraph(b, 10000, 10, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fennelPartition(g, 8)
	}
}

func TestMultilevelBeatsBFSOnCut(t *testing.T) {
	d := dataset.Load(dataset.Spec{
		Name: "sbm-ml", Vertices: 4000, AvgDegree: 10, FeatureDim: 4,
		NumClasses: 8, HiddenDim: 4, Gen: dataset.GenSBM, Homophily: 0.9, Seed: 77,
	})
	ml := multilevelPartition(d.Graph, 8)
	bfs := metisBFSPartition(d.Graph, 8)
	if err := ml.Validate(d.Graph.NumVertices()); err != nil {
		t.Fatal(err)
	}
	qm := Evaluate(ml, d.Graph)
	qb := Evaluate(bfs, d.Graph)
	// On a block-structured graph both find the planted communities; the
	// multilevel result must be at least at parity with single-level BFS
	// (its advantage is robustness and scalability, not this easy case).
	if float64(qm.EdgeCut) > 1.05*float64(qb.EdgeCut) {
		t.Fatalf("multilevel cut %d worse than BFS %d", qm.EdgeCut, qb.EdgeCut)
	}
	if qm.Imbalance > 1.35 {
		t.Fatalf("multilevel imbalance %v", qm.Imbalance)
	}
	// Determinism: repeated runs produce the identical assignment.
	ml2 := multilevelPartition(d.Graph, 8)
	for v := range ml.Assign {
		if ml.Assign[v] != ml2.Assign[v] {
			t.Fatalf("multilevel partition nondeterministic at vertex %d", v)
		}
	}
}

func TestMultilevelSmallGraphFallback(t *testing.T) {
	g := graph.MustFromEdges(10, []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}})
	p := multilevelPartition(g, 4)
	if err := p.Validate(10); err != nil {
		t.Fatal(err)
	}
}

func TestCoarsenPreservesTotalWeight(t *testing.T) {
	d := dataset.Load(dataset.Spec{
		Name: "c", Vertices: 1000, AvgDegree: 8, FeatureDim: 4,
		NumClasses: 4, HiddenDim: 4, Gen: dataset.GenRMAT, Seed: 13,
	})
	wg := buildWeighted(d.Graph)
	total := wg.totalVertexWeight()
	coarse, f2c := coarsen(wg)
	if coarse == nil {
		t.Fatal("coarsening made no progress on a dense graph")
	}
	if coarse.totalVertexWeight() != total {
		t.Fatalf("coarse weight %d != fine %d", coarse.totalVertexWeight(), total)
	}
	if coarse.numVertices() >= wg.numVertices() {
		t.Fatal("coarsening did not shrink the graph")
	}
	for v, c := range f2c {
		if c < 0 || int(c) >= coarse.numVertices() {
			t.Fatalf("vertex %d mapped to invalid coarse id %d", v, c)
		}
	}
}
