package partition

import (
	"math"

	"neutronstar/internal/graph"
)

// fennelPartition implements Fennel streaming partitioning (Tsourakakis et
// al., WSDM'14). Vertices arrive in id order; each is placed on the part
// maximising |N(v) ∩ S_i| − α·γ·|S_i|^{γ−1}, i.e. neighbor affinity minus a
// superlinear size penalty, under a hard capacity limit.
func fennelPartition(g *graph.Graph, numParts int) *Partition {
	n := g.NumVertices()
	m := g.NumEdges()
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	if numParts == 1 {
		for i := range assign {
			assign[i] = 0
		}
		return fromAssign(assign, 1)
	}

	const gamma = 1.5
	// α from the paper: m * k^(γ-1) / n^γ.
	alpha := float64(m) * math.Pow(float64(numParts), gamma-1) / math.Pow(float64(n), gamma)
	if alpha == 0 {
		alpha = 1
	}
	capLimit := int(1.1*float64(n)/float64(numParts)) + 1
	sizes := make([]int, numParts)
	affinity := make([]int, numParts)

	for v := int32(0); v < int32(n); v++ {
		for i := range affinity {
			affinity[i] = 0
		}
		// Count already-placed neighbors (undirected view) per part.
		for _, u := range g.InNeighbors(v) {
			if assign[u] >= 0 {
				affinity[assign[u]]++
			}
		}
		for _, u := range g.OutNeighbors(v) {
			if assign[u] >= 0 {
				affinity[assign[u]]++
			}
		}
		best, bestScore := -1, math.Inf(-1)
		for i := 0; i < numParts; i++ {
			if sizes[i] >= capLimit {
				continue
			}
			score := float64(affinity[i]) - alpha*gamma*math.Pow(float64(sizes[i]), gamma-1)
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 { // every part at capacity (cannot happen with 1.1 slack, but stay safe)
			for i := 0; i < numParts; i++ {
				if sizes[i] < sizes[maxIdx(sizes)] || best < 0 {
					best = i
				}
			}
		}
		assign[v] = int32(best)
		sizes[best]++
	}
	return fromAssign(assign, numParts)
}

func maxIdx(s []int) int {
	b := 0
	for i, v := range s {
		if v > s[b] {
			b = i
		}
	}
	return b
}
