package partition

import (
	"math"
	"math/rand"
	"testing"
)

// bruteReplicaSet is the recursive specification BuildReplicas's downward
// iteration must match: need(v, k) marks v at level k and, for k > 0, needs
// v itself and its non-owned in-neighbors at k-1 (the self chain plus the
// aggregation inputs).
func bruteReplicaSet(t *testing.T, g interface {
	InNeighbors(int32) []int32
	NumVertices() int
}, p *Partition, worker, levels int) []map[int32]struct{} {
	t.Helper()
	sets := make([]map[int32]struct{}, levels)
	for k := range sets {
		sets[k] = make(map[int32]struct{})
	}
	var need func(v int32, k int)
	need = func(v int32, k int) {
		if _, ok := sets[k][v]; ok {
			return
		}
		sets[k][v] = struct{}{}
		if k == 0 {
			return
		}
		need(v, k-1)
		for _, u := range g.InNeighbors(v) {
			if p.Assign[u] != int32(worker) {
				need(u, k-1)
			}
		}
	}
	for _, v := range p.Parts[worker] {
		for _, u := range g.InNeighbors(v) {
			if p.Assign[u] != int32(worker) {
				need(u, levels-1)
			}
		}
	}
	return sets
}

func TestBuildReplicasMatchesRecursiveClosure(t *testing.T) {
	for _, tc := range []struct {
		n      int
		deg    float64
		parts  int
		levels int
		seed   uint64
	}{
		{60, 4, 3, 2, 7},
		{120, 6, 4, 3, 8},
		{40, 3, 5, 1, 9},
	} {
		g := testGraph(t, tc.n, tc.deg, tc.seed)
		p, err := New(Chunk, g, tc.parts)
		if err != nil {
			t.Fatal(err)
		}
		rp := BuildReplicas(g, p, tc.levels)
		for w := 0; w < tc.parts; w++ {
			want := bruteReplicaSet(t, g, p, w, tc.levels)
			for k := 0; k < tc.levels; k++ {
				got := rp.Sets[w][k]
				if len(got) != len(want[k]) {
					t.Fatalf("n=%d parts=%d: worker %d level %d: %d replicas, recursion says %d",
						tc.n, tc.parts, w, k, len(got), len(want[k]))
				}
				for i, v := range got {
					if _, ok := want[k][v]; !ok {
						t.Fatalf("worker %d level %d: vertex %d not in the recursive closure", w, k, v)
					}
					if i > 0 && got[i-1] >= v {
						t.Fatalf("worker %d level %d: replica list not strictly ascending at %d", w, k, i)
					}
					if p.Assign[v] == int32(w) {
						t.Fatalf("worker %d level %d: owned vertex %d listed as replica", w, k, v)
					}
				}
			}
		}
	}
}

func TestReplicaFactor(t *testing.T) {
	g := testGraph(t, 200, 6, 4)
	// One worker owns everything: no replicas, factor exactly 1.
	p1, err := New(Chunk, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f := BuildReplicas(g, p1, 2).Factor(); f != 1 {
		t.Fatalf("1-worker factor = %g, want 1", f)
	}
	p4, err := New(Chunk, g, 4)
	if err != nil {
		t.Fatal(err)
	}
	rp := BuildReplicas(g, p4, 2)
	f := rp.Factor()
	if f <= 1 {
		t.Fatalf("4-worker factor = %g, want > 1 on a connected RMAT graph", f)
	}
	want := float64(g.NumVertices()+rp.Replicas()) / float64(g.NumVertices())
	if f != want {
		t.Fatalf("factor = %g, want (|V|+replicas)/|V| = %g", f, want)
	}
}

func TestParseRepQuant(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want RepQuant
		comp float64
	}{
		{"", RepQuantOff, 1},
		{"off", RepQuantOff, 1},
		{"fp16", RepQuantFP16, 2},
		{"int8", RepQuantInt8, 4},
	} {
		got, err := ParseRepQuant(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseRepQuant(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if c := CompressionFactor(got); c != tc.comp {
			t.Fatalf("CompressionFactor(%v) = %g, want %g", got, c, tc.comp)
		}
	}
	if _, err := ParseRepQuant("bf16"); err == nil {
		t.Fatal("expected an error for an unknown format")
	}
}

// TestRequantizeWithinBound round-trips random rows through each format and
// checks every element against the documented RequantizeErrorBound.
func TestRequantizeWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, q := range []RepQuant{RepQuantOff, RepQuantFP16, RepQuantInt8} {
		for trial := 0; trial < 50; trial++ {
			// Mix magnitudes across trials: unit-scale rows, tiny rows near the
			// fp16 subnormal range, and large rows near its overflow threshold.
			scale := []float32{1, 1e-5, 1e4}[trial%3]
			row := make([]float32, 33)
			for i := range row {
				row[i] = (2*rng.Float32() - 1) * scale
			}
			orig := append([]float32(nil), row...)
			var absmax float64
			for _, x := range orig {
				if a := math.Abs(float64(x)); a > absmax {
					absmax = a
				}
			}
			Requantize(q, row)
			bound := RequantizeErrorBound(q, absmax)
			for i := range row {
				diff := math.Abs(float64(row[i]) - float64(orig[i]))
				if diff > bound {
					t.Fatalf("%s trial %d: element %d moved %g > bound %g (x=%g absmax=%g)",
						q, trial, i, diff, bound, orig[i], absmax)
				}
			}
			// Requantizing twice must be a no-op: the round-trip lands on a
			// representable value.
			again := append([]float32(nil), row...)
			Requantize(q, again)
			for i := range row {
				if again[i] != row[i] {
					t.Fatalf("%s trial %d: requantize not idempotent at %d: %g -> %g",
						q, trial, i, row[i], again[i])
				}
			}
		}
	}
}

// TestF16RoundTripExactness pins the binary16 codec on exactly representable
// values and the special cases.
func TestF16RoundTripExactness(t *testing.T) {
	for _, x := range []float32{0, 1, -1, 0.5, 2, 1024, -0.25, 65504, float32(0x1p-14), float32(0x1p-24)} {
		if got := f16to32(f32to16(x)); got != x {
			t.Fatalf("f16 round trip of representable %g = %g", x, got)
		}
	}
	if got := f16to32(f32to16(100000)); !math.IsInf(float64(got), 1) {
		t.Fatalf("overflow should saturate to +Inf, got %g", got)
	}
	if got := f16to32(f32to16(float32(math.NaN()))); !math.IsNaN(float64(got)) {
		t.Fatalf("NaN should survive, got %g", got)
	}
	if got := f16to32(f32to16(1e-10)); got != 0 {
		t.Fatalf("deep underflow should flush to zero, got %g", got)
	}
}
