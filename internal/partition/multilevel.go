package partition

import (
	"sort"

	"neutronstar/internal/graph"
)

// This file implements a multilevel partitioner in the style of METIS
// (Karypis & Kumar): coarsen the graph by heavy-edge matching until it is
// small, partition the coarsest graph, then project the assignment back up,
// refining at every level. It replaces the single-level BFS growth as the
// "metis" algorithm's core when the graph is large enough to benefit.

// weightedGraph is an undirected multigraph with vertex and edge weights,
// in adjacency-list form, used only during multilevel partitioning.
type weightedGraph struct {
	vwgt []int32   // vertex weights (collapsed vertex counts)
	adj  [][]wedge // symmetrised adjacency
}

type wedge struct {
	to int32
	w  int32
}

func (wg *weightedGraph) numVertices() int { return len(wg.vwgt) }

func (wg *weightedGraph) totalVertexWeight() int64 {
	var t int64
	for _, w := range wg.vwgt {
		t += int64(w)
	}
	return t
}

// buildWeighted symmetrises the directed input graph, merging parallel edges.
func buildWeighted(g *graph.Graph) *weightedGraph {
	n := g.NumVertices()
	wg := &weightedGraph{vwgt: make([]int32, n), adj: make([][]wedge, n)}
	for i := range wg.vwgt {
		wg.vwgt[i] = 1
	}
	type key struct{ a, b int32 }
	counts := make(map[key]int32, g.NumEdges())
	for v := int32(0); v < int32(n); v++ {
		for _, u := range g.InNeighbors(v) {
			if u == v {
				continue
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			counts[key{a, b}]++
		}
	}
	for k, w := range counts {
		wg.adj[k.a] = append(wg.adj[k.a], wedge{to: k.b, w: w})
		wg.adj[k.b] = append(wg.adj[k.b], wedge{to: k.a, w: w})
	}
	wg.sortAdj()
	return wg
}

// sortAdj orders every adjacency list by neighbor id: map-built lists are
// otherwise iteration-order random, which would make matching — and the
// whole partition — nondeterministic.
func (wg *weightedGraph) sortAdj() {
	for _, a := range wg.adj {
		sort.Slice(a, func(i, j int) bool { return a[i].to < a[j].to })
	}
}

// level records one coarsening step: fineToCoarse maps fine vertices to
// their coarse representative.
type level struct {
	fine         *weightedGraph
	fineToCoarse []int32
}

// coarsen performs one round of heavy-edge matching and contraction.
// Returns nil when the graph cannot shrink meaningfully further.
func coarsen(wg *weightedGraph) (*weightedGraph, []int32) {
	n := wg.numVertices()
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	// Visit vertices in degree order (low first) and match each unmatched
	// vertex to its heaviest unmatched neighbor.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return len(wg.adj[order[a]]) < len(wg.adj[order[b]])
	})
	matched := 0
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best := int32(-1)
		var bestW int32
		for _, e := range wg.adj[v] {
			if match[e.to] == -1 && e.to != v && e.w > bestW {
				best, bestW = e.to, e.w
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
			matched += 2
		} else {
			match[v] = v
		}
	}
	if matched < n/10 {
		return nil, nil // diminishing returns; stop coarsening
	}

	// Assign coarse ids.
	fineToCoarse := make([]int32, n)
	for i := range fineToCoarse {
		fineToCoarse[i] = -1
	}
	next := int32(0)
	for v := int32(0); v < int32(n); v++ {
		if fineToCoarse[v] != -1 {
			continue
		}
		fineToCoarse[v] = next
		if m := match[v]; m != v && m >= 0 {
			fineToCoarse[m] = next
		}
		next++
	}

	// Contract.
	coarse := &weightedGraph{vwgt: make([]int32, next), adj: make([][]wedge, next)}
	for v := int32(0); v < int32(n); v++ {
		coarse.vwgt[fineToCoarse[v]] += wg.vwgt[v]
	}
	type key struct{ a, b int32 }
	acc := make(map[key]int32)
	for v := int32(0); v < int32(n); v++ {
		cv := fineToCoarse[v]
		for _, e := range wg.adj[v] {
			cu := fineToCoarse[e.to]
			if cu == cv {
				continue
			}
			a, b := cv, cu
			if a > b {
				a, b = b, a
			}
			acc[key{a, b}] += e.w
		}
	}
	for k, w := range acc {
		// Each undirected edge was accumulated from both endpoints.
		w /= 2
		if w == 0 {
			w = 1
		}
		coarse.adj[k.a] = append(coarse.adj[k.a], wedge{to: k.b, w: w})
		coarse.adj[k.b] = append(coarse.adj[k.b], wedge{to: k.a, w: w})
	}
	coarse.sortAdj()
	return coarse, fineToCoarse
}

// cutWeight returns the weighted undirected cut of an assignment.
func cutWeight(wg *weightedGraph, assign []int32) int64 {
	var cut int64
	for v := int32(0); v < int32(wg.numVertices()); v++ {
		for _, e := range wg.adj[v] {
			if assign[e.to] != assign[v] {
				cut += int64(e.w)
			}
		}
	}
	return cut / 2
}

// initialAssign partitions the coarsest graph: several greedy-growth
// attempts with different seed sets, each refined, keeping the best cut
// (the multilevel paradigm's standard multi-start initial phase — cheap
// because the coarsest graph is tiny).
func initialAssign(wg *weightedGraph, numParts int) []int32 {
	const attempts = 8
	var best []int32
	bestCut := int64(-1)
	for a := 0; a < attempts; a++ {
		cand := initialAssignOnce(wg, numParts, a)
		refineWeighted(wg, cand, numParts)
		if c := cutWeight(wg, cand); bestCut < 0 || c < bestCut {
			best, bestCut = cand, c
		}
	}
	return best
}

// initialAssignOnce grows parts greedily from one seed set, balanced on
// vertex weight. attempt rotates the seed choice.
func initialAssignOnce(wg *weightedGraph, numParts, attempt int) []int32 {
	n := wg.numVertices()
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = -1
	}
	capLimit := wg.totalVertexWeight()/int64(numParts) + int64(wg.totalVertexWeight())/int64(numParts*10) + 1
	loads := make([]int64, numParts)

	// Seed with heavy vertices spread across parts, rotated per attempt.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return wg.vwgt[order[a]] > wg.vwgt[order[b]] })
	frontiers := make([][]int32, numParts)
	for p := 0; p < numParts && p < n; p++ {
		v := order[(p+attempt*numParts)%n]
		if assign[v] != -1 {
			// Seed collision after rotation: pick the next free vertex.
			for _, w := range order {
				if assign[w] == -1 {
					v = w
					break
				}
			}
		}
		assign[v] = int32(p)
		loads[p] += int64(wg.vwgt[v])
		frontiers[p] = []int32{v}
	}
	active := true
	for active {
		active = false
		for p := 0; p < numParts; p++ {
			var next []int32
			for _, v := range frontiers[p] {
				for _, e := range wg.adj[v] {
					if assign[e.to] == -1 && loads[p]+int64(wg.vwgt[e.to]) <= capLimit {
						assign[e.to] = int32(p)
						loads[p] += int64(wg.vwgt[e.to])
						next = append(next, e.to)
					}
				}
			}
			frontiers[p] = next
			if len(next) > 0 {
				active = true
			}
		}
	}
	for v := int32(0); v < int32(n); v++ {
		if assign[v] == -1 {
			best := 0
			for p := 1; p < numParts; p++ {
				if loads[p] < loads[best] {
					best = p
				}
			}
			assign[v] = int32(best)
			loads[best] += int64(wg.vwgt[v])
		}
	}
	return assign
}

// refineWeighted runs boundary label propagation on a weighted graph,
// moving vertices to the neighboring part with the greatest edge-weight
// gain subject to the weight balance limit.
func refineWeighted(wg *weightedGraph, assign []int32, numParts int) {
	loads := make([]int64, numParts)
	for v := int32(0); v < int32(wg.numVertices()); v++ {
		loads[assign[v]] += int64(wg.vwgt[v])
	}
	capLimit := wg.totalVertexWeight()/int64(numParts) + wg.totalVertexWeight()/int64(numParts*10) + 1
	gain := make([]int64, numParts)
	for pass := 0; pass < 8; pass++ {
		moved := 0
		for v := int32(0); v < int32(wg.numVertices()); v++ {
			cur := assign[v]
			for i := range gain {
				gain[i] = 0
			}
			for _, e := range wg.adj[v] {
				gain[assign[e.to]] += int64(e.w)
			}
			best := cur
			for p := int32(0); p < int32(numParts); p++ {
				if p == cur {
					continue
				}
				if gain[p] > gain[best] && loads[p]+int64(wg.vwgt[v]) <= capLimit {
					best = p
				}
			}
			if best != cur && gain[best] > gain[cur] {
				assign[v] = best
				loads[cur] -= int64(wg.vwgt[v])
				loads[best] += int64(wg.vwgt[v])
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// multilevelPartition runs the full coarsen → partition → uncoarsen+refine
// pipeline. It falls back to the single-level BFS partitioner for graphs
// already small relative to the part count.
func multilevelPartition(g *graph.Graph, numParts int) *Partition {
	if numParts == 1 || g.NumVertices() <= numParts*16 {
		return metisBFSPartition(g, numParts)
	}
	wg := buildWeighted(g)
	var levels []level
	cur := wg
	for cur.numVertices() > numParts*32 && len(levels) < 24 {
		coarse, f2c := coarsen(cur)
		if coarse == nil {
			break
		}
		levels = append(levels, level{fine: cur, fineToCoarse: f2c})
		cur = coarse
	}
	assign := initialAssign(cur, numParts)
	refineWeighted(cur, assign, numParts)
	// Uncoarsen with refinement at every level.
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fineAssign := make([]int32, lv.fine.numVertices())
		for v := range fineAssign {
			fineAssign[v] = assign[lv.fineToCoarse[v]]
		}
		assign = fineAssign
		refineWeighted(lv.fine, assign, numParts)
	}
	return fromAssign(assign, numParts)
}
