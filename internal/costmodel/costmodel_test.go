package costmodel

import (
	"testing"
	"time"

	"neutronstar/internal/graph"
)

func TestProbePositiveCosts(t *testing.T) {
	c := Probe(100e6, 100*time.Microsecond)
	if c.Tv <= 0 || c.Te <= 0 || c.Tc <= 0 {
		t.Fatalf("non-positive cost: %+v", c)
	}
}

func TestProbeUnthrottledCommCost(t *testing.T) {
	c := Probe(0, 0)
	if c.Tc <= 0 {
		t.Fatal("unthrottled Tc must still be positive")
	}
	fast := Probe(1e9, time.Microsecond)
	slow := Probe(1e6, time.Microsecond)
	if slow.Tc <= fast.Tc {
		t.Fatalf("slower network must cost more: slow %v fast %v", slow.Tc, fast.Tc)
	}
}

func TestCommCostScalesWithDim(t *testing.T) {
	c := Costs{Tc: 2}
	if c.CommCost(10) != 20 || c.CommCost(0) != 0 {
		t.Fatal("CommCost wrong")
	}
}

func TestSubtreeCost(t *testing.T) {
	c := Costs{Tv: 1, Te: 0.5}
	// Level 0: 1 vertex, 2 edges at dim 4; level 1: 3 vertices, 0 edges at dim 2.
	got := c.SubtreeCost([]int{1, 3}, []int{2, 0}, []int{4, 2})
	want := (1*1.0+2*0.5)*4 + (3*1.0+0)*2
	if got != want {
		t.Fatalf("SubtreeCost = %v, want %v", got, want)
	}
}

func TestSubtreeCounterChain(t *testing.T) {
	// 0 -> 1 -> 2 -> 3: subtree of 3 at depth 2 charges level0={3,1 edge},
	// level1={2, 1 edge}.
	g := graph.MustFromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}})
	sc := NewSubtreeCounter(g)
	verts, edges := sc.Count(3, 2, nil)
	if verts[0] != 1 || edges[0] != 1 {
		t.Fatalf("level0 = %d/%d", verts[0], edges[0])
	}
	if verts[1] != 1 || edges[1] != 1 {
		t.Fatalf("level1 = %d/%d", verts[1], edges[1])
	}
}

func TestSubtreeCounterExclusion(t *testing.T) {
	// Diamond into 3: 1,2 -> 3; 0 -> 1; 0 -> 2.
	g := graph.MustFromEdges(4, []graph.Edge{
		{Src: 1, Dst: 3}, {Src: 2, Dst: 3}, {Src: 0, Dst: 1}, {Src: 0, Dst: 2},
	})
	sc := NewSubtreeCounter(g)
	verts, edges := sc.Count(3, 2, nil)
	if verts[0] != 1 || edges[0] != 2 {
		t.Fatalf("level0 = %d/%d", verts[0], edges[0])
	}
	if verts[1] != 2 || edges[1] != 2 {
		t.Fatalf("level1 = %d/%d", verts[1], edges[1])
	}
	// Excluding vertex 1: it is not expanded or charged at level 1.
	verts, edges = sc.Count(3, 2, func(v int32) bool { return v == 1 })
	if verts[1] != 1 || edges[1] != 1 {
		t.Fatalf("excluded level1 = %d/%d", verts[1], edges[1])
	}
}

func TestSubtreeCounterSharedChildCountedOnce(t *testing.T) {
	// 0 feeds both 1 and 2, which feed 3: vertex 0 appears twice in the
	// expansion but must be charged once (the μ-style within-subtree dedup).
	g := graph.MustFromEdges(4, []graph.Edge{
		{Src: 1, Dst: 3}, {Src: 2, Dst: 3}, {Src: 0, Dst: 1}, {Src: 0, Dst: 2},
	})
	sc := NewSubtreeCounter(g)
	verts, _ := sc.Count(3, 3, nil)
	if verts[2] != 1 {
		t.Fatalf("shared child charged %d times", verts[2])
	}
}

func TestSubtreeCounterDepthZero(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{Src: 0, Dst: 1}})
	sc := NewSubtreeCounter(g)
	verts, edges := sc.Count(1, 0, nil)
	if len(verts) != 0 || len(edges) != 0 {
		t.Fatal("depth 0 must be empty")
	}
}

// TestCostBoundaries is the table of Eq. 1–2 edge cases: zero dimensions,
// empty subtrees, zero-degree roots, and the degenerate all-zero environment.
func TestCostBoundaries(t *testing.T) {
	c := Costs{Tv: 3, Te: 5, Tc: 7}
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"comm dim 0", c.CommCost(0), 0},
		{"comm dim 1", c.CommCost(1), 7},
		{"subtree empty", c.SubtreeCost(nil, nil, nil), 0},
		{"subtree zero-degree root", c.SubtreeCost([]int{1}, []int{0}, []int{4}), 3 * 4},
		{"subtree two levels", c.SubtreeCost([]int{1, 2}, []int{2, 3}, []int{4, 2}),
			(3+2*5)*4 + (2*3+3*5)*2},
		{"zero env", Costs{}.SubtreeCost([]int{5}, []int{9}, []int{4}), 0},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s: got %g, want %g", tc.name, tc.got, tc.want)
		}
	}
}
