package costmodel

import (
	"math"
	"testing"
)

func TestFitComputeFactorsExactRecovery(t *testing.T) {
	const wantTv, wantTe = 3e-7, 8e-8
	// Three layers with distinct vertex/edge element ratios.
	v := []float64{1000, 4000, 500}
	e := []float64{8000, 12000, 9000}
	s := make([]float64, len(v))
	for i := range s {
		s[i] = wantTv*v[i] + wantTe*e[i]
	}
	tv, te, ok := FitComputeFactors(v, e, s)
	if !ok {
		t.Fatal("fit rejected a well-conditioned exact system")
	}
	if math.Abs(tv-wantTv)/wantTv > 1e-9 || math.Abs(te-wantTe)/wantTe > 1e-9 {
		t.Fatalf("recovered (%g, %g), want (%g, %g)", tv, te, wantTv, wantTe)
	}
}

func TestFitComputeFactorsOverdeterminedLeastSquares(t *testing.T) {
	const wantTv, wantTe = 1e-6, 2e-7
	const noise = 1e-5
	// Each observation appears twice with equal-and-opposite additive noise,
	// which cancels exactly in the normal equations: the least-squares
	// solution of the noisy system is the noiseless one.
	v := []float64{100, 300, 100, 300}
	e := []float64{500, 200, 500, 200}
	s := make([]float64, len(v))
	for i := range s {
		exact := wantTv*v[i] + wantTe*e[i]
		if i < 2 {
			s[i] = exact + noise
		} else {
			s[i] = exact - noise
		}
	}
	tv, te, ok := FitComputeFactors(v, e, s)
	if !ok {
		t.Fatal("fit rejected an over-determined system")
	}
	if math.Abs(tv-wantTv)/wantTv > 1e-9 || math.Abs(te-wantTe)/wantTe > 1e-9 {
		t.Fatalf("recovered (%g, %g), want (%g, %g)", tv, te, wantTv, wantTe)
	}
}

func TestFitComputeFactorsSingular(t *testing.T) {
	// Identical vertex/edge ratio on every layer: Tv and Te are not
	// separable and the fit must decline rather than return garbage.
	v := []float64{100, 200, 400}
	e := []float64{300, 600, 1200}
	s := []float64{1e-3, 2e-3, 4e-3}
	if _, _, ok := FitComputeFactors(v, e, s); ok {
		t.Fatal("fit accepted a singular system")
	}
}

func TestFitComputeFactorsRejectsNegative(t *testing.T) {
	// Observations that force one factor negative: heavy-edge layers are
	// faster than light-edge layers, contradicting the model shape.
	v := []float64{100, 100}
	e := []float64{100, 1000}
	s := []float64{1e-3, 1e-4}
	if _, _, ok := FitComputeFactors(v, e, s); ok {
		t.Fatal("fit accepted observations implying a negative factor")
	}
}

func TestFitComputeFactorsTooFewObservations(t *testing.T) {
	if _, _, ok := FitComputeFactors([]float64{1}, []float64{1}, []float64{1}); ok {
		t.Fatal("fit accepted a single observation")
	}
	if _, _, ok := FitComputeFactors([]float64{1, 2}, []float64{1}, []float64{1, 2}); ok {
		t.Fatal("fit accepted mismatched lengths")
	}
}
