// Package costmodel quantifies the two costs NeutronStar trades off
// (paper §3): the redundant-computation cost t_r of caching a dependency's
// multi-hop subtree (Eq. 1) and the communication cost t_c of fetching its
// representation every layer (Eq. 2). Environment factors T_v, T_e and T_c
// are probed on a small test graph exactly as Algorithm 4 line 1 prescribes,
// or constructed directly when an experiment wants to force a regime
// (the paper does the same in Figure 11 by disabling probing).
package costmodel

import (
	"time"

	"neutronstar/internal/autograd"
	"neutronstar/internal/graph"
	"neutronstar/internal/tensor"
)

// Costs holds the probed environment factors, all in seconds per tensor
// element (a row element of dimension d costs T*d).
type Costs struct {
	// Tv is the per-dimension cost of a vertex-associated computation.
	Tv float64
	// Te is the per-dimension cost of an edge-associated computation.
	Te float64
	// Tc is the per-dimension cost of communicating one vertex row.
	Tc float64
}

// CommCost returns t_c^l(u) = Tc · d^(l-1) (Eq. 2): the cost of fetching one
// dependency row of the given dimension.
func (c Costs) CommCost(dim int) float64 { return c.Tc * float64(dim) }

// SubtreeCost returns the redundant-computation cost of a cached dependency
// subtree described by per-level vertex and edge counts (level k holds the
// counts of newly replicated vertices/edges whose layer-k computation must
// be repeated locally), with dims[k] the representation dimension at level
// k. This is Eq. 1 with the |V_i^k(u)\V_i| and |E_i^k(u)\E_i| terms already
// counted by the caller (which also applies the V_rep overlap exclusion).
func (c Costs) SubtreeCost(vertsPerLevel, edgesPerLevel []int, dims []int) float64 {
	var t float64
	for k := range vertsPerLevel {
		d := float64(dims[k])
		t += (float64(vertsPerLevel[k])*c.Tv + float64(edgesPerLevel[k])*c.Te) * d
	}
	return t
}

// Probe measures T_v and T_e by timing a small tape-based training kernel —
// the same differentiable gather → edge op → scatter-add → dense transform →
// backward path the engines execute — so the factors include the autograd
// bookkeeping and allocation costs a bare micro-kernel would miss. T_c
// derives from the network profile (bytesPerSec, latencyPerMsg); a zero
// bytesPerSec means an unthrottled in-memory fabric, for which the channel
// overhead is approximated.
//
// Probing is intentionally crude — so is the paper's: it only needs enough
// fidelity to rank dependencies, not to predict absolute runtimes.
func Probe(bytesPerSec float64, latencyPerMsg time.Duration) Costs {
	const (
		probeVerts = 2048
		probeDim   = 64
		probeDeg   = 8
		reps       = 3
	)
	rng := tensor.NewRNG(0xC057)
	h := tensor.RandNormal(probeVerts, probeDim, 0, 1, rng)
	w := tensor.RandNormal(probeDim, probeDim, 0, 1, rng)
	numEdges := probeVerts * probeDeg
	src := make([]int32, numEdges)
	dst := make([]int32, numEdges)
	norm := make([]float32, numEdges)
	for i := range src {
		src[i] = int32(rng.Intn(probeVerts))
		dst[i] = int32(rng.Intn(probeVerts))
		norm[i] = 0.5
	}
	seed := tensor.New(probeVerts, probeDim)
	seed.Fill(1)

	// Edge path: gather + per-edge scale + scatter-add, forward and backward.
	start := time.Now()
	for r := 0; r < reps; r++ {
		tape := autograd.NewTape()
		hv := tape.Leaf(h, true, "h")
		edges := tape.MulColVec(tape.Gather(hv, src), norm)
		agg := tape.ScatterAddRows(edges, dst, probeVerts)
		tape.Backward(agg, seed)
	}
	te := time.Since(start).Seconds() / float64(reps*numEdges*probeDim)

	// Vertex path: dense transform, forward and backward.
	start = time.Now()
	for r := 0; r < reps; r++ {
		tape := autograd.NewTape()
		hv := tape.Leaf(h, true, "h")
		wv := tape.Constant(w, "w")
		out := tape.MatMul(hv, wv)
		tape.Backward(out, seed)
	}
	tv := time.Since(start).Seconds() / float64(reps*probeVerts*probeDim)

	// Communication runs in both directions (representations forward,
	// gradients backward), matching the doubled compute measured above, and
	// every communicated row additionally pays its share of per-layer
	// synchronisation (mailbox waits, pack/unpack, barrier slack) that pure
	// byte accounting misses; the synchronisation coefficient was calibrated
	// once against the Fig 2a sweep.
	const bidirectional = 2
	const syncOverhead = 2
	tc := bidirectional * syncOverhead * commCostPerElement(bytesPerSec, latencyPerMsg)
	return Costs{Tv: tv, Te: te, Tc: tc}
}

// commCostPerElement converts a network profile into T_c. Each float32
// element is 4 bytes and crosses both the sender's egress and the receiver's
// ingress pacer; per-message latency is amortised over a typical chunk.
func commCostPerElement(bytesPerSec float64, latencyPerMsg time.Duration) float64 {
	if bytesPerSec <= 0 {
		// Unthrottled in-process fabric: channel hop + copy, measured to be
		// on the order of tens of nanoseconds per element.
		return 25e-9
	}
	const bytesPerElement = 4
	const typicalChunkElements = 32 * 1024
	perElement := 2 * bytesPerElement / bytesPerSec
	perElement += latencyPerMsg.Seconds() / typicalChunkElements
	return perElement
}

// SubtreeCounter walks dependency subtrees on a graph and produces the
// per-level replica counts SubtreeCost consumes, excluding vertices for
// which exclude returns true (owned vertices and the already-replicated
// V_rep set).
type SubtreeCounter struct {
	g *graph.Graph
}

// NewSubtreeCounter returns a counter over g.
func NewSubtreeCounter(g *graph.Graph) *SubtreeCounter {
	return &SubtreeCounter{g: g}
}

// Count returns per-level newly-replicated vertex and edge counts for the
// dependency subtree rooted at u with the given depth (depth = l-1 for a
// layer-l dependency: levels l-1 down to... level index 0 of the result is
// the root's level). Level 0 of the returned slices corresponds to dimension
// dims[l-1], level 1 to dims[l-2], and so on; callers align them.
//
// exclude(v) reports that v needs no replication (owned locally or already
// in V_rep); excluded vertices still terminate expansion but are not
// charged, and their in-edges are not charged either.
func (sc *SubtreeCounter) Count(u int32, depth int, exclude func(int32) bool) (verts, edges []int) {
	verts = make([]int, depth)
	edges = make([]int, depth)
	if depth == 0 {
		return verts, edges
	}
	visited := map[int32]struct{}{u: {}}
	frontier := []int32{u}
	for level := 0; level < depth; level++ {
		var next []int32
		for _, v := range frontier {
			// Replicating v's layer computation at this level charges v's
			// vertex op and its in-edges' edge ops.
			verts[level]++
			edges[level] += sc.g.InDegree(v)
			if level+1 < depth {
				for _, w := range sc.g.InNeighbors(v) {
					if _, ok := visited[w]; ok {
						continue
					}
					visited[w] = struct{}{}
					if exclude != nil && exclude(w) {
						continue
					}
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return verts, edges
}
