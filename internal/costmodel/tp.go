package costmodel

// Tensor-parallel (DepTP) cost term. A DepTP layer holds the full graph on
// every worker but splits the feature dimension d^(l-1) into N contiguous
// column ranges; per-vertex dependency traffic disappears and is replaced by
// two slice-exchange collectives whose volume is |V|·d/N-shaped — independent
// of the degree distribution, which is the whole point (NeutronTP). The
// planner prices that volume with the same per-element factor T_c Eq. 2 uses
// (already calibrated for the bidirectional forward/backward exchange), so
// the 3-way comparison against t_r and t_c stays in one unit system.

// TPColRange returns worker j's half-open column range [lo, hi) of a
// dimension split into n contiguous slices. Slices differ in width by at
// most one; when d < n the trailing workers get zero-width slices (they
// compute nothing and exchange nothing at that layer).
func TPColRange(dim, n, j int) (lo, hi int) {
	return dim * j / n, dim * (j + 1) / n
}

// TPVolume returns the per-epoch forward received element volume of one
// worker at a tensor-parallel layer (the backward re-scatter mirrors it and
// is covered by Tc's bidirectional calibration).
//
// For a slice-separable layer (slice=true) worker j receives the other
// workers' column slices of its owned rows in the re-gather,
// |owned|·(d−width_j) elements, plus — beyond layer 1, whose feature slices
// are assembled once at setup — every non-owned row's share of its own
// column slice in the slice-scatter, (|V|−|owned|)·width_j elements.
//
// For a non-separable layer (assemble dataflow) worker j receives every
// non-owned row at full width, (|V|−|owned|)·d elements; at layer 1 the
// full-width feature matrix is replicated once at setup and costs nothing
// per epoch.
//
// With a single worker every term is zero: DepTP degenerates to local
// compute, matching the other policies' single-worker degeneracy.
func TPVolume(slice, firstLayer bool, totalVerts, ownedVerts, dim, colWidth int) int64 {
	if slice {
		v := int64(ownedVerts) * int64(dim-colWidth)
		if !firstLayer {
			v += int64(totalVerts-ownedVerts) * int64(colWidth)
		}
		return v
	}
	if firstLayer {
		return 0
	}
	return int64(totalVerts-ownedVerts) * int64(dim)
}

// TPCost prices a slice-exchange element volume: elems · Tc, the Eq. 2
// factor applied to collective volume instead of boundary-vertex volume.
func (c Costs) TPCost(elems int64) float64 { return c.Tc * float64(elems) }
