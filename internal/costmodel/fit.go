package costmodel

// FitComputeFactors recovers empirical T_v and T_e from measured layer times
// by least squares: each observation models
//
//	seconds[i] ≈ Tv·vertexElems[i] + Te·edgeElems[i]
//
// where vertexElems/edgeElems are vertex-op and edge-op counts already
// multiplied by the layer's representation dimension (the same element units
// the probe divides by). The 2×2 normal equations are solved directly.
//
// ok is false when the system is singular or ill-conditioned — e.g. a single
// observation, or layers whose vertex/edge ratios are identical so the two
// factors cannot be separated. Callers should then fall back to uniformly
// scaling the probed factors by the aggregate measured/predicted ratio.
func FitComputeFactors(vertexElems, edgeElems, seconds []float64) (tv, te float64, ok bool) {
	if len(vertexElems) != len(seconds) || len(edgeElems) != len(seconds) || len(seconds) < 2 {
		return 0, 0, false
	}
	var svv, sve, see, svs, ses float64
	for i := range seconds {
		v, e, s := vertexElems[i], edgeElems[i], seconds[i]
		svv += v * v
		sve += v * e
		see += e * e
		svs += v * s
		ses += e * s
	}
	det := svv*see - sve*sve
	// Relative singularity check: det is a product of squared magnitudes, so
	// compare against the scale of the matrix rather than an absolute epsilon.
	if scale := svv * see; scale <= 0 || det <= 1e-9*scale {
		return 0, 0, false
	}
	tv = (see*svs - sve*ses) / det
	te = (svv*ses - sve*svs) / det
	if tv < 0 || te < 0 {
		// Negative factors mean the observations contradict the model shape;
		// a uniform rescale of the probe is more trustworthy than these.
		return 0, 0, false
	}
	return tv, te, true
}
