package costmodel

// Replication (DepRep) cost term. A replicated layer eliminates per-epoch
// dependency traffic entirely: every remote dependency's multi-hop subtree is
// materialized as local vertex copies (CoFree-GNN's vertex cut) and recomputed
// against local state, so Eq. 2's t_c never applies. What replication pays
// instead is (a) replica storage — priced per replicated vertex below, with
// the feature/activation rows divided by the quantization compression factor
// (CAGNET-style: fp16 halves, int8 quarters the stored bytes) while the edge
// index slots stay full-size — and (b) a one-time replica feature broadcast at
// setup, priced with the same T_c the per-epoch terms use but reported
// separately: like the 2-way modes' layer-1 feature fetch, it is amortised
// over the whole run and therefore excluded from the per-epoch argmin.

// RepReplicaBytes prices the storage of one replicated vertex held at
// representation levels 0..topLevel: 4 bytes per element of each level's row,
// divided by the quantization compression factor (1 = uncompressed), plus
// 8 uncompressed bytes per in-edge for the replica's edge index slots.
// dims is the d^(0)..d^(L) chain; levels beyond it are ignored.
func RepReplicaBytes(dims []int, topLevel, inDegree int, compression float64) int64 {
	if compression < 1 {
		compression = 1
	}
	var feat int64
	for k := 0; k <= topLevel && k < len(dims); k++ {
		feat += int64(4 * dims[k])
	}
	return int64(float64(feat)/compression) + int64(8*inDegree)
}

// RepSetupCost prices the one-time replica feature broadcast of a worker:
// each of its replicas' level-0 rows (dimension dim0) crosses the fabric once
// at setup, compressed by the quantization factor. This is reported cost, not
// per-epoch cost — the planner's argmin never sees it.
func (c Costs) RepSetupCost(replicas, dim0 int, compression float64) float64 {
	if compression < 1 {
		compression = 1
	}
	return c.Tc * float64(replicas) * float64(dim0) / compression
}
