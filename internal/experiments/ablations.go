package experiments

import (
	"neutronstar/internal/comm"
	"neutronstar/internal/engine"
	"neutronstar/internal/nn"
)

// Ablations isolates each engine mechanism on one workload (GCN on the
// given graph, ECS profile): ring vs naive send order, lock-free vs locked
// enqueue, chunk-pipelined overlap on/off, source-specific chunks vs
// ROC-style whole-block broadcast, and ring all-reduce vs parameter server.
// These complement Figure 9 (which stacks R/L/P cumulatively) by toggling
// one mechanism at a time.
func Ablations(sc Scale, graphName string) []Row {
	ds := load(graphName)
	base := func() engine.Options {
		return stdOpts(engine.DepComm, nn.GCN, sc.Workers, comm.ProfileECS)
	}
	measure := func(mut func(*engine.Options)) float64 {
		o := base()
		mut(&o)
		return epochMillis(ds, o, sc.Epochs)
	}
	var rows []Row
	add := func(label string, off, on float64) {
		rows = append(rows, newRow(label, "off_ms", off, "on_ms", on, "speedup", off/on))
	}
	add("ring-scheduling",
		measure(func(o *engine.Options) {}),
		measure(func(o *engine.Options) { o.Ring = true }))
	add("lock-free-enqueue",
		measure(func(o *engine.Options) {}),
		measure(func(o *engine.Options) { o.LockFree = true }))
	add("chunk-overlap",
		measure(func(o *engine.Options) {}),
		measure(func(o *engine.Options) { o.Overlap = true }))
	add("chunked-vs-broadcast",
		measure(func(o *engine.Options) { o.Broadcast = true }),
		measure(func(o *engine.Options) {}))
	add("allreduce-vs-paramserver",
		measure(func(o *engine.Options) { o.ParamServer = true }),
		measure(func(o *engine.Options) {}))
	return rows
}
