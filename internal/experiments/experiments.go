// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) at this reproduction's scale. Each experiment is a
// function returning structured rows; cmd/nsbench prints them and
// bench_test.go wraps them as benchmarks. EXPERIMENTS.md records the
// paper-reported numbers next to what these functions measure.
package experiments

import (
	"fmt"
	"runtime"
	"time"

	"neutronstar/internal/comm"
	"neutronstar/internal/dataset"
	"neutronstar/internal/engine"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
)

// Scale bounds an experiment's size so the full suite stays runnable on one
// machine; Quick trims it further for smoke tests.
type Scale struct {
	// Workers is the simulated cluster size m (the paper uses 16 physical
	// nodes; 8 in-process workers exhibit the same tradeoffs at our graph
	// scale).
	Workers int
	// Epochs is how many measured epochs each timing averages (after one
	// warmup epoch).
	Epochs int
	// Graphs is the dataset subset for multi-graph experiments.
	Graphs []string
}

// DefaultScale is the full experiment configuration.
func DefaultScale() Scale {
	return Scale{Workers: 8, Epochs: 3, Graphs: dataset.BigGraphNames()}
}

// QuickScale is a cut-down configuration for smoke tests and -short runs.
func QuickScale() Scale {
	return Scale{Workers: 4, Epochs: 1, Graphs: []string{"google", "reddit"}}
}

// Row is one printable result line.
type Row struct {
	Label  string
	Values map[string]float64
	Order  []string // column order for printing
}

// Format renders the row.
func (r Row) Format() string {
	s := fmt.Sprintf("%-24s", r.Label)
	for _, k := range r.Order {
		s += fmt.Sprintf("  %s=%.2f", k, r.Values[k])
	}
	return s
}

// newRow builds a row preserving column order.
func newRow(label string, kv ...any) Row {
	r := Row{Label: label, Values: map[string]float64{}}
	for i := 0; i+1 < len(kv); i += 2 {
		k := kv[i].(string)
		r.Order = append(r.Order, k)
		switch v := kv[i+1].(type) {
		case float64:
			r.Values[k] = v
		case int:
			r.Values[k] = float64(v)
		case time.Duration:
			r.Values[k] = float64(v.Microseconds()) / 1000
		default:
			panic(fmt.Sprintf("experiments: bad value %T", kv[i+1]))
		}
	}
	return r
}

// defaultCollector, when set via SetCollector, is attached to every engine
// an experiment builds that does not bring its own collector, so a whole
// nsbench run can be traced with one -trace flag.
var defaultCollector *metrics.Collector

// SetCollector installs a collector that epochMillis-driven experiments
// record spans into. Pass nil to detach.
func SetCollector(c *metrics.Collector) { defaultCollector = c }

// epochMillis builds the engine, runs one warmup epoch plus `epochs`
// measured epochs, and returns the mean per-epoch wall time in milliseconds.
func epochMillis(ds *dataset.Dataset, opts engine.Options, epochs int) float64 {
	if opts.Collector == nil {
		opts.Collector = defaultCollector
	}
	e, err := engine.NewEngine(ds, opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	defer e.Close()
	e.RunEpoch()
	// Collect before timing so another configuration's garbage is not
	// charged to this one — on a single-core host GC pauses are the main
	// source of run-to-run variance.
	runtime.GC()
	start := time.Now()
	for i := 0; i < epochs; i++ {
		e.RunEpoch()
	}
	return float64(time.Since(start).Microseconds()) / 1000 / float64(epochs)
}

// stdOpts returns the baseline engine options for an experiment.
func stdOpts(mode engine.Mode, model nn.ModelKind, workers int, profile comm.NetworkProfile) engine.Options {
	return engine.Options{
		Workers: workers, Mode: mode, Model: model,
		Profile: profile, Seed: 20220612,
	}
}

// withRLP applies the three communication optimisations (ring scheduling,
// lock-free enqueue, overlap).
func withRLP(o engine.Options, r, l, p bool) engine.Options {
	o.Ring, o.LockFree, o.Overlap = r, l, p
	return o
}

// load fetches a registry dataset, panicking on unknown names (experiment
// tables are static).
func load(name string) *dataset.Dataset {
	ds, err := dataset.LoadByName(name)
	if err != nil {
		panic(err)
	}
	return ds
}

// Table2 prints the dataset registry with synthetic and paper-scale stats.
func Table2() []string {
	out := []string{dataset.Table2Header()}
	for _, name := range append(dataset.BigGraphNames(), dataset.CitationNames()...) {
		out = append(out, dataset.Table2Row(load(name)))
	}
	return out
}

// Fig2a compares vanilla DepCache and DepComm per-epoch time on four graph
// inputs (2-layer GCN, ECS profile), reproducing Figure 2(a).
func Fig2a(sc Scale) []Row {
	var rows []Row
	for _, name := range []string{"google", "pokec", "reddit", "livejournal"} {
		ds := load(name)
		cache := epochMillis(ds, stdOpts(engine.DepCache, nn.GCN, sc.Workers, comm.ProfileECS), sc.Epochs)
		commT := epochMillis(ds, stdOpts(engine.DepComm, nn.GCN, sc.Workers, comm.ProfileECS), sc.Epochs)
		rows = append(rows, newRow(name,
			"depcache_ms", cache, "depcomm_ms", commT, "cache_over_comm", cache/commT))
	}
	return rows
}

// Fig2b varies the hidden layer size on the Google graph (Figure 2(b)).
// Paper dims 64/256/640 scale to 8/32/80 alongside the 1/8 feature scaling.
func Fig2b(sc Scale) []Row {
	ds := load("google")
	var rows []Row
	for _, hidden := range []int{8, 32, 80} {
		oc := stdOpts(engine.DepCache, nn.GCN, sc.Workers, comm.ProfileECS)
		oc.Hidden = hidden
		om := stdOpts(engine.DepComm, nn.GCN, sc.Workers, comm.ProfileECS)
		om.Hidden = hidden
		cache := epochMillis(ds, oc, sc.Epochs)
		commT := epochMillis(ds, om, sc.Epochs)
		rows = append(rows, newRow(fmt.Sprintf("hidden=%d", hidden),
			"depcache_ms", cache, "depcomm_ms", commT, "cache_over_comm", cache/commT))
	}
	return rows
}

// Fig2c runs the same workload on the two cluster profiles (Figure 2(c)):
// the slow fabric (ECS) favours DepCache, the fast fabric (IBV) DepComm.
func Fig2c(sc Scale) []Row {
	ds := load("google")
	var rows []Row
	for _, p := range []comm.NetworkProfile{comm.ProfileECS, comm.ProfileIBV} {
		cache := epochMillis(ds, stdOpts(engine.DepCache, nn.GCN, sc.Workers, p), sc.Epochs)
		commT := epochMillis(ds, stdOpts(engine.DepComm, nn.GCN, sc.Workers, p), sc.Epochs)
		rows = append(rows, newRow(p.Name,
			"depcache_ms", cache, "depcomm_ms", commT, "cache_over_comm", cache/commT))
	}
	return rows
}
