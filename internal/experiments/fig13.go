package experiments

import (
	"time"

	"neutronstar/internal/baseline/distdgl"
	"neutronstar/internal/baseline/roc"
	"neutronstar/internal/comm"
	"neutronstar/internal/engine"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
)

// UtilizationReport is one system's resource profile for Figure 13.
type UtilizationReport struct {
	System string
	// AcceleratorUtil is the mean fraction of wall time a worker spends in
	// tensor compute — the analogue of the paper's GPU utilisation.
	AcceleratorUtil float64
	// HostUtil adds communication processing — the CPU utilisation analogue
	// (the paper's CPUs run comm threads; >1 means overlap across threads).
	HostUtil float64
	// SampleUtil is sampling busy time (nonzero only for DistDGL).
	SampleUtil float64
	// NetPeakMBs is the peak receive rate in MB/s; NetSmoothnessCV is the
	// coefficient of variation of the receive-rate curve (lower = smoother,
	// the property the paper credits to ring scheduling).
	NetPeakMBs      float64
	NetSmoothnessCV float64
	TotalRecvMB     float64
}

// Fig13 reproduces the utilisation study of Figure 13 (GCN on Orkut): for
// each of the five systems, run a few epochs under a metrics collector and
// summarise compute/comm/network behaviour over 100 ms buckets.
func Fig13(sc Scale, graphName string) []UtilizationReport {
	ds := load(graphName)
	epochs := sc.Epochs + 1
	var out []UtilizationReport

	run := func(system string, fn func(coll *metrics.Collector)) {
		coll := metrics.NewCollector()
		start := time.Now()
		fn(coll)
		wall := time.Since(start)
		series := coll.BuildSeries(100*time.Millisecond, sc.Workers)
		rep := UtilizationReport{
			System:          system,
			AcceleratorUtil: series.MeanUtil(metrics.Compute),
			HostUtil:        series.MeanUtil(metrics.Compute) + series.MeanUtil(metrics.Comm),
			SampleUtil:      series.MeanUtil(metrics.Sample),
			NetPeakMBs:      series.PeakNetRate() / 1e6,
			NetSmoothnessCV: series.SmoothnessCV(),
			TotalRecvMB:     float64(coll.BytesReceived()) / 1e6,
		}
		_ = wall
		out = append(out, rep)
	}

	run("distdgl", func(coll *metrics.Collector) {
		tr, err := distdgl.New(ds, distdgl.Options{
			Workers: sc.Workers, Model: nn.GCN, Seed: 1, Profile: comm.ProfileECS, Collector: coll,
		})
		if err != nil {
			panic(err)
		}
		defer tr.Close()
		for i := 0; i < epochs; i++ {
			tr.RunEpoch()
		}
	})
	run("roc", func(coll *metrics.Collector) {
		e, err := roc.New(ds, roc.Options{
			Workers: sc.Workers, Model: nn.GCN, Seed: 1, Profile: comm.ProfileECS, Collector: coll,
		})
		if err != nil {
			panic(err)
		}
		defer e.Close()
		e.Train(epochs)
	})
	engineRun := func(system string, mode engine.Mode, rlp bool) {
		run(system, func(coll *metrics.Collector) {
			opts := stdOpts(mode, nn.GCN, sc.Workers, comm.ProfileECS)
			if rlp {
				opts = withRLP(opts, true, true, true)
			}
			opts.Collector = coll
			e, err := engine.NewEngine(ds, opts)
			if err != nil {
				panic(err)
			}
			defer e.Close()
			e.Train(epochs)
		})
	}
	engineRun("depcache", engine.DepCache, false)
	engineRun("depcomm", engine.DepComm, true)
	engineRun("neutronstar", engine.Hybrid, true)
	return out
}
