package experiments

import (
	"neutronstar/internal/comm"
	"neutronstar/internal/engine"
	"neutronstar/internal/nn"
)

// Fig9 reproduces the performance-gain analysis of Figure 9: per graph, the
// per-epoch time of raw DepCache, raw DepComm and raw Hybrid, then Hybrid
// with the optimisations stacked one by one — +R (ring communication), +RL
// (lock-free enqueue), +RLP (communication/computation overlap). The paper
// reports everything as speedup over raw DepCache; the speedup columns here
// do the same.
func Fig9(sc Scale) []Row {
	var rows []Row
	for _, name := range sc.Graphs {
		ds := load(name)
		base := stdOpts(engine.DepCache, nn.GCN, sc.Workers, comm.ProfileECS)
		cache := epochMillis(ds, base, sc.Epochs)
		commT := epochMillis(ds, stdOpts(engine.DepComm, nn.GCN, sc.Workers, comm.ProfileECS), sc.Epochs)
		hy := stdOpts(engine.Hybrid, nn.GCN, sc.Workers, comm.ProfileECS)
		hybrid := epochMillis(ds, hy, sc.Epochs)
		hybridR := epochMillis(ds, withRLP(hy, true, false, false), sc.Epochs)
		hybridRL := epochMillis(ds, withRLP(hy, true, true, false), sc.Epochs)
		hybridRLP := epochMillis(ds, withRLP(hy, true, true, true), sc.Epochs)
		rows = append(rows, newRow(name,
			"depcache_ms", cache,
			"depcomm_ms", commT,
			"hybrid_ms", hybrid,
			"hybrid_R_ms", hybridR,
			"hybrid_RL_ms", hybridRL,
			"hybrid_RLP_ms", hybridRLP,
			"speedup_hybrid", cache/hybrid,
			"speedup_RLP", cache/hybridRLP,
		))
	}
	return rows
}

// Table3 reproduces the cost/benefit analysis of Table 3: the runtime of
// `epochsPer100` epochs (the paper uses 100; we scale) for DepCache, DepComm
// and Hybrid, plus the one-time hybrid dependency-partitioning time
// ("Preprocessing"), whose paper-reported overhead is at most 3%.
func Table3(sc Scale, epochs int) []Row {
	var rows []Row
	for _, name := range sc.Graphs {
		ds := load(name)
		vals := map[engine.Mode]float64{}
		var preprocess float64
		for _, mode := range []engine.Mode{engine.DepCache, engine.DepComm, engine.Hybrid} {
			opts := stdOpts(mode, nn.GCN, sc.Workers, comm.ProfileECS)
			if mode != engine.DepCache {
				opts = withRLP(opts, true, true, true)
			}
			e, err := engine.NewEngine(ds, opts)
			if err != nil {
				panic(err)
			}
			if mode == engine.Hybrid {
				preprocess = float64(e.PreprocessTime.Microseconds()) / 1000
			}
			start := nowMillis()
			for i := 0; i < epochs; i++ {
				e.RunEpoch()
			}
			vals[mode] = nowMillis() - start
			e.Close()
		}
		rows = append(rows, newRow(name,
			"depcache_ms", vals[engine.DepCache],
			"depcomm_ms", vals[engine.DepComm],
			"hybrid_ms", vals[engine.Hybrid],
			"preprocess_ms", preprocess,
			"preprocess_pct", 100*preprocess/vals[engine.Hybrid],
		))
	}
	return rows
}
