package experiments

import (
	"time"

	"neutronstar/internal/baseline/distdgl"
	"neutronstar/internal/baseline/roc"
	"neutronstar/internal/comm"
	"neutronstar/internal/dataset"
	"neutronstar/internal/engine"
	"neutronstar/internal/nn"
)

// Fig10 reproduces the overall comparison of Figure 10: per model (GCN, GIN,
// GAT) and per graph, the per-epoch time of the DistDGL-like baseline, the
// ROC-like baseline, DepCache, optimised DepComm, and optimised Hybrid
// (NeutronStar). As in the paper, ROC has no GAT (no edge NN computation)
// and its column is reported as 0 there; DistDGL's distributed GIN is also
// absent in the paper but our sampler runs it, so its number is included.
func Fig10(sc Scale) []Row {
	var rows []Row
	for _, kind := range []nn.ModelKind{nn.GCN, nn.GIN, nn.GAT} {
		for _, name := range sc.Graphs {
			ds := load(name)
			row := newRow(string(kind)+"/"+name,
				"distdgl_ms", distDGLEpochMillis(ds, kind, sc),
				"roc_ms", rocEpochMillis(ds, kind, sc),
				"depcache_ms", epochMillis(ds, stdOpts(engine.DepCache, kind, sc.Workers, comm.ProfileECS), sc.Epochs),
				"depcomm_ms", epochMillis(ds, withRLP(stdOpts(engine.DepComm, kind, sc.Workers, comm.ProfileECS), true, true, true), sc.Epochs),
				"hybrid_ms", epochMillis(ds, withRLP(stdOpts(engine.Hybrid, kind, sc.Workers, comm.ProfileECS), true, true, true), sc.Epochs),
			)
			rows = append(rows, row)
		}
	}
	return rows
}

// distDGLEpochMillis times the sampling baseline's epoch.
func distDGLEpochMillis(ds *dataset.Dataset, kind nn.ModelKind, sc Scale) float64 {
	tr, err := distdgl.New(ds, distdgl.Options{
		Workers: sc.Workers, Model: kind, Seed: 20220612, Profile: comm.ProfileECS,
	})
	if err != nil {
		return 0
	}
	defer tr.Close()
	tr.RunEpoch()
	start := time.Now()
	for i := 0; i < sc.Epochs; i++ {
		tr.RunEpoch()
	}
	return float64(time.Since(start).Microseconds()) / 1000 / float64(sc.Epochs)
}

// rocEpochMillis times the ROC-like baseline's epoch (0 when unsupported).
func rocEpochMillis(ds *dataset.Dataset, kind nn.ModelKind, sc Scale) float64 {
	e, err := roc.New(ds, roc.Options{
		Workers: sc.Workers, Model: kind, Seed: 20220612, Profile: comm.ProfileECS,
	})
	if err != nil {
		return 0 // GAT: unsupported by ROC, as in the paper
	}
	defer e.Close()
	e.RunEpoch()
	start := time.Now()
	for i := 0; i < sc.Epochs; i++ {
		e.RunEpoch()
	}
	return float64(time.Since(start).Microseconds()) / 1000 / float64(sc.Epochs)
}

// nowMillis returns a monotonic-ish milliseconds reading for interval math.
func nowMillis() float64 {
	return float64(time.Now().UnixNano()) / 1e6
}
