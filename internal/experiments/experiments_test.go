package experiments

import (
	"strings"
	"testing"

	"neutronstar/internal/nn"
)

// The experiment functions are exercised at QuickScale so the suite stays
// fast; the full-scale runs live in cmd/nsbench and the repository-level
// benchmarks.

func TestTable2(t *testing.T) {
	rows := Table2()
	if len(rows) != 11 { // header + 10 datasets
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(rows[1], "google") {
		t.Fatalf("first data row = %q", rows[1])
	}
}

func TestFig2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	sc := QuickScale()
	for _, r := range Fig2a(sc) {
		if r.Values["depcache_ms"] <= 0 || r.Values["depcomm_ms"] <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
	}
	rows := Fig2c(sc)
	if len(rows) != 2 || rows[0].Label != "ecs" || rows[1].Label != "ibv" {
		t.Fatalf("fig2c rows: %+v", rows)
	}
}

func TestFig9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	sc := QuickScale()
	sc.Graphs = []string{"google"}
	rows := Fig9(sc)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, k := range rows[0].Order {
		if rows[0].Values[k] <= 0 {
			t.Fatalf("column %s not positive: %+v", k, rows[0])
		}
	}
}

func TestTable3Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	sc := QuickScale()
	sc.Graphs = []string{"google"}
	rows := Table3(sc, 2)
	if len(rows) != 1 || rows[0].Values["preprocess_ms"] < 0 {
		t.Fatalf("table3 rows: %+v", rows)
	}
}

func TestFig10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	sc := QuickScale()
	sc.Graphs = []string{"google"}
	rows := Fig10(sc)
	if len(rows) != 3 { // 3 models x 1 graph
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if strings.HasPrefix(r.Label, string(nn.GAT)) {
			if r.Values["roc_ms"] != 0 {
				t.Fatalf("ROC should not run GAT: %+v", r)
			}
		} else if r.Values["roc_ms"] <= 0 {
			t.Fatalf("roc missing: %+v", r)
		}
		if r.Values["hybrid_ms"] <= 0 || r.Values["distdgl_ms"] <= 0 {
			t.Fatalf("missing columns: %+v", r)
		}
	}
}

func TestFig11Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	sc := QuickScale()
	rows := Fig11(sc, nn.GCN, "google")
	if len(rows) != 6 { // 5 ratios + greedy
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[5].Label != "greedy(auto)" {
		t.Fatalf("last row = %s", rows[5].Label)
	}
}

func TestFig12Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	rows := Fig12("google", []int{1, 2}, 1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFig13Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	sc := QuickScale()
	reps := Fig13(sc, "google")
	if len(reps) != 5 {
		t.Fatalf("systems = %d", len(reps))
	}
	byName := map[string]UtilizationReport{}
	for _, r := range reps {
		byName[r.System] = r
	}
	// DepCache must show the highest accelerator utilisation (pure compute),
	// DistDGL must show sampling time; these are Fig 13's headline shapes.
	if byName["depcache"].AcceleratorUtil <= byName["distdgl"].AcceleratorUtil {
		t.Fatalf("depcache accel %v <= distdgl %v",
			byName["depcache"].AcceleratorUtil, byName["distdgl"].AcceleratorUtil)
	}
	if byName["distdgl"].SampleUtil <= 0 {
		t.Fatal("distdgl recorded no sampling time")
	}
	if byName["depcache"].TotalRecvMB >= byName["depcomm"].TotalRecvMB {
		t.Fatal("depcache moved more data than depcomm")
	}
}

func TestFig14Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	sc := QuickScale()
	curves := Fig14(sc, 4, 2, 0.99)
	if len(curves) != 4 {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Points) != 2 {
			t.Fatalf("%s points = %d", c.System, len(c.Points))
		}
		if c.Points[1].Seconds <= c.Points[0].Seconds {
			t.Fatalf("%s time not cumulative", c.System)
		}
	}
}

func TestFig15Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	sc := QuickScale()
	sc.Graphs = []string{"google"}
	rows := Fig15(sc)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestTables45Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	sc := QuickScale()
	sc.Graphs = []string{"google"}
	t4 := Table4(sc)
	if len(t4) != 1 || t4[0].Values["sharedmem_ms"] <= 0 {
		t.Fatalf("table4: %+v", t4)
	}
	t5 := Table5(1)
	if len(t5) != 8 {
		t.Fatalf("table5 rows = %d", len(t5))
	}
	for _, r := range t5 {
		if strings.HasPrefix(r.Label, "gat/") && r.Values["roc_ms"] != 0 {
			t.Fatalf("ROC ran GAT: %+v", r)
		}
	}
}

func TestRowFormat(t *testing.T) {
	r := newRow("x", "a", 1.5, "b", 2)
	s := r.Format()
	if !strings.Contains(s, "a=1.50") || !strings.Contains(s, "b=2.00") {
		t.Fatalf("format = %q", s)
	}
}

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	sc := QuickScale()
	rows := Ablations(sc, "google")
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Values["off_ms"] <= 0 || r.Values["on_ms"] <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}
