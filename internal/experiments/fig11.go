package experiments

import (
	"fmt"

	"neutronstar/internal/comm"
	"neutronstar/internal/costmodel"
	"neutronstar/internal/engine"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
)

// Fig11 reproduces the DepCache–DepComm ratio sweep of Figure 11: the
// probing is disabled (fixed costs force the split) and the fraction of
// cached dependencies is swept from 0% to 100%; each run reports the
// per-epoch time plus the communication and computation busy-time
// decomposition. As in the paper (GCN on LiveJournal, GAT on Orkut), the
// endpoints are the pure engines and the optimum lies strictly between. The
// final row is the automatic greedy (Algorithm 4) for comparison.
func Fig11(sc Scale, model nn.ModelKind, graphName string) []Row {
	ds := load(graphName)
	var rows []Row
	for _, ratio := range []float64{0, 0.25, 0.5, 0.75, 1} {
		coll := metrics.NewCollector()
		opts := withRLP(stdOpts(engine.Hybrid, model, sc.Workers, comm.ProfileECS), true, true, true)
		opts.ForceRatio = true
		opts.CacheRatio = ratio
		// Fixed probe-free costs, as the paper does for this sweep.
		opts.Costs = costmodel.Costs{Tv: 1e-8, Te: 1e-9, Tc: 1e-7}
		opts.Collector = coll
		ms := epochMillis(ds, opts, sc.Epochs)
		rows = append(rows, newRow(fmt.Sprintf("cached=%.0f%%", ratio*100),
			"epoch_ms", ms,
			"comm_busy_ms", float64(coll.Busy(metrics.Comm).Microseconds())/1000/float64(sc.Epochs+1),
			"compute_busy_ms", float64(coll.Busy(metrics.Compute).Microseconds())/1000/float64(sc.Epochs+1),
		))
	}
	auto := withRLP(stdOpts(engine.Hybrid, model, sc.Workers, comm.ProfileECS), true, true, true)
	rows = append(rows, newRow("greedy(auto)", "epoch_ms", epochMillis(ds, auto, sc.Epochs)))
	return rows
}

// Fig12 reproduces the scaling study of Figure 12: per-epoch time of
// DepCache, DepComm, Hybrid (all NeutronStar codebase) and the two baselines
// as the cluster grows.
//
// Caveat for reading the absolute numbers: on the single-core host this
// reproduction targets, all m simulated workers share one CPU, so adding
// workers cannot shorten wall time the way adding physical nodes does in
// the paper. What IS reproducible — and what the slowdown_vs_min columns
// expose — is the *relative* scaling behaviour the paper reports: DepCache's
// total work grows with m (every worker's cached closure grows toward the
// whole graph, §5.5 "the redundant computation does not decrease with more
// nodes"), while DepComm/Hybrid keep total compute constant and only add
// communication; ROC degrades faster than NeutronStar because its
// whole-block transfers grow with m.
func Fig12(graphName string, sizes []int, epochs int) []Row {
	ds := load(graphName)
	var rows []Row
	base := map[string]float64{}
	for i, m := range sizes {
		sc := Scale{Workers: m, Epochs: epochs}
		vals := map[string]float64{
			"depcache_ms": epochMillis(ds, stdOpts(engine.DepCache, nn.GCN, m, comm.ProfileECS), epochs),
			"depcomm_ms":  epochMillis(ds, withRLP(stdOpts(engine.DepComm, nn.GCN, m, comm.ProfileECS), true, true, true), epochs),
			"hybrid_ms":   epochMillis(ds, withRLP(stdOpts(engine.Hybrid, nn.GCN, m, comm.ProfileECS), true, true, true), epochs),
			"roc_ms":      rocEpochMillis(ds, nn.GCN, sc),
			"distdgl_ms":  distDGLEpochMillis(ds, nn.GCN, sc),
		}
		if i == 0 {
			for k, v := range vals {
				base[k] = v
			}
		}
		row := newRow(fmt.Sprintf("%s/m=%d", graphName, m),
			"depcache_ms", vals["depcache_ms"],
			"depcomm_ms", vals["depcomm_ms"],
			"hybrid_ms", vals["hybrid_ms"],
			"roc_ms", vals["roc_ms"],
			"distdgl_ms", vals["distdgl_ms"],
		)
		for _, k := range []string{"depcache_ms", "hybrid_ms", "roc_ms"} {
			if base[k] > 0 {
				col := k[:len(k)-3] + "_vs_min"
				row.Order = append(row.Order, col)
				row.Values[col] = vals[k] / base[k]
			}
		}
		rows = append(rows, row)
	}
	return rows
}
