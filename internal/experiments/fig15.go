package experiments

import (
	"fmt"
	"time"

	"neutronstar/internal/comm"
	"neutronstar/internal/engine"
	"neutronstar/internal/nn"
	"neutronstar/internal/partition"
)

// Fig15 reproduces the graph-partitioning interplay of Figure 15: optimised
// DepComm versus optimised Hybrid under chunk-based, METIS-like and Fennel
// partitioning. The paper's claim — hybrid dependency management is
// orthogonal to graph partitioning and wins under all three — is checked by
// the hybrid_speedup column.
func Fig15(sc Scale) []Row {
	var rows []Row
	for _, name := range sc.Graphs {
		ds := load(name)
		for _, algo := range []partition.Algorithm{partition.Chunk, partition.Metis, partition.Fennel} {
			oc := withRLP(stdOpts(engine.DepComm, nn.GCN, sc.Workers, comm.ProfileECS), true, true, true)
			oc.Partitioner = algo
			oh := withRLP(stdOpts(engine.Hybrid, nn.GCN, sc.Workers, comm.ProfileECS), true, true, true)
			oh.Partitioner = algo
			commMs := epochMillis(ds, oc, sc.Epochs)
			hyMs := epochMillis(ds, oh, sc.Epochs)
			rows = append(rows, newRow(fmt.Sprintf("%s/%s", name, algo),
				"depcomm_ms", commMs,
				"hybrid_ms", hyMs,
				"hybrid_speedup", commMs/hyMs,
			))
		}
	}
	return rows
}

// Table4 reproduces the shared-memory comparison of Table 4: a
// single-machine full-graph trainer stands in for DGL-CPU/PyG-CPU (same
// computation, no partitioning or fabric), "nts_1w" is NeutronStar confined
// to one worker, and "nts_mw" is the distributed Hybrid engine. The paper's
// observation is that distributed NeutronStar wins on medium graphs.
func Table4(sc Scale) []Row {
	var rows []Row
	for _, name := range sc.Graphs {
		ds := load(name)
		// Shared-memory baseline: the reference trainer.
		model := nn.MustNewModel(nn.GCN, []int{ds.Spec.FeatureDim, ds.Spec.HiddenDim, ds.Spec.NumClasses}, 0, 7)
		engine.ReferenceTrainStep(ds.Graph, model, ds.Features, ds.Labels, ds.TrainMask) // warmup
		nn.ZeroGrads(model.Params())
		start := time.Now()
		for i := 0; i < sc.Epochs; i++ {
			engine.ReferenceTrainStep(ds.Graph, model, ds.Features, ds.Labels, ds.TrainMask)
			nn.ZeroGrads(model.Params())
		}
		refMs := float64(time.Since(start).Microseconds()) / 1000 / float64(sc.Epochs)

		nts1 := epochMillis(ds, stdOpts(engine.Hybrid, nn.GCN, 1, comm.ProfileLocal), sc.Epochs)
		ntsM := epochMillis(ds, withRLP(stdOpts(engine.Hybrid, nn.GCN, sc.Workers, comm.ProfileECS), true, true, true), sc.Epochs)
		rows = append(rows, newRow(name,
			"sharedmem_ms", refMs,
			"nts_1w_ms", nts1,
			"nts_mw_ms", ntsM,
		))
	}
	return rows
}

// Table5 reproduces the single-device comparison of Table 5: GCN and GAT on
// the small graphs, single worker, unthrottled fabric. The ROC-like engine
// column is absent for GAT, as in the paper; the shared-memory reference
// stands in for DGL/PyG.
func Table5(epochs int) []Row {
	var rows []Row
	for _, kind := range []nn.ModelKind{nn.GCN, nn.GAT} {
		for _, name := range []string{"cora", "citeseer", "pubmed", "google"} {
			ds := load(name)
			model := nn.MustNewModel(kind, []int{ds.Spec.FeatureDim, ds.Spec.HiddenDim, ds.Spec.NumClasses}, 0, 7)
			engine.ReferenceTrainStep(ds.Graph, model, ds.Features, ds.Labels, ds.TrainMask)
			nn.ZeroGrads(model.Params())
			start := time.Now()
			for i := 0; i < epochs; i++ {
				engine.ReferenceTrainStep(ds.Graph, model, ds.Features, ds.Labels, ds.TrainMask)
				nn.ZeroGrads(model.Params())
			}
			refMs := float64(time.Since(start).Microseconds()) / 1000 / float64(epochs)

			nts := epochMillis(ds, stdOpts(engine.Hybrid, kind, 1, comm.ProfileLocal), epochs)
			rocMs := 0.0
			if kind != nn.GAT {
				rocMs = epochMillis(ds, func() engine.Options {
					o := stdOpts(engine.DepComm, kind, 1, comm.ProfileLocal)
					o.Broadcast = true
					return o
				}(), epochs)
			}
			rows = append(rows, newRow(string(kind)+"/"+name,
				"sharedmem_ms", refMs,
				"roc_ms", rocMs,
				"nts_ms", nts,
			))
		}
	}
	return rows
}
