package experiments

import (
	"time"

	"neutronstar/internal/baseline/distdgl"
	"neutronstar/internal/comm"
	"neutronstar/internal/engine"
	"neutronstar/internal/nn"
)

// AccuracyPoint is one sample of a time-to-accuracy curve.
type AccuracyPoint struct {
	Seconds  float64
	Accuracy float64
	Epoch    int
}

// AccuracyCurve is one system's convergence trajectory for Figure 14.
type AccuracyCurve struct {
	System string
	Points []AccuracyPoint
	// Best is the highest test accuracy reached; TimeToTarget is the first
	// wall-clock time the target accuracy was met (0 if never).
	Best         float64
	TimeToTarget float64
}

// Fig14 reproduces the accuracy comparison of Figure 14 (GCN on the
// Reddit-like graph): time-to-accuracy curves for Hybrid, DepComm and
// DepCache (full-graph, identical convergence per epoch, different epoch
// times) and the sampling baseline (more epochs needed, capped accuracy).
// target is the accuracy threshold used for TimeToTarget (the paper picks
// the sampling baseline's best, 93.92%).
func Fig14(sc Scale, maxEpochs, evalEvery int, target float64) []AccuracyCurve {
	ds := load("reddit")
	var out []AccuracyCurve

	engineCurve := func(system string, mode engine.Mode) {
		opts := withRLP(stdOpts(mode, nn.GCN, sc.Workers, comm.ProfileECS), true, true, true)
		if mode == engine.DepCache {
			opts = stdOpts(mode, nn.GCN, sc.Workers, comm.ProfileECS)
		}
		opts.LR = 0.02
		e, err := engine.NewEngine(ds, opts)
		if err != nil {
			panic(err)
		}
		defer e.Close()
		c := AccuracyCurve{System: system}
		var cumulative time.Duration // training time only; evaluation is out-of-band
		for ep := 1; ep <= maxEpochs; ep++ {
			t0 := time.Now()
			e.RunEpoch()
			cumulative += time.Since(t0)
			if ep%evalEvery == 0 {
				acc := e.Evaluate(ds.TestMask)
				c.Points = append(c.Points, AccuracyPoint{
					Seconds: cumulative.Seconds(), Accuracy: acc, Epoch: ep,
				})
				if acc > c.Best {
					c.Best = acc
				}
				if c.TimeToTarget == 0 && acc >= target {
					c.TimeToTarget = cumulative.Seconds()
				}
			}
		}
		out = append(out, c)
	}
	engineCurve("hybrid", engine.Hybrid)
	engineCurve("depcomm", engine.DepComm)
	engineCurve("depcache", engine.DepCache)

	// DepCache-with-sampling baseline (single node, like the paper's
	// DGL-sampling configuration).
	tr, err := distdgl.New(ds, distdgl.Options{
		Workers: 1, Model: nn.GCN, Seed: 1, LR: 0.02, Profile: comm.ProfileECS,
	})
	if err != nil {
		panic(err)
	}
	defer tr.Close()
	c := AccuracyCurve{System: "depcache-sampling"}
	var cumulative time.Duration
	for ep := 1; ep <= maxEpochs; ep++ {
		t0 := time.Now()
		tr.RunEpoch()
		cumulative += time.Since(t0)
		if ep%evalEvery == 0 {
			acc := tr.Evaluate(ds.TestMask)
			c.Points = append(c.Points, AccuracyPoint{Seconds: cumulative.Seconds(), Accuracy: acc, Epoch: ep})
			if acc > c.Best {
				c.Best = acc
			}
			if c.TimeToTarget == 0 && acc >= target {
				c.TimeToTarget = cumulative.Seconds()
			}
		}
	}
	out = append(out, c)
	return out
}
