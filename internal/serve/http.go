package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"

	"neutronstar/internal/obs"
	"neutronstar/internal/tensor"
)

// Handler returns the serving HTTP API:
//
//	POST /predict    Request JSON -> per-query argmax labels + logit rows
//	POST /embed      Request JSON -> per-query penultimate-layer embeddings
//	POST /linkscore  pairs of vertices -> sigmoid(dot) link scores
//	GET  /stats      live Stats JSON
//	GET  /healthz    200 "ok" liveness probe
//	GET  /metrics    registry exposition (classic text or OpenMetrics with
//	                 exemplars, negotiated via Accept)
//
// Query responses carry the request's per-stage latency breakdown on a
// Server-Timing header (queue/cache/extract/compute/total, milliseconds) and
// the pipeline trace id on X-NS-Trace-Id — response bodies are unchanged, so
// existing clients are unaffected while nsload and browsers get the
// breakdown for free.
//
// /metrics and /healthz mirror the obs debug server's endpoints so the same
// scrape configs work against a serving process.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/embed", s.handleEmbed)
	mux.HandleFunc("/linkscore", s.handleLinkScore)
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", obs.MetricsHandler(s.cfg.Registry))
	return mux
}

// setTimingHeaders attaches a completed query's stage breakdown to the
// response. Must run before the first body write.
func setTimingHeaders(h http.Header, t StageTiming) {
	h.Set("Server-Timing", t.ServerTiming())
	h.Set("X-NS-Trace-Id", t.TraceIDHex())
}

// PredictResponse answers /predict.
type PredictResponse struct {
	ModelVersion uint64      `json:"model_version"`
	Labels       []int       `json:"labels"`
	Logits       [][]float32 `json:"logits"`
}

// EmbedResponse answers /embed.
type EmbedResponse struct {
	ModelVersion uint64      `json:"model_version"`
	Embeddings   [][]float32 `json:"embeddings"`
}

// LinkRequest asks /linkscore for edge-existence scores: score k is
// sigmoid(dot(embed(Pairs[k][0]), embed(Pairs[k][1]))), the decoder the link
// prediction example trains against.
type LinkRequest struct {
	Pairs   [][2]int32 `json:"pairs"`
	Fanouts []int      `json:"fanouts,omitempty"`
	Seed    uint64     `json:"seed,omitempty"`
}

// LinkResponse answers /linkscore.
type LinkResponse struct {
	ModelVersion uint64    `json:"model_version"`
	Scores       []float64 `json:"scores"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	res, err := s.Query(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	out := PredictResponse{
		ModelVersion: res.Version,
		Labels:       argmaxRows(res.Logits),
		Logits:       copyRows(res.Logits),
	}
	setTimingHeaders(w.Header(), res.Timing)
	writeJSON(w, out)
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeRequest(w, r)
	if !ok {
		return
	}
	res, err := s.Query(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	setTimingHeaders(w.Header(), res.Timing)
	writeJSON(w, EmbedResponse{ModelVersion: res.Version, Embeddings: copyRows(res.Embeds)})
}

func (s *Server) handleLinkScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var lr LinkRequest
	if err := json.NewDecoder(r.Body).Decode(&lr); err != nil {
		http.Error(w, fmt.Sprintf("serve: bad request: %v", err), http.StatusBadRequest)
		return
	}
	if len(lr.Pairs) == 0 {
		http.Error(w, "serve: empty pairs", http.StatusBadRequest)
		return
	}
	// Query each distinct endpoint once; score from the embedding rows.
	pos := make(map[int32]int)
	var verts []int32
	for _, p := range lr.Pairs {
		for _, v := range p {
			if _, ok := pos[v]; !ok {
				pos[v] = len(verts)
				verts = append(verts, v)
			}
		}
	}
	res, err := s.Query(&Request{Verts: verts, Fanouts: lr.Fanouts, Seed: lr.Seed})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	setTimingHeaders(w.Header(), res.Timing)
	out := LinkResponse{ModelVersion: res.Version, Scores: make([]float64, len(lr.Pairs))}
	for k, p := range lr.Pairs {
		a, b := res.Embeds.Row(pos[p[0]]), res.Embeds.Row(pos[p[1]])
		var dot float64
		for i := range a {
			dot += float64(a[i]) * float64(b[i])
		}
		out.Scores[k] = 1 / (1 + math.Exp(-dot))
	}
	writeJSON(w, out)
}

func decodeRequest(w http.ResponseWriter, r *http.Request) (*Request, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return nil, false
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("serve: bad request: %v", err), http.StatusBadRequest)
		return nil, false
	}
	return &req, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func argmaxRows(t *tensor.Tensor) []int {
	out := make([]int, t.Rows())
	for r := 0; r < t.Rows(); r++ {
		row := t.Row(r)
		best := 0
		for c, v := range row {
			if v > row[best] {
				best = c
			}
		}
		out[r] = best
	}
	return out
}

func copyRows(t *tensor.Tensor) [][]float32 {
	out := make([][]float32, t.Rows())
	for r := 0; r < t.Rows(); r++ {
		out[r] = append([]float32(nil), t.Row(r)...)
	}
	return out
}
