package serve

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"neutronstar/internal/nn"
	"neutronstar/internal/obs"
)

// TestStageTimingSumsToTotal is the stage-partition contract: the four
// additive stages are carved from the same clock stamps as the end-to-end
// pipeline latency, so their sum must land within 10% of Total on every
// request (exactly equal but for the non-negative clamp on extract).
func TestStageTimingSumsToTotal(t *testing.T) {
	ds := testDataset(t, 120, 41)
	s := newTestServer(t, ds, NewStatic(testModel(ds, nn.GCN, 42)), 1<<20)

	seen := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		res, err := s.Query(&Request{Verts: []int32{int32(i), int32(i + 30), int32(i + 60)}})
		if err != nil {
			t.Fatal(err)
		}
		tm := res.Timing
		if tm.Total <= 0 {
			t.Fatalf("request %d: non-positive total %v", i, tm.Total)
		}
		sum := tm.StageSum()
		diff := sum - tm.Total
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.10*float64(tm.Total) {
			t.Fatalf("request %d: stages %v sum to %v, total %v (off by %v)",
				i, tm, sum, tm.Total, diff)
		}
		if tm.TraceID == 0 {
			t.Fatalf("request %d: zero trace id", i)
		}
		if seen[tm.TraceID] {
			t.Fatalf("request %d: duplicate trace id %016x", i, tm.TraceID)
		}
		seen[tm.TraceID] = true
		if len(tm.TraceIDHex()) != 16 {
			t.Fatalf("trace id hex %q not 16 chars", tm.TraceIDHex())
		}
	}
}

// TestServerTimingHeader asserts every query response carries the trace
// headers and that the Server-Timing entries round-trip through the parser
// with the same additive-stage property the struct promises.
func TestServerTimingHeader(t *testing.T) {
	ds := testDataset(t, 80, 43)
	s := newTestServer(t, ds, NewStatic(testModel(ds, nn.GCN, 44)), 1<<20)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/predict", Request{Verts: []int32{3, 12}}, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if id := resp.Header.Get("X-NS-Trace-Id"); len(id) != 16 {
		t.Fatalf("X-NS-Trace-Id = %q", id)
	}
	st := resp.Header.Get("Server-Timing")
	if st == "" {
		t.Fatal("no Server-Timing header")
	}
	timing := ParseServerTiming(st)
	var sum time.Duration
	for _, stage := range []string{StageQueue, StageCache, StageExtract, StageCompute} {
		d, ok := timing[stage]
		if !ok {
			t.Fatalf("stage %q missing from %q", stage, st)
		}
		sum += d
	}
	total, ok := timing[StageTotal]
	if !ok || total <= 0 {
		t.Fatalf("total missing or zero in %q", st)
	}
	diff := sum - total
	if diff < 0 {
		diff = -diff
	}
	// The header rounds each stage to 1µs, so allow rounding slack on top of
	// the 10% contract.
	if slack := total/10 + 5*time.Microsecond; diff > slack {
		t.Fatalf("header stages sum to %v, total %v (off by %v > %v)", sum, total, diff, slack)
	}

	// A failed request carries no timing headers.
	bad := postJSON(t, ts.URL+"/predict", Request{Verts: []int32{9999}}, nil)
	if bad.Header.Get("Server-Timing") != "" || bad.Header.Get("X-NS-Trace-Id") != "" {
		t.Fatal("error response carries timing headers")
	}
}

func TestParseServerTiming(t *testing.T) {
	got := ParseServerTiming(`queue;dur=1.500, compute;dur=0.25, weird, broken;dur=x`)
	if len(got) != 2 {
		t.Fatalf("parsed %v", got)
	}
	if got["queue"] != 1500*time.Microsecond || got["compute"] != 250*time.Microsecond {
		t.Fatalf("parsed %v", got)
	}
	if out := ParseServerTiming(""); len(out) != 0 {
		t.Fatalf("empty header parsed to %v", out)
	}
}

// TestBatcherDepthCallback asserts the queue-depth hook tracks pending
// requests: up on submit, down to zero on flush, for both the size- and
// close-triggered paths.
func TestBatcherDepthCallback(t *testing.T) {
	var log flushLog
	b := newBatcher(6, time.Hour, log.flush)
	var mu sync.Mutex
	var depths []int
	b.depth = func(n int) {
		mu.Lock()
		depths = append(depths, n)
		mu.Unlock()
	}
	for _, w := range []*work{workOf(1, 2, 3), workOf(4, 5), workOf(6)} {
		if err := b.Submit(w); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	got := append([]int(nil), depths...)
	mu.Unlock()
	// 1, 2 pending after the first two submits; the third reaches maxBatch=6
	// vertices and flushes, reporting 0.
	want := []int{1, 2, 0}
	if len(got) != len(want) {
		t.Fatalf("depth calls %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("depth calls %v, want %v", got, want)
		}
	}
	if err := b.Submit(workOf(9)); err != nil {
		t.Fatal(err)
	}
	b.Close()
	mu.Lock()
	final := depths[len(depths)-1]
	mu.Unlock()
	if final != 0 {
		t.Fatalf("depth after Close = %d, want 0", final)
	}
}

// TestServeTracerSpans runs traced queries and asserts the extract and
// compute pools emitted spans on their configured rows with the trace-id
// attribute correlating them back to requests.
func TestServeTracerSpans(t *testing.T) {
	ds := testDataset(t, 80, 45)
	tracer := obs.NewTracer()
	s, err := New(Config{
		Graph: ds.Graph, Features: ds.Features, Source: NewStatic(testModel(ds, nn.GCN, 46)),
		Registry: obs.NewRegistry(), Tracer: tracer,
		ExtractWorkers: 2, ComputeWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := s.Query(&Request{Verts: []int32{int32(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	spans := tracer.Snapshot()
	byName := map[string]int{}
	for _, sp := range spans {
		byName[sp.Name]++
		switch sp.Name {
		case "extract":
			if sp.Worker < 0 || sp.Worker >= 2 {
				t.Fatalf("extract span on row %d, want 0..1", sp.Worker)
			}
		case "compute":
			if sp.Worker < 2 || sp.Worker >= 4 {
				t.Fatalf("compute span on row %d, want 2..3", sp.Worker)
			}
		}
	}
	if byName["extract"] == 0 || byName["compute"] == 0 {
		t.Fatalf("span names %v, want extract and compute spans", byName)
	}
}

// TestServeFlushReasonMetrics drives both flush triggers through a real
// server and asserts the reason-labelled counters record them.
func TestServeFlushReasonMetrics(t *testing.T) {
	ds := testDataset(t, 80, 47)
	reg := obs.NewRegistry()
	s, err := New(Config{
		Graph: ds.Graph, Features: ds.Features, Source: NewStatic(testModel(ds, nn.GCN, 48)),
		Registry: reg, MaxBatch: 2, MaxWait: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	// Two concurrent 1-vertex queries can fill maxBatch=2; a lone query must
	// go out on the timer. Either way every request completes and the flush
	// total matches the batch count.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Query(&Request{Verts: []int32{int32(i)}}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	var total float64
	for _, sn := range reg.Gather() {
		if sn.Name == "ns_serve_batcher_flushes_total" {
			total += sn.Value
		}
	}
	if int64(total) != s.Stats().Batches {
		t.Fatalf("flush counters sum to %v, stats report %d batches", total, s.Stats().Batches)
	}
	if total == 0 {
		t.Fatal("no flushes recorded")
	}
}
