package serve

import (
	"fmt"
	"sync"
	"time"
)

// Flush reasons, the label values of ns_serve_batcher_flushes_total: the
// batch filled (max_batch), the oldest request hit its latency bound
// (max_wait), or the server shut down with requests pending (close). The
// max_batch:max_wait ratio is the live signal for whether MaxBatch/MaxWait
// are tuned to the offered load.
const (
	flushMaxBatch = "max_batch"
	flushMaxWait  = "max_wait"
	flushClose    = "close"
)

// batcher is the latency/throughput micro-batcher between the HTTP front
// and the extraction pool. Requests accumulate until either the pending
// batch covers maxBatch queried vertices or the oldest request has waited
// maxWait — whichever fires first — then flush as one job. Batching
// amortises the per-batch extraction walk and the per-layer GEMMs over many
// queries; maxWait bounds the latency a lone request pays for it.
//
// Flushing is equivalence-preserving: every per-vertex computation uses only
// that vertex's own in-neighbor group, so a query answered in a batch of 64
// returns the same float32 rows as the same query answered alone.
type batcher struct {
	maxBatch int
	maxWait  time.Duration
	flush    func(items []*work, reason string)
	// depth, when non-nil, observes the pending request count after every
	// change (it feeds the queue-depth gauge). Called with mu held — it must
	// not call back into the batcher.
	depth func(n int)

	mu      sync.Mutex
	pending []*work
	// verts counts queried vertices (not requests) in pending: a request
	// covering many vertices fills a batch faster than many singletons.
	verts  int
	timer  *time.Timer
	closed bool
}

func newBatcher(maxBatch int, maxWait time.Duration, flush func([]*work, string)) *batcher {
	return &batcher{maxBatch: maxBatch, maxWait: maxWait, flush: flush}
}

// Submit enqueues one request. It flushes inline when the batch fills, so
// the flush callback must not call Submit re-entrantly.
func (b *batcher) Submit(w *work) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return fmt.Errorf("serve: server closed")
	}
	b.pending = append(b.pending, w)
	b.verts += w.req.numQueries()
	var items []*work
	if b.verts >= b.maxBatch {
		items = b.take()
	} else if len(b.pending) == 1 {
		b.timer = time.AfterFunc(b.maxWait, b.timedFlush)
	}
	b.notifyDepth()
	b.mu.Unlock()
	if items != nil {
		b.flush(items, flushMaxBatch)
	}
	return nil
}

// take detaches the pending batch and disarms the timer. Callers hold mu.
func (b *batcher) take() []*work {
	items := b.pending
	b.pending = nil
	b.verts = 0
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return items
}

// notifyDepth reports the pending count to the depth observer. Callers hold mu.
func (b *batcher) notifyDepth() {
	if b.depth != nil {
		b.depth(len(b.pending))
	}
}

// timedFlush fires when the oldest pending request has waited maxWait.
func (b *batcher) timedFlush() {
	b.mu.Lock()
	items := b.take()
	b.notifyDepth()
	b.mu.Unlock()
	if len(items) > 0 {
		b.flush(items, flushMaxWait)
	}
}

// Close flushes whatever is pending and rejects further submissions. A
// shutdown with nothing pending flushes nothing — an empty flush is never
// delivered downstream.
func (b *batcher) Close() {
	b.mu.Lock()
	b.closed = true
	items := b.take()
	b.notifyDepth()
	b.mu.Unlock()
	if len(items) > 0 {
		b.flush(items, flushClose)
	}
}
