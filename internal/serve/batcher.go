package serve

import (
	"fmt"
	"sync"
	"time"
)

// batcher is the latency/throughput micro-batcher between the HTTP front
// and the extraction pool. Requests accumulate until either the pending
// batch covers maxBatch queried vertices or the oldest request has waited
// maxWait — whichever fires first — then flush as one job. Batching
// amortises the per-batch extraction walk and the per-layer GEMMs over many
// queries; maxWait bounds the latency a lone request pays for it.
//
// Flushing is equivalence-preserving: every per-vertex computation uses only
// that vertex's own in-neighbor group, so a query answered in a batch of 64
// returns the same float32 rows as the same query answered alone.
type batcher struct {
	maxBatch int
	maxWait  time.Duration
	flush    func([]*work)

	mu      sync.Mutex
	pending []*work
	// verts counts queried vertices (not requests) in pending: a request
	// covering many vertices fills a batch faster than many singletons.
	verts  int
	timer  *time.Timer
	closed bool
}

func newBatcher(maxBatch int, maxWait time.Duration, flush func([]*work)) *batcher {
	return &batcher{maxBatch: maxBatch, maxWait: maxWait, flush: flush}
}

// Submit enqueues one request. It flushes inline when the batch fills, so
// the flush callback must not call Submit re-entrantly.
func (b *batcher) Submit(w *work) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return fmt.Errorf("serve: server closed")
	}
	b.pending = append(b.pending, w)
	b.verts += w.req.numQueries()
	var items []*work
	if b.verts >= b.maxBatch {
		items = b.take()
	} else if len(b.pending) == 1 {
		b.timer = time.AfterFunc(b.maxWait, b.timedFlush)
	}
	b.mu.Unlock()
	if items != nil {
		b.flush(items)
	}
	return nil
}

// take detaches the pending batch and disarms the timer. Callers hold mu.
func (b *batcher) take() []*work {
	items := b.pending
	b.pending = nil
	b.verts = 0
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return items
}

// timedFlush fires when the oldest pending request has waited maxWait.
func (b *batcher) timedFlush() {
	b.mu.Lock()
	items := b.take()
	b.mu.Unlock()
	if len(items) > 0 {
		b.flush(items)
	}
}

// Close flushes whatever is pending and rejects further submissions. A
// shutdown with nothing pending flushes nothing — an empty flush is never
// delivered downstream.
func (b *batcher) Close() {
	b.mu.Lock()
	b.closed = true
	items := b.take()
	b.mu.Unlock()
	if len(items) > 0 {
		b.flush(items)
	}
}
