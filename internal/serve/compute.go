package serve

import (
	"time"

	"neutronstar/internal/autograd"
	"neutronstar/internal/nn"
	"neutronstar/internal/tensor"
)

// compute runs an assembled plan bottom-up on the worker's private model
// replica: each block's input matrix is stitched from raw features, cached
// rows and the previous block's output, then one layer forward produces the
// rows the block above consumes. Freshly computed hidden rows for real
// vertices are offered to the cache (final-layer logits are not — no block
// ever reads them back). Per-item result rows are sliced out of the top
// block at the end and each waiting request is released.
func (s *Server) compute(asm *assembled, model *nn.Model) {
	p := asm.plan
	dims := model.Dims()
	L := len(p.blocks)
	n := int32(s.cfg.Graph.NumVertices())

	var prevOut *tensor.Tensor
	var prevDsts []int32
	var topIn *tensor.Tensor // the top block's input: penultimate-layer rows
	for l, b := range p.blocks {
		H := tensor.New(len(b.srcs), dims[l])
		for i, v := range b.srcs {
			if b.cached != nil && b.cached[i] != nil {
				copy(H.Row(i), b.cached[i])
				continue
			}
			if l == 0 {
				copy(H.Row(i), p.feats.Row(i))
			} else {
				copy(H.Row(i), prevOut.Row(posIn(prevDsts, v)))
			}
		}
		if l == L-1 {
			topIn = H
		}
		if len(b.dsts) == 0 {
			// The walk above was fully cache-served; nothing to compute here.
			prevOut, prevDsts = tensor.New(0, dims[l+1]), b.dsts
			continue
		}
		out := forwardBlock(model.Layers[l], b, H)
		if asm.exact && l+1 < L {
			for d, v := range b.dsts {
				if v < n {
					s.cache.Put(l+1, v, out.Row(d), asm.gen)
				}
			}
		}
		prevOut, prevDsts = out, b.dsts
	}

	top := p.blocks[L-1]
	for _, w := range asm.items {
		nq := w.req.numQueries()
		logits := tensor.New(nq, dims[L])
		embeds := tensor.New(nq, dims[L-1])
		row := 0
		emit := func(v int32) {
			d := posIn(top.dsts, v)
			copy(logits.Row(row), prevOut.Row(d))
			copy(embeds.Row(row), topIn.Row(int(top.selfIdx[d])))
			row++
		}
		for _, v := range w.req.Verts {
			emit(v)
		}
		for k := range w.req.Inductive {
			emit(n + int32(k))
		}
		w.res = &Result{Version: asm.version, Logits: logits, Embeds: embeds}
		w.trace.finished = time.Now()
		close(w.done)
	}
}

// forwardBlock evaluates one layer over one bipartite block. The ForwardCtx
// mirrors engine.forwardOnTape restricted to the block: EdgeSrc gathers the
// (possibly pre-transformed) source rows in destination-grouped order and
// Self gathers each destination's own row, so per-destination float32
// aggregation order — and therefore the result — matches the full-graph
// reference bitwise.
func forwardBlock(layer nn.Layer, b *block, H *tensor.Tensor) *tensor.Tensor {
	tape := autograd.NewTape()
	in := tape.Constant(H, "h")
	rng := tensor.NewRNG(0)
	rows := in
	if pt, ok := layer.(nn.PreTransformer); ok {
		rows = pt.PreTransform(tape, in, false, rng)
	}
	ctx := &nn.ForwardCtx{
		Tape:     tape,
		EdgeSrc:  tape.Gather(rows, b.srcIdx),
		Self:     tape.Gather(rows, b.selfIdx),
		Offsets:  b.offsets,
		EdgeDst:  b.dstIdx,
		EdgeNorm: b.edgeNorm,
		SelfNorm: b.selfNorm,
		Training: false,
		RNG:      rng,
	}
	out := layer.Forward(ctx)
	// Detach parameters bound during inference (tape binding is stateful).
	for _, p := range layer.Params() {
		p.CollectGrad()
	}
	return out.Value
}
