package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"neutronstar/internal/engine"
	"neutronstar/internal/nn"
	"neutronstar/internal/obs"
)

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestHTTPEndpoints(t *testing.T) {
	ds := testDataset(t, 80, 19)
	model := testModel(ds, nn.GCN, 91)
	reg := obs.NewRegistry()
	s, err := New(Config{
		Graph: ds.Graph, Features: ds.Features, Source: NewStatic(model),
		CacheBytes: 1 << 20, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var pred PredictResponse
	resp := postJSON(t, ts.URL+"/predict", Request{Verts: []int32{3, 12}}, &pred)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/predict status %d", resp.StatusCode)
	}
	if len(pred.Labels) != 2 || len(pred.Logits) != 2 {
		t.Fatalf("predict shape: %+v", pred)
	}
	ref := engine.ReferenceForward(ds.Graph, model, ds.Features)
	for c, v := range pred.Logits[0] {
		if v != ref.At(3, c) {
			t.Fatalf("logit[0][%d] = %v, reference %v", c, v, ref.At(3, c))
		}
	}

	var emb EmbedResponse
	postJSON(t, ts.URL+"/embed", Request{Verts: []int32{5}}, &emb)
	if len(emb.Embeddings) != 1 || len(emb.Embeddings[0]) != ds.Spec.HiddenDim {
		t.Fatalf("embed shape: %+v", emb)
	}

	var link LinkResponse
	postJSON(t, ts.URL+"/linkscore", LinkRequest{Pairs: [][2]int32{{1, 2}, {2, 1}, {4, 4}}}, &link)
	if len(link.Scores) != 3 {
		t.Fatalf("linkscore shape: %+v", link)
	}
	if link.Scores[0] != link.Scores[1] {
		t.Fatalf("dot-product score not symmetric: %v vs %v", link.Scores[0], link.Scores[1])
	}
	for _, sc := range link.Scores {
		if sc <= 0 || sc >= 1 {
			t.Fatalf("score %v outside (0,1)", sc)
		}
	}

	if resp := postJSON(t, ts.URL+"/predict", Request{Verts: []int32{9999}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range vertex: status %d", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/predict"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict: %v %v", resp.StatusCode, err)
	}

	var st Stats
	if resp, err := http.Get(ts.URL + "/stats"); err != nil {
		t.Fatal(err)
	} else {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if st.Requests == 0 || st.Layers != 2 {
		t.Fatalf("stats: %+v", st)
	}

	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", resp, err)
	}
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body), "ns_serve_requests_total") {
		t.Fatalf("/metrics missing serve counters:\n%s", body)
	}
}
