package serve

import (
	"sync"
	"testing"
	"time"
)

type flushLog struct {
	mu      sync.Mutex
	batches [][]*work
	reasons []string
}

func (l *flushLog) flush(items []*work, reason string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.batches = append(l.batches, items)
	l.reasons = append(l.reasons, reason)
}

func (l *flushLog) snapshot() [][]*work {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([][]*work(nil), l.batches...)
}

func (l *flushLog) reasonLog() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.reasons...)
}

func workOf(verts ...int32) *work {
	return &work{req: &Request{Verts: verts}, done: make(chan struct{})}
}

// An idle shutdown must not deliver an empty flush downstream.
func TestBatcherCloseEmptyNeverFlushes(t *testing.T) {
	var log flushLog
	b := newBatcher(8, time.Hour, log.flush)
	b.Close()
	if got := log.snapshot(); len(got) != 0 {
		t.Fatalf("empty close flushed %d batches", len(got))
	}
	if err := b.Submit(workOf(1)); err == nil {
		t.Fatal("submit accepted after Close")
	}
}

// A lone request must flush after maxWait even though the batch never fills.
func TestBatcherMaxWaitFlushesSingleRequest(t *testing.T) {
	var log flushLog
	b := newBatcher(1000, 5*time.Millisecond, log.flush)
	if err := b.Submit(workOf(7)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := log.snapshot(); len(got) == 1 {
			if len(got[0]) != 1 || got[0][0].req.Verts[0] != 7 {
				t.Fatalf("wrong flush contents: %+v", got[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("max-wait flush never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if rs := log.reasonLog(); rs[0] != flushMaxWait {
		t.Fatalf("timer flush reason = %q, want %q", rs[0], flushMaxWait)
	}
	b.Close()
}

// Reaching maxBatch exactly flushes inline, immediately, without the timer.
func TestBatcherFlushesAtExactMaxBatch(t *testing.T) {
	var log flushLog
	b := newBatcher(4, time.Hour, log.flush)
	for i := 0; i < 4; i++ {
		if err := b.Submit(workOf(int32(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := log.snapshot()
	if len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("batches after 4 singleton submits at maxBatch=4: %d", len(got))
	}
	// The next submit starts a fresh batch — nothing flushed yet.
	if err := b.Submit(workOf(9)); err != nil {
		t.Fatal(err)
	}
	if got := log.snapshot(); len(got) != 1 {
		t.Fatalf("fresh batch flushed early: %d batches", len(got))
	}
	b.Close()
	if got := log.snapshot(); len(got) != 2 || len(got[1]) != 1 {
		t.Fatalf("close did not flush the pending request: %+v", got)
	}
	if rs := log.reasonLog(); rs[0] != flushMaxBatch || rs[1] != flushClose {
		t.Fatalf("flush reasons = %v, want [%s %s]", rs, flushMaxBatch, flushClose)
	}
}

// One request larger than maxBatch still forms exactly one batch — requests
// are never split — and flushes immediately.
func TestBatcherOversizedRequestIsOneBatch(t *testing.T) {
	var log flushLog
	b := newBatcher(4, time.Hour, log.flush)
	if err := b.Submit(workOf(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)); err != nil {
		t.Fatal(err)
	}
	got := log.snapshot()
	if len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("oversized request: %d batches of %d requests", len(got), len(got[0]))
	}
	if n := got[0][0].req.numQueries(); n != 10 {
		t.Fatalf("flushed request has %d queries", n)
	}
	b.Close()
}

// Vertices, not requests, fill the batch: two 3-vertex requests cross a
// 6-vertex threshold.
func TestBatcherCountsVerticesNotRequests(t *testing.T) {
	var log flushLog
	b := newBatcher(6, time.Hour, log.flush)
	if err := b.Submit(workOf(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if got := log.snapshot(); len(got) != 0 {
		t.Fatal("flushed below the vertex threshold")
	}
	if err := b.Submit(workOf(4, 5, 6)); err != nil {
		t.Fatal(err)
	}
	got := log.snapshot()
	if len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("vertex-count flush: %+v", got)
	}
	b.Close()
}
