package serve

import (
	"container/list"
	"sync"

	"neutronstar/internal/obs"
)

// cacheKey addresses one vertex's representation at one layer: layer l is
// the row entering layer l's computation, so layer 1..L are computed
// embeddings (raw features are layer 0 and never cached — they are free).
type cacheKey struct {
	layer int
	vert  int32
}

// cacheEntry is one cached row plus the generation it was computed under.
type cacheEntry struct {
	key cacheKey
	gen uint64
	row []float32
}

// embedCache is the byte-budgeted per-layer embedding cache, in the spirit
// of CaPGNN's budgeted joint cache: instead of materialising every vertex's
// embedding, it keeps the most recently useful rows within a fixed memory
// budget, evicting least-recently-used rows past it. Invalidate advances a
// generation counter and drops everything: entries computed under old
// parameters must never answer post-update queries, and in-flight jobs
// carrying an old generation cannot re-insert stale rows.
//
// A nil *embedCache is valid and behaves as an always-miss cache, which is
// how Config.CacheBytes <= 0 disables caching without guarding call sites.
type embedCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	gen    uint64
	lru    *list.List // front = most recently used; values are *cacheEntry
	idx    map[cacheKey]*list.Element

	hits, misses, evictions int64

	mHits, mMisses, mEvict *obs.Counter
	mBytes                 *obs.Gauge
}

func newEmbedCache(budget int64, reg *obs.Registry) *embedCache {
	return &embedCache{
		budget:  budget,
		lru:     list.New(),
		idx:     make(map[cacheKey]*list.Element),
		mHits:   reg.Counter("ns_serve_cache_hits_total", "Embedding cache rows served."),
		mMisses: reg.Counter("ns_serve_cache_misses_total", "Embedding cache lookups that missed."),
		mEvict:  reg.Counter("ns_serve_cache_evictions_total", "Embedding cache rows evicted past the byte budget."),
		mBytes:  reg.Gauge("ns_serve_cache_bytes", "Embedding cache resident row bytes."),
	}
}

// generation returns the current generation, captured by extraction so a
// job's later Put calls can be rejected if the parameters moved meanwhile.
func (c *embedCache) generation() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Get returns the cached row for (layer, vert) or nil. The returned slice is
// owned by the cache: callers copy out of it and never mutate it.
func (c *embedCache) Get(layer int, vert int32) []float32 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[cacheKey{layer, vert}]
	if !ok {
		c.misses++
		c.mMisses.Inc()
		return nil
	}
	c.hits++
	c.mHits.Inc()
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).row
}

// Put inserts a copy of row, evicting LRU rows past the byte budget. A put
// whose generation is stale (Invalidate ran since the caller captured gen)
// is dropped — the row was computed under superseded parameters.
func (c *embedCache) Put(layer int, vert int32, row []float32, gen uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	key := cacheKey{layer, vert}
	if el, ok := c.idx[key]; ok {
		// Same generation ⇒ same parameters ⇒ same value; just refresh
		// recency.
		c.lru.MoveToFront(el)
		return
	}
	e := &cacheEntry{key: key, gen: gen, row: append([]float32(nil), row...)}
	c.idx[key] = c.lru.PushFront(e)
	c.bytes += int64(4 * len(e.row))
	for c.bytes > c.budget && c.lru.Len() > 1 {
		back := c.lru.Back()
		ev := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.idx, ev.key)
		c.bytes -= int64(4 * len(ev.row))
		c.evictions++
		c.mEvict.Inc()
	}
	c.mBytes.Set(float64(c.bytes))
}

// Invalidate drops every entry and advances the generation: the parameters
// changed, so no cached row may answer another query and no in-flight job
// may insert one.
func (c *embedCache) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.lru.Init()
	c.idx = make(map[cacheKey]*list.Element)
	c.bytes = 0
	c.mBytes.Set(0)
}

func (c *embedCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Enabled:     true,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Bytes:       c.bytes,
		BudgetBytes: c.budget,
	}
}
