package serve

import (
	"fmt"
	"math"
	"sort"
	"time"

	"neutronstar/internal/nn"
	"neutronstar/internal/sampler"
	"neutronstar/internal/tensor"
)

// overlay presents the stored graph plus a request's virtual (inductive)
// vertices as one address space: real vertices keep their ids, virtual
// vertex k becomes id NumVertices()+k for the lifetime of the job. Virtual
// vertices only draw edges from real ones, so one hop past a virtual vertex
// the walk is back on the stored graph.
type overlay struct {
	s    *Server
	virt []InductiveVertex
	n    int32
}

func (o *overlay) inNbrs(v int32) []int32 {
	if v >= o.n {
		return o.virt[v-o.n].Neighbors
	}
	return o.s.cfg.Graph.InNeighbors(v)
}

func (o *overlay) inDeg(v int32) int {
	if v >= o.n {
		return len(o.virt[v-o.n].Neighbors)
	}
	return o.s.cfg.Graph.InDegree(v)
}

func (o *overlay) featRow(v int32) []float32 {
	if v >= o.n {
		return o.virt[v-o.n].Features
	}
	return o.s.cfg.Features.Row(int(v))
}

// invSqrtDeg matches graph.GCNNormCoefficients' float64 intermediate exactly
// so served GCN rows are bit-identical to the full-graph reference.
func (o *overlay) invSqrtDeg(v int32) float64 {
	return 1 / math.Sqrt(float64(o.inDeg(v)+1))
}

// block is one layer of an extraction plan: destinations aggregate from
// their (possibly sampled) in-neighbors, exactly the bipartite shape of
// sampler.Block but carrying everything the compute pool needs — norm
// coefficients from full-graph degrees and any cache-served input rows.
type block struct {
	srcs []int32 // input frontier, ascending
	dsts []int32 // output frontier, ascending, subset of srcs
	// srcIdx/dstIdx address edges into srcs/dsts; edges are grouped by
	// destination in in-neighbor order (the reference aggregation order, so
	// float32 sums match it bitwise).
	srcIdx, dstIdx []int32
	offsets        []int32 // len(dsts)+1
	selfIdx        []int32 // row of dsts[d] within srcs
	// edgeNorm/selfNorm are the GCN renormalisation coefficients computed
	// from full-graph in-degrees (a sampled block keeps true degrees: the
	// norm describes the graph, not the sample).
	edgeNorm, selfNorm []float32
	// cached[i], when non-nil, is srcs[i]'s input row served from the
	// embedding cache; the frontier below was not expanded through it.
	cached [][]float32
}

// plan is a full extraction: blocks input-first (blocks[0] consumes raw
// feature rows, blocks[L-1] produces the queried vertices' logits) plus the
// assembled layer-0 feature rows.
type plan struct {
	blocks []*block
	feats  *tensor.Tensor // one row per blocks[0].srcs entry
}

// seeds returns the queried frontier (the top block's destinations).
func (p *plan) seeds() []int32 { return p.blocks[len(p.blocks)-1].dsts }

// extract builds the assembled job: the k-hop (or fanout-sampled) dependency
// walk for every queried vertex, stopping at cache-served rows, plus the
// feature rows the bottom layer needs. Pure graph-and-memory work — the
// point of a separate extraction pool is that none of this contends with
// the GEMMs in the compute pool.
func (s *Server) extract(j *job, model *nn.Model, version uint64) (*assembled, error) {
	L := model.NumLayers()
	var virt []InductiveVertex
	var fanouts []int
	var rng *tensor.RNG
	exact := true
	if len(j.items) == 1 {
		req := j.items[0].req
		virt = req.Inductive
		if len(req.Fanouts) > 0 {
			if len(req.Fanouts) != L {
				return nil, fmt.Errorf("serve: %d fanouts for a %d-layer model", len(req.Fanouts), L)
			}
			fanouts = req.Fanouts
			exact = false
			rng = tensor.NewRNG(j.items[0].seed)
		}
	}
	o := &overlay{s: s, virt: virt, n: int32(s.cfg.Graph.NumVertices())}
	// cacheNanos carves the embedding-cache lookup time out of the extract
	// stage for the per-request breakdown.
	var cacheNanos int64

	// Merge every item's queried vertices into one sorted seed frontier.
	seedSet := make(map[int32]struct{})
	for _, w := range j.items {
		for _, v := range w.req.Verts {
			seedSet[v] = struct{}{}
		}
		for k := range w.req.Inductive {
			seedSet[o.n+int32(k)] = struct{}{}
		}
	}
	need := sortedKeys(seedSet)

	gen := s.cache.generation()
	blocks := make([]*block, L)
	for l := L - 1; l >= 0; l-- {
		b := &block{dsts: need}
		srcSet := make(map[int32]struct{}, 2*len(need))
		nbrs := make([][]int32, len(need))
		for di, v := range need {
			srcSet[v] = struct{}{} // the self row is always present
			ns := o.inNbrs(v)
			if fanouts != nil {
				ns = sampler.Pick(ns, fanouts[l], rng)
			}
			nbrs[di] = ns
			for _, u := range ns {
				srcSet[u] = struct{}{}
			}
		}
		b.srcs = sortedKeys(srcSet)
		srcPos := make(map[int32]int32, len(b.srcs))
		for i, u := range b.srcs {
			srcPos[u] = int32(i)
		}
		b.offsets = make([]int32, len(need)+1)
		b.selfIdx = make([]int32, len(need))
		b.selfNorm = make([]float32, len(need))
		for di, v := range need {
			b.selfIdx[di] = srcPos[v]
			inv := o.invSqrtDeg(v)
			b.selfNorm[di] = float32(inv * inv)
			for _, u := range nbrs[di] {
				b.srcIdx = append(b.srcIdx, srcPos[u])
				b.dstIdx = append(b.dstIdx, int32(di))
				b.edgeNorm = append(b.edgeNorm, float32(inv*o.invSqrtDeg(u)))
			}
			b.offsets[di+1] = int32(len(b.srcIdx))
		}
		blocks[l] = b
		if l == 0 {
			break // layer-0 inputs are raw features — always available
		}
		// Sources whose layer-l row the cache holds are not expanded below.
		b.cached = make([][]float32, len(b.srcs))
		next := make([]int32, 0, len(b.srcs))
		if exact {
			lookupStart := time.Now()
			for i, v := range b.srcs {
				if v < o.n {
					if row := s.cache.Get(l, v); row != nil {
						b.cached[i] = row
						continue
					}
				}
				next = append(next, v)
			}
			cacheNanos += time.Since(lookupStart).Nanoseconds()
		} else {
			next = append(next, b.srcs...)
		}
		need = next
	}

	// Assemble the raw feature rows the bottom block consumes. When every
	// layer-1 input was cache-served the bottom frontier is empty and this
	// is a 0-row tensor.
	dim := s.cfg.Features.Cols()
	bottom := blocks[0]
	feats := tensor.New(len(bottom.srcs), dim)
	// A fully cache-satisfied walk leaves empty lower frontiers: their
	// blocks compute nothing, and the cached rows enter at the layer above.
	if len(bottom.dsts) > 0 {
		for i, v := range bottom.srcs {
			copy(feats.Row(i), o.featRow(v))
		}
	}

	return &assembled{
		items:      j.items,
		version:    version,
		cacheNanos: cacheNanos,
		model:      model,
		gen:        gen,
		plan:       &plan{blocks: blocks, feats: feats},
		exact:      exact,
	}, nil
}

func sortedKeys(m map[int32]struct{}) []int32 {
	out := make([]int32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// posIn locates v in the ascending slice s; extraction guarantees presence.
func posIn(s []int32, v int32) int {
	return sort.Search(len(s), func(i int) bool { return s[i] >= v })
}
