package serve

import (
	"fmt"
	"sync"
	"testing"

	"neutronstar/internal/dataset"
	"neutronstar/internal/engine"
	"neutronstar/internal/graph"
	"neutronstar/internal/nn"
	"neutronstar/internal/obs"
	"neutronstar/internal/tensor"
)

func testDataset(t testing.TB, n int, seed uint64) *dataset.Dataset {
	t.Helper()
	return dataset.Load(dataset.Spec{
		Name: "serve", Vertices: n, AvgDegree: 6, FeatureDim: 10,
		NumClasses: 4, HiddenDim: 8, Gen: dataset.GenSBM, Homophily: 0.8, Seed: seed,
	})
}

func testModel(ds *dataset.Dataset, kind nn.ModelKind, seed uint64) *nn.Model {
	dims := []int{ds.Spec.FeatureDim, ds.Spec.HiddenDim, ds.Spec.NumClasses}
	return nn.MustNewModel(kind, dims, 0, seed)
}

func newTestServer(t testing.TB, ds *dataset.Dataset, src Source, cacheBytes int64) *Server {
	t.Helper()
	s, err := New(Config{
		Graph: ds.Graph, Features: ds.Features, Source: src,
		CacheBytes: cacheBytes, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestServeMatchesReferenceAllKinds is the core exactness contract: for every
// architecture, an exact (unsampled) query answers with the same float32 rows
// as the full-graph reference forward restricted to the queried vertices —
// both logits and penultimate-layer embeddings — with caching disabled.
func TestServeMatchesReferenceAllKinds(t *testing.T) {
	ds := testDataset(t, 120, 11)
	verts := []int32{0, 3, 17, 55, 119, 64, 7}
	for _, kind := range nn.ModelKinds() {
		t.Run(string(kind), func(t *testing.T) {
			model := testModel(ds, kind, 21)
			s := newTestServer(t, ds, NewStatic(model), 0)
			res, err := s.Query(&Request{Verts: verts})
			if err != nil {
				t.Fatal(err)
			}
			ref := engine.ReferenceForward(ds.Graph, model, ds.Features)
			penult := &nn.Model{Name: model.Name, Layers: model.Layers[:len(model.Layers)-1]}
			refEmb := engine.ReferenceForward(ds.Graph, penult, ds.Features)
			for i, v := range verts {
				assertRowEqual(t, "logits", v, res.Logits.Row(i), ref.Row(int(v)))
				assertRowEqual(t, "embeds", v, res.Embeds.Row(i), refEmb.Row(int(v)))
			}
		})
	}
}

// TestServeCacheParityAndInvalidation warms the cache, re-queries (must be
// bit-identical with hits recorded), then rolls new parameters through the
// source and asserts the answer tracks the new model — stale cached rows must
// not survive the version bump.
func TestServeCacheParityAndInvalidation(t *testing.T) {
	ds := testDataset(t, 120, 12)
	src := NewStatic(testModel(ds, nn.GCN, 31))
	s := newTestServer(t, ds, src, 1<<20)
	verts := []int32{1, 2, 40, 90}

	cold, err := s.Query(&Request{Verts: verts})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Query(&Request{Verts: verts})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Logits.Equal(warm.Logits) {
		t.Fatal("cached answer differs from cold answer")
	}
	if st := s.Stats(); st.Cache.Hits == 0 {
		t.Fatalf("no cache hits after a repeat query: %+v", st.Cache)
	}
	ref := engine.ReferenceForward(ds.Graph, src.Snapshot(), ds.Features)
	for i, v := range verts {
		assertRowEqual(t, "warm logits", v, warm.Logits.Row(i), ref.Row(int(v)))
	}

	next := testModel(ds, nn.GCN, 77)
	src.Update(next)
	fresh, err := s.Query(&Request{Verts: verts})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Version == warm.Version {
		t.Fatalf("version did not advance: %d", fresh.Version)
	}
	refNext := engine.ReferenceForward(ds.Graph, next, ds.Features)
	for i, v := range verts {
		assertRowEqual(t, "post-update logits", v, fresh.Logits.Row(i), refNext.Row(int(v)))
	}
	if fresh.Logits.Equal(warm.Logits) {
		t.Fatal("answer unchanged after parameter update")
	}
}

// TestServeEngineSourceTrainingStepInvalidates serves from a live training
// engine with caching on: a training step must advance the served version and
// the post-step answer must match the post-step reference, proving the cache
// invalidated on the parameter-version bump.
func TestServeEngineSourceTrainingStepInvalidates(t *testing.T) {
	ds := testDataset(t, 100, 13)
	eng, err := engine.NewEngine(ds, engine.Options{Workers: 2, Mode: engine.Hybrid, Model: nn.GCN, Seed: 5, LR: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	s := newTestServer(t, ds, EngineSource(eng), 1<<20)
	verts := []int32{4, 9, 42}

	before, err := s.Query(&Request{Verts: verts})
	if err != nil {
		t.Fatal(err)
	}
	refBefore := engine.ReferenceForward(ds.Graph, eng.CloneModel(), ds.Features)
	for i, v := range verts {
		assertRowEqual(t, "pre-step logits", v, before.Logits.Row(i), refBefore.Row(int(v)))
	}

	eng.RunEpoch()

	after, err := s.Query(&Request{Verts: verts})
	if err != nil {
		t.Fatal(err)
	}
	if after.Version == before.Version {
		t.Fatalf("training step did not advance served version (%d)", after.Version)
	}
	refAfter := engine.ReferenceForward(ds.Graph, eng.CloneModel(), ds.Features)
	for i, v := range verts {
		assertRowEqual(t, "post-step logits", v, after.Logits.Row(i), refAfter.Row(int(v)))
	}
	if after.Logits.Equal(before.Logits) {
		t.Fatal("served logits unchanged across a training step")
	}
}

// TestServeInductive checks a never-seen vertex: its served rows must equal a
// reference forward over an extended graph that materialises the vertex for
// real. Appending a sink vertex leaves every existing in-degree unchanged, so
// the extended reference is exactly the overlay semantics.
func TestServeInductive(t *testing.T) {
	ds := testDataset(t, 80, 14)
	model := testModel(ds, nn.GCN, 41)
	s := newTestServer(t, ds, NewStatic(model), 1<<20)

	nbrs := []int32{2, 5, 11, 30}
	feat := make([]float32, ds.Spec.FeatureDim)
	for i := range feat {
		feat[i] = 0.1 * float32(i+1)
	}
	res, err := s.Query(&Request{
		Verts:     []int32{7},
		Inductive: []InductiveVertex{{Features: feat, Neighbors: nbrs}},
	})
	if err != nil {
		t.Fatal(err)
	}

	n := ds.Graph.NumVertices()
	var edges []graph.Edge
	off, srcs := ds.Graph.InOffsets(), ds.Graph.InSources()
	for v := 0; v < n; v++ {
		for e := off[v]; e < off[v+1]; e++ {
			edges = append(edges, graph.Edge{Src: srcs[e], Dst: int32(v)})
		}
	}
	for _, u := range nbrs {
		edges = append(edges, graph.Edge{Src: u, Dst: int32(n)})
	}
	g2, err := graph.FromEdges(n+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	f2 := tensor.New(n+1, ds.Spec.FeatureDim)
	for v := 0; v < n; v++ {
		copy(f2.Row(v), ds.Features.Row(v))
	}
	copy(f2.Row(n), feat)
	ref := engine.ReferenceForward(g2, model, f2)

	assertRowEqual(t, "known-vertex logits", 7, res.Logits.Row(0), ref.Row(7))
	assertRowEqual(t, "inductive logits", int32(n), res.Logits.Row(1), ref.Row(n))
}

// TestServeSampledReproducible pins the sampled path's determinism: the same
// request seed yields the same answer no matter the interleaving, and a
// fanout at least the max in-degree degenerates to the exact answer.
func TestServeSampledReproducible(t *testing.T) {
	ds := testDataset(t, 100, 15)
	model := testModel(ds, nn.GCN, 51)
	s := newTestServer(t, ds, NewStatic(model), 0)
	req := func(seed uint64, fanout int) *Result {
		res, err := s.Query(&Request{Verts: []int32{8, 33}, Fanouts: []int{fanout, fanout}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := req(9, 2), req(9, 2)
	if !a.Logits.Equal(b.Logits) {
		t.Fatal("same seed produced different sampled answers")
	}

	maxDeg := graph.ComputeStats(ds.Graph).MaxInDegree
	full := req(3, maxDeg+1)
	ref := engine.ReferenceForward(ds.Graph, model, ds.Features)
	assertRowEqual(t, "full-fanout logits", 8, full.Logits.Row(0), ref.Row(8))
	assertRowEqual(t, "full-fanout logits", 33, full.Logits.Row(1), ref.Row(33))
}

// TestServeBatchedEqualsSingle answers the same vertices through many
// concurrent singleton queries and through one multi-vertex request: the rows
// must agree bitwise — batching must be equivalence-preserving.
func TestServeBatchedEqualsSingle(t *testing.T) {
	ds := testDataset(t, 90, 16)
	model := testModel(ds, nn.SAGE, 61)
	s := newTestServer(t, ds, NewStatic(model), 0)

	verts := make([]int32, 30)
	for i := range verts {
		verts[i] = int32(i * 3)
	}
	batch, err := s.Query(&Request{Verts: verts})
	if err != nil {
		t.Fatal(err)
	}

	single := make([]*Result, len(verts))
	var wg sync.WaitGroup
	for i, v := range verts {
		wg.Add(1)
		go func(i int, v int32) {
			defer wg.Done()
			res, err := s.Query(&Request{Verts: []int32{v}})
			if err != nil {
				t.Error(err)
				return
			}
			single[i] = res
		}(i, v)
	}
	wg.Wait()
	for i, v := range verts {
		if single[i] == nil {
			t.Fatal("missing singleton result")
		}
		assertRowEqual(t, "batched vs single", v, batch.Logits.Row(i), single[i].Logits.Row(0))
	}
}

// TestServeValidation rejects malformed requests without touching the
// pipeline.
func TestServeValidation(t *testing.T) {
	ds := testDataset(t, 50, 17)
	s := newTestServer(t, ds, NewStatic(testModel(ds, nn.GCN, 71)), 0)
	bad := []*Request{
		{},
		{Verts: []int32{-1}},
		{Verts: []int32{50}},
		{Verts: []int32{0}, Fanouts: []int{0, 3}},
		{Inductive: []InductiveVertex{{Features: []float32{1}, Neighbors: []int32{0}}}},
		{Inductive: []InductiveVertex{{Features: make([]float32, 10), Neighbors: []int32{99}}}},
		{Verts: []int32{0}, Fanouts: []int{5}}, // wrong fanout arity for a 2-layer model
	}
	for i, req := range bad {
		if _, err := s.Query(req); err == nil {
			t.Errorf("request %d accepted: %+v", i, req)
		}
	}
	if _, err := s.Query(&Request{Verts: []int32{49}}); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
}

// TestServeCloseDrains submits queries, closes, and checks post-close
// submissions fail while pre-close ones completed.
func TestServeCloseDrains(t *testing.T) {
	ds := testDataset(t, 60, 18)
	s, err := New(Config{
		Graph: ds.Graph, Features: ds.Features,
		Source: NewStatic(testModel(ds, nn.GCN, 81)), Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(&Request{Verts: []int32{1}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Query(&Request{Verts: []int32{1}}); err == nil {
		t.Fatal("query accepted after Close")
	}
}

func assertRowEqual(t *testing.T, what string, v int32, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s vertex %d: %d cols vs %d", what, v, len(got), len(want))
	}
	for c := range got {
		if got[c] != want[c] {
			t.Fatalf("%s vertex %d col %d: got %v want %v (%s)",
				what, v, c, got[c], want[c], fmt.Sprintf("diff %g", got[c]-want[c]))
		}
	}
}
