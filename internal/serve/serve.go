// Package serve is the online inference layer: it answers per-vertex
// prediction, embedding and link-score queries over a trained model, against
// the same partitioned graph a training session uses.
//
// The deployment shape follows GLT's decoupled serving architecture: graph
// work and NN work scale independently as two worker pools. An extraction
// pool walks the k-hop in-closure of each query batch (or a fanout-sampled
// approximation for inductive queries on unseen vertices) and assembles the
// input feature rows; a compute pool runs the batched layer-by-layer forward
// pass. The pools are joined by a latency/throughput micro-batcher that
// flushes on max-batch or max-wait, whichever comes first, and by a
// byte-budgeted per-layer embedding cache whose entries are invalidated
// whenever the model's parameter version advances — so a live training
// session and the serving path can share one graph without stale answers.
//
// Exact (unsampled) answers are bit-identical to engine.ReferenceForward
// restricted to the queried vertices: extraction preserves each
// destination's in-neighbor aggregation order and full-graph GCN
// normalisation, so serving a vertex and running the full-graph reference
// produce the same float32 rows.
package serve

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"neutronstar/internal/engine"
	"neutronstar/internal/graph"
	"neutronstar/internal/nn"
	"neutronstar/internal/obs"
	"neutronstar/internal/tensor"
)

// Source supplies the model parameters being served and a version that
// advances whenever they change. Both methods must be safe for concurrent
// use; Snapshot is only called when Version moved, never per request.
type Source interface {
	// Version identifies the current parameters. Any change (an optimiser
	// step, a checkpoint restore) must change the version — it is what
	// invalidates every derived embedding.
	Version() uint64
	// Snapshot returns a model carrying a stable copy of the current
	// parameters. The caller owns the returned model; later parameter
	// mutations in the source must not show through it.
	Snapshot() *nn.Model
}

// engineSource adapts a live training engine: the served parameters advance
// with every optimiser step.
type engineSource struct{ eng *engine.Engine }

// EngineSource exposes a (possibly still training) engine as a model source.
// Snapshots are taken at epoch barriers in the usual synchronous usage; the
// version is the engine's parameter mutation counter.
func EngineSource(eng *engine.Engine) Source { return engineSource{eng} }

func (s engineSource) Version() uint64     { return s.eng.ParamVersion() }
func (s engineSource) Snapshot() *nn.Model { return s.eng.CloneModel() }

// Static is a Source over a fixed model — the nsserve deployment where
// parameters come from a file. Update swaps the model and bumps the version,
// which is how a push-style deployment rolls new parameters without a
// restart (and how tests exercise cache invalidation deterministically).
type Static struct {
	mu      sync.Mutex
	model   *nn.Model
	version uint64
}

// NewStatic wraps a loaded model as a version-1 source.
func NewStatic(m *nn.Model) *Static { return &Static{model: m, version: 1} }

// Version returns the current parameter version.
func (s *Static) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Snapshot returns the current model. Static models are never mutated in
// place (Update replaces the pointer), so no copy is needed.
func (s *Static) Snapshot() *nn.Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model
}

// Update replaces the served model and advances the version. The caller must
// not mutate m afterwards.
func (s *Static) Update(m *nn.Model) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.model = m
	s.version++
}

// Config configures a Server. Graph, Features and Source are mandatory;
// zero values elsewhere select the documented defaults.
type Config struct {
	Graph    *graph.Graph
	Features *tensor.Tensor
	Source   Source
	// MaxBatch flushes the micro-batcher when the pending queries cover this
	// many vertices (default 32). A single oversized request still forms one
	// batch — requests are never split.
	MaxBatch int
	// MaxWait flushes a non-empty batch after this delay even if MaxBatch
	// was not reached (default 2ms): the latency bound a lone request pays.
	MaxWait time.Duration
	// CacheBytes budgets the per-layer embedding cache (row bytes); <= 0
	// disables caching entirely.
	CacheBytes int64
	// ExtractWorkers / ComputeWorkers size the two pools independently
	// (default 2 each) — graph traversal and NN compute rarely want the same
	// parallelism, which is the point of decoupling them.
	ExtractWorkers int
	ComputeWorkers int
	// Seed is folded with the request id into each sampled query's private
	// RNG, making every inductive answer reproducible in isolation.
	Seed uint64
	// Registry receives the serving metrics (default obs.Default()).
	Registry *obs.Registry
	// Tracer, when non-nil, records one span per extraction/compute job on
	// per-worker rows (extract workers first, compute workers after),
	// annotated with the request trace ids — the serving counterpart of the
	// training engine's causal timeline, exportable as a Chrome trace.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.ExtractWorkers <= 0 {
		c.ExtractWorkers = 2
	}
	if c.ComputeWorkers <= 0 {
		c.ComputeWorkers = 2
	}
	if c.Registry == nil {
		c.Registry = obs.Default()
	}
	return c
}

// InductiveVertex describes a vertex the graph has never seen: its raw
// feature row and the existing vertices it draws edges from. The serving
// path computes its representation GraphSAGE-style, without touching the
// stored graph.
type InductiveVertex struct {
	Features  []float32 `json:"features"`
	Neighbors []int32   `json:"neighbors"`
}

// Request is one inference query: any mix of existing vertices and
// inductive (unseen) vertices. With Fanouts set, neighborhood extraction
// samples instead of expanding exactly; inductive vertices always sample
// when Fanouts is set and expand exactly otherwise.
type Request struct {
	Verts     []int32           `json:"vertices,omitempty"`
	Inductive []InductiveVertex `json:"inductive,omitempty"`
	// Fanouts bounds the neighbors kept per vertex per hop, input layer
	// first (DGL order). Empty means exact extraction.
	Fanouts []int `json:"fanouts,omitempty"`
	// Seed pins the sampling RNG; 0 derives one from the request id.
	Seed uint64 `json:"seed,omitempty"`
}

func (r *Request) numQueries() int { return len(r.Verts) + len(r.Inductive) }

// sampled reports whether the request needs its own extraction (private RNG
// or batch-local virtual vertices) and therefore bypasses the micro-batcher.
func (r *Request) sampled() bool { return len(r.Fanouts) > 0 || len(r.Inductive) > 0 }

// Result answers a Request: one row per query, Verts first and Inductive
// after, in request order.
type Result struct {
	// Version is the parameter version the answer was computed under.
	Version uint64
	// Logits holds the final-layer rows; Embeds the penultimate-layer
	// representations (the rows entering the classifier layer).
	Logits *tensor.Tensor
	Embeds *tensor.Tensor
	// Timing is the request's per-stage latency breakdown; its stages sum to
	// its Total (see StageTiming).
	Timing StageTiming
}

// work is one in-flight request: the pipeline fills res/err and closes done.
type work struct {
	req   *Request
	seed  uint64
	trace reqTrace
	res   *Result
	err   error
	done  chan struct{}
}

func (w *work) fail(err error) {
	w.err = err
	close(w.done)
}

// job is a unit handed to the extraction pool: one micro-batch of exact
// requests, or a single sampled/inductive request.
type job struct {
	items []*work
}

// assembled is an extracted job waiting for the compute pool.
type assembled struct {
	items   []*work
	version uint64
	// cacheNanos is the time extraction spent inside embedding-cache lookups
	// for this job, attributed to every item's cache stage.
	cacheNanos int64
	// model is the server's shared snapshot for version; compute workers
	// clone it into a private replica once per version (tape binding is not
	// concurrency-safe on a shared model).
	model *nn.Model
	gen   uint64
	plan  *plan
	// exact marks a cache-eligible extraction: sampled rows are
	// approximations and must never be cached.
	exact bool
}

// Server answers inference queries over one graph + feature matrix, against
// whatever parameters its Source currently holds.
type Server struct {
	cfg   Config
	cache *embedCache
	bat   *batcher

	extractQ chan *job
	computeQ chan *assembled

	// model/version are the server-wide snapshot, refreshed when the source
	// version moves; compute workers keep private clones keyed by version.
	mu      sync.RWMutex
	model   *nn.Model
	version uint64

	reqID   atomic.Uint64
	closed  atomic.Bool
	extWG   sync.WaitGroup
	compWG  sync.WaitGroup
	metrics *serveMetrics

	requests atomic.Int64
	errors   atomic.Int64
	batches  atomic.Int64
	batched  atomic.Int64
}

type serveMetrics struct {
	requests   *obs.Counter
	errors     *obs.Counter
	batches    *obs.Counter
	batchSz    *obs.Histogram
	latency    *obs.Histogram
	stage      *obs.HistogramVec
	queueDepth *obs.Gauge
	flushes    *obs.CounterVec
	busy       *obs.CounterVec
}

// New builds and starts a server: MaxBatch/MaxWait micro-batching in front
// of ExtractWorkers extraction goroutines feeding ComputeWorkers compute
// goroutines. Close must be called when done.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Graph == nil || cfg.Features == nil || cfg.Source == nil {
		return nil, fmt.Errorf("serve: Config needs Graph, Features and Source")
	}
	if cfg.Features.Rows() != cfg.Graph.NumVertices() {
		return nil, fmt.Errorf("serve: %d feature rows for %d vertices",
			cfg.Features.Rows(), cfg.Graph.NumVertices())
	}
	model := cfg.Source.Snapshot()
	if model.NumLayers() == 0 {
		return nil, fmt.Errorf("serve: source model has no layers")
	}
	if d := model.Dims()[0]; d != cfg.Features.Cols() {
		return nil, fmt.Errorf("serve: model expects %d input features, graph has %d",
			d, cfg.Features.Cols())
	}
	s := &Server{
		cfg:      cfg,
		model:    model,
		version:  cfg.Source.Version(),
		extractQ: make(chan *job, 4*cfg.ExtractWorkers),
		computeQ: make(chan *assembled, 4*cfg.ComputeWorkers),
		metrics: &serveMetrics{
			requests: cfg.Registry.Counter("ns_serve_requests_total", "Inference requests received."),
			errors:   cfg.Registry.Counter("ns_serve_errors_total", "Inference requests that failed."),
			batches:  cfg.Registry.Counter("ns_serve_batches_total", "Micro-batches executed."),
			batchSz:  cfg.Registry.Histogram("ns_serve_batch_queries", "Queries per executed micro-batch.", obs.LinearBuckets(1, 8, 16)),
			latency:  cfg.Registry.Histogram("ns_serve_latency_seconds", "End-to-end request latency.", obs.ExpBuckets(1e-5, 2.5, 16)),
			stage: cfg.Registry.HistogramVec("ns_serve_stage_seconds",
				"Per-request latency by pipeline stage (queue, cache, extract, compute).",
				obs.ExpBuckets(1e-6, 2.5, 18), "stage"),
			queueDepth: cfg.Registry.Gauge("ns_serve_batcher_queue_depth",
				"Requests pending in the micro-batcher."),
			flushes: cfg.Registry.CounterVec("ns_serve_batcher_flushes_total",
				"Micro-batch flushes by trigger (max_batch, max_wait, close).", "reason"),
			busy: cfg.Registry.CounterVec("ns_serve_worker_busy_seconds_total",
				"Cumulative busy time per pool worker.", "pool", "worker"),
		},
	}
	// Pre-create every label combination the pipeline will emit, so the
	// series exist (at zero) from the first scrape and the /timeline history
	// has a baseline sample to difference against instead of a mid-window
	// birth.
	for _, st := range []string{StageQueue, StageCache, StageExtract, StageCompute} {
		s.metrics.stage.With(st)
	}
	for _, reason := range []string{flushMaxBatch, flushMaxWait, flushClose} {
		s.metrics.flushes.With(reason)
	}
	for i := 0; i < cfg.ExtractWorkers; i++ {
		s.metrics.busy.With("extract", strconv.Itoa(i))
	}
	for i := 0; i < cfg.ComputeWorkers; i++ {
		s.metrics.busy.With("compute", strconv.Itoa(i))
	}
	if cfg.CacheBytes > 0 {
		s.cache = newEmbedCache(cfg.CacheBytes, cfg.Registry)
	}
	s.bat = newBatcher(cfg.MaxBatch, cfg.MaxWait, func(items []*work, reason string) {
		s.batches.Add(1)
		s.metrics.batches.Inc()
		s.metrics.flushes.With(reason).Inc()
		n := 0
		for _, w := range items {
			n += w.req.numQueries()
		}
		s.metrics.batchSz.Observe(float64(n))
		s.batched.Add(int64(len(items)))
		s.extractQ <- &job{items: items}
	})
	s.bat.depth = func(n int) { s.metrics.queueDepth.Set(float64(n)) }
	for i := 0; i < cfg.ExtractWorkers; i++ {
		s.extWG.Add(1)
		go s.extractLoop(i)
	}
	for i := 0; i < cfg.ComputeWorkers; i++ {
		s.compWG.Add(1)
		go s.computeLoop(i)
	}
	return s, nil
}

// Close drains the pipeline: the batcher flushes its pending batch, both
// pools finish their queued jobs, and every in-flight request completes.
// Queries submitted after Close fail immediately.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.bat.Close()
	close(s.extractQ)
	s.extWG.Wait()
	close(s.computeQ)
	s.compWG.Wait()
}

// ModelVersion returns the parameter version the server is currently
// answering with.
func (s *Server) ModelVersion() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// refresh re-snapshots the model when the source's version moved, dropping
// every cached embedding: answers computed after a parameter update must
// never mix in pre-update rows.
func (s *Server) refresh() (*nn.Model, uint64) {
	v := s.cfg.Source.Version()
	s.mu.RLock()
	if v == s.version {
		m := s.model
		s.mu.RUnlock()
		return m, v
	}
	s.mu.RUnlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if v != s.version {
		s.model = s.cfg.Source.Snapshot()
		s.version = v
		s.cache.Invalidate()
	}
	return s.model, s.version
}

// Query answers one request, blocking until the pipeline completes it.
// Exact known-vertex requests ride the micro-batcher; sampled and inductive
// requests run as their own job with a private, request-derived RNG. The
// returned Result carries the request's per-stage timing, and the end-to-end
// latency observation carries the trace id as an exemplar — a histogram
// outlier links back to a concrete request.
func (s *Server) Query(req *Request) (*Result, error) {
	start := time.Now()
	s.requests.Add(1)
	s.metrics.requests.Inc()
	res, err := s.query(req)
	if err != nil {
		s.errors.Add(1)
		s.metrics.errors.Inc()
		return nil, err
	}
	s.metrics.latency.ObserveWithExemplar(time.Since(start).Seconds(), res.Timing.TraceIDHex(), time.Now())
	s.observeStages(res.Timing)
	return res, nil
}

// observeStages records one request's breakdown into the stage histograms.
func (s *Server) observeStages(t StageTiming) {
	s.metrics.stage.With(StageQueue).Observe(t.Queue.Seconds())
	s.metrics.stage.With(StageCache).Observe(t.Cache.Seconds())
	s.metrics.stage.With(StageExtract).Observe(t.Extract.Seconds())
	s.metrics.stage.With(StageCompute).Observe(t.Compute.Seconds())
}

func (s *Server) query(req *Request) (*Result, error) {
	if err := s.validate(req); err != nil {
		return nil, err
	}
	if s.closed.Load() {
		return nil, fmt.Errorf("serve: server closed")
	}
	id := s.reqID.Add(1)
	w := &work{req: req, done: make(chan struct{})}
	w.trace.id = id
	w.trace.submitted = time.Now()
	if req.sampled() {
		w.seed = req.Seed
		if w.seed == 0 {
			// splitmix-style fold so consecutive request ids land far apart.
			w.seed = (s.cfg.Seed ^ (id * 0x9E3779B97F4A7C15)) | 1
		}
		s.extractQ <- &job{items: []*work{w}}
	} else if err := s.bat.Submit(w); err != nil {
		return nil, err
	}
	<-w.done
	if w.res != nil {
		w.res.Timing = w.trace.timing()
	}
	return w.res, w.err
}

func (s *Server) validate(req *Request) error {
	n := int32(s.cfg.Graph.NumVertices())
	if req.numQueries() == 0 {
		return fmt.Errorf("serve: empty request")
	}
	for _, v := range req.Verts {
		if v < 0 || v >= n {
			return fmt.Errorf("serve: vertex %d out of [0,%d)", v, n)
		}
	}
	for i, iv := range req.Inductive {
		if len(iv.Features) != s.cfg.Features.Cols() {
			return fmt.Errorf("serve: inductive vertex %d has %d features, graph has %d",
				i, len(iv.Features), s.cfg.Features.Cols())
		}
		for _, u := range iv.Neighbors {
			if u < 0 || u >= n {
				return fmt.Errorf("serve: inductive vertex %d neighbor %d out of [0,%d)", i, u, n)
			}
		}
	}
	for _, f := range req.Fanouts {
		if f <= 0 {
			return fmt.Errorf("serve: fanout %d must be positive", f)
		}
	}
	return nil
}

// extractLoop is the extraction pool: k-hop closure walk (or sampling) and
// feature-row assembly, no NN math. idx is the worker's row in the trace
// timeline and its label in the busy-time counter.
func (s *Server) extractLoop(idx int) {
	defer s.extWG.Done()
	busy := s.metrics.busy.With("extract", strconv.Itoa(idx))
	for j := range s.extractQ {
		start := time.Now()
		for _, w := range j.items {
			w.trace.extractStart = start
		}
		var sp *obs.Span
		if s.cfg.Tracer != nil {
			sp = s.cfg.Tracer.Start(idx, obs.ClassNone, "extract",
				obs.Int("items", len(j.items)), obs.String("trace_ids", traceIDs(j.items)))
		}
		model, version := s.refresh()
		asm, err := s.extract(j, model, version)
		end := time.Now()
		if sp != nil {
			sp.End()
		}
		busy.Add(end.Sub(start).Seconds())
		if err != nil {
			for _, w := range j.items {
				w.fail(err)
			}
			continue
		}
		for _, w := range j.items {
			w.trace.extractEnd = end
			w.trace.cacheNanos = asm.cacheNanos
		}
		s.computeQ <- asm
	}
}

// computeLoop is the compute pool: batched layer forward passes on a private
// model replica (tape parameter binding is stateful, so replicas are
// per-goroutine, re-cloned only when the version moves). idx is the worker's
// index within the pool; its trace row sits after the extraction rows.
func (s *Server) computeLoop(idx int) {
	defer s.compWG.Done()
	busy := s.metrics.busy.With("compute", strconv.Itoa(idx))
	row := s.cfg.ExtractWorkers + idx
	var model *nn.Model
	var version uint64
	for asm := range s.computeQ {
		start := time.Now()
		for _, w := range asm.items {
			w.trace.computeStart = start
		}
		var sp *obs.Span
		if s.cfg.Tracer != nil {
			sp = s.cfg.Tracer.Start(row, obs.ClassNone, "compute",
				obs.Int("items", len(asm.items)), obs.String("trace_ids", traceIDs(asm.items)))
		}
		if model == nil || version != asm.version {
			model = cloneForCompute(asm.model)
			version = asm.version
		}
		s.compute(asm, model)
		if sp != nil {
			sp.End()
		}
		busy.Add(time.Since(start).Seconds())
	}
}

// cloneForCompute builds a private replica of a shared snapshot: same
// architecture (the model's Name round-trips through ModelKind), copied
// parameter values.
func cloneForCompute(m *nn.Model) *nn.Model {
	c := nn.MustNewModel(nn.ModelKind(m.Name), m.Dims(), 0, 0)
	src, dst := m.Params(), c.Params()
	for i := range dst {
		dst[i].Value.CopyFrom(src[i].Value)
	}
	return c
}

// Stats is the live serving snapshot, served as JSON on /stats.
type Stats struct {
	ModelVersion uint64 `json:"model_version"`
	NumVertices  int    `json:"num_vertices"`
	Layers       int    `json:"layers"`
	Classes      int    `json:"classes"`
	Requests     int64  `json:"requests"`
	Errors       int64  `json:"errors"`
	Batches      int64  `json:"batches"`
	// BatchedRequests counts requests that went through the micro-batcher
	// (exact queries); the remainder ran as their own sampled job.
	BatchedRequests int64      `json:"batched_requests"`
	Cache           CacheStats `json:"cache"`
}

// CacheStats reports the embedding cache's counters; all zero when caching
// is disabled.
type CacheStats struct {
	Enabled     bool  `json:"enabled"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Bytes       int64 `json:"bytes"`
	BudgetBytes int64 `json:"budget_bytes"`
}

// Stats snapshots the server. Safe to call concurrently with Query.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	dims := s.model.Dims()
	version := s.version
	s.mu.RUnlock()
	st := Stats{
		ModelVersion:    version,
		NumVertices:     s.cfg.Graph.NumVertices(),
		Layers:          len(dims) - 1,
		Classes:         dims[len(dims)-1],
		Requests:        s.requests.Load(),
		Errors:          s.errors.Load(),
		Batches:         s.batches.Load(),
		BatchedRequests: s.batched.Load(),
	}
	st.Cache = s.cache.stats()
	return st
}
