package serve

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Per-request causal tracing: every query carries a reqTrace through the
// pipeline, stamped at each stage boundary. The stamps partition the server's
// wall time for the request into four stages that sum to the pipeline total:
//
//	queue   = (extractStart - submitted) + (computeStart - extractEnd)
//	        batcher wait plus both channel handoffs — time spent owned by
//	        nobody
//	cache   = nanoseconds inside embedding-cache lookups during extraction
//	extract = extraction work minus the cache share
//	compute = forward-pass work until the result row is sliced out
//
// The breakdown rides back to clients on a Server-Timing header (response
// bodies stay bit-identical), feeds the ns_serve_stage_seconds histograms,
// and its trace id is attached as an exemplar to the end-to-end latency
// histogram so a p99 bucket links to a concrete request.

// Stage names used by the stage histogram's label, the Server-Timing header
// and the nsload report. StageTotal is the pipeline total (submitted to
// finished), not a fifth additive stage.
const (
	StageQueue   = "queue"
	StageCache   = "cache"
	StageExtract = "extract"
	StageCompute = "compute"
	StageTotal   = "total"
)

// reqTrace carries one request's stage boundary stamps through the pipeline.
// Stamps before the extraction pool are written by the submitting goroutine;
// later ones by exactly one pool worker, each ordered by the channel handoff
// that moves the work — no stamp is written concurrently with a read.
type reqTrace struct {
	id           uint64
	submitted    time.Time
	extractStart time.Time
	extractEnd   time.Time
	computeStart time.Time
	finished     time.Time
	cacheNanos   int64
}

// timing folds the stamps into a StageTiming. Requests that failed before
// reaching a stage report zero for it.
func (t *reqTrace) timing() StageTiming {
	st := StageTiming{TraceID: t.id, Cache: time.Duration(t.cacheNanos)}
	if !t.extractStart.IsZero() {
		st.Queue = t.extractStart.Sub(t.submitted)
	}
	if !t.extractEnd.IsZero() {
		st.Extract = t.extractEnd.Sub(t.extractStart) - st.Cache
		if st.Extract < 0 {
			st.Extract = 0
		}
	}
	if !t.computeStart.IsZero() {
		st.Queue += t.computeStart.Sub(t.extractEnd)
	}
	if !t.finished.IsZero() {
		st.Compute = t.finished.Sub(t.computeStart)
		st.Total = t.finished.Sub(t.submitted)
	}
	return st
}

// StageTiming is a request's per-stage latency breakdown. Queue + Cache +
// Extract + Compute equals Total exactly (all five are carved from the same
// monotonic stamps); Total is the in-server pipeline time, which is the
// client-observed latency minus HTTP transport and encode/decode overhead.
type StageTiming struct {
	// TraceID is the request's pipeline trace id; its %016x rendering is the
	// exemplar trace_id on the latency histogram and the X-NS-Trace-Id header.
	TraceID uint64
	Queue   time.Duration
	Cache   time.Duration
	Extract time.Duration
	Compute time.Duration
	Total   time.Duration
}

// TraceIDHex renders the trace id the way exemplars and headers carry it.
func (t StageTiming) TraceIDHex() string { return fmt.Sprintf("%016x", t.TraceID) }

// StageSum returns the sum of the four additive stages — equal to Total for
// a completed request, which is what the stage-attribution test asserts.
func (t StageTiming) StageSum() time.Duration {
	return t.Queue + t.Cache + t.Extract + t.Compute
}

// ServerTiming renders the breakdown as a Server-Timing header value
// (RFC-style "name;dur=millis" entries, millisecond durations).
func (t StageTiming) ServerTiming() string {
	var b strings.Builder
	writeServerTimingEntry(&b, StageQueue, t.Queue)
	writeServerTimingEntry(&b, StageCache, t.Cache)
	writeServerTimingEntry(&b, StageExtract, t.Extract)
	writeServerTimingEntry(&b, StageCompute, t.Compute)
	writeServerTimingEntry(&b, StageTotal, t.Total)
	return b.String()
}

func writeServerTimingEntry(b *strings.Builder, name string, d time.Duration) {
	if b.Len() > 0 {
		b.WriteString(", ")
	}
	fmt.Fprintf(b, "%s;dur=%.3f", name, float64(d)/float64(time.Millisecond))
}

// ParseServerTiming parses a Server-Timing header value back into per-stage
// durations keyed by stage name. Entries without a dur parameter and
// malformed entries are skipped — the caller (nsload, tests) treats missing
// stages as zero.
func ParseServerTiming(header string) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, entry := range strings.Split(header, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ";")
		if len(parts) == 0 || parts[0] == "" {
			continue
		}
		name := strings.TrimSpace(parts[0])
		for _, p := range parts[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok || strings.TrimSpace(k) != "dur" {
				continue
			}
			ms, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				continue
			}
			out[name] = time.Duration(ms * float64(time.Millisecond))
		}
	}
	return out
}

// traceIDs renders the trace ids of a job's items for span attributes,
// truncated so a huge batch doesn't bloat the trace export.
func traceIDs(items []*work) string {
	const max = 8
	var b strings.Builder
	for i, w := range items {
		if i == max {
			fmt.Fprintf(&b, ",+%d", len(items)-max)
			break
		}
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%016x", w.trace.id)
	}
	return b.String()
}
