package sampler

import (
	"sync"
	"testing"
	"testing/quick"

	"neutronstar/internal/dataset"
	"neutronstar/internal/graph"
	"neutronstar/internal/tensor"
)

func sampleGraph(t testing.TB) *graph.Graph {
	t.Helper()
	d := dataset.Load(dataset.Spec{
		Name: "s", Vertices: 300, AvgDegree: 12, FeatureDim: 4,
		NumClasses: 4, HiddenDim: 4, Gen: dataset.GenRMAT, Seed: 77,
	})
	return d.Graph
}

func TestSampleBlockStructure(t *testing.T) {
	g := sampleGraph(t)
	rng := tensor.NewRNG(1)
	seeds := []int32{5, 17, 100}
	blocks := Sample(g, seeds, []int{25, 10}, rng)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	top := blocks[1]
	if len(top.Dsts) != 3 {
		t.Fatalf("top dsts = %v", top.Dsts)
	}
	// Fanout bound: each dst has at most 10 sampled in-edges in the top block.
	for d := 0; d+1 < len(top.Offsets); d++ {
		if n := top.Offsets[d+1] - top.Offsets[d]; n > 10 {
			t.Fatalf("dst %d sampled %d > 10", d, n)
		}
	}
	// Chaining: top block's sources are the bottom block's destinations.
	if len(top.Srcs) != len(blocks[0].Dsts) {
		t.Fatal("block frontiers not chained")
	}
	for i := range top.Srcs {
		if top.Srcs[i] != blocks[0].Dsts[i] {
			t.Fatal("frontier order mismatch")
		}
	}
	// Every sampled edge exists in the original graph.
	for e := range top.SrcIdx {
		u := top.Srcs[top.SrcIdx[e]]
		v := top.Dsts[top.DstIdx[e]]
		if !g.HasEdge(u, v) {
			t.Fatalf("sampled nonexistent edge %d->%d", u, v)
		}
	}
	// SelfIdx maps each dst to its own source row.
	for d, v := range top.Dsts {
		if top.Srcs[top.SelfIdx[d]] != v {
			t.Fatal("SelfIdx broken")
		}
	}
}

func TestSampleKeepsAllWhenDegreeUnderFanout(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{Src: 0, Dst: 3}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3}})
	blocks := Sample(g, []int32{3}, []int{10}, tensor.NewRNG(2))
	if blocks[0].NumEdges() != 3 {
		t.Fatalf("edges = %d, want all 3", blocks[0].NumEdges())
	}
}

func TestSampleDeterministicPerRNG(t *testing.T) {
	g := sampleGraph(t)
	a := Sample(g, []int32{1, 2, 3}, []int{5, 5}, tensor.NewRNG(9))
	b := Sample(g, []int32{1, 2, 3}, []int{5, 5}, tensor.NewRNG(9))
	if len(a[0].SrcIdx) != len(b[0].SrcIdx) {
		t.Fatal("same seed produced different samples")
	}
	for i := range a[0].SrcIdx {
		if a[0].SrcIdx[i] != b[0].SrcIdx[i] {
			t.Fatal("sample order differs")
		}
	}
}

func TestPickWithoutReplacement(t *testing.T) {
	rng := tensor.NewRNG(3)
	nbrs := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	for trial := 0; trial < 50; trial++ {
		got := pick(nbrs, 4, rng)
		if len(got) != 4 {
			t.Fatalf("picked %d", len(got))
		}
		seen := map[int32]bool{}
		for _, v := range got {
			if seen[v] {
				t.Fatalf("duplicate pick %d", v)
			}
			seen[v] = true
		}
	}
}

func TestBatchIteratorCoversAll(t *testing.T) {
	ids := make([]int32, 23)
	for i := range ids {
		ids[i] = int32(i * 2)
	}
	it := NewBatchIterator(ids, 5, tensor.NewRNG(4))
	if it.NumBatches() != 5 {
		t.Fatalf("batches = %d", it.NumBatches())
	}
	seen := map[int32]int{}
	batches := 0
	for b := it.Next(); b != nil; b = it.Next() {
		batches++
		if len(b) > 5 {
			t.Fatalf("oversized batch %d", len(b))
		}
		for _, v := range b {
			seen[v]++
		}
	}
	if batches != 5 || len(seen) != 23 {
		t.Fatalf("batches=%d unique=%d", batches, len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("id %d seen %d times", v, c)
		}
	}
	// Reset starts a new epoch with a fresh shuffle.
	it.Reset()
	if it.Next() == nil {
		t.Fatal("Reset did not restart")
	}
}

func TestBatchIteratorEmpty(t *testing.T) {
	it := NewBatchIterator(nil, 4, tensor.NewRNG(5))
	if it.NumBatches() != 0 || it.Next() != nil {
		t.Fatal("empty iterator misbehaves")
	}
}

// Property: blocks always chain and respect fanouts on random graphs.
func TestQuickSampleValid(t *testing.T) {
	f := func(seed uint64, n8, f8 uint8) bool {
		n := int(n8%60) + 10
		fanout := int(f8%5) + 1
		rng := tensor.NewRNG(seed)
		edges := make([]graph.Edge, n*3)
		for i := range edges {
			edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		seeds := []int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
		blocks := Sample(g, seeds, []int{fanout, fanout}, rng)
		for _, b := range blocks {
			for d := 0; d+1 < len(b.Offsets); d++ {
				if b.Offsets[d+1]-b.Offsets[d] > int32(fanout) {
					return false
				}
			}
			for e := range b.SrcIdx {
				if !g.HasEdge(b.Srcs[b.SrcIdx[e]], b.Dsts[b.DstIdx[e]]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSampleSeededConcurrent exercises the concurrent serving pattern: many
// goroutines sampling at once, each with a private request-derived RNG. Run
// under -race this pins the fix for the shared-RNG data race; the assertion
// pins determinism — every same-seeded call must reproduce the serial result
// exactly, no matter how calls interleave.
func TestSampleSeededConcurrent(t *testing.T) {
	g := sampleGraph(t)
	seeds := []int32{5, 17, 100, 241}
	fanouts := []int{10, 5}

	want := make([][]*Block, 8)
	for s := range want {
		want[s] = SampleSeeded(g, seeds, fanouts, uint64(s+1))
	}

	var wg sync.WaitGroup
	for iter := 0; iter < 16; iter++ {
		for s := range want {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				got := SampleSeeded(g, seeds, fanouts, uint64(s+1))
				for l := range got {
					if !equalInt32(got[l].Srcs, want[s][l].Srcs) ||
						!equalInt32(got[l].SrcIdx, want[s][l].SrcIdx) ||
						!equalInt32(got[l].DstIdx, want[s][l].DstIdx) {
						t.Errorf("seed %d layer %d: concurrent sample differs from serial", s+1, l)
						return
					}
				}
			}(s)
		}
	}
	wg.Wait()

	// Distinct seeds must not all collapse to one sample (fanout < degree
	// somewhere in this graph, so at least two of the eight should differ).
	distinct := false
	for s := 1; s < len(want); s++ {
		if !equalInt32(want[s][0].SrcIdx, want[0][0].SrcIdx) {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("eight different seeds produced identical samples")
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
