// Package sampler implements the layered neighbor sampling used by the
// DepCache-with-sampling systems the paper compares against (DistDGL's
// default (10, 25) fanout, §5.1): for a mini-batch of seed vertices, each
// layer keeps at most fanout randomly chosen in-neighbors per vertex,
// producing a stack of bipartite blocks trained with mini-batch gradient
// descent. Sampling trades exactness for cheaper computation — the accuracy
// sacrifice Figures 14's DepCache-sampling curve exhibits.
package sampler

import (
	"fmt"

	"neutronstar/internal/graph"
	"neutronstar/internal/tensor"
)

// Block is one sampled bipartite layer: every destination aggregates from a
// bounded sample of its in-neighbors. Destinations are a subset of sources
// (each vertex also feeds its own next-layer representation).
type Block struct {
	// Srcs is the input frontier (global vertex ids, ascending).
	Srcs []int32
	// Dsts is the output frontier, a prefix-aligned subset of Srcs.
	Dsts []int32
	// SrcIdx/DstIdx address sampled edges: SrcIdx[e] indexes Srcs, DstIdx[e]
	// indexes Dsts. Edges are grouped by destination.
	SrcIdx, DstIdx []int32
	// Offsets delimits each destination's edge group (len(Dsts)+1).
	Offsets []int32
	// SelfIdx[d] is the row of Dsts[d] within Srcs.
	SelfIdx []int32
}

// NumEdges returns the number of sampled edges.
func (b *Block) NumEdges() int { return len(b.SrcIdx) }

// Sample builds the block stack for seeds with the given per-layer fanouts.
// fanouts[len-1] applies to the seeds' direct neighbors (first hop) and
// fanouts[0] to the deepest hop, matching a DGL fanout list ordered from
// input layer to output layer. Blocks are returned input-first: blocks[0]
// consumes raw features, blocks[len-1] produces the seed representations.
//
// rng is mutated on every draw and must not be shared across goroutines: a
// training loop hands its epoch RNG in, a concurrent serving path must give
// each request its own (see SampleSeeded). Two calls with identically seeded
// RNGs and equal inputs produce identical blocks.
func Sample(g *graph.Graph, seeds []int32, fanouts []int, rng *tensor.RNG) []*Block {
	L := len(fanouts)
	blocks := make([]*Block, L)
	frontier := dedupSorted(seeds)
	// Walk top-down building each block's sampled edges, then reverse.
	for l := L - 1; l >= 0; l-- {
		fanout := fanouts[l]
		b := &Block{Dsts: frontier}
		type edge struct{ src, dst int32 }
		var edges []edge
		srcSet := make(map[int32]struct{}, len(frontier)*2)
		for _, v := range frontier {
			srcSet[v] = struct{}{} // self row always present
		}
		for di, v := range frontier {
			nbrs := g.InNeighbors(v)
			picked := pick(nbrs, fanout, rng)
			for _, u := range picked {
				srcSet[u] = struct{}{}
				edges = append(edges, edge{src: u, dst: int32(di)})
			}
		}
		b.Srcs = sortedKeys(srcSet)
		srcPos := make(map[int32]int32, len(b.Srcs))
		for i, u := range b.Srcs {
			srcPos[u] = int32(i)
		}
		// Group edges by destination (they already are: frontier order).
		b.Offsets = make([]int32, len(frontier)+1)
		b.SelfIdx = make([]int32, len(frontier))
		ei := 0
		for di, v := range frontier {
			b.SelfIdx[di] = srcPos[v]
			for ei < len(edges) && edges[ei].dst == int32(di) {
				b.SrcIdx = append(b.SrcIdx, srcPos[edges[ei].src])
				b.DstIdx = append(b.DstIdx, int32(di))
				ei++
			}
			b.Offsets[di+1] = int32(len(b.SrcIdx))
		}
		blocks[l] = b
		frontier = b.Srcs
	}
	return blocks
}

// SampleSeeded is Sample with a private RNG seeded from seed: the race-free
// form for concurrent callers. An online serving path derives seed from the
// request id, making every inductive query individually reproducible no
// matter how requests interleave.
func SampleSeeded(g *graph.Graph, seeds []int32, fanouts []int, seed uint64) []*Block {
	return Sample(g, seeds, fanouts, tensor.NewRNG(seed))
}

// Pick samples up to fanout elements of nbrs without replacement using a
// partial Fisher-Yates shuffle over a copy. When the list is already within
// the fanout it is returned as-is — callers must not mutate the result. It
// is the sampling primitive Sample applies per destination, exported for
// paths that sample over frontiers Sample cannot see (e.g. a serving
// overlay's virtual vertices).
func Pick(nbrs []int32, fanout int, rng *tensor.RNG) []int32 {
	return pick(nbrs, fanout, rng)
}

// pick samples up to fanout elements of nbrs without replacement. When the
// list is short it is returned as-is (callers must not mutate).
func pick(nbrs []int32, fanout int, rng *tensor.RNG) []int32 {
	if len(nbrs) <= fanout {
		return nbrs
	}
	// Partial Fisher-Yates over a copy.
	cp := make([]int32, len(nbrs))
	copy(cp, nbrs)
	for i := 0; i < fanout; i++ {
		j := i + rng.Intn(len(cp)-i)
		cp[i], cp[j] = cp[j], cp[i]
	}
	return cp[:fanout]
}

func dedupSorted(in []int32) []int32 {
	set := make(map[int32]struct{}, len(in))
	for _, v := range in {
		set[v] = struct{}{}
	}
	return sortedKeys(set)
}

func sortedKeys(m map[int32]struct{}) []int32 {
	out := make([]int32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		v := out[i]
		j := i - 1
		for j >= 0 && out[j] > v {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = v
	}
	return out
}

// BatchIterator yields shuffled mini-batches of vertex ids each epoch.
type BatchIterator struct {
	ids   []int32
	size  int
	rng   *tensor.RNG
	order []int
	pos   int
}

// NewBatchIterator builds an iterator over ids with the given batch size.
func NewBatchIterator(ids []int32, size int, rng *tensor.RNG) *BatchIterator {
	if size <= 0 {
		panic(fmt.Sprintf("sampler: batch size %d", size))
	}
	return &BatchIterator{ids: ids, size: size, rng: rng}
}

// NumBatches returns the number of batches per epoch.
func (it *BatchIterator) NumBatches() int {
	if len(it.ids) == 0 {
		return 0
	}
	return (len(it.ids) + it.size - 1) / it.size
}

// Reset reshuffles for a new epoch.
func (it *BatchIterator) Reset() {
	it.order = it.rng.Perm(len(it.ids))
	it.pos = 0
}

// Next returns the next batch, or nil when the epoch is exhausted.
func (it *BatchIterator) Next() []int32 {
	if it.order == nil {
		it.Reset()
	}
	if it.pos >= len(it.ids) {
		return nil
	}
	end := min(it.pos+it.size, len(it.ids))
	batch := make([]int32, 0, end-it.pos)
	for _, k := range it.order[it.pos:end] {
		batch = append(batch, it.ids[k])
	}
	it.pos = end
	return batch
}
