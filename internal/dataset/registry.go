package dataset

import (
	"fmt"
	"sort"
	"strings"
)

// The registry mirrors Table 2 of the paper. Vertex counts are scaled down
// (per-graph factors chosen so the largest run fits a single machine) while
// average degree ordering, degree skew, and the relative feature/hidden/label
// dimensions are preserved — those are the quantities the cache-vs-
// communicate tradeoff depends on. Reddit's extreme average degree (487) is
// capped at ~96 to keep edge tensors in memory; it remains by far the
// densest graph, which is the property Figures 2a/9/14 exercise.
var registry = map[string]Spec{
	"google": {
		Name: "google", Vertices: 8700, AvgDegree: 5.86, FeatureDim: 64,
		NumClasses: 16, HiddenDim: 32, Gen: GenLocality, LocalityScale: 0.02, Seed: 101,
		PaperVertices: 870_000, PaperEdges: 5_100_000, PaperFtrDim: 512, PaperHidden: 256,
	},
	"pokec": {
		Name: "pokec", Vertices: 16000, AvgDegree: 18.75, FeatureDim: 64,
		NumClasses: 16, HiddenDim: 32, Gen: GenRMAT, Skew: 0.42, Seed: 102,
		PaperVertices: 1_600_000, PaperEdges: 30_000_000, PaperFtrDim: 512, PaperHidden: 256,
	},
	"livejournal": {
		Name: "livejournal", Vertices: 24000, AvgDegree: 14.12, FeatureDim: 40,
		NumClasses: 16, HiddenDim: 20, Gen: GenLocality, LocalityScale: 0.015, Seed: 103,
		PaperVertices: 4_800_000, PaperEdges: 68_000_000, PaperFtrDim: 320, PaperHidden: 160,
	},
	"reddit": {
		Name: "reddit", Vertices: 2300, AvgDegree: 96, FeatureDim: 75,
		NumClasses: 41, HiddenDim: 32, Gen: GenSBM, Homophily: 0.50,
		SignalStrength: 0.06, Seed: 104,
		PaperVertices: 230_000, PaperEdges: 114_000_000, PaperFtrDim: 602, PaperHidden: 256,
	},
	"orkut": {
		Name: "orkut", Vertices: 15000, AvgDegree: 38.1, FeatureDim: 40,
		NumClasses: 20, HiddenDim: 20, Gen: GenRMAT, Skew: 0.42, Seed: 105,
		PaperVertices: 3_100_000, PaperEdges: 117_000_000, PaperFtrDim: 320, PaperHidden: 160,
	},
	"wiki": {
		Name: "wiki", Vertices: 30000, AvgDegree: 31.12, FeatureDim: 32,
		NumClasses: 16, HiddenDim: 16, Gen: GenRMAT, Skew: 0.48, Seed: 106,
		PaperVertices: 12_000_000, PaperEdges: 378_000_000, PaperFtrDim: 256, PaperHidden: 128,
	},
	"twitter": {
		Name: "twitter", Vertices: 20000, AvgDegree: 70.5, FeatureDim: 16,
		NumClasses: 16, HiddenDim: 8, Gen: GenRMAT, Skew: 0.52, Seed: 107,
		PaperVertices: 42_000_000, PaperEdges: 1_500_000_000, PaperFtrDim: 52, PaperHidden: 32,
	},
	"cora": {
		Name: "cora", Vertices: 2700, AvgDegree: 2.0, FeatureDim: 180,
		NumClasses: 7, HiddenDim: 16, Gen: GenSBM, Homophily: 0.9, Seed: 108,
		PaperVertices: 2700, PaperEdges: 5400, PaperFtrDim: 1433, PaperHidden: 128,
	},
	"citeseer": {
		Name: "citeseer", Vertices: 3300, AvgDegree: 1.42, FeatureDim: 200,
		NumClasses: 6, HiddenDim: 16, Gen: GenSBM, Homophily: 0.9, Seed: 109,
		PaperVertices: 3300, PaperEdges: 4700, PaperFtrDim: 3307, PaperHidden: 128,
	},
	"pubmed": {
		Name: "pubmed", Vertices: 20000, AvgDegree: 2.2, FeatureDim: 62,
		NumClasses: 3, HiddenDim: 16, Gen: GenSBM, Homophily: 0.9, Seed: 110,
		PaperVertices: 20000, PaperEdges: 44000, PaperFtrDim: 500, PaperHidden: 128,
	},
}

// Names returns all registered dataset names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// BigGraphNames returns the seven distributed-evaluation graphs in the
// paper's Table 2 order.
func BigGraphNames() []string {
	return []string{"google", "pokec", "livejournal", "reddit", "orkut", "wiki", "twitter"}
}

// CitationNames returns the three small citation graphs.
func CitationNames() []string { return []string{"cora", "citeseer", "pubmed"} }

// Get returns the Spec registered under name.
func Get(name string) (Spec, error) {
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("dataset: unknown dataset %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return s, nil
}

// MustGet is Get that panics on unknown names.
func MustGet(name string) Spec {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

// LoadByName generates the dataset registered under name.
func LoadByName(name string) (*Dataset, error) {
	s, err := Get(name)
	if err != nil {
		return nil, err
	}
	return Load(s), nil
}

// Table2Row formats one dataset in the style of the paper's Table 2,
// reporting both the paper's original scale and the synthetic scale in use.
func Table2Row(d *Dataset) string {
	return fmt.Sprintf("%-12s %8d %9d %5d %4d %8.2f %5d   (paper: |V|=%.2gM |E|=%.2gM ftr=%d hid=%d)",
		d.Spec.Name, d.NumVertices(), d.NumEdges(), d.Spec.FeatureDim,
		d.Spec.NumClasses, float64(d.NumEdges())/float64(d.NumVertices()), d.Spec.HiddenDim,
		float64(d.Spec.PaperVertices)/1e6, float64(d.Spec.PaperEdges)/1e6,
		d.Spec.PaperFtrDim, d.Spec.PaperHidden)
}

// Table2Header returns the column header matching Table2Row.
func Table2Header() string {
	return fmt.Sprintf("%-12s %8s %9s %5s %4s %8s %5s", "Dataset", "|V|", "|E|", "ftr", "#L", "avg.deg", "hid")
}
