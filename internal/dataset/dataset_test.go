package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"neutronstar/internal/graph"
	"neutronstar/internal/tensor"
)

func smallSpec(gen Generator) Spec {
	return Spec{
		Name: "test", Vertices: 500, AvgDegree: 8, FeatureDim: 16,
		NumClasses: 5, HiddenDim: 8, Gen: gen, Homophily: 0.85, Skew: 0.45, Seed: 42,
	}
}

func TestLoadDeterministic(t *testing.T) {
	for _, gen := range []Generator{GenRMAT, GenSBM} {
		a := Load(smallSpec(gen))
		b := Load(smallSpec(gen))
		if a.NumEdges() != b.NumEdges() {
			t.Fatalf("gen %d: edge counts differ", gen)
		}
		if !a.Features.Equal(b.Features) {
			t.Fatalf("gen %d: features differ across loads", gen)
		}
		for i := range a.Labels {
			if a.Labels[i] != b.Labels[i] {
				t.Fatalf("gen %d: labels differ at %d", gen, i)
			}
		}
	}
}

func TestLoadDifferentSeedsDiffer(t *testing.T) {
	s1 := smallSpec(GenRMAT)
	s2 := s1
	s2.Seed = 43
	a, b := Load(s1), Load(s2)
	if a.Features.Equal(b.Features) {
		t.Fatal("different seeds produced identical features")
	}
}

func TestGeneratedShapes(t *testing.T) {
	for _, gen := range []Generator{GenRMAT, GenSBM} {
		d := Load(smallSpec(gen))
		if d.NumVertices() != 500 {
			t.Fatalf("V = %d", d.NumVertices())
		}
		if d.Features.Rows() != 500 || d.Features.Cols() != 16 {
			t.Fatalf("features %dx%d", d.Features.Rows(), d.Features.Cols())
		}
		if len(d.Labels) != 500 {
			t.Fatal("labels length wrong")
		}
		for _, l := range d.Labels {
			if l < 0 || l >= 5 {
				t.Fatalf("label %d out of range", l)
			}
		}
	}
}

func TestAvgDegreeApproximatelyMet(t *testing.T) {
	for _, gen := range []Generator{GenRMAT, GenSBM} {
		d := Load(smallSpec(gen))
		avg := float64(d.NumEdges()) / float64(d.NumVertices())
		if math.Abs(avg-8) > 1.0 {
			t.Fatalf("gen %d: avg degree %v, want ~8", gen, avg)
		}
	}
}

func TestMasksPartition(t *testing.T) {
	d := Load(smallSpec(GenSBM))
	nTrain, nVal, nTest := 0, 0, 0
	for i := range d.TrainMask {
		c := 0
		if d.TrainMask[i] {
			c++
			nTrain++
		}
		if d.ValMask[i] {
			c++
			nVal++
		}
		if d.TestMask[i] {
			c++
			nTest++
		}
		if c != 1 {
			t.Fatalf("vertex %d in %d splits", i, c)
		}
	}
	if nTrain != 300 || nVal != 100 || nTest != 100 {
		t.Fatalf("split sizes %d/%d/%d", nTrain, nVal, nTest)
	}
	if d.TrainLabeledCount() != nTrain {
		t.Fatal("TrainLabeledCount mismatch")
	}
}

func TestSBMHomophily(t *testing.T) {
	d := Load(smallSpec(GenSBM))
	intra := 0
	for _, e := range d.Graph.Edges() {
		if d.Labels[e.Src] == d.Labels[e.Dst] {
			intra++
		}
	}
	frac := float64(intra) / float64(d.NumEdges())
	// Homophily 0.85 plus chance hits from the non-homophilous 15%.
	if frac < 0.75 {
		t.Fatalf("intra-class edge fraction %v, want >= 0.75", frac)
	}
}

func TestSBMFeaturesSeparateClasses(t *testing.T) {
	d := Load(smallSpec(GenSBM))
	// Mean intra-class centroid distance must be clearly below inter-class:
	// compute class means, then check nearest-centroid accuracy > chance.
	k := d.Spec.NumClasses
	dim := d.Spec.FeatureDim
	means := tensor.New(k, dim)
	counts := make([]int, k)
	for v := 0; v < d.NumVertices(); v++ {
		c := int(d.Labels[v])
		counts[c]++
		row := means.Row(c)
		for j, f := range d.Features.Row(v) {
			row[j] += f
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			t.Fatalf("class %d empty", c)
		}
		row := means.Row(c)
		for j := range row {
			row[j] /= float32(counts[c])
		}
	}
	correct := 0
	for v := 0; v < d.NumVertices(); v++ {
		best, bc := math.Inf(1), -1
		for c := 0; c < k; c++ {
			var dist float64
			for j, f := range d.Features.Row(v) {
				df := float64(f - means.At(c, j))
				dist += df * df
			}
			if dist < best {
				best, bc = dist, c
			}
		}
		if bc == int(d.Labels[v]) {
			correct++
		}
	}
	acc := float64(correct) / float64(d.NumVertices())
	if acc < 0.6 {
		t.Fatalf("nearest-centroid accuracy %v, features carry no signal", acc)
	}
}

func TestRMATDegreeSkew(t *testing.T) {
	spec := smallSpec(GenRMAT)
	spec.Vertices = 2000
	d := Load(spec)
	s := graph.ComputeStats(d.Graph)
	// Power-law-ish: max degree well above average.
	if float64(s.MaxInDegree) < 4*s.AvgInDegree {
		t.Fatalf("max degree %d vs avg %v: no skew", s.MaxInDegree, s.AvgInDegree)
	}
}

func TestNoSelfLoops(t *testing.T) {
	for _, gen := range []Generator{GenRMAT, GenSBM} {
		d := Load(smallSpec(gen))
		for _, e := range d.Graph.Edges() {
			if e.Src == e.Dst {
				t.Fatalf("gen %d produced a self loop at %d", gen, e.Src)
			}
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(Names()) != 10 {
		t.Fatalf("registry has %d datasets, want 10", len(Names()))
	}
	for _, name := range append(BigGraphNames(), CitationNames()...) {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name {
			t.Fatalf("spec name %q under key %q", s.Name, name)
		}
		if s.Vertices <= 0 || s.AvgDegree <= 0 || s.FeatureDim <= 0 ||
			s.NumClasses <= 0 || s.HiddenDim <= 0 {
			t.Fatalf("%s: incomplete spec %+v", name, s)
		}
	}
	if _, err := Get("nonexistent"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestRegistryDegreeOrderingMatchesPaper(t *testing.T) {
	// Reddit must remain the densest, google the sparsest of the big seven.
	degrees := map[string]float64{}
	for _, n := range BigGraphNames() {
		s := MustGet(n)
		degrees[n] = s.AvgDegree
	}
	for _, n := range BigGraphNames() {
		if n != "reddit" && degrees[n] >= degrees["reddit"] {
			t.Fatalf("%s degree %v >= reddit %v", n, degrees[n], degrees["reddit"])
		}
		if n != "google" && degrees[n] <= degrees["google"] {
			t.Fatalf("%s degree %v <= google %v", n, degrees[n], degrees["google"])
		}
	}
}

func TestLoadByName(t *testing.T) {
	d, err := LoadByName("cora")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumVertices() != 2700 {
		t.Fatalf("cora V = %d", d.NumVertices())
	}
	if _, err := LoadByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
	_ = Table2Header()
	_ = Table2Row(d)
}

// Property: every generated graph is structurally valid — degrees sum to |E|
// and every class is non-empty for SBM.
func TestQuickGeneratorsValid(t *testing.T) {
	f := func(seed uint64, v8 uint8, isSBM bool) bool {
		spec := Spec{
			Name: "q", Vertices: int(v8%100) + 20, AvgDegree: 4,
			FeatureDim: 4, NumClasses: 3, HiddenDim: 4,
			Homophily: 0.8, Skew: 0.45, Seed: seed,
		}
		if isSBM {
			spec.Gen = GenSBM
		}
		d := Load(spec)
		var din int
		for v := 0; v < d.NumVertices(); v++ {
			din += d.Graph.InDegree(int32(v))
		}
		if din != d.NumEdges() {
			return false
		}
		if isSBM {
			seen := make([]bool, spec.NumClasses)
			for _, l := range d.Labels {
				seen[l] = true
			}
			for _, s := range seen {
				if !s {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
