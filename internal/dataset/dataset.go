// Package dataset synthesises the graphs NeutronStar was evaluated on.
//
// The paper's corpus (Table 2) — Google, Pokec, LiveJournal, Reddit, Orkut,
// Wiki-link, Twitter, plus the Cora/Citeseer/Pubmed citation networks — is
// not shippable inside an offline reproduction, so each entry is replaced by
// a deterministic synthetic graph that preserves the properties the paper's
// experiments actually depend on:
//
//   - average in-degree (drives DepCache's redundant-computation volume),
//   - degree skew (drives the replication-factor distribution),
//   - feature / hidden / label dimensions (drive compute-vs-communication
//     ratios), scaled uniformly so single-machine runs stay tractable,
//   - label-correlated structure where the paper measures accuracy
//     (Reddit and the citation graphs use a stochastic block model with
//     homophilous edges and class-centroid features; the rest use RMAT with
//     random features, matching the paper's "randomly generated features").
//
// All generation is seeded; the same Spec always yields the same dataset.
package dataset

import (
	"fmt"

	"neutronstar/internal/graph"
	"neutronstar/internal/tensor"
)

// Generator selects the synthetic graph family for a Spec.
type Generator int

const (
	// GenRMAT produces a power-law directed graph via recursive matrix
	// sampling; features and labels are random (no planted signal).
	GenRMAT Generator = iota
	// GenSBM produces a stochastic block model with homophilous edges and
	// class-centroid features, so GNN training has a learnable signal.
	GenSBM
	// GenLocality produces a power-law graph whose edges are biased toward
	// nearby vertex ids (crawl-order locality), so chunk partitioning keeps
	// most edges within a worker — the property that makes DepCache
	// competitive on graphs like LiveJournal.
	GenLocality
)

// Spec describes one synthetic dataset. PaperVertices/PaperEdges record what
// the original graph looked like, for Table 2 style reporting.
type Spec struct {
	Name       string
	Vertices   int
	AvgDegree  float64
	FeatureDim int
	NumClasses int
	HiddenDim  int
	Gen        Generator
	// Homophily is the probability an SBM edge stays within its class.
	Homophily float64
	// Skew in [0, 1) tunes RMAT degree skew (0.45 ≈ social-network-like).
	Skew float64
	// LocalityScale is the mean id-distance of GenLocality edges, as a
	// fraction of |V| (e.g. 0.01 keeps most edges within 1% of the id
	// space). Zero defaults to 0.02.
	LocalityScale float64
	// SignalStrength scales the class-centroid magnitude of GenSBM features
	// (default 2.0). Lower values make single-vertex features ambiguous, so
	// classification must rely on neighborhood aggregation — which is what
	// separates full-neighbor training from sampled training in Figure 14.
	SignalStrength float64
	Seed           uint64

	PaperVertices int64
	PaperEdges    int64
	PaperFtrDim   int
	PaperHidden   int
}

// Dataset is a loaded (generated) dataset ready for training.
type Dataset struct {
	Spec     Spec
	Graph    *graph.Graph
	Features *tensor.Tensor // Vertices x FeatureDim
	Labels   []int32
	// TrainMask/ValMask/TestMask select the labeled vertex subsets V_L used
	// for the loss, validation and test accuracy respectively.
	TrainMask, ValMask, TestMask []bool
}

// NumVertices returns |V|.
func (d *Dataset) NumVertices() int { return d.Graph.NumVertices() }

// NumEdges returns |E|.
func (d *Dataset) NumEdges() int { return d.Graph.NumEdges() }

// Load generates the dataset for spec. Generation is deterministic in
// spec.Seed (and the structural fields).
func Load(spec Spec) *Dataset {
	if spec.Vertices <= 0 {
		panic(fmt.Sprintf("dataset %q: no vertices", spec.Name))
	}
	rng := tensor.NewRNG(spec.Seed ^ 0xD5A7E)
	var g *graph.Graph
	var labels []int32
	switch spec.Gen {
	case GenSBM:
		g, labels = generateSBM(spec, rng)
	case GenLocality:
		g = generateLocality(spec, rng)
		labels = make([]int32, spec.Vertices)
		for i := range labels {
			labels[i] = int32(rng.Intn(spec.NumClasses))
		}
	default:
		g = generateRMAT(spec, rng)
		labels = make([]int32, spec.Vertices)
		for i := range labels {
			labels[i] = int32(rng.Intn(spec.NumClasses))
		}
	}

	d := &Dataset{Spec: spec, Graph: g, Labels: labels}
	d.Features = synthesizeFeatures(spec, labels, rng)
	d.TrainMask, d.ValMask, d.TestMask = splitMasks(spec.Vertices, rng)
	return d
}

// synthesizeFeatures builds the V x FeatureDim feature matrix. For SBM
// datasets each class has a random centroid and features are centroid+noise
// (learnable); for RMAT datasets features are pure noise.
func synthesizeFeatures(spec Spec, labels []int32, rng *tensor.RNG) *tensor.Tensor {
	f := tensor.RandNormal(spec.Vertices, spec.FeatureDim, 0, 1, rng)
	if spec.Gen != GenSBM {
		return f
	}
	strength := float32(spec.SignalStrength)
	if strength <= 0 {
		strength = 2.0
	}
	centroids := tensor.RandNormal(spec.NumClasses, spec.FeatureDim, 0, strength, rng)
	for v := 0; v < spec.Vertices; v++ {
		c := centroids.Row(int(labels[v]))
		row := f.Row(v)
		for j := range row {
			row[j] = row[j]*0.8 + c[j]
		}
	}
	return f
}

// splitMasks produces a 60/20/20 train/val/test split.
func splitMasks(n int, rng *tensor.RNG) (train, val, test []bool) {
	train = make([]bool, n)
	val = make([]bool, n)
	test = make([]bool, n)
	perm := rng.Perm(n)
	for i, v := range perm {
		switch {
		case i < n*6/10:
			train[v] = true
		case i < n*8/10:
			val[v] = true
		default:
			test[v] = true
		}
	}
	return train, val, test
}

// TrainLabeledCount returns |V_L ∩ train|.
func (d *Dataset) TrainLabeledCount() int {
	n := 0
	for _, m := range d.TrainMask {
		if m {
			n++
		}
	}
	return n
}
