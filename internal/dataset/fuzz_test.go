package dataset

import (
	"bytes"
	"testing"
)

// encodeGraphBytes renders one graph in the graph.txt wire form for corpus
// seeding and round-trip comparison.
func encodeGraphBytes(t testing.TB, d *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := encodeGraph(&buf, d.Graph); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzGraphRoundTrip feeds arbitrary bytes to the graph.txt decoder, mirrored
// on internal/comm's wire-codec fuzzer. Malformed input must be rejected with
// an error — never a panic, and never an allocation sized by an unbacked
// header claim; input that decodes must survive an encode/decode round trip
// exactly. The seed corpus is real exporter output: the same generator
// family `nsgen -export` writes, at several shapes.
func FuzzGraphRoundTrip(f *testing.F) {
	seeds := []Spec{
		{Name: "s", Vertices: 40, AvgDegree: 3, FeatureDim: 4, NumClasses: 3, HiddenDim: 4, Gen: GenSBM, Homophily: 0.8, Seed: 1},
		{Name: "r", Vertices: 64, AvgDegree: 5, FeatureDim: 4, NumClasses: 3, HiddenDim: 4, Gen: GenRMAT, Seed: 2},
		{Name: "tiny", Vertices: 2, AvgDegree: 1, FeatureDim: 2, NumClasses: 2, HiddenDim: 2, Gen: GenSBM, Homophily: 0.5, Seed: 3},
	}
	for _, spec := range seeds {
		f.Add(encodeGraphBytes(f, Load(spec)))
	}
	// Hostile seeds: junk, a negative count, a truncated body, an oversized
	// vertex claim, and an edge referencing a vertex out of range.
	f.Add([]byte("not a graph at all"))
	f.Add([]byte("-5 3\n0 1\n"))
	f.Add([]byte("10 4\n0 1\n1 2\n"))
	f.Add([]byte("999999999 0\n"))
	f.Add([]byte("3 1\n0 7\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := decodeGraph(bytes.NewReader(data))
		if err != nil {
			return // rejection is a valid outcome for arbitrary bytes
		}
		var buf bytes.Buffer
		if err := encodeGraph(&buf, g); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := decodeGraph(&buf)
		if err != nil {
			t.Fatalf("re-decode of re-encoded graph failed: %v", err)
		}
		if again.NumVertices() != g.NumVertices() || again.NumEdges() != g.NumEdges() {
			t.Fatalf("size drift: %d/%d vs %d/%d",
				again.NumVertices(), again.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		a, b := again.Edges(), g.Edges()
		for i := range b {
			if a[i] != b[i] {
				t.Fatalf("edge %d drift: %v vs %v", i, a[i], b[i])
			}
		}
	})
}

// TestDecodeGraphHostileHeaders pins the decoder's rejection behavior on the
// specific header attacks the fuzzer seeds: each must error cleanly.
func TestDecodeGraphHostileHeaders(t *testing.T) {
	cases := []string{
		"",
		"junk",
		"-1 0\n",
		"0 -1\n",
		"2000000000 0\n",
		"2 1\n",            // declares an edge it never provides
		"2 1\n0 1\n1 0\n",  // provides more edges than declared
		"2 1\n0 9\n",       // endpoint out of range
		"2 1\nnope nope\n", // unparsable edge line
	}
	for _, in := range cases {
		if _, err := decodeGraph(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("input %q decoded without error", in)
		}
	}
}
