package dataset

import (
	"testing"

	"neutronstar/internal/graph"
	"neutronstar/internal/partition"
)

// Generator-specific structural tests beyond dataset_test.go.

func TestLocalityGeneratorChunkLocality(t *testing.T) {
	d := Load(Spec{
		Name: "loc", Vertices: 4000, AvgDegree: 8, FeatureDim: 4,
		NumClasses: 4, HiddenDim: 4, Gen: GenLocality, LocalityScale: 0.01, Seed: 91,
	})
	p, err := partition.New(partition.Chunk, d.Graph, 8)
	if err != nil {
		t.Fatal(err)
	}
	q := partition.Evaluate(p, d.Graph)
	// The generator's whole point: chunk partitioning keeps most edges local.
	if q.CutRatio > 0.25 {
		t.Fatalf("locality graph cut ratio %v too high", q.CutRatio)
	}
	// Contrast: an RMAT graph of the same shape has a far higher cut.
	r := Load(Spec{
		Name: "rmat", Vertices: 4000, AvgDegree: 8, FeatureDim: 4,
		NumClasses: 4, HiddenDim: 4, Gen: GenRMAT, Seed: 91,
	})
	pr, _ := partition.New(partition.Chunk, r.Graph, 8)
	qr := partition.Evaluate(pr, r.Graph)
	if qr.CutRatio < 2*q.CutRatio {
		t.Fatalf("RMAT cut %v not clearly above locality cut %v", qr.CutRatio, q.CutRatio)
	}
}

func TestLocalityGeneratorDefaultScale(t *testing.T) {
	d := Load(Spec{
		Name: "loc0", Vertices: 500, AvgDegree: 6, FeatureDim: 4,
		NumClasses: 4, HiddenDim: 4, Gen: GenLocality, Seed: 92, // LocalityScale unset
	})
	if d.NumEdges() == 0 {
		t.Fatal("default locality scale generated nothing")
	}
}

func TestSignalStrengthControlsSeparability(t *testing.T) {
	base := Spec{
		Name: "sig", Vertices: 600, AvgDegree: 8, FeatureDim: 16,
		NumClasses: 5, HiddenDim: 8, Gen: GenSBM, Homophily: 0.8, Seed: 93,
	}
	weak := base
	weak.SignalStrength = 0.05
	strong := base
	strong.SignalStrength = 3.0
	accWeak := nearestCentroidAccuracy(Load(weak))
	accStrong := nearestCentroidAccuracy(Load(strong))
	if accStrong < accWeak+0.2 {
		t.Fatalf("signal strength had no effect: weak %v strong %v", accWeak, accStrong)
	}
}

func nearestCentroidAccuracy(d *Dataset) float64 {
	k := d.Spec.NumClasses
	dim := d.Spec.FeatureDim
	means := make([][]float64, k)
	counts := make([]int, k)
	for c := range means {
		means[c] = make([]float64, dim)
	}
	for v := 0; v < d.NumVertices(); v++ {
		c := int(d.Labels[v])
		counts[c]++
		for j, f := range d.Features.Row(v) {
			means[c][j] += float64(f)
		}
	}
	for c := range means {
		if counts[c] == 0 {
			continue
		}
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for v := 0; v < d.NumVertices(); v++ {
		best, bc := -1.0, -1
		for c := 0; c < k; c++ {
			var dist float64
			for j, f := range d.Features.Row(v) {
				df := float64(f) - means[c][j]
				dist += df * df
			}
			if bc < 0 || dist < best {
				best, bc = dist, c
			}
		}
		if bc == int(d.Labels[v]) {
			correct++
		}
	}
	return float64(correct) / float64(d.NumVertices())
}

func TestRMATEdgesInRange(t *testing.T) {
	d := Load(Spec{
		Name: "rr", Vertices: 777, AvgDegree: 5, FeatureDim: 4, // non power of two
		NumClasses: 4, HiddenDim: 4, Gen: GenRMAT, Seed: 94,
	})
	for _, e := range d.Graph.Edges() {
		if e.Src < 0 || e.Src >= 777 || e.Dst < 0 || e.Dst >= 777 {
			t.Fatalf("edge out of range: %v", e)
		}
	}
	_ = graph.ComputeStats(d.Graph)
}
