package dataset

import (
	"math"

	"neutronstar/internal/graph"
	"neutronstar/internal/tensor"
)

// generateRMAT samples |V|*AvgDegree directed edges from a recursive-matrix
// distribution (Chakrabarti et al.). The Skew parameter shifts probability
// mass toward the (0,0) quadrant: higher skew → heavier-tailed degrees.
// RMAT's bit-recursive construction also gives vertex ids natural locality,
// which interacts with chunk partitioning the same way real web/social
// crawls do.
func generateRMAT(spec Spec, rng *tensor.RNG) *graph.Graph {
	n := spec.Vertices
	bits := 0
	for (1 << bits) < n {
		bits++
	}
	numEdges := int(float64(n) * spec.AvgDegree)
	skew := spec.Skew
	if skew <= 0 {
		skew = 0.45
	}
	// Quadrant probabilities: a concentrates, b/c spread, d is the sparse
	// corner. a = 0.25+skew stays < 1 for skew < 0.75.
	a := 0.25 + skew
	rem := 1 - a
	b := rem * 0.4
	c := rem * 0.4
	// d = rem * 0.2 implied.

	edges := make([]graph.Edge, 0, numEdges)
	for len(edges) < numEdges {
		src, dst := 0, 0
		for l := 0; l < bits; l++ {
			r := rng.Float64()
			switch {
			case r < a:
				// (0,0) quadrant: neither bit set.
			case r < a+b:
				dst |= 1 << l
			case r < a+b+c:
				src |= 1 << l
			default:
				src |= 1 << l
				dst |= 1 << l
			}
		}
		if src >= n || dst >= n || src == dst {
			continue
		}
		edges = append(edges, graph.Edge{Src: int32(src), Dst: int32(dst)})
	}
	return graph.MustFromEdges(n, edges)
}

// generateSBM samples a stochastic block model: vertices are assigned classes
// in contiguous-ish random order, and each edge keeps its endpoints within
// one class with probability Homophily. Degrees follow a mild power law so
// the graph still has hubs. Returns the graph and the planted labels.
func generateSBM(spec Spec, rng *tensor.RNG) (*graph.Graph, []int32) {
	n := spec.Vertices
	k := spec.NumClasses
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = int32(rng.Intn(k))
	}
	// Bucket vertices by class for fast intra-class endpoint sampling.
	byClass := make([][]int32, k)
	for v, c := range labels {
		byClass[c] = append(byClass[c], int32(v))
	}
	// Guarantee no empty class (tiny n edge case) by reassigning.
	for c := 0; c < k; c++ {
		if len(byClass[c]) == 0 {
			v := int32(rng.Intn(n))
			old := labels[v]
			// Remove v from its old bucket.
			ob := byClass[old]
			for i, x := range ob {
				if x == v {
					byClass[old] = append(ob[:i], ob[i+1:]...)
					break
				}
			}
			labels[v] = int32(c)
			byClass[c] = append(byClass[c], v)
		}
	}

	homophily := spec.Homophily
	if homophily <= 0 {
		homophily = 0.8
	}
	numEdges := int(float64(n) * spec.AvgDegree)
	edges := make([]graph.Edge, 0, numEdges)
	// Power-law-ish destination choice: square a uniform to bias toward low
	// indices within the shuffled id space.
	pick := func(bucket []int32) int32 {
		u := rng.Float64()
		idx := int(math.Pow(u, 1.6) * float64(len(bucket)))
		if idx >= len(bucket) {
			idx = len(bucket) - 1
		}
		return bucket[idx]
	}
	for len(edges) < numEdges {
		c := rng.Intn(k)
		dst := pick(byClass[c])
		var src int32
		if rng.Float64() < homophily {
			src = pick(byClass[c])
		} else {
			src = int32(rng.Intn(n))
		}
		if src == dst {
			continue
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst})
	}
	return graph.MustFromEdges(n, edges), labels
}

// generateLocality samples |V|*AvgDegree edges where the destination is
// uniform and the source sits a power-law-distributed id-distance away, so
// contiguous id ranges (chunk partitions) capture most edges. A small
// uniform tail keeps the graph connected across chunks.
func generateLocality(spec Spec, rng *tensor.RNG) *graph.Graph {
	n := spec.Vertices
	scale := spec.LocalityScale
	if scale <= 0 {
		scale = 0.02
	}
	maxOff := float64(n) * scale
	numEdges := int(float64(n) * spec.AvgDegree)
	edges := make([]graph.Edge, 0, numEdges)
	for len(edges) < numEdges {
		dst := rng.Intn(n)
		var src int
		if rng.Float64() < 0.9 {
			// Power-law distance: offset = maxOff * u^3 keeps the mass close.
			u := rng.Float64()
			off := int(maxOff*u*u*u) + 1
			if rng.Uint64()&1 == 0 {
				off = -off
			}
			src = dst + off
			if src < 0 || src >= n {
				continue
			}
		} else {
			src = rng.Intn(n)
		}
		if src == dst {
			continue
		}
		edges = append(edges, graph.Edge{Src: int32(src), Dst: int32(dst)})
	}
	return graph.MustFromEdges(n, edges)
}
