package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := Load(smallSpec(GenSBM))
	dir := t.TempDir()
	if err := orig.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != orig.NumVertices() || got.NumEdges() != orig.NumEdges() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			got.NumVertices(), got.NumEdges(), orig.NumVertices(), orig.NumEdges())
	}
	if got.Spec.Name != orig.Spec.Name || got.Spec.NumClasses != orig.Spec.NumClasses ||
		got.Spec.HiddenDim != orig.Spec.HiddenDim {
		t.Fatalf("meta changed: %+v", got.Spec)
	}
	if !got.Features.AllClose(orig.Features, 1e-6) {
		t.Fatal("features changed through round trip")
	}
	for v := range orig.Labels {
		if got.Labels[v] != orig.Labels[v] {
			t.Fatalf("label %d changed", v)
		}
		if got.TrainMask[v] != orig.TrainMask[v] || got.ValMask[v] != orig.ValMask[v] ||
			got.TestMask[v] != orig.TestMask[v] {
			t.Fatalf("split of %d changed", v)
		}
	}
	// Structure: same edge multiset.
	oe, ge := orig.Graph.Edges(), got.Graph.Edges()
	for i := range oe {
		if oe[i] != ge[i] {
			t.Fatalf("edge %d changed: %v vs %v", i, oe[i], ge[i])
		}
	}
}

func TestLoadDirMissing(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing dir")
	}
}

func corrupt(t *testing.T, orig *Dataset, file, content string) error {
	t.Helper()
	dir := t.TempDir()
	if err := orig.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, file), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadDir(dir)
	return err
}

func TestLoadDirRejectsCorruption(t *testing.T) {
	orig := Load(smallSpec(GenRMAT))
	cases := []struct{ file, content string }{
		{"meta.txt", "bogus line without equals\n"},
		{"meta.txt", "classes=notanumber\n"},
		{"meta.txt", "mystery=1\n"},
		{"graph.txt", ""},
		{"graph.txt", "5 2\n0 1\n"},    // header/edge-count mismatch
		{"graph.txt", "5 1\n0 nine\n"}, // bad endpoint
		{"graph.txt", "2 1\n0 7\n"},    // out-of-range endpoint
		{"features.txt", "1 2 3\n"},    // too few rows
		{"labels.txt", "0 train\n"},    // too few labels
		{"labels.txt", "zzz train\n"},  // bad label
		{"labels.txt", "0 weekend\n"},  // bad split
	}
	for _, c := range cases {
		if err := corrupt(t, orig, c.file, c.content); err == nil {
			t.Fatalf("corrupting %s with %q was not detected", c.file, c.content)
		}
	}
}

func TestLoadDirRejectsLabelOutOfClassRange(t *testing.T) {
	orig := Load(smallSpec(GenRMAT))
	dir := t.TempDir()
	if err := orig.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Rewrite meta to declare fewer classes than the labels use.
	if err := os.WriteFile(filepath.Join(dir, "meta.txt"), []byte("name=x\nclasses=1\nhidden=4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("expected out-of-range label rejection")
	}
}

func TestLoadedDatasetTrains(t *testing.T) {
	orig := Load(smallSpec(GenSBM))
	dir := t.TempDir()
	if err := orig.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.TrainLabeledCount() != orig.TrainLabeledCount() {
		t.Fatal("train split size changed")
	}
}
