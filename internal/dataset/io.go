package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"neutronstar/internal/graph"
	"neutronstar/internal/tensor"
)

// On-disk dataset layout (plain text, one dataset per directory):
//
//	meta.txt      key=value lines: name, classes, hidden
//	graph.txt     first line "<V> <E>", then one "src dst" pair per line
//	features.txt  V lines of space-separated float32 values
//	labels.txt    V lines: "<label> <split>" with split ∈ {train,val,test}
//
// The format trades compactness for inspectability — these are research
// datasets, and being able to grep them matters more than disk bytes.

// Save writes the dataset into dir (created if absent).
func (d *Dataset) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeMeta(filepath.Join(dir, "meta.txt"), d); err != nil {
		return err
	}
	if err := writeGraph(filepath.Join(dir, "graph.txt"), d.Graph); err != nil {
		return err
	}
	if err := writeFeatures(filepath.Join(dir, "features.txt"), d.Features); err != nil {
		return err
	}
	return writeLabels(filepath.Join(dir, "labels.txt"), d)
}

// LoadDir reads a dataset previously written by Save (or hand-authored in
// the same format).
func LoadDir(dir string) (*Dataset, error) {
	d := &Dataset{}
	if err := readMeta(filepath.Join(dir, "meta.txt"), d); err != nil {
		return nil, err
	}
	g, err := readGraph(filepath.Join(dir, "graph.txt"))
	if err != nil {
		return nil, err
	}
	d.Graph = g
	d.Spec.Vertices = g.NumVertices()
	if g.NumVertices() > 0 {
		d.Spec.AvgDegree = float64(g.NumEdges()) / float64(g.NumVertices())
	}
	ftr, err := readFeatures(filepath.Join(dir, "features.txt"), g.NumVertices())
	if err != nil {
		return nil, err
	}
	d.Features = ftr
	d.Spec.FeatureDim = ftr.Cols()
	if err := readLabels(filepath.Join(dir, "labels.txt"), d); err != nil {
		return nil, err
	}
	for _, l := range d.Labels {
		if int(l) >= d.Spec.NumClasses {
			return nil, fmt.Errorf("dataset: label %d outside %d classes declared in meta.txt", l, d.Spec.NumClasses)
		}
	}
	return d, nil
}

func writeMeta(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = fmt.Fprintf(f, "name=%s\nclasses=%d\nhidden=%d\n",
		d.Spec.Name, d.Spec.NumClasses, d.Spec.HiddenDim)
	return err
}

func readMeta(path string, d *Dataset) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return fmt.Errorf("dataset: bad meta line %q", line)
		}
		switch k {
		case "name":
			d.Spec.Name = v
		case "classes":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("dataset: bad classes %q", v)
			}
			d.Spec.NumClasses = n
		case "hidden":
			n, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("dataset: bad hidden %q", v)
			}
			d.Spec.HiddenDim = n
		default:
			return fmt.Errorf("dataset: unknown meta key %q", k)
		}
	}
	return sc.Err()
}

// maxTextVertices bounds the vertex count a graph.txt header may declare.
// The graph builder allocates O(V) index arrays before any edge is read, so
// without a bound a one-line hostile header commands gigabytes; the limit is
// far above any dataset this text format is meant for.
const maxTextVertices = 1 << 20

// preallocEdgeCap bounds how much capacity the decoder reserves from the
// declared edge count alone. Larger graphs still load — the slice grows as
// real edge lines arrive — but a header cannot command an allocation the
// body never backs.
const preallocEdgeCap = 1 << 16

func encodeGraph(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), g.NumEdges())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d\n", e.Src, e.Dst)
	}
	return bw.Flush()
}

// decodeGraph parses the graph.txt wire form. Arbitrary input must come back
// as an error, never a panic or an allocation proportional to a number the
// input merely claims (FuzzGraphRoundTrip enforces this).
func decodeGraph(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: empty graph data")
	}
	var nv, ne int
	if _, err := fmt.Sscanf(sc.Text(), "%d %d", &nv, &ne); err != nil {
		return nil, fmt.Errorf("dataset: bad graph header %q: %w", sc.Text(), err)
	}
	if nv < 0 || ne < 0 {
		return nil, fmt.Errorf("dataset: negative graph header %d %d", nv, ne)
	}
	if nv > maxTextVertices {
		return nil, fmt.Errorf("dataset: header declares %d vertices (limit %d)", nv, maxTextVertices)
	}
	edges := make([]graph.Edge, 0, min(ne, preallocEdgeCap))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if len(edges) == ne {
			return nil, fmt.Errorf("dataset: more edge lines than the %d declared", ne)
		}
		var s, d int32
		if _, err := fmt.Sscanf(line, "%d %d", &s, &d); err != nil {
			return nil, fmt.Errorf("dataset: bad edge line %q: %w", line, err)
		}
		edges = append(edges, graph.Edge{Src: s, Dst: d})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) != ne {
		return nil, fmt.Errorf("dataset: header declares %d edges, data has %d", ne, len(edges))
	}
	return graph.FromEdges(nv, edges)
}

func writeGraph(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return encodeGraph(f, g)
}

func readGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := decodeGraph(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return g, nil
}

func writeFeatures(path string, ftr *tensor.Tensor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i := 0; i < ftr.Rows(); i++ {
		row := ftr.Row(i)
		for j, v := range row {
			if j > 0 {
				w.WriteByte(' ')
			}
			w.WriteString(strconv.FormatFloat(float64(v), 'g', -1, 32))
		}
		w.WriteByte('\n')
	}
	return w.Flush()
}

func readFeatures(path string, numVertices int) (*tensor.Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var rows [][]float32
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		row := make([]float32, len(fields))
		for j, fv := range fields {
			x, err := strconv.ParseFloat(fv, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: bad feature %q on row %d: %w", fv, len(rows), err)
			}
			row[j] = float32(x)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) != numVertices {
		return nil, fmt.Errorf("dataset: %d feature rows for %d vertices", len(rows), numVertices)
	}
	return tensor.FromRows(rows), nil
}

func writeLabels(path string, d *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for v, l := range d.Labels {
		split := "test"
		switch {
		case d.TrainMask[v]:
			split = "train"
		case d.ValMask[v]:
			split = "val"
		}
		fmt.Fprintf(w, "%d %s\n", l, split)
	}
	return w.Flush()
}

func readLabels(path string, d *Dataset) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n := d.Graph.NumVertices()
	d.Labels = make([]int32, 0, n)
	d.TrainMask = make([]bool, n)
	d.ValMask = make([]bool, n)
	d.TestMask = make([]bool, n)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v := len(d.Labels)
		if v >= n {
			return fmt.Errorf("dataset: more label lines than vertices (%d)", n)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("dataset: bad label line %q", line)
		}
		l, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("dataset: bad label %q: %w", fields[0], err)
		}
		d.Labels = append(d.Labels, int32(l))
		switch fields[1] {
		case "train":
			d.TrainMask[v] = true
		case "val":
			d.ValMask[v] = true
		case "test":
			d.TestMask[v] = true
		default:
			return fmt.Errorf("dataset: unknown split %q", fields[1])
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(d.Labels) != n {
		return fmt.Errorf("dataset: %d labels for %d vertices", len(d.Labels), n)
	}
	return nil
}
