// Package hybrid implements NeutronStar's core contribution: the dependency
// partitioning of Algorithm 4. For every worker and every layer, each remote
// dependency is assigned to either the DepCache set R_i^l (replicate its
// multi-hop subtree and recompute locally) or the DepComm set C_i^l (fetch
// its representation from its owner every epoch), by greedily caching the
// dependencies whose redundant-computation cost t_r^l(u) (Eq. 1) is below
// their communication cost t_c^l(u) (Eq. 2), discounting subtree overlap
// through the shared replica set V_rep, subject to the memory budget S.
//
// Setting every dependency to Cache reproduces the DepCache engine
// (Algorithm 2); setting every dependency to Comm reproduces DepComm
// (Algorithm 3). The execution engine consumes the same Decision structure
// for all three modes, which is exactly how the paper built its baselines
// ("DepCache and DepComm with NeutronStar's codebase").
package hybrid

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"neutronstar/internal/costmodel"
	"neutronstar/internal/graph"
	"neutronstar/internal/partition"
)

// Decision records, for one worker, the per-layer split of its remote
// dependencies. Layer l (1-based) uses index l-1. On a non-tensor-parallel
// layer every dependency of the worker appears in exactly one of R[l-1] or
// C[l-1]; on a tensor-parallel layer both sets are empty and TP[l-1] is
// true — the layer has no per-vertex dependencies at all.
type Decision struct {
	// R[l-1] lists dependencies cached for layer l, ascending.
	R [][]int32
	// C[l-1] lists dependencies communicated at layer l, ascending.
	C [][]int32
	// TP[l-1] marks layer l as tensor-parallel (DepTP): the worker computes
	// an F/N-wide feature shard over the full graph and the slice-exchange
	// collectives replace R and C entirely. TP is a cluster-level per-layer
	// choice, identical across all workers' Decisions. Decisions from the
	// 2-way modes may carry a nil TP (all false).
	TP []bool
	// Rep[l-1] marks layer l as replicated (DepRep): every remote dependency
	// is cached (R[l-1] holds the full dependency set) and the planner prices
	// the replica storage with the quantization compression factor instead of
	// at full float32 width. Like TP, Rep is a cluster-level per-layer choice;
	// decisions from older modes may carry a nil Rep (all false).
	Rep []bool
	// CacheBytes estimates the replica storage the cached sets require
	// (compressed by Planner.RepCompression when any layer is replicated).
	CacheBytes int64
	// EstCacheCost / EstCommCost are the modeled per-epoch costs (seconds)
	// of the chosen split, for reporting. Slice-exchange collective cost
	// counts as communication.
	EstCacheCost, EstCommCost float64
	// EstSetupCost is the one-time replica feature broadcast cost of a
	// replicated plan (costmodel.RepSetupCost) — reported, never part of the
	// per-epoch argmin, mirroring how the 2-way modes treat the layer-1
	// feature fetch. Zero for plans without replicated layers.
	EstSetupCost float64
}

// TPAt reports whether layer l (1-based) is tensor-parallel under this
// decision. Safe on decisions from 2-way modes (nil TP).
func (d *Decision) TPAt(l int) bool {
	return d.TP != nil && l-1 < len(d.TP) && d.TP[l-1]
}

// NumTP returns the number of tensor-parallel layers.
func (d *Decision) NumTP() int {
	n := 0
	for _, tp := range d.TP {
		if tp {
			n++
		}
	}
	return n
}

// RepAt reports whether layer l (1-based) is replicated under this decision.
// Safe on decisions from older modes (nil Rep).
func (d *Decision) RepAt(l int) bool {
	return d.Rep != nil && l-1 < len(d.Rep) && d.Rep[l-1]
}

// NumRep returns the number of replicated layers.
func (d *Decision) NumRep() int {
	n := 0
	for _, r := range d.Rep {
		if r {
			n++
		}
	}
	return n
}

// NumCached returns the total cached dependencies across layers.
func (d *Decision) NumCached() int {
	n := 0
	for _, r := range d.R {
		n += len(r)
	}
	return n
}

// NumComm returns the total communicated dependencies across layers.
func (d *Decision) NumComm() int {
	n := 0
	for _, c := range d.C {
		n += len(c)
	}
	return n
}

// Mode selects how dependencies are assigned.
type Mode int

const (
	// ModeHybrid runs Algorithm 4 (cost-based greedy).
	ModeHybrid Mode = iota
	// ModeAllCache assigns every dependency to R (DepCache engine).
	ModeAllCache
	// ModeAllComm assigns every dependency to C (DepComm engine).
	ModeAllComm
	// ModeRatio caches a fixed fraction of dependencies per layer, most
	// cache-efficient first (Figure 11's manual sweep).
	ModeRatio
	// ModeAllTP runs every layer tensor-parallel (the pure DepTP engine).
	ModeAllTP
	// ModeHybrid3 widens the greedy to the 3-way per-layer choice: the
	// 2-way Algorithm 4 mix, pure caching, pure communication, and
	// tensor-parallel layer suffixes all compete on modeled cost (see
	// decideThreeWay).
	ModeHybrid3
	// ModeAllRep replicates every layer (the pure DepRep engine): R holds the
	// full dependency set at every layer, replica storage is priced with the
	// compression factor, and no per-epoch dependency traffic remains.
	ModeAllRep
	// ModeHybrid4 widens the candidate family once more: everything
	// ModeHybrid3 considers plus replicated layer suffixes, gated by
	// RepBudget (see decideFourWay).
	ModeHybrid4
)

// Planner derives per-worker Decisions.
type Planner struct {
	Graph *graph.Graph
	Part  *partition.Partition
	// Dims is the representation dimension chain d^(0)..d^(L).
	Dims  []int
	Costs costmodel.Costs
	// MemBudget caps CacheBytes per worker; 0 means unlimited.
	MemBudget int64
	// RepBudget caps a replicated candidate's (compressed) replica bytes per
	// worker in ModeHybrid4: > 0 is a cap, 0 removes replicated candidates
	// entirely (hybrid4 then degenerates to hybrid3), < 0 is unlimited.
	// ModeAllRep ignores it — an explicitly requested pure policy is not a
	// candidate competition.
	RepBudget int64
	// RepCompression is the replica storage compression factor of the
	// configured quantization (partition.CompressionFactor); values < 1 are
	// treated as 1 (uncompressed).
	RepCompression float64
	// Ratio is the cached fraction for ModeRatio, in [0, 1].
	Ratio float64
	// SliceTP reports that the model's aggregation is column-wise separable
	// (nn.SliceSeparable): tensor-parallel layers then run the cheap slice
	// dataflow instead of full-width row assembly, which changes the DepTP
	// collective volume the cost model charges (costmodel.TPVolume).
	SliceTP bool
}

// numLayers returns L.
func (p *Planner) numLayers() int { return len(p.Dims) - 1 }

// DecideAll computes one Decision per worker, in parallel (the paper
// executes Algorithm 4's cost evaluation in parallel, §5.2).
func (p *Planner) DecideAll(mode Mode) ([]*Decision, error) {
	if p.numLayers() < 1 {
		return nil, fmt.Errorf("hybrid: need at least 1 layer, dims=%v", p.Dims)
	}
	if mode == ModeHybrid3 {
		// The tensor-parallel choice is cluster-global (all workers must
		// agree per layer), so the 3-way planner cannot decide per worker.
		return p.decideThreeWay()
	}
	if mode == ModeHybrid4 {
		// Replication is cluster-global like TP: same candidate argmin, one
		// more suffix family.
		return p.decideFourWay()
	}
	out := make([]*Decision, p.Part.NumParts)
	errs := make([]error, p.Part.NumParts)
	var wg sync.WaitGroup
	for i := 0; i < p.Part.NumParts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = p.decideWorker(i, mode)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// dependencies returns worker i's remote dependency set D_i: the distinct
// non-owned sources of in-edges of owned vertices, ascending.
func (p *Planner) dependencies(i int) []int32 {
	seen := make(map[int32]struct{})
	for _, v := range p.Part.Parts[i] {
		for _, u := range p.Graph.InNeighbors(v) {
			if p.Part.Assign[u] != int32(i) {
				seen[u] = struct{}{}
			}
		}
	}
	deps := make([]int32, 0, len(seen))
	for u := range seen {
		deps = append(deps, u)
	}
	sort.Slice(deps, func(a, b int) bool { return deps[a] < deps[b] })
	return deps
}

// decideWorker runs the chosen assignment policy for worker i.
func (p *Planner) decideWorker(i int, mode Mode) (*Decision, error) {
	deps := p.dependencies(i)
	L := p.numLayers()
	d := &Decision{R: make([][]int32, L), C: make([][]int32, L), TP: make([]bool, L), Rep: make([]bool, L)}
	switch mode {
	case ModeAllRep:
		for l := 0; l < L; l++ {
			d.R[l] = deps
			d.Rep[l] = true
		}
		cacheCost, commCost, bytes := p.evaluateCostSplit(i, d)
		d.CacheBytes = bytes
		d.EstCacheCost, d.EstCommCost = cacheCost, commCost
		d.EstSetupCost = p.repSetupCost(i, d)
		return d, nil
	case ModeAllTP:
		for l := 1; l <= L; l++ {
			d.TP[l-1] = true
			d.EstCommCost += p.tpLayerCost(i, l)
		}
		return d, nil
	case ModeAllCache:
		for l := 0; l < L; l++ {
			d.R[l] = deps
			d.C[l] = nil
		}
		p.estimate(i, deps, d)
		return d, nil
	case ModeAllComm:
		for l := 0; l < L; l++ {
			d.C[l] = deps
			d.R[l] = nil
		}
		p.estimate(i, deps, d)
		return d, nil
	case ModeHybrid:
		p.greedy(i, deps, d, -1)
		return d, nil
	case ModeRatio:
		p.greedy(i, deps, d, p.Ratio)
		return d, nil
	default:
		return nil, fmt.Errorf("hybrid: unknown mode %d", mode)
	}
}

// depItem is a priority-queue entry ⟨u, t_r^l(u)⟩.
type depItem struct {
	u  int32
	tr float64
}

type depHeap []depItem

func (h depHeap) Len() int            { return len(h) }
func (h depHeap) Less(i, j int) bool  { return h[i].tr < h[j].tr }
func (h depHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *depHeap) Push(x interface{}) { *h = append(*h, x.(depItem)) }
func (h *depHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// greedy is Algorithm 4. When ratio >= 0 the cost comparison on line 11 is
// replaced by a per-layer quota (cache the `ratio` fraction with the
// smallest t_r), which is how Figure 11 forces intermediate mixes.
//
// V_rep is level-aware: repLevel[v] = k records that h^(k)_v (and therefore
// v's whole subtree below level k) is already locally computable, so later
// dependencies whose subtrees overlap are charged only for the levels not
// yet replicated. Level 0 means "features cached" — free compute, memory
// only — which is why layer-1 dependencies always measure zero.
func (p *Planner) greedy(worker int, deps []int32, d *Decision, ratio float64) {
	L := p.numLayers()
	repLevel := make(map[int32]int) // vertex -> highest locally computable rep level
	owner := p.Part.Assign
	isOwned := func(v int32) bool { return owner[v] == int32(worker) }
	avail := func(v int32, lvl int) bool {
		if isOwned(v) {
			return true
		}
		if lvl == 0 {
			// Feature replicas are fetched once at setup; they never cost
			// per-epoch compute.
			return true
		}
		have, ok := repLevel[v]
		return ok && have >= lvl
	}

	// measure computes t_r^l(u): the redundant compute to produce h^(l-1)_u
	// locally, excluding already-available sub-results.
	measure := func(u int32, l int) float64 {
		if avail(u, l-1) {
			return 0
		}
		var t float64
		visited := map[int32]struct{}{u: {}}
		frontier := []int32{u}
		for lvl := l - 1; lvl >= 1 && len(frontier) > 0; lvl-- {
			dim := float64(p.Dims[lvl])
			var next []int32
			for _, v := range frontier {
				deg := float64(p.Graph.InDegree(v))
				t += (p.Costs.Tv + deg*p.Costs.Te) * dim
				if lvl-1 >= 1 {
					for _, w := range p.Graph.InNeighbors(v) {
						if _, ok := visited[w]; ok {
							continue
						}
						visited[w] = struct{}{}
						if avail(w, lvl-1) {
							continue
						}
						next = append(next, w)
					}
				}
			}
			frontier = next
		}
		return t
	}

	// addToVRep replicates u's subtree for a layer-l use and returns the
	// newly charged storage bytes.
	addToVRep := func(u int32, l int) int64 {
		var bytes int64
		type qent struct {
			v   int32
			lvl int
		}
		queue := []qent{{v: u, lvl: l - 1}}
		for len(queue) > 0 {
			e := queue[0]
			queue = queue[1:]
			if isOwned(e.v) {
				continue
			}
			have, seen := repLevel[e.v]
			if seen && have >= e.lvl {
				continue
			}
			// Charge storage for the newly replicated levels.
			from := 0
			if seen {
				from = have + 1
			}
			for k := from; k <= e.lvl; k++ {
				bytes += int64(4 * p.Dims[k])
			}
			if !seen {
				bytes += int64(8 * p.Graph.InDegree(e.v)) // edge index storage
			}
			repLevel[e.v] = e.lvl
			if e.lvl >= 1 {
				for _, w := range p.Graph.InNeighbors(e.v) {
					queue = append(queue, qent{v: w, lvl: e.lvl - 1})
				}
			}
		}
		return bytes
	}

	for l := 1; l <= L; l++ {
		tc := p.Costs.CommCost(p.Dims[l-1])
		h := make(depHeap, 0, len(deps))
		for _, u := range deps {
			h = append(h, depItem{u: u, tr: measure(u, l)})
		}
		heap.Init(&h)
		quota := len(deps)
		if ratio >= 0 {
			quota = int(ratio * float64(len(deps)))
		}
		cached := make(map[int32]struct{})
		overBudget := false
		for h.Len() > 0 && len(cached) < quota {
			item := heap.Pop(&h).(depItem)
			// Re-measure excluding the V_rep accumulated meanwhile (line 10).
			tr := measure(item.u, l)
			take := tr < tc
			if ratio >= 0 {
				take = true
			}
			if !take {
				continue
			}
			bytes := addToVRep(item.u, l)
			if p.MemBudget > 0 && d.CacheBytes+bytes > p.MemBudget {
				// Line 14-15: memory exceeded — drop u and stop caching.
				overBudget = true
				break
			}
			d.CacheBytes += bytes
			d.EstCacheCost += tr
			cached[item.u] = struct{}{}
		}
		d.R[l-1] = sortedSet(cached)
		d.C[l-1] = subtract(deps, cached)
		d.EstCommCost += float64(len(d.C[l-1])) * tc
		if overBudget {
			// Remaining layers communicate everything.
			for k := l; k < L; k++ {
				d.R[k] = nil
				d.C[k] = deps
				d.EstCommCost += float64(len(deps)) * p.Costs.CommCost(p.Dims[k])
			}
			return
		}
	}
}

// estimate fills the modeled costs for the fixed all-cache / all-comm modes.
func (p *Planner) estimate(worker int, deps []int32, d *Decision) {
	counter := costmodel.NewSubtreeCounter(p.Graph)
	owner := p.Part.Assign
	isLocal := func(v int32) bool { return owner[v] == int32(worker) }
	L := p.numLayers()
	for l := 1; l <= L; l++ {
		for _, u := range d.C[l-1] {
			_ = u
			d.EstCommCost += p.Costs.CommCost(p.Dims[l-1])
		}
		for _, u := range d.R[l-1] {
			if l == 1 {
				continue
			}
			verts, edges := counter.Count(u, l-1, isLocal)
			dims := make([]int, l-1)
			for k := range dims {
				dims[k] = p.Dims[l-1-k]
			}
			d.EstCacheCost += p.Costs.SubtreeCost(verts, edges, dims)
		}
	}
}

func sortedSet(m map[int32]struct{}) []int32 {
	out := make([]int32, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func subtract(all []int32, drop map[int32]struct{}) []int32 {
	out := make([]int32, 0, len(all)-len(drop))
	for _, v := range all {
		if _, ok := drop[v]; !ok {
			out = append(out, v)
		}
	}
	return out
}
