package hybrid

import (
	"testing"
	"testing/quick"

	"neutronstar/internal/costmodel"
	"neutronstar/internal/dataset"
	"neutronstar/internal/graph"
	"neutronstar/internal/partition"
	"neutronstar/internal/tensor"
)

func testSetup(t testing.TB, n int, deg float64, parts int, seed uint64) (*graph.Graph, *partition.Partition) {
	t.Helper()
	d := dataset.Load(dataset.Spec{
		Name: "h", Vertices: n, AvgDegree: deg, FeatureDim: 8,
		NumClasses: 4, HiddenDim: 8, Gen: dataset.GenRMAT, Seed: seed,
	})
	p, err := partition.New(partition.Chunk, d.Graph, parts)
	if err != nil {
		t.Fatal(err)
	}
	return d.Graph, p
}

func planner(g *graph.Graph, p *partition.Partition, costs costmodel.Costs) *Planner {
	return &Planner{Graph: g, Part: p, Dims: []int{8, 8, 4}, Costs: costs}
}

// checkPartitionOfDeps verifies that for every layer, R and C partition the
// dependency set exactly.
func checkPartitionOfDeps(t *testing.T, pl *Planner, worker int, d *Decision) {
	t.Helper()
	deps := pl.dependencies(worker)
	depSet := make(map[int32]bool, len(deps))
	for _, u := range deps {
		depSet[u] = true
	}
	for l := range d.R {
		if d.TPAt(l + 1) {
			// A tensor-parallel layer has no per-vertex dependencies at all:
			// the slice-exchange collectives replace both sets.
			if len(d.R[l]) != 0 || len(d.C[l]) != 0 {
				t.Fatalf("worker %d layer %d: tensor-parallel layer carries R=%v C=%v",
					worker, l+1, d.R[l], d.C[l])
			}
			continue
		}
		seen := make(map[int32]int)
		for _, u := range d.R[l] {
			seen[u]++
		}
		for _, u := range d.C[l] {
			seen[u]++
		}
		if len(seen) != len(deps) {
			t.Fatalf("worker %d layer %d: %d of %d deps assigned", worker, l+1, len(seen), len(deps))
		}
		for u, c := range seen {
			if c != 1 {
				t.Fatalf("worker %d layer %d: dep %d assigned %d times", worker, l+1, u, c)
			}
			if !depSet[u] {
				t.Fatalf("worker %d layer %d: %d is not a dependency", worker, l+1, u)
			}
		}
	}
}

func TestModeAllCacheAllComm(t *testing.T) {
	g, p := testSetup(t, 500, 6, 4, 1)
	pl := planner(g, p, costmodel.Costs{Tv: 1e-7, Te: 1e-8, Tc: 1e-7})
	cacheDecs, err := pl.DecideAll(ModeAllCache)
	if err != nil {
		t.Fatal(err)
	}
	commDecs, err := pl.DecideAll(ModeAllComm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		checkPartitionOfDeps(t, pl, i, cacheDecs[i])
		checkPartitionOfDeps(t, pl, i, commDecs[i])
		if cacheDecs[i].NumComm() != 0 {
			t.Fatalf("worker %d: AllCache has %d comm deps", i, cacheDecs[i].NumComm())
		}
		if commDecs[i].NumCached() != 0 {
			t.Fatalf("worker %d: AllComm has %d cached deps", i, commDecs[i].NumCached())
		}
	}
}

func TestHybridRespondsToCostRegime(t *testing.T) {
	g, p := testSetup(t, 1000, 10, 4, 2)
	// Expensive communication, cheap compute → caching dominates.
	cacheHeavy := planner(g, p, costmodel.Costs{Tv: 1e-9, Te: 1e-10, Tc: 1e-3})
	// Expensive compute, cheap communication → layer-2 communicating wins.
	commHeavy := planner(g, p, costmodel.Costs{Tv: 1e-3, Te: 1e-4, Tc: 1e-9})

	dc, err := cacheHeavy.DecideAll(ModeHybrid)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := commHeavy.DecideAll(ModeHybrid)
	if err != nil {
		t.Fatal(err)
	}
	var cacheHeavyCached, commHeavyCachedL2 int
	for i := range dc {
		checkPartitionOfDeps(t, cacheHeavy, i, dc[i])
		checkPartitionOfDeps(t, commHeavy, i, dm[i])
		cacheHeavyCached += dc[i].NumCached()
		commHeavyCachedL2 += len(dm[i].R[1])
	}
	if cacheHeavyCached == 0 {
		t.Fatal("cache-friendly regime cached nothing")
	}
	if commHeavyCachedL2 != 0 {
		t.Fatalf("comm-friendly regime cached %d layer-2 deps", commHeavyCachedL2)
	}
}

func TestHybridLayer1AlwaysCachedWithoutBudget(t *testing.T) {
	// Layer-1 (feature) dependencies have zero redundant compute cost, so
	// Algorithm 4 caches them whenever memory allows.
	g, p := testSetup(t, 500, 8, 4, 3)
	pl := planner(g, p, costmodel.Costs{Tv: 1e-6, Te: 1e-7, Tc: 1e-8})
	decs, err := pl.DecideAll(ModeHybrid)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range decs {
		if len(d.C[0]) != 0 {
			t.Fatalf("worker %d: %d layer-1 deps communicated despite free caching", i, len(d.C[0]))
		}
	}
}

func TestMemoryBudgetEnforced(t *testing.T) {
	g, p := testSetup(t, 1000, 10, 4, 4)
	pl := planner(g, p, costmodel.Costs{Tv: 1e-9, Te: 1e-10, Tc: 1e-3})
	pl.MemBudget = 2048 // tiny: a few hundred rows at most
	decs, err := pl.DecideAll(ModeHybrid)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range decs {
		checkPartitionOfDeps(t, pl, i, d)
		if d.CacheBytes > pl.MemBudget {
			t.Fatalf("worker %d: cache bytes %d over budget %d", i, d.CacheBytes, pl.MemBudget)
		}
	}
	// The same regime without a budget must cache strictly more.
	pl2 := planner(g, p, costmodel.Costs{Tv: 1e-9, Te: 1e-10, Tc: 1e-3})
	unbounded, _ := pl2.DecideAll(ModeHybrid)
	var withBudget, without int
	for i := range decs {
		withBudget += decs[i].NumCached()
		without += unbounded[i].NumCached()
	}
	if withBudget >= without {
		t.Fatalf("budgeted cached %d >= unbounded %d", withBudget, without)
	}
}

func TestModeRatioSweep(t *testing.T) {
	g, p := testSetup(t, 800, 8, 4, 5)
	prev := -1
	for _, ratio := range []float64{0, 0.25, 0.5, 0.75, 1} {
		pl := planner(g, p, costmodel.Costs{Tv: 1e-7, Te: 1e-8, Tc: 1e-6})
		pl.Ratio = ratio
		decs, err := pl.DecideAll(ModeRatio)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i, d := range decs {
			checkPartitionOfDeps(t, pl, i, d)
			total += d.NumCached()
		}
		if total < prev {
			t.Fatalf("ratio %v cached %d < previous %d", ratio, total, prev)
		}
		prev = total
	}
	// Ratio 1 must equal all-cache; ratio 0 must equal all-comm.
	pl := planner(g, p, costmodel.Costs{})
	pl.Ratio = 0
	decs, _ := pl.DecideAll(ModeRatio)
	for _, d := range decs {
		if d.NumCached() != 0 {
			t.Fatal("ratio 0 cached something")
		}
	}
	pl.Ratio = 1
	decs, _ = pl.DecideAll(ModeRatio)
	all, _ := pl.DecideAll(ModeAllCache)
	for i := range decs {
		if decs[i].NumCached() != all[i].NumCached() {
			t.Fatalf("ratio 1 cached %d, all-cache %d", decs[i].NumCached(), all[i].NumCached())
		}
	}
}

func TestSinglePartitionHasNoDeps(t *testing.T) {
	g, p := testSetup(t, 300, 5, 1, 6)
	pl := planner(g, p, costmodel.Costs{Tv: 1, Te: 1, Tc: 1})
	decs, err := pl.DecideAll(ModeHybrid)
	if err != nil {
		t.Fatal(err)
	}
	if decs[0].NumCached() != 0 || decs[0].NumComm() != 0 {
		t.Fatal("single worker has remote dependencies")
	}
}

func TestDecideAllRejectsNoLayers(t *testing.T) {
	g, p := testSetup(t, 100, 4, 2, 7)
	pl := &Planner{Graph: g, Part: p, Dims: []int{8}}
	if _, err := pl.DecideAll(ModeHybrid); err == nil {
		t.Fatal("expected error for dims without layers")
	}
}

func TestVRepMakesLaterCachingCheaper(t *testing.T) {
	// Construct a graph where dep subtrees overlap heavily: a shared hub
	// feeding two dependencies. After caching one, the other's re-measured
	// cost must drop.
	// Worker layout (chunk, 2 parts of 3): {0,1,2} and {3,4,5}.
	// Worker 0 owns {0,1,2}; edges 4->1, 5->2 (deps 4,5); hub 3 feeds both:
	// 3->4, 3->5.
	g := graph.MustFromEdges(6, []graph.Edge{
		{Src: 4, Dst: 1}, {Src: 5, Dst: 2}, {Src: 3, Dst: 4}, {Src: 3, Dst: 5},
	})
	assign := []int32{0, 0, 0, 1, 1, 1}
	p := &partition.Partition{NumParts: 2, Assign: assign, Parts: [][]int32{{0, 1, 2}, {3, 4, 5}}}
	if err := p.Validate(6); err != nil {
		t.Fatal(err)
	}
	costs := costmodel.Costs{Tv: 1, Te: 1, Tc: 2.5}
	pl := &Planner{Graph: g, Part: p, Dims: []int{1, 1, 1}, Costs: costs}
	decs, err := pl.DecideAll(ModeHybrid)
	if err != nil {
		t.Fatal(err)
	}
	// t_c(layer2) = 2.5. First dep alone: subtree {4 (1v,1e), 3 (1v,0e)} =
	// (1+1)*1 + 1*1 = 3 > 2.5 → without V_rep neither would be cached.
	// But layer-1 caching (free) replicates features only; V_rep from
	// layer 1 contains 4,5 (feature level)... the level-less V_rep then
	// makes layer-2 subtrees cheaper: dep 4 at layer 2 excludes {4,5},
	// charging root 4: wait root is charged regardless: (1v+1e)*1 for root
	// + 3 excluded? 3 not in V_rep (not a direct dep).
	// The decisive assertion: decisions are a valid partition and V_rep
	// reuse means at most one of {4,5} pays for hub 3.
	d := decs[0]
	checkPartitionOfDeps(t, pl, 0, d)
	if len(d.R[0]) != 2 {
		t.Fatalf("layer-1 deps not all cached: %v", d.R[0])
	}
}

// Property: R and C always partition the dependency set, for any mode and
// random graph.
func TestQuickDecisionsPartitionDeps(t *testing.T) {
	f := func(seed uint64, n8 uint8, mode8 uint8) bool {
		n := int(n8%100) + 20
		rng := tensor.NewRNG(seed)
		edges := make([]graph.Edge, n*3)
		for i := range edges {
			edges[i] = graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
		}
		g := graph.MustFromEdges(n, edges)
		p, err := partition.New(partition.Chunk, g, 3)
		if err != nil {
			return false
		}
		pl := &Planner{Graph: g, Part: p, Dims: []int{4, 4, 2},
			Costs: costmodel.Costs{Tv: 1e-7, Te: 1e-8, Tc: 1e-7}, Ratio: 0.5}
		mode := Mode(mode8 % 4)
		decs, err := pl.DecideAll(mode)
		if err != nil {
			return false
		}
		for i, d := range decs {
			deps := pl.dependencies(i)
			for l := range d.R {
				if len(d.R[l])+len(d.C[l]) != len(deps) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// buildTinyInstance makes a worker-0 instance with few dependencies so the
// exact solver is feasible.
func buildTinyInstance(t *testing.T, seed uint64, costs costmodel.Costs) (*Planner, int) {
	t.Helper()
	rng := tensor.NewRNG(seed)
	const n = 12
	var edges []graph.Edge
	for i := 0; i < n*2; i++ {
		edges = append(edges, graph.Edge{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))})
	}
	g := graph.MustFromEdges(n, edges)
	p, err := partition.New(partition.Chunk, g, 3)
	if err != nil {
		t.Fatal(err)
	}
	pl := &Planner{Graph: g, Part: p, Dims: []int{4, 4, 3}, Costs: costs}
	return pl, 0
}

func TestExactSolverBeatsOrMatchesPureStrategies(t *testing.T) {
	costs := costmodel.Costs{Tv: 1e-6, Te: 2e-7, Tc: 1.5e-6}
	pl, w := buildTinyInstance(t, 91, costs)
	deps := pl.dependencies(w)
	if len(deps) == 0 || len(deps) > 10 {
		t.Skipf("instance has %d deps", len(deps))
	}
	exact, err := pl.ExactDecision(w, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	allCache, _ := pl.decideWorker(w, ModeAllCache)
	allComm, _ := pl.decideWorker(w, ModeAllComm)
	exactCost, _ := pl.EvaluateCost(w, exact)
	cacheCost, _ := pl.EvaluateCost(w, allCache)
	commCost, _ := pl.EvaluateCost(w, allComm)
	if exactCost > cacheCost+1e-12 || exactCost > commCost+1e-12 {
		t.Fatalf("exact %v worse than pure strategies (cache %v, comm %v)", exactCost, cacheCost, commCost)
	}
}

// The headline quality claim for Algorithm 4: on instances small enough to
// solve exactly, the greedy's cost is within a small constant factor of the
// true optimum across random graphs and cost regimes.
func TestGreedyNearOptimal(t *testing.T) {
	regimes := []costmodel.Costs{
		{Tv: 1e-6, Te: 2e-7, Tc: 5e-6}, // comm expensive
		{Tv: 1e-6, Te: 2e-7, Tc: 1e-6}, // balanced
		{Tv: 5e-6, Te: 1e-6, Tc: 2e-7}, // compute expensive
	}
	worstRatio := 1.0
	for seed := uint64(0); seed < 12; seed++ {
		for ri, costs := range regimes {
			pl, w := buildTinyInstance(t, 300+seed, costs)
			deps := pl.dependencies(w)
			if len(deps) == 0 || len(deps) > 9 {
				continue
			}
			exact, err := pl.ExactDecision(w, 1<<22)
			if err != nil {
				t.Fatal(err)
			}
			greedy, err := pl.decideWorker(w, ModeHybrid)
			if err != nil {
				t.Fatal(err)
			}
			exactCost, _ := pl.EvaluateCost(w, exact)
			greedyCost, _ := pl.EvaluateCost(w, greedy)
			if exactCost == 0 {
				if greedyCost > 1e-12 {
					t.Fatalf("seed %d regime %d: optimum free but greedy cost %v", seed, ri, greedyCost)
				}
				continue
			}
			ratio := greedyCost / exactCost
			if ratio > worstRatio {
				worstRatio = ratio
			}
			if ratio > 2.0 {
				t.Fatalf("seed %d regime %d: greedy %v vs optimum %v (ratio %.2f)",
					seed, ri, greedyCost, exactCost, ratio)
			}
		}
	}
	t.Logf("worst greedy/optimal ratio observed: %.3f", worstRatio)
}

func TestExactRespectsBudget(t *testing.T) {
	costs := costmodel.Costs{Tv: 1e-9, Te: 1e-10, Tc: 1e-3}
	pl, w := buildTinyInstance(t, 95, costs)
	if len(pl.dependencies(w)) == 0 {
		t.Skip("no deps")
	}
	pl.MemBudget = 64
	d, err := pl.ExactDecision(w, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if d.CacheBytes > 64 {
		t.Fatalf("exact solution uses %d bytes over budget", d.CacheBytes)
	}
}

func TestExactRefusesHugeInstances(t *testing.T) {
	pl, w := buildTinyInstance(t, 96, costmodel.Costs{Tv: 1, Te: 1, Tc: 1})
	if _, err := pl.ExactDecision(w, 4); err == nil {
		t.Fatal("expected state-space refusal")
	}
}
