package hybrid

import (
	"neutronstar/internal/costmodel"
)

// The 3-way planner. Tensor parallelism is not a per-dependency choice like
// cache-vs-comm: a TP layer requires every worker to run the same slice
// dataflow, and the slice layout of layer l feeds layer l+1's, so TP is a
// cluster-global per-layer bit. The planner therefore keeps Algorithm 4 for
// the per-vertex split and layers a deterministic candidate argmin on top:
// pure communication, the 2-way greedy mix, pure caching, and every
// "TP suffix" plan (layers t..L tensor-parallel, the greedy mix below t)
// compete on the exact modeled cost, and the cheapest wins.
//
// TP suffixes — rather than arbitrary TP subsets — keep the plan sound by
// construction: a TP layer's input must be exactly the owned rows, which
// holds iff no layer at or above it caches dependencies (replicas would
// widen the previous layer's output). The greedy prefix below t only
// replicates at levels < t-1, so every candidate satisfies the invariant.
//
// Tie rule (generalizing Algorithm 4 line 11's "tie falls to comm"): the
// argmin takes a strictly cheaper candidate only, and candidates are ordered
// communication, 2-way greedy, caching, then TP suffixes shallowest first —
// so an exact tie prefers comm over cache over TP, and less tensor
// parallelism over more.

// tpLayerCost returns the modeled slice-exchange cost of worker `worker`
// running layer l tensor-parallel (Eq. 2's T_c priced on collective volume,
// costmodel.TPVolume).
func (p *Planner) tpLayerCost(worker, l int) float64 {
	n := p.Part.NumParts
	d := p.Dims[l-1]
	lo, hi := costmodel.TPColRange(d, n, worker)
	vol := costmodel.TPVolume(p.SliceTP, l == 1, p.Graph.NumVertices(),
		len(p.Part.Parts[worker]), d, hi-lo)
	return p.Costs.TPCost(vol)
}

// decideAllSeq is DecideAll's per-worker loop without the goroutine fan-out:
// candidate generation inside decideThreeWay must be deterministic and cheap
// enough that parallelism buys nothing.
func (p *Planner) decideAllSeq(mode Mode) ([]*Decision, error) {
	out := make([]*Decision, p.Part.NumParts)
	for i := range out {
		d, err := p.decideWorker(i, mode)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// tpSuffix derives the candidate plan with layers t..L tensor-parallel and
// the base plan's split below t. R/C slice headers are shared with base
// (read-only); the Decision structs are fresh.
func (p *Planner) tpSuffix(base []*Decision, t int) []*Decision {
	L := p.numLayers()
	out := make([]*Decision, len(base))
	for w, b := range base {
		d := &Decision{R: make([][]int32, L), C: make([][]int32, L), TP: make([]bool, L), Rep: make([]bool, L)}
		for l := 1; l < t; l++ {
			d.R[l-1] = b.R[l-1]
			d.C[l-1] = b.C[l-1]
		}
		for l := t; l <= L; l++ {
			d.TP[l-1] = true
		}
		out[w] = d
	}
	return out
}

// decideThreeWay evaluates the candidate family and returns the cheapest
// feasible plan with its exact modeled costs filled in. With one worker all
// collective and dependency volumes are zero, every candidate ties at zero
// cost, and the tie rule picks pure communication — empty sets, no TP: the
// same degeneracy the 2-way modes exhibit.
func (p *Planner) decideThreeWay() ([]*Decision, error) {
	return p.decideSuffixFamily(false)
}
