package hybrid

import "fmt"

// The 4-way planner. Replication, like tensor parallelism, is a
// cluster-global per-layer bit: a replicated layer caches every remote
// dependency on every worker, so there is no per-dependency choice to make —
// only whether a layer joins the replicated suffix. decideFourWay therefore
// extends decideThreeWay's candidate argmin with one more suffix family:
// plans with layers t..L replicated (the full dependency set cached, replica
// storage compressed by the quantization factor) above the 2-way greedy
// prefix.
//
// Rep suffixes — like TP suffixes — keep the candidate space linear in L
// while covering the shapes the cost structure rewards: dependency traffic
// grows with depth (subtrees widen), so if replicating layer l pays off,
// replicating l+1 pays off at least as much.
//
// Replicated candidates answer to RepBudget, not MemBudget: replica rows are
// stored (re)quantized in their own store, so the full-precision cache budget
// does not govern them. RepBudget = 0 removes the family entirely — hybrid4
// then degenerates to hybrid3 exactly.
//
// Tie rule (extending the 3-way one): the argmin takes a strictly cheaper
// candidate only, and candidates are ordered communication, 2-way greedy,
// caching, TP suffixes shallowest first, then rep suffixes shallowest first —
// so an exact tie prefers comm over greedy over cache over TP over rep, and
// less tensor parallelism / replication over more. In particular a fully
// replicated plan that ties with pure caching (same sets, same recompute,
// zero traffic on both) loses to it: replication must buy something — budget
// feasibility through compression — to be chosen.

// repSuffix derives the candidate plan with layers t..L replicated and the
// base plan's split below t. Replicated layers cache the full dependency set
// (allCache's R rows, shared read-only); the Decision structs are fresh.
func (p *Planner) repSuffix(base, allCache []*Decision, t int) []*Decision {
	L := p.numLayers()
	out := make([]*Decision, len(base))
	for w, b := range base {
		d := &Decision{R: make([][]int32, L), C: make([][]int32, L), TP: make([]bool, L), Rep: make([]bool, L)}
		for l := 1; l < t; l++ {
			d.R[l-1] = b.R[l-1]
			d.C[l-1] = b.C[l-1]
		}
		for l := t; l <= L; l++ {
			d.R[l-1] = allCache[w].R[l-1]
			d.Rep[l-1] = true
		}
		out[w] = d
	}
	return out
}

// decideFourWay evaluates the 4-way candidate family; decideThreeWay is the
// same argmin without the replicated suffixes.
func (p *Planner) decideFourWay() ([]*Decision, error) {
	return p.decideSuffixFamily(true)
}

// decideSuffixFamily runs the candidate argmin shared by the 3- and 4-way
// planners and returns the cheapest feasible plan with its exact modeled
// costs filled in.
func (p *Planner) decideSuffixFamily(withRep bool) ([]*Decision, error) {
	L := p.numLayers()
	allComm, err := p.decideAllSeq(ModeAllComm)
	if err != nil {
		return nil, err
	}
	greedy, err := p.decideAllSeq(ModeHybrid)
	if err != nil {
		return nil, err
	}
	allCache, err := p.decideAllSeq(ModeAllCache)
	if err != nil {
		return nil, err
	}
	candidates := [][]*Decision{allComm, greedy, allCache}
	for t := L; t >= 1; t-- {
		candidates = append(candidates, p.tpSuffix(greedy, t))
	}
	firstRep := len(candidates)
	if withRep && p.RepBudget != 0 {
		for t := L; t >= 1; t-- {
			candidates = append(candidates, p.repSuffix(greedy, allCache, t))
		}
	}

	best := -1
	bestCost := 0.0
	for ci, cand := range candidates {
		total := 0.0
		feasible := true
		for w := range cand {
			cost, bytes := p.EvaluateCost(w, cand[w])
			if ci >= firstRep {
				// Replicated candidates answer to the (compressed) replica
				// budget; a negative RepBudget is unlimited.
				if p.RepBudget > 0 && bytes > p.RepBudget {
					feasible = false
					break
				}
			} else if p.MemBudget > 0 && bytes > p.MemBudget {
				feasible = false
				break
			}
			total += cost
		}
		if !feasible {
			continue
		}
		if best < 0 || total < bestCost {
			best, bestCost = ci, total
		}
	}
	if best < 0 {
		// Unreachable: pure communication stores no replicas and always fits.
		return nil, fmt.Errorf("hybrid: no feasible plan under budget %d", p.MemBudget)
	}
	chosen := candidates[best]
	for w, d := range chosen {
		if d.TP == nil {
			d.TP = make([]bool, L)
		}
		if d.Rep == nil {
			d.Rep = make([]bool, L)
		}
		cacheCost, commCost, bytes := p.evaluateCostSplit(w, d)
		d.CacheBytes = bytes
		d.EstCacheCost = cacheCost
		d.EstCommCost = commCost
		d.EstSetupCost = p.repSetupCost(w, d)
	}
	return chosen, nil
}
