package hybrid

import "testing"

// dec builds a Decision with one layer per pair of (cached, communicated)
// slices, in the order R1, C1, R2, C2, ...
func dec(layers ...[]int32) *Decision {
	d := &Decision{}
	for i := 0; i < len(layers); i += 2 {
		d.R = append(d.R, layers[i])
		d.C = append(d.C, layers[i+1])
	}
	return d
}

func TestDiffDecisionsIdenticalPlans(t *testing.T) {
	a := []*Decision{
		dec([]int32{1, 2}, []int32{3}, []int32{}, []int32{1, 2, 3}),
		dec([]int32{7}, []int32{}, []int32{7}, []int32{}),
	}
	rep := DiffDecisions(a, a)
	if rep.Flips() != 0 {
		t.Fatalf("identical plans flipped: %+v", rep)
	}
	// 3 + 3 slots on worker 0, 1 + 1 on worker 1.
	if rep.Slots != 8 {
		t.Fatalf("slots = %d, want 8", rep.Slots)
	}
}

func TestDiffDecisionsCountsBothDirections(t *testing.T) {
	a := []*Decision{dec([]int32{1, 2}, []int32{3, 4})}
	b := []*Decision{dec([]int32{1, 3}, []int32{2, 4})}
	rep := DiffDecisions(a, b)
	// Dep 2: cached in a, communicated in b. Dep 3: the reverse.
	if rep.CacheToComm != 1 || rep.CommToCache != 1 {
		t.Fatalf("flips = %+v, want 1 each way", rep)
	}
	if rep.Slots != 4 {
		t.Fatalf("slots = %d, want 4", rep.Slots)
	}
}

func TestDiffDecisionsIgnoresExtraWorkersAndLayers(t *testing.T) {
	a := []*Decision{dec([]int32{1}, []int32{2})}
	b := []*Decision{
		dec([]int32{2}, []int32{1}, []int32{9}, []int32{}),
		dec([]int32{5}, []int32{6}),
	}
	rep := DiffDecisions(a, b)
	if rep.CacheToComm != 1 || rep.CommToCache != 1 {
		t.Fatalf("flips = %+v, want 1 each way", rep)
	}
	if rep.Slots != 2 {
		t.Fatalf("slots = %d, want 2 (extra worker and layer ignored)", rep.Slots)
	}
}

func TestDiffDecisionsEmpty(t *testing.T) {
	if rep := DiffDecisions(nil, nil); rep != (FlipReport{}) {
		t.Fatalf("nil diff = %+v", rep)
	}
}

func TestDiffDecisionsCountsRepFlips(t *testing.T) {
	// Two layers: layer 1 flips into replication (a splits, b replicates);
	// layer 2 flips out of it. A replicated layer's per-dependency slots are
	// subsumed by the policy flip, so only flipless layers would add slots.
	a := []*Decision{dec([]int32{1}, []int32{2}, []int32{1, 2}, []int32{})}
	b := []*Decision{dec([]int32{1, 2}, []int32{}, []int32{1}, []int32{2})}
	a[0].Rep = []bool{false, true}
	b[0].Rep = []bool{true, false}
	rep := DiffDecisions(a, b)
	if rep.ToRep != 1 || rep.FromRep != 1 {
		t.Fatalf("rep flips = %+v, want 1 each way", rep)
	}
	if rep.Slots != 0 {
		t.Fatalf("slots = %d, want 0 (both layers subsumed by rep flips)", rep.Slots)
	}
	if rep.Flips() != 2 {
		t.Fatalf("Flips() = %d, want 2", rep.Flips())
	}
}

func TestDiffDecisionsTPFlipSubsumesRepFlip(t *testing.T) {
	// When one side goes TP and the other replicated, the TP check runs first
	// and counts the layer once; the rep counters stay untouched.
	a := []*Decision{dec([]int32{1, 2}, []int32{})}
	b := []*Decision{dec([]int32{}, []int32{})}
	a[0].Rep = []bool{true}
	b[0].TP = []bool{true}
	rep := DiffDecisions(a, b)
	if rep.ToTP != 1 || rep.ToRep != 0 || rep.FromRep != 0 {
		t.Fatalf("flips = %+v, want exactly one ToTP", rep)
	}
}
