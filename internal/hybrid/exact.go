package hybrid

import (
	"fmt"
	"math"
	"sort"

	"neutronstar/internal/costmodel"
)

// The paper observes (§3) that minimising Eq. 3 is NP-hard — it reduces to
// 0-1 integer linear programming — which is why Algorithm 4 is a greedy
// heuristic. This file provides an exhaustive solver for tiny instances
// (|D| small enough that (2^|D|)^L enumeration is feasible), used in tests
// to measure how far the greedy lands from the true optimum under the same
// cost semantics.

// EvaluateCost computes the exact modeled per-epoch cost of a concrete
// decision for one worker, using level-aware replica accounting that
// mirrors the execution plan: a cached dependency u at layer l requires
// h^(l-1)_u, hence the self-chain of u and the subtrees of its in-neighbors
// down to the features; every replicated vertex w with requirement level k
// is charged the vertex and edge work of all levels 1..k exactly once.
// Tensor-parallel layers contribute their slice-exchange collective cost
// instead (tpLayerCost). It returns the cost and the replica storage bytes.
func (p *Planner) EvaluateCost(worker int, d *Decision) (cost float64, bytes int64) {
	cacheCost, commCost, bytes := p.evaluateCostSplit(worker, d)
	return cacheCost + commCost, bytes
}

// evaluateCostSplit is EvaluateCost with the redundant-compute and
// communication components reported separately (slice-exchange collective
// cost counts as communication).
func (p *Planner) evaluateCostSplit(worker int, d *Decision) (cacheCost, commCost float64, bytes int64) {
	L := p.numLayers()
	owner := p.Part.Assign
	isOwned := func(v int32) bool { return owner[v] == int32(worker) }
	req := p.replicaLevels(worker, d)

	// Replicated plans store their replica feature/activation rows compressed
	// by the quantization factor; plans without replicated layers price at
	// full float32 width (compression 1), byte-identical to the 3-way model.
	compression := 1.0
	if d.NumRep() > 0 && p.RepCompression > 1 {
		compression = p.RepCompression
	}

	// Iterate replicas in sorted vertex order: map-range order would make the
	// float sum — and with it the candidate argmin on near-ties — depend on
	// the run, and the planner must be deterministic.
	reps := make([]int32, 0, len(req))
	for w := range req {
		reps = append(reps, w)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
	for _, w := range reps {
		k := req[w]
		deg := float64(p.Graph.InDegree(w))
		for j := 1; j <= k; j++ {
			cacheCost += (p.Costs.Tv + deg*p.Costs.Te) * float64(p.Dims[j])
		}
		bytes += costmodel.RepReplicaBytes(p.Dims, k, p.Graph.InDegree(w), compression)
	}
	for l := 1; l <= L; l++ {
		if d.TPAt(l) {
			commCost += p.tpLayerCost(worker, l)
			continue
		}
		for _, u := range d.C[l-1] {
			if isOwned(u) {
				continue
			}
			if have, ok := req[u]; ok && have >= l-1 {
				continue // replicated anyway: nothing to fetch
			}
			if l == 1 {
				continue // features are fetched once at setup, not per epoch
			}
			commCost += p.Costs.CommCost(p.Dims[l-1])
		}
	}
	return cacheCost, commCost, bytes
}

// replicaLevels computes the worker's replica requirement map for a decision:
// req[w] is the highest representation level of non-owned vertex w that must
// be locally computable, derived by closing the cached sets over self chains
// and in-neighbor subtrees (the same expansion the execution plan performs).
func (p *Planner) replicaLevels(worker int, d *Decision) map[int32]int {
	L := p.numLayers()
	owner := p.Part.Assign
	isOwned := func(v int32) bool { return owner[v] == int32(worker) }
	req := make(map[int32]int)
	var mark func(v int32, lvl int)
	mark = func(v int32, lvl int) {
		if isOwned(v) || lvl < 0 {
			return
		}
		if have, ok := req[v]; ok && have >= lvl {
			return
		}
		req[v] = lvl
		if lvl >= 1 {
			for _, w := range p.Graph.InNeighbors(v) {
				mark(w, lvl-1)
			}
		}
	}
	for l := 1; l <= L; l++ {
		if d.TPAt(l) {
			continue // TP layers carry no R set
		}
		for _, u := range d.R[l-1] {
			mark(u, l-1)
		}
	}
	return req
}

// repSetupCost prices the worker's one-time replica feature broadcast under
// the configured compression — reported on the Decision, excluded from the
// per-epoch argmin.
func (p *Planner) repSetupCost(worker int, d *Decision) float64 {
	if d.NumRep() == 0 {
		return 0
	}
	return p.Costs.RepSetupCost(len(p.replicaLevels(worker, d)), p.Dims[0], p.RepCompression)
}

// ExactDecision enumerates every per-layer cache/communicate assignment for
// worker and returns the decision minimising EvaluateCost subject to the
// memory budget. It refuses instances where the search space exceeds
// maxStates (the problem is NP-hard; this is a test oracle, not a planner).
func (p *Planner) ExactDecision(worker int, maxStates int) (*Decision, error) {
	deps := p.dependencies(worker)
	L := p.numLayers()
	nd := len(deps)
	states := math.Pow(2, float64(nd*L))
	if states > float64(maxStates) {
		return nil, fmt.Errorf("hybrid: exact search needs %.0f states (> %d)", states, maxStates)
	}
	var best *Decision
	bestCost := math.Inf(1)
	total := 1 << (nd * L)
	for code := 0; code < total; code++ {
		d := &Decision{R: make([][]int32, L), C: make([][]int32, L)}
		bits := code
		for l := 0; l < L; l++ {
			for i, u := range deps {
				if bits&(1<<(l*nd+i)) != 0 {
					d.R[l] = append(d.R[l], u)
				} else {
					d.C[l] = append(d.C[l], u)
				}
			}
		}
		cost, bytes := p.EvaluateCost(worker, d)
		if p.MemBudget > 0 && bytes > p.MemBudget {
			continue
		}
		if cost < bestCost {
			bestCost = cost
			d.CacheBytes = bytes
			d.EstCacheCost = cost
			best = d
		}
	}
	if best == nil {
		return nil, fmt.Errorf("hybrid: no feasible decision under budget %d", p.MemBudget)
	}
	return best, nil
}
