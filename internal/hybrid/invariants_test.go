package hybrid

import (
	"math"
	"testing"

	"neutronstar/internal/costmodel"
	"neutronstar/internal/graph"
	"neutronstar/internal/partition"
)

// TestDecisionPartitionInvariantAcrossModes sweeps every assignment mode,
// several ratios and several memory budgets over the same graph and asserts
// the structural invariant the engines rely on: for every worker and every
// layer, each remote dependency lands in exactly one of R and C, both sorted
// ascending.
func TestDecisionPartitionInvariantAcrossModes(t *testing.T) {
	g, p := testSetup(t, 160, 5, 4, 31)
	type cfg struct {
		name   string
		mode   Mode
		ratio  float64
		budget int64
	}
	cfgs := []cfg{
		{"hybrid", ModeHybrid, 0, 0},
		{"hybrid/tight-budget", ModeHybrid, 0, 512},
		{"hybrid/mid-budget", ModeHybrid, 0, 16 << 10},
		{"allcache", ModeAllCache, 0, 0},
		{"allcomm", ModeAllComm, 0, 0},
		{"ratio/0", ModeRatio, 0, 0},
		{"ratio/0.5", ModeRatio, 0.5, 0},
		{"ratio/1", ModeRatio, 1, 0},
		{"alltp", ModeAllTP, 0, 0},
		{"hybrid3", ModeHybrid3, 0, 0},
		{"hybrid3/tight-budget", ModeHybrid3, 0, 512},
	}
	for _, c := range cfgs {
		t.Run(c.name, func(t *testing.T) {
			pl := planner(g, p, costmodel.Costs{Tv: 1e-8, Te: 2e-9, Tc: 3e-8})
			pl.Ratio = c.ratio
			pl.MemBudget = c.budget
			ds, err := pl.DecideAll(c.mode)
			if err != nil {
				t.Fatal(err)
			}
			for w, d := range ds {
				checkPartitionOfDeps(t, pl, w, d)
				for l := range d.R {
					assertAscending(t, "R", w, l, d.R[l])
					assertAscending(t, "C", w, l, d.C[l])
				}
			}
			// The tensor-parallel bit is cluster-global: every worker must
			// carry the identical per-layer TP flags.
			for l := 1; l < len(pl.Dims); l++ {
				for w := 1; w < len(ds); w++ {
					if ds[w].TPAt(l) != ds[0].TPAt(l) {
						t.Fatalf("layer %d: worker %d TP=%v, worker 0 TP=%v",
							l, w, ds[w].TPAt(l), ds[0].TPAt(l))
					}
				}
			}
		})
	}
}

func assertAscending(t *testing.T, set string, worker, layer int, s []int32) {
	t.Helper()
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			t.Fatalf("worker %d layer %d: %s not ascending: %v", worker, layer+1, set, s)
		}
	}
}

// TestGreedyMatchesExactInExtremeRegimes pins Algorithm 4 against the
// exhaustive solver where the optimum is unambiguous: when communication
// dwarfs compute the optimal plan caches everything, and when communication
// is free it communicates everything. The comparison is on EvaluateCost (the
// shared cost semantics), not on the raw sets, because cost-equal ties can
// legitimately differ.
func TestGreedyMatchesExactInExtremeRegimes(t *testing.T) {
	g, p := testSetup(t, 24, 2.0, 2, 33)
	regimes := []struct {
		name  string
		costs costmodel.Costs
	}{
		{"comm-dominant", costmodel.Costs{Tv: 1e-9, Te: 1e-10, Tc: 1}},
		{"comm-free", costmodel.Costs{Tv: 1, Te: 1, Tc: 1e-12}},
	}
	for _, r := range regimes {
		t.Run(r.name, func(t *testing.T) {
			pl := planner(g, p, r.costs)
			for w := 0; w < p.NumParts; w++ {
				exact, err := pl.ExactDecision(w, 1<<22)
				if err != nil {
					t.Skipf("instance too large for exact solver: %v", err)
				}
				greedy, err := pl.decideWorker(w, ModeHybrid)
				if err != nil {
					t.Fatal(err)
				}
				gc, _ := pl.EvaluateCost(w, greedy)
				ec, _ := pl.EvaluateCost(w, exact)
				if math.Abs(gc-ec) > 1e-12*math.Max(1, ec) {
					t.Fatalf("worker %d: greedy cost %g, exact optimum %g", w, gc, ec)
				}
			}
		})
	}
}

// twoVertexPlanner builds the smallest instance with one remote dependency:
// vertex 0 (worker 0, zero in-degree) feeds vertex 1 (worker 1).
func twoVertexPlanner(costs costmodel.Costs, dims []int) *Planner {
	g := graph.MustFromEdges(2, []graph.Edge{{Src: 0, Dst: 1}})
	p := &partition.Partition{
		NumParts: 2,
		Assign:   []int32{0, 1},
		Parts:    [][]int32{{0}, {1}},
	}
	return &Planner{Graph: g, Part: p, Dims: dims, Costs: costs}
}

// TestCostTieGoesToComm pins the boundary of Algorithm 4 line 11: the greedy
// caches strictly when t_r < t_c, so an exact tie falls to communication.
// With a zero-in-degree dependency u, t_r^2(u) = Tv·d^(1) (Eq. 1 has no edge
// term) and t_c^2(u) = Tc·d^(1) (Eq. 2) — setting Tv = Tc forces the tie.
func TestCostTieGoesToComm(t *testing.T) {
	pl := twoVertexPlanner(costmodel.Costs{Tv: 5e-8, Te: 1e-9, Tc: 5e-8}, []int{4, 4, 2})
	d, err := pl.decideWorker(1, ModeHybrid)
	if err != nil {
		t.Fatal(err)
	}
	// Layer 1 is free to cache (features replicate at setup); layer 2 is the
	// tie and must communicate.
	if len(d.R[0]) != 1 || len(d.C[0]) != 0 {
		t.Fatalf("layer 1: R=%v C=%v, want dep cached", d.R[0], d.C[0])
	}
	if len(d.C[1]) != 1 || len(d.R[1]) != 0 {
		t.Fatalf("layer 2: R=%v C=%v, want tie communicated", d.R[1], d.C[1])
	}
	// Nudging Tv below Tc flips the same dependency to the cache side.
	pl = twoVertexPlanner(costmodel.Costs{Tv: 5e-8 - 1e-12, Te: 1e-9, Tc: 5e-8}, []int{4, 4, 2})
	d, err = pl.decideWorker(1, ModeHybrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.R[1]) != 1 {
		t.Fatalf("layer 2 with t_r < t_c: R=%v C=%v, want dep cached", d.R[1], d.C[1])
	}
}

// TestZeroDegreeDependencyCost checks Eq. 1 on a dependency whose subtree is
// a single vertex with no in-edges: the modeled cost of caching it is exactly
// the vertex term, with no edge contribution.
func TestZeroDegreeDependencyCost(t *testing.T) {
	costs := costmodel.Costs{Tv: 3e-8, Te: 7e-9, Tc: 1e-6}
	dims := []int{4, 6, 2}
	pl := twoVertexPlanner(costs, dims)
	d := &Decision{R: [][]int32{nil, {0}}, C: [][]int32{{0}, nil}}
	got, _ := pl.EvaluateCost(1, d)
	want := costs.Tv * float64(dims[1]) // one vertex op at level 1, zero edges
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("zero-degree cached dep cost %g, want %g", got, want)
	}
}

// TestSingleWorkerDegeneratePlan: with one partition there are no remote
// dependencies, so every mode must produce empty sets and zero estimates.
func TestSingleWorkerDegeneratePlan(t *testing.T) {
	g, p := testSetup(t, 40, 3, 1, 35)
	for _, mode := range []Mode{ModeHybrid, ModeAllCache, ModeAllComm, ModeRatio, ModeAllTP, ModeHybrid3} {
		pl := planner(g, p, costmodel.Costs{Tv: 1e-8, Te: 2e-9, Tc: 3e-8})
		pl.Ratio = 0.5
		ds, err := pl.DecideAll(mode)
		if err != nil {
			t.Fatal(err)
		}
		d := ds[0]
		if d.NumCached() != 0 || d.NumComm() != 0 {
			t.Fatalf("mode %d: R=%d C=%d deps on a single worker", mode, d.NumCached(), d.NumComm())
		}
		if d.CacheBytes != 0 || d.EstCacheCost != 0 || d.EstCommCost != 0 {
			t.Fatalf("mode %d: nonzero estimates %d/%g/%g", mode, d.CacheBytes, d.EstCacheCost, d.EstCommCost)
		}
		if mode == ModeHybrid3 && d.NumTP() != 0 {
			// Every candidate ties at zero on one worker and the tie rule
			// picks pure communication, so no layer goes tensor-parallel.
			t.Fatalf("hybrid3 on a single worker chose %d TP layers", d.NumTP())
		}
	}
}

// TestThreeWayTieGoesToComm pins the generalized tie rule of the 3-way argmin
// (the per-dependency version lives in TestCostTieGoesToComm): candidates are
// ordered communication, 2-way greedy, caching, then TP suffixes shallowest
// first, and only a strictly cheaper candidate displaces an earlier one. Two
// regimes force exact ties that include the tensor-parallel candidates:
// all-zero costs tie every candidate at 0; zero Tc ties comm, greedy and all
// TP suffixes at 0 while caching stays strictly positive. Both must resolve
// to pure communication — no TP, nothing cached, the dependency in C.
func TestThreeWayTieGoesToComm(t *testing.T) {
	regimes := []struct {
		name  string
		costs costmodel.Costs
	}{
		{"all-zero", costmodel.Costs{}},
		{"free-comm", costmodel.Costs{Tv: 5e-8, Te: 1e-9, Tc: 0}},
	}
	for _, r := range regimes {
		t.Run(r.name, func(t *testing.T) {
			pl := twoVertexPlanner(r.costs, []int{4, 4, 2})
			ds, err := pl.DecideAll(ModeHybrid3)
			if err != nil {
				t.Fatal(err)
			}
			for w, d := range ds {
				if d.NumTP() != 0 {
					t.Fatalf("worker %d: tie chose %d TP layers, want pure comm", w, d.NumTP())
				}
				if d.NumCached() != 0 {
					t.Fatalf("worker %d: tie cached %d deps, want pure comm", w, d.NumCached())
				}
			}
			// Worker 1's single dependency (vertex 0) must be communicated at
			// every layer.
			d := ds[1]
			for l := range d.C {
				if len(d.C[l]) != 1 || d.C[l][0] != 0 {
					t.Fatalf("layer %d: C=%v, want [0]", l+1, d.C[l])
				}
			}
		})
	}
}
