package hybrid

// FlipReport summarises how two plans disagree: for every (worker, layer,
// dependency) slot, whether the dependency moved between the DepCache set R
// and the DepComm set C. It is the output of the cost-model counterfactual —
// "had the planner known the measured costs, how many decisions would flip?"
type FlipReport struct {
	// CacheToComm counts slots cached under plan A but communicated under B.
	CacheToComm int `json:"cache_to_comm"`
	// CommToCache counts slots communicated under A but cached under B.
	CommToCache int `json:"comm_to_cache"`
	// ToTP / FromTP count (worker, layer) slots that flipped into / out of
	// tensor parallelism between A and B. A layer that flips to TP drops all
	// its per-dependency slots from the membership comparison — the policy
	// change subsumes them.
	ToTP   int `json:"to_tp"`
	FromTP int `json:"from_tp"`
	// ToRep / FromRep count (worker, layer) slots that flipped into / out of
	// replication between A and B. Like TP, a replication flip subsumes the
	// layer's per-dependency slots (a replicated layer caches everything).
	ToRep   int `json:"to_rep"`
	FromRep int `json:"from_rep"`
	// Slots is the number of comparable (worker, layer, dependency) slots.
	Slots int `json:"slots"`
}

// Flips returns the total number of flipped decisions: per-dependency
// cache/comm moves plus per-layer tensor-parallel and replication moves.
func (f FlipReport) Flips() int {
	return f.CacheToComm + f.CommToCache + f.ToTP + f.FromTP + f.ToRep + f.FromRep
}

// DiffDecisions compares two plans over the same cluster shape. Workers and
// layers beyond the shorter plan are ignored; within a layer, membership is
// compared over the union of both sides' dependencies (the dependency sets of
// two plans for the same partition are identical by construction).
func DiffDecisions(a, b []*Decision) FlipReport {
	var rep FlipReport
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for w := 0; w < n; w++ {
		layers := len(a[w].R)
		if len(b[w].R) < layers {
			layers = len(b[w].R)
		}
		for l := 0; l < layers; l++ {
			aTP, bTP := a[w].TPAt(l+1), b[w].TPAt(l+1)
			if aTP || bTP {
				if !aTP && bTP {
					rep.ToTP++
				}
				if aTP && !bTP {
					rep.FromTP++
				}
				continue // TP layers have no per-dependency slots to compare
			}
			aRep, bRep := a[w].RepAt(l+1), b[w].RepAt(l+1)
			if aRep || bRep {
				if !aRep && bRep {
					rep.ToRep++
				}
				if aRep && !bRep {
					rep.FromRep++
				}
				// Replicated layers cache the full dependency set on both
				// sides; there is no per-dependency decision left to compare.
				continue
			}
			inA := make(map[int32]bool, len(a[w].R[l])+len(a[w].C[l]))
			for _, u := range a[w].R[l] {
				inA[u] = true
			}
			for _, u := range a[w].C[l] {
				inA[u] = false
			}
			for _, u := range b[w].R[l] {
				rep.Slots++
				if cached, ok := inA[u]; ok && !cached {
					rep.CommToCache++
				}
			}
			for _, u := range b[w].C[l] {
				rep.Slots++
				if cached, ok := inA[u]; ok && cached {
					rep.CacheToComm++
				}
			}
		}
	}
	return rep
}
