package hybrid

// FlipReport summarises how two plans disagree: for every (worker, layer,
// dependency) slot, whether the dependency moved between the DepCache set R
// and the DepComm set C. It is the output of the cost-model counterfactual —
// "had the planner known the measured costs, how many decisions would flip?"
type FlipReport struct {
	// CacheToComm counts slots cached under plan A but communicated under B.
	CacheToComm int `json:"cache_to_comm"`
	// CommToCache counts slots communicated under A but cached under B.
	CommToCache int `json:"comm_to_cache"`
	// Slots is the number of comparable (worker, layer, dependency) slots.
	Slots int `json:"slots"`
}

// Flips returns the total number of flipped decisions.
func (f FlipReport) Flips() int { return f.CacheToComm + f.CommToCache }

// DiffDecisions compares two plans over the same cluster shape. Workers and
// layers beyond the shorter plan are ignored; within a layer, membership is
// compared over the union of both sides' dependencies (the dependency sets of
// two plans for the same partition are identical by construction).
func DiffDecisions(a, b []*Decision) FlipReport {
	var rep FlipReport
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for w := 0; w < n; w++ {
		layers := len(a[w].R)
		if len(b[w].R) < layers {
			layers = len(b[w].R)
		}
		for l := 0; l < layers; l++ {
			inA := make(map[int32]bool, len(a[w].R[l])+len(a[w].C[l]))
			for _, u := range a[w].R[l] {
				inA[u] = true
			}
			for _, u := range a[w].C[l] {
				inA[u] = false
			}
			for _, u := range b[w].R[l] {
				rep.Slots++
				if cached, ok := inA[u]; ok && !cached {
					rep.CommToCache++
				}
			}
			for _, u := range b[w].C[l] {
				rep.Slots++
				if cached, ok := inA[u]; ok && cached {
					rep.CacheToComm++
				}
			}
		}
	}
	return rep
}
