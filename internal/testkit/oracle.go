package testkit

import (
	"fmt"
	"math"
	"path/filepath"

	"neutronstar/internal/ckpt"
	"neutronstar/internal/comm"
	"neutronstar/internal/costmodel"
	"neutronstar/internal/dataset"
	"neutronstar/internal/engine"
	"neutronstar/internal/nn"
	"neutronstar/internal/tensor"
)

// OracleOptions configures one cross-policy equivalence run.
type OracleOptions struct {
	// Workers is the distributed cluster size N (default 4).
	Workers int
	// Epochs is the training length compared (default 3).
	Epochs int
	// Model selects the architecture (default GCN).
	Model nn.ModelKind
	// Seed fixes model init for every policy.
	Seed uint64
	// LossTol bounds per-epoch |loss_policy − loss_ref| / max(1, |loss_ref|)
	// (default 1e-5).
	LossTol float64
	// ParamTol bounds the final parameters' element-wise deviation
	// normalised by max(1, ‖ref param‖∞) (default 1e-5).
	ParamTol float64
	// Fault, when non-nil, adds an N-worker hybrid run under fault injection
	// to the policy set. Faults touch timing, never content, so the run must
	// agree like any other policy.
	Fault *comm.FaultSpec
	// CkptDir, when non-empty, adds a kill-and-resume hybrid run: train
	// Epochs/2 epochs with checkpointing into CkptDir, discard the engine,
	// restore the latest snapshot into a fresh one, finish the remaining
	// epochs.
	CkptDir string
}

func (o OracleOptions) withDefaults() OracleOptions {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Epochs <= 0 {
		o.Epochs = 3
	}
	if o.Model == "" {
		o.Model = nn.GCN
	}
	if o.LossTol == 0 {
		o.LossTol = 1e-5
	}
	if o.ParamTol == 0 {
		o.ParamTol = 1e-5
	}
	return o
}

// PolicyRun records one policy's trajectory for reporting.
type PolicyRun struct {
	Label  string
	Losses []float64
	// Params holds deep copies of the final parameter tensors, in model
	// parameter order.
	Params []*tensor.Tensor
}

// oracleCosts pins the cost model so hybrid plans are identical across
// processes (no probing) and genuinely mixed: comm is expensive enough that
// some dependencies cache, cheap enough that some communicate.
var oracleCosts = costmodel.Costs{Tv: 2e-8, Te: 4e-9, Tc: 6e-8}

// RunEquivalence trains ds under every dependency-management policy — the
// single-machine reference, a 1-worker engine, N-worker pure DepCache,
// N-worker pure DepComm, the cost-model hybrid plan, N-worker tensor-parallel
// DepTP, N-worker replicated DepRep, and the 3-way hybrid3 and 4-way hybrid4
// plans, plus the optional fault-injected and
// kill-and-resume variants — and checks that per-epoch
// losses and final parameters agree with the reference within the
// tolerances. It returns every policy's trajectory and the first divergence
// found (nil if all agree). This is the executable form of the paper's
// exactness claim: Eq. 1–3 / Algorithm 4 choose *where* h^(l) is computed,
// never *what* it is.
func RunEquivalence(ds *dataset.Dataset, opt OracleOptions) ([]PolicyRun, error) {
	opt = opt.withDefaults()
	dims := []int{ds.Spec.FeatureDim, ds.Spec.HiddenDim, ds.Spec.NumClasses}

	// Single-machine reference: the ground truth everything else must match.
	ref := PolicyRun{Label: "reference"}
	model := nn.MustNewModel(opt.Model, dims, 0, opt.Seed+7)
	adam := nn.NewAdam(0.01)
	for e := 0; e < opt.Epochs; e++ {
		loss := engine.ReferenceTrainStep(ds.Graph, model, ds.Features, ds.Labels, ds.TrainMask)
		adam.Step(model.Params())
		nn.ZeroGrads(model.Params())
		ref.Losses = append(ref.Losses, loss)
	}
	for _, p := range model.Params() {
		ref.Params = append(ref.Params, p.Value.Clone())
	}
	runs := []PolicyRun{ref}

	base := engine.Options{
		Model: opt.Model, Seed: opt.Seed, Costs: oracleCosts,
	}
	type policy struct {
		label string
		opts  engine.Options
	}
	policies := []policy{
		{"1-worker", with(base, func(o *engine.Options) { o.Workers = 1; o.Mode = engine.Hybrid })},
		{fmt.Sprintf("depcache/%dw", opt.Workers), with(base, func(o *engine.Options) {
			o.Workers = opt.Workers
			o.Mode = engine.DepCache
		})},
		{fmt.Sprintf("depcomm/%dw", opt.Workers), with(base, func(o *engine.Options) {
			o.Workers = opt.Workers
			o.Mode = engine.DepComm
		})},
		{fmt.Sprintf("hybrid/%dw", opt.Workers), with(base, func(o *engine.Options) {
			o.Workers = opt.Workers
			o.Mode = engine.Hybrid
		})},
		{fmt.Sprintf("deptp/%dw", opt.Workers), with(base, func(o *engine.Options) {
			o.Workers = opt.Workers
			o.Mode = engine.DepTP
		})},
		{fmt.Sprintf("hybrid3/%dw", opt.Workers), with(base, func(o *engine.Options) {
			o.Workers = opt.Workers
			o.Mode = engine.Hybrid3
		})},
		{fmt.Sprintf("deprep/%dw", opt.Workers), with(base, func(o *engine.Options) {
			o.Workers = opt.Workers
			o.Mode = engine.DepRep
		})},
		{fmt.Sprintf("hybrid4/%dw", opt.Workers), with(base, func(o *engine.Options) {
			o.Workers = opt.Workers
			o.Mode = engine.Hybrid4
		})},
	}
	if opt.Fault != nil {
		for _, m := range []engine.Mode{engine.Hybrid, engine.DepTP, engine.DepRep, engine.Hybrid4} {
			mode := m
			policies = append(policies, policy{
				fmt.Sprintf("%s/%dw+faults", mode, opt.Workers),
				with(base, func(o *engine.Options) {
					o.Workers = opt.Workers
					o.Mode = mode
					o.Fault = opt.Fault
				}),
			})
		}
	}

	for _, p := range policies {
		run, err := trainEngine(ds, p.label, p.opts, opt.Epochs)
		if err != nil {
			return runs, err
		}
		runs = append(runs, *run)
	}
	if opt.CkptDir != "" {
		// Kill-and-resume per mode, each with its own snapshot subdirectory:
		// the store is modeless and LoadLatest would otherwise hand one mode
		// the other's snapshot.
		for _, m := range []engine.Mode{engine.Hybrid, engine.DepTP, engine.DepRep, engine.Hybrid4} {
			run, err := resumeRun(ds, base, opt, m)
			if err != nil {
				return runs, err
			}
			runs = append(runs, *run)
		}
	}

	for _, run := range runs[1:] {
		if err := compareRuns(ref, run, opt.LossTol, opt.ParamTol); err != nil {
			return runs, err
		}
	}
	return runs, nil
}

// RunEquivalenceProperty adapts the oracle into a shrinkable Property for the
// generator: any dataset on which some policy diverges from the reference is
// a violation. The worker count is clamped to the candidate's vertex count so
// shrunk graphs stay partitionable.
func RunEquivalenceProperty(opt OracleOptions) Property {
	return func(ds *dataset.Dataset) error {
		o := opt.withDefaults()
		if n := ds.Graph.NumVertices(); o.Workers > n {
			o.Workers = n
		}
		_, err := RunEquivalence(ds, o)
		return err
	}
}

func with(o engine.Options, f func(*engine.Options)) engine.Options {
	f(&o)
	return o
}

// trainEngine runs one engine policy to completion and captures its
// trajectory. Replica divergence is an immediate error: parameters that
// drift apart across workers invalidate any loss agreement downstream.
func trainEngine(ds *dataset.Dataset, label string, opts engine.Options, epochs int) (*PolicyRun, error) {
	e, err := engine.NewEngine(ds, opts)
	if err != nil {
		return nil, fmt.Errorf("oracle %s: %w", label, err)
	}
	defer e.Close()
	run := &PolicyRun{Label: label}
	for i := 0; i < epochs; i++ {
		st := e.RunEpoch()
		if st.CkptErr != nil {
			return nil, fmt.Errorf("oracle %s: epoch %d checkpoint: %w", label, st.Epoch, st.CkptErr)
		}
		run.Losses = append(run.Losses, st.Loss)
	}
	if !e.ReplicasInSync() {
		return nil, fmt.Errorf("oracle %s: replicas diverged", label)
	}
	for _, p := range e.Params() {
		run.Params = append(run.Params, p.Value.Clone())
	}
	return run, nil
}

// resumeRun trains half the epochs with checkpointing, abandons the engine
// (the "kill"), restores the latest snapshot into a fresh engine and
// finishes — the trajectory must still match the reference. Each mode
// snapshots into its own subdirectory of CkptDir.
func resumeRun(ds *dataset.Dataset, base engine.Options, opt OracleOptions, mode engine.Mode) (*PolicyRun, error) {
	label := fmt.Sprintf("%s/%dw+resume", mode, opt.Workers)
	k := opt.Epochs / 2
	if k == 0 {
		k = 1
	}
	store, err := ckpt.OpenStore(filepath.Join(opt.CkptDir, string(mode)))
	if err != nil {
		return nil, fmt.Errorf("oracle %s: %w", label, err)
	}
	opts := base
	opts.Workers = opt.Workers
	opts.Mode = mode

	first := opts
	first.Ckpt = &ckpt.Saver{Store: store, Every: 1}
	run := &PolicyRun{Label: label}
	e1, err := engine.NewEngine(ds, first)
	if err != nil {
		return nil, fmt.Errorf("oracle %s: %w", label, err)
	}
	for i := 0; i < k; i++ {
		st := e1.RunEpoch()
		if st.CkptErr != nil {
			e1.Close()
			return nil, fmt.Errorf("oracle %s: epoch %d checkpoint: %w", label, st.Epoch, st.CkptErr)
		}
		run.Losses = append(run.Losses, st.Loss)
	}
	e1.Close() // the crash

	snap, err := store.LoadLatest()
	if err != nil {
		return nil, fmt.Errorf("oracle %s: %w", label, err)
	}
	if snap == nil {
		return nil, fmt.Errorf("oracle %s: no snapshot after %d checkpointed epochs", label, k)
	}
	e2, err := engine.NewEngine(ds, opts)
	if err != nil {
		return nil, fmt.Errorf("oracle %s: %w", label, err)
	}
	defer e2.Close()
	if err := e2.Restore(snap); err != nil {
		return nil, fmt.Errorf("oracle %s: %w", label, err)
	}
	for i := k; i < opt.Epochs; i++ {
		run.Losses = append(run.Losses, e2.RunEpoch().Loss)
	}
	if !e2.ReplicasInSync() {
		return nil, fmt.Errorf("oracle %s: replicas diverged after resume", label)
	}
	for _, p := range e2.Params() {
		run.Params = append(run.Params, p.Value.Clone())
	}
	return run, nil
}

// compareRuns checks run against the reference trajectory.
func compareRuns(ref, run PolicyRun, lossTol, paramTol float64) error {
	if len(run.Losses) != len(ref.Losses) {
		return fmt.Errorf("oracle %s: %d epochs, reference has %d", run.Label, len(run.Losses), len(ref.Losses))
	}
	for i := range ref.Losses {
		if diff := math.Abs(run.Losses[i] - ref.Losses[i]); diff > lossTol*math.Max(1, math.Abs(ref.Losses[i])) {
			return fmt.Errorf("oracle %s: epoch %d loss %.9g, reference %.9g (diff %.3g > tol %.3g)",
				run.Label, i+1, run.Losses[i], ref.Losses[i], diff, lossTol)
		}
	}
	if len(run.Params) != len(ref.Params) {
		return fmt.Errorf("oracle %s: %d params, reference has %d", run.Label, len(run.Params), len(ref.Params))
	}
	for k := range ref.Params {
		a, b := ref.Params[k], run.Params[k]
		if !a.SameShape(b) {
			return fmt.Errorf("oracle %s: param %d shape %dx%d vs %dx%d",
				run.Label, k, b.Rows(), b.Cols(), a.Rows(), a.Cols())
		}
		scale := 1.0
		for _, v := range a.Data() {
			if m := math.Abs(float64(v)); m > scale {
				scale = m
			}
		}
		if diff := a.MaxAbsDiff(b); diff > paramTol*scale {
			return fmt.Errorf("oracle %s: param %d deviates by %.3g (> %.3g)",
				run.Label, k, diff, paramTol*scale)
		}
	}
	return nil
}
