package testkit

import (
	"fmt"
	"math"

	"neutronstar/internal/dataset"
	"neutronstar/internal/engine"
	"neutronstar/internal/nn"
	"neutronstar/internal/tensor"
)

// GradReport is the outcome of checking one tensor's gradient.
type GradReport struct {
	// Name identifies the checked tensor (parameter name, "features", or an
	// op label).
	Name string
	// RelErr is ‖analytic − numeric‖∞ / max(‖analytic‖∞, ‖numeric‖∞, floor)
	// over the checked elements.
	RelErr float64
	// Checked is the number of elements perturbed.
	Checked int
	// Kinks counts step-shrink retries that improved a suspicious element:
	// the original central difference straddled a non-differentiable point
	// (ReLU corner, max-aggregator argmax flip) and a smaller step resolved
	// the true one-sided slope.
	Kinks int
	// WorstIndex is the flat element index of the worst deviation, with
	// Analytic/Numeric its two gradient values.
	WorstIndex        int
	Analytic, Numeric float64
}

func (r GradReport) String() string {
	return fmt.Sprintf("%s: relerr=%.3g over %d elems, %d kinks skipped (worst @%d: analytic=%.6g numeric=%.6g)",
		r.Name, r.RelErr, r.Checked, r.Kinks, r.WorstIndex, r.Analytic, r.Numeric)
}

// CheckTensorGrad central-differences loss with respect to x and compares
// against the analytic gradient. x is perturbed in place and restored; loss
// must re-evaluate the forward pass from x's current contents on every call.
// maxElems > 0 checks an evenly strided subset (the fast tier-1 mode);
// maxElems <= 0 checks every element. eps scales the per-element step
// h = eps·max(1, |x_i|).
func CheckTensorGrad(name string, x, analytic *tensor.Tensor, loss func() float64,
	eps float64, maxElems int) GradReport {

	if !x.SameShape(analytic) {
		panic(fmt.Sprintf("testkit: analytic gradient %dx%d for tensor %dx%d",
			analytic.Rows(), analytic.Cols(), x.Rows(), x.Cols()))
	}
	n := x.Len()
	stride := 1
	if maxElems > 0 && n > maxElems {
		stride = (n + maxElems - 1) / maxElems
	}
	// The float32 forward pass computes the loss with O(ε32·|loss|) rounding
	// error; dividing by 2h turns that into derivative noise of roughly
	// ε32·|loss|/h. A gradient whose whole tensor sits below noise/tol cannot
	// be resolved to the harness tolerance at all, so the relative-error
	// normaliser is floored there. Rule-level backward bugs (dropped
	// accumulation, sign flips, wrong indices) still surface: they shift the
	// analytic side at full gradient scale, far above the floor.
	const eps32, tol = 1.2e-7, 1e-3
	f0 := loss()
	magFloor := eps32 * math.Max(1, math.Abs(f0)) / eps / tol
	data := x.Data()
	rep := GradReport{Name: name, WorstIndex: -1}
	var maxDiff, maxMag float64
	for i := 0; i < n; i += stride {
		old := data[i]
		h := float32(eps * math.Max(1, math.Abs(float64(old))))
		data[i] = old + h
		fp := loss()
		data[i] = old - h
		fm := loss()
		data[i] = old
		num := (fp - fm) / (2 * float64(h))
		ana := float64(analytic.Data()[i])
		diff := math.Abs(ana - num)
		// A failing element is either a real backward bug or a step interval
		// straddling a kink (ReLU corner, max-aggregator argmax flip), where
		// the central difference averages two branch slopes and matches
		// neither. Shrinking the step shrinks a straddle's error but leaves a
		// real bug's intact, so failures are retried at smaller steps before
		// they are believed.
		for k := 0; k < 2 && diff > tol*math.Max(math.Max(math.Abs(ana), math.Abs(num)), magFloor); k++ {
			h /= 2
			data[i] = old + h
			fp = loss()
			data[i] = old - h
			fm = loss()
			data[i] = old
			if n2 := (fp - fm) / (2 * float64(h)); math.Abs(ana-n2) < diff {
				num, diff = n2, math.Abs(ana-n2)
				rep.Kinks++
			}
		}
		if mag := math.Max(math.Abs(ana), math.Abs(num)); mag > maxMag {
			maxMag = mag
		}
		if diff > maxDiff {
			maxDiff = diff
			rep.WorstIndex = i
			rep.Analytic, rep.Numeric = ana, num
		}
		rep.Checked++
	}
	rep.RelErr = relErr(maxDiff, maxMag, magFloor)
	return rep
}

// CheckModelGrads gradient-checks one model kind end to end on ds: it runs
// engine.ReferenceBackward once for the analytic parameter and feature
// gradients, then perturbs every parameter tensor and every vertex feature
// (subset-strided when maxElems > 0) and compares. The returned reports
// cover each parameter plus one "features" entry.
func CheckModelGrads(ds *dataset.Dataset, kind nn.ModelKind, seed uint64,
	eps float64, maxElems int) []GradReport {

	dims := []int{ds.Spec.FeatureDim, ds.Spec.HiddenDim, ds.Spec.NumClasses}
	model := nn.MustNewModel(kind, dims, 0, seed)

	nn.ZeroGrads(model.Params())
	_, featGrad := engine.ReferenceBackward(ds.Graph, model, ds.Features, ds.Labels, ds.TrainMask)
	analytic := make([]*tensor.Tensor, 0, len(model.Params()))
	for _, p := range model.Params() {
		analytic = append(analytic, p.Grad.Clone())
	}

	// The numeric side: a forward-only pass from whatever the perturbed
	// tensors currently hold, reduced in float64.
	loss := func() float64 {
		logits := engine.ReferenceForward(ds.Graph, model, ds.Features)
		return maskedNLL(logits, ds.Labels, ds.TrainMask)
	}

	reports := make([]GradReport, 0, len(analytic)+1)
	for i, p := range model.Params() {
		name := fmt.Sprintf("%s/%s", kind, p.Name)
		reports = append(reports, CheckTensorGrad(name, p.Value, analytic[i], loss, eps, maxElems))
	}
	reports = append(reports,
		CheckTensorGrad(fmt.Sprintf("%s/features", kind), ds.Features, featGrad, loss, eps, maxElems))
	return reports
}
