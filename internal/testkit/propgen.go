package testkit

import (
	"math"

	"neutronstar/internal/dataset"
	"neutronstar/internal/graph"
	"neutronstar/internal/tensor"
)

// GenSpec bounds the random graphs the property-based generator draws.
// Every structural hazard the engines must survive is represented: skewed
// degree distributions (hubs concentrate dependency subtrees), disconnected
// components (partitions with no cross traffic), self-loops (src == dst
// edges that are always local), multi-edges (duplicate gather sources) and
// zero-degree vertices (rows that aggregate nothing and feed nothing).
type GenSpec struct {
	// MaxVertices caps |V| (default 40; at least 2 vertices are drawn).
	MaxVertices int
	// MaxAvgDegree caps the drawn average degree (default 4).
	MaxAvgDegree float64
	// SelfLoopProb is the per-edge probability of forcing dst = src
	// (default 0.08).
	SelfLoopProb float64
	// MaxComponents caps the number of disconnected id-range components
	// (default 3).
	MaxComponents int
	// FeatureDim/NumClasses/HiddenDim shape the synthesized dataset
	// (defaults 5/3/4).
	FeatureDim, NumClasses, HiddenDim int
}

func (s GenSpec) withDefaults() GenSpec {
	if s.MaxVertices < 2 {
		s.MaxVertices = 40
	}
	if s.MaxAvgDegree <= 0 {
		s.MaxAvgDegree = 4
	}
	if s.SelfLoopProb == 0 {
		s.SelfLoopProb = 0.08
	}
	if s.MaxComponents <= 0 {
		s.MaxComponents = 3
	}
	if s.FeatureDim <= 0 {
		s.FeatureDim = 5
	}
	if s.NumClasses <= 0 {
		s.NumClasses = 3
	}
	if s.HiddenDim <= 0 {
		s.HiddenDim = 4
	}
	return s
}

// RandomGraph draws one graph from spec using rng. Vertex ids are split into
// contiguous component ranges with no cross-component edges; within a
// component, sources follow a cubed-uniform rank (heavy skew: a few hubs
// feed most edges) and destinations are uniform. Duplicate draws yield
// multi-edges; vertices the edge sampler never touches remain zero-degree.
func RandomGraph(rng *tensor.RNG, spec GenSpec) *graph.Graph {
	spec = spec.withDefaults()
	n := 2 + rng.Intn(spec.MaxVertices-1)
	comps := 1 + rng.Intn(spec.MaxComponents)
	if comps > n {
		comps = n
	}
	// Component boundaries: comps contiguous, non-empty id ranges.
	bounds := make([]int, 0, comps+1)
	bounds = append(bounds, 0)
	for c := 1; c < comps; c++ {
		lo := bounds[c-1] + 1
		hi := n - (comps - c)
		bounds = append(bounds, lo+rng.Intn(hi-lo+1))
	}
	bounds = append(bounds, n)

	var edges []graph.Edge
	for c := 0; c < comps; c++ {
		lo, hi := bounds[c], bounds[c+1]
		m := hi - lo
		if m < 1 {
			continue
		}
		numEdges := int(float64(m) * spec.MaxAvgDegree * rng.Float64())
		for i := 0; i < numEdges; i++ {
			u := rng.Float64()
			src := lo + int(u*u*u*float64(m)) // rank-skewed: low ids are hubs
			if src >= hi {
				src = hi - 1
			}
			dst := lo + rng.Intn(m)
			if rng.Float64() < spec.SelfLoopProb {
				dst = src
			}
			edges = append(edges, graph.Edge{Src: int32(src), Dst: int32(dst)})
		}
	}
	return graph.MustFromEdges(n, edges)
}

// RandomDataset wraps a RandomGraph in a trainable dataset: seeded normal
// features, uniform labels, and a random train mask guaranteed non-empty
// (the remainder splits between val and test).
func RandomDataset(rng *tensor.RNG, spec GenSpec) *dataset.Dataset {
	spec = spec.withDefaults()
	g := RandomGraph(rng, spec)
	n := g.NumVertices()
	d := &dataset.Dataset{
		Spec: dataset.Spec{
			Name: "propgen", Vertices: n,
			AvgDegree:  float64(g.NumEdges()) / math.Max(1, float64(n)),
			FeatureDim: spec.FeatureDim, NumClasses: spec.NumClasses,
			HiddenDim: spec.HiddenDim,
		},
		Graph:    g,
		Features: tensor.RandNormal(n, spec.FeatureDim, 0, 1, rng),
		Labels:   make([]int32, n),
	}
	d.TrainMask = make([]bool, n)
	d.ValMask = make([]bool, n)
	d.TestMask = make([]bool, n)
	anyTrain := false
	for v := 0; v < n; v++ {
		d.Labels[v] = int32(rng.Intn(spec.NumClasses))
		switch rng.Intn(3) {
		case 0, 1:
			d.TrainMask[v] = true
			anyTrain = true
		case 2:
			d.ValMask[v] = true
		}
	}
	if !anyTrain {
		d.TrainMask[0] = true
	}
	return d
}
