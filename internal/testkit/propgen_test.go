package testkit

import (
	"testing"

	"neutronstar/internal/graph"
	"neutronstar/internal/tensor"
)

// TestRandomDatasetValidity checks the generator's contract over many seeds
// and confirms the hazard classes it exists to produce (self-loops,
// multi-edges, disconnected components, zero-degree vertices) all actually
// occur.
func TestRandomDatasetValidity(t *testing.T) {
	var selfLoops, multiEdges, disconnected, zeroDegree int
	for seed := uint64(0); seed < 100; seed++ {
		ds := RandomDataset(tensor.NewRNG(seed), GenSpec{})
		n := ds.Graph.NumVertices()
		if n < 2 {
			t.Fatalf("seed %d: %d vertices", seed, n)
		}
		if ds.Features.Rows() != n || len(ds.Labels) != n || len(ds.TrainMask) != n {
			t.Fatalf("seed %d: inconsistent sizes", seed)
		}
		anyTrain := false
		for v := 0; v < n; v++ {
			if int(ds.Labels[v]) >= ds.Spec.NumClasses {
				t.Fatalf("seed %d: label %d out of range", seed, ds.Labels[v])
			}
			anyTrain = anyTrain || ds.TrainMask[v]
			if ds.Graph.InDegree(int32(v))+ds.Graph.OutDegree(int32(v)) == 0 {
				zeroDegree++
			}
		}
		if !anyTrain {
			t.Fatalf("seed %d: empty train mask", seed)
		}
		seen := map[graph.Edge]bool{}
		for _, e := range ds.Graph.Edges() {
			if e.Src == e.Dst {
				selfLoops++
			}
			if seen[e] {
				multiEdges++
			}
			seen[e] = true
		}
		if components(ds.Graph) > 1 {
			disconnected++
		}
	}
	if selfLoops == 0 || multiEdges == 0 || disconnected == 0 || zeroDegree == 0 {
		t.Errorf("hazard classes missing: selfloops=%d multiedges=%d disconnected=%d zerodegree=%d",
			selfLoops, multiEdges, disconnected, zeroDegree)
	}
}

// components counts weakly connected components.
func components(g *graph.Graph) int {
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	for _, e := range g.Edges() {
		parent[find(e.Src)] = find(e.Dst)
	}
	comps := 0
	for i := range parent {
		if find(int32(i)) == int32(i) {
			comps++
		}
	}
	return comps
}

// TestEnginesMatchReferenceOnRandomGraphs hunts for structural corner cases
// the fixed-fixture tests might miss: every generated graph must train
// identically under all dependency-management policies. A violation is
// shrunk and printed as a minimal counterexample.
func TestEnginesMatchReferenceOnRandomGraphs(t *testing.T) {
	trials := 3
	if FullSweep() {
		trials = 15
	}
	ce := Check(trials, 0xABCD, GenSpec{MaxVertices: 14}, RunEquivalenceProperty(OracleOptions{
		Workers: 2, Epochs: 2, Seed: 5,
	}))
	if ce != nil {
		t.Fatalf("policy divergence on random graph:\n%s", ce)
	}
}
