package testkit

import (
	"fmt"
	"reflect"
	"testing"

	"neutronstar/internal/costmodel"
	"neutronstar/internal/dataset"
	"neutronstar/internal/hybrid"
	"neutronstar/internal/partition"
)

// planCost sums the exact modeled per-epoch cost of a plan across workers.
func planCost(p *hybrid.Planner, decs []*hybrid.Decision) float64 {
	var total float64
	for w := range decs {
		c, _ := p.EvaluateCost(w, decs[w])
		total += c
	}
	return total
}

// plannerCostRegimes spans the decision space: comm-dominant (everything
// should cache), balanced (genuinely mixed plans), and compute-dominant
// (everything should communicate or go tensor-parallel).
var plannerCostRegimes = []costmodel.Costs{
	{Tv: 1e-9, Te: 1e-10, Tc: 1e-6},
	oracleCosts,
	{Tv: 1e-7, Te: 1e-8, Tc: 1e-9},
}

// threeWayPlannerProperty checks, on one random dataset, that the 3-way plan
// is never worse on modeled cost than any pure policy or the 2-way greedy,
// and that planning twice yields a deeply equal plan (determinism). A
// violating dataset shrinks to a minimal counterexample like any other
// property.
func threeWayPlannerProperty(workers int, sliceTP bool) Property {
	return func(ds *dataset.Dataset) error {
		m := workers
		if n := ds.Graph.NumVertices(); m > n {
			m = n
		}
		part, err := partition.New(partition.Chunk, ds.Graph, m)
		if err != nil {
			return err
		}
		dims := []int{ds.Spec.FeatureDim, ds.Spec.HiddenDim, ds.Spec.NumClasses}
		for _, costs := range plannerCostRegimes {
			p := &hybrid.Planner{
				Graph: ds.Graph, Part: part, Dims: dims,
				Costs: costs, SliceTP: sliceTP,
			}
			plan, err := p.DecideAll(hybrid.ModeHybrid3)
			if err != nil {
				return err
			}
			got := planCost(p, plan)
			for _, pure := range []struct {
				name string
				mode hybrid.Mode
			}{
				{"allcomm", hybrid.ModeAllComm},
				{"allcache", hybrid.ModeAllCache},
				{"alltp", hybrid.ModeAllTP},
				{"greedy", hybrid.ModeHybrid},
			} {
				ref, err := p.DecideAll(pure.mode)
				if err != nil {
					return err
				}
				if c := planCost(p, ref); got > c*(1+1e-12) {
					return fmt.Errorf("costs %+v: 3-way plan modeled cost %.12g exceeds %s's %.12g",
						costs, got, pure.name, c)
				}
			}
			again, err := p.DecideAll(hybrid.ModeHybrid3)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(plan, again) {
				return fmt.Errorf("costs %+v: 3-way planning nondeterministic across runs", costs)
			}
		}
		return nil
	}
}

// TestThreeWayPlannerNeverWorseOnRandomGraphs hunts random graphs for a 3-way
// plan that loses to a pure policy under its own cost model — which would
// mean the candidate argmin is broken — in both TP dataflows.
func TestThreeWayPlannerNeverWorseOnRandomGraphs(t *testing.T) {
	trials := 5
	if FullSweep() {
		trials = 25
	}
	for _, sliceTP := range []bool{true, false} {
		if ce := Check(trials, 0x7F3, GenSpec{MaxVertices: 20}, threeWayPlannerProperty(3, sliceTP)); ce != nil {
			t.Fatalf("planner property violated (sliceTP=%v):\n%s", sliceTP, ce)
		}
	}
}

// fourWayPlannerProperty is threeWayPlannerProperty's extension to hybrid4:
// the 4-way plan is never worse on modeled cost than any pure policy
// (including full replication) or the 2-way greedy, and planning is
// deterministic.
func fourWayPlannerProperty(workers int, sliceTP bool) Property {
	return func(ds *dataset.Dataset) error {
		m := workers
		if n := ds.Graph.NumVertices(); m > n {
			m = n
		}
		part, err := partition.New(partition.Chunk, ds.Graph, m)
		if err != nil {
			return err
		}
		dims := []int{ds.Spec.FeatureDim, ds.Spec.HiddenDim, ds.Spec.NumClasses}
		for _, costs := range plannerCostRegimes {
			p := &hybrid.Planner{
				Graph: ds.Graph, Part: part, Dims: dims,
				Costs: costs, SliceTP: sliceTP, RepBudget: -1,
			}
			plan, err := p.DecideAll(hybrid.ModeHybrid4)
			if err != nil {
				return err
			}
			got := planCost(p, plan)
			for _, pure := range []struct {
				name string
				mode hybrid.Mode
			}{
				{"allcomm", hybrid.ModeAllComm},
				{"allcache", hybrid.ModeAllCache},
				{"alltp", hybrid.ModeAllTP},
				{"allrep", hybrid.ModeAllRep},
				{"greedy", hybrid.ModeHybrid},
			} {
				ref, err := p.DecideAll(pure.mode)
				if err != nil {
					return err
				}
				if c := planCost(p, ref); got > c*(1+1e-12) {
					return fmt.Errorf("costs %+v: 4-way plan modeled cost %.12g exceeds %s's %.12g",
						costs, got, pure.name, c)
				}
			}
			again, err := p.DecideAll(hybrid.ModeHybrid4)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(plan, again) {
				return fmt.Errorf("costs %+v: 4-way planning nondeterministic across runs", costs)
			}
		}
		return nil
	}
}

// TestFourWayPlannerNeverWorseOnRandomGraphs is the hybrid4 counterpart of the
// 3-way hunt, with the replicated suffix family enabled (unlimited RepBudget).
func TestFourWayPlannerNeverWorseOnRandomGraphs(t *testing.T) {
	trials := 5
	if FullSweep() {
		trials = 25
	}
	for _, sliceTP := range []bool{true, false} {
		if ce := Check(trials, 0x7F3, GenSpec{MaxVertices: 20}, fourWayPlannerProperty(3, sliceTP)); ce != nil {
			t.Fatalf("planner property violated (sliceTP=%v):\n%s", sliceTP, ce)
		}
	}
}

// TestFourWayDegeneratesToThreeWayWithoutRepBudget pins the documented
// contract: RepBudget = 0 removes the replicated suffix family entirely, so
// hybrid4 must produce a plan deeply equal to hybrid3's on any graph.
func TestFourWayDegeneratesToThreeWayWithoutRepBudget(t *testing.T) {
	trials := 5
	if FullSweep() {
		trials = 25
	}
	prop := func(ds *dataset.Dataset) error {
		m := 3
		if n := ds.Graph.NumVertices(); m > n {
			m = n
		}
		part, err := partition.New(partition.Chunk, ds.Graph, m)
		if err != nil {
			return err
		}
		dims := []int{ds.Spec.FeatureDim, ds.Spec.HiddenDim, ds.Spec.NumClasses}
		for _, costs := range plannerCostRegimes {
			p := &hybrid.Planner{
				Graph: ds.Graph, Part: part, Dims: dims,
				Costs: costs, SliceTP: true, RepBudget: 0,
			}
			p3, err := p.DecideAll(hybrid.ModeHybrid3)
			if err != nil {
				return err
			}
			p4, err := p.DecideAll(hybrid.ModeHybrid4)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(p3, p4) {
				return fmt.Errorf("costs %+v: hybrid4 with RepBudget=0 differs from hybrid3", costs)
			}
		}
		return nil
	}
	if ce := Check(trials, 0x7F3, GenSpec{MaxVertices: 20}, prop); ce != nil {
		t.Fatalf("degeneracy property violated:\n%s", ce)
	}
}

// TestFourWayPrefersRepWhenCommUnaffordable drives the planner into the
// regime the replicated family exists for: communication is priced
// prohibitively (huge Tc makes every per-epoch fetch and TP collective
// enormous), while a 1-byte MemBudget bars full-precision caching — only the
// replicated store (unlimited RepBudget, priced as a one-time broadcast, not
// per epoch) escapes the traffic. The chosen plan must replicate.
func TestFourWayPrefersRepWhenCommUnaffordable(t *testing.T) {
	ds := SmallDataset(32, 4, 11)
	part, err := partition.New(partition.Chunk, ds.Graph, 4)
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{ds.Spec.FeatureDim, ds.Spec.HiddenDim, ds.Spec.NumClasses}
	p := &hybrid.Planner{
		Graph: ds.Graph, Part: part, Dims: dims,
		Costs:     costmodel.Costs{Tv: 1e-12, Te: 1e-13, Tc: 1e6},
		SliceTP:   true,
		MemBudget: 1,
		RepBudget: -1,
	}
	plan, err := p.DecideAll(hybrid.ModeHybrid4)
	if err != nil {
		t.Fatal(err)
	}
	for w, d := range plan {
		if d.NumRep() == 0 {
			t.Fatalf("worker %d: expected a replicated suffix under Tc=1e6, got TP=%v Rep=%v", w, d.TP, d.Rep)
		}
		if d.EstCommCost != 0 {
			t.Fatalf("worker %d: replicated plan still models per-epoch comm cost %g", w, d.EstCommCost)
		}
	}
}

// TestFourWayTieOrdering pins the extended tie rule on a degenerate instance:
// with one worker every candidate's modeled cost is exactly zero, and the
// strict argmin must keep the first candidate — pure communication, so no
// caching, no TP and no replication survives the tie against comm.
func TestFourWayTieOrdering(t *testing.T) {
	ds := SmallDataset(16, 3, 5)
	part, err := partition.New(partition.Chunk, ds.Graph, 1)
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{ds.Spec.FeatureDim, ds.Spec.HiddenDim, ds.Spec.NumClasses}
	p := &hybrid.Planner{
		Graph: ds.Graph, Part: part, Dims: dims,
		Costs: oracleCosts, SliceTP: true, RepBudget: -1,
	}
	plan, err := p.DecideAll(hybrid.ModeHybrid4)
	if err != nil {
		t.Fatal(err)
	}
	for w, d := range plan {
		if d.NumTP() != 0 || d.NumRep() != 0 {
			t.Fatalf("worker %d: zero-cost tie chose TP=%v Rep=%v, want the comm candidate", w, d.TP, d.Rep)
		}
		for l, r := range d.R {
			if len(r) != 0 {
				t.Fatalf("worker %d layer %d: zero-cost tie cached %d deps, want the comm candidate", w, l+1, len(r))
			}
		}
	}
}
