package testkit

import (
	"fmt"
	"reflect"
	"testing"

	"neutronstar/internal/costmodel"
	"neutronstar/internal/dataset"
	"neutronstar/internal/hybrid"
	"neutronstar/internal/partition"
)

// planCost sums the exact modeled per-epoch cost of a plan across workers.
func planCost(p *hybrid.Planner, decs []*hybrid.Decision) float64 {
	var total float64
	for w := range decs {
		c, _ := p.EvaluateCost(w, decs[w])
		total += c
	}
	return total
}

// plannerCostRegimes spans the decision space: comm-dominant (everything
// should cache), balanced (genuinely mixed plans), and compute-dominant
// (everything should communicate or go tensor-parallel).
var plannerCostRegimes = []costmodel.Costs{
	{Tv: 1e-9, Te: 1e-10, Tc: 1e-6},
	oracleCosts,
	{Tv: 1e-7, Te: 1e-8, Tc: 1e-9},
}

// threeWayPlannerProperty checks, on one random dataset, that the 3-way plan
// is never worse on modeled cost than any pure policy or the 2-way greedy,
// and that planning twice yields a deeply equal plan (determinism). A
// violating dataset shrinks to a minimal counterexample like any other
// property.
func threeWayPlannerProperty(workers int, sliceTP bool) Property {
	return func(ds *dataset.Dataset) error {
		m := workers
		if n := ds.Graph.NumVertices(); m > n {
			m = n
		}
		part, err := partition.New(partition.Chunk, ds.Graph, m)
		if err != nil {
			return err
		}
		dims := []int{ds.Spec.FeatureDim, ds.Spec.HiddenDim, ds.Spec.NumClasses}
		for _, costs := range plannerCostRegimes {
			p := &hybrid.Planner{
				Graph: ds.Graph, Part: part, Dims: dims,
				Costs: costs, SliceTP: sliceTP,
			}
			plan, err := p.DecideAll(hybrid.ModeHybrid3)
			if err != nil {
				return err
			}
			got := planCost(p, plan)
			for _, pure := range []struct {
				name string
				mode hybrid.Mode
			}{
				{"allcomm", hybrid.ModeAllComm},
				{"allcache", hybrid.ModeAllCache},
				{"alltp", hybrid.ModeAllTP},
				{"greedy", hybrid.ModeHybrid},
			} {
				ref, err := p.DecideAll(pure.mode)
				if err != nil {
					return err
				}
				if c := planCost(p, ref); got > c*(1+1e-12) {
					return fmt.Errorf("costs %+v: 3-way plan modeled cost %.12g exceeds %s's %.12g",
						costs, got, pure.name, c)
				}
			}
			again, err := p.DecideAll(hybrid.ModeHybrid3)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(plan, again) {
				return fmt.Errorf("costs %+v: 3-way planning nondeterministic across runs", costs)
			}
		}
		return nil
	}
}

// TestThreeWayPlannerNeverWorseOnRandomGraphs hunts random graphs for a 3-way
// plan that loses to a pure policy under its own cost model — which would
// mean the candidate argmin is broken — in both TP dataflows.
func TestThreeWayPlannerNeverWorseOnRandomGraphs(t *testing.T) {
	trials := 5
	if FullSweep() {
		trials = 25
	}
	for _, sliceTP := range []bool{true, false} {
		if ce := Check(trials, 0x7F3, GenSpec{MaxVertices: 20}, threeWayPlannerProperty(3, sliceTP)); ce != nil {
			t.Fatalf("planner property violated (sliceTP=%v):\n%s", sliceTP, ce)
		}
	}
}
