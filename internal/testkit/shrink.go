package testkit

import (
	"fmt"
	"strings"

	"neutronstar/internal/dataset"
	"neutronstar/internal/graph"
	"neutronstar/internal/tensor"
)

// Property is a predicate over generated datasets: nil means it held, an
// error describes the violation. Check calls it on shrunk candidates too, so
// it must tolerate any structurally valid dataset (down to one vertex, zero
// edges).
type Property func(ds *dataset.Dataset) error

// Counterexample is the minimal failing dataset Check converged to.
type Counterexample struct {
	// Dataset is the shrunk failing input.
	Dataset *dataset.Dataset
	// Err is the property violation on Dataset.
	Err error
	// Trial is the index of the random draw that first failed.
	Trial int
	// Shrinks counts the accepted reduction steps from the original draw.
	Shrinks int
}

func (c *Counterexample) String() string {
	g := c.Dataset.Graph
	var b strings.Builder
	fmt.Fprintf(&b, "counterexample (trial %d, %d shrinks): %d vertices, %d edges\n",
		c.Trial, c.Shrinks, g.NumVertices(), g.NumEdges())
	b.WriteString("  edges:")
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, " %d->%d", e.Src, e.Dst)
	}
	b.WriteString("\n  train:")
	for v, m := range c.Dataset.TrainMask {
		if m {
			fmt.Fprintf(&b, " %d", v)
		}
	}
	fmt.Fprintf(&b, "\n  violation: %v", c.Err)
	return b.String()
}

// Check draws trials datasets from spec and evaluates prop on each. The first
// violation is shrunk to a (locally) minimal counterexample and returned; nil
// means the property held on every draw. Each trial reseeds deterministically
// from seed, so a failure reproduces without reference to earlier trials.
func Check(trials int, seed uint64, spec GenSpec, prop Property) *Counterexample {
	for trial := 0; trial < trials; trial++ {
		rng := tensor.NewRNG(seed + uint64(trial)*0x9E3779B97F4A7C15)
		ds := RandomDataset(rng, spec)
		if err := prop(ds); err != nil {
			min, minErr, shrinks := Shrink(ds, err, prop)
			return &Counterexample{Dataset: min, Err: minErr, Trial: trial, Shrinks: shrinks}
		}
	}
	return nil
}

// maxShrinkSteps bounds accepted reductions; a graph of a few dozen vertices
// reaches a fixpoint in far fewer.
const maxShrinkSteps = 400

// Shrink greedily minimises a failing dataset with delta-debugging-style
// chunk removal: it alternately deletes contiguous vertex ranges (reindexing
// the survivors and dropping incident edges) and contiguous edge ranges,
// halving the chunk size down to 1, restarting whenever a candidate still
// fails, until no single removal preserves the failure.
func Shrink(ds *dataset.Dataset, err error, prop Property) (*dataset.Dataset, error, int) {
	shrinks := 0
	for shrinks < maxShrinkSteps {
		if cand, candErr := shrinkStep(ds, prop); cand != nil {
			ds, err = cand, candErr
			shrinks++
			continue
		}
		break
	}
	return ds, err, shrinks
}

// shrinkStep returns the first strictly smaller failing candidate, or nil if
// no chunk removal preserves the failure.
func shrinkStep(ds *dataset.Dataset, prop Property) (*dataset.Dataset, error) {
	n := ds.Graph.NumVertices()
	for size := n / 2; size >= 1; size /= 2 {
		for start := 0; start+size <= n; start += size {
			if size == n { // must keep at least one vertex
				continue
			}
			cand := removeVertexRange(ds, start, size)
			if candErr := prop(cand); candErr != nil {
				return cand, candErr
			}
		}
	}
	ne := ds.Graph.NumEdges()
	for size := max(ne/2, 1); size >= 1; size /= 2 {
		for start := 0; start+size <= ne; start += size {
			cand := removeEdgeRange(ds, start, size)
			if candErr := prop(cand); candErr != nil {
				return cand, candErr
			}
		}
	}
	return nil, nil
}

// removeVertexRange deletes vertices [start, start+size), reindexes the
// survivors and drops every incident edge, slicing features/labels/masks to
// match.
func removeVertexRange(ds *dataset.Dataset, start, size int) *dataset.Dataset {
	n := ds.Graph.NumVertices()
	remap := make([]int32, n)
	kept := 0
	for v := 0; v < n; v++ {
		if v >= start && v < start+size {
			remap[v] = -1
			continue
		}
		remap[v] = int32(kept)
		kept++
	}
	var edges []graph.Edge
	for _, e := range ds.Graph.Edges() {
		s, d := remap[e.Src], remap[e.Dst]
		if s < 0 || d < 0 {
			continue
		}
		edges = append(edges, graph.Edge{Src: s, Dst: d})
	}
	out := &dataset.Dataset{
		Spec:     ds.Spec,
		Graph:    graph.MustFromEdges(kept, edges),
		Features: tensor.New(kept, ds.Spec.FeatureDim),
		Labels:   make([]int32, kept),
	}
	out.Spec.Vertices = kept
	out.TrainMask = make([]bool, kept)
	out.ValMask = make([]bool, kept)
	out.TestMask = make([]bool, kept)
	anyTrain := false
	for v := 0; v < n; v++ {
		w := remap[v]
		if w < 0 {
			continue
		}
		copy(out.Features.Row(int(w)), ds.Features.Row(v))
		out.Labels[w] = ds.Labels[v]
		out.TrainMask[w] = ds.TrainMask[v]
		out.ValMask[w] = ds.ValMask[v]
		out.TestMask[w] = ds.TestMask[v]
		anyTrain = anyTrain || ds.TrainMask[v]
	}
	if !anyTrain {
		out.TrainMask[0] = true
	}
	return out
}

// removeEdgeRange deletes edges [start, start+size) of the graph's canonical
// edge order, keeping the vertex set (and everything attached to it) intact.
func removeEdgeRange(ds *dataset.Dataset, start, size int) *dataset.Dataset {
	all := ds.Graph.Edges()
	edges := make([]graph.Edge, 0, len(all)-size)
	edges = append(edges, all[:start]...)
	edges = append(edges, all[start+size:]...)
	out := *ds
	out.Graph = graph.MustFromEdges(ds.Graph.NumVertices(), edges)
	return &out
}
