package testkit

import (
	"math"
	"testing"

	"neutronstar/internal/engine"
	"neutronstar/internal/nn"
	"neutronstar/internal/partition"
)

// TestDepRepQuantizedReplicaBound trains DepRep with quantized replica
// features against the exact DepRep run. Quantization perturbs only the
// replica copies of boundary features (owners keep full precision, and
// partition.RequantizeErrorBound bounds each element's storage error), so the
// end-to-end trajectory may drift but must stay within a loose bound that
// scales with the format's precision: ~1e-2 relative for fp16 (2⁻¹¹ storage
// error amplified through 3 epochs of training), ~5e-2 for int8 (absmax/254
// per element). These bounds are empirical for the pinned workload — they
// document the magnitude of the deviation the knob buys, not a universal
// guarantee. With quantization off, DepRep stays inside the 1e-5 oracle
// (TestCrossPolicyEquivalence); this test covers the lossy formats.
func TestDepRepQuantizedReplicaBound(t *testing.T) {
	ds := SmallDataset(32, 4, 11)
	const epochs = 3
	base := engine.Options{
		Model: nn.GCN, Seed: 3, Costs: oracleCosts,
		Workers: 4, Mode: engine.DepRep,
	}
	exact, err := trainEngine(ds, "deprep-exact", base, epochs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		quant    partition.RepQuant
		lossTol  float64
		paramTol float64
	}{
		{partition.RepQuantFP16, 1e-2, 1e-2},
		{partition.RepQuantInt8, 5e-2, 5e-2},
	} {
		opts := base
		opts.RepQuant = tc.quant
		run, err := trainEngine(ds, "deprep-"+string(tc.quant), opts, epochs)
		if err != nil {
			t.Fatal(err)
		}
		if err := compareRuns(*exact, *run, tc.lossTol, tc.paramTol); err != nil {
			t.Fatalf("%s exceeded its documented bound: %v", tc.quant, err)
		}
		// The run must also be deterministic: quantization is a pure function
		// of the stored features, so repeating it reproduces the trajectory
		// bit for bit.
		again, err := trainEngine(ds, "deprep-"+string(tc.quant)+"-again", opts, epochs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range run.Losses {
			if run.Losses[i] != again.Losses[i] {
				t.Fatalf("%s: nondeterministic loss at epoch %d: %g vs %g",
					tc.quant, i+1, run.Losses[i], again.Losses[i])
			}
		}
	}
	// int8 is lossy enough that the hook's effect must be visible — a
	// bit-identical trajectory would mean replica quantization never ran.
	opts := base
	opts.RepQuant = partition.RepQuantInt8
	run, err := trainEngine(ds, "deprep-int8-probe", opts, epochs)
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff float64
	for i := range run.Losses {
		if d := math.Abs(run.Losses[i] - exact.Losses[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff == 0 {
		t.Fatal("int8 replica quantization left the trajectory bit-identical; the requantization hook did not run")
	}
}
