package testkit

import (
	"testing"

	"neutronstar/internal/comm"
	"neutronstar/internal/nn"
)

func requireEquivalence(t *testing.T, opt OracleOptions) {
	t.Helper()
	ds := SmallDataset(32, 4, 11)
	runs, err := RunEquivalence(ds, opt)
	if err != nil {
		t.Fatalf("cross-policy divergence: %v", err)
	}
	for _, r := range runs {
		t.Logf("%-20s losses=%v", r.Label, r.Losses)
	}
}

// TestCrossPolicyEquivalence is the tier-1 oracle run: reference vs 1-worker
// vs 4-worker DepCache vs DepComm vs hybrid on GCN.
func TestCrossPolicyEquivalence(t *testing.T) {
	requireEquivalence(t, OracleOptions{Seed: 3})
}

// TestCrossPolicyEquivalenceUnderFaults adds drop/dup/delay injection on the
// fabric. Faults perturb timing and retries, never payload content, so the
// fault-injected run must match the reference exactly as tightly.
func TestCrossPolicyEquivalenceUnderFaults(t *testing.T) {
	fault, err := comm.ParseFaultSpec("drop=0.05,delay=100us,jitter=500us,dup=0.02,seed=9,timeout=500us")
	if err != nil {
		t.Fatal(err)
	}
	requireEquivalence(t, OracleOptions{Seed: 3, Fault: fault})
}

// TestCrossPolicyEquivalenceResume kills a checkpointing run halfway and
// resumes a fresh engine from the latest snapshot; the stitched trajectory
// must match the uninterrupted reference.
func TestCrossPolicyEquivalenceResume(t *testing.T) {
	requireEquivalence(t, OracleOptions{Seed: 3, Epochs: 4, CkptDir: t.TempDir()})
}

// TestCrossPolicyEquivalenceSweep is the full matrix: every model kind,
// several worker counts, faults and resume together.
func TestCrossPolicyEquivalenceSweep(t *testing.T) {
	SkipUnlessFull(t)
	fault, err := comm.ParseFaultSpec("drop=0.05,delay=100us,jitter=500us,dup=0.02,seed=9,timeout=500us")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range nn.ModelKinds() {
		for _, workers := range []int{2, 4, 5} {
			opt := OracleOptions{
				Model: kind, Workers: workers, Epochs: 4, Seed: 3,
				Fault: fault, CkptDir: t.TempDir(),
			}
			if kind == nn.GAT {
				// GAT's attention vectors can have gradients at float32 noise
				// level; Adam's normalised update (lr·m/√v) then amplifies a
				// reassociation-order difference between policies to O(lr) on
				// those parameters even though every per-epoch loss agrees to
				// 1e-5. Widen only the parameter tolerance (the loss bar stays
				// strict) — see the tolerance policy in DESIGN.md §11.
				opt.ParamTol = 1e-2
			}
			t.Run(string(kind)+"/"+string(rune('0'+workers))+"w", func(t *testing.T) {
				requireEquivalence(t, opt)
			})
		}
	}
}
