package testkit

import (
	"fmt"
	"testing"

	"neutronstar/internal/dataset"
	"neutronstar/internal/tensor"
)

// TestBrokenBackwardCaughtAndShrunk is the harness's self-test: a deliberately
// broken Gather backward (assignment instead of accumulation, the classic
// scatter-dual mistake — it silently drops all but one contribution when a
// vertex sources several edges) must be caught by the gradient checker on
// generated graphs, and the shrinker must reduce the failure to the minimal
// witness: two edges sharing a source.
func TestBrokenBackwardCaughtAndShrunk(t *testing.T) {
	prop := func(ds *dataset.Dataset) error {
		src := ds.Graph.InSources()
		if len(src) == 0 {
			return nil
		}
		dim := ds.Features.Cols()
		w := tensor.RandNormal(len(src), dim, 0, 1, tensor.NewRNG(0xBAD))
		// Forward: the gathered edge rows contracted against fixed weights —
		// linear in the features, so central differences are exact.
		loss := func() float64 {
			var s float64
			for i, u := range src {
				row, wr := ds.Features.Row(int(u)), w.Row(i)
				for j := range row {
					s += float64(row[j]) * float64(wr[j])
				}
			}
			return s
		}
		// The mutant backward: overwrite instead of accumulate.
		buggy := tensor.New(ds.Graph.NumVertices(), dim)
		for i, u := range src {
			copy(buggy.Row(int(u)), w.Row(i))
		}
		if rep := CheckTensorGrad("buggy_gather", ds.Features, buggy, loss, 1e-3, 0); rep.RelErr >= gradTol {
			return fmt.Errorf("gradient mismatch: %s", rep)
		}
		return nil
	}

	ce := Check(50, 0xFEED, GenSpec{MaxVertices: 12}, prop)
	if ce == nil {
		t.Fatal("broken Gather backward was not caught on 50 generated graphs")
	}
	t.Logf("minimal failing graph:\n%s", ce)
	g := ce.Dataset.Graph
	if g.NumEdges() != 2 || g.NumVertices() > 3 {
		t.Errorf("counterexample not minimal: %d vertices, %d edges (want 2 edges sharing a source on <=3 vertices)",
			g.NumVertices(), g.NumEdges())
	}
	srcs := map[int32]int{}
	for _, e := range g.Edges() {
		srcs[e.Src]++
	}
	if len(srcs) != 1 {
		t.Errorf("counterexample edges do not share a source: %v", g.Edges())
	}
}
