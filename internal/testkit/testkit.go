// Package testkit is the differential correctness harness for the
// NeutronStar reproduction. The system's core claim — hybrid dependency
// management changes *where* work happens, never *what* is computed — is not
// something tier-1 unit tests can defend on their own: a regression in a
// backward dual (ScatterBackToEdge / GatherBySrc) or in master–mirror
// synchronisation can leave every structural test green while silently
// corrupting training. testkit closes that gap with three pillars:
//
//   - a finite-difference gradient checker (gradcheck.go, opcheck.go) that
//     perturbs every parameter tensor and every vertex feature and compares
//     the numeric derivative against the autograd tape, both per decoupled
//     op and per whole model;
//   - a cross-policy equivalence oracle (oracle.go) that trains the same
//     seeded dataset through the single-machine reference, a 1-worker
//     engine, N-worker pure-DepCache, N-worker pure-DepComm and the
//     cost-model hybrid, asserting per-epoch losses and final parameters
//     agree — including under fault injection and kill-and-resume;
//   - property-based graph generators with iterative shrinking (propgen.go,
//     shrink.go) that hunt for structural corner cases (skewed degrees,
//     disconnected components, self-loops, multi-edges, zero-degree
//     vertices) and reduce any violation to a minimal counterexample graph.
//
// A fast subset of the harness runs inside tier-1 `go test ./...`; the
// exhaustive sweep is enabled by setting NS_TESTKIT_FULL=1 (the CI
// `correctness` job does) and widens every check: more trials, more model
// kinds, more worker counts, exhaustive element perturbation.
package testkit

import (
	"math"
	"os"
	"testing"

	"neutronstar/internal/dataset"
	"neutronstar/internal/tensor"
)

// fullSweepEnv is the environment switch the CI correctness job sets.
const fullSweepEnv = "NS_TESTKIT_FULL"

// FullSweep reports whether the exhaustive correctness sweep is enabled.
func FullSweep() bool { return os.Getenv(fullSweepEnv) != "" }

// SkipUnlessFull skips t unless the full sweep is enabled. Tests kept out of
// tier-1 for time (not for flakiness) use this gate.
func SkipUnlessFull(t testing.TB) {
	t.Helper()
	if !FullSweep() {
		t.Skipf("full-sweep test; set %s=1 to run", fullSweepEnv)
	}
}

// SmallDataset generates a deterministic SBM dataset sized for differential
// tests: big enough to have remote dependencies under every partitioner,
// small enough that finite differences stay cheap.
func SmallDataset(n int, deg float64, seed uint64) *dataset.Dataset {
	return dataset.Load(dataset.Spec{
		Name: "testkit", Vertices: n, AvgDegree: deg, FeatureDim: 6,
		NumClasses: 3, HiddenDim: 5, Gen: dataset.GenSBM, Homophily: 0.85,
		Seed: seed,
	})
}

// maskedNLL computes the mean negative log-likelihood of logits over the
// masked rows in float64, mirroring Tape.NLLLossMasked's semantics but with
// a float64 reduction — the numeric side of the gradient checker wants the
// least rounding noise the float32 forward pass allows.
func maskedNLL(logits *tensor.Tensor, labels []int32, mask []bool) float64 {
	logp := tensor.LogSoftmaxRows(logits)
	n := 0
	var loss float64
	for i := 0; i < logp.Rows(); i++ {
		if !mask[i] {
			continue
		}
		n++
		loss -= float64(logp.At(i, int(labels[i])))
	}
	if n == 0 {
		return 0
	}
	return loss / float64(n)
}

// relErr is the harness-wide tolerance metric: the worst absolute deviation
// normalised by the largest gradient magnitude seen, floored at magFloor.
// Normalising by the infinity norm rather than per-element keeps elements
// whose true gradient is ~0 — where central differences are pure rounding
// noise — from dominating the verdict, while still catching any backward
// rule that is wrong at the scale of the real gradients. magFloor is the
// caller's estimate of the smallest gradient magnitude the float32 forward
// pass can resolve to the harness tolerance (see DESIGN.md §11); tensors
// whose entire gradient sits below it compare against the floor instead.
func relErr(maxAbsDiff, maxMag, magFloor float64) float64 {
	return maxAbsDiff / math.Max(maxMag, math.Max(magFloor, 1e-3))
}
