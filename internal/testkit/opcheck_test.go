package testkit

import "testing"

// gradTol is the acceptance bar: every analytic gradient must land within
// 1e-3 relative error of the central difference.
const gradTol = 1e-3

func TestDecoupledOpGradients(t *testing.T) {
	for _, r := range CheckDecoupledOps(42, 2e-3) {
		if r.RelErr >= gradTol {
			t.Errorf("FAIL %s", r)
		} else {
			t.Logf("ok   %s", r)
		}
	}
}

// TestDecoupledOpGradientsSeeds re-runs the per-op checks under more seeds so
// argmax routing (ScatterMaxRows) and softmax saturation see different
// configurations. Full sweep only: the single-seed run above already covers
// every dual.
func TestDecoupledOpGradientsSeeds(t *testing.T) {
	SkipUnlessFull(t)
	for seed := uint64(100); seed < 110; seed++ {
		for _, r := range CheckDecoupledOps(seed, 2e-3) {
			if r.RelErr >= gradTol {
				t.Errorf("seed %d: FAIL %s", seed, r)
			}
		}
	}
}
