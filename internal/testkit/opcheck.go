package testkit

import (
	"fmt"

	"neutronstar/internal/autograd"
	"neutronstar/internal/graph"
	"neutronstar/internal/tensor"
)

// Closure builds one differentiable computation on a fresh tape from the
// leaf variables (one per input tensor, same order) and returns its output.
// CheckClosure calls it repeatedly — once for the analytic pass, twice per
// perturbed element — so it must be deterministic and must read its inputs
// only through the supplied variables.
type Closure func(t *autograd.Tape, xs []*autograd.Variable) *autograd.Variable

// CheckClosure gradient-checks an arbitrary op composition: the closure's
// output is reduced to a scalar by a fixed random weighting (so every output
// element's gradient path is exercised), the analytic gradients come from
// one tape.Backward with that weighting as seed, and each input tensor is
// finite-differenced. Returns one report per input.
func CheckClosure(name string, inputs []*tensor.Tensor, build Closure,
	seed uint64, eps float64, maxElems int) []GradReport {

	// Analytic pass.
	tape := autograd.NewTape()
	vars := make([]*autograd.Variable, len(inputs))
	for i, x := range inputs {
		vars[i] = tape.Leaf(x, true, "in")
	}
	out := build(tape, vars)
	weights := tensor.RandNormal(out.Value.Rows(), out.Value.Cols(), 0, 1, tensor.NewRNG(seed^0x5EED))
	tape.Backward(out, weights)

	// Numeric side: rebuild on a throwaway tape and reduce in float64.
	lossFor := func() float64 {
		t2 := autograd.NewTape()
		xs := make([]*autograd.Variable, len(inputs))
		for i, x := range inputs {
			xs[i] = t2.Constant(x, "in")
		}
		o := build(t2, xs)
		var s float64
		od, wd := o.Value.Data(), weights.Data()
		for i := range od {
			s += float64(od[i]) * float64(wd[i])
		}
		return s
	}

	reports := make([]GradReport, 0, len(inputs))
	for i, x := range inputs {
		g := vars[i].Grad
		if g == nil {
			g = tensor.New(x.Rows(), x.Cols())
		}
		label := name
		if len(inputs) > 1 {
			label = fmt.Sprintf("%s/in%d", name, i)
		}
		reports = append(reports, CheckTensorGrad(label, x, g, lossFor, eps, maxElems))
	}
	return reports
}

// opGraph is the fixture every per-op check runs on: small but structurally
// adversarial — a hub with many in-edges (duplicate gather sources), a
// self-loop, a multi-edge, a zero-in-degree vertex and a zero-out-degree
// vertex. CSC arrays are derived exactly as the engines derive them.
func opGraph() (g *graph.Graph, srcIdx, dstIdx, offsets []int32) {
	g = graph.MustFromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, // hub fan-out
		{Src: 2, Dst: 1}, {Src: 3, Dst: 1}, {Src: 4, Dst: 1}, // hub fan-in
		{Src: 2, Dst: 2},                   // self-loop
		{Src: 4, Dst: 3}, {Src: 4, Dst: 3}, // multi-edge
		// vertex 5: no in-edges, no out-edges
	})
	n := g.NumVertices()
	offsets = make([]int32, n+1)
	for v := 0; v < n; v++ {
		for _, u := range g.InNeighbors(int32(v)) {
			srcIdx = append(srcIdx, u)
			dstIdx = append(dstIdx, int32(v))
		}
		offsets[v+1] = int32(len(srcIdx))
	}
	return g, srcIdx, dstIdx, offsets
}

// CheckDecoupledOps gradient-checks each decoupled graph operation of the
// paper's programming model (§4.1) in isolation, on the adversarial fixture
// graph: ScatterToEdge (Gather), GatherByDst with the sum and max
// aggregators (ScatterAddRows / ScatterMaxRows), the EdgeForward primitives
// (per-edge normalisation, attention softmax, attention-weighted messages)
// and the VertexForward primitives (dense transform, bias, activations).
// Every backward dual the engines rely on is exercised through at least one
// entry.
func CheckDecoupledOps(seed uint64, eps float64) []GradReport {
	g, srcIdx, dstIdx, offsets := opGraph()
	n := g.NumVertices()
	e := len(srcIdx)
	const dim = 4
	rng := tensor.NewRNG(seed)
	h := tensor.RandNormal(n, dim, 0, 1, rng)        // vertex rows
	edgeRows := tensor.RandNormal(e, dim, 0, 1, rng) // per-edge rows
	scores := tensor.RandNormal(e, 1, 0, 1, rng)     // per-edge scores
	w := tensor.RandNormal(dim, dim, 0, 0.7, rng)    // dense weight
	bias := tensor.RandNormal(1, dim, 0, 0.5, rng)   // bias row
	attn := tensor.RandNormal(1, dim, 0, 0.7, rng)   // attention vector
	norm, _ := graph.GCNNormCoefficients(g)

	var out []GradReport
	add := func(name string, inputs []*tensor.Tensor, build Closure) {
		out = append(out, CheckClosure(name, inputs, build, seed, eps, 0)...)
	}

	// GetFromDepNbr + ScatterToEdge: gather vertex rows onto edges; the
	// backward dual scatter-adds duplicate sources.
	add("scatter_to_edge(gather)", []*tensor.Tensor{h},
		func(t *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return t.Gather(xs[0], srcIdx)
		})
	// GatherByDst, sum aggregator; backward gathers by destination.
	add("gather_by_dst(sum)", []*tensor.Tensor{edgeRows},
		func(t *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return t.ScatterAddRows(xs[0], dstIdx, n)
		})
	// GatherByDst, max aggregator; backward routes through the argmax.
	add("gather_by_dst(max)", []*tensor.Tensor{edgeRows},
		func(t *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return t.ScatterMaxRows(xs[0], dstIdx, n)
		})
	// EdgeForward, GCN flavor: per-edge normalisation coefficients.
	add("edge_forward(norm)", []*tensor.Tensor{edgeRows},
		func(t *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return t.MulColVec(xs[0], norm)
		})
	// EdgeForward, GAT flavor: score -> per-destination softmax -> weighted
	// messages (SegmentSoftmax's Jacobian is the hardest dual in the op set).
	add("edge_forward(attention)", []*tensor.Tensor{edgeRows, scores},
		func(t *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			alpha := t.SegmentSoftmax(xs[1], offsets)
			return t.ScatterAddRows(t.BroadcastColMul(xs[0], alpha), dstIdx, n)
		})
	// GAT score construction: per-row dot with the attention vector plus
	// LeakyReLU, including the gather of destination scores onto edges.
	add("edge_forward(score)", []*tensor.Tensor{h, attn},
		func(t *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			src := t.RowDot(t.Gather(xs[0], srcIdx), xs[1])
			dst := t.Gather(t.RowDot(xs[0], xs[1]), dstIdx)
			return t.LeakyReLU(t.Add(src, dst), 0.2)
		})
	// VertexForward: dense transform + bias + ReLU over aggregated rows.
	add("vertex_forward(dense)", []*tensor.Tensor{h, w, bias},
		func(t *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			return t.ReLU(t.AddBias(t.MatMul(xs[0], xs[1]), xs[2]))
		})
	// The full decoupled pipeline of one GCN layer, chained end to end:
	// gather -> edge norm -> scatter-add -> dense. Catches sign/ordering
	// bugs that only appear when duals compose.
	add("pipeline(gcn_layer)", []*tensor.Tensor{h, w, bias},
		func(t *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			msgs := t.MulColVec(t.Gather(xs[0], srcIdx), norm)
			agg := t.ScatterAddRows(msgs, dstIdx, n)
			return t.AddBias(t.MatMul(agg, xs[1]), xs[2])
		})
	return out
}
