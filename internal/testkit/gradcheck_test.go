package testkit

import (
	"math"
	"testing"

	"neutronstar/internal/engine"
	"neutronstar/internal/nn"
	"neutronstar/internal/tensor"
)

// TestModelGradientsFast perturbs a strided subset of every parameter tensor
// and the vertex features for two architectures — enough to catch a broken
// dual in tier-1 without paying for exhaustive perturbation.
func TestModelGradientsFast(t *testing.T) {
	ds := SmallDataset(24, 3, 7)
	for _, kind := range []nn.ModelKind{nn.GCN, nn.GAT} {
		for _, r := range CheckModelGrads(ds, kind, 11, 2e-3, 8) {
			if r.RelErr >= gradTol {
				t.Errorf("FAIL %s", r)
			} else {
				t.Logf("ok   %s", r)
			}
		}
	}
}

// tpTestExchange is a deliberately irregular DepTP geometry: 4 workers with
// an empty owner block (worker 1) and a zero-width column slice (also worker
// 1), plus uneven blocks and slices everywhere else.
func tpTestExchange() engine.TPSliceExchange {
	return engine.TPSliceExchange{
		BlockStart: []int{0, 3, 3, 8, 10},
		ColStart:   []int{0, 2, 2, 5, 7},
	}
}

func randTensor(rng *tensor.RNG, rows, cols int) *tensor.Tensor {
	t := tensor.New(rows, cols)
	d := t.Data()
	for i := range d {
		d[i] = float32(rng.NormFloat64())
	}
	return t
}

// TestTPSliceExchangeAdjoint finite-difference-checks the DepTP collectives:
// a linear loss through ReGather must have exactly ReScatter as its gradient,
// for every worker's slice — which is the identity that makes the TP backward
// pass compute single-machine gradients.
func TestTPSliceExchangeAdjoint(t *testing.T) {
	rng := tensor.NewRNG(41)
	x := tpTestExchange()
	m := x.NumWorkers()
	totalRows := x.BlockStart[m]
	d := x.ColStart[m]

	slices := make([]*tensor.Tensor, m)
	for j := 0; j < m; j++ {
		slices[j] = randTensor(rng, totalRows, x.ColStart[j+1]-x.ColStart[j])
	}
	// Fixed random cotangents: loss = Σ_w ⟨B_w, ReGather(slices, w)⟩.
	cot := make([]*tensor.Tensor, m)
	for w := 0; w < m; w++ {
		cot[w] = randTensor(rng, x.BlockStart[w+1]-x.BlockStart[w], d)
	}
	loss := func() float64 {
		var s float64
		for w := 0; w < m; w++ {
			g := x.ReGather(slices, w)
			gd, cd := g.Data(), cot[w].Data()
			for i := range gd {
				s += float64(gd[i]) * float64(cd[i])
			}
		}
		return s
	}
	// Analytic gradient of every slice: the scatters of all cotangents.
	grads := make([]*tensor.Tensor, m)
	for j := 0; j < m; j++ {
		grads[j] = tensor.New(totalRows, x.ColStart[j+1]-x.ColStart[j])
	}
	for w := 0; w < m; w++ {
		x.ReScatter(cot[w], w, grads)
	}
	for j := 0; j < m; j++ {
		if slices[j].Len() == 0 {
			continue // zero-width slice: nothing to perturb
		}
		r := CheckTensorGrad("tp_slice", slices[j], grads[j], loss, 1e-3, 0)
		if r.RelErr >= gradTol {
			t.Errorf("FAIL worker %d %s", j, r)
		} else {
			t.Logf("ok   worker %d %s", j, r)
		}
	}

	// Dot-product adjoint identity on independent data:
	// Σ_w ⟨ReGather(A, w), B_w⟩ == Σ_j ⟨A_j, ReScatter(B)_j⟩.
	var lhs, rhs float64
	for w := 0; w < m; w++ {
		g := x.ReGather(slices, w)
		gd, cd := g.Data(), cot[w].Data()
		for i := range gd {
			lhs += float64(gd[i]) * float64(cd[i])
		}
	}
	for j := 0; j < m; j++ {
		ad, gd := slices[j].Data(), grads[j].Data()
		for i := range ad {
			rhs += float64(ad[i]) * float64(gd[i])
		}
	}
	if diff := math.Abs(lhs - rhs); diff > 1e-4*math.Max(1, math.Abs(lhs)) {
		t.Errorf("adjoint identity violated: ⟨Gx,y⟩=%.9g vs ⟨x,Sy⟩=%.9g", lhs, rhs)
	}
}

// TestModelGradientsFull checks every element of every parameter and every
// feature for all four model kinds.
func TestModelGradientsFull(t *testing.T) {
	SkipUnlessFull(t)
	ds := SmallDataset(24, 3, 7)
	for _, kind := range nn.ModelKinds() {
		for _, r := range CheckModelGrads(ds, kind, 11, 2e-3, 0) {
			if r.RelErr >= gradTol {
				t.Errorf("FAIL %s", r)
			} else {
				t.Logf("ok   %s", r)
			}
		}
	}
}
