package testkit

import (
	"testing"

	"neutronstar/internal/nn"
)

// TestModelGradientsFast perturbs a strided subset of every parameter tensor
// and the vertex features for two architectures — enough to catch a broken
// dual in tier-1 without paying for exhaustive perturbation.
func TestModelGradientsFast(t *testing.T) {
	ds := SmallDataset(24, 3, 7)
	for _, kind := range []nn.ModelKind{nn.GCN, nn.GAT} {
		for _, r := range CheckModelGrads(ds, kind, 11, 2e-3, 8) {
			if r.RelErr >= gradTol {
				t.Errorf("FAIL %s", r)
			} else {
				t.Logf("ok   %s", r)
			}
		}
	}
}

// TestModelGradientsFull checks every element of every parameter and every
// feature for all four model kinds.
func TestModelGradientsFull(t *testing.T) {
	SkipUnlessFull(t)
	ds := SmallDataset(24, 3, 7)
	for _, kind := range nn.ModelKinds() {
		for _, r := range CheckModelGrads(ds, kind, 11, 2e-3, 0) {
			if r.RelErr >= gradTol {
				t.Errorf("FAIL %s", r)
			} else {
				t.Logf("ok   %s", r)
			}
		}
	}
}
