package comm

import (
	"strconv"
	"time"

	"neutronstar/internal/obs"
)

// Process-wide traffic metrics, registered on the default registry so every
// fabric in the process feeds the same /metrics endpoint. Registration is
// idempotent, so building multiple engines is safe.
var (
	obsSentBytes = obs.Default().CounterVec("ns_comm_sent_bytes_total",
		"Wire bytes sent, by destination worker.", "to")
	obsRecvBytes = obs.Default().CounterVec("ns_comm_recv_bytes_total",
		"Wire bytes received, by receiving worker.", "worker")
	obsSentMsgs = obs.Default().CounterVec("ns_comm_sent_messages_total",
		"Messages sent, by protocol kind.", "kind")
	obsMsgBytes = obs.Default().Histogram("ns_comm_message_bytes",
		"Wire size of sent messages.", obs.SizeBuckets)
	obsSendLatency = obs.Default().Histogram("ns_comm_send_latency_seconds",
		"Time from Send to mailbox delivery (in-process) or socket write (TCP).",
		obs.TimeBuckets)
)

// Fault-injection metrics (FaultyFabric). All zero unless a fault spec is
// active.
var (
	obsFaultDropped = obs.Default().CounterVec("ns_comm_fault_dropped_total",
		"Transmission attempts lost by fault injection, by protocol kind.", "kind")
	obsFaultDuplicated = obs.Default().CounterVec("ns_comm_fault_duplicated_total",
		"Messages duplicated by fault injection, by protocol kind.", "kind")
	obsFaultRetransmits = obs.Default().Counter("ns_comm_fault_retransmissions_total",
		"Retransmissions after a lost attempt's retry timeout.")
	obsFaultExhausted = obs.Default().Counter("ns_comm_fault_retry_exhausted_total",
		"Messages whose retry budget ran out (delivered anyway to preserve liveness).")
	obsFaultDelaySeconds = obs.Default().Histogram("ns_comm_fault_delay_seconds",
		"Injected per-message delay (fixed + jitter).", obs.TimeBuckets)
	obsDedupDropped = obs.Default().Counter("ns_comm_fault_dedup_dropped_total",
		"Duplicate deliveries absorbed by mailbox dedup.")
)

// recordSend stamps the message and updates the send-side counters; both
// fabrics call it for every non-self send.
func recordSend(msg *Message) {
	msg.sentAt = time.Now()
	n := float64(msg.WireBytes())
	obsSentBytes.With(strconv.Itoa(msg.To)).Add(n)
	obsSentMsgs.With(msg.Kind.String()).Inc()
	obsMsgBytes.Observe(n)
}

// recordDelivered observes the send-to-delivery latency and the
// receive-side byte counter for worker w.
func recordDelivered(w int, msg *Message) {
	if !msg.sentAt.IsZero() {
		obsSendLatency.Observe(time.Since(msg.sentAt).Seconds())
	}
	obsRecvBytes.With(strconv.Itoa(w)).Add(float64(msg.WireBytes()))
}
