// Package comm is NeutronStar-Go's message fabric: typed tensor-chunk
// messages between workers, a simulated network with per-node egress and
// ingress capacity (so ring scheduling and overlap have something real to
// optimise against), the ring-based chunk schedule of §4.3, and the
// lock-free parallel message enqueue buffer of §4.3.
//
// Workers live in one process, so "communication" is the movement of a
// message through the sender's egress pacer, the wire latency, and the
// receiver's ingress pacer — each modeled as serialised delays derived from
// a NetworkProfile. With an unthrottled profile the fabric degenerates to
// plain channel passing.
package comm

import (
	"fmt"
	"sync"
	"time"

	"neutronstar/internal/metrics"
	"neutronstar/internal/tensor"
)

// MsgKind tags the role of a message in the training protocol.
type MsgKind uint8

const (
	// KindRep carries forward representations (GetFromDepNbr traffic).
	KindRep MsgKind = iota
	// KindGrad carries backward gradients (PostToDepNbr traffic).
	KindGrad
	// KindAllReduce carries parameter gradient blocks.
	KindAllReduce
	// KindSample carries sampled sub-structures (DistDGL baseline).
	KindSample
	// KindBlock carries a whole-partition block (ROC baseline).
	KindBlock
	// KindSlice carries tensor-parallel slice-exchange blocks (DepTP
	// traffic): feature-dimension shards and owner-block row ranges moved by
	// the re-gather/re-scatter collectives. Seq distinguishes the collective
	// phase within a layer (see StageOfMsg).
	KindSlice
)

// String returns the kind's protocol name (used as a metric label).
func (k MsgKind) String() string {
	switch k {
	case KindRep:
		return "rep"
	case KindGrad:
		return "grad"
	case KindAllReduce:
		return "allreduce"
	case KindSample:
		return "sample"
	case KindBlock:
		return "block"
	case KindSlice:
		return "slice"
	default:
		return "unknown"
	}
}

// TraceContext is the causal identity a message carries across the fabric:
// which epoch-level trace it belongs to, which send event it is, which
// sender-side span caused it, and when the logical send happened. It is
// stamped once per logical Send (outside any fault-injection wrapper), rides
// the v2 wire codec, and survives retransmission and duplication unchanged —
// a redelivered copy is causally the same message, which is exactly what
// keeps mailbox dedup and critical-path attribution consistent. The zero
// value means "untraced" and is always legal.
type TraceContext struct {
	// TraceID identifies the causal domain (one training epoch of one
	// recorder); all messages of an epoch share it.
	TraceID uint64
	// SpanID uniquely identifies this send event within the trace. It doubles
	// as the Chrome trace flow-event id.
	SpanID uint64
	// Parent is the sender-side span (stage interval) that caused the send;
	// zero when unknown (e.g. a background send goroutine).
	Parent uint64
	// SentUnixNano is the sender's wall clock at the logical Send.
	SentUnixNano int64
}

// Message is one fabric transfer. Vertices names the global vertex ids the
// tensor rows correspond to (may be nil when both sides share the layout).
type Message struct {
	From, To int
	Kind     MsgKind
	Epoch    int
	Layer    int
	// Seq disambiguates multiple messages with identical routing tags
	// (e.g. all-reduce ring steps).
	Seq      int
	Vertices []int32
	Rows     *tensor.Tensor
	// Trace is the causal trace context (zero when tracing is off).
	Trace TraceContext
	// sentAt is stamped by the fabric at Send for latency accounting; it is
	// process-local and never serialised.
	sentAt time.Time
}

// WireBytes returns the simulated on-wire size of the message.
func (m *Message) WireBytes() int {
	b := 64 // header
	b += 4 * len(m.Vertices)
	if m.Rows != nil {
		b += m.Rows.Bytes()
	}
	return b
}

// NetworkProfile models a cluster fabric. BytesPerSec bounds each node's
// egress and ingress independently (a full-duplex NIC); Latency is added per
// message. A zero BytesPerSec disables throttling.
type NetworkProfile struct {
	Name        string
	BytesPerSec float64
	Latency     time.Duration
}

// The two cluster presets of the paper's §2.3 comparison, calibrated so the
// compute:communication ratio at this reproduction's reduced scale matches
// the original clusters' regimes: ECS is the 6 Gb/s Aliyun Ethernet cluster
// (communication-bound), IBV the 100 Gb/s InfiniBand cluster
// (computation-bound).
var (
	ProfileECS = NetworkProfile{Name: "ecs", BytesPerSec: 48e6, Latency: 150 * time.Microsecond}
	ProfileIBV = NetworkProfile{Name: "ibv", BytesPerSec: 1.6e9, Latency: 10 * time.Microsecond}
	// ProfileLocal disables throttling entirely.
	ProfileLocal = NetworkProfile{Name: "local"}
)

// Network is the transport surface engines depend on: tagged message send,
// per-worker mailboxes, teardown. Two implementations exist: the in-process
// channel Fabric (with simulated pacing) and the TCPFabric, which moves the
// same messages over real loopback TCP connections.
type Network interface {
	Send(msg *Message)
	Mailbox(i int) *Mailbox
	NumWorkers() int
	Close()
}

// Fabric connects m workers. Create with NewFabric, stop with Close.
type Fabric struct {
	m       int
	profile NetworkProfile
	coll    *metrics.Collector

	egress  []chan *Message // per-sender serialised queue
	ingress []chan *Message // per-receiver serialised queue
	inbox   []*Mailbox

	wg     sync.WaitGroup
	closed chan struct{}
}

// queueDepth bounds in-flight messages per pacer; deep enough that senders
// rarely block on the queue itself, so the pacing delay dominates.
const queueDepth = 4096

// NewFabric builds a fabric for m workers with the given network profile.
// coll may be nil.
func NewFabric(m int, profile NetworkProfile, coll *metrics.Collector) *Fabric {
	f := &Fabric{
		m:       m,
		profile: profile,
		coll:    coll,
		egress:  make([]chan *Message, m),
		ingress: make([]chan *Message, m),
		inbox:   make([]*Mailbox, m),
		closed:  make(chan struct{}),
	}
	for i := 0; i < m; i++ {
		f.egress[i] = make(chan *Message, queueDepth)
		f.ingress[i] = make(chan *Message, queueDepth)
		f.inbox[i] = newMailbox()
	}
	for i := 0; i < m; i++ {
		f.wg.Add(2)
		go f.egressLoop(i)
		go f.ingressLoop(i)
	}
	return f
}

// NumWorkers returns the number of workers the fabric connects.
func (f *Fabric) NumWorkers() int { return f.m }

// Profile returns the fabric's network profile.
func (f *Fabric) Profile() NetworkProfile { return f.profile }

// Send enqueues msg for delivery. Self-sends bypass the network entirely
// (local dependency handling is free, as in the real system's shared memory).
// Send never blocks longer than pacing requires; it panics on a closed
// fabric, which would indicate an engine lifecycle bug.
func (f *Fabric) Send(msg *Message) {
	if msg.To < 0 || msg.To >= f.m || msg.From < 0 || msg.From >= f.m {
		panic(fmt.Sprintf("comm: route %d->%d outside [0,%d)", msg.From, msg.To, f.m))
	}
	if msg.From == msg.To {
		f.inbox[msg.To].deliver(msg)
		return
	}
	select {
	case <-f.closed:
		panic("comm: Send on closed fabric")
	default:
	}
	f.coll.AddSent(int64(msg.WireBytes()))
	recordSend(msg)
	select {
	case f.egress[msg.From] <- msg:
	case <-f.closed:
		panic("comm: Send on closed fabric")
	}
}

// egressLoop serialises a sender's outgoing traffic at the profile rate.
func (f *Fabric) egressLoop(i int) {
	defer f.wg.Done()
	for {
		select {
		case msg := <-f.egress[i]:
			f.pace(msg.WireBytes())
			select {
			case f.ingress[msg.To] <- msg:
			case <-f.closed:
				return
			}
		case <-f.closed:
			return
		}
	}
}

// ingressLoop serialises a receiver's incoming traffic at the profile rate
// and applies wire latency, then delivers to the mailbox.
func (f *Fabric) ingressLoop(i int) {
	defer f.wg.Done()
	for {
		select {
		case msg := <-f.ingress[i]:
			if f.profile.Latency > 0 {
				time.Sleep(f.profile.Latency)
			}
			f.pace(msg.WireBytes())
			f.coll.AddReceived(int64(msg.WireBytes()))
			recordDelivered(i, msg)
			f.inbox[i].deliver(msg)
		case <-f.closed:
			return
		}
	}
}

// pace sleeps for the transmission time of n bytes at the profile rate.
func (f *Fabric) pace(n int) {
	if f.profile.BytesPerSec <= 0 {
		return
	}
	d := time.Duration(float64(n) / f.profile.BytesPerSec * float64(time.Second))
	if d > 0 {
		time.Sleep(d)
	}
}

// Mailbox returns worker i's mailbox.
func (f *Fabric) Mailbox(i int) *Mailbox { return f.inbox[i] }

// Close shuts the fabric down. Messages still in pacers are dropped.
func (f *Fabric) Close() {
	close(f.closed)
	f.wg.Wait()
	for _, mb := range f.inbox {
		mb.close()
	}
}

// routeKey identifies a logical message slot for matching.
type routeKey struct {
	kind  MsgKind
	epoch int
	layer int
	seq   int
	from  int
}

// Mailbox matches arriving messages to waiting receivers by
// (kind, epoch, layer, seq, from). The training protocol guarantees at most
// one message per key, so each key is a single-assignment cell; a duplicate
// delivery panics, because in a fault-free fabric it indicates a protocol
// bug. Under fault injection (FaultyFabric) duplicates are a deliberately
// injected condition: EnableDedup switches the mailbox to at-least-once
// semantics, where redelivered keys are silently dropped and counted.
type Mailbox struct {
	mu      sync.Mutex
	pending map[routeKey]*Message
	waiting map[routeKey]chan *Message
	closed  bool

	dedup bool
	seen  map[routeKey]struct{}

	// stage, when set, attributes deduplicated deliveries to a flight
	// recorder (see stage.go).
	stage stageRec
}

// dedupSeenMax bounds the delivered-key memory: when the set grows past
// this, keys from other epochs are swept. A duplicate of a swept key is
// redelivered into pending and sits there unmatched (keys are never reused),
// which wastes one message of memory instead of corrupting the protocol.
const dedupSeenMax = 1 << 16

func newMailbox() *Mailbox {
	return &Mailbox{
		pending: make(map[routeKey]*Message),
		waiting: make(map[routeKey]chan *Message),
	}
}

// EnableDedup switches the mailbox to at-least-once delivery: duplicate
// keys are dropped instead of panicking. Enabled by FaultyFabric, which
// injects duplicates and retransmissions on purpose.
func (mb *Mailbox) EnableDedup() {
	mb.mu.Lock()
	if !mb.dedup {
		mb.dedup = true
		mb.seen = make(map[routeKey]struct{})
	}
	mb.mu.Unlock()
}

func (mb *Mailbox) deliver(msg *Message) {
	key := routeKey{kind: msg.Kind, epoch: msg.Epoch, layer: msg.Layer, seq: msg.Seq, from: msg.From}
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		return
	}
	if mb.dedup {
		if _, dup := mb.seen[key]; dup {
			mb.mu.Unlock()
			obsDedupDropped.Inc()
			return
		}
		if len(mb.seen) >= dedupSeenMax {
			for k := range mb.seen {
				if k.epoch != msg.Epoch {
					delete(mb.seen, k)
				}
			}
		}
		mb.seen[key] = struct{}{}
	}
	// Past the dedup gate: this is the message's one counted delivery.
	// Retransmitted or duplicated copies either never reach here (dropped
	// above) or ARE the counted copy when they arrive first.
	mb.recordDelivery(msg)
	if ch, ok := mb.waiting[key]; ok {
		delete(mb.waiting, key)
		mb.mu.Unlock()
		ch <- msg
		return
	}
	if _, dup := mb.pending[key]; dup {
		mb.mu.Unlock()
		panic(fmt.Sprintf("comm: duplicate message for %+v", key))
	}
	mb.pending[key] = msg
	mb.mu.Unlock()
}

// Wait blocks until the message with the given routing tag arrives. When a
// stage recorder is attached, every cross-worker match is also reported as a
// causal wait-match event (who waited, from when to when, for whose send) —
// the message edges of the epoch's event DAG.
func (mb *Mailbox) Wait(kind MsgKind, epoch, layer, seq, from int) *Message {
	key := routeKey{kind: kind, epoch: epoch, layer: layer, seq: seq, from: from}
	sr := mb.stage.p.Load()
	var waitStart time.Time
	if sr != nil && from != sr.worker {
		waitStart = time.Now()
	}
	mb.mu.Lock()
	if msg, ok := mb.pending[key]; ok {
		delete(mb.pending, key)
		mb.mu.Unlock()
		mb.recordWaitMatch(sr, msg, waitStart)
		return msg
	}
	if mb.closed {
		mb.mu.Unlock()
		panic("comm: Wait on closed mailbox")
	}
	ch := make(chan *Message, 1)
	mb.waiting[key] = ch
	mb.mu.Unlock()
	msg := <-ch
	mb.recordWaitMatch(sr, msg, waitStart)
	return msg
}

func (mb *Mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
}

// RingOrder returns the peer sequence worker i uses under the ring schedule:
// the j-th element is (i+j+1) mod m, so at any time slot no two workers
// target the same destination. With ring disabled, engines use NaiveOrder.
func RingOrder(i, m int) []int {
	order := make([]int, 0, m-1)
	for j := 0; j < m-1; j++ {
		order = append(order, (i+j+1)%m)
	}
	return order
}

// NaiveOrder returns peers in ascending id order (0,1,...,m-1 skipping i):
// every worker hits worker 0 first, then worker 1, ... — the congestion
// pattern ring scheduling exists to avoid.
func NaiveOrder(i, m int) []int {
	order := make([]int, 0, m-1)
	for j := 0; j < m; j++ {
		if j != i {
			order = append(order, j)
		}
	}
	return order
}
