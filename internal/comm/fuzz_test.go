package comm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"neutronstar/internal/tensor"
)

// encodeToBytes renders one message in the wire format for corpus seeding.
func encodeToBytes(t testing.TB, msg *Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := encodeMessage(w, msg); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCodecRoundTrip feeds arbitrary bytes to the wire decoder. Malformed
// input must be rejected with an error (never a panic or an oversized
// allocation); input that decodes must survive an encode/decode round trip
// bit-exactly.
func FuzzCodecRoundTrip(f *testing.F) {
	seeds := []*Message{
		{From: 0, To: 1, Kind: KindRep, Epoch: 3, Layer: 1, Seq: 2,
			Vertices: []int32{7, 9, 11},
			Rows:     tensor.FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6}),
			Trace: TraceContext{TraceID: 1<<32 | 3, SpanID: 42, Parent: 41,
				SentUnixNano: 1_700_000_000_123_456_789}},
		{From: 2, To: 0, Kind: KindGrad, Epoch: 0, Layer: 0, Seq: 0,
			Rows:  tensor.FromSlice(1, 4, []float32{0, float32(math.Inf(1)), -0.5, float32(math.NaN())}),
			Trace: TraceContext{TraceID: ^uint64(0), SpanID: ^uint64(0), Parent: ^uint64(0), SentUnixNano: -1}},
		{From: 1, To: 2, Kind: KindAllReduce, Epoch: -1, Layer: -1, Seq: 41},
		{From: 0, To: 3, Kind: KindSample, Epoch: 12, Layer: 2, Seq: 1,
			Vertices: []int32{-1, 0, 1 << 30}},
		{From: 3, To: 1, Kind: KindBlock, Epoch: 1, Layer: 1, Seq: 0,
			Rows: tensor.New(2, 0)},
	}
	for _, m := range seeds {
		f.Add(encodeToBytes(f, m))
	}
	// Hostile seeds: bad magic, truncated header, header claiming a huge
	// payload with no bytes behind it, and a v2 header whose promised trace
	// block is cut off mid-way (must reject, never zero-pad).
	f.Add([]byte("not a wire message at all, just junk bytes padding"))
	f.Add(encodeToBytes(f, seeds[0])[:20])
	huge := encodeToBytes(f, seeds[2])
	huge[29], huge[30], huge[31] = 0xff, 0xff, 0xff // numVerts ~ 2^24, absent
	f.Add(huge)
	f.Add(encodeToBytes(f, seeds[2])[:41+traceBlockLen/2])
	// A v1 stream: same 41-byte header under the old magic with the trace
	// block cut out and the payload following directly. It must still decode
	// (with a zero Trace) for old-capture compatibility.
	full := encodeToBytes(f, seeds[3])
	v1 := append(append([]byte(nil), full[:41]...), full[41+traceBlockLen:]...)
	binary.LittleEndian.PutUint32(v1[0:], wireMagicV1)
	f.Add(v1)

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := decodeMessage(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return // rejection is a valid outcome for arbitrary bytes
		}
		again, err := decodeMessage(bufio.NewReader(bytes.NewReader(encodeToBytes(t, msg))))
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		if again.Kind != msg.Kind || again.From != msg.From || again.To != msg.To ||
			again.Epoch != msg.Epoch || again.Layer != msg.Layer || again.Seq != msg.Seq {
			t.Fatalf("header drift: %+v vs %+v", again, msg)
		}
		if again.Trace != msg.Trace {
			t.Fatalf("trace drift: %+v vs %+v", again.Trace, msg.Trace)
		}
		if len(again.Vertices) != len(msg.Vertices) {
			t.Fatalf("vertex count drift: %d vs %d", len(again.Vertices), len(msg.Vertices))
		}
		for i := range msg.Vertices {
			if again.Vertices[i] != msg.Vertices[i] {
				t.Fatalf("vertex %d drift: %d vs %d", i, again.Vertices[i], msg.Vertices[i])
			}
		}
		if (again.Rows == nil) != (msg.Rows == nil) {
			t.Fatalf("tensor presence drift: %v vs %v", again.Rows, msg.Rows)
		}
		if msg.Rows != nil {
			if again.Rows.Rows() != msg.Rows.Rows() || again.Rows.Cols() != msg.Rows.Cols() {
				t.Fatalf("tensor shape drift: %dx%d vs %dx%d",
					again.Rows.Rows(), again.Rows.Cols(), msg.Rows.Rows(), msg.Rows.Cols())
			}
			a, b := again.Rows.Data(), msg.Rows.Data()
			for i := range b {
				// Bit-exact comparison: NaN payloads must survive too.
				if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
					t.Fatalf("tensor data drift at %d: %x vs %x",
						i, math.Float32bits(a[i]), math.Float32bits(b[i]))
				}
			}
		}
	})
}
