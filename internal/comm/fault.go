package comm

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"neutronstar/internal/tensor"
)

// Fault injection: FaultyFabric wraps any Network and subjects every
// non-local message to seeded, deterministic drops, delays and duplicates,
// while the send path runs a bounded retransmit-with-backoff protocol so
// training completes anyway. The failure model is per transmission attempt:
// an attempt is "lost" with probability drop, the sender detects the loss by
// retransmission timeout and resends with doubled backoff (up to retries
// attempts), and a delivered message may additionally be delayed by
// delay+U(0,jitter) and duplicated with probability dup. Duplicates are
// absorbed by the mailboxes' at-least-once dedup (see Mailbox.EnableDedup),
// so the engine above observes exactly-once semantics with degraded timing —
// message *content* is never altered, which is what keeps fault-injected
// runs loss-for-loss identical to clean ones.
//
// Every decision derives from a per-message RNG seeded by the message's
// routing identity (from, to, kind, epoch, layer, seq) hashed with the spec
// seed, so the injected fault pattern is a pure function of the spec and the
// protocol — independent of goroutine scheduling, and replayable.
//
// Spec grammar (see ParseFaultSpec):
//
//	spec    := clause ( ',' clause )*
//	clause  := [ kind '.' ] key '=' value
//	kind    := rep | grad | allreduce | sample | block
//	key     := drop | dup | delay | jitter        (per-kind or baseline)
//	         | seed | retries | timeout           (global only)
//
// Unqualified keys set the baseline rule for every kind; kind-qualified
// keys override that one field for that one kind (order-independent).
// Examples:
//
//	drop=0.05,jitter=2ms,seed=7
//	rep.drop=0.2,grad.dup=0.1,delay=500us
//	drop=0.01,allreduce.drop=0,retries=6,timeout=1ms

// FaultRule is the injected failure behaviour for one message kind.
type FaultRule struct {
	// Drop is the per-transmission-attempt loss probability in [0, 1).
	Drop float64
	// Dup is the probability a delivered message is sent twice, in [0, 1].
	Dup float64
	// Delay is a fixed extra latency applied to every delivery.
	Delay time.Duration
	// Jitter adds a uniform random extra latency in [0, Jitter].
	Jitter time.Duration
}

func (r FaultRule) zero() bool { return r == FaultRule{} }

// FaultSpec is a parsed fault-injection specification.
type FaultSpec struct {
	// Default applies to every kind not overridden in PerKind.
	Default FaultRule
	// PerKind holds fully resolved per-kind rules (baseline + overrides).
	PerKind map[MsgKind]FaultRule
	// Seed keys the deterministic fault pattern.
	Seed uint64
	// MaxRetries bounds transmission attempts per message (default 8).
	// A message still undelivered after the last attempt goes through
	// anyway: liveness is preserved and the exhaustion is counted on
	// ns_comm_fault_retry_exhausted_total.
	MaxRetries int
	// RetryTimeout is the initial retransmission timeout; it doubles per
	// attempt up to maxBackoff (default 2ms).
	RetryTimeout time.Duration
}

// maxBackoff caps the exponential retransmission backoff.
const maxBackoff = 250 * time.Millisecond

// Rule returns the effective rule for a message kind.
func (s *FaultSpec) Rule(k MsgKind) FaultRule {
	if r, ok := s.PerKind[k]; ok {
		return r
	}
	return s.Default
}

var kindByName = map[string]MsgKind{
	"rep": KindRep, "grad": KindGrad, "allreduce": KindAllReduce,
	"sample": KindSample, "block": KindBlock, "slice": KindSlice,
}

// ParseFaultSpec parses the fault grammar documented above. An empty spec
// is an error — callers should treat "no spec" as "no fault injection"
// before calling.
func ParseFaultSpec(spec string) (*FaultSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("comm: empty fault spec")
	}
	out := &FaultSpec{
		PerKind:      make(map[MsgKind]FaultRule),
		MaxRetries:   8,
		RetryTimeout: 2 * time.Millisecond,
	}
	type override struct {
		kind MsgKind
		key  string
		val  string
	}
	var overrides []override
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("comm: fault clause %q is not key=value", clause)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if kindName, field, qualified := strings.Cut(key, "."); qualified {
			kind, ok := kindByName[kindName]
			if !ok {
				return nil, fmt.Errorf("comm: unknown message kind %q in fault clause %q (kinds: rep, grad, allreduce, sample, block, slice)", kindName, clause)
			}
			overrides = append(overrides, override{kind: kind, key: field, val: val})
			continue
		}
		switch key {
		case "drop", "dup", "delay", "jitter":
			if err := applyRuleField(&out.Default, key, val); err != nil {
				return nil, err
			}
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("comm: fault seed %q: %w", val, err)
			}
			out.Seed = n
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("comm: fault retries %q must be a positive integer", val)
			}
			out.MaxRetries = n
		case "timeout":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("comm: fault timeout %q must be a positive duration", val)
			}
			out.RetryTimeout = d
		default:
			return nil, fmt.Errorf("comm: unknown fault key %q (keys: drop, dup, delay, jitter, seed, retries, timeout)", key)
		}
	}
	// Kind overrides start from the fully parsed baseline so clause order
	// never matters.
	for _, o := range overrides {
		rule, ok := out.PerKind[o.kind]
		if !ok {
			rule = out.Default
		}
		if err := applyRuleField(&rule, o.key, o.val); err != nil {
			return nil, err
		}
		out.PerKind[o.kind] = rule
	}
	return out, nil
}

func applyRuleField(r *FaultRule, key, val string) error {
	switch key {
	case "drop", "dup":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("comm: fault %s %q: %w", key, val, err)
		}
		if key == "drop" {
			if p < 0 || p >= 1 {
				return fmt.Errorf("comm: fault drop %v outside [0, 1)", p)
			}
			r.Drop = p
		} else {
			if p < 0 || p > 1 {
				return fmt.Errorf("comm: fault dup %v outside [0, 1]", p)
			}
			r.Dup = p
		}
	case "delay", "jitter":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return fmt.Errorf("comm: fault %s %q must be a non-negative duration", key, val)
		}
		if key == "delay" {
			r.Delay = d
		} else {
			r.Jitter = d
		}
	default:
		return fmt.Errorf("comm: unknown per-kind fault key %q (keys: drop, dup, delay, jitter)", key)
	}
	return nil
}

// String renders the spec back in grammar form (for logs).
func (s *FaultSpec) String() string {
	var parts []string
	add := func(prefix string, r FaultRule) {
		if r.Drop > 0 {
			parts = append(parts, fmt.Sprintf("%sdrop=%g", prefix, r.Drop))
		}
		if r.Dup > 0 {
			parts = append(parts, fmt.Sprintf("%sdup=%g", prefix, r.Dup))
		}
		if r.Delay > 0 {
			parts = append(parts, fmt.Sprintf("%sdelay=%s", prefix, r.Delay))
		}
		if r.Jitter > 0 {
			parts = append(parts, fmt.Sprintf("%sjitter=%s", prefix, r.Jitter))
		}
	}
	add("", s.Default)
	for _, k := range []MsgKind{KindRep, KindGrad, KindAllReduce, KindSample, KindBlock, KindSlice} {
		if r, ok := s.PerKind[k]; ok {
			add(k.String()+".", r)
		}
	}
	parts = append(parts, fmt.Sprintf("seed=%d", s.Seed),
		fmt.Sprintf("retries=%d", s.MaxRetries), fmt.Sprintf("timeout=%s", s.RetryTimeout))
	return strings.Join(parts, ",")
}

// FaultyFabric implements Network by wrapping another fabric with fault
// injection and the retransmission protocol. Create with NewFaultyFabric;
// Close tears down the wrapper's in-flight deliveries, then the inner
// fabric.
type FaultyFabric struct {
	inner Network
	spec  *FaultSpec

	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// NewFaultyFabric wraps inner. The inner fabric's mailboxes are switched to
// at-least-once dedup, since duplicates and retransmissions are now
// expected conditions.
func NewFaultyFabric(inner Network, spec *FaultSpec) *FaultyFabric {
	f := &FaultyFabric{inner: inner, spec: spec, closed: make(chan struct{})}
	for i := 0; i < inner.NumWorkers(); i++ {
		inner.Mailbox(i).EnableDedup()
	}
	return f
}

// NumWorkers returns the inner fabric's worker count.
func (f *FaultyFabric) NumWorkers() int { return f.inner.NumWorkers() }

// Mailbox returns worker i's mailbox (the inner fabric's, dedup-enabled).
func (f *FaultyFabric) Mailbox(i int) *Mailbox { return f.inner.Mailbox(i) }

// Send routes msg through the fault model. Self-sends and kinds with an
// all-zero rule bypass injection entirely, so an empty rule costs nothing.
func (f *FaultyFabric) Send(msg *Message) {
	if msg.From == msg.To {
		f.inner.Send(msg)
		return
	}
	rule := f.spec.Rule(msg.Kind)
	if rule.zero() {
		f.inner.Send(msg)
		return
	}
	f.wg.Add(1)
	go f.deliver(msg, rule)
}

// deliver runs one message's retransmission protocol: attempt, lose with
// P(drop), back off, retransmit; then apply delay and jitter, hand the
// survivor to the inner fabric, and possibly inject a duplicate.
func (f *FaultyFabric) deliver(msg *Message, rule FaultRule) {
	defer f.wg.Done()
	rng := tensor.NewRNG(f.msgSeed(msg))
	backoff := f.spec.RetryTimeout
	attempt := 0
	for ; attempt < f.spec.MaxRetries; attempt++ {
		if rule.Drop == 0 || rng.Float64() >= rule.Drop {
			break
		}
		// This attempt was lost on the wire: the sender notices via the
		// retransmission timeout and resends.
		obsFaultDropped.With(msg.Kind.String()).Inc()
		obsFaultRetransmits.Inc()
		if !f.sleep(backoff) {
			return
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
	if attempt == f.spec.MaxRetries {
		// Retry budget exhausted: deliver anyway rather than wedge the
		// epoch barrier forever — a persistent partition is beyond what
		// retransmission can fix, and the counter makes it visible.
		obsFaultExhausted.Inc()
	}
	if d := rule.Delay + jitter(rng, rule.Jitter); d > 0 {
		obsFaultDelaySeconds.Observe(d.Seconds())
		if !f.sleep(d) {
			return
		}
	}
	f.inner.Send(msg)
	if rule.Dup > 0 && rng.Float64() < rule.Dup {
		obsFaultDuplicated.With(msg.Kind.String()).Inc()
		dup := *msg
		f.inner.Send(&dup)
	}
}

// jitter draws a uniform duration in [0, max].
func jitter(rng *tensor.RNG, max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(rng.Float64() * float64(max))
}

// sleep waits for d or until the fabric closes; it reports whether the
// delivery should proceed.
func (f *FaultyFabric) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-f.closed:
		return false
	}
}

// msgSeed hashes the message's routing identity with the spec seed
// (FNV-1a), giving each message its own deterministic fault stream.
func (f *FaultyFabric) msgSeed(msg *Message) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(f.spec.Seed)
	mix(uint64(msg.From))
	mix(uint64(msg.To))
	mix(uint64(msg.Kind))
	mix(uint64(msg.Epoch))
	mix(uint64(msg.Layer))
	mix(uint64(msg.Seq))
	return h
}

// Close stops in-flight fault deliveries (in-backoff messages are dropped,
// as a closing cluster's wire traffic would be), then closes the inner
// fabric.
func (f *FaultyFabric) Close() {
	f.once.Do(func() {
		close(f.closed)
		f.wg.Wait()
		f.inner.Close()
	})
}
