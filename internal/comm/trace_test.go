package comm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"testing"

	"neutronstar/internal/tensor"
)

func TestCodecTraceRoundTrip(t *testing.T) {
	want := TraceContext{TraceID: 7<<32 | 12, SpanID: 99, Parent: 98,
		SentUnixNano: 1_754_000_000_000_000_000}
	msg := &Message{From: 1, To: 2, Kind: KindRep, Epoch: 12, Layer: 1, Seq: 4,
		Vertices: []int32{3, 5}, Rows: tensor.FromSlice(2, 2, []float32{1, 2, 3, 4}),
		Trace: want}
	got, err := decodeMessage(bufio.NewReader(bytes.NewReader(encodeToBytes(t, msg))))
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != want {
		t.Fatalf("trace round trip: %+v, want %+v", got.Trace, want)
	}
}

// TestCodecDecodesV1Streams pins backward compatibility: a stream written in
// the v1 format (41-byte header under the old magic, no trace block) must
// decode to the same message with a zero TraceContext.
func TestCodecDecodesV1Streams(t *testing.T) {
	msg := &Message{From: 2, To: 0, Kind: KindGrad, Epoch: 5, Layer: 2, Seq: 1,
		Vertices: []int32{10, 20, 30},
		Rows:     tensor.FromSlice(1, 3, []float32{0.5, -1, 2}),
		// The encoder stamps a trace block; cutting it out below must also
		// discard these values, not smear them into the payload.
		Trace: TraceContext{TraceID: 1, SpanID: 2, Parent: 3, SentUnixNano: 4}}
	v2 := encodeToBytes(t, msg)
	v1 := append(append([]byte(nil), v2[:41]...), v2[41+traceBlockLen:]...)
	binary.LittleEndian.PutUint32(v1[0:], wireMagicV1)

	got, err := decodeMessage(bufio.NewReader(bytes.NewReader(v1)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != (TraceContext{}) {
		t.Fatalf("v1 stream decoded a non-zero trace: %+v", got.Trace)
	}
	if got.From != msg.From || got.Kind != msg.Kind || got.Epoch != msg.Epoch {
		t.Fatalf("v1 header drift: %+v vs %+v", got, msg)
	}
	if len(got.Vertices) != 3 || got.Vertices[2] != 30 {
		t.Fatalf("v1 vertices drift: %v", got.Vertices)
	}
	if !got.Rows.Equal(msg.Rows) {
		t.Fatal("v1 tensor drift")
	}
}

// TestCodecRejectsTruncatedTraceBlock: a v2 header promises a trace block;
// a stream that ends inside it must fail with io.ErrUnexpectedEOF rather
// than zero-padding the missing fields.
func TestCodecRejectsTruncatedTraceBlock(t *testing.T) {
	msg := &Message{From: 0, To: 1, Kind: KindRep, Epoch: 1, Layer: 1, Seq: 0,
		Trace: TraceContext{TraceID: 42, SpanID: 7}}
	full := encodeToBytes(t, msg)
	for _, cut := range []int{41, 41 + 1, 41 + traceBlockLen - 1} {
		_, err := decodeMessage(bufio.NewReader(bytes.NewReader(full[:cut])))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// traceCapture wraps a Network and records the TraceContext of every message
// the wrapped fabric is asked to deliver — including injected duplicates.
type traceCapture struct {
	Network
	mu   sync.Mutex
	sent []TraceContext
}

func (c *traceCapture) Send(msg *Message) {
	c.mu.Lock()
	c.sent = append(c.sent, msg.Trace)
	c.mu.Unlock()
	c.Network.Send(msg)
}

// TestFaultyFabricDuplicateKeepsTrace pins the causal contract for
// retransmission: an injected duplicate is a struct copy of the original, so
// it carries the original's trace context — the duplicate is the same causal
// event on the wire, not a new one.
func TestFaultyFabricDuplicateKeepsTrace(t *testing.T) {
	spec, err := ParseFaultSpec("dup=1,seed=9,timeout=50us")
	if err != nil {
		t.Fatal(err)
	}
	cap := &traceCapture{Network: NewFabric(2, ProfileLocal, nil)}
	f := NewFaultyFabric(cap, spec)

	want := TraceContext{TraceID: 3<<32 | 1, SpanID: 11, Parent: 10,
		SentUnixNano: 1_700_000_000_000_000_001}
	f.Send(&Message{From: 0, To: 1, Kind: KindRep, Epoch: 1, Layer: 1, Seq: 0,
		Trace: want})
	f.Mailbox(1).Wait(KindRep, 1, 1, 0, 0)
	f.Close() // waits for the in-flight duplicate delivery

	cap.mu.Lock()
	defer cap.mu.Unlock()
	if len(cap.sent) != 2 {
		t.Fatalf("dup=1 delivered %d messages, want original + duplicate", len(cap.sent))
	}
	for i, tc := range cap.sent {
		if tc != want {
			t.Fatalf("delivery %d trace %+v, want %+v", i, tc, want)
		}
	}
}
