package comm

import (
	"neutronstar/internal/metrics"
	"neutronstar/internal/obs"
	"neutronstar/internal/tensor"
)

// RingAllReduce sums buf element-wise across all m workers in place, using
// the classic two-phase ring: m-1 scatter-reduce steps then m-1 all-gather
// steps. All workers must call it with the same tag and equal-length
// buffers; each worker passes its own id. The result is bit-identical on
// every worker because each chunk is reduced at exactly one worker in ring
// order and then copied verbatim.
//
// Message tagging: Kind=KindAllReduce, Epoch=tag, Layer=step, Seq=chunk.
// Callers must choose tags unique per collective (e.g. a global step
// counter) so concurrent epochs cannot alias.
//
// coll (may be nil) records one structural ring_step span per step on the
// caller's timeline, making skew between ring neighbours visible in traces
// without altering utilisation accounting.
func RingAllReduce(f Network, id, m, tag int, buf []float32, coll *metrics.Collector) {
	if m <= 1 {
		return
	}
	total := len(buf)
	bounds := make([]int, m+1)
	for c := 0; c <= m; c++ {
		bounds[c] = c * total / m
	}
	chunk := func(c int) []float32 { return buf[bounds[c]:bounds[c+1]] }

	next := (id + 1) % m
	prev := (id - 1 + m) % m
	mb := f.Mailbox(id)
	send := func(step, c int, data []float32) {
		rows := tensor.New(1, len(data))
		copy(rows.Data(), data)
		f.Send(&Message{
			From: id, To: next, Kind: KindAllReduce,
			Epoch: tag, Layer: step, Seq: c, Rows: rows,
		})
	}

	// Scatter-reduce: after m-1 steps worker id holds the fully reduced
	// chunk (id+1) mod m.
	for step := 0; step < m-1; step++ {
		sp := coll.Group(id, "ring_step", obs.Int("step", step), obs.String("phase", "scatter_reduce"))
		cSend := (id - step + 2*m) % m
		send(step, cSend, chunk(cSend))
		cRecv := (id - step - 1 + 2*m) % m
		msg := mb.Wait(KindAllReduce, tag, step, cRecv, prev)
		dst := chunk(cRecv)
		for k, v := range msg.Rows.Data() {
			dst[k] += v
		}
		sp.End()
	}
	// All-gather: circulate the reduced chunks.
	for step := 0; step < m-1; step++ {
		sp := coll.Group(id, "ring_step", obs.Int("step", m-1+step), obs.String("phase", "all_gather"))
		cSend := (id + 1 - step + 2*m) % m
		send(m-1+step, cSend, chunk(cSend))
		cRecv := (id - step + 2*m) % m
		msg := mb.Wait(KindAllReduce, tag, m-1+step, cRecv, prev)
		copy(chunk(cRecv), msg.Rows.Data())
		sp.End()
	}
}
