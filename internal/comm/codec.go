package comm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"neutronstar/internal/tensor"
)

// Wire format for TCP transport, little-endian throughout:
//
//	magic     u32  (v1 0x4E545301 "NTS\x01", v2 0x4E545302 "NTS\x02")
//	kind      u8
//	from, to  u32
//	epoch     i64
//	layer     i32
//	seq       i32
//	numVerts  u32
//	rows,cols u32, u32
//	--- v2 only: trace context block ---
//	traceID   u64
//	spanID    u64
//	parent    u64
//	sentNanos i64
//	--- payload ---
//	verts     numVerts × i32
//	data      rows*cols × f32
//
// The format is self-delimiting (lengths precede payloads), so a stream of
// messages needs no extra framing.
//
// Versioning: the encoder always emits v2. The decoder accepts both magics —
// a v1 stream simply yields messages with a zero TraceContext — so a v2
// process can still read streams captured by older builds. A v2 header whose
// trace block is truncated is rejected (io.ErrUnexpectedEOF), never padded.

const (
	wireMagicV1 = 0x4E545301
	wireMagicV2 = 0x4E545302
	// traceBlockLen is the byte length of the v2 trace-context block.
	traceBlockLen = 32
)

// maxWireDim bounds decoded allocation sizes against corrupt or hostile
// streams: no legitimate message in this system approaches it.
const maxWireDim = 1 << 28

// encodeMessage writes msg in the wire format (always v2).
func encodeMessage(w *bufio.Writer, msg *Message) error {
	var hdr [41 + traceBlockLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], wireMagicV2)
	hdr[4] = byte(msg.Kind)
	binary.LittleEndian.PutUint32(hdr[5:], uint32(msg.From))
	binary.LittleEndian.PutUint32(hdr[9:], uint32(msg.To))
	binary.LittleEndian.PutUint64(hdr[13:], uint64(int64(msg.Epoch)))
	binary.LittleEndian.PutUint32(hdr[21:], uint32(int32(msg.Layer)))
	binary.LittleEndian.PutUint32(hdr[25:], uint32(int32(msg.Seq)))
	binary.LittleEndian.PutUint32(hdr[29:], uint32(len(msg.Vertices)))
	rows, cols := 0, 0
	if msg.Rows != nil {
		rows, cols = msg.Rows.Rows(), msg.Rows.Cols()
	}
	binary.LittleEndian.PutUint32(hdr[33:], uint32(rows))
	binary.LittleEndian.PutUint32(hdr[37:], uint32(cols))
	binary.LittleEndian.PutUint64(hdr[41:], msg.Trace.TraceID)
	binary.LittleEndian.PutUint64(hdr[49:], msg.Trace.SpanID)
	binary.LittleEndian.PutUint64(hdr[57:], msg.Trace.Parent)
	binary.LittleEndian.PutUint64(hdr[65:], uint64(msg.Trace.SentUnixNano))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var scratch [4]byte
	for _, v := range msg.Vertices {
		binary.LittleEndian.PutUint32(scratch[:], uint32(v))
		if _, err := w.Write(scratch[:]); err != nil {
			return err
		}
	}
	if msg.Rows != nil {
		for _, f := range msg.Rows.Data() {
			binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(f))
			if _, err := w.Write(scratch[:]); err != nil {
				return err
			}
		}
	}
	return nil
}

// decodeMessage reads one message in the wire format. Both v1 (no trace
// block) and v2 magics are accepted; v1 messages decode with a zero Trace.
func decodeMessage(r *bufio.Reader) (*Message, error) {
	var hdr [41]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	magic := binary.LittleEndian.Uint32(hdr[0:])
	if magic != wireMagicV1 && magic != wireMagicV2 {
		return nil, fmt.Errorf("comm: bad wire magic %#x", magic)
	}
	msg := &Message{
		Kind:  MsgKind(hdr[4]),
		From:  int(binary.LittleEndian.Uint32(hdr[5:])),
		To:    int(binary.LittleEndian.Uint32(hdr[9:])),
		Epoch: int(int64(binary.LittleEndian.Uint64(hdr[13:]))),
		Layer: int(int32(binary.LittleEndian.Uint32(hdr[21:]))),
		Seq:   int(int32(binary.LittleEndian.Uint32(hdr[25:]))),
	}
	nv := binary.LittleEndian.Uint32(hdr[29:])
	rows := binary.LittleEndian.Uint32(hdr[33:])
	cols := binary.LittleEndian.Uint32(hdr[37:])
	if magic == wireMagicV2 {
		var tb [traceBlockLen]byte
		if _, err := io.ReadFull(r, tb[:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF // a v2 header promises the block
			}
			return nil, err
		}
		msg.Trace = TraceContext{
			TraceID:      binary.LittleEndian.Uint64(tb[0:]),
			SpanID:       binary.LittleEndian.Uint64(tb[8:]),
			Parent:       binary.LittleEndian.Uint64(tb[16:]),
			SentUnixNano: int64(binary.LittleEndian.Uint64(tb[24:])),
		}
	}
	if nv > maxWireDim || rows > maxWireDim || cols > maxWireDim ||
		(rows > 0 && cols > maxWireDim/rows) {
		return nil, fmt.Errorf("comm: wire dimensions out of range (%d verts, %dx%d)", nv, rows, cols)
	}
	if nv > 0 {
		verts, err := readI32Chunked(r, int(nv))
		if err != nil {
			return nil, err
		}
		msg.Vertices = verts
	}
	if rows*cols > 0 {
		data, err := readF32Chunked(r, int(rows)*int(cols))
		if err != nil {
			return nil, err
		}
		msg.Rows = tensor.FromSlice(int(rows), int(cols), data)
	} else if rows > 0 || cols > 0 {
		msg.Rows = tensor.New(int(rows), int(cols))
	}
	return msg, nil
}

// The chunked readers decode n little-endian u32 values straight into their
// final element type in bounded chunks, so a corrupt or hostile length field
// costs at most one chunk of allocation beyond the bytes actually present in
// the stream — a 41-byte header claiming 2^28 elements fails at the first
// short read instead of committing a gigabyte up front. Decoding in place
// also avoids the intermediate []uint32 a generic reader would force.

const wireChunk = 1 << 14

func readI32Chunked(r *bufio.Reader, n int) ([]int32, error) {
	first := n
	if first > wireChunk {
		first = wireChunk
	}
	out := make([]int32, 0, first)
	var buf [4 * wireChunk]byte
	for n > 0 {
		c := n
		if c > wireChunk {
			c = wireChunk
		}
		b := buf[:4*c]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(b[4*i:])))
		}
		n -= c
	}
	return out, nil
}

func readF32Chunked(r *bufio.Reader, n int) ([]float32, error) {
	first := n
	if first > wireChunk {
		first = wireChunk
	}
	out := make([]float32, 0, first)
	var buf [4 * wireChunk]byte
	for n > 0 {
		c := n
		if c > wireChunk {
			c = wireChunk
		}
		b := buf[:4*c]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:])))
		}
		n -= c
	}
	return out, nil
}
