package comm

import (
	"bufio"
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"neutronstar/internal/metrics"
	"neutronstar/internal/tensor"
)

func TestFabricDeliversByTag(t *testing.T) {
	f := NewFabric(3, ProfileLocal, nil)
	defer f.Close()
	rows := tensor.FromRows([][]float32{{1, 2}})
	f.Send(&Message{From: 0, To: 2, Kind: KindRep, Epoch: 5, Layer: 1, Rows: rows})
	f.Send(&Message{From: 1, To: 2, Kind: KindRep, Epoch: 5, Layer: 1, Rows: tensor.FromRows([][]float32{{9, 9}})})
	got := f.Mailbox(2).Wait(KindRep, 5, 1, 0, 0)
	if got.From != 0 || !got.Rows.Equal(rows) {
		t.Fatalf("wrong message: %+v", got)
	}
	got1 := f.Mailbox(2).Wait(KindRep, 5, 1, 0, 1)
	if got1.From != 1 {
		t.Fatal("wrong second message")
	}
}

func TestFabricWaitBeforeSend(t *testing.T) {
	f := NewFabric(2, ProfileLocal, nil)
	defer f.Close()
	done := make(chan *Message)
	go func() {
		done <- f.Mailbox(1).Wait(KindGrad, 0, 2, 0, 0)
	}()
	time.Sleep(5 * time.Millisecond)
	f.Send(&Message{From: 0, To: 1, Kind: KindGrad, Epoch: 0, Layer: 2, Rows: tensor.New(1, 1)})
	select {
	case m := <-done:
		if m.Layer != 2 {
			t.Fatal("wrong layer")
		}
	case <-time.After(time.Second):
		t.Fatal("Wait never returned")
	}
}

func TestFabricSelfSendBypassesNetwork(t *testing.T) {
	coll := metrics.NewCollector()
	f := NewFabric(2, ProfileLocal, coll)
	defer f.Close()
	f.Send(&Message{From: 1, To: 1, Kind: KindRep, Rows: tensor.New(4, 4)})
	m := f.Mailbox(1).Wait(KindRep, 0, 0, 0, 1)
	if m == nil {
		t.Fatal("self send lost")
	}
	if coll.BytesSent() != 0 {
		t.Fatal("self send charged network bytes")
	}
}

func TestFabricByteAccounting(t *testing.T) {
	coll := metrics.NewCollector()
	f := NewFabric(2, ProfileLocal, coll)
	defer f.Close()
	msg := &Message{From: 0, To: 1, Kind: KindRep, Vertices: []int32{1, 2}, Rows: tensor.New(2, 3)}
	want := int64(64 + 8 + 24)
	if int64(msg.WireBytes()) != want {
		t.Fatalf("WireBytes = %d, want %d", msg.WireBytes(), want)
	}
	f.Send(msg)
	f.Mailbox(1).Wait(KindRep, 0, 0, 0, 0)
	if coll.BytesSent() != want || coll.BytesReceived() != want {
		t.Fatalf("accounting: sent %d recv %d want %d", coll.BytesSent(), coll.BytesReceived(), want)
	}
	if coll.MessagesSent() != 1 {
		t.Fatal("message count wrong")
	}
}

func TestFabricThrottlingSlowsDelivery(t *testing.T) {
	// 1 MB at 10 MB/s should take ~200ms (egress + ingress pacing).
	slow := NetworkProfile{Name: "slow", BytesPerSec: 10e6}
	f := NewFabric(2, slow, nil)
	defer f.Close()
	payload := tensor.New(512, 512) // 1 MiB
	start := time.Now()
	f.Send(&Message{From: 0, To: 1, Kind: KindRep, Rows: payload})
	f.Mailbox(1).Wait(KindRep, 0, 0, 0, 0)
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("throttled delivery took only %v", elapsed)
	}
}

func TestFabricUnthrottledIsFast(t *testing.T) {
	f := NewFabric(2, ProfileLocal, nil)
	defer f.Close()
	payload := tensor.New(512, 512)
	start := time.Now()
	f.Send(&Message{From: 0, To: 1, Kind: KindRep, Rows: payload})
	f.Mailbox(1).Wait(KindRep, 0, 0, 0, 0)
	if e := time.Since(start); e > 100*time.Millisecond {
		t.Fatalf("unthrottled delivery took %v", e)
	}
}

func TestFabricConcurrentAllToAll(t *testing.T) {
	const m = 8
	f := NewFabric(m, ProfileLocal, nil)
	defer f.Close()
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, j := range RingOrder(i, m) {
				rows := tensor.New(1, 1)
				rows.Set(0, 0, float32(i*100+j))
				f.Send(&Message{From: i, To: j, Kind: KindRep, Epoch: 7, Rows: rows})
			}
			for _, j := range RingOrder(i, m) {
				msg := f.Mailbox(i).Wait(KindRep, 7, 0, 0, j)
				if msg.Rows.At(0, 0) != float32(j*100+i) {
					t.Errorf("worker %d got %v from %d", i, msg.Rows.At(0, 0), j)
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestFabricRouteValidation(t *testing.T) {
	f := NewFabric(2, ProfileLocal, nil)
	defer f.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad route")
		}
	}()
	f.Send(&Message{From: 0, To: 5})
}

func TestMailboxDuplicatePanics(t *testing.T) {
	mb := newMailbox()
	msg := &Message{From: 0, Kind: KindRep}
	mb.deliver(msg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected duplicate panic")
		}
	}()
	mb.deliver(msg)
}

func TestRingOrderProperties(t *testing.T) {
	for m := 2; m <= 16; m++ {
		for i := 0; i < m; i++ {
			order := RingOrder(i, m)
			if len(order) != m-1 {
				t.Fatalf("ring order length %d", len(order))
			}
			seen := map[int]bool{i: true}
			for _, j := range order {
				if seen[j] {
					t.Fatalf("ring order repeats %d", j)
				}
				seen[j] = true
			}
		}
		// Collision-freedom: at slot j, all workers target distinct peers.
		for j := 0; j < m-1; j++ {
			targets := map[int]bool{}
			for i := 0; i < m; i++ {
				tgt := RingOrder(i, m)[j]
				if targets[tgt] {
					t.Fatalf("m=%d slot %d: two workers target %d", m, j, tgt)
				}
				targets[tgt] = true
			}
		}
	}
}

func TestNaiveOrderCollides(t *testing.T) {
	// Sanity: naive order sends everyone to worker 0 at slot 0 (except 0
	// itself) — the congestion ring scheduling avoids.
	m := 4
	hit0 := 0
	for i := 1; i < m; i++ {
		if NaiveOrder(i, m)[0] == 0 {
			hit0++
		}
	}
	if hit0 != m-1 {
		t.Fatalf("naive order slot0 hits on worker0 = %d", hit0)
	}
}

func TestLockFreeBufferPacksCorrectly(t *testing.T) {
	verts := []int32{10, 20, 30}
	b := NewLockFreeBuffer(verts, 2)
	b.WriteRow(30, []float32{3, 3})
	b.WriteRow(10, []float32{1, 1})
	b.WriteRow(20, []float32{2, 2})
	rows, ids := b.Finish()
	for i, v := range ids {
		want := float32(v / 10)
		if rows.At(i, 0) != want {
			t.Fatalf("row %d (vertex %d) = %v", i, v, rows.At(i, 0))
		}
	}
}

func TestLockFreeBufferUnknownVertexPanics(t *testing.T) {
	b := NewLockFreeBuffer([]int32{1}, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.WriteRow(99, []float32{0, 0})
}

func TestLockedBufferSortsByVertex(t *testing.T) {
	b := NewLockedBuffer(3, 1)
	b.WriteRow(30, []float32{3})
	b.WriteRow(10, []float32{1})
	b.WriteRow(20, []float32{2})
	rows, ids := b.Finish()
	want := []int32{10, 20, 30}
	for i, v := range ids {
		if v != want[i] || rows.At(i, 0) != float32(v/10) {
			t.Fatalf("locked buffer order wrong: %v", ids)
		}
	}
}

// Property: lock-free and locked buffers produce identical packed output for
// any permutation of writes, including under heavy concurrency.
func TestQuickBuffersEquivalent(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		n := int(n8%50) + 1
		rng := tensor.NewRNG(seed)
		verts := make([]int32, n)
		for i := range verts {
			verts[i] = int32(i * 3) // ascending unique
		}
		lf := NewLockFreeBuffer(verts, 4)
		lk := NewLockedBuffer(n, 4)
		perm := rng.Perm(n)
		var wg sync.WaitGroup
		for _, p := range perm {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				row := []float32{float32(p), float32(p * 2), float32(p * 3), float32(p * 4)}
				lf.WriteRow(verts[p], row)
				lk.WriteRow(verts[p], row)
			}(p)
		}
		wg.Wait()
		r1, v1 := lf.Finish()
		r2, v2 := lk.Finish()
		if len(v1) != len(v2) {
			return false
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				return false
			}
		}
		return r1.Equal(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNewEnqueuerSelects(t *testing.T) {
	if _, ok := NewEnqueuer(true, []int32{1}, 2).(*LockFreeBuffer); !ok {
		t.Fatal("lockFree=true gave wrong type")
	}
	if _, ok := NewEnqueuer(false, []int32{1}, 2).(*LockedBuffer); !ok {
		t.Fatal("lockFree=false gave wrong type")
	}
}

// Benchmark the two buffer strategies under parallel writes: the lock-free
// variant should win clearly, which is the paper's "L" ablation.
func benchmarkBuffer(b *testing.B, lockFree bool) {
	const n, dim = 4096, 64
	verts := make([]int32, n)
	for i := range verts {
		verts[i] = int32(i)
	}
	row := make([]float32, dim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := NewEnqueuer(lockFree, verts, dim)
		tensor.ParallelRows(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				buf.WriteRow(int32(v), row)
			}
		})
		buf.Finish()
	}
}

func BenchmarkLockFreeBuffer(b *testing.B) { benchmarkBuffer(b, true) }
func BenchmarkLockedBuffer(b *testing.B)   { benchmarkBuffer(b, false) }

// ---- Failure injection ----

func TestSendOnClosedFabricPanics(t *testing.T) {
	f := NewFabric(2, ProfileLocal, nil)
	f.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on closed fabric")
		}
	}()
	f.Send(&Message{From: 0, To: 1, Kind: KindRep, Rows: tensor.New(1, 1)})
}

func TestCloseDropsInFlightQuietly(t *testing.T) {
	// Messages sitting in pacers when the fabric closes are dropped; Close
	// must not hang or panic.
	slow := NetworkProfile{Name: "slow", BytesPerSec: 1e6}
	f := NewFabric(2, slow, nil)
	for i := 0; i < 10; i++ {
		f.Send(&Message{From: 0, To: 1, Kind: KindRep, Seq: i, Rows: tensor.New(64, 64)})
	}
	done := make(chan struct{})
	go func() {
		f.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with in-flight messages")
	}
}

func TestMailboxDeliveryAfterCloseIsDropped(t *testing.T) {
	mb := newMailbox()
	mb.close()
	mb.deliver(&Message{From: 0, Kind: KindRep}) // must not panic
}

func TestRingAllReduceSums(t *testing.T) {
	for _, m := range []int{2, 3, 5, 8} {
		f := NewFabric(m, ProfileLocal, nil)
		bufs := make([][]float32, m)
		const n = 37 // deliberately not divisible by m
		want := make([]float32, n)
		for i := range bufs {
			bufs[i] = make([]float32, n)
			for k := range bufs[i] {
				bufs[i][k] = float32(i*100 + k)
				want[k] += bufs[i][k]
			}
		}
		var wg sync.WaitGroup
		for i := 0; i < m; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				RingAllReduce(f, i, m, 7, bufs[i], nil)
			}(i)
		}
		wg.Wait()
		for i := 0; i < m; i++ {
			for k := range want {
				if bufs[i][k] != want[k] {
					t.Fatalf("m=%d worker %d elem %d: %v want %v", m, i, k, bufs[i][k], want[k])
				}
			}
		}
		f.Close()
	}
}

func TestRingAllReduceSingleWorkerNoOp(t *testing.T) {
	f := NewFabric(1, ProfileLocal, nil)
	defer f.Close()
	buf := []float32{1, 2, 3}
	RingAllReduce(f, 0, 1, 0, buf, nil)
	if buf[0] != 1 || buf[2] != 3 {
		t.Fatal("single-worker allreduce mutated buffer")
	}
}

// Property: ring all-reduce produces bit-identical buffers on all workers
// for random inputs (the replica-sync invariant).
func TestQuickRingAllReduceBitIdentical(t *testing.T) {
	f := func(seed uint64, m8, n8 uint8) bool {
		m := int(m8%6) + 2
		n := int(n8%50) + 1
		rng := tensor.NewRNG(seed)
		fab := NewFabric(m, ProfileLocal, nil)
		defer fab.Close()
		bufs := make([][]float32, m)
		for i := range bufs {
			bufs[i] = make([]float32, n)
			for k := range bufs[i] {
				bufs[i][k] = rng.Float32()*2 - 1
			}
		}
		var wg sync.WaitGroup
		for i := 0; i < m; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				RingAllReduce(fab, i, m, 3, bufs[i], nil)
			}(i)
		}
		wg.Wait()
		for i := 1; i < m; i++ {
			for k := range bufs[0] {
				if bufs[i][k] != bufs[0][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// ---- Wire codec & TCP fabric ----

func TestCodecRoundTrip(t *testing.T) {
	msgs := []*Message{
		{From: 1, To: 2, Kind: KindRep, Epoch: 7, Layer: 2, Seq: 3,
			Vertices: []int32{5, 9, 100}, Rows: tensor.FromRows([][]float32{{1.5, -2}, {0, 3e9}, {-0.25, 1e-9}})},
		{From: 0, To: 1, Kind: KindGrad, Epoch: -1, Layer: 0, Seq: 0},
		{From: 3, To: 0, Kind: KindAllReduce, Epoch: 1 << 40, Vertices: nil, Rows: tensor.New(0, 5)},
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for _, m := range msgs {
		if err := encodeMessage(w, m); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	for i, want := range msgs {
		got, err := decodeMessage(r)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.From != want.From || got.To != want.To || got.Kind != want.Kind ||
			got.Epoch != want.Epoch || got.Layer != want.Layer || got.Seq != want.Seq {
			t.Fatalf("msg %d header: %+v vs %+v", i, got, want)
		}
		if len(got.Vertices) != len(want.Vertices) {
			t.Fatalf("msg %d vertices: %v vs %v", i, got.Vertices, want.Vertices)
		}
		for k := range want.Vertices {
			if got.Vertices[k] != want.Vertices[k] {
				t.Fatalf("msg %d vertex %d", i, k)
			}
		}
		if (got.Rows == nil) != (want.Rows == nil) {
			t.Fatalf("msg %d rows nil mismatch", i)
		}
		if want.Rows != nil && !got.Rows.Equal(want.Rows) {
			t.Fatalf("msg %d rows differ", i)
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	r := bufio.NewReader(bytes.NewReader([]byte("this is not a message at all........................")))
	if _, err := decodeMessage(r); err == nil {
		t.Fatal("expected magic error")
	}
	// Truncated stream after a valid header start.
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := encodeMessage(w, &Message{From: 0, To: 1, Rows: tensor.New(4, 4)}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := decodeMessage(bufio.NewReader(bytes.NewReader(trunc))); err == nil {
		t.Fatal("expected truncation error")
	}
}

// Property: codec round-trips arbitrary messages bit-exactly.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed uint64, kind uint8, nv, r8, c8 uint8) bool {
		rng := tensor.NewRNG(seed)
		m := &Message{
			From: int(rng.Intn(16)), To: int(rng.Intn(16)), Kind: MsgKind(kind % 5),
			Epoch: int(rng.Uint64() % (1 << 30)), Layer: int(rng.Intn(8)), Seq: int(rng.Intn(64)),
		}
		for i := 0; i < int(nv%20); i++ {
			m.Vertices = append(m.Vertices, int32(rng.Uint64()))
		}
		rows, cols := int(r8%8), int(c8%8)
		if rows*cols > 0 {
			m.Rows = tensor.RandNormal(rows, cols, 0, 100, rng)
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if encodeMessage(w, m) != nil || w.Flush() != nil {
			return false
		}
		got, err := decodeMessage(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		if got.From != m.From || got.Kind != m.Kind || got.Epoch != m.Epoch ||
			len(got.Vertices) != len(m.Vertices) {
			return false
		}
		if m.Rows != nil && !got.Rows.Equal(m.Rows) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPFabricAllToAll(t *testing.T) {
	const m = 5
	f, err := NewTCPFabric(m, ProfileLocal, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumWorkers() != m {
		t.Fatal("worker count")
	}
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, j := range RingOrder(i, m) {
				rows := tensor.New(2, 3)
				rows.Fill(float32(i*100 + j))
				f.Send(&Message{From: i, To: j, Kind: KindRep, Epoch: 3,
					Vertices: []int32{int32(i)}, Rows: rows})
			}
			for _, j := range RingOrder(i, m) {
				msg := f.Mailbox(i).Wait(KindRep, 3, 0, 0, j)
				if msg.Rows.At(0, 0) != float32(j*100+i) || msg.Vertices[0] != int32(j) {
					t.Errorf("worker %d bad message from %d", i, j)
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPFabricSelfSend(t *testing.T) {
	f, err := NewTCPFabric(2, ProfileLocal, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Send(&Message{From: 1, To: 1, Kind: KindRep, Rows: tensor.New(1, 1)})
	if f.Mailbox(1).Wait(KindRep, 0, 0, 0, 1) == nil {
		t.Fatal("self send lost")
	}
}

func TestTCPRingAllReduce(t *testing.T) {
	const m = 4
	f, err := NewTCPFabric(m, ProfileLocal, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	bufs := make([][]float32, m)
	want := make([]float32, 10)
	for i := range bufs {
		bufs[i] = make([]float32, 10)
		for k := range bufs[i] {
			bufs[i][k] = float32(i + k)
			want[k] += bufs[i][k]
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			RingAllReduce(f, i, m, 9, bufs[i], nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < m; i++ {
		for k := range want {
			if bufs[i][k] != want[k] {
				t.Fatalf("worker %d elem %d: %v want %v", i, k, bufs[i][k], want[k])
			}
		}
	}
}

func TestTCPFabricDoubleCloseSafe(t *testing.T) {
	f, err := NewTCPFabric(2, ProfileLocal, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	f.Close() // idempotent
}
