package comm

import (
	"fmt"
	"sort"
	"sync"

	"neutronstar/internal/tensor"
)

// Enqueuer assembles the rows a worker is about to send to one peer.
// Multiple compute threads call WriteRow concurrently; Finish returns the
// packed tensor and the vertex order it was packed in.
//
// Two implementations exist, matching the paper's §4.3 ablation:
// LockFreeBuffer (the "L" optimisation — pre-indexed positions, no locks)
// and LockedBuffer (the mutex-guarded baseline).
type Enqueuer interface {
	// WriteRow stores the row for the given global vertex id.
	WriteRow(vertex int32, row []float32)
	// Finish returns the packed rows and their vertex ids. The returned
	// tensor row i corresponds to vertex ids[i]. Finish must be called
	// exactly once, after all WriteRow calls completed.
	Finish() (*tensor.Tensor, []int32)
}

// LockFreeBuffer is the lock-free parallel enqueue of §4.3: the destination
// vertex set is known before the layer executes, so every vertex's row
// position is precomputed; concurrent writers touch disjoint rows and no
// synchronisation is needed.
type LockFreeBuffer struct {
	rows     *tensor.Tensor
	vertices []int32
	pos      map[int32]int32
}

// NewLockFreeBuffer builds a buffer for the given destination vertex set
// (ascending or not; order is preserved) and row width dim.
func NewLockFreeBuffer(vertices []int32, dim int) *LockFreeBuffer {
	b := &LockFreeBuffer{
		rows:     tensor.New(len(vertices), dim),
		vertices: vertices,
		pos:      make(map[int32]int32, len(vertices)),
	}
	for i, v := range vertices {
		b.pos[v] = int32(i)
	}
	return b
}

// WriteRow copies row into the slot precomputed for vertex. It is safe for
// concurrent use by multiple goroutines writing distinct vertices.
func (b *LockFreeBuffer) WriteRow(vertex int32, row []float32) {
	p, ok := b.pos[vertex]
	if !ok {
		panic(fmt.Sprintf("comm: vertex %d not in send buffer", vertex))
	}
	copy(b.rows.Row(int(p)), row)
}

// Finish returns the packed tensor and vertex ids.
func (b *LockFreeBuffer) Finish() (*tensor.Tensor, []int32) {
	return b.rows, b.vertices
}

// LockedBuffer is the baseline enqueue: a mutex-guarded append queue that is
// sorted and compacted at Finish, modeling the lock-contended message queues
// of prior graph systems the paper contrasts against.
type LockedBuffer struct {
	mu       sync.Mutex
	dim      int
	vertices []int32
	rows     [][]float32
}

// NewLockedBuffer builds an empty locked buffer for rows of width dim.
// capacity hints the expected number of rows.
func NewLockedBuffer(capacity, dim int) *LockedBuffer {
	return &LockedBuffer{
		dim:      dim,
		vertices: make([]int32, 0, capacity),
		rows:     make([][]float32, 0, capacity),
	}
}

// WriteRow appends the row under the mutex, copying it (the caller may reuse
// the slice).
func (b *LockedBuffer) WriteRow(vertex int32, row []float32) {
	cp := make([]float32, len(row))
	copy(cp, row)
	b.mu.Lock()
	b.vertices = append(b.vertices, vertex)
	b.rows = append(b.rows, cp)
	b.mu.Unlock()
}

// Finish sorts the accumulated rows by vertex id and packs them.
func (b *LockedBuffer) Finish() (*tensor.Tensor, []int32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := make([]int, len(b.vertices))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return b.vertices[idx[i]] < b.vertices[idx[j]] })
	out := tensor.New(len(idx), b.dim)
	verts := make([]int32, len(idx))
	for i, j := range idx {
		copy(out.Row(i), b.rows[j])
		verts[i] = b.vertices[j]
	}
	return out, verts
}

// NewEnqueuer returns the lock-free buffer when lockFree is set, otherwise
// the locked baseline. vertices is the exact destination set.
func NewEnqueuer(lockFree bool, vertices []int32, dim int) Enqueuer {
	if lockFree {
		return NewLockFreeBuffer(vertices, dim)
	}
	return NewLockedBuffer(len(vertices), dim)
}
