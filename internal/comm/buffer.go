package comm

import (
	"fmt"
	"sort"
	"sync"

	"neutronstar/internal/tensor"
)

// Enqueuer assembles the rows a worker is about to send to one peer.
// Multiple compute threads call WriteRow or WriteRowAt concurrently; Finish
// returns the packed tensor and the vertex order it was packed in.
//
// Two implementations exist, matching the paper's §4.3 ablation:
// LockFreeBuffer (the "L" optimisation — pre-indexed positions, no locks)
// and LockedBuffer (the mutex-guarded baseline).
type Enqueuer interface {
	// WriteRow stores the row for the given global vertex id.
	WriteRow(vertex int32, row []float32)
	// WriteRowAt stores the row for the i-th vertex of the destination set
	// the buffer was built with — the fast path for callers already iterating
	// that set by index, which skips any vertex-to-position lookup.
	WriteRowAt(i int, row []float32)
	// Finish returns the packed rows and their vertex ids. The returned
	// tensor row i corresponds to vertex ids[i]. Finish must be called
	// exactly once, after all WriteRow calls completed.
	Finish() (*tensor.Tensor, []int32)
}

// LockFreeBuffer is the lock-free parallel enqueue of §4.3: the destination
// vertex set is known before the layer executes, so every vertex's row
// position is fixed up front; concurrent writers touch disjoint rows and no
// synchronisation is needed.
type LockFreeBuffer struct {
	rows     *tensor.Tensor
	vertices []int32
	// pos maps vertex id to row position, built lazily on the first WriteRow:
	// callers that only use WriteRowAt (position == loop index) never pay for
	// the map at all.
	posOnce sync.Once
	pos     map[int32]int32
}

// NewLockFreeBuffer builds a buffer for the given destination vertex set
// (ascending or not; order is preserved) and row width dim.
func NewLockFreeBuffer(vertices []int32, dim int) *LockFreeBuffer {
	return NewLockFreeBufferArena(vertices, dim, nil)
}

// NewLockFreeBufferArena is NewLockFreeBuffer drawing the packed-row storage
// from arena (nil arena allocates plainly). The arena owner must not release
// until the message built from this buffer is fully consumed.
func NewLockFreeBufferArena(vertices []int32, dim int, arena *tensor.Arena) *LockFreeBuffer {
	return &LockFreeBuffer{
		rows:     arena.Get(len(vertices), dim),
		vertices: vertices,
	}
}

func (b *LockFreeBuffer) buildPos() {
	b.pos = make(map[int32]int32, len(b.vertices))
	for i, v := range b.vertices {
		b.pos[v] = int32(i)
	}
}

// WriteRow copies row into the slot precomputed for vertex. It is safe for
// concurrent use by multiple goroutines writing distinct vertices.
func (b *LockFreeBuffer) WriteRow(vertex int32, row []float32) {
	b.posOnce.Do(b.buildPos)
	p, ok := b.pos[vertex]
	if !ok {
		panic(fmt.Sprintf("comm: vertex %d not in send buffer", vertex))
	}
	copy(b.rows.Row(int(p)), row)
}

// WriteRowAt copies row into slot i (the position of the i-th vertex in the
// construction-time set). Safe for concurrent use on distinct indices.
func (b *LockFreeBuffer) WriteRowAt(i int, row []float32) {
	copy(b.rows.Row(i), row)
}

// Finish returns the packed tensor and vertex ids.
func (b *LockFreeBuffer) Finish() (*tensor.Tensor, []int32) {
	return b.rows, b.vertices
}

// LockedBuffer is the baseline enqueue: a mutex-guarded append queue that is
// sorted and compacted at Finish, modeling the lock-contended message queues
// of prior graph systems the paper contrasts against.
type LockedBuffer struct {
	mu       sync.Mutex
	dim      int
	vertices []int32
	rows     [][]float32
	// universe is the destination vertex set when known at construction;
	// WriteRowAt resolves index i through it. Nil when built without one.
	universe []int32
	// arena, when non-nil, supplies the packed tensor at Finish.
	arena *tensor.Arena
	// scratch backs the first capacity row copies with one contiguous block,
	// so WriteRow claims a slot instead of allocating per row; writes beyond
	// the capacity hint fall back to individual allocations.
	scratch *tensor.Tensor
	used    int
}

// NewLockedBuffer builds an empty locked buffer for rows of width dim.
// capacity hints the expected number of rows.
func NewLockedBuffer(capacity, dim int) *LockedBuffer {
	return &LockedBuffer{
		dim:      dim,
		vertices: make([]int32, 0, capacity),
		rows:     make([][]float32, 0, capacity),
		scratch:  tensor.New(capacity, dim),
	}
}

// WriteRow appends the row under the mutex, copying it (the caller may reuse
// the slice).
func (b *LockedBuffer) WriteRow(vertex int32, row []float32) {
	b.mu.Lock()
	var cp []float32
	if b.used < b.scratch.Rows() {
		cp = b.scratch.Row(b.used)
		b.used++
	} else {
		cp = make([]float32, len(row))
	}
	copy(cp, row)
	b.vertices = append(b.vertices, vertex)
	b.rows = append(b.rows, cp)
	b.mu.Unlock()
}

// WriteRowAt appends the row for the i-th vertex of the construction-time
// set. Panics when the buffer was built without one (NewLockedBuffer).
func (b *LockedBuffer) WriteRowAt(i int, row []float32) {
	if b.universe == nil {
		panic("comm: WriteRowAt on a LockedBuffer built without a vertex set")
	}
	b.WriteRow(b.universe[i], row)
}

// Finish sorts the accumulated rows by vertex id and packs them.
func (b *LockedBuffer) Finish() (*tensor.Tensor, []int32) {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := make([]int, len(b.vertices))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return b.vertices[idx[i]] < b.vertices[idx[j]] })
	out := b.arena.Get(len(idx), b.dim)
	verts := make([]int32, len(idx))
	for i, j := range idx {
		copy(out.Row(i), b.rows[j])
		verts[i] = b.vertices[j]
	}
	return out, verts
}

// NewEnqueuer returns the lock-free buffer when lockFree is set, otherwise
// the locked baseline. vertices is the exact destination set.
func NewEnqueuer(lockFree bool, vertices []int32, dim int) Enqueuer {
	return NewEnqueuerArena(lockFree, vertices, dim, nil)
}

// NewEnqueuerArena is NewEnqueuer with payload storage drawn from arena
// (nil arena allocates plainly). The arena owner must not release until the
// message built from this buffer is fully consumed — in the engine, the
// epoch barrier.
func NewEnqueuerArena(lockFree bool, vertices []int32, dim int, arena *tensor.Arena) Enqueuer {
	if lockFree {
		return NewLockFreeBufferArena(vertices, dim, arena)
	}
	b := &LockedBuffer{
		dim:      dim,
		vertices: make([]int32, 0, len(vertices)),
		rows:     make([][]float32, 0, len(vertices)),
		scratch:  arena.Get(len(vertices), dim),
		universe: vertices,
		arena:    arena,
	}
	return b
}
