package comm

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"neutronstar/internal/metrics"
)

// TCPFabric moves the training protocol's messages over real loopback TCP
// connections: a full mesh of m*(m-1)/2 sockets, one writer goroutine per
// directed link, and a reader goroutine per socket delivering into the same
// tagged mailboxes the channel fabric uses. It exists to demonstrate that
// nothing in the engines depends on shared memory — the entire protocol
// (master–mirror exchange, ring all-reduce, parameter server) serialises
// cleanly — and to measure real codec + kernel-socket costs.
//
// Pacing: the NetworkProfile still applies on the egress side (loopback TCP
// is far faster than any cluster fabric being modeled); set ProfileLocal to
// measure raw socket throughput.
type TCPFabric struct {
	m       int
	profile NetworkProfile
	coll    *metrics.Collector

	inbox []*Mailbox
	// out[i][j] is the outbound queue of link i->j.
	out    [][]chan *Message
	conns  []net.Conn
	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// NewTCPFabric builds the full mesh over 127.0.0.1 ephemeral ports.
func NewTCPFabric(m int, profile NetworkProfile, coll *metrics.Collector) (*TCPFabric, error) {
	f := &TCPFabric{
		m: m, profile: profile, coll: coll,
		inbox:  make([]*Mailbox, m),
		out:    make([][]chan *Message, m),
		closed: make(chan struct{}),
	}
	for i := 0; i < m; i++ {
		f.inbox[i] = newMailbox()
		f.out[i] = make([]chan *Message, m)
		for j := 0; j < m; j++ {
			if i != j {
				f.out[i][j] = make(chan *Message, queueDepth)
			}
		}
	}

	// One listener per worker; worker i dials workers j > i. Each TCP
	// connection carries both directions of one (i, j) pair.
	listeners := make([]net.Listener, m)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.shutdownListeners(listeners)
			return nil, fmt.Errorf("comm: tcp listen: %w", err)
		}
		listeners[i] = ln
	}
	type accepted struct {
		owner int
		conn  net.Conn
		peer  int
		err   error
	}
	acceptCh := make(chan accepted, m*m)
	var acceptWG sync.WaitGroup
	for j := 0; j < m; j++ {
		expect := j // worker j accepts from workers i < j
		acceptWG.Add(1)
		go func(j int) {
			defer acceptWG.Done()
			for k := 0; k < expect; k++ {
				conn, err := listeners[j].Accept()
				if err != nil {
					acceptCh <- accepted{err: err}
					return
				}
				// The dialer announces its id as the first byte.
				var idb [1]byte
				if _, err := conn.Read(idb[:]); err != nil {
					acceptCh <- accepted{err: err}
					return
				}
				acceptCh <- accepted{owner: j, conn: conn, peer: int(idb[0])}
			}
		}(j)
	}
	type link struct{ a, b int } // a < b
	connOf := make(map[link]net.Conn)
	var dialErr error
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			conn, err := net.Dial("tcp", listeners[j].Addr().String())
			if err != nil {
				dialErr = err
				break
			}
			if _, err := conn.Write([]byte{byte(i)}); err != nil {
				dialErr = err
				break
			}
			connOf[link{i, j}] = conn
		}
	}
	acceptWG.Wait()
	accepts := make(map[link]net.Conn)
	close(acceptCh)
	for a := range acceptCh {
		if a.err != nil {
			dialErr = a.err
			continue
		}
		accepts[link{a.peer, a.owner}] = a.conn
	}
	f.shutdownListeners(listeners)
	if dialErr != nil {
		for _, c := range connOf {
			c.Close()
		}
		for _, c := range accepts {
			c.Close()
		}
		return nil, fmt.Errorf("comm: tcp mesh setup: %w", dialErr)
	}

	// Start one writer per directed link and one reader per side per conn.
	// Worker i holds the dialer end of (i,j); worker j the accepted end.
	start := func(owner, peer int, conn net.Conn) {
		f.conns = append(f.conns, conn)
		f.wg.Add(2)
		go f.writeLoop(owner, peer, conn)
		go f.readLoop(owner, conn)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			start(i, j, connOf[link{i, j}])
			start(j, i, accepts[link{i, j}])
		}
	}
	return f, nil
}

func (f *TCPFabric) shutdownListeners(ls []net.Listener) {
	for _, ln := range ls {
		if ln != nil {
			ln.Close()
		}
	}
}

// NumWorkers returns the mesh size.
func (f *TCPFabric) NumWorkers() int { return f.m }

// Mailbox returns worker i's mailbox.
func (f *TCPFabric) Mailbox(i int) *Mailbox { return f.inbox[i] }

// Send routes msg: self-sends deliver directly, remote sends enqueue on the
// directed link's writer.
func (f *TCPFabric) Send(msg *Message) {
	if msg.To < 0 || msg.To >= f.m || msg.From < 0 || msg.From >= f.m {
		panic(fmt.Sprintf("comm: route %d->%d outside [0,%d)", msg.From, msg.To, f.m))
	}
	if msg.From == msg.To {
		f.inbox[msg.To].deliver(msg)
		return
	}
	f.coll.AddSent(int64(msg.WireBytes()))
	recordSend(msg)
	select {
	case f.out[msg.From][msg.To] <- msg:
	case <-f.closed:
		panic("comm: Send on closed TCP fabric")
	}
}

// writeLoop serialises link owner->peer: pace, encode, flush.
func (f *TCPFabric) writeLoop(owner, peer int, conn net.Conn) {
	defer f.wg.Done()
	w := bufio.NewWriterSize(conn, 1<<16)
	for {
		select {
		case msg := <-f.out[owner][peer]:
			if f.profile.BytesPerSec > 0 {
				d := time.Duration(float64(msg.WireBytes()) / f.profile.BytesPerSec * float64(time.Second))
				time.Sleep(d)
			}
			if f.profile.Latency > 0 {
				time.Sleep(f.profile.Latency)
			}
			if err := encodeMessage(w, msg); err != nil {
				return // connection torn down
			}
			// The decoded copy on the receive side carries no send stamp, so
			// TCP send latency is measured up to the socket write.
			if !msg.sentAt.IsZero() {
				obsSendLatency.Observe(time.Since(msg.sentAt).Seconds())
			}
			// Flush when the queue drains so batches coalesce.
			if len(f.out[owner][peer]) == 0 {
				if err := w.Flush(); err != nil {
					return
				}
			}
		case <-f.closed:
			return
		}
	}
}

// readLoop decodes owner's inbound stream on one connection.
func (f *TCPFabric) readLoop(owner int, conn net.Conn) {
	defer f.wg.Done()
	r := bufio.NewReaderSize(conn, 1<<16)
	for {
		msg, err := decodeMessage(r)
		if err != nil {
			return // closed or corrupt; teardown path
		}
		f.coll.AddReceived(int64(msg.WireBytes()))
		recordDelivered(owner, msg)
		f.inbox[owner].deliver(msg)
	}
}

// Close tears the mesh down; in-flight messages are dropped.
func (f *TCPFabric) Close() {
	f.once.Do(func() {
		close(f.closed)
		for _, c := range f.conns {
			c.Close()
		}
		f.wg.Wait()
		for _, mb := range f.inbox {
			mb.close()
		}
	})
}
