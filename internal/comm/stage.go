package comm

import (
	"sync/atomic"
	"time"

	"neutronstar/internal/obs"
)

// Flight-recorder byte attribution. The exactly-once contract under faults:
//
//   - Send side: counted by the engine's recording wrapper, which sits
//     OUTSIDE FaultyFabric — one count per logical Send, no matter how many
//     times the fault layer retransmits or duplicates the message underneath.
//   - Receive side: counted in Mailbox.deliver after the dedup check, so a
//     duplicate that the at-least-once mailbox drops is never counted, and
//     whichever copy arrives first is counted exactly once.
//
// Self-sends (From == To) bypass the network and are not attributed on
// either side — local dependency handling is free, as in the real system.

// StageOfMsg maps a message to the flight-recorder stage and layer cell its
// bytes belong to. recv selects the receiver-side stage for dependency
// traffic (send and receive block different stages of different workers).
func StageOfMsg(msg *Message, recv bool) (obs.Stage, int) {
	switch msg.Kind {
	case KindGrad:
		// Mirror-gradient exchange: one stage covers both directions.
		return obs.StageMirrorScatter, msg.Layer
	case KindAllReduce:
		// The all-reduce ring and the parameter server reuse Layer as a
		// step/phase tag, so their traffic always lands in layer cell 0.
		return obs.StageGradSync, 0
	case KindSlice:
		// Tensor-parallel collectives: Seq 0 (slice-scatter / block
		// all-gather) and Seq 1 (re-gather) move forward representations,
		// Seq 2 (re-scatter) and Seq 3 (gradient scatter) move backward
		// gradients — the same stages the per-vertex protocol uses, so
		// DepTP traffic lands in the existing stage taxonomy.
		if msg.Seq >= 2 {
			return obs.StageMirrorScatter, msg.Layer
		}
		if recv {
			return obs.StageDepFetchRecv, msg.Layer
		}
		return obs.StageDepFetchSend, msg.Layer
	default: // KindRep, KindBlock, KindSample: dependency fetch traffic.
		if recv {
			return obs.StageDepFetchRecv, msg.Layer
		}
		return obs.StageDepFetchSend, msg.Layer
	}
}

// stageRecorder binds a mailbox to one worker's cells of a flight recorder.
type stageRecorder struct {
	rec    *obs.FlightRecorder
	worker int
}

// stageRec is published atomically so SetStageRecorder is safe even if a
// fabric goroutine is already delivering.
type stageRec struct {
	p atomic.Pointer[stageRecorder]
}

// SetStageRecorder attributes this mailbox's future deliveries to worker's
// receive-side cells of rec. A nil rec detaches. Works identically for the
// channel fabric, the TCP fabric and any fault-injecting wrapper, because
// every path funnels into deliver.
func (mb *Mailbox) SetStageRecorder(rec *obs.FlightRecorder, worker int) {
	if rec == nil {
		mb.stage.p.Store(nil)
		return
	}
	mb.stage.p.Store(&stageRecorder{rec: rec, worker: worker})
}

// recordDelivery counts one deduplicated delivery. Called from deliver with
// mb.mu held, after the dedup and closed checks.
func (mb *Mailbox) recordDelivery(msg *Message) {
	sr := mb.stage.p.Load()
	if sr == nil || msg.From == sr.worker {
		return
	}
	stage, layer := StageOfMsg(msg, true)
	sr.rec.AddTraffic(sr.worker, stage, layer, int64(msg.WireBytes()), 1)
}

// recordWaitMatch reports one matched Wait to the flight recorder's causal
// log: the receiver, the message's routing identity and trace context, and
// the [waitStart, now] interval the receiver's goroutine spent blocked on it.
// Runs on the receiver's own goroutine, after the message is in hand, so it
// never holds mb.mu. Self-sends are not causal edges and are skipped, exactly
// mirroring the byte-attribution contract above.
func (mb *Mailbox) recordWaitMatch(sr *stageRecorder, msg *Message, waitStart time.Time) {
	if sr == nil || msg.From == sr.worker {
		return
	}
	sr.rec.OnWaitMatch(sr.worker, msg.From, msg.Kind.String(), msg.Layer, msg.Seq,
		msg.Trace.SpanID, msg.Trace.SentUnixNano, waitStart, time.Now())
}
