package comm

import (
	"testing"
	"time"

	"neutronstar/internal/obs"
	"neutronstar/internal/tensor"
)

func TestStageOfMsg(t *testing.T) {
	cases := []struct {
		kind  MsgKind
		layer int
		recv  bool
		stage obs.Stage
		cell  int
	}{
		{KindRep, 2, false, obs.StageDepFetchSend, 2},
		{KindRep, 2, true, obs.StageDepFetchRecv, 2},
		{KindBlock, 1, false, obs.StageDepFetchSend, 1},
		{KindSample, 1, true, obs.StageDepFetchRecv, 1},
		{KindGrad, 2, false, obs.StageMirrorScatter, 2},
		{KindGrad, 2, true, obs.StageMirrorScatter, 2},
		// Layer is a phase/step tag for all-reduce traffic, never a cell.
		{KindAllReduce, 7, false, obs.StageGradSync, 0},
		{KindAllReduce, 2, true, obs.StageGradSync, 0},
	}
	for _, c := range cases {
		stage, cell := StageOfMsg(&Message{Kind: c.kind, Layer: c.layer}, c.recv)
		if stage != c.stage || cell != c.cell {
			t.Fatalf("StageOfMsg(%v, layer=%d, recv=%v) = (%v, %d), want (%v, %d)",
				c.kind, c.layer, c.recv, stage, cell, c.stage, c.cell)
		}
	}
}

// sendCounted mimics the engine's recording wrapper: one send-side count per
// logical Send, taken before the (possibly faulty) fabric sees the message.
func sendCounted(rec *obs.FlightRecorder, f Network, msg *Message) {
	if msg.From != msg.To {
		stage, layer := StageOfMsg(msg, false)
		rec.AddTraffic(msg.From, stage, layer, int64(msg.WireBytes()), 1)
	}
	f.Send(msg)
}

// TestStageByteConservationUnderFaults injects 5% drops and 5% duplicates
// and asserts exact byte conservation between send-side and receive-side
// attribution: retransmissions and duplicate deliveries must count toward
// the originating stage exactly once.
func TestStageByteConservationUnderFaults(t *testing.T) {
	const (
		workers = 3
		perPair = 40
	)
	spec, err := ParseFaultSpec("drop=0.05,dup=0.05,seed=11")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewFlightRecorder()
	rec.BeginEpoch(1, workers, 2)
	ff := NewFaultyFabric(NewFabric(workers, ProfileLocal, nil), spec)
	for i := 0; i < workers; i++ {
		ff.Mailbox(i).SetStageRecorder(rec, i)
	}

	var wantRepBytes, wantGradBytes int64
	for from := 0; from < workers; from++ {
		for to := 0; to < workers; to++ {
			if from == to {
				continue
			}
			for k := 0; k < perPair; k++ {
				rows := tensor.New(2, 8)
				rows.Fill(float32(k))
				rep := &Message{From: from, To: to, Kind: KindRep,
					Epoch: 1, Layer: 1, Seq: k, Rows: rows}
				wantRepBytes += int64(rep.WireBytes())
				sendCounted(rec, ff, rep)
				grad := &Message{From: from, To: to, Kind: KindGrad,
					Epoch: 1, Layer: 2, Seq: k, Rows: tensor.New(1, 4)}
				wantGradBytes += int64(grad.WireBytes())
				sendCounted(rec, ff, grad)
			}
		}
	}
	// Drain: every logical message must arrive despite the injected faults.
	for to := 0; to < workers; to++ {
		mb := ff.Mailbox(to)
		for from := 0; from < workers; from++ {
			if from == to {
				continue
			}
			for k := 0; k < perPair; k++ {
				if mb.Wait(KindRep, 1, 1, k, from) == nil {
					t.Fatalf("lost rep %d->%d seq %d", from, to, k)
				}
				if mb.Wait(KindGrad, 1, 2, k, from) == nil {
					t.Fatalf("lost grad %d->%d seq %d", from, to, k)
				}
			}
		}
	}
	rec.EndEpoch(time.Second, 0)
	ff.Close()

	recs := rec.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	r := &recs[0]
	wantMsgs := int64(workers * (workers - 1) * perPair)

	// Dependency traffic: sender stage and receiver stage must balance to
	// the byte — a retransmit counted twice, or a dropped-then-retried
	// message counted zero times, breaks this equality.
	if got := r.StageBytes("dep_fetch_send"); got != wantRepBytes {
		t.Fatalf("send bytes = %d, want %d", got, wantRepBytes)
	}
	if got := r.StageBytes("dep_fetch_recv"); got != wantRepBytes {
		t.Fatalf("recv bytes = %d, want %d (conservation broken)", got, wantRepBytes)
	}
	if got := r.StageMsgs("dep_fetch_send"); got != wantMsgs {
		t.Fatalf("send msgs = %d, want %d", got, wantMsgs)
	}
	if got := r.StageMsgs("dep_fetch_recv"); got != wantMsgs {
		t.Fatalf("recv msgs = %d, want %d", got, wantMsgs)
	}
	// Mirror-gradient traffic shares one stage for both directions, so the
	// stage total must be exactly send + receive = 2× the logical volume.
	if got := r.StageBytes("mirror_scatter"); got != 2*wantGradBytes {
		t.Fatalf("mirror_scatter bytes = %d, want %d", got, 2*wantGradBytes)
	}
	if got := r.StageMsgs("mirror_scatter"); got != 2*wantMsgs {
		t.Fatalf("mirror_scatter msgs = %d, want %d", got, 2*wantMsgs)
	}
}

// TestStageSelfSendNotAttributed: From==To bypasses the network and must not
// contribute to either side's cells.
func TestStageSelfSendNotAttributed(t *testing.T) {
	rec := obs.NewFlightRecorder()
	rec.BeginEpoch(1, 1, 1)
	f := NewFabric(1, ProfileLocal, nil)
	defer f.Close()
	f.Mailbox(0).SetStageRecorder(rec, 0)
	msg := &Message{From: 0, To: 0, Kind: KindRep, Epoch: 1, Layer: 1, Rows: tensor.New(1, 4)}
	sendCounted(rec, f, msg)
	if f.Mailbox(0).Wait(KindRep, 1, 1, 0, 0) == nil {
		t.Fatal("self-send lost")
	}
	rec.EndEpoch(time.Millisecond, 0)
	if got := rec.Snapshot()[0].TotalBytes(); got != 0 {
		t.Fatalf("self-send attributed %d bytes", got)
	}
}

// TestStageRecorderTCPFabric: the mailbox-level hook covers the TCP path for
// free, because readLoop delivery funnels into the same deliver.
func TestStageRecorderTCPFabric(t *testing.T) {
	rec := obs.NewFlightRecorder()
	rec.BeginEpoch(1, 2, 1)
	f, err := NewTCPFabric(2, ProfileLocal, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ {
		f.Mailbox(i).SetStageRecorder(rec, i)
	}
	msg := &Message{From: 0, To: 1, Kind: KindRep, Epoch: 1, Layer: 1,
		Vertices: []int32{3}, Rows: tensor.New(1, 4)}
	want := int64(msg.WireBytes())
	sendCounted(rec, f, msg)
	got := f.Mailbox(1).Wait(KindRep, 1, 1, 0, 0)
	if got == nil {
		t.Fatal("message lost")
	}
	rec.EndEpoch(time.Millisecond, 0)
	r := rec.Snapshot()[0]
	if b := r.StageBytes("dep_fetch_recv"); b != want {
		t.Fatalf("tcp recv bytes = %d, want %d", b, want)
	}
	if b := r.StageBytes("dep_fetch_send"); b != want {
		t.Fatalf("tcp send bytes = %d, want %d", b, want)
	}
}
