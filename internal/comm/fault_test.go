package comm

import (
	"strings"
	"testing"
	"time"

	"neutronstar/internal/tensor"
)

func TestParseFaultSpec(t *testing.T) {
	s, err := ParseFaultSpec("drop=0.05, jitter=2ms, rep.drop=0.2, grad.dup=0.5, seed=7, retries=4, timeout=1ms")
	if err != nil {
		t.Fatal(err)
	}
	if s.Default.Drop != 0.05 || s.Default.Jitter != 2*time.Millisecond {
		t.Fatalf("baseline rule: %+v", s.Default)
	}
	if r := s.Rule(KindRep); r.Drop != 0.2 || r.Jitter != 2*time.Millisecond {
		t.Fatalf("rep override must keep the baseline jitter: %+v", r)
	}
	if r := s.Rule(KindGrad); r.Dup != 0.5 || r.Drop != 0.05 {
		t.Fatalf("grad override: %+v", r)
	}
	if r := s.Rule(KindAllReduce); r != s.Default {
		t.Fatalf("unoverridden kind should get the baseline, got %+v", r)
	}
	if s.Seed != 7 || s.MaxRetries != 4 || s.RetryTimeout != time.Millisecond {
		t.Fatalf("globals: %+v", s)
	}

	// Clause order must not matter for overrides.
	s2, err := ParseFaultSpec("rep.drop=0.2,drop=0.05")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Rule(KindRep).Drop != 0.2 || s2.Rule(KindGrad).Drop != 0.05 {
		t.Fatalf("order-dependent overrides: %+v", s2)
	}
}

func TestParseFaultSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"drop",
		"drop=1.5",
		"drop=-0.1",
		"dup=2",
		"delay=-1ms",
		"bogus=1",
		"tcp.drop=0.1",
		"rep.seed=1",
		"retries=0",
		"timeout=0s",
		"seed=abc",
	} {
		if _, err := ParseFaultSpec(spec); err == nil {
			t.Errorf("spec %q was accepted", spec)
		}
	}
}

// sendAll pushes n uniquely keyed messages 0->1 and returns after they are
// all matched by the receiver.
func sendAll(t *testing.T, net Network, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rows := tensor.FromSlice(1, 2, []float32{float32(i), float32(-i)})
		net.Send(&Message{From: 0, To: 1, Kind: KindRep, Epoch: 1, Layer: 1, Seq: i, Rows: rows})
	}
	for i := 0; i < n; i++ {
		msg := net.Mailbox(1).Wait(KindRep, 1, 1, i, 0)
		if msg.Rows.At(0, 0) != float32(i) {
			t.Fatalf("message %d: payload %v", i, msg.Rows.At(0, 0))
		}
	}
}

// settle polls the given counter values until they stop changing: dup
// injection and dedup absorption happen after the original delivery that
// unblocks Wait, so counters can lag the last Wait by a scheduling beat.
func settle(t *testing.T, read func() []float64) []float64 {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	last := read()
	for {
		time.Sleep(20 * time.Millisecond)
		cur := read()
		same := true
		for i := range cur {
			if cur[i] != last[i] {
				same = false
			}
		}
		if same {
			return cur
		}
		if time.Now().After(deadline) {
			t.Fatalf("fault counters never settled: %v", cur)
		}
		last = cur
	}
}

func TestFaultyFabricDeliversEverythingExactlyOnce(t *testing.T) {
	spec, err := ParseFaultSpec("drop=0.3,dup=0.3,jitter=200us,seed=11,timeout=100us")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFaultyFabric(NewFabric(2, ProfileLocal, nil), spec)
	defer f.Close()

	dropped := obsFaultDropped.With("rep")
	duped := obsFaultDuplicated.With("rep")
	dedup := obsDedupDropped
	d0, p0, x0 := dropped.Value(), duped.Value(), dedup.Value()

	const n = 200
	sendAll(t, f, n)
	vals := settle(t, func() []float64 {
		return []float64{dropped.Value() - d0, duped.Value() - p0, dedup.Value() - x0}
	})

	if vals[0] == 0 {
		t.Error("30% drop over 200 messages injected no drops")
	}
	if vals[1] == 0 {
		t.Error("30% dup over 200 messages injected no duplicates")
	}
	// Every injected duplicate must be absorbed by mailbox dedup — none may
	// surface as a protocol message. (Waits above consumed exactly one per
	// key; this checks the duplicates were counted as dropped-by-dedup.)
	if vals[2] != vals[1] {
		t.Errorf("injected %v duplicates but dedup absorbed %v", vals[1], vals[2])
	}
}

func TestFaultyFabricExhaustedRetriesStillDeliver(t *testing.T) {
	// drop=0.99 with 3 retries: nearly every message runs out of budget and
	// must be force-delivered; nothing may deadlock.
	spec, err := ParseFaultSpec("drop=0.99,retries=3,timeout=50us,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFaultyFabric(NewFabric(2, ProfileLocal, nil), spec)
	defer f.Close()
	e0 := obsFaultExhausted.Value()
	sendAll(t, f, 50)
	if obsFaultExhausted.Value() == e0 {
		t.Error("99% drop with 3 retries never exhausted a retry budget")
	}
}

func TestFaultyFabricDeterministicPattern(t *testing.T) {
	run := func() (drops, dups float64) {
		spec, err := ParseFaultSpec("drop=0.5,dup=0.2,seed=42,timeout=50us")
		if err != nil {
			t.Fatal(err)
		}
		f := NewFaultyFabric(NewFabric(2, ProfileLocal, nil), spec)
		defer f.Close()
		d0 := obsFaultDropped.With("rep").Value()
		p0 := obsFaultDuplicated.With("rep").Value()
		sendAll(t, f, 100)
		vals := settle(t, func() []float64 {
			return []float64{obsFaultDropped.With("rep").Value() - d0, obsFaultDuplicated.With("rep").Value() - p0}
		})
		return vals[0], vals[1]
	}
	d1, p1 := run()
	d2, p2 := run()
	if d1 != d2 || p1 != p2 {
		t.Fatalf("fault pattern not deterministic: run1 (%v drops, %v dups), run2 (%v, %v)", d1, p1, d2, p2)
	}
}

func TestFaultyFabricSelfSendBypassesFaults(t *testing.T) {
	spec, err := ParseFaultSpec("drop=0.999,retries=2,timeout=10ms,seed=1")
	if err != nil {
		t.Fatal(err)
	}
	f := NewFaultyFabric(NewFabric(2, ProfileLocal, nil), spec)
	defer f.Close()
	start := time.Now()
	for i := 0; i < 50; i++ {
		f.Send(&Message{From: 0, To: 0, Kind: KindRep, Epoch: 1, Layer: 1, Seq: i})
		f.Mailbox(0).Wait(KindRep, 1, 1, i, 0)
	}
	// 50 self-sends through a 99.9%-drop fabric with 10ms timeouts would
	// take seconds if faults applied; locally they are instantaneous.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("self-sends took %v — fault injection applied to local delivery", elapsed)
	}
}

func TestMailboxDedupPanicsStayForNonFaultyFabrics(t *testing.T) {
	mb := newMailbox()
	msg := &Message{From: 0, To: 1, Kind: KindRep, Epoch: 1, Layer: 1}
	mb.deliver(msg)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate delivery without dedup did not panic")
		}
	}()
	mb.deliver(msg)
}

func TestFaultSpecString(t *testing.T) {
	s, err := ParseFaultSpec("drop=0.05,rep.dup=0.1,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	str := s.String()
	for _, want := range []string{"drop=0.05", "rep.dup=0.1", "seed=9"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q, missing %q", str, want)
		}
	}
}
