package tensor

import (
	"fmt"
	"math"
)

// Add returns t + o element-wise.
func Add(t, o *Tensor) *Tensor {
	out := New(t.rows, t.cols)
	AddInto(out, t, o)
	return out
}

// AddInto stores a + b into dst. All shapes must match; dst may alias a or b.
func AddInto(dst, a, b *Tensor) {
	a.mustSameShape(b, "Add")
	dst.mustSameShape(a, "Add")
	for i := range dst.data {
		dst.data[i] = a.data[i] + b.data[i]
	}
}

// Sub returns a - b element-wise.
func Sub(a, b *Tensor) *Tensor {
	a.mustSameShape(b, "Sub")
	out := New(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns the element-wise (Hadamard) product a * b.
func Mul(a, b *Tensor) *Tensor {
	a.mustSameShape(b, "Mul")
	out := New(a.rows, a.cols)
	for i := range out.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// MulInto stores a*b element-wise into dst; dst may alias a or b.
func MulInto(dst, a, b *Tensor) {
	a.mustSameShape(b, "Mul")
	dst.mustSameShape(a, "Mul")
	for i := range dst.data {
		dst.data[i] = a.data[i] * b.data[i]
	}
}

// Scale returns t scaled by s.
func Scale(t *Tensor, s float32) *Tensor {
	out := New(t.rows, t.cols)
	ScaleInto(out, t, s)
	return out
}

// ScaleInto stores t*s element-wise into dst; dst may alias t.
func ScaleInto(dst, t *Tensor, s float32) {
	dst.mustSameShape(t, "Scale")
	for i, v := range t.data {
		dst.data[i] = v * s
	}
}

// ScaleInPlace multiplies every element of t by s.
func ScaleInPlace(t *Tensor, s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AXPY computes dst += alpha * x element-wise.
func AXPY(dst *Tensor, alpha float32, x *Tensor) {
	dst.mustSameShape(x, "AXPY")
	for i := range dst.data {
		dst.data[i] += alpha * x.data[i]
	}
}

// AddRowVector adds the 1xC row vector v to every row of t, in place.
func AddRowVector(t *Tensor, v *Tensor) {
	if v.rows != 1 || v.cols != t.cols {
		panic(fmt.Sprintf("tensor: AddRowVector %dx%d to %dx%d", v.rows, v.cols, t.rows, t.cols))
	}
	for i := 0; i < t.rows; i++ {
		row := t.Row(i)
		for j, b := range v.data {
			row[j] += b
		}
	}
}

// SumRows returns the 1xC column-wise sum of t (the gradient of a broadcast
// row-vector add).
func SumRows(t *Tensor) *Tensor {
	out := New(1, t.cols)
	SumRowsInto(out, t)
	return out
}

// SumRowsInto stores the 1xC column-wise sum of t into dst, which must have
// shape 1 x t.Cols() and must not alias t.
func SumRowsInto(dst, t *Tensor) {
	if dst.rows != 1 || dst.cols != t.cols {
		panic(fmt.Sprintf("tensor: SumRowsInto %dx%d from %dx%d", dst.rows, dst.cols, t.rows, t.cols))
	}
	dst.Zero()
	for i := 0; i < t.rows; i++ {
		row := t.Row(i)
		for j, v := range row {
			dst.data[j] += v
		}
	}
}

// Sum returns the sum of all elements (accumulated in float64 for accuracy).
func Sum(t *Tensor) float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Norm returns the Frobenius norm of t.
func Norm(t *Tensor) float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// ArgMaxRows returns, for each row, the column index of the maximum value.
func ArgMaxRows(t *Tensor) []int {
	out := make([]int, t.rows)
	for i := 0; i < t.rows; i++ {
		row := t.Row(i)
		best, bi := float32(math.Inf(-1)), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}

// ReLU returns max(0, t) element-wise.
func ReLU(t *Tensor) *Tensor {
	out := New(t.rows, t.cols)
	ReLUInto(out, t)
	return out
}

// ReLUInto stores max(0, t) into dst; dst may alias t.
func ReLUInto(dst, t *Tensor) {
	dst.mustSameShape(t, "ReLU")
	for i, v := range t.data {
		if v > 0 {
			dst.data[i] = v
		} else {
			dst.data[i] = 0
		}
	}
}

// ReLUBackward returns grad masked by the forward input's sign:
// out[i] = grad[i] if input[i] > 0 else 0.
func ReLUBackward(grad, input *Tensor) *Tensor {
	out := New(grad.rows, grad.cols)
	ReLUBackwardInto(out, grad, input)
	return out
}

// ReLUBackwardInto stores the masked gradient into dst; dst may alias grad.
func ReLUBackwardInto(dst, grad, input *Tensor) {
	grad.mustSameShape(input, "ReLUBackward")
	dst.mustSameShape(grad, "ReLUBackward")
	for i, v := range input.data {
		if v > 0 {
			dst.data[i] = grad.data[i]
		} else {
			dst.data[i] = 0
		}
	}
}

// AddBiasReLU returns max(0, t + bias) where the 1xC row vector bias is
// broadcast over every row — the fused forward of the dense-layer tail,
// saving the whole-tensor pre-activation temporary.
func AddBiasReLU(t, bias *Tensor) *Tensor {
	out := New(t.rows, t.cols)
	AddBiasReLUInto(out, t, bias)
	return out
}

// AddBiasReLUInto stores max(0, t + bias) into dst; dst may alias t.
// Bit-compatible with AddRowVector followed by ReLU: the add happens first,
// then the max, per element.
func AddBiasReLUInto(dst, t, bias *Tensor) {
	if bias.rows != 1 || bias.cols != t.cols {
		panic(fmt.Sprintf("tensor: AddBiasReLU %dx%d bias for %dx%d", bias.rows, bias.cols, t.rows, t.cols))
	}
	dst.mustSameShape(t, "AddBiasReLU")
	for i := 0; i < t.rows; i++ {
		src, out := t.Row(i), dst.Row(i)
		for j, b := range bias.data {
			z := src[j] + b
			if z > 0 {
				out[j] = z
			} else {
				out[j] = 0
			}
		}
	}
}

// LeakyReLU returns t with negative entries scaled by slope.
func LeakyReLU(t *Tensor, slope float32) *Tensor {
	out := New(t.rows, t.cols)
	LeakyReLUInto(out, t, slope)
	return out
}

// LeakyReLUInto stores the leaky rectification of t into dst; dst may alias t.
func LeakyReLUInto(dst, t *Tensor, slope float32) {
	dst.mustSameShape(t, "LeakyReLU")
	for i, v := range t.data {
		if v > 0 {
			dst.data[i] = v
		} else {
			dst.data[i] = v * slope
		}
	}
}

// LeakyReLUBackward masks grad by the forward input, scaling negatives by slope.
func LeakyReLUBackward(grad, input *Tensor, slope float32) *Tensor {
	out := New(grad.rows, grad.cols)
	LeakyReLUBackwardInto(out, grad, input, slope)
	return out
}

// LeakyReLUBackwardInto stores the slope-masked gradient into dst; dst may
// alias grad.
func LeakyReLUBackwardInto(dst, grad, input *Tensor, slope float32) {
	grad.mustSameShape(input, "LeakyReLUBackward")
	dst.mustSameShape(grad, "LeakyReLUBackward")
	for i, v := range input.data {
		if v > 0 {
			dst.data[i] = grad.data[i]
		} else {
			dst.data[i] = grad.data[i] * slope
		}
	}
}

// Exp returns e^t element-wise.
func Exp(t *Tensor) *Tensor {
	out := New(t.rows, t.cols)
	for i, v := range t.data {
		out.data[i] = float32(math.Exp(float64(v)))
	}
	return out
}

// SoftmaxRows applies a numerically stable softmax independently to each row.
func SoftmaxRows(t *Tensor) *Tensor {
	out := New(t.rows, t.cols)
	for i := 0; i < t.rows; i++ {
		softmaxRow(out.Row(i), t.Row(i))
	}
	return out
}

func softmaxRow(dst, src []float32) {
	maxV := float32(math.Inf(-1))
	for _, v := range src {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for j, v := range src {
		e := math.Exp(float64(v - maxV))
		dst[j] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for j := range dst {
		dst[j] *= inv
	}
}

// LogSoftmaxRows applies a numerically stable log-softmax to each row.
func LogSoftmaxRows(t *Tensor) *Tensor {
	out := New(t.rows, t.cols)
	LogSoftmaxRowsInto(out, t)
	return out
}

// LogSoftmaxRowsInto stores the row-wise log-softmax of t into dst; dst may
// alias t.
func LogSoftmaxRowsInto(dst, t *Tensor) {
	dst.mustSameShape(t, "LogSoftmaxRows")
	out := dst
	for i := 0; i < t.rows; i++ {
		src, dst := t.Row(i), out.Row(i)
		maxV := float32(math.Inf(-1))
		for _, v := range src {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for _, v := range src {
			sum += math.Exp(float64(v - maxV))
		}
		lse := maxV + float32(math.Log(sum))
		for j, v := range src {
			dst[j] = v - lse
		}
	}
}

// Dropout zeroes elements of t with probability p using rng, scaling the
// survivors by 1/(1-p) (inverted dropout). It returns the output and the mask
// of kept positions (1 or 0) needed by the backward pass.
func Dropout(t *Tensor, p float32, rng *RNG) (out, mask *Tensor) {
	out = New(t.rows, t.cols)
	mask = New(t.rows, t.cols)
	DropoutInto(out, mask, t, p, rng)
	return out, mask
}

// DropoutInto applies inverted dropout into preallocated, zeroed out and mask
// tensors (the destinations a pooled allocator hands back). Neither may alias
// t. The RNG consumption order is identical to Dropout.
func DropoutInto(out, mask, t *Tensor, p float32, rng *RNG) {
	out.mustSameShape(t, "Dropout")
	mask.mustSameShape(t, "Dropout")
	if p <= 0 {
		out.CopyFrom(t)
		mask.Fill(1)
		return
	}
	scale := 1 / (1 - p)
	for i, v := range t.data {
		if rng.Float32() >= p {
			mask.data[i] = scale
			out.data[i] = v * scale
		}
	}
}
