package tensor

import "neutronstar/internal/obs"

// GEMM timing by variant: "nn" is the plain forward product, "ta"/"tb" the
// transposed forms used for weight and input gradients. Series are
// pre-resolved at init so the hot path pays one histogram observe, no label
// lookup.
var (
	obsMatMulVec = obs.Default().HistogramVec("ns_tensor_matmul_seconds",
		"Duration of dense matrix multiplies, by operand layout.",
		obs.TimeBuckets, "op")
	obsMatMulNN = obsMatMulVec.With("nn")
	obsMatMulTA = obsMatMulVec.With("ta")
	obsMatMulTB = obsMatMulVec.With("tb")
)
