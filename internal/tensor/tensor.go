// Package tensor provides a dense float32 matrix library used as the
// numerical substrate for NeutronStar-Go. It plays the role PyTorch's ATen
// kernels play in the original system: all GNN compute (NN layers, edge and
// vertex functions, gradient math) bottoms out in these operations.
//
// Tensors are row-major two-dimensional float32 matrices. A vector is a
// tensor with a single row or a single column. The package favours explicit
// destination arguments (Into variants) so hot paths can reuse buffers, with
// allocating convenience wrappers on top.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, row-major matrix of float32 values.
// The zero value is an empty 0x0 tensor.
type Tensor struct {
	rows, cols int
	data       []float32
	// pooled tracks Pool membership so Put can detect use-after-free
	// (see pool.go): poolNone for ordinary tensors, poolLive while checked
	// out, poolFree while parked inside a bucket.
	pooled uint8
}

// New returns a zero-initialised tensor with the given shape.
// It panics if either dimension is negative.
func New(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Tensor{rows: rows, cols: cols, data: make([]float32, rows*cols)}
}

// FromSlice builds a tensor that takes ownership of data, which must have
// exactly rows*cols elements.
func FromSlice(rows, cols int, data []float32) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d elements for %dx%d", len(data), rows, cols))
	}
	return &Tensor{rows: rows, cols: cols, data: data}
}

// FromRows builds a tensor from a slice of equal-length rows.
func FromRows(rows [][]float32) *Tensor {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	t := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("tensor: FromRows ragged row %d (%d vs %d)", i, len(r), c))
		}
		copy(t.Row(i), r)
	}
	return t
}

// Rows returns the number of rows.
func (t *Tensor) Rows() int { return t.rows }

// Cols returns the number of columns.
func (t *Tensor) Cols() int { return t.cols }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data exposes the backing slice in row-major order. Mutating it mutates the
// tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at (i, j).
func (t *Tensor) At(i, j int) float32 { return t.data[i*t.cols+j] }

// Set stores v at (i, j).
func (t *Tensor) Set(i, j int, v float32) { t.data[i*t.cols+j] = v }

// Row returns row i as a slice sharing the tensor's storage.
func (t *Tensor) Row(i int) []float32 { return t.data[i*t.cols : (i+1)*t.cols] }

// RowSlice returns rows [lo, hi) as a tensor sharing storage with t.
func (t *Tensor) RowSlice(lo, hi int) *Tensor {
	if lo < 0 || hi > t.rows || lo > hi {
		panic(fmt.Sprintf("tensor: RowSlice [%d,%d) of %d rows", lo, hi, t.rows))
	}
	return &Tensor{rows: hi - lo, cols: t.cols, data: t.data[lo*t.cols : hi*t.cols]}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.rows, t.cols)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's contents into t. Shapes must match.
func (t *Tensor) CopyFrom(src *Tensor) {
	t.mustSameShape(src, "CopyFrom")
	copy(t.data, src.data)
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	clear(t.data)
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Reshape returns a tensor with the new shape sharing t's storage.
// rows*cols must equal t.Len().
func (t *Tensor) Reshape(rows, cols int) *Tensor {
	if rows*cols != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %dx%d to %dx%d", t.rows, t.cols, rows, cols))
	}
	return &Tensor{rows: rows, cols: cols, data: t.data}
}

// SameShape reports whether t and o have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool { return t.rows == o.rows && t.cols == o.cols }

func (t *Tensor) mustSameShape(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, t.rows, t.cols, o.rows, o.cols))
	}
}

// Transpose returns a new tensor that is the transpose of t.
func (t *Tensor) Transpose() *Tensor {
	out := New(t.cols, t.rows)
	// Blocked transpose for cache friendliness on large matrices.
	const b = 32
	for i0 := 0; i0 < t.rows; i0 += b {
		iMax := min(i0+b, t.rows)
		for j0 := 0; j0 < t.cols; j0 += b {
			jMax := min(j0+b, t.cols)
			for i := i0; i < iMax; i++ {
				for j := j0; j < jMax; j++ {
					out.data[j*t.rows+i] = t.data[i*t.cols+j]
				}
			}
		}
	}
	return out
}

// Equal reports exact element-wise equality of shape and contents.
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.data {
		if v != o.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether all elements differ by at most tol and shapes match.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.data {
		if math.Abs(float64(v-o.data[i])) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference.
// Shapes must match.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	t.mustSameShape(o, "MaxAbsDiff")
	var m float64
	for i, v := range t.data {
		d := math.Abs(float64(v - o.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// String renders small tensors fully and large tensors as a summary.
func (t *Tensor) String() string {
	if t.rows*t.cols > 64 {
		return fmt.Sprintf("Tensor(%dx%d)", t.rows, t.cols)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Tensor(%dx%d)[", t.rows, t.cols)
	for i := 0; i < t.rows; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		for j := 0; j < t.cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.4g", t.At(i, j))
		}
	}
	sb.WriteString("]")
	return sb.String()
}

// Bytes returns the in-memory size of the tensor payload in bytes. This is
// what the communication layer charges when a tensor crosses workers.
func (t *Tensor) Bytes() int { return 4 * len(t.data) }
