package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndZero(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 || m.Len() != 12 {
		t.Fatalf("shape = %dx%d len %d", m.Rows(), m.Cols(), m.Len())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("New not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	New(-1, 2)
}

func TestSetAtRowMajor(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	if m.Data()[5] != 7 {
		t.Fatal("storage is not row-major")
	}
}

func TestFromSliceAndFromRows(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	n := FromRows([][]float32{{1, 2}, {3, 4}})
	if !m.Equal(n) {
		t.Fatalf("FromSlice %v != FromRows %v", m, n)
	}
}

func TestFromSlicePanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}

func TestRowSliceSharesStorage(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	s := m.RowSlice(1, 3)
	if s.Rows() != 2 || s.At(0, 0) != 3 {
		t.Fatalf("RowSlice content wrong: %v", s)
	}
	s.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Fatal("RowSlice does not share storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float32{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshape(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	r := m.Reshape(3, 2)
	if r.At(2, 1) != 6 || r.At(1, 0) != 3 {
		t.Fatalf("Reshape wrong: %v", r)
	}
	r.Set(0, 0, 42)
	if m.At(0, 0) != 42 {
		t.Fatal("Reshape must share storage")
	}
}

func TestTranspose(t *testing.T) {
	rng := NewRNG(1)
	m := RandNormal(37, 53, 0, 1, rng)
	tr := m.Transpose()
	if tr.Rows() != 53 || tr.Cols() != 37 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !m.Transpose().Transpose().Equal(m) {
		t.Fatal("double transpose is not identity")
	}
}

func TestAddSubMulScale(t *testing.T) {
	a := FromRows([][]float32{{1, 2}, {3, 4}})
	b := FromRows([][]float32{{10, 20}, {30, 40}})
	if got := Add(a, b); !got.Equal(FromRows([][]float32{{11, 22}, {33, 44}})) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a); !got.Equal(FromRows([][]float32{{9, 18}, {27, 36}})) {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b); !got.Equal(FromRows([][]float32{{10, 40}, {90, 160}})) {
		t.Fatalf("Mul = %v", got)
	}
	if got := Scale(a, 2); !got.Equal(FromRows([][]float32{{2, 4}, {6, 8}})) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestAXPY(t *testing.T) {
	a := FromRows([][]float32{{1, 1}})
	x := FromRows([][]float32{{2, 3}})
	AXPY(a, 0.5, x)
	if !a.Equal(FromRows([][]float32{{2, 2.5}})) {
		t.Fatalf("AXPY = %v", a)
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	v := FromRows([][]float32{{10, 20}})
	AddRowVector(m, v)
	if !m.Equal(FromRows([][]float32{{11, 22}, {13, 24}})) {
		t.Fatalf("AddRowVector = %v", m)
	}
	s := SumRows(m)
	if !s.Equal(FromRows([][]float32{{24, 46}})) {
		t.Fatalf("SumRows = %v", s)
	}
}

func TestArgMaxRows(t *testing.T) {
	m := FromRows([][]float32{{0.1, 0.9, 0.3}, {5, -1, 2}})
	got := ArgMaxRows(m)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}

func TestReLUAndBackward(t *testing.T) {
	x := FromRows([][]float32{{-1, 0, 2}})
	y := ReLU(x)
	if !y.Equal(FromRows([][]float32{{0, 0, 2}})) {
		t.Fatalf("ReLU = %v", y)
	}
	g := FromRows([][]float32{{5, 5, 5}})
	gx := ReLUBackward(g, x)
	if !gx.Equal(FromRows([][]float32{{0, 0, 5}})) {
		t.Fatalf("ReLUBackward = %v", gx)
	}
}

func TestLeakyReLU(t *testing.T) {
	x := FromRows([][]float32{{-2, 3}})
	y := LeakyReLU(x, 0.1)
	if math.Abs(float64(y.At(0, 0)+0.2)) > 1e-6 || y.At(0, 1) != 3 {
		t.Fatalf("LeakyReLU = %v", y)
	}
	g := FromRows([][]float32{{1, 1}})
	gx := LeakyReLUBackward(g, x, 0.1)
	if math.Abs(float64(gx.At(0, 0)-0.1)) > 1e-6 || gx.At(0, 1) != 1 {
		t.Fatalf("LeakyReLUBackward = %v", gx)
	}
}

func TestSoftmaxRowsSumsToOne(t *testing.T) {
	rng := NewRNG(7)
	m := RandNormal(20, 13, 0, 5, rng)
	sm := SoftmaxRows(m)
	for i := 0; i < sm.Rows(); i++ {
		var s float64
		for _, v := range sm.Row(i) {
			if v < 0 {
				t.Fatal("softmax produced negative probability")
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := FromRows([][]float32{{1, 2, 3}})
	b := FromRows([][]float32{{1001, 1002, 1003}})
	if sa, sb := SoftmaxRows(a), SoftmaxRows(b); !sa.AllClose(sb, 1e-5) {
		t.Fatalf("softmax not shift invariant: %v vs %v", sa, sb)
	}
}

func TestLogSoftmaxMatchesLogOfSoftmax(t *testing.T) {
	rng := NewRNG(3)
	m := RandNormal(8, 5, 0, 3, rng)
	ls := LogSoftmaxRows(m)
	sm := SoftmaxRows(m)
	for i := range ls.Data() {
		want := math.Log(float64(sm.Data()[i]))
		if math.Abs(float64(ls.Data()[i])-want) > 1e-4 {
			t.Fatalf("logsoftmax[%d]=%v want %v", i, ls.Data()[i], want)
		}
	}
}

func TestDropoutZeroProbIsIdentity(t *testing.T) {
	rng := NewRNG(5)
	x := RandNormal(4, 4, 0, 1, rng)
	y, mask := Dropout(x, 0, rng)
	if !y.Equal(x) {
		t.Fatal("dropout p=0 changed input")
	}
	for _, v := range mask.Data() {
		if v != 1 {
			t.Fatal("dropout p=0 mask not all ones")
		}
	}
}

func TestDropoutExpectationPreserved(t *testing.T) {
	rng := NewRNG(11)
	x := New(200, 200)
	x.Fill(1)
	y, _ := Dropout(x, 0.4, rng)
	mean := Sum(y) / float64(y.Len())
	if math.Abs(mean-1) > 0.03 {
		t.Fatalf("inverted dropout mean = %v, want ~1", mean)
	}
}

// naiveMatMul is the O(n^3) reference used to validate the blocked kernels.
func naiveMatMul(a, b *Tensor) *Tensor {
	out := New(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float32
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := NewRNG(2)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 23}, {64, 64, 64}, {130, 70, 90}} {
		a := RandNormal(dims[0], dims[1], 0, 1, rng)
		b := RandNormal(dims[1], dims[2], 0, 1, rng)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !got.AllClose(want, 1e-3) {
			t.Fatalf("MatMul %v mismatch, maxdiff %v", dims, got.MaxAbsDiff(want))
		}
	}
}

func TestMatMulTAMatchesTransposeMatMul(t *testing.T) {
	rng := NewRNG(4)
	a := RandNormal(31, 17, 0, 1, rng)
	b := RandNormal(31, 23, 0, 1, rng)
	got := MatMulTA(a, b)
	want := MatMul(a.Transpose(), b)
	if !got.AllClose(want, 1e-3) {
		t.Fatalf("MatMulTA mismatch, maxdiff %v", got.MaxAbsDiff(want))
	}
}

func TestMatMulTBMatchesMatMulTranspose(t *testing.T) {
	rng := NewRNG(6)
	a := RandNormal(19, 29, 0, 1, rng)
	b := RandNormal(37, 29, 0, 1, rng)
	got := MatMulTB(a, b)
	want := MatMul(a, b.Transpose())
	if !got.AllClose(want, 1e-3) {
		t.Fatalf("MatMulTB mismatch, maxdiff %v", got.MaxAbsDiff(want))
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}

func TestDot(t *testing.T) {
	if Dot([]float32{1, 2, 3}, []float32{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
}

func TestParallelRowsCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1023} {
		seen := make([]bool, n)
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		ParallelRows(n, func(lo, hi int) {
			<-mu
			for i := lo; i < hi; i++ {
				if seen[i] {
					t.Errorf("row %d visited twice", i)
				}
				seen[i] = true
			}
			mu <- struct{}{}
		})
		for i, s := range seen {
			if !s {
				t.Fatalf("n=%d row %d never visited", n, i)
			}
		}
	}
}

// Property: (A+B)ᵀ = Aᵀ + Bᵀ on random tensors, exercising Add and Transpose.
func TestQuickTransposeAddCommutes(t *testing.T) {
	f := func(seed uint64, r8, c8 uint8) bool {
		rows, cols := int(r8%16)+1, int(c8%16)+1
		rng := NewRNG(seed)
		a := RandNormal(rows, cols, 0, 1, rng)
		b := RandNormal(rows, cols, 0, 1, rng)
		return Add(a, b).Transpose().AllClose(Add(a.Transpose(), b.Transpose()), 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A(B+C) = AB + AC.
func TestQuickMatMulDistributes(t *testing.T) {
	f := func(seed uint64, m8, k8, n8 uint8) bool {
		m, k, n := int(m8%12)+1, int(k8%12)+1, int(n8%12)+1
		rng := NewRNG(seed)
		a := RandNormal(m, k, 0, 1, rng)
		b := RandNormal(k, n, 0, 1, rng)
		c := RandNormal(k, n, 0, 1, rng)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return left.AllClose(right, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds produced same first value")
	}
}

func TestRNGFloat32Range(t *testing.T) {
	rng := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := rng.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	rng := NewRNG(13)
	p := rng.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestXavierBounds(t *testing.T) {
	rng := NewRNG(17)
	w := XavierUniform(50, 70, rng)
	a := math.Sqrt(6.0 / 120.0)
	for _, v := range w.Data() {
		if float64(v) < -a || float64(v) >= a {
			t.Fatalf("xavier value %v outside [-%v, %v)", v, a, a)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	rng := NewRNG(23)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal moments off: mean=%v var=%v", mean, variance)
	}
}

func TestBytes(t *testing.T) {
	if New(3, 5).Bytes() != 60 {
		t.Fatal("Bytes wrong")
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := NewRNG(1)
	x := RandNormal(256, 256, 0, 1, rng)
	y := RandNormal(256, 256, 0, 1, rng)
	out := New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}

func BenchmarkMatMulTA256(b *testing.B) {
	rng := NewRNG(1)
	x := RandNormal(256, 256, 0, 1, rng)
	y := RandNormal(256, 256, 0, 1, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTA(x, y)
	}
}

func TestRowSliceBoundsPanics(t *testing.T) {
	m := New(3, 2)
	for _, r := range [][2]int{{-1, 2}, {0, 4}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RowSlice(%d,%d) did not panic", r[0], r[1])
				}
			}()
			m.RowSlice(r[0], r[1])
		}()
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCopyFromShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).CopyFrom(New(2, 3))
}

func TestAddIntoAliasing(t *testing.T) {
	a := FromRows([][]float32{{1, 2}})
	b := FromRows([][]float32{{10, 20}})
	AddInto(a, a, b) // dst aliases a
	if !a.Equal(FromRows([][]float32{{11, 22}})) {
		t.Fatalf("aliased AddInto = %v", a)
	}
	MulInto(b, b, b) // dst aliases both
	if !b.Equal(FromRows([][]float32{{100, 400}})) {
		t.Fatalf("aliased MulInto = %v", b)
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromRows([][]float32{{1, 5}})
	b := FromRows([][]float32{{2, 3}})
	if d := a.MaxAbsDiff(b); d != 2 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
}

func TestStringForms(t *testing.T) {
	small := FromRows([][]float32{{1, 2}})
	if s := small.String(); s == "" || len(s) < 5 {
		t.Fatal("small tensor String broken")
	}
	big := New(100, 100)
	if s := big.String(); s != "Tensor(100x100)" {
		t.Fatalf("big tensor String = %q", s)
	}
}

func TestSumRowsOfEmpty(t *testing.T) {
	m := New(0, 3)
	s := SumRows(m)
	if s.Rows() != 1 || s.Cols() != 3 || Norm(s) != 0 {
		t.Fatal("SumRows of empty wrong")
	}
}
