package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64-seeded xorshift*). Every stochastic component in the repository
// (feature synthesis, weight init, dropout, sampling) draws from an RNG seeded
// explicitly, so whole experiments replay bit-identically.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because the xorshift state must never be zero.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to a state derived from seed via SplitMix64.
func (r *RNG) Seed(seed uint64) {
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 0x2545F4914F6CDD1D
	}
	r.state = z
}

// State returns the generator's internal state, for checkpointing. The
// state is never zero, so a zero value can mark "no saved state".
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state previously returned by State, resuming the
// stream exactly where it left off. A zero state is remapped like Seed's
// zero handling so a restored RNG is always valid.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x2545F4914F6CDD1D
	}
	r.state = s
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	// Rejection-free Box–Muller; u1 is nudged away from zero.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// RandUniform fills a new rows x cols tensor with uniform values in [lo, hi).
func RandUniform(rows, cols int, lo, hi float32, rng *RNG) *Tensor {
	t := New(rows, cols)
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*rng.Float32()
	}
	return t
}

// RandNormal fills a new rows x cols tensor with N(mean, std²) values.
func RandNormal(rows, cols int, mean, std float32, rng *RNG) *Tensor {
	t := New(rows, cols)
	for i := range t.data {
		t.data[i] = mean + std*float32(rng.NormFloat64())
	}
	return t
}

// XavierUniform returns a rows x cols weight matrix initialised with the
// Glorot/Xavier uniform scheme: U(-a, a) with a = sqrt(6 / (fanIn + fanOut)).
func XavierUniform(rows, cols int, rng *RNG) *Tensor {
	a := float32(math.Sqrt(6 / float64(rows+cols)))
	return RandUniform(rows, cols, -a, a, rng)
}
