package tensor

import (
	"fmt"
	"os"
	"sync"
	"testing"
)

func TestBucketFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1 << 10, 10}, {(1 << 10) + 1, 11},
		{1 << maxBucket, maxBucket}, {(1 << maxBucket) + 1, -1},
	}
	for _, tc := range cases {
		if got := bucketFor(tc.n); got != tc.want {
			t.Fatalf("bucketFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestPoolGetMatchesNew(t *testing.T) {
	// A pooled Get must be indistinguishable from New: right shape, all
	// zeroes — even when reusing a buffer that was full of garbage.
	p := NewPool()
	dirty := p.Get(8, 8)
	dirty.Fill(3.5)
	p.Put(dirty)
	got := p.Get(5, 7) // smaller shape from the same bucket
	if got.Rows() != 5 || got.Cols() != 7 {
		t.Fatalf("shape %dx%d", got.Rows(), got.Cols())
	}
	if !got.Equal(New(5, 7)) {
		t.Fatal("pooled Get returned non-zero data")
	}
}

func TestPoolHitAndMissStats(t *testing.T) {
	p := NewPool()
	a := p.Get(10, 10) // miss
	p.Put(a)
	b := p.Get(10, 10) // hit: same bucket
	p.Put(b)
	c := p.Get(2000, 2000) // miss: different bucket
	s := p.Stats()
	if s.Misses != 2 || s.Hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/2", s.Hits, s.Misses)
	}
	if want := 4 * int64(2000*2000); s.BytesInFlight != want {
		t.Fatalf("in flight %d, want %d", s.BytesInFlight, want)
	}
	if s.HighWaterBytes < s.BytesInFlight {
		t.Fatalf("high water %d below in-flight %d", s.HighWaterBytes, s.BytesInFlight)
	}
	if r := s.HitRate(); r < 0.33 || r > 0.34 {
		t.Fatalf("hit rate %v", r)
	}
	p.Put(c)
	if got := p.Stats().BytesInFlight; got != 0 {
		t.Fatalf("in flight after final Put: %d", got)
	}
}

func TestPoolDoublePutPanics(t *testing.T) {
	p := NewPool()
	a := p.Get(4, 4)
	p.Put(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	p.Put(a)
}

func TestPoolDropsForeignCapacities(t *testing.T) {
	// Tensors the pool didn't size (views, FromSlice results) must not enter
	// a bucket: a RowSlice has a truncated capacity that would violate the
	// bucket's >= invariant for later Gets.
	p := NewPool()
	base := New(8, 8)
	view := base.RowSlice(2, 5) // cap is not a power of two matching len
	p.Put(view)
	got := p.Get(8, 8)
	if &got.Data()[0] == &base.Data()[16] {
		t.Fatal("pool handed back a view's storage")
	}
	// FromSlice with an exact power-of-two backing IS poolable; that's fine.
	if p.Stats().Misses == 0 {
		t.Fatal("expected the post-drop Get to miss")
	}
}

func TestPoolOversizedNeverRetained(t *testing.T) {
	p := NewPool()
	big := p.Get(1, (1<<maxBucket)+1)
	p.Put(big)
	s := p.Stats()
	if s.Misses != 1 {
		t.Fatalf("misses = %d", s.Misses)
	}
	if s.BytesInFlight != 0 {
		t.Fatalf("oversized Put did not untrack: %d bytes in flight", s.BytesInFlight)
	}
}

func TestNilPoolAndArenaAreNew(t *testing.T) {
	var p *Pool
	tt := p.Get(3, 4)
	if tt.Rows() != 3 || tt.Cols() != 4 {
		t.Fatal("nil pool Get wrong shape")
	}
	p.Put(tt) // no-op
	if s := p.Stats(); s != (PoolStats{}) {
		t.Fatalf("nil pool stats %+v", s)
	}
	var a *Arena = p.Arena()
	if a != nil {
		t.Fatal("nil pool produced a non-nil arena")
	}
	u := a.Get(2, 2)
	if u.Rows() != 2 || a.Live() != 0 {
		t.Fatal("nil arena misbehaved")
	}
	a.Release() // no-op
}

func TestArenaReleaseRecycles(t *testing.T) {
	p := NewPool()
	a := p.Arena()
	x := a.Get(16, 16)
	y := a.GetCopy(x)
	if !x.Equal(y) {
		t.Fatal("GetCopy differs from source")
	}
	if a.Live() != 2 {
		t.Fatalf("live = %d", a.Live())
	}
	a.Release()
	if a.Live() != 0 {
		t.Fatalf("live after release = %d", a.Live())
	}
	// The next epoch's identical shapes must come from the buckets.
	before := p.Stats().Hits
	a.Get(16, 16)
	a.Get(16, 16)
	if hits := p.Stats().Hits - before; hits != 2 {
		t.Fatalf("post-release hits = %d, want 2", hits)
	}
}

func TestPoolConcurrentGetPut(t *testing.T) {
	// Race-detector fodder: many goroutines churning the same buckets and
	// one arena, like an epoch's workers sharing the engine pool.
	p := NewPool()
	a := p.Arena()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				t1 := p.Get(g+1, i%32+1)
				t1.Fill(float32(g))
				p.Put(t1)
				a.Get(4, g+1)
			}
		}(g)
	}
	wg.Wait()
	a.Release()
	if got := p.Stats().BytesInFlight; got != 0 {
		t.Fatalf("leaked %d bytes in flight", got)
	}
}

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want %q", want)
		}
		if msg := fmt.Sprint(r); want != "" && !containsStr(msg, want) {
			t.Fatalf("panic %q does not mention %q", msg, want)
		}
	}()
	f()
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMatMulIntoAliasingPanics(t *testing.T) {
	a := New(4, 4)
	b := New(4, 4)
	mustPanic(t, "aliases", func() { MatMulInto(a, a, b) })
	mustPanic(t, "aliases", func() { MatMulInto(b, a, b) })
	mustPanic(t, "aliases", func() { MatMulTAInto(a, a, b) })
	mustPanic(t, "aliases", func() { MatMulTBInto(b, a, b) })
	// A view of an operand aliases too — partial overlap is the insidious case.
	big := New(8, 4)
	mustPanic(t, "aliases", func() { MatMulInto(big.RowSlice(0, 4), big.RowSlice(2, 6), b) })
	// Distinct tensors are fine.
	MatMulInto(New(4, 4), a, b)
}

// TestPooledGEMMAllocFree is the CI perf gate for the kernel path: with
// destination storage in hand, a serial-sized MatMulInto must not allocate.
// Gated behind NS_PERF_ALLOCS because alloc counting is meaningless under
// -race and on heavily loaded CI machines is only run in the dedicated
// perf-smoke job.
func TestPooledGEMMAllocFree(t *testing.T) {
	if os.Getenv("NS_PERF_ALLOCS") == "" {
		t.Skip("set NS_PERF_ALLOCS=1 to run alloc-budget tests")
	}
	rng := NewRNG(1)
	a := RandNormal(32, 32, 0, 1, rng) // 32*32*32 ops, below the parallel threshold
	b := RandNormal(32, 32, 0, 1, rng)
	out := New(32, 32)
	if n := testing.AllocsPerRun(100, func() { MatMulInto(out, a, b) }); n > 0 {
		t.Fatalf("MatMulInto allocated %v times per call, want 0", n)
	}
	bias := RandNormal(1, 32, 0, 1, rng)
	if n := testing.AllocsPerRun(100, func() { AddBiasReLUInto(out, a, bias) }); n > 0 {
		t.Fatalf("AddBiasReLUInto allocated %v times per call, want 0", n)
	}
	p := NewPool()
	p.Put(p.Get(32, 32))
	if n := testing.AllocsPerRun(100, func() { p.Put(p.Get(32, 32)) }); n > 0 {
		t.Fatalf("pool Get/Put cycle allocated %v times per call, want 0", n)
	}
}
