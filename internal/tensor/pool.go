package tensor

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"neutronstar/internal/obs"
)

// Pool is a size-bucketed, sync.Pool-backed tensor allocator. Buckets hold
// tensors whose backing capacity is at least the requested element count
// rounded up to the next power of two, so a Get for any shape within a
// bucket's range can reuse any tensor previously Put into it.
//
// Get zeroes the returned tensor, making a pooled allocation semantically
// identical to New: computations run bit-for-bit the same whether a pool is
// in play or not. A nil *Pool is valid and degrades every method to the
// unpooled behaviour (Get == New, Put == no-op), which is how the engine's
// -pool toggle reproduces the allocator-per-call baseline exactly.
//
// All methods are safe for concurrent use.
type Pool struct {
	buckets [maxBucket + 1]sync.Pool

	hits     atomic.Int64
	misses   atomic.Int64
	inFlight atomic.Int64 // bytes currently checked out via Get
	high     atomic.Int64 // high-water mark of inFlight
}

// maxBucket caps pooled capacities at 2^maxBucket float32 elements (256 MiB);
// larger requests fall through to plain allocation and are never retained.
const maxBucket = 26

// Tensor pool state markers (Tensor.pooled).
const (
	poolNone uint8 = iota // never touched a pool
	poolLive              // checked out of a pool (or eligible for Put)
	poolFree              // currently inside a pool; using it is a bug
)

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// bucketFor returns the bucket whose tensors have capacity >= n, or -1 when
// n is too large to pool.
func bucketFor(n int) int {
	if n <= 0 {
		return 0
	}
	b := bits.Len(uint(n - 1)) // ceil(log2(n))
	if b > maxBucket {
		return -1
	}
	return b
}

// Get returns a zeroed rows x cols tensor, reusing pooled storage when a
// large enough buffer is available. On a nil pool it is exactly New.
func (p *Pool) Get(rows, cols int) *Tensor {
	if p == nil {
		return New(rows, cols)
	}
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	n := rows * cols
	b := bucketFor(n)
	if b < 0 {
		p.misses.Add(1)
		return New(rows, cols)
	}
	var t *Tensor
	if v := p.buckets[b].Get(); v != nil {
		t = v.(*Tensor)
		t.rows, t.cols = rows, cols
		t.data = t.data[:n]
		clear(t.data)
		p.hits.Add(1)
		obsPoolHits.Add(1)
	} else {
		t = &Tensor{rows: rows, cols: cols, data: make([]float32, n, 1<<b)}
		p.misses.Add(1)
		obsPoolMisses.Add(1)
	}
	t.pooled = poolLive
	p.track(4 * int64(n))
	return t
}

// Put returns t's storage to the pool for reuse. The caller must not use t
// (or any view sharing its storage) afterwards. Putting the same tensor
// twice without an intervening Get is a use-after-free bug and panics.
// A nil pool or nil tensor is a no-op.
func (p *Pool) Put(t *Tensor) {
	if p == nil || t == nil {
		return
	}
	if t.pooled == poolFree {
		panic("tensor: double Put of pooled tensor")
	}
	n := len(t.data)
	b := bucketFor(cap(t.data))
	if cap(t.data) == 0 || b < 0 || cap(t.data) != 1<<uint(b) {
		// Not a capacity this pool manages (odd-sized or oversized buffer);
		// drop it for the GC rather than poison a bucket's size invariant.
		if t.pooled == poolLive {
			p.track(-4 * int64(n))
		}
		t.pooled = poolNone
		return
	}
	if t.pooled == poolLive {
		p.track(-4 * int64(n))
	}
	t.pooled = poolFree
	p.buckets[b].Put(t)
}

// track updates the bytes-in-flight gauge and its high-water mark.
func (p *Pool) track(delta int64) {
	v := p.inFlight.Add(delta)
	obsPoolInFlight.Add(float64(delta))
	for {
		h := p.high.Load()
		if v <= h {
			return
		}
		if p.high.CompareAndSwap(h, v) {
			if float64(v) > obsPoolHighWater.Value() {
				obsPoolHighWater.Set(float64(v))
			}
			return
		}
	}
}

// PoolStats is a point-in-time snapshot of a pool's allocation behaviour.
type PoolStats struct {
	// Hits counts Gets satisfied from a bucket; Misses counts Gets that had
	// to allocate fresh storage.
	Hits, Misses int64
	// BytesInFlight is the payload currently checked out (Get minus Put).
	BytesInFlight int64
	// HighWaterBytes is the maximum BytesInFlight ever observed.
	HighWaterBytes int64
}

// HitRate returns Hits / (Hits+Misses), or 0 before the first Get.
func (s PoolStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the pool's counters. A nil pool reports zeroes.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{
		Hits:           p.hits.Load(),
		Misses:         p.misses.Load(),
		BytesInFlight:  p.inFlight.Load(),
		HighWaterBytes: p.high.Load(),
	}
}

// Arena returns a new epoch-scoped arena drawing from the pool. On a nil
// pool it returns nil — and a nil *Arena is itself valid, allocating with
// New and releasing nothing, so callers thread one pointer unconditionally.
func (p *Pool) Arena() *Arena {
	if p == nil {
		return nil
	}
	return &Arena{pool: p}
}

// Arena tracks every tensor obtained through it so they can be returned to
// the pool in one Release call at a known-quiescent point (the engine calls
// Release at the epoch barrier, after which no tape, message or gradient
// from the epoch is referenced anywhere).
//
// Get is safe for concurrent use (a worker's compute goroutine and its
// background send goroutine share one arena); Release must not race with
// Get, which the barrier guarantees.
type Arena struct {
	pool *Pool
	mu   sync.Mutex
	live []*Tensor
}

// Get returns a zeroed rows x cols tensor owned by the arena. On a nil
// arena it is exactly New.
func (a *Arena) Get(rows, cols int) *Tensor {
	if a == nil {
		return New(rows, cols)
	}
	t := a.pool.Get(rows, cols)
	a.mu.Lock()
	a.live = append(a.live, t)
	a.mu.Unlock()
	return t
}

// GetCopy returns an arena-owned deep copy of src.
func (a *Arena) GetCopy(src *Tensor) *Tensor {
	t := a.Get(src.rows, src.cols)
	copy(t.data, src.data)
	return t
}

// Release returns every tensor obtained since the last Release to the pool.
// All of them must be dead: no tape, message, or gradient may reference
// their storage after this call. Nil-safe.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	a.mu.Lock()
	live := a.live
	a.live = a.live[:0]
	a.mu.Unlock()
	for _, t := range live {
		a.pool.Put(t)
	}
}

// Live returns the number of tensors currently checked out of the arena.
func (a *Arena) Live() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.live)
}

// Pool gauges on the default registry: allocation reuse behaviour of every
// pool in the process, for /metrics and the bench document.
var (
	obsPoolHits = obs.Default().Counter("ns_tensor_pool_hits_total",
		"Pooled tensor Gets satisfied from a bucket.")
	obsPoolMisses = obs.Default().Counter("ns_tensor_pool_misses_total",
		"Pooled tensor Gets that allocated fresh storage.")
	obsPoolInFlight = obs.Default().Gauge("ns_tensor_pool_in_flight_bytes",
		"Tensor bytes currently checked out of pools (Get minus Put).")
	obsPoolHighWater = obs.Default().Gauge("ns_tensor_pool_high_water_bytes",
		"High-water mark of pooled tensor bytes in flight.")
)
