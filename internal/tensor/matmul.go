package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// gemmParallelThreshold is the minimum number of multiply-adds before GEMM
// fans out across goroutines; below it the scheduling overhead dominates.
const gemmParallelThreshold = 1 << 16

// MatMul returns a @ b.
func MatMul(a, b *Tensor) *Tensor {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d @ %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a @ b. dst must have shape a.rows x b.cols and
// must not alias a or b.
func MatMulInto(dst, a, b *Tensor) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("tensor: MatMulInto %dx%d = %dx%d @ %dx%d",
			dst.rows, dst.cols, a.rows, a.cols, b.rows, b.cols))
	}
	start := time.Now()
	dst.Zero()
	work := a.rows * a.cols * b.cols
	if work < gemmParallelThreshold || a.rows < 2 {
		gemmRows(dst, a, b, 0, a.rows)
	} else {
		parallelRows(a.rows, func(lo, hi int) { gemmRows(dst, a, b, lo, hi) })
	}
	obsMatMulNN.Observe(time.Since(start).Seconds())
}

// gemmRows computes rows [lo,hi) of dst = a @ b using an ikj loop order so the
// inner loop streams over contiguous rows of b and dst.
func gemmRows(dst, a, b *Tensor, lo, hi int) {
	n := b.cols
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.data[k*n : k*n+n]
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// MatMulTA returns aᵀ @ b, computed without materialising aᵀ.
// a is KxM, b is KxN, result is MxN. This is the shape of weight gradients.
func MatMulTA(a, b *Tensor) *Tensor {
	if a.rows != b.rows {
		panic(fmt.Sprintf("tensor: MatMulTA %dx%d, %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	start := time.Now()
	out := New(a.cols, b.cols)
	m, n := a.cols, b.cols
	if a.rows*m*n < gemmParallelThreshold || m < 2 {
		for k := 0; k < a.rows; k++ {
			ar, br := a.Row(k), b.Row(k)
			for i, av := range ar {
				if av == 0 {
					continue
				}
				dr := out.data[i*n : i*n+n]
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
		obsMatMulTA.Observe(time.Since(start).Seconds())
		return out
	}
	// Parallelise over output rows (columns of a) so goroutines never write
	// the same destination row.
	parallelRows(m, func(lo, hi int) {
		for k := 0; k < a.rows; k++ {
			ar, br := a.Row(k), b.Row(k)
			for i := lo; i < hi; i++ {
				av := ar[i]
				if av == 0 {
					continue
				}
				dr := out.data[i*n : i*n+n]
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
	})
	obsMatMulTA.Observe(time.Since(start).Seconds())
	return out
}

// MatMulTB returns a @ bᵀ, computed without materialising bᵀ.
// a is MxK, b is NxK, result is MxN. This is the shape of input gradients.
func MatMulTB(a, b *Tensor) *Tensor {
	if a.cols != b.cols {
		panic(fmt.Sprintf("tensor: MatMulTB %dx%d, %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	start := time.Now()
	out := New(a.rows, b.rows)
	if a.rows*a.cols*b.rows < gemmParallelThreshold || a.rows < 2 {
		matMulTBRows(out, a, b, 0, a.rows)
	} else {
		parallelRows(a.rows, func(lo, hi int) { matMulTBRows(out, a, b, lo, hi) })
	}
	obsMatMulTB.Observe(time.Since(start).Seconds())
	return out
}

func matMulTBRows(dst, a, b *Tensor, lo, hi int) {
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		for j := 0; j < b.rows; j++ {
			br := b.Row(j)
			var s float32
			for k, av := range ar {
				s += av * br[k]
			}
			dr[j] = s
		}
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float32
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// parallelRows splits [0, n) into contiguous chunks, one per worker, and runs
// fn(lo, hi) on each chunk concurrently.
func parallelRows(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelRows exposes the chunked parallel-for used by GEMM for callers that
// need the same work-splitting over row ranges (e.g. per-vertex graph ops).
func ParallelRows(n int, fn func(lo, hi int)) { parallelRows(n, fn) }
