package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"time"
	"unsafe"
)

// gemmParallelThreshold is the minimum number of multiply-adds before GEMM
// fans out across goroutines; below it the scheduling overhead dominates.
const gemmParallelThreshold = 1 << 16

// sharesStorage reports whether the backing arrays of a and b overlap.
// Empty tensors never overlap anything.
func sharesStorage(a, b *Tensor) bool {
	if len(a.data) == 0 || len(b.data) == 0 {
		return false
	}
	aLo := uintptr(unsafe.Pointer(unsafe.SliceData(a.data)))
	aHi := aLo + uintptr(len(a.data))*unsafe.Sizeof(float32(0))
	bLo := uintptr(unsafe.Pointer(unsafe.SliceData(b.data)))
	bHi := bLo + uintptr(len(b.data))*unsafe.Sizeof(float32(0))
	return aLo < bHi && bLo < aHi
}

// mustNotAlias panics when dst shares storage with a or b. GEMM kernels read
// operand rows while writing destination rows, so an aliased destination
// silently corrupts the product; the panic turns that corruption into an
// immediate, attributable failure.
func mustNotAlias(op string, dst, a, b *Tensor) {
	if sharesStorage(dst, a) || sharesStorage(dst, b) {
		panic(fmt.Sprintf("tensor: %s destination aliases an operand; results would be corrupted", op))
	}
}

// MatMul returns a @ b.
func MatMul(a, b *Tensor) *Tensor {
	if a.cols != b.rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d @ %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a @ b. dst must have shape a.rows x b.cols and
// must not alias a or b (overlapping storage panics).
func MatMulInto(dst, a, b *Tensor) {
	if a.cols != b.rows || dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("tensor: MatMulInto %dx%d = %dx%d @ %dx%d",
			dst.rows, dst.cols, a.rows, a.cols, b.rows, b.cols))
	}
	mustNotAlias("MatMulInto", dst, a, b)
	start := time.Now()
	dst.Zero()
	work := a.rows * a.cols * b.cols
	if work < gemmParallelThreshold || a.rows < 2 {
		gemmRows(dst, a, b, 0, a.rows)
	} else {
		parallelRows(a.rows, func(lo, hi int) { gemmRows(dst, a, b, lo, hi) })
	}
	obsMatMulNN.Observe(time.Since(start).Seconds())
}

// gemmRows computes rows [lo,hi) of dst = a @ b using an ikj loop order (the
// inner loop streams over contiguous rows of b and dst) with register
// blocking: k advances in panels of 4, and within a panel the j loop is
// 4x-unrolled so eight b-rows/dst values live in registers per iteration.
//
// Float addition is not associative, so blocking must preserve the exact
// per-element accumulation order of the scalar kernel — dst[i][j] receives
// its k-terms in ascending k, one add at a time — or results drift between
// builds. The fused update d + t0 + t1 + t2 + t3 evaluates left-to-right
// (Go spec), which is that same order; and the zero-skip fast path is kept
// exactly by taking the panel only when all four a-values are non-zero,
// falling back to the skipping scalar loop otherwise (0*Inf and signed-zero
// semantics are therefore untouched).
func gemmRows(dst, a, b *Tensor, lo, hi int) {
	n := b.cols
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		k := 0
		for ; k+4 <= len(ar); k += 4 {
			a0, a1, a2, a3 := ar[k], ar[k+1], ar[k+2], ar[k+3]
			if a0 == 0 || a1 == 0 || a2 == 0 || a3 == 0 {
				gemmScalarPanel(dr, ar[k:k+4], b, k)
				continue
			}
			b0 := b.data[k*n : k*n+n]
			b1 := b.data[(k+1)*n : (k+1)*n+n]
			b2 := b.data[(k+2)*n : (k+2)*n+n]
			b3 := b.data[(k+3)*n : (k+3)*n+n]
			j := 0
			for ; j+4 <= n; j += 4 {
				d0 := dr[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
				d1 := dr[j+1] + a0*b0[j+1] + a1*b1[j+1] + a2*b2[j+1] + a3*b3[j+1]
				d2 := dr[j+2] + a0*b0[j+2] + a1*b1[j+2] + a2*b2[j+2] + a3*b3[j+2]
				d3 := dr[j+3] + a0*b0[j+3] + a1*b1[j+3] + a2*b2[j+3] + a3*b3[j+3]
				dr[j], dr[j+1], dr[j+2], dr[j+3] = d0, d1, d2, d3
			}
			for ; j < n; j++ {
				dr[j] = dr[j] + a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < len(ar); k++ {
			av := ar[k]
			if av == 0 {
				continue
			}
			br := b.data[k*n : k*n+n]
			for j, bv := range br {
				dr[j] += av * bv
			}
		}
	}
}

// gemmScalarPanel applies one k-panel with the original zero-skipping scalar
// kernel; used when the panel contains a zero a-value.
func gemmScalarPanel(dr, ap []float32, b *Tensor, k0 int) {
	n := b.cols
	for kk, av := range ap {
		if av == 0 {
			continue
		}
		br := b.data[(k0+kk)*n : (k0+kk)*n+n]
		for j, bv := range br {
			dr[j] += av * bv
		}
	}
}

// MatMulTA returns aᵀ @ b, computed without materialising aᵀ.
// a is KxM, b is KxN, result is MxN. This is the shape of weight gradients.
func MatMulTA(a, b *Tensor) *Tensor {
	out := New(a.cols, b.cols)
	MatMulTAInto(out, a, b)
	return out
}

// MatMulTAInto computes dst = aᵀ @ b without materialising aᵀ. dst must have
// shape a.cols x b.cols and must not alias a or b.
func MatMulTAInto(dst, a, b *Tensor) {
	if a.rows != b.rows || dst.rows != a.cols || dst.cols != b.cols {
		panic(fmt.Sprintf("tensor: MatMulTAInto %dx%d = (%dx%d)ᵀ @ %dx%d",
			dst.rows, dst.cols, a.rows, a.cols, b.rows, b.cols))
	}
	mustNotAlias("MatMulTAInto", dst, a, b)
	start := time.Now()
	dst.Zero()
	m, n := a.cols, b.cols
	if a.rows*m*n < gemmParallelThreshold || m < 2 {
		for k := 0; k < a.rows; k++ {
			ar, br := a.Row(k), b.Row(k)
			for i, av := range ar {
				if av == 0 {
					continue
				}
				dr := dst.data[i*n : i*n+n]
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
		obsMatMulTA.Observe(time.Since(start).Seconds())
		return
	}
	// Parallelise over output rows (columns of a) so goroutines never write
	// the same destination row.
	parallelRows(m, func(lo, hi int) {
		for k := 0; k < a.rows; k++ {
			ar, br := a.Row(k), b.Row(k)
			for i := lo; i < hi; i++ {
				av := ar[i]
				if av == 0 {
					continue
				}
				dr := dst.data[i*n : i*n+n]
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
	})
	obsMatMulTA.Observe(time.Since(start).Seconds())
}

// MatMulTB returns a @ bᵀ, computed without materialising bᵀ.
// a is MxK, b is NxK, result is MxN. This is the shape of input gradients.
func MatMulTB(a, b *Tensor) *Tensor {
	out := New(a.rows, b.rows)
	MatMulTBInto(out, a, b)
	return out
}

// MatMulTBInto computes dst = a @ bᵀ without materialising bᵀ. dst must have
// shape a.rows x b.rows and must not alias a or b.
func MatMulTBInto(dst, a, b *Tensor) {
	if a.cols != b.cols || dst.rows != a.rows || dst.cols != b.rows {
		panic(fmt.Sprintf("tensor: MatMulTBInto %dx%d = %dx%d @ (%dx%d)ᵀ",
			dst.rows, dst.cols, a.rows, a.cols, b.rows, b.cols))
	}
	mustNotAlias("MatMulTBInto", dst, a, b)
	start := time.Now()
	if a.rows*a.cols*b.rows < gemmParallelThreshold || a.rows < 2 {
		matMulTBRows(dst, a, b, 0, a.rows)
	} else {
		parallelRows(a.rows, func(lo, hi int) { matMulTBRows(dst, a, b, lo, hi) })
	}
	obsMatMulTB.Observe(time.Since(start).Seconds())
}

// matMulTBRows is a dot-product kernel with the output column loop unrolled
// 4x: four independent accumulators share one streaming read of a's row.
// Each accumulator still sums its k-terms in ascending k, so per-element
// results are bit-identical to the scalar kernel.
func matMulTBRows(dst, a, b *Tensor, lo, hi int) {
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		dr := dst.Row(i)
		j := 0
		for ; j+4 <= b.rows; j += 4 {
			b0, b1, b2, b3 := b.Row(j), b.Row(j+1), b.Row(j+2), b.Row(j+3)
			var s0, s1, s2, s3 float32
			for k, av := range ar {
				s0 += av * b0[k]
				s1 += av * b1[k]
				s2 += av * b2[k]
				s3 += av * b3[k]
			}
			dr[j], dr[j+1], dr[j+2], dr[j+3] = s0, s1, s2, s3
		}
		for ; j < b.rows; j++ {
			br := b.Row(j)
			var s float32
			for k, av := range ar {
				s += av * br[k]
			}
			dr[j] = s
		}
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float32
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// parallelRows splits [0, n) into contiguous chunks, one per worker, and runs
// fn(lo, hi) on each chunk concurrently.
func parallelRows(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelRows exposes the chunked parallel-for used by GEMM for callers that
// need the same work-splitting over row ranges (e.g. per-vertex graph ops).
func ParallelRows(n int, fn func(lo, hi int)) { parallelRows(n, fn) }
