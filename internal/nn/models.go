package nn

import (
	"fmt"

	"neutronstar/internal/tensor"
)

// ModelKind names one of the paper's three evaluated GNN architectures.
type ModelKind string

const (
	// GCN is the graph convolutional network of Kipf & Welling.
	GCN ModelKind = "gcn"
	// GIN is the graph isomorphism network of Xu et al.
	GIN ModelKind = "gin"
	// GAT is the graph attention network of Velickovic et al.
	GAT ModelKind = "gat"
	// SAGE is a GraphSAGE-style model with max-pooling aggregation — an
	// extension beyond the paper's three evaluated models, exercising the
	// max aggregator of GatherByDst.
	SAGE ModelKind = "sage"
)

// ModelKinds lists all supported architectures.
func ModelKinds() []ModelKind { return []ModelKind{GCN, GIN, GAT, SAGE} }

// SliceSeparable reports whether kind's neighbor aggregation is column-wise
// separable: each output column of the edge stage depends only on the same
// input column. GCN (normalised copy + sum) and GIN (raw sum) qualify — they
// are exactly the SumDecomposable layers whose EdgeStage never mixes columns
// — so a tensor-parallel engine can aggregate an F/N-wide feature shard
// independently per worker. GAT (softmax over learned per-edge scores) and
// SAGE (wPool transform before pooling) mix columns and need the full width;
// a tensor-parallel engine must fall back to assembling full-width rows.
func SliceSeparable(kind ModelKind) bool {
	switch kind {
	case GCN, GIN:
		return true
	}
	return false
}

// NewModel builds an L-layer model of the given kind with the dimension
// chain dims = [featureDim, hidden..., numClasses]; len(dims)-1 layers are
// created, all but the last with activations, as in the paper's 2-layer
// configurations. Weight initialisation draws from seed deterministically.
func NewModel(kind ModelKind, dims []int, dropout float32, seed uint64) (*Model, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("nn: need at least [in, out] dims, got %v", dims)
	}
	rng := tensor.NewRNG(seed)
	m := &Model{Name: string(kind)}
	for i := 0; i+1 < len(dims); i++ {
		act := i+2 < len(dims) // no activation on the classifier layer
		var l Layer
		switch kind {
		case GCN:
			l = NewGCNLayer(dims[i], dims[i+1], act, dropout, rng)
		case GIN:
			l = NewGINLayer(dims[i], dims[i+1], act, dropout, rng)
		case GAT:
			l = NewGATLayer(dims[i], dims[i+1], act, dropout, rng)
		case SAGE:
			l = NewSAGELayer(dims[i], dims[i+1], act, dropout, rng)
		default:
			return nil, fmt.Errorf("nn: unknown model kind %q", kind)
		}
		m.Layers = append(m.Layers, l)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustNewModel is NewModel that panics on error.
func MustNewModel(kind ModelKind, dims []int, dropout float32, seed uint64) *Model {
	m, err := NewModel(kind, dims, dropout, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// CloneModel builds a fresh model of identical architecture and identical
// initial weights (same seed path). Engines use it to replicate parameters
// across workers: each worker trains its own copy, kept in sync by
// all-reduced gradients and deterministic optimiser steps.
func CloneModel(kind ModelKind, dims []int, dropout float32, seed uint64) *Model {
	return MustNewModel(kind, dims, dropout, seed)
}
