package nn

import (
	"fmt"

	"neutronstar/internal/tensor"
)

// OptState is a serialisable snapshot of an optimiser's internal state,
// aligned with a parameter list by position. Capturing and restoring it
// around a checkpoint makes a resumed run continue the exact update
// trajectory of the uninterrupted one — Adam's moment estimates and step
// count are part of the training state, not an implementation detail.
type OptState struct {
	// Algo names the optimiser ("sgd" or "adam").
	Algo string
	// Step is Adam's bias-correction step counter t (0 for SGD).
	Step int
	// M and V are Adam's first/second moment estimates per parameter, in
	// Params() order. Entries are nil for parameters the optimiser has not
	// stepped yet, and both slices are nil for SGD.
	M, V [][]float32
}

// CaptureOptState snapshots opt's state for the given parameter list. The
// returned slices are copies, stable against further training steps.
func CaptureOptState(opt Optimizer, params []*Param) OptState {
	switch o := opt.(type) {
	case *SGD:
		return OptState{Algo: "sgd"}
	case *Adam:
		st := OptState{Algo: "adam", Step: o.t,
			M: make([][]float32, len(params)), V: make([][]float32, len(params))}
		for i, p := range params {
			if m, ok := o.m[p]; ok {
				st.M[i] = append([]float32(nil), m.Data()...)
				st.V[i] = append([]float32(nil), o.v[p].Data()...)
			}
		}
		return st
	default:
		return OptState{}
	}
}

// RestoreOptState loads a state captured by CaptureOptState into opt for the
// same parameter list (matched by position; shapes must agree). It fails
// without partial mutation on any mismatch.
func RestoreOptState(opt Optimizer, params []*Param, st OptState) error {
	switch o := opt.(type) {
	case *SGD:
		if st.Algo != "sgd" {
			return fmt.Errorf("nn: optimiser state is %q, optimiser is sgd", st.Algo)
		}
		return nil
	case *Adam:
		if st.Algo != "adam" {
			return fmt.Errorf("nn: optimiser state is %q, optimiser is adam", st.Algo)
		}
		if len(st.M) != len(params) || len(st.V) != len(params) {
			return fmt.Errorf("nn: optimiser state covers %d params, model has %d",
				len(st.M), len(params))
		}
		for i, p := range params {
			want := p.Value.Rows() * p.Value.Cols()
			if st.M[i] == nil != (st.V[i] == nil) || (st.M[i] != nil && (len(st.M[i]) != want || len(st.V[i]) != want)) {
				return fmt.Errorf("nn: optimiser state for param %s has %d/%d moments, want %d",
					p.Name, len(st.M[i]), len(st.V[i]), want)
			}
		}
		o.t = st.Step
		o.m = make(map[*Param]*tensor.Tensor, len(params))
		o.v = make(map[*Param]*tensor.Tensor, len(params))
		for i, p := range params {
			if st.M[i] == nil {
				continue
			}
			o.m[p] = tensor.FromSlice(p.Value.Rows(), p.Value.Cols(), append([]float32(nil), st.M[i]...))
			o.v[p] = tensor.FromSlice(p.Value.Rows(), p.Value.Cols(), append([]float32(nil), st.V[i]...))
		}
		return nil
	default:
		return fmt.Errorf("nn: cannot restore state into %T", opt)
	}
}
