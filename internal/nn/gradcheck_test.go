package nn_test

import (
	"testing"

	"neutronstar/internal/autograd"
	"neutronstar/internal/graph"
	"neutronstar/internal/nn"
	"neutronstar/internal/tensor"
	"neutronstar/internal/testkit"
)

// layerFixture assembles the CSC arrays one ForwardCtx needs, on a small
// graph with a hub, a self-loop, a multi-edge and an isolated vertex.
func layerFixture() (g *graph.Graph, srcIdx, dstIdx, offsets []int32) {
	g = graph.MustFromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 3, Dst: 1},
		{Src: 1, Dst: 2}, {Src: 2, Dst: 2},
		{Src: 3, Dst: 0}, {Src: 3, Dst: 0},
	})
	n := g.NumVertices()
	offsets = make([]int32, n+1)
	for v := 0; v < n; v++ {
		for _, u := range g.InNeighbors(int32(v)) {
			srcIdx = append(srcIdx, u)
			dstIdx = append(dstIdx, int32(v))
		}
		offsets[v+1] = int32(len(srcIdx))
	}
	return g, srcIdx, dstIdx, offsets
}

// TestLayerForwardGradients differentiates every layer kind's full
// EdgeStage+VertexStage data path with respect to the incoming vertex
// representations (parameter gradients are covered end to end by
// testkit.CheckModelGrads); a broken dual in any layer's op composition
// surfaces here with the layer named.
func TestLayerForwardGradients(t *testing.T) {
	g, srcIdx, dstIdx, offsets := layerFixture()
	norm, selfNorm := graph.GCNNormCoefficients(g)
	h := tensor.RandNormal(g.NumVertices(), 4, 0, 1, tensor.NewRNG(21))
	for i, kind := range nn.ModelKinds() {
		layer := nn.MustNewModel(kind, []int{4, 3, 2}, 0, uint64(30+i)).Layers[0]
		build := func(tp *autograd.Tape, xs []*autograd.Variable) *autograd.Variable {
			z := xs[0]
			if pt, ok := layer.(nn.PreTransformer); ok {
				z = pt.PreTransform(tp, z, false, nil)
			}
			return layer.Forward(&nn.ForwardCtx{
				Tape: tp, EdgeSrc: tp.Gather(z, srcIdx), Self: z,
				Offsets: offsets, EdgeDst: dstIdx,
				EdgeNorm: norm, SelfNorm: selfNorm,
			})
		}
		for _, r := range testkit.CheckClosure("layer/"+string(kind), []*tensor.Tensor{h}, build, 77, 1e-3, 0) {
			if r.RelErr >= 1e-3 {
				t.Errorf("FAIL %s", r)
			} else {
				t.Logf("ok   %s", r)
			}
		}
	}
}
