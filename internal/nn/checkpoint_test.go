package nn

import (
	"bytes"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	a := MustNewModel(GAT, []int{8, 6, 3}, 0, 21)
	var buf bytes.Buffer
	if err := a.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	// Fresh model with a different seed: weights differ until loaded.
	b := MustNewModel(GAT, []int{8, 6, 3}, 0, 99)
	if b.Params()[0].Value.Equal(a.Params()[0].Value) {
		t.Fatal("precondition: models should differ")
	}
	if err := b.LoadParams(&buf); err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if !pa[i].Value.Equal(pb[i].Value) {
			t.Fatalf("param %d differs after load", i)
		}
	}
}

func TestCheckpointRejectsMismatch(t *testing.T) {
	a := MustNewModel(GCN, []int{8, 6, 3}, 0, 1)
	var buf bytes.Buffer
	if err := a.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	// Different architecture: shape mismatch must be rejected whole.
	b := MustNewModel(GCN, []int{8, 4, 3}, 0, 1)
	before := b.Params()[0].Value.Clone()
	if err := b.LoadParams(&buf); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	if !b.Params()[0].Value.Equal(before) {
		t.Fatal("failed load mutated the model")
	}
	// Different model family: param count/name mismatch.
	c := MustNewModel(GAT, []int{8, 6, 3}, 0, 1)
	buf.Reset()
	if err := a.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadParams(&buf); err == nil {
		t.Fatal("expected family mismatch error")
	}
}

func TestCheckpointGarbageInput(t *testing.T) {
	m := MustNewModel(GCN, []int{4, 2}, 0, 1)
	if err := m.LoadParams(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("expected decode error")
	}
}
