// Package nn builds GNN layers and optimisers on top of the autograd tape.
// A layer receives, through ForwardCtx, exactly the decoupled inputs of the
// paper's programming model (§4.1): per-edge gathered source representations
// (the result of GetFromDepNbr + ScatterToEdge), the destination vertices'
// own rows, and the CSC structure needed for destination-grouped aggregation
// (GatherByDst). What the layer does with them — EdgeForward and
// VertexForward — is model-specific: GCN, GIN and GAT are provided, matching
// the paper's evaluation.
package nn

import (
	"fmt"

	"neutronstar/internal/autograd"
	"neutronstar/internal/tensor"
)

// Param is one trainable weight matrix, replicated on every worker. Grad
// accumulates partial gradients from the local tape; the engine all-reduces
// Grad across workers before the optimiser step so replicas stay identical.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor

	bound *autograd.Variable
}

// NewParam wraps an initialised tensor as a parameter.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Rows(), value.Cols())}
}

// Bind registers the parameter as a differentiable leaf on the tape for the
// current pass and remembers the variable so CollectGrad can harvest it.
// Binding twice on the same tape (a layer invoked on several destination
// blocks) returns the existing leaf so gradients accumulate in one place.
func (p *Param) Bind(t *autograd.Tape) *autograd.Variable {
	if p.bound != nil && p.bound.Tape() == t {
		return p.bound
	}
	p.bound = t.Leaf(p.Value, true, p.Name)
	return p.bound
}

// CollectGrad adds the bound variable's gradient into p.Grad and unbinds.
// It is a no-op if the parameter was never bound or received no gradient.
func (p *Param) CollectGrad() {
	if p.bound != nil && p.bound.Grad != nil {
		tensor.AddInto(p.Grad, p.Grad, p.bound.Grad)
	}
	p.bound = nil
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// NumElements returns the parameter size.
func (p *Param) NumElements() int { return p.Value.Len() }

// ForwardCtx carries the engine-assembled inputs for one block of
// destination vertices in one layer.
type ForwardCtx struct {
	Tape *autograd.Tape
	// EdgeSrc holds one row per local in-edge, in destination-grouped (CSC)
	// order: the source vertex's previous-layer representation (already
	// pre-transformed if the layer implements PreTransformer).
	EdgeSrc *autograd.Variable
	// Self holds the destination vertices' own previous-layer rows
	// (pre-transformed likewise).
	Self *autograd.Variable
	// Offsets (len NumDst+1) delimits each destination's edge group within
	// EdgeSrc.
	Offsets []int32
	// EdgeDst maps each edge to its destination's local index (0..NumDst).
	EdgeDst []int32
	// EdgeNorm is the per-edge GCN normalisation coefficient; SelfNorm the
	// per-destination self-loop coefficient. Nil when the model ignores them.
	EdgeNorm []float32
	SelfNorm []float32
	Training bool
	RNG      *tensor.RNG
}

// NumDst returns the number of destination vertices in the block.
func (c *ForwardCtx) NumDst() int { return len(c.Offsets) - 1 }

// Layer is one GNN propagation layer.
type Layer interface {
	InDim() int
	OutDim() int
	Params() []*Param
	// Forward computes the block's new representations (NumDst x OutDim).
	Forward(ctx *ForwardCtx) *autograd.Variable
}

// PreTransformer is implemented by layers that apply a vertex-level
// transformation before edge scattering (e.g. GAT's z = W·h). The engine
// applies it once per row universe, avoiding per-edge re-computation, and
// the communicated representation stays the raw h as in the paper.
type PreTransformer interface {
	PreTransform(t *autograd.Tape, h *autograd.Variable, training bool, rng *tensor.RNG) *autograd.Variable
}

// Model is a stack of layers ending in a classifier dimension.
type Model struct {
	Name   string
	Layers []Layer
}

// Params returns all trainable parameters in layer order.
func (m *Model) Params() []*Param {
	var out []*Param
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumLayers returns the number of propagation layers (the paper's L).
func (m *Model) NumLayers() int { return len(m.Layers) }

// Dims returns the representation dimension entering each layer plus the
// final output dimension: [d^(0), d^(1), ..., d^(L)].
func (m *Model) Dims() []int {
	dims := make([]int, 0, len(m.Layers)+1)
	if len(m.Layers) == 0 {
		return dims
	}
	dims = append(dims, m.Layers[0].InDim())
	for _, l := range m.Layers {
		dims = append(dims, l.OutDim())
	}
	return dims
}

// Validate checks layer dimension chaining.
func (m *Model) Validate() error {
	for i := 1; i < len(m.Layers); i++ {
		if m.Layers[i-1].OutDim() != m.Layers[i].InDim() {
			return fmt.Errorf("nn: layer %d out %d != layer %d in %d",
				i-1, m.Layers[i-1].OutDim(), i, m.Layers[i].InDim())
		}
	}
	return nil
}

// SumDecomposable is implemented by layers whose neighbor aggregation is a
// plain (possibly per-edge-weighted) sum. For such layers the engine can
// aggregate incrementally, one received source-worker chunk at a time — the
// chunk-based computation of the paper's §4.3 (Fig. 8): the EdgeStage of
// chunk k runs while chunk k+1 is still on the wire, and the VertexStage
// runs once after all partials are summed. GAT is not sum-decomposable (its
// per-destination softmax needs every score first), matching the paper's
// observation that edge-softmax models limit chunk pipelining.
type SumDecomposable interface {
	// EdgeStage computes the partial aggregation of one edge chunk:
	// one row per destination (numDst rows), summed over the chunk's edges.
	EdgeStage(t *autograd.Tape, edgeSrc *autograd.Variable, edgeNorm []float32,
		edgeDst []int32, numDst int) *autograd.Variable
	// VertexStage combines the total aggregation with the destinations' own
	// rows and applies the layer's NN transform.
	VertexStage(t *autograd.Tape, agg, self *autograd.Variable, selfNorm []float32,
		training bool, rng *tensor.RNG) *autograd.Variable
}

// EdgeStage implements SumDecomposable for GCN: normalised copy + sum.
func (l *GCNLayer) EdgeStage(t *autograd.Tape, edgeSrc *autograd.Variable,
	edgeNorm []float32, edgeDst []int32, numDst int) *autograd.Variable {
	msgs := edgeSrc
	if edgeNorm != nil {
		msgs = t.MulColVec(msgs, edgeNorm)
	}
	return t.ScatterAddRows(msgs, edgeDst, numDst)
}

// VertexStage implements SumDecomposable for GCN.
func (l *GCNLayer) VertexStage(t *autograd.Tape, agg, self *autograd.Variable,
	selfNorm []float32, training bool, rng *tensor.RNG) *autograd.Variable {
	if selfNorm != nil {
		self = t.MulColVec(self, selfNorm)
	}
	combined := t.Add(agg, self)
	combined = t.Dropout(combined, l.dropout, rng, training)
	wz := t.MatMul(combined, l.w.Bind(t))
	if l.act {
		return t.AddBiasReLU(wz, l.b.Bind(t))
	}
	return t.AddBias(wz, l.b.Bind(t))
}

// EdgeStage implements SumDecomposable for GIN: raw sum.
func (l *GINLayer) EdgeStage(t *autograd.Tape, edgeSrc *autograd.Variable,
	edgeNorm []float32, edgeDst []int32, numDst int) *autograd.Variable {
	return t.ScatterAddRows(edgeSrc, edgeDst, numDst)
}

// VertexStage implements SumDecomposable for GIN.
func (l *GINLayer) VertexStage(t *autograd.Tape, agg, self *autograd.Variable,
	selfNorm []float32, training bool, rng *tensor.RNG) *autograd.Variable {
	combined := t.Add(agg, t.Scale(self, 1+l.epsilon))
	combined = t.Dropout(combined, l.dropout, rng, training)
	h := t.AddBiasReLU(t.MatMul(combined, l.w1.Bind(t)), l.b1.Bind(t))
	wz := t.MatMul(h, l.w2.Bind(t))
	if l.act {
		return t.AddBiasReLU(wz, l.b2.Bind(t))
	}
	return t.AddBias(wz, l.b2.Bind(t))
}
