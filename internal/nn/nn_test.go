package nn

import (
	"math"
	"testing"

	"neutronstar/internal/autograd"
	"neutronstar/internal/graph"
	"neutronstar/internal/tensor"
)

// buildCtx assembles a ForwardCtx for a full small graph on a fresh tape:
// all vertices are destinations; EdgeSrc gathers raw (or pre-transformed)
// rows in CSC order. Returns the ctx and the input leaf.
func buildCtx(t *testing.T, g *graph.Graph, layer Layer, h *tensor.Tensor, training bool) (*ForwardCtx, *autograd.Variable) {
	t.Helper()
	tape := autograd.NewTape()
	n := g.NumVertices()
	hVar := tape.Leaf(h, true, "h")
	rows := hVar
	if pt, ok := layer.(PreTransformer); ok {
		rows = pt.PreTransform(tape, hVar, training, tensor.NewRNG(1))
	}
	srcIdx := make([]int32, 0, g.NumEdges())
	dstIdx := make([]int32, 0, g.NumEdges())
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		for _, u := range g.InNeighbors(int32(v)) {
			srcIdx = append(srcIdx, u)
			dstIdx = append(dstIdx, int32(v))
		}
		offsets[v+1] = int32(len(srcIdx))
	}
	edgeNorm, selfNorm := graph.GCNNormCoefficients(g)
	ctx := &ForwardCtx{
		Tape:     tape,
		EdgeSrc:  tape.Gather(rows, srcIdx),
		Self:     rows,
		Offsets:  offsets,
		EdgeDst:  dstIdx,
		EdgeNorm: edgeNorm,
		SelfNorm: selfNorm,
		Training: training,
		RNG:      tensor.NewRNG(2),
	}
	return ctx, hVar
}

func toyGraph() *graph.Graph {
	return graph.MustFromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 0}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3},
	})
}

func TestLayerShapes(t *testing.T) {
	g := toyGraph()
	rng := tensor.NewRNG(3)
	h := tensor.RandNormal(5, 8, 0, 1, rng)
	layers := []Layer{
		NewGCNLayer(8, 4, true, 0, rng),
		NewGINLayer(8, 4, true, 0, rng),
		NewGATLayer(8, 4, true, 0, rng),
		NewSAGELayer(8, 4, true, 0, rng),
	}
	for _, l := range layers {
		if l.InDim() != 8 || l.OutDim() != 4 {
			t.Fatalf("%T dims wrong", l)
		}
		ctx, _ := buildCtx(t, g, l, h.Clone(), false)
		out := l.Forward(ctx)
		if out.Value.Rows() != 5 || out.Value.Cols() != 4 {
			t.Fatalf("%T output %dx%d", l, out.Value.Rows(), out.Value.Cols())
		}
	}
}

func TestLayerGradientsFlowToParamsAndInput(t *testing.T) {
	g := toyGraph()
	rng := tensor.NewRNG(4)
	h := tensor.RandNormal(5, 8, 0, 1, rng)
	for _, mk := range []func() Layer{
		func() Layer { return NewGCNLayer(8, 4, true, 0, rng) },
		func() Layer { return NewGINLayer(8, 4, true, 0, rng) },
		func() Layer { return NewGATLayer(8, 4, true, 0, rng) },
		func() Layer { return NewSAGELayer(8, 4, true, 0, rng) },
	} {
		l := mk()
		ctx, hVar := buildCtx(t, g, l, h.Clone(), true)
		out := l.Forward(ctx)
		seed := tensor.New(out.Value.Rows(), out.Value.Cols())
		seed.Fill(1)
		ctx.Tape.Backward(out, seed)
		for _, p := range l.Params() {
			p.CollectGrad()
		}
		var gotParamGrad bool
		for _, p := range l.Params() {
			if tensor.Norm(p.Grad) > 0 {
				gotParamGrad = true
			}
		}
		if !gotParamGrad {
			t.Fatalf("%T: no parameter received gradient", l)
		}
		if hVar.Grad == nil || tensor.Norm(hVar.Grad) == 0 {
			t.Fatalf("%T: input received no gradient", l)
		}
	}
}

func TestGCNAggregationValues(t *testing.T) {
	// Two sources into one destination with known norms: verify the
	// aggregation arithmetic end-to-end with identity weights.
	g := graph.MustFromEdges(3, []graph.Edge{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}})
	rng := tensor.NewRNG(5)
	l := NewGCNLayer(2, 2, false, 0, rng)
	// Identity weight, zero bias.
	l.w.Value.Zero()
	l.w.Value.Set(0, 0, 1)
	l.w.Value.Set(1, 1, 1)
	h := tensor.FromRows([][]float32{{1, 0}, {0, 1}, {0, 0}})
	ctx, _ := buildCtx(t, g, l, h, false)
	out := l.Forward(ctx)
	// norm for each edge = 1/sqrt(3*1); vertex 2 self term is 0.
	want := 1 / math.Sqrt(3)
	if math.Abs(float64(out.Value.At(2, 0))-want) > 1e-5 ||
		math.Abs(float64(out.Value.At(2, 1))-want) > 1e-5 {
		t.Fatalf("aggregated = %v,%v want %v", out.Value.At(2, 0), out.Value.At(2, 1), want)
	}
	// Vertex 0 has no in-edges: output = selfnorm * h0 = 1 * (1,0).
	if math.Abs(float64(out.Value.At(0, 0))-1) > 1e-5 {
		t.Fatalf("self-only vertex = %v", out.Value.At(0, 0))
	}
}

func TestGATAttentionSumsToOne(t *testing.T) {
	g := toyGraph()
	rng := tensor.NewRNG(6)
	l := NewGATLayer(4, 4, false, 0, rng)
	// With W=I and all-equal rows, attention is uniform; aggregate equals z.
	l.w.Value.Zero()
	for i := 0; i < 4; i++ {
		l.w.Value.Set(i, i, 1)
	}
	h := tensor.New(5, 4)
	h.Fill(2)
	ctx, _ := buildCtx(t, g, l, h, false)
	out := l.Forward(ctx)
	// Every vertex with >=1 in-edge aggregates exactly z (rows all equal,
	// attention convex) plus the self residual z: out = 4 across dims.
	for v := 0; v < 5; v++ {
		if g.InDegree(int32(v)) == 0 {
			continue
		}
		for j := 0; j < 4; j++ {
			if math.Abs(float64(out.Value.At(v, j))-4) > 1e-4 {
				t.Fatalf("v%d out = %v, want 4", v, out.Value.At(v, j))
			}
		}
	}
}

func TestParamBindReuseOnSameTape(t *testing.T) {
	p := NewParam("w", tensor.FromRows([][]float32{{1}}))
	tape := autograd.NewTape()
	v1 := p.Bind(tape)
	v2 := p.Bind(tape)
	if v1 != v2 {
		t.Fatal("Bind on same tape returned different variables")
	}
	tape2 := autograd.NewTape()
	if p.Bind(tape2) == v1 {
		t.Fatal("Bind on new tape returned stale variable")
	}
}

func TestParamCollectGradAccumulates(t *testing.T) {
	p := NewParam("w", tensor.FromRows([][]float32{{1, 1}}))
	tape := autograd.NewTape()
	v := p.Bind(tape)
	x := tape.Leaf(tensor.FromRows([][]float32{{2, 3}}), false, "x")
	out := tape.Mul(v, x)
	seed := tensor.FromRows([][]float32{{1, 1}})
	tape.Backward(out, seed)
	p.CollectGrad()
	if p.Grad.At(0, 0) != 2 || p.Grad.At(0, 1) != 3 {
		t.Fatalf("grad = %v", p.Grad)
	}
	// CollectGrad with no binding is a no-op.
	p.CollectGrad()
	if p.Grad.At(0, 0) != 2 {
		t.Fatal("second CollectGrad changed grad")
	}
	p.ZeroGrad()
	if tensor.Norm(p.Grad) != 0 {
		t.Fatal("ZeroGrad failed")
	}
}

func TestModelConstruction(t *testing.T) {
	for _, kind := range ModelKinds() {
		m, err := NewModel(kind, []int{16, 8, 4}, 0.1, 7)
		if err != nil {
			t.Fatal(err)
		}
		if m.NumLayers() != 2 {
			t.Fatalf("%s layers = %d", kind, m.NumLayers())
		}
		dims := m.Dims()
		if len(dims) != 3 || dims[0] != 16 || dims[1] != 8 || dims[2] != 4 {
			t.Fatalf("%s dims = %v", kind, dims)
		}
		if len(m.Params()) == 0 {
			t.Fatalf("%s has no params", kind)
		}
	}
	if _, err := NewModel("bogus", []int{4, 2}, 0, 1); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if _, err := NewModel(GCN, []int{4}, 0, 1); err == nil {
		t.Fatal("expected error for short dims")
	}
}

func TestCloneModelIdenticalWeights(t *testing.T) {
	a := CloneModel(GCN, []int{8, 4, 2}, 0, 11)
	b := CloneModel(GCN, []int{8, 4, 2}, 0, 11)
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatal("param counts differ")
	}
	for i := range pa {
		if !pa[i].Value.Equal(pb[i].Value) {
			t.Fatalf("param %d differs between clones", i)
		}
	}
	c := CloneModel(GCN, []int{8, 4, 2}, 0, 12)
	if c.Params()[0].Value.Equal(pa[0].Value) {
		t.Fatal("different seed produced identical weights")
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam("w", tensor.FromRows([][]float32{{1, 2}}))
	p.Grad.Set(0, 0, 0.5)
	p.Grad.Set(0, 1, -0.5)
	NewSGD(0.1).Step([]*Param{p})
	if math.Abs(float64(p.Value.At(0, 0))-0.95) > 1e-6 ||
		math.Abs(float64(p.Value.At(0, 1))-2.05) > 1e-6 {
		t.Fatalf("sgd result %v", p.Value)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise (w-3)^2 by feeding grad = 2(w-3).
	p := NewParam("w", tensor.FromRows([][]float32{{0}}))
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.Grad.Set(0, 0, 2*(p.Value.At(0, 0)-3))
		opt.Step([]*Param{p})
	}
	if math.Abs(float64(p.Value.At(0, 0))-3) > 0.05 {
		t.Fatalf("adam converged to %v, want 3", p.Value.At(0, 0))
	}
}

func TestAdamDeterministicAcrossReplicas(t *testing.T) {
	mk := func() (*Param, *Adam) {
		return NewParam("w", tensor.FromRows([][]float32{{1, -1}})), NewAdam(0.05)
	}
	p1, o1 := mk()
	p2, o2 := mk()
	for i := 0; i < 20; i++ {
		g := float32(i%3) - 1
		p1.Grad.Fill(g)
		p2.Grad.Fill(g)
		o1.Step([]*Param{p1})
		o2.Step([]*Param{p2})
	}
	if !p1.Value.Equal(p2.Value) {
		t.Fatal("replicated Adam diverged")
	}
}

func TestZeroGrads(t *testing.T) {
	ps := []*Param{
		NewParam("a", tensor.New(2, 2)),
		NewParam("b", tensor.New(1, 3)),
	}
	ps[0].Grad.Fill(1)
	ps[1].Grad.Fill(2)
	ZeroGrads(ps)
	for _, p := range ps {
		if tensor.Norm(p.Grad) != 0 {
			t.Fatal("ZeroGrads missed a param")
		}
	}
}

// End-to-end: a 2-layer GCN trained on a tiny planted two-cluster graph must
// fit the training labels — validates layers, autograd and optimiser jointly.
func TestTinyGCNTrainingConverges(t *testing.T) {
	// Two 10-cliques (directed both ways), classes 0 and 1.
	var edges []graph.Edge
	for c := 0; c < 2; c++ {
		base := int32(c * 10)
		for i := int32(0); i < 10; i++ {
			for j := int32(0); j < 10; j++ {
				if i != j {
					edges = append(edges, graph.Edge{Src: base + i, Dst: base + j})
				}
			}
		}
	}
	g := graph.MustFromEdges(20, edges)
	rng := tensor.NewRNG(13)
	features := tensor.RandNormal(20, 6, 0, 1, rng)
	for v := 0; v < 20; v++ {
		features.Set(v, 0, features.At(v, 0)+float32(v/10)*2-1)
	}
	labels := make([]int32, 20)
	mask := make([]bool, 20)
	for v := range labels {
		labels[v] = int32(v / 10)
		mask[v] = true
	}
	model := MustNewModel(GCN, []int{6, 8, 2}, 0, 14)
	opt := NewAdam(0.05)

	var lastLoss float64
	for epoch := 0; epoch < 60; epoch++ {
		// Layer-by-layer forward on a single tape stack.
		h := features
		tapes := make([]*autograd.Tape, 0, 3)
		var outVars []*autograd.Variable
		var inVars []*autograd.Variable
		for _, l := range model.Layers {
			ctx, hVar := buildCtxBench(g, l, h, true)
			out := l.Forward(ctx)
			tapes = append(tapes, ctx.Tape)
			outVars = append(outVars, out)
			inVars = append(inVars, hVar)
			h = out.Value
		}
		lossTape := autograd.NewTape()
		logits := lossTape.Leaf(h, true, "logits")
		loss, _ := lossTape.NLLLossMasked(lossTape.LogSoftmax(logits), labels, mask)
		lastLoss = float64(loss.Value.At(0, 0))
		lossTape.Backward(loss, nil)
		grad := logits.Grad
		for i := len(model.Layers) - 1; i >= 0; i-- {
			tapes[i].Backward(outVars[i], grad)
			grad = inVars[i].Grad
		}
		for _, p := range model.Params() {
			p.CollectGrad()
		}
		opt.Step(model.Params())
		ZeroGrads(model.Params())
	}
	if lastLoss > 0.2 {
		t.Fatalf("training did not converge: loss %v", lastLoss)
	}
}

// buildCtxBench is buildCtx without the testing.T plumbing.
func buildCtxBench(g *graph.Graph, layer Layer, h *tensor.Tensor, training bool) (*ForwardCtx, *autograd.Variable) {
	tape := autograd.NewTape()
	n := g.NumVertices()
	hVar := tape.Leaf(h, true, "h")
	rows := hVar
	if pt, ok := layer.(PreTransformer); ok {
		rows = pt.PreTransform(tape, hVar, training, tensor.NewRNG(1))
	}
	srcIdx := make([]int32, 0, g.NumEdges())
	dstIdx := make([]int32, 0, g.NumEdges())
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		for _, u := range g.InNeighbors(int32(v)) {
			srcIdx = append(srcIdx, u)
			dstIdx = append(dstIdx, int32(v))
		}
		offsets[v+1] = int32(len(srcIdx))
	}
	edgeNorm, selfNorm := graph.GCNNormCoefficients(g)
	ctx := &ForwardCtx{
		Tape: tape, EdgeSrc: tape.Gather(rows, srcIdx), Self: rows,
		Offsets: offsets, EdgeDst: dstIdx,
		EdgeNorm: edgeNorm, SelfNorm: selfNorm,
		Training: training, RNG: tensor.NewRNG(2),
	}
	return ctx, hVar
}

func TestMultiHeadGAT(t *testing.T) {
	g := toyGraph()
	rng := tensor.NewRNG(31)
	l, err := NewMultiHeadGATLayer(8, 6, 3, true, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumHeads() != 3 || l.OutDim() != 6 || l.InDim() != 8 {
		t.Fatal("dims wrong")
	}
	if len(l.Params()) != 3*4 {
		t.Fatalf("params = %d", len(l.Params()))
	}
	h := tensor.RandNormal(5, 8, 0, 1, rng)
	ctx, hVar := buildCtx(t, g, l, h, true)
	out := l.Forward(ctx)
	if out.Value.Rows() != 5 || out.Value.Cols() != 6 {
		t.Fatalf("output %dx%d", out.Value.Rows(), out.Value.Cols())
	}
	seed := tensor.New(5, 6)
	seed.Fill(1)
	ctx.Tape.Backward(out, seed)
	for _, p := range l.Params() {
		p.CollectGrad()
	}
	grads := 0
	for _, p := range l.Params() {
		if tensor.Norm(p.Grad) > 0 {
			grads++
		}
	}
	if grads < len(l.Params())-3 { // biases of dead heads may be zero-ish, but most must flow
		t.Fatalf("only %d of %d params got gradients", grads, len(l.Params()))
	}
	if hVar.Grad == nil || tensor.Norm(hVar.Grad) == 0 {
		t.Fatal("input got no gradient")
	}
}

func TestMultiHeadGATRejectsBadHeads(t *testing.T) {
	rng := tensor.NewRNG(32)
	if _, err := NewMultiHeadGATLayer(8, 6, 4, true, 0, rng); err == nil {
		t.Fatal("expected divisibility error")
	}
	if _, err := NewMultiHeadGATLayer(8, 6, 0, true, 0, rng); err == nil {
		t.Fatal("expected zero-head error")
	}
}

func TestSchedulers(t *testing.T) {
	if ConstantLR(0.1).LR(99) != 0.1 {
		t.Fatal("constant changed")
	}
	s := StepLR{Base: 1, StepSize: 10, Gamma: 0.5}
	if s.LR(0) != 1 || s.LR(9) != 1 || s.LR(10) != 0.5 || s.LR(25) != 0.25 {
		t.Fatalf("step lr wrong: %v %v %v %v", s.LR(0), s.LR(9), s.LR(10), s.LR(25))
	}
	c := CosineLR{Base: 1, Min: 0.1, Span: 100}
	if c.LR(0) != 1 {
		t.Fatalf("cosine start %v", c.LR(0))
	}
	if got := c.LR(100); got != 0.1 {
		t.Fatalf("cosine end %v", got)
	}
	mid := c.LR(50)
	if mid <= 0.1 || mid >= 1 {
		t.Fatalf("cosine mid %v", mid)
	}
	// Monotone decreasing over the span.
	prev := c.LR(0)
	for e := 1; e <= 100; e += 7 {
		if v := c.LR(e); v > prev+1e-6 {
			t.Fatalf("cosine not decreasing at %d: %v > %v", e, v, prev)
		} else {
			prev = v
		}
	}
}

func TestSetLR(t *testing.T) {
	sgd := NewSGD(0.1)
	SetLR(sgd, 0.01)
	if sgd.LR != 0.01 {
		t.Fatal("SetLR on SGD failed")
	}
	adam := NewAdam(0.1)
	SetLR(adam, 0.02)
	if adam.LR != 0.02 {
		t.Fatal("SetLR on Adam failed")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", tensor.New(1, 2))
	p.Grad.Set(0, 0, 3)
	p.Grad.Set(0, 1, 4) // norm 5
	pre := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(pre-5) > 1e-6 {
		t.Fatalf("pre-clip norm %v", pre)
	}
	if post := tensor.Norm(p.Grad); math.Abs(post-1) > 1e-5 {
		t.Fatalf("post-clip norm %v", post)
	}
	// Under the limit: unchanged.
	p.Grad.Set(0, 0, 0.3)
	p.Grad.Set(0, 1, 0.4)
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad.At(0, 0) != 0.3 {
		t.Fatal("clip changed a small gradient")
	}
}
