package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"neutronstar/internal/tensor"
)

// paramRecord is the on-disk form of one parameter.
type paramRecord struct {
	Name       string
	Rows, Cols int
	Data       []float32
}

// checkpoint is the on-disk form of a model's parameters.
type checkpoint struct {
	ModelName string
	Params    []paramRecord
}

// SaveParams serialises the model's parameters (gob encoding). Only values
// are saved — optimiser state is not checkpointed, matching the common
// inference-handoff use case.
func (m *Model) SaveParams(w io.Writer) error {
	cp := checkpoint{ModelName: m.Name}
	for _, p := range m.Params() {
		cp.Params = append(cp.Params, paramRecord{
			Name: p.Name, Rows: p.Value.Rows(), Cols: p.Value.Cols(),
			Data: p.Value.Data(),
		})
	}
	return gob.NewEncoder(w).Encode(cp)
}

// LoadParams restores parameters saved by SaveParams into a model of
// identical architecture. It fails without partial mutation if the
// checkpoint does not match the model's parameter names and shapes.
func (m *Model) LoadParams(r io.Reader) error {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	params := m.Params()
	if len(cp.Params) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", len(cp.Params), len(params))
	}
	for i, rec := range cp.Params {
		p := params[i]
		if rec.Name != p.Name || rec.Rows != p.Value.Rows() || rec.Cols != p.Value.Cols() {
			return fmt.Errorf("nn: checkpoint param %d is %s %dx%d, model wants %s %dx%d",
				i, rec.Name, rec.Rows, rec.Cols, p.Name, p.Value.Rows(), p.Value.Cols())
		}
		if len(rec.Data) != rec.Rows*rec.Cols {
			return fmt.Errorf("nn: checkpoint param %s has %d values for %dx%d",
				rec.Name, len(rec.Data), rec.Rows, rec.Cols)
		}
	}
	for i, rec := range cp.Params {
		params[i].Value.CopyFrom(tensor.FromSlice(rec.Rows, rec.Cols, rec.Data))
	}
	return nil
}
