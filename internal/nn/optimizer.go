package nn

import (
	"math"

	"neutronstar/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
// Implementations must be deterministic: replicas running the same step on
// the same gradients must produce bit-identical parameters.
type Optimizer interface {
	// Step applies one update using each parameter's Grad, then the caller
	// typically zeroes the grads.
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	LR          float32
	WeightDecay float32
}

// NewSGD returns an SGD optimiser with the given learning rate.
func NewSGD(lr float32) *SGD { return &SGD{LR: lr} }

// Step applies p.Value -= lr * (p.Grad + wd * p.Value) to every parameter.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.WeightDecay != 0 {
			tensor.AXPY(p.Grad, o.WeightDecay, p.Value)
		}
		tensor.AXPY(p.Value, -o.LR, p.Grad)
	}
}

// Adam implements the Adam optimiser (Kingma & Ba) with bias correction.
type Adam struct {
	LR           float32
	Beta1, Beta2 float32
	Eps          float32

	t int
	m map[*Param]*tensor.Tensor
	v map[*Param]*tensor.Tensor
}

// NewAdam returns an Adam optimiser with standard defaults.
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Tensor),
		v: make(map[*Param]*tensor.Tensor),
	}
}

// Step applies one Adam update to every parameter.
func (o *Adam) Step(params []*Param) {
	o.t++
	c1 := 1 - float32(math.Pow(float64(o.Beta1), float64(o.t)))
	c2 := 1 - float32(math.Pow(float64(o.Beta2), float64(o.t)))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = tensor.New(p.Value.Rows(), p.Value.Cols())
			o.m[p] = m
			o.v[p] = tensor.New(p.Value.Rows(), p.Value.Cols())
		}
		v := o.v[p]
		md, vd, gd, pd := m.Data(), v.Data(), p.Grad.Data(), p.Value.Data()
		for i, g := range gd {
			md[i] = o.Beta1*md[i] + (1-o.Beta1)*g
			vd[i] = o.Beta2*vd[i] + (1-o.Beta2)*g*g
			mHat := md[i] / c1
			vHat := vd[i] / c2
			pd[i] -= o.LR * mHat / (float32(math.Sqrt(float64(vHat))) + o.Eps)
		}
	}
}

// ZeroGrads clears every parameter's gradient accumulator.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// Scheduler adjusts a learning rate over epochs. Schedulers are pure
// functions of the epoch index, so replicas stay in sync without
// coordination.
type Scheduler interface {
	// LR returns the learning rate for the given 0-based epoch.
	LR(epoch int) float32
}

// ConstantLR always returns the same rate.
type ConstantLR float32

// LR implements Scheduler.
func (c ConstantLR) LR(int) float32 { return float32(c) }

// StepLR multiplies the base rate by Gamma every StepSize epochs.
type StepLR struct {
	Base     float32
	StepSize int
	Gamma    float32
}

// LR implements Scheduler.
func (s StepLR) LR(epoch int) float32 {
	if s.StepSize <= 0 {
		return s.Base
	}
	lr := s.Base
	for k := 0; k < epoch/s.StepSize; k++ {
		lr *= s.Gamma
	}
	return lr
}

// CosineLR anneals from Base to Min over Span epochs, then stays at Min.
type CosineLR struct {
	Base, Min float32
	Span      int
}

// LR implements Scheduler.
func (c CosineLR) LR(epoch int) float32 {
	if c.Span <= 0 || epoch >= c.Span {
		return c.Min
	}
	frac := float64(epoch) / float64(c.Span)
	return c.Min + (c.Base-c.Min)*float32((1+math.Cos(math.Pi*frac))/2)
}

// SetLR updates an optimiser's learning rate (for use with a Scheduler
// between epochs).
func SetLR(opt Optimizer, lr float32) {
	switch o := opt.(type) {
	case *SGD:
		o.LR = lr
	case *Adam:
		o.LR = lr
	}
}

// ClipGradNorm scales all gradients down so their global L2 norm does not
// exceed maxNorm; it returns the pre-clip norm. Deterministic, so replicas
// clip identically after the all-reduce.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		n := tensor.Norm(p.Grad)
		sq += n * n
	}
	total := math.Sqrt(sq)
	if maxNorm > 0 && total > maxNorm {
		scale := float32(maxNorm / total)
		for _, p := range params {
			tensor.ScaleInPlace(p.Grad, scale)
		}
	}
	return total
}
