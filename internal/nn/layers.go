package nn

import (
	"fmt"

	"neutronstar/internal/autograd"
	"neutronstar/internal/tensor"
)

// GCNLayer implements Kipf & Welling's graph convolution with the
// renormalisation trick: h_v' = act( W · Σ_{u∈N(v)∪{v}} ĉ_uv · h_u + b ).
// EdgeForward multiplies each incoming message by its normalisation
// coefficient; GatherByDst sums; VertexForward applies the dense layer.
type GCNLayer struct {
	in, out int
	w       *Param
	b       *Param
	act     bool
	dropout float32
}

// NewGCNLayer builds a GCN layer. act enables the ReLU non-linearity
// (disabled on the final layer, whose output feeds log-softmax).
func NewGCNLayer(in, out int, act bool, dropout float32, rng *tensor.RNG) *GCNLayer {
	return &GCNLayer{
		in: in, out: out, act: act, dropout: dropout,
		w: NewParam(fmt.Sprintf("gcn_w_%dx%d", in, out), tensor.XavierUniform(in, out, rng)),
		b: NewParam(fmt.Sprintf("gcn_b_%d", out), tensor.New(1, out)),
	}
}

// InDim returns the input dimension.
func (l *GCNLayer) InDim() int { return l.in }

// OutDim returns the output dimension.
func (l *GCNLayer) OutDim() int { return l.out }

// Params returns the layer's weight and bias.
func (l *GCNLayer) Params() []*Param { return []*Param{l.w, l.b} }

// Forward runs EdgeForward (normalised copy), GatherByDst (sum) and
// VertexForward (dense + activation) for one destination block.
func (l *GCNLayer) Forward(ctx *ForwardCtx) *autograd.Variable {
	t := ctx.Tape
	msgs := ctx.EdgeSrc
	if ctx.EdgeNorm != nil {
		msgs = t.MulColVec(msgs, ctx.EdgeNorm)
	}
	agg := t.ScatterAddRows(msgs, ctx.EdgeDst, ctx.NumDst())
	self := ctx.Self
	if ctx.SelfNorm != nil {
		self = t.MulColVec(self, ctx.SelfNorm)
	}
	combined := t.Add(agg, self)
	combined = t.Dropout(combined, l.dropout, ctx.RNG, ctx.Training)
	wz := t.MatMul(combined, l.w.Bind(t))
	if l.act {
		return t.AddBiasReLU(wz, l.b.Bind(t))
	}
	return t.AddBias(wz, l.b.Bind(t))
}

// GINLayer implements the Graph Isomorphism Network layer:
// h_v' = MLP( (1+ε)·h_v + Σ_{u∈N(v)} h_u ), with a two-linear MLP.
type GINLayer struct {
	in, out int
	w1, b1  *Param
	w2, b2  *Param
	epsilon float32
	act     bool
	dropout float32
}

// NewGINLayer builds a GIN layer with fixed ε.
func NewGINLayer(in, out int, act bool, dropout float32, rng *tensor.RNG) *GINLayer {
	return &GINLayer{
		in: in, out: out, act: act, dropout: dropout, epsilon: 0,
		w1: NewParam(fmt.Sprintf("gin_w1_%dx%d", in, out), tensor.XavierUniform(in, out, rng)),
		b1: NewParam(fmt.Sprintf("gin_b1_%d", out), tensor.New(1, out)),
		w2: NewParam(fmt.Sprintf("gin_w2_%dx%d", out, out), tensor.XavierUniform(out, out, rng)),
		b2: NewParam(fmt.Sprintf("gin_b2_%d", out), tensor.New(1, out)),
	}
}

// InDim returns the input dimension.
func (l *GINLayer) InDim() int { return l.in }

// OutDim returns the output dimension.
func (l *GINLayer) OutDim() int { return l.out }

// Params returns the MLP parameters.
func (l *GINLayer) Params() []*Param { return []*Param{l.w1, l.b1, l.w2, l.b2} }

// Forward sums raw neighbor messages, adds the (1+ε)-scaled self term, and
// applies the two-layer MLP.
func (l *GINLayer) Forward(ctx *ForwardCtx) *autograd.Variable {
	t := ctx.Tape
	agg := t.ScatterAddRows(ctx.EdgeSrc, ctx.EdgeDst, ctx.NumDst())
	combined := t.Add(agg, t.Scale(ctx.Self, 1+l.epsilon))
	combined = t.Dropout(combined, l.dropout, ctx.RNG, ctx.Training)
	h := t.AddBiasReLU(t.MatMul(combined, l.w1.Bind(t)), l.b1.Bind(t))
	wz := t.MatMul(h, l.w2.Bind(t))
	if l.act {
		return t.AddBiasReLU(wz, l.b2.Bind(t))
	}
	return t.AddBias(wz, l.b2.Bind(t))
}

// GATLayer implements single-head graph attention:
// z = W·h (vertex-level pre-transform), score_uv = LeakyReLU(a_s·z_u+a_d·z_v),
// α = softmax over each v's in-edges, h_v' = act(Σ α_uv z_u + b).
// The per-destination softmax is the edge-associated computation ROC lacks
// (which is why the paper reports ROC cannot run GAT).
type GATLayer struct {
	in, out int
	w       *Param
	aSrc    *Param
	aDst    *Param
	b       *Param
	slope   float32
	act     bool
	dropout float32
}

// NewGATLayer builds a single-head GAT layer with LeakyReLU slope 0.2.
func NewGATLayer(in, out int, act bool, dropout float32, rng *tensor.RNG) *GATLayer {
	return &GATLayer{
		in: in, out: out, act: act, dropout: dropout, slope: 0.2,
		w:    NewParam(fmt.Sprintf("gat_w_%dx%d", in, out), tensor.XavierUniform(in, out, rng)),
		aSrc: NewParam(fmt.Sprintf("gat_asrc_%d", out), tensor.XavierUniform(1, out, rng)),
		aDst: NewParam(fmt.Sprintf("gat_adst_%d", out), tensor.XavierUniform(1, out, rng)),
		b:    NewParam(fmt.Sprintf("gat_b_%d", out), tensor.New(1, out)),
	}
}

// InDim returns the input dimension.
func (l *GATLayer) InDim() int { return l.in }

// OutDim returns the output dimension.
func (l *GATLayer) OutDim() int { return l.out }

// Params returns the attention parameters.
func (l *GATLayer) Params() []*Param { return []*Param{l.w, l.aSrc, l.aDst, l.b} }

// PreTransform computes z = W·h once per vertex row universe, so edges carry
// the (usually narrower) transformed representation.
func (l *GATLayer) PreTransform(t *autograd.Tape, h *autograd.Variable, training bool, rng *tensor.RNG) *autograd.Variable {
	h = t.Dropout(h, l.dropout, rng, training)
	return t.MatMul(h, l.w.Bind(t))
}

// Forward computes attention scores per edge, normalises them per
// destination with a segment softmax, and aggregates weighted messages.
func (l *GATLayer) Forward(ctx *ForwardCtx) *autograd.Variable {
	t := ctx.Tape
	// EdgeSrc and Self are already z = W·h via PreTransform.
	srcScore := t.RowDot(ctx.EdgeSrc, l.aSrc.Bind(t)) // E x 1
	dstScoreV := t.RowDot(ctx.Self, l.aDst.Bind(t))   // NumDst x 1
	dstScoreE := t.Gather(dstScoreV, ctx.EdgeDst)     // E x 1
	score := t.LeakyReLU(t.Add(srcScore, dstScoreE), l.slope)
	alpha := t.SegmentSoftmax(score, ctx.Offsets)
	weighted := t.BroadcastColMul(ctx.EdgeSrc, alpha)
	agg := t.ScatterAddRows(weighted, ctx.EdgeDst, ctx.NumDst())
	// Self residual: destinations keep their own transformed representation
	// (GAT's residual connection); vertices with no in-edges degrade to a
	// plain dense layer instead of losing their signal entirely.
	pre := t.Add(agg, ctx.Self)
	if l.act {
		return t.AddBiasReLU(pre, l.b.Bind(t))
	}
	return t.AddBias(pre, l.b.Bind(t))
}

// SAGELayer implements a GraphSAGE-style layer with max-pooling
// aggregation: h_v' = act( W_self·h_v + W_nbr·max_{u∈N(v)} σ(W_pool·h_u) ).
// It exercises the max variant of GatherByDst that the paper lists among
// the supported commutative aggregators (§4.1), alongside GCN/GIN's sums.
type SAGELayer struct {
	in, out int
	wSelf   *Param
	wNbr    *Param
	wPool   *Param
	b       *Param
	act     bool
	dropout float32
}

// NewSAGELayer builds a max-pool GraphSAGE layer.
func NewSAGELayer(in, out int, act bool, dropout float32, rng *tensor.RNG) *SAGELayer {
	return &SAGELayer{
		in: in, out: out, act: act, dropout: dropout,
		wSelf: NewParam(fmt.Sprintf("sage_wself_%dx%d", in, out), tensor.XavierUniform(in, out, rng)),
		wNbr:  NewParam(fmt.Sprintf("sage_wnbr_%dx%d", in, out), tensor.XavierUniform(in, out, rng)),
		wPool: NewParam(fmt.Sprintf("sage_wpool_%dx%d", in, in), tensor.XavierUniform(in, in, rng)),
		b:     NewParam(fmt.Sprintf("sage_b_%d", out), tensor.New(1, out)),
	}
}

// InDim returns the input dimension.
func (l *SAGELayer) InDim() int { return l.in }

// OutDim returns the output dimension.
func (l *SAGELayer) OutDim() int { return l.out }

// Params returns the layer parameters.
func (l *SAGELayer) Params() []*Param { return []*Param{l.wSelf, l.wNbr, l.wPool, l.b} }

// Forward pools each destination's transformed neighbor messages with an
// element-wise max and combines with the self path.
func (l *SAGELayer) Forward(ctx *ForwardCtx) *autograd.Variable {
	t := ctx.Tape
	msgs := t.ReLU(t.MatMul(ctx.EdgeSrc, l.wPool.Bind(t)))
	pooled := t.ScatterMaxRows(msgs, ctx.EdgeDst, ctx.NumDst())
	self := t.Dropout(ctx.Self, l.dropout, ctx.RNG, ctx.Training)
	z := t.Add(t.MatMul(self, l.wSelf.Bind(t)), t.MatMul(pooled, l.wNbr.Bind(t)))
	if l.act {
		return t.AddBiasReLU(z, l.b.Bind(t))
	}
	return t.AddBias(z, l.b.Bind(t))
}

// MultiHeadGATLayer runs H independent attention heads and concatenates
// their outputs (the standard GAT formulation; the single-head GATLayer is
// the H=1 special case). OutDim is the concatenated width, so each head
// produces OutDim/H features; OutDim must be divisible by the head count.
type MultiHeadGATLayer struct {
	in, out int
	heads   []*GATLayer
}

// NewMultiHeadGATLayer builds an H-head GAT layer.
func NewMultiHeadGATLayer(in, out, numHeads int, act bool, dropout float32, rng *tensor.RNG) (*MultiHeadGATLayer, error) {
	if numHeads <= 0 || out%numHeads != 0 {
		return nil, fmt.Errorf("nn: out dim %d not divisible by %d heads", out, numHeads)
	}
	l := &MultiHeadGATLayer{in: in, out: out}
	for h := 0; h < numHeads; h++ {
		l.heads = append(l.heads, NewGATLayer(in, out/numHeads, act, dropout, rng))
	}
	return l, nil
}

// InDim returns the input dimension.
func (l *MultiHeadGATLayer) InDim() int { return l.in }

// OutDim returns the concatenated output dimension.
func (l *MultiHeadGATLayer) OutDim() int { return l.out }

// NumHeads returns the head count.
func (l *MultiHeadGATLayer) NumHeads() int { return len(l.heads) }

// Params returns all heads' parameters.
func (l *MultiHeadGATLayer) Params() []*Param {
	var out []*Param
	for _, h := range l.heads {
		out = append(out, h.Params()...)
	}
	return out
}

// Forward evaluates every head on the shared raw inputs and concatenates.
// Unlike the single-head layer, the vertex transform z = W_h·h happens
// inside Forward per head (a shared PreTransform cannot serve differently
// parameterised heads), so EdgeSrc/Self carry raw representations here.
func (l *MultiHeadGATLayer) Forward(ctx *ForwardCtx) *autograd.Variable {
	t := ctx.Tape
	outs := make([]*autograd.Variable, len(l.heads))
	for i, h := range l.heads {
		z := t.MatMul(ctx.EdgeSrc, h.w.Bind(t))
		zSelf := t.MatMul(ctx.Self, h.w.Bind(t))
		headCtx := *ctx
		headCtx.EdgeSrc = z
		headCtx.Self = zSelf
		outs[i] = h.Forward(&headCtx)
	}
	if len(outs) == 1 {
		return outs[0]
	}
	cat := outs[0]
	for _, o := range outs[1:] {
		cat = t.ConcatCols(cat, o)
	}
	return cat
}
