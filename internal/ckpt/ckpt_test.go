package ckpt

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testSnapshot(epoch int) *Snapshot {
	s := &Snapshot{
		Fingerprint: 0xDEADBEEFCAFE,
		Epoch:       epoch,
	}
	for e := 1; e <= epoch; e++ {
		s.History = append(s.History, EpochRecord{Epoch: e, Loss: 1.0 / float64(e), Millis: float64(10 * e)})
	}
	for w := 0; w < 2; w++ {
		ws := WorkerState{
			RNGState: uint64(0x1234+w) << 7,
			OptAlgo:  "adam",
			OptStep:  epoch,
		}
		for p := 0; p < 3; p++ {
			rows, cols := 2+p, 3
			n := rows * cols
			ps := ParamState{Name: fmt.Sprintf("w%d.p%d", w, p), Rows: rows, Cols: cols}
			for i := 0; i < n; i++ {
				ps.Value = append(ps.Value, float32(i)*0.25+float32(w))
			}
			if p != 2 { // one param deliberately without moments
				for i := 0; i < n; i++ {
					ps.M = append(ps.M, float32(i)*0.5)
					ps.V = append(ps.V, float32(i)*0.125)
				}
			}
			ws.Params = append(ws.Params, ps)
		}
		s.Workers = append(s.Workers, ws)
	}
	return s
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := testSnapshot(7)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.Len(), s.EncodedBytes(); got != want {
		t.Fatalf("encoded %d bytes, EncodedBytes says %d", got, want)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s := testSnapshot(3)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Flip one bit somewhere in the body: the CRC must catch it.
	for _, pos := range []int{8, len(clean) / 2, len(clean) - 5} {
		bad := append([]byte(nil), clean...)
		bad[pos] ^= 0x40
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Fatalf("decode accepted a snapshot with bit %d flipped", pos)
		}
	}
	// Truncation at any point must fail, not panic.
	for _, n := range []int{0, 3, 10, len(clean) - 1} {
		if _, err := Decode(bytes.NewReader(clean[:n])); err == nil {
			t.Fatalf("decode accepted a snapshot truncated to %d bytes", n)
		}
	}
}

func TestDecodeRejectsFutureVersion(t *testing.T) {
	s := testSnapshot(1)
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version field
	// Recompute the CRC so only the version check can reject it.
	body := data[:len(data)-4]
	sum := crc32ChecksumIEEE(body)
	data[len(data)-4] = byte(sum)
	data[len(data)-3] = byte(sum >> 8)
	data[len(data)-2] = byte(sum >> 16)
	data[len(data)-1] = byte(sum >> 24)
	if _, err := Decode(bytes.NewReader(data)); err == nil {
		t.Fatal("decode accepted an unknown snapshot version")
	}
}

func TestStoreSaveLoadLatest(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if s, err := st.LoadLatest(); err != nil || s != nil {
		t.Fatalf("empty store: got (%v, %v), want (nil, nil)", s, err)
	}
	for epoch := 1; epoch <= 3; epoch++ {
		if _, err := st.Save(testSnapshot(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || !reflect.DeepEqual(got, testSnapshot(3)) {
		t.Fatalf("LoadLatest returned epoch %d, want 3", got.Epoch)
	}
}

func TestStoreRotation(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.Retain = 2
	for epoch := 1; epoch <= 5; epoch++ {
		if _, err := st.Save(testSnapshot(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := st.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Epoch != 4 || entries[1].Epoch != 5 {
		t.Fatalf("retained %+v, want epochs 4 and 5", entries)
	}
	files, _ := filepath.Glob(filepath.Join(st.Dir(), "snap-*.nsck"))
	if len(files) != 2 {
		t.Fatalf("retained %d snapshot files, want 2: %v", len(files), files)
	}
	// Re-saving an epoch already in the manifest replaces it, not duplicates.
	if _, err := st.Save(testSnapshot(5)); err != nil {
		t.Fatal(err)
	}
	entries, _ = st.Entries()
	if len(entries) != 2 || entries[1].Epoch != 5 {
		t.Fatalf("after re-save: %+v", entries)
	}
}

func TestStoreSurvivesStaleManifestEntry(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 1; epoch <= 2; epoch++ {
		if _, err := st.Save(testSnapshot(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a lost latest snapshot (crash after manifest write).
	if err := os.Remove(filepath.Join(st.Dir(), "snap-00000002.nsck")); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 {
		t.Fatalf("degraded load returned epoch %d, want 1", got.Epoch)
	}
}

func TestManifestRejectsEscapingPath(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	manifest := manifestHeader + "\nepoch=1 file=../evil.nsck bytes=1 saved_unix=0\n"
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte(manifest), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Entries(); err == nil {
		t.Fatal("manifest with path escape was accepted")
	}
}

func TestSaverCadence(t *testing.T) {
	var nilSaver *Saver
	if nilSaver.Due(1) {
		t.Fatal("nil saver claims to be due")
	}
	s := &Saver{Store: &Store{dir: "x"}, Every: 5}
	for epoch, want := range map[int]bool{1: false, 4: false, 5: true, 10: true, 11: false} {
		if s.Due(epoch) != want {
			t.Fatalf("Every=5: Due(%d) = %v, want %v", epoch, s.Due(epoch), want)
		}
	}
	s.Every = 0
	if !s.Due(1) || !s.Due(2) {
		t.Fatal("Every=0 should snapshot every epoch")
	}
}

func crc32ChecksumIEEE(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}
