package ckpt

import "neutronstar/internal/obs"

// Process-wide checkpoint metrics on the default registry, feeding the
// debug server's /metrics endpoint alongside the engine and comm families.
// Gauges describe the most recent save; counters accumulate across stores.
var (
	obsSaves = obs.Default().Counter("ns_ckpt_saves_total",
		"Snapshots successfully written.")
	obsSaveFailures = obs.Default().Counter("ns_ckpt_save_failures_total",
		"Snapshot writes that failed (training continues; the previous snapshot stays live).")
	obsRestores = obs.Default().Counter("ns_ckpt_restores_total",
		"Snapshots successfully decoded for restore.")
	obsSaveSeconds = obs.Default().Gauge("ns_ckpt_save_duration_seconds",
		"Wall-clock duration of the last snapshot write.")
	obsSnapshotBytes = obs.Default().Gauge("ns_ckpt_snapshot_bytes",
		"Encoded size of the last written snapshot.")
	obsRetained = obs.Default().Gauge("ns_ckpt_retained_snapshots",
		"Snapshots currently retained in the most recently written store.")
)
