// Package ckpt is the checkpoint/restore subsystem: a versioned binary
// snapshot of everything a training run needs to continue after a crash —
// model parameters and optimiser state per worker, per-worker RNG stream
// positions, the epoch/loss history, and a fingerprint of the graph
// partitioning so a snapshot is rejected when the topology it was taken
// under no longer matches.
//
// Snapshots are plain data plus a codec; policy (where files live, how many
// are kept, how often one is written) lives in Store and Saver. The package
// deliberately knows nothing about engines or models: the engine translates
// its state into Snapshot and back, so ckpt depends only on the standard
// library and the metric registry.
package ckpt

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Wire format (little-endian throughout):
//
//	magic       u32  (0x4E53434B, "NSCK")
//	version     u16  (currently 1)
//	reserved    u16
//	fingerprint u64
//	epoch       u32
//	numHistory  u32
//	history     numHistory × { epoch u32, loss f64, millis f64 }
//	numWorkers  u32
//	per worker:
//	  rngState  u64
//	  algoLen   u8 + algo bytes ("sgd" / "adam")
//	  optStep   u32
//	  numParams u32
//	  per param:
//	    nameLen u16 + name bytes
//	    rows, cols u32, u32
//	    value   rows*cols × f32
//	    hasOpt  u8  (1 ⇒ Adam moments follow)
//	    m, v    rows*cols × f32 each, when hasOpt == 1
//	crc32(IEEE) u32 over every preceding byte
//
// The trailing CRC makes torn or bit-rotted files fail loudly at load time
// rather than resuming from garbage; the version field lets future formats
// coexist with old manifests.

const (
	snapshotMagic   = 0x4E53434B
	snapshotVersion = 1
)

// maxSnapshotDim bounds decoded allocation sizes against corrupt files.
const maxSnapshotDim = 1 << 28

// EpochRecord is one completed epoch in the training history.
type EpochRecord struct {
	Epoch  int
	Loss   float64
	Millis float64
}

// ParamState is one parameter tensor plus its optimiser moments.
type ParamState struct {
	Name       string
	Rows, Cols int
	Value      []float32
	// M and V are Adam's moment estimates; nil when the optimiser holds no
	// state for this parameter (SGD, or a parameter never stepped).
	M, V []float32
}

// WorkerState is one worker's full training state.
type WorkerState struct {
	// RNGState is the worker's dropout/sampling stream position.
	RNGState uint64
	// OptAlgo / OptStep mirror nn.OptState's Algo and Step.
	OptAlgo string
	OptStep int
	Params  []ParamState
}

// Snapshot is one recoverable point in a training run.
type Snapshot struct {
	// Fingerprint identifies the (dataset, partitioning, architecture)
	// configuration the snapshot was taken under. Restore refuses a
	// mismatch: resuming onto a different partitioning would silently
	// misalign every worker's owned vertex block.
	Fingerprint uint64
	// Epoch is the number of completed epochs.
	Epoch   int
	History []EpochRecord
	Workers []WorkerState
}

// EncodedBytes returns the exact on-disk size of the snapshot.
func (s *Snapshot) EncodedBytes() int {
	n := 4 + 2 + 2 + 8 + 4 + 4 + len(s.History)*(4+8+8) + 4
	for _, w := range s.Workers {
		n += 8 + 1 + len(w.OptAlgo) + 4 + 4
		for _, p := range w.Params {
			n += 2 + len(p.Name) + 4 + 4 + 4*len(p.Value) + 1
			if p.M != nil {
				n += 4 * (len(p.M) + len(p.V))
			}
		}
	}
	return n + 4 // trailing CRC
}

// Encode writes the snapshot in the versioned binary format.
func (s *Snapshot) Encode(w io.Writer) error {
	cw := &crcWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<16)
	putU32 := func(v uint32) { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); bw.Write(b[:]) }
	putU64 := func(v uint64) { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); bw.Write(b[:]) }
	putF32s := func(fs []float32) {
		var b [4]byte
		for _, f := range fs {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(f))
			bw.Write(b[:])
		}
	}

	putU32(snapshotMagic)
	var vb [4]byte
	binary.LittleEndian.PutUint16(vb[0:], snapshotVersion)
	bw.Write(vb[:]) // version + reserved
	putU64(s.Fingerprint)
	putU32(uint32(s.Epoch))
	putU32(uint32(len(s.History)))
	for _, h := range s.History {
		putU32(uint32(h.Epoch))
		putU64(math.Float64bits(h.Loss))
		putU64(math.Float64bits(h.Millis))
	}
	putU32(uint32(len(s.Workers)))
	for _, ws := range s.Workers {
		putU64(ws.RNGState)
		if len(ws.OptAlgo) > 255 {
			return fmt.Errorf("ckpt: optimiser name %q too long", ws.OptAlgo)
		}
		bw.WriteByte(byte(len(ws.OptAlgo)))
		bw.WriteString(ws.OptAlgo)
		putU32(uint32(ws.OptStep))
		putU32(uint32(len(ws.Params)))
		for _, p := range ws.Params {
			if len(p.Name) > 1<<16-1 {
				return fmt.Errorf("ckpt: param name %q too long", p.Name)
			}
			var nb [2]byte
			binary.LittleEndian.PutUint16(nb[:], uint16(len(p.Name)))
			bw.Write(nb[:])
			bw.WriteString(p.Name)
			putU32(uint32(p.Rows))
			putU32(uint32(p.Cols))
			if len(p.Value) != p.Rows*p.Cols {
				return fmt.Errorf("ckpt: param %s has %d values for %dx%d", p.Name, len(p.Value), p.Rows, p.Cols)
			}
			putF32s(p.Value)
			if (p.M == nil) != (p.V == nil) || (p.M != nil && (len(p.M) != len(p.Value) || len(p.V) != len(p.Value))) {
				return fmt.Errorf("ckpt: param %s moments misshaped (%d/%d for %d values)",
					p.Name, len(p.M), len(p.V), len(p.Value))
			}
			if p.M != nil {
				bw.WriteByte(1)
				putF32s(p.M)
				putF32s(p.V)
			} else {
				bw.WriteByte(0)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// CRC over everything written so far, then the CRC itself (uncounted).
	var cb [4]byte
	binary.LittleEndian.PutUint32(cb[:], cw.sum)
	_, err := w.Write(cb[:])
	return err
}

// crcWriter forwards to w while accumulating a CRC32 of the stream.
type crcWriter struct {
	w   io.Writer
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p)
	return c.w.Write(p)
}

// Decode reads a snapshot written by Encode, verifying magic, version and
// the trailing checksum. The whole stream is read up front: the CRC covers
// every body byte, so nothing can be trusted until all of it has been seen.
func Decode(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading snapshot: %w", err)
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("ckpt: snapshot truncated (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("ckpt: snapshot checksum mismatch (%#x, stored %#x)", got, want)
	}
	br := bytes.NewReader(body)
	var scratch [8]byte
	getU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	getU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	getF32s := func(n int) ([]float32, error) {
		out, err := readF32s(br, n)
		if err != nil {
			return nil, err
		}
		return out, nil
	}

	magic, err := getU32()
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading header: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("ckpt: bad snapshot magic %#x", magic)
	}
	vr, err := getU32()
	if err != nil {
		return nil, err
	}
	if v := uint16(vr); v != snapshotVersion {
		return nil, fmt.Errorf("ckpt: unsupported snapshot version %d (this build reads %d)", v, snapshotVersion)
	}
	s := &Snapshot{}
	if s.Fingerprint, err = getU64(); err != nil {
		return nil, err
	}
	epoch, err := getU32()
	if err != nil {
		return nil, err
	}
	s.Epoch = int(epoch)
	nh, err := getU32()
	if err != nil {
		return nil, err
	}
	if nh > maxSnapshotDim {
		return nil, fmt.Errorf("ckpt: history length %d out of range", nh)
	}
	for i := uint32(0); i < nh; i++ {
		var h EpochRecord
		e, err := getU32()
		if err != nil {
			return nil, err
		}
		h.Epoch = int(e)
		lb, err := getU64()
		if err != nil {
			return nil, err
		}
		h.Loss = math.Float64frombits(lb)
		mb, err := getU64()
		if err != nil {
			return nil, err
		}
		h.Millis = math.Float64frombits(mb)
		s.History = append(s.History, h)
	}
	nw, err := getU32()
	if err != nil {
		return nil, err
	}
	if nw > maxSnapshotDim {
		return nil, fmt.Errorf("ckpt: worker count %d out of range", nw)
	}
	for i := uint32(0); i < nw; i++ {
		var ws WorkerState
		if ws.RNGState, err = getU64(); err != nil {
			return nil, err
		}
		alen, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		algo := make([]byte, alen)
		if _, err := io.ReadFull(br, algo); err != nil {
			return nil, err
		}
		ws.OptAlgo = string(algo)
		step, err := getU32()
		if err != nil {
			return nil, err
		}
		ws.OptStep = int(step)
		np, err := getU32()
		if err != nil {
			return nil, err
		}
		if np > maxSnapshotDim {
			return nil, fmt.Errorf("ckpt: param count %d out of range", np)
		}
		for j := uint32(0); j < np; j++ {
			var p ParamState
			if _, err := io.ReadFull(br, scratch[:2]); err != nil {
				return nil, err
			}
			name := make([]byte, binary.LittleEndian.Uint16(scratch[:2]))
			if _, err := io.ReadFull(br, name); err != nil {
				return nil, err
			}
			p.Name = string(name)
			rows, err := getU32()
			if err != nil {
				return nil, err
			}
			cols, err := getU32()
			if err != nil {
				return nil, err
			}
			if rows > maxSnapshotDim || cols > maxSnapshotDim ||
				(rows > 0 && cols > maxSnapshotDim/rows) {
				return nil, fmt.Errorf("ckpt: param %s dimensions %dx%d out of range", p.Name, rows, cols)
			}
			p.Rows, p.Cols = int(rows), int(cols)
			if p.Value, err = getF32s(p.Rows * p.Cols); err != nil {
				return nil, err
			}
			hasOpt, err := br.ReadByte()
			if err != nil {
				return nil, err
			}
			if hasOpt == 1 {
				if p.M, err = getF32s(p.Rows * p.Cols); err != nil {
					return nil, err
				}
				if p.V, err = getF32s(p.Rows * p.Cols); err != nil {
					return nil, err
				}
			} else if hasOpt != 0 {
				return nil, fmt.Errorf("ckpt: param %s has invalid moment flag %d", p.Name, hasOpt)
			}
			ws.Params = append(ws.Params, p)
		}
		s.Workers = append(s.Workers, ws)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("ckpt: %d trailing bytes after snapshot body", br.Len())
	}
	return s, nil
}

// readF32s reads n little-endian float32 values in bounded chunks, so a
// corrupt length field costs at most one chunk of allocation beyond the
// data actually present in the stream.
func readF32s(r io.Reader, n int) ([]float32, error) {
	const chunk = 1 << 14
	out := make([]float32, 0, minInt(n, chunk))
	var buf [4 * chunk]byte
	for n > 0 {
		c := minInt(n, chunk)
		b := buf[:4*c]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			out = append(out, math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:])))
		}
		n -= c
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
