package ckpt

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Store manages a directory of snapshots with a manifest and retention
// rotation. All writes are atomic (temp file + rename), so a crash mid-save
// never corrupts an existing snapshot, and the manifest always points at
// fully written files.
//
// Directory layout:
//
//	<dir>/MANIFEST              index of live snapshots, newest last
//	<dir>/snap-<epoch>.nsck     one snapshot per retained epoch
//
// The manifest is a plain text file — first line "nsck-manifest v1", then
// one line per snapshot: "epoch=<n> file=<name> bytes=<n> saved_unix=<ts>".
// It is rewritten atomically after every save; readers take the last entry
// whose file still exists, so a manifest that raced a crash degrades to the
// previous snapshot instead of failing.
type Store struct {
	dir string
	// Retain caps how many snapshots are kept (oldest rotated out first).
	// Zero means the default of 3; negative disables rotation.
	Retain int
}

const (
	manifestName   = "MANIFEST"
	manifestHeader = "nsck-manifest v1"
	defaultRetain  = 3
)

// Entry is one manifest line: a snapshot the store knows about.
type Entry struct {
	Epoch     int
	File      string
	Bytes     int64
	SavedUnix int64
}

// OpenStore opens (creating if needed) a snapshot directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("ckpt: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) retain() int {
	switch {
	case st.Retain == 0:
		return defaultRetain
	case st.Retain < 0:
		return int(^uint(0) >> 1) // effectively unlimited
	default:
		return st.Retain
	}
}

// Entries reads the manifest. A missing manifest is an empty store, not an
// error. Entries whose snapshot file has vanished are skipped.
func (st *Store) Entries() ([]Entry, error) {
	f, err := os.Open(filepath.Join(st.dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: opening manifest: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != manifestHeader {
		return nil, fmt.Errorf("ckpt: %s is not a snapshot manifest", f.Name())
	}
	var out []Entry
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := parseEntry(line)
		if err != nil {
			return nil, err
		}
		if _, statErr := os.Stat(filepath.Join(st.dir, e.File)); statErr != nil {
			continue // rotated out or lost; the manifest line is stale
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ckpt: reading manifest: %w", err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	return out, nil
}

func parseEntry(line string) (Entry, error) {
	var e Entry
	for _, tok := range strings.Fields(line) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return e, fmt.Errorf("ckpt: malformed manifest token %q", tok)
		}
		switch k {
		case "epoch":
			n, err := strconv.Atoi(v)
			if err != nil {
				return e, fmt.Errorf("ckpt: manifest epoch %q: %w", v, err)
			}
			e.Epoch = n
		case "file":
			if v != filepath.Base(v) || v == "" {
				return e, fmt.Errorf("ckpt: manifest file %q escapes the store", v)
			}
			e.File = v
		case "bytes":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return e, fmt.Errorf("ckpt: manifest bytes %q: %w", v, err)
			}
			e.Bytes = n
		case "saved_unix":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return e, fmt.Errorf("ckpt: manifest timestamp %q: %w", v, err)
			}
			e.SavedUnix = n
		default:
			// Unknown keys are ignored so older readers survive format
			// extensions within the same manifest version.
		}
	}
	if e.File == "" {
		return e, fmt.Errorf("ckpt: manifest entry %q names no file", line)
	}
	return e, nil
}

// Save writes the snapshot atomically, appends it to the manifest and
// applies retention rotation. It returns the snapshot's path.
func (st *Store) Save(s *Snapshot) (string, error) {
	start := time.Now()
	name := fmt.Sprintf("snap-%08d.nsck", s.Epoch)
	path := filepath.Join(st.dir, name)
	tmp, err := os.CreateTemp(st.dir, ".tmp-snap-*")
	if err != nil {
		obsSaveFailures.Inc()
		return "", fmt.Errorf("ckpt: creating temp snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := s.Encode(tmp); err != nil {
		tmp.Close()
		obsSaveFailures.Inc()
		return "", fmt.Errorf("ckpt: encoding snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		obsSaveFailures.Inc()
		return "", fmt.Errorf("ckpt: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		obsSaveFailures.Inc()
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		obsSaveFailures.Inc()
		return "", fmt.Errorf("ckpt: publishing snapshot: %w", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		obsSaveFailures.Inc()
		return "", err
	}

	entries, err := st.Entries()
	if err != nil {
		obsSaveFailures.Inc()
		return "", err
	}
	// Replace any previous entry for the same epoch (a resumed run re-saves
	// epochs it passes again), then append and rotate.
	kept := entries[:0]
	for _, e := range entries {
		if e.Epoch != s.Epoch {
			kept = append(kept, e)
		}
	}
	entries = append(kept, Entry{
		Epoch: s.Epoch, File: name, Bytes: info.Size(), SavedUnix: time.Now().Unix(),
	})
	var evicted []Entry
	if r := st.retain(); len(entries) > r {
		evicted = append(evicted, entries[:len(entries)-r]...)
		entries = entries[len(entries)-r:]
	}
	if err := st.writeManifest(entries); err != nil {
		obsSaveFailures.Inc()
		return "", err
	}
	// Delete rotated-out files only after the manifest no longer names
	// them; a crash between the two leaves garbage files, never dangling
	// manifest entries.
	for _, e := range evicted {
		os.Remove(filepath.Join(st.dir, e.File))
	}

	obsSaves.Inc()
	obsSaveSeconds.Set(time.Since(start).Seconds())
	obsSnapshotBytes.Set(float64(info.Size()))
	obsRetained.Set(float64(len(entries)))
	return path, nil
}

func (st *Store) writeManifest(entries []Entry) error {
	tmp, err := os.CreateTemp(st.dir, ".tmp-manifest-*")
	if err != nil {
		return fmt.Errorf("ckpt: creating temp manifest: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	fmt.Fprintln(w, manifestHeader)
	for _, e := range entries {
		fmt.Fprintf(w, "epoch=%d file=%s bytes=%d saved_unix=%d\n",
			e.Epoch, e.File, e.Bytes, e.SavedUnix)
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(st.dir, manifestName))
}

// Load reads and decodes one manifest entry's snapshot.
func (st *Store) Load(e Entry) (*Snapshot, error) {
	f, err := os.Open(filepath.Join(st.dir, e.File))
	if err != nil {
		return nil, fmt.Errorf("ckpt: opening snapshot: %w", err)
	}
	defer f.Close()
	s, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", e.File, err)
	}
	obsRestores.Inc()
	return s, nil
}

// LoadLatest decodes the newest snapshot in the store, or returns
// (nil, nil) when the store is empty — an empty store is the normal state
// of a fresh run, not an error.
func (st *Store) LoadLatest() (*Snapshot, error) {
	entries, err := st.Entries()
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, nil
	}
	return st.Load(entries[len(entries)-1])
}

// Saver writes snapshots at a fixed epoch cadence. The engine calls
// MaybeSave at every epoch barrier; the saver decides whether this epoch is
// due and persists it synchronously (checkpointing inside the barrier keeps
// the snapshot consistent across workers — nothing moves while it runs).
type Saver struct {
	Store *Store
	// Every is the epoch cadence; a snapshot is written when
	// epoch % Every == 0 (and always for Every <= 1).
	Every int
}

// Due reports whether a snapshot should be written at this epoch barrier.
func (s *Saver) Due(epoch int) bool {
	if s == nil || s.Store == nil {
		return false
	}
	if s.Every <= 1 {
		return true
	}
	return epoch%s.Every == 0
}

// Save persists the snapshot through the underlying store.
func (s *Saver) Save(snap *Snapshot) error {
	_, err := s.Store.Save(snap)
	return err
}
