// Package metrics collects per-worker busy-time and traffic accounting for
// the utilisation experiments (paper §5.4, Figure 13). Engines bracket their
// compute and communication phases with Track calls; the collector
// post-processes the recorded intervals into time-bucketed utilisation
// series, the same quantity the paper samples every 100 ms.
//
// Since the observability rework, the collector is a thin classification
// layer over an obs.Tracer: every tracked interval is a named span carrying
// its Kind as the span class, and structural spans (epochs, layers — class
// obs.ClassNone) organise those intervals into a hierarchy without
// perturbing the utilisation series. BuildSeries and Busy only consume
// spans whose class is a valid Kind, so adding structural or foreign-class
// spans to the same tracer never changes Figure-13 numbers.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"neutronstar/internal/obs"
)

// Kind labels what a worker was doing during a tracked interval.
type Kind int

const (
	// Compute is accelerator-style work: tensor math in the training path.
	// Its busy fraction corresponds to the paper's GPU utilisation.
	Compute Kind = iota
	// Comm is communication work: packing, sending, receiving, unpacking.
	// Compute+Comm busy fraction corresponds to CPU utilisation.
	Comm
	// Sample is sampling work (DistDGL-like baseline only).
	Sample
	numKinds
)

// String returns the kind's display name.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Comm:
		return "comm"
	case Sample:
		return "sample"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Collector accumulates spans and byte counters. The zero value is not
// usable; call NewCollector. A nil *Collector is legal everywhere and makes
// every method a no-op, so instrumentation can stay in place unconditionally.
type Collector struct {
	tr *obs.Tracer

	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	msgsSent  atomic.Int64
	// recvStamps records (offset, bytes) pairs for network-rate series,
	// stamped on the tracer's clock so spans and rate curves align.
	recvMu     sync.Mutex
	recvStamps []recvStamp
}

type recvStamp struct {
	at    time.Duration
	bytes int64
}

// NewCollector returns an empty collector. Its clock starts at the first
// tracked event.
func NewCollector() *Collector { return &Collector{tr: obs.NewTracer()} }

// Tracer exposes the underlying span tracer so callers can open structural
// spans (epochs, layers) on the same timeline. Nil-safe.
func (c *Collector) Tracer() *obs.Tracer {
	if c == nil {
		return nil
	}
	return c.tr
}

// Elapsed returns the time since the collector's first event.
func (c *Collector) Elapsed() time.Duration {
	if c == nil {
		return 0
	}
	return c.tr.Now()
}

// Track records the start of an interval of the given kind on worker w and
// returns a function that closes the interval. Typical use:
//
//	defer c.Track(w, metrics.Compute)()
func (c *Collector) Track(w int, kind Kind) func() {
	if c == nil {
		return func() {}
	}
	sp := c.tr.Start(w, int(kind), kind.String())
	return sp.End
}

// Span opens a named, attributed busy interval of the given kind on worker
// w's timeline. It counts toward the kind's utilisation exactly like Track.
func (c *Collector) Span(w int, kind Kind, name string, attrs ...obs.Attr) *obs.Span {
	if c == nil {
		return nil
	}
	return c.tr.Start(w, int(kind), name, attrs...)
}

// Group opens a structural span (an epoch, a layer) that organises busy
// intervals in the trace without itself counting as busy time.
func (c *Collector) Group(w int, name string, attrs ...obs.Attr) *obs.Span {
	if c == nil {
		return nil
	}
	return c.tr.Start(w, obs.ClassNone, name, attrs...)
}

// AddSent records n payload bytes leaving any worker.
func (c *Collector) AddSent(n int64) {
	if c == nil {
		return
	}
	c.bytesSent.Add(n)
	c.msgsSent.Add(1)
}

// AddReceived records n payload bytes arriving, stamped for rate series.
func (c *Collector) AddReceived(n int64) {
	if c == nil {
		return
	}
	c.bytesRecv.Add(n)
	at := c.tr.Now()
	c.recvMu.Lock()
	c.recvStamps = append(c.recvStamps, recvStamp{at: at, bytes: n})
	c.recvMu.Unlock()
}

// BytesSent returns total payload bytes sent.
func (c *Collector) BytesSent() int64 {
	if c == nil {
		return 0
	}
	return c.bytesSent.Load()
}

// BytesReceived returns total payload bytes received.
func (c *Collector) BytesReceived() int64 {
	if c == nil {
		return 0
	}
	return c.bytesRecv.Load()
}

// MessagesSent returns the number of messages sent.
func (c *Collector) MessagesSent() int64 {
	if c == nil {
		return 0
	}
	return c.msgsSent.Load()
}

// kindOf maps a span to its Kind, or false for structural / foreign spans.
func kindOf(sp obs.SpanData) (Kind, bool) {
	if sp.Class < 0 || sp.Class >= int(numKinds) {
		return 0, false
	}
	return Kind(sp.Class), true
}

// Busy returns the total busy time of the given kind summed over workers.
func (c *Collector) Busy(kind Kind) time.Duration {
	if c == nil {
		return 0
	}
	var total time.Duration
	for _, sp := range c.tr.Snapshot() {
		if k, ok := kindOf(sp); ok && k == kind {
			total += sp.Duration()
		}
	}
	return total
}

// BusyByWorker returns each worker's busy time of the given kind.
func (c *Collector) BusyByWorker(kind Kind) map[int]time.Duration {
	if c == nil {
		return nil
	}
	out := make(map[int]time.Duration)
	for _, sp := range c.tr.Snapshot() {
		if k, ok := kindOf(sp); ok && k == kind {
			out[sp.Worker] += sp.Duration()
		}
	}
	return out
}

// Series is a time-bucketed utilisation report.
type Series struct {
	Bucket time.Duration
	// Util[kind][b] is the mean fraction (0..1, can exceed 1 for multi-core
	// comm threads) of bucket b that workers spent in that kind.
	Util [][]float64
	// NetBytesPerSec[b] is the receive rate during bucket b.
	NetBytesPerSec []float64
}

// NumBuckets returns the series length.
func (s *Series) NumBuckets() int { return len(s.NetBytesPerSec) }

// BuildSeries buckets the recorded intervals into fixed windows across
// numWorkers workers. An empty (but non-nil) collector yields a single
// all-zero bucket; zero-duration intervals contribute nothing (the
// per-bucket overlap hi-lo is empty), but still extend the series end.
func (c *Collector) BuildSeries(bucket time.Duration, numWorkers int) *Series {
	if c == nil || numWorkers == 0 {
		return &Series{Bucket: bucket, Util: make([][]float64, numKinds)}
	}
	spans := c.tr.Snapshot()
	c.recvMu.Lock()
	stamps := make([]recvStamp, len(c.recvStamps))
	copy(stamps, c.recvStamps)
	c.recvMu.Unlock()

	var end time.Duration
	for _, sp := range spans {
		if _, ok := kindOf(sp); ok && sp.End > end {
			end = sp.End
		}
	}
	for _, st := range stamps {
		if st.at > end {
			end = st.at
		}
	}
	n := int(end/bucket) + 1
	s := &Series{Bucket: bucket, Util: make([][]float64, numKinds), NetBytesPerSec: make([]float64, n)}
	for k := range s.Util {
		s.Util[k] = make([]float64, n)
	}
	for _, sp := range spans {
		kind, ok := kindOf(sp)
		if !ok {
			continue
		}
		for b := int(sp.Start / bucket); b <= int(sp.End/bucket) && b < n; b++ {
			lo := max(sp.Start, time.Duration(b)*bucket)
			hi := min(sp.End, time.Duration(b+1)*bucket)
			if hi > lo {
				s.Util[kind][b] += float64(hi-lo) / float64(bucket) / float64(numWorkers)
			}
		}
	}
	for _, st := range stamps {
		b := int(st.at / bucket)
		if b < n {
			s.NetBytesPerSec[b] += float64(st.bytes) / bucket.Seconds()
		}
	}
	return s
}

// MeanUtil returns the mean utilisation of a kind across non-empty buckets.
func (s *Series) MeanUtil(kind Kind) float64 {
	u := s.Util[kind]
	if len(u) == 0 {
		return 0
	}
	var sum float64
	for _, v := range u {
		sum += v
	}
	return sum / float64(len(u))
}

// PeakNetRate returns the maximum receive rate over the series.
func (s *Series) PeakNetRate() float64 {
	var m float64
	for _, v := range s.NetBytesPerSec {
		if v > m {
			m = v
		}
	}
	return m
}

// SmoothnessCV returns the coefficient of variation of the non-zero network
// rate buckets: lower means the bandwidth curve is smoother (the quality the
// paper attributes to ring scheduling in Fig 13c).
func (s *Series) SmoothnessCV() float64 {
	var vals []float64
	for _, v := range s.NetBytesPerSec {
		if v > 0 {
			vals = append(vals, v)
		}
	}
	if len(vals) < 2 {
		return 0
	}
	sort.Float64s(vals)
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	var varSum float64
	for _, v := range vals {
		varSum += (v - mean) * (v - mean)
	}
	if mean == 0 {
		return 0
	}
	return math.Sqrt(varSum/float64(len(vals))) / mean
}

// WriteChromeTrace dumps every recorded span in the Chrome trace-event
// format (a JSON array loadable in chrome://tracing or Perfetto): "M"
// metadata events name each worker row "worker N", then one "X" complete
// event per span with its attributes as args. Timestamps are microseconds
// from the collector's first event. The output always ends with a newline,
// including the nil collector's empty array.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	return c.Tracer().WriteChromeTrace(w, func(i int) string {
		return fmt.Sprintf("worker %d", i)
	})
}
