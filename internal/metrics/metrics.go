// Package metrics collects per-worker busy-time and traffic accounting for
// the utilisation experiments (paper §5.4, Figure 13). Engines bracket their
// compute and communication phases with Track calls; the collector
// post-processes the recorded intervals into time-bucketed utilisation
// series, the same quantity the paper samples every 100 ms.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind labels what a worker was doing during a tracked interval.
type Kind int

const (
	// Compute is accelerator-style work: tensor math in the training path.
	// Its busy fraction corresponds to the paper's GPU utilisation.
	Compute Kind = iota
	// Comm is communication work: packing, sending, receiving, unpacking.
	// Compute+Comm busy fraction corresponds to CPU utilisation.
	Comm
	// Sample is sampling work (DistDGL-like baseline only).
	Sample
	numKinds
)

// String returns the kind's display name.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Comm:
		return "comm"
	case Sample:
		return "sample"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

type interval struct {
	worker   int
	kind     Kind
	from, to time.Duration // offsets from collector start
}

// Collector accumulates intervals and byte counters. The zero value is not
// usable; call NewCollector. A nil *Collector is legal everywhere and makes
// every method a no-op, so instrumentation can stay in place unconditionally.
type Collector struct {
	mu        sync.Mutex
	startOnce sync.Once
	start     time.Time
	intervals []interval

	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	msgsSent  atomic.Int64
	// recvStamps records (offset, bytes) pairs for network-rate series.
	recvMu     sync.Mutex
	recvStamps []recvStamp
}

type recvStamp struct {
	at    time.Duration
	bytes int64
}

// NewCollector returns an empty collector. Its clock starts at the first
// tracked event.
func NewCollector() *Collector { return &Collector{} }

func (c *Collector) now() time.Duration {
	c.startOnce.Do(func() { c.start = time.Now() })
	return time.Since(c.start)
}

// Track records the start of an interval of the given kind on worker w and
// returns a function that closes the interval. Typical use:
//
//	defer c.Track(w, metrics.Compute)()
func (c *Collector) Track(w int, kind Kind) func() {
	if c == nil {
		return func() {}
	}
	from := c.now()
	return func() {
		to := c.now()
		c.mu.Lock()
		c.intervals = append(c.intervals, interval{worker: w, kind: kind, from: from, to: to})
		c.mu.Unlock()
	}
}

// AddSent records n payload bytes leaving any worker.
func (c *Collector) AddSent(n int64) {
	if c == nil {
		return
	}
	c.bytesSent.Add(n)
	c.msgsSent.Add(1)
}

// AddReceived records n payload bytes arriving, stamped for rate series.
func (c *Collector) AddReceived(n int64) {
	if c == nil {
		return
	}
	c.bytesRecv.Add(n)
	at := c.now()
	c.recvMu.Lock()
	c.recvStamps = append(c.recvStamps, recvStamp{at: at, bytes: n})
	c.recvMu.Unlock()
}

// BytesSent returns total payload bytes sent.
func (c *Collector) BytesSent() int64 {
	if c == nil {
		return 0
	}
	return c.bytesSent.Load()
}

// BytesReceived returns total payload bytes received.
func (c *Collector) BytesReceived() int64 {
	if c == nil {
		return 0
	}
	return c.bytesRecv.Load()
}

// MessagesSent returns the number of messages sent.
func (c *Collector) MessagesSent() int64 {
	if c == nil {
		return 0
	}
	return c.msgsSent.Load()
}

// Busy returns the total busy time of the given kind summed over workers.
func (c *Collector) Busy(kind Kind) time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var total time.Duration
	for _, iv := range c.intervals {
		if iv.kind == kind {
			total += iv.to - iv.from
		}
	}
	return total
}

// Series is a time-bucketed utilisation report.
type Series struct {
	Bucket time.Duration
	// Util[kind][b] is the mean fraction (0..1, can exceed 1 for multi-core
	// comm threads) of bucket b that workers spent in that kind.
	Util [][]float64
	// NetBytesPerSec[b] is the receive rate during bucket b.
	NetBytesPerSec []float64
}

// NumBuckets returns the series length.
func (s *Series) NumBuckets() int { return len(s.NetBytesPerSec) }

// BuildSeries buckets the recorded intervals into fixed windows across
// numWorkers workers.
func (c *Collector) BuildSeries(bucket time.Duration, numWorkers int) *Series {
	if c == nil || numWorkers == 0 {
		return &Series{Bucket: bucket, Util: make([][]float64, numKinds)}
	}
	c.mu.Lock()
	intervals := make([]interval, len(c.intervals))
	copy(intervals, c.intervals)
	c.mu.Unlock()
	c.recvMu.Lock()
	stamps := make([]recvStamp, len(c.recvStamps))
	copy(stamps, c.recvStamps)
	c.recvMu.Unlock()

	var end time.Duration
	for _, iv := range intervals {
		if iv.to > end {
			end = iv.to
		}
	}
	for _, st := range stamps {
		if st.at > end {
			end = st.at
		}
	}
	n := int(end/bucket) + 1
	s := &Series{Bucket: bucket, Util: make([][]float64, numKinds), NetBytesPerSec: make([]float64, n)}
	for k := range s.Util {
		s.Util[k] = make([]float64, n)
	}
	for _, iv := range intervals {
		for b := int(iv.from / bucket); b <= int(iv.to/bucket) && b < n; b++ {
			lo := max(iv.from, time.Duration(b)*bucket)
			hi := min(iv.to, time.Duration(b+1)*bucket)
			if hi > lo {
				s.Util[iv.kind][b] += float64(hi-lo) / float64(bucket) / float64(numWorkers)
			}
		}
	}
	for _, st := range stamps {
		b := int(st.at / bucket)
		if b < n {
			s.NetBytesPerSec[b] += float64(st.bytes) / bucket.Seconds()
		}
	}
	return s
}

// MeanUtil returns the mean utilisation of a kind across non-empty buckets.
func (s *Series) MeanUtil(kind Kind) float64 {
	u := s.Util[kind]
	if len(u) == 0 {
		return 0
	}
	var sum float64
	for _, v := range u {
		sum += v
	}
	return sum / float64(len(u))
}

// PeakNetRate returns the maximum receive rate over the series.
func (s *Series) PeakNetRate() float64 {
	var m float64
	for _, v := range s.NetBytesPerSec {
		if v > m {
			m = v
		}
	}
	return m
}

// SmoothnessCV returns the coefficient of variation of the non-zero network
// rate buckets: lower means the bandwidth curve is smoother (the quality the
// paper attributes to ring scheduling in Fig 13c).
func (s *Series) SmoothnessCV() float64 {
	var vals []float64
	for _, v := range s.NetBytesPerSec {
		if v > 0 {
			vals = append(vals, v)
		}
	}
	if len(vals) < 2 {
		return 0
	}
	sort.Float64s(vals)
	var mean float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	var varSum float64
	for _, v := range vals {
		varSum += (v - mean) * (v - mean)
	}
	if mean == 0 {
		return 0
	}
	return math.Sqrt(varSum/float64(len(vals))) / mean
}

// traceEvent is one Chrome trace-event ("X" = complete event).
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChromeTrace dumps every recorded interval in the Chrome trace-event
// format (a JSON array of complete events, one timeline row per worker),
// loadable in chrome://tracing or Perfetto. Timestamps are microseconds
// from the collector's first event.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	if c == nil {
		_, err := w.Write([]byte("[]"))
		return err
	}
	c.mu.Lock()
	events := make([]traceEvent, 0, len(c.intervals))
	for _, iv := range c.intervals {
		events = append(events, traceEvent{
			Name: iv.kind.String(),
			Ph:   "X",
			Ts:   float64(iv.from.Microseconds()),
			Dur:  float64((iv.to - iv.from).Microseconds()),
			Pid:  0,
			Tid:  iv.worker,
		})
	}
	c.mu.Unlock()
	sort.Slice(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	return json.NewEncoder(w).Encode(events)
}
