package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"neutronstar/internal/obs"
)

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.Track(0, Compute)()
	c.AddSent(100)
	c.AddReceived(100)
	if c.BytesSent() != 0 || c.BytesReceived() != 0 || c.MessagesSent() != 0 {
		t.Fatal("nil collector recorded something")
	}
	if c.Busy(Compute) != 0 {
		t.Fatal("nil collector busy nonzero")
	}
	s := c.BuildSeries(time.Millisecond, 4)
	if s.NumBuckets() != 0 {
		t.Fatal("nil collector produced buckets")
	}
}

func TestTrackRecordsBusyTime(t *testing.T) {
	c := NewCollector()
	stop := c.Track(0, Compute)
	time.Sleep(20 * time.Millisecond)
	stop()
	busy := c.Busy(Compute)
	if busy < 15*time.Millisecond || busy > 200*time.Millisecond {
		t.Fatalf("busy = %v", busy)
	}
	if c.Busy(Comm) != 0 {
		t.Fatal("comm busy should be zero")
	}
}

func TestByteCounters(t *testing.T) {
	c := NewCollector()
	c.AddSent(10)
	c.AddSent(5)
	c.AddReceived(7)
	if c.BytesSent() != 15 || c.BytesReceived() != 7 || c.MessagesSent() != 2 {
		t.Fatal("counters wrong")
	}
}

func TestConcurrentTracking(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				stop := c.Track(w, Kind(i%2))
				c.AddSent(1)
				stop()
			}
		}(w)
	}
	wg.Wait()
	if c.MessagesSent() != 400 {
		t.Fatalf("sent = %d", c.MessagesSent())
	}
}

func TestBuildSeriesUtilisation(t *testing.T) {
	c := NewCollector()
	// Worker 0 computes ~30ms, worker 1 communicates ~30ms concurrently.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		stop := c.Track(0, Compute)
		time.Sleep(30 * time.Millisecond)
		stop()
	}()
	go func() {
		defer wg.Done()
		stop := c.Track(1, Comm)
		time.Sleep(30 * time.Millisecond)
		stop()
	}()
	wg.Wait()
	c.AddReceived(1000)
	s := c.BuildSeries(10*time.Millisecond, 2)
	if s.NumBuckets() < 3 {
		t.Fatalf("buckets = %d", s.NumBuckets())
	}
	// With 2 workers and one computing, mean compute util in the busy window
	// should approach 0.5.
	if u := s.MeanUtil(Compute); u <= 0.1 || u > 0.6 {
		t.Fatalf("mean compute util = %v", u)
	}
	if u := s.MeanUtil(Comm); u <= 0.1 || u > 0.6 {
		t.Fatalf("mean comm util = %v", u)
	}
	if s.PeakNetRate() <= 0 {
		t.Fatal("no network rate recorded")
	}
}

func TestSmoothnessCV(t *testing.T) {
	c := NewCollector()
	c.Track(0, Compute)() // start the clock
	c.AddReceived(100)
	s := c.BuildSeries(time.Millisecond, 1)
	// Single bucket: CV undefined, must be 0.
	if s.SmoothnessCV() != 0 {
		t.Fatal("single-sample CV should be 0")
	}
}

func TestKindString(t *testing.T) {
	if Compute.String() != "compute" || Comm.String() != "comm" || Sample.String() != "sample" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := NewCollector()
	stop := c.Track(2, Comm)
	time.Sleep(2 * time.Millisecond)
	stop()
	stop = c.Track(0, Compute)
	stop()
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	// Two workers contribute 2 "M" metadata events each (thread_name +
	// thread_sort_index), followed by the 2 "X" span events.
	if len(events) != 6 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0]["ph"] != "M" || events[0]["name"] != "thread_name" {
		t.Fatalf("first event should be thread_name metadata: %+v", events[0])
	}
	args := events[0]["args"].(map[string]any)
	if args["name"] != "worker 0" {
		t.Fatalf("worker 0 row name = %v", args["name"])
	}
	var xs []map[string]any
	for _, ev := range events {
		if ev["ph"] == "X" {
			xs = append(xs, ev)
		}
	}
	if len(xs) != 2 {
		t.Fatalf("X events = %d", len(xs))
	}
	// X events sorted by start time; first is the comm interval on worker 2.
	if xs[0]["name"] != "comm" || xs[0]["tid"].(float64) != 2 {
		t.Fatalf("first X event %+v", xs[0])
	}
	if xs[0]["dur"].(float64) < 1000 {
		t.Fatalf("duration %v too short", xs[0]["dur"])
	}
	// Nil collector emits an empty array, newline-terminated like the
	// non-nil path.
	var nilC *Collector
	buf.Reset()
	if err := nilC.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Fatalf("nil trace = %q", buf.String())
	}
}

func TestSpanAndGroup(t *testing.T) {
	c := NewCollector()
	g := c.Group(0, "epoch", obs.Int("epoch", 1))
	sp := c.Span(0, Compute, "matmul", obs.Int("layer", 2))
	time.Sleep(2 * time.Millisecond)
	sp.End()
	g.End()
	// The structural group must not count as busy time.
	busy := c.Busy(Compute)
	if busy <= 0 {
		t.Fatal("span busy time missing")
	}
	spans := c.Tracer().Snapshot()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	var group, op *obs.SpanData
	for i := range spans {
		switch spans[i].Name {
		case "epoch":
			group = &spans[i]
		case "matmul":
			op = &spans[i]
		}
	}
	if group == nil || op == nil {
		t.Fatalf("missing spans: %+v", spans)
	}
	if group.Class != obs.ClassNone || op.Class != int(Compute) {
		t.Fatalf("classes: group=%d op=%d", group.Class, op.Class)
	}
	if op.Attr("layer") != 2 {
		t.Fatalf("op attrs = %+v", op.Attrs)
	}
	if w := c.BusyByWorker(Compute); w[0] != busy {
		t.Fatalf("BusyByWorker = %v, Busy = %v", w, busy)
	}
	// Nil collector derivatives are no-ops.
	var nilC *Collector
	nilC.Span(0, Compute, "x").End()
	nilC.Group(0, "y").End()
	if nilC.Tracer() != nil || nilC.Elapsed() != 0 || nilC.BusyByWorker(Compute) != nil {
		t.Fatal("nil collector leaked state")
	}
}

// addSynthetic injects an exact interval so bucket math is deterministic.
func addSynthetic(c *Collector, w int, kind Kind, start, end time.Duration) {
	c.Tracer().Add(obs.SpanData{Worker: w, Class: int(kind), Name: kind.String(), Start: start, End: end})
}

func TestBuildSeriesEmptyCollector(t *testing.T) {
	c := NewCollector()
	s := c.BuildSeries(10*time.Millisecond, 4)
	if s.NumBuckets() != 1 {
		t.Fatalf("empty collector buckets = %d", s.NumBuckets())
	}
	for k := Kind(0); k < numKinds; k++ {
		if s.MeanUtil(k) != 0 {
			t.Fatalf("kind %v util nonzero", k)
		}
	}
	if s.PeakNetRate() != 0 || s.SmoothnessCV() != 0 {
		t.Fatal("empty collector reported rates")
	}
}

func TestBuildSeriesSpanningManyBuckets(t *testing.T) {
	c := NewCollector()
	// One interval covering [5ms, 35ms) across 10ms buckets: partial first
	// and last buckets, fully-covered middle buckets.
	addSynthetic(c, 0, Compute, 5*time.Millisecond, 35*time.Millisecond)
	s := c.BuildSeries(10*time.Millisecond, 1)
	if s.NumBuckets() != 4 {
		t.Fatalf("buckets = %d", s.NumBuckets())
	}
	want := []float64{0.5, 1, 1, 0.5}
	for b, w := range want {
		if got := s.Util[Compute][b]; got < w-1e-9 || got > w+1e-9 {
			t.Fatalf("bucket %d util = %v want %v", b, got, w)
		}
	}
}

func TestBuildSeriesZeroDurationDropped(t *testing.T) {
	c := NewCollector()
	// A zero-duration interval extends the series but contributes no busy
	// time (hi <= lo in every bucket).
	addSynthetic(c, 0, Compute, 25*time.Millisecond, 25*time.Millisecond)
	s := c.BuildSeries(10*time.Millisecond, 1)
	if s.NumBuckets() != 3 {
		t.Fatalf("buckets = %d", s.NumBuckets())
	}
	for b := 0; b < s.NumBuckets(); b++ {
		if s.Util[Compute][b] != 0 {
			t.Fatalf("zero-duration interval counted in bucket %d", b)
		}
	}
}

func TestBuildSeriesIgnoresStructuralSpans(t *testing.T) {
	c := NewCollector()
	addSynthetic(c, 0, Compute, 0, 10*time.Millisecond)
	// A structural epoch group covering the whole run must not alter the
	// utilisation series or Busy totals.
	c.Tracer().Add(obs.SpanData{Worker: 0, Class: obs.ClassNone, Name: "epoch", Start: 0, End: 10 * time.Millisecond})
	s := c.BuildSeries(10*time.Millisecond, 1)
	if got := s.Util[Compute][0]; got < 1-1e-9 || got > 1+1e-9 {
		t.Fatalf("compute util = %v", got)
	}
	if c.Busy(Compute) != 10*time.Millisecond {
		t.Fatalf("busy = %v", c.Busy(Compute))
	}
}
