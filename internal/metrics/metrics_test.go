package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.Track(0, Compute)()
	c.AddSent(100)
	c.AddReceived(100)
	if c.BytesSent() != 0 || c.BytesReceived() != 0 || c.MessagesSent() != 0 {
		t.Fatal("nil collector recorded something")
	}
	if c.Busy(Compute) != 0 {
		t.Fatal("nil collector busy nonzero")
	}
	s := c.BuildSeries(time.Millisecond, 4)
	if s.NumBuckets() != 0 {
		t.Fatal("nil collector produced buckets")
	}
}

func TestTrackRecordsBusyTime(t *testing.T) {
	c := NewCollector()
	stop := c.Track(0, Compute)
	time.Sleep(20 * time.Millisecond)
	stop()
	busy := c.Busy(Compute)
	if busy < 15*time.Millisecond || busy > 200*time.Millisecond {
		t.Fatalf("busy = %v", busy)
	}
	if c.Busy(Comm) != 0 {
		t.Fatal("comm busy should be zero")
	}
}

func TestByteCounters(t *testing.T) {
	c := NewCollector()
	c.AddSent(10)
	c.AddSent(5)
	c.AddReceived(7)
	if c.BytesSent() != 15 || c.BytesReceived() != 7 || c.MessagesSent() != 2 {
		t.Fatal("counters wrong")
	}
}

func TestConcurrentTracking(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				stop := c.Track(w, Kind(i%2))
				c.AddSent(1)
				stop()
			}
		}(w)
	}
	wg.Wait()
	if c.MessagesSent() != 400 {
		t.Fatalf("sent = %d", c.MessagesSent())
	}
}

func TestBuildSeriesUtilisation(t *testing.T) {
	c := NewCollector()
	// Worker 0 computes ~30ms, worker 1 communicates ~30ms concurrently.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		stop := c.Track(0, Compute)
		time.Sleep(30 * time.Millisecond)
		stop()
	}()
	go func() {
		defer wg.Done()
		stop := c.Track(1, Comm)
		time.Sleep(30 * time.Millisecond)
		stop()
	}()
	wg.Wait()
	c.AddReceived(1000)
	s := c.BuildSeries(10*time.Millisecond, 2)
	if s.NumBuckets() < 3 {
		t.Fatalf("buckets = %d", s.NumBuckets())
	}
	// With 2 workers and one computing, mean compute util in the busy window
	// should approach 0.5.
	if u := s.MeanUtil(Compute); u <= 0.1 || u > 0.6 {
		t.Fatalf("mean compute util = %v", u)
	}
	if u := s.MeanUtil(Comm); u <= 0.1 || u > 0.6 {
		t.Fatalf("mean comm util = %v", u)
	}
	if s.PeakNetRate() <= 0 {
		t.Fatal("no network rate recorded")
	}
}

func TestSmoothnessCV(t *testing.T) {
	c := NewCollector()
	c.Track(0, Compute)() // start the clock
	c.AddReceived(100)
	s := c.BuildSeries(time.Millisecond, 1)
	// Single bucket: CV undefined, must be 0.
	if s.SmoothnessCV() != 0 {
		t.Fatal("single-sample CV should be 0")
	}
}

func TestKindString(t *testing.T) {
	if Compute.String() != "compute" || Comm.String() != "comm" || Sample.String() != "sample" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := NewCollector()
	stop := c.Track(2, Comm)
	time.Sleep(2 * time.Millisecond)
	stop()
	stop = c.Track(0, Compute)
	stop()
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	// Events sorted by start time; first is the comm interval on worker 2.
	if events[0]["name"] != "comm" || events[0]["tid"].(float64) != 2 {
		t.Fatalf("first event %+v", events[0])
	}
	if events[0]["dur"].(float64) < 1000 {
		t.Fatalf("duration %v too short", events[0]["dur"])
	}
	// Nil collector emits an empty array.
	var nilC *Collector
	buf.Reset()
	if err := nilC.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]" {
		t.Fatalf("nil trace = %q", buf.String())
	}
}
