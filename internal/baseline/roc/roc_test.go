package roc

import (
	"testing"

	"neutronstar/internal/dataset"
	"neutronstar/internal/nn"
)

func TestRejectsGAT(t *testing.T) {
	ds := dataset.Load(dataset.Spec{
		Name: "r", Vertices: 100, AvgDegree: 4, FeatureDim: 8,
		NumClasses: 3, HiddenDim: 4, Gen: dataset.GenRMAT, Seed: 1,
	})
	if _, err := New(ds, Options{Workers: 2, Model: nn.GAT}); err == nil {
		t.Fatal("expected GAT rejection")
	}
}

func TestRocTrains(t *testing.T) {
	ds := dataset.Load(dataset.Spec{
		Name: "r", Vertices: 300, AvgDegree: 6, FeatureDim: 12,
		NumClasses: 4, HiddenDim: 8, Gen: dataset.GenSBM, Homophily: 0.85, Seed: 2,
	})
	e, err := New(ds, Options{Workers: 3, Model: nn.GCN, Seed: 3, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	stats := e.Train(10)
	if stats[9].Loss >= stats[0].Loss {
		t.Fatalf("ROC baseline did not learn: %v -> %v", stats[0].Loss, stats[9].Loss)
	}
	if e.Mode() != "depcomm" {
		t.Fatalf("mode = %s", e.Mode())
	}
}
