// Package roc configures the training engine to mimic ROC (Jia et al.,
// MLSys'20), the DepComm baseline of the paper's evaluation: full-graph
// training where every worker pulls the entire partition block from its
// peers instead of source-specific chunks (§5.3: "the ROC worker does not
// differentiate the output messages with various destinations and send[s]
// the whole messages block to all workers"), with none of NeutronStar's
// communication optimisations. Like the real system, it has no
// edge-associated NN computation and therefore cannot run GAT.
package roc

import (
	"fmt"

	"neutronstar/internal/comm"
	"neutronstar/internal/dataset"
	"neutronstar/internal/engine"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
)

// Options configures the ROC-like baseline.
type Options struct {
	Workers   int
	Model     nn.ModelKind
	Hidden    int
	LR        float32
	Seed      uint64
	Profile   comm.NetworkProfile
	Collector *metrics.Collector
}

// New returns an engine emulating ROC's execution strategy. GAT is rejected
// — ROC lacks edge-centric NN computation (Table 5 footnote).
func New(ds *dataset.Dataset, opts Options) (*engine.Engine, error) {
	if opts.Model == nn.GAT {
		return nil, fmt.Errorf("roc: GAT is unsupported (no edge-associated NN computation)")
	}
	return engine.NewEngine(ds, engine.Options{
		Workers:   opts.Workers,
		Mode:      engine.DepComm,
		Model:     opts.Model,
		Hidden:    opts.Hidden,
		LR:        opts.LR,
		Seed:      opts.Seed,
		Profile:   opts.Profile,
		Collector: opts.Collector,
		Broadcast: true,
		// No ring scheduling, no lock-free enqueue, no overlap: ROC predates
		// these NeutronStar optimisations.
		Ring: false, LockFree: false, Overlap: false,
	})
}
