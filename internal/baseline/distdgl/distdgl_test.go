package distdgl

import (
	"testing"

	"neutronstar/internal/dataset"
	"neutronstar/internal/metrics"
)

func testDS(t testing.TB) *dataset.Dataset {
	t.Helper()
	return dataset.Load(dataset.Spec{
		Name: "dgl", Vertices: 400, AvgDegree: 8, FeatureDim: 12,
		NumClasses: 4, HiddenDim: 8, Gen: dataset.GenSBM, Homophily: 0.85, Seed: 55,
	})
}

func TestTrainerLearns(t *testing.T) {
	ds := testDS(t)
	tr, err := New(ds, Options{Workers: 3, BatchSize: 32, Seed: 1, LR: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	before := tr.Evaluate(ds.TestMask)
	var first, last float64
	for e := 0; e < 12; e++ {
		st := tr.RunEpoch()
		if e == 0 {
			first = st.Loss
		}
		last = st.Loss
		if st.Batches <= 0 {
			t.Fatal("no batches")
		}
	}
	after := tr.Evaluate(ds.TestMask)
	if last >= first {
		t.Fatalf("loss did not improve: %v -> %v", first, last)
	}
	if after <= before {
		t.Fatalf("accuracy did not improve: %v -> %v", before, after)
	}
}

func TestReplicasStayInSync(t *testing.T) {
	ds := testDS(t)
	tr, err := New(ds, Options{Workers: 4, BatchSize: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.RunEpoch()
	ref := tr.ws[0].model.Params()
	for _, w := range tr.ws[1:] {
		ps := w.model.Params()
		for k := range ref {
			if !ref[k].Value.Equal(ps[k].Value) {
				t.Fatalf("worker %d param %d diverged", w.id, k)
			}
		}
	}
}

func TestSamplingTrafficRecorded(t *testing.T) {
	ds := testDS(t)
	coll := metrics.NewCollector()
	tr, err := New(ds, Options{Workers: 3, BatchSize: 32, Seed: 3, Collector: coll})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.RunEpoch()
	if coll.BytesSent() == 0 {
		t.Fatal("no feature-fetch traffic recorded")
	}
	if coll.Busy(metrics.Sample) == 0 {
		t.Fatal("no sampling time recorded")
	}
}

func TestRejectsBadFanouts(t *testing.T) {
	ds := testDS(t)
	if _, err := New(ds, Options{Workers: 2, Fanouts: []int{5, 5, 5}}); err == nil {
		t.Fatal("expected error for 3 fanouts on 2-layer model")
	}
}

func TestDefaultsApplied(t *testing.T) {
	ds := testDS(t)
	tr, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.opts.BatchSize != 64 || len(tr.opts.Fanouts) != 2 || tr.opts.Workers != 1 {
		t.Fatalf("defaults wrong: %+v", tr.opts)
	}
	st := tr.RunEpoch()
	if st.Loss <= 0 {
		t.Fatal("no loss computed")
	}
}
