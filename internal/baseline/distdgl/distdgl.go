// Package distdgl reimplements the qualitative behaviour of DistDGL, the
// DepCache-with-sampling baseline of the paper's evaluation (§5): the graph
// and features live in a partitioned store; each worker trains on
// mini-batches of its own labeled vertices, sampling a bounded neighborhood
// per batch ((10, 25) fanout by default) and fetching the features of remote
// frontier vertices over the network; parameters synchronise per batch.
//
// The sampling pipeline — not the NN compute — dominates each step, which
// reproduces the profile the paper measured for DistDGL: low GPU
// utilisation, high network traffic, and reduced final accuracy relative to
// full-graph training.
package distdgl

import (
	"fmt"
	"math"
	"time"

	"neutronstar/internal/autograd"
	"neutronstar/internal/comm"
	"neutronstar/internal/dataset"
	"neutronstar/internal/engine"
	"neutronstar/internal/graph"
	"neutronstar/internal/metrics"
	"neutronstar/internal/nn"
	"neutronstar/internal/partition"
	"neutronstar/internal/sampler"
	"neutronstar/internal/tensor"
)

// Options configures the trainer.
type Options struct {
	Workers   int
	BatchSize int
	// Fanouts per layer, input-first; default (25, 10): at most 10 sampled
	// neighbors for a seed, at most 25 for each of those.
	Fanouts   []int
	Model     nn.ModelKind
	Hidden    int
	LR        float32
	Seed      uint64
	Profile   comm.NetworkProfile
	Collector *metrics.Collector
}

func (o Options) withDefaults(ds *dataset.Dataset) Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 64
	}
	if len(o.Fanouts) == 0 {
		o.Fanouts = []int{25, 10}
	}
	if o.Model == "" {
		o.Model = nn.GCN
	}
	if o.Hidden <= 0 {
		o.Hidden = ds.Spec.HiddenDim
	}
	if o.LR == 0 {
		o.LR = 0.01
	}
	return o
}

// EpochStats reports one epoch of mini-batch training.
type EpochStats struct {
	Epoch    int
	Loss     float64 // mean batch loss across workers
	Duration time.Duration
	Batches  int
}

// Trainer is a DistDGL-like distributed sampling trainer.
type Trainer struct {
	ds     *dataset.Dataset
	opts   Options
	part   *partition.Partition
	fabric *comm.Fabric
	ws     []*worker
	epoch  int
	// batchesPerEpoch is the global maximum so every worker joins every
	// all-reduce even when its local batch stream is exhausted.
	batchesPerEpoch int

	edgeInvSqrt []float32 // 1/sqrt(din+1) per vertex, for GCN normalisation
	selfNorm    []float32
}

type worker struct {
	id    int
	tr    *Trainer
	model *nn.Model
	opt   nn.Optimizer
	it    *sampler.BatchIterator
	rng   *tensor.RNG
	mb    *comm.Mailbox
}

// New builds the trainer: partitions the graph, replicates the model and
// prepares per-worker batch iterators over owned training vertices.
func New(ds *dataset.Dataset, opts Options) (*Trainer, error) {
	opts = opts.withDefaults(ds)
	if len(opts.Fanouts) != 2 {
		return nil, fmt.Errorf("distdgl: fanouts must cover the 2-layer model, got %v", opts.Fanouts)
	}
	part, err := partition.New(partition.Chunk, ds.Graph, opts.Workers)
	if err != nil {
		return nil, err
	}
	t := &Trainer{
		ds: ds, opts: opts, part: part,
		fabric: comm.NewFabric(opts.Workers, opts.Profile, opts.Collector),
	}
	_, t.selfNorm = graph.GCNNormCoefficients(ds.Graph)
	t.edgeInvSqrt = make([]float32, ds.NumVertices())
	for v := 0; v < ds.NumVertices(); v++ {
		t.edgeInvSqrt[v] = invSqrt(ds.Graph.InDegree(int32(v)) + 1)
	}
	dims := []int{ds.Spec.FeatureDim, opts.Hidden, ds.Spec.NumClasses}
	for i := 0; i < opts.Workers; i++ {
		model, err := nn.NewModel(opts.Model, dims, 0, opts.Seed+7)
		if err != nil {
			t.fabric.Close()
			return nil, err
		}
		var trainIDs []int32
		for _, v := range part.Parts[i] {
			if ds.TrainMask[v] {
				trainIDs = append(trainIDs, v)
			}
		}
		rng := tensor.NewRNG(opts.Seed ^ (uint64(i)+1)*0x51ED270)
		w := &worker{
			id: i, tr: t, model: model, opt: nn.NewAdam(opts.LR),
			it:  sampler.NewBatchIterator(trainIDs, opts.BatchSize, rng),
			rng: rng, mb: t.fabric.Mailbox(i),
		}
		t.ws = append(t.ws, w)
		if nb := w.it.NumBatches(); nb > t.batchesPerEpoch {
			t.batchesPerEpoch = nb
		}
	}
	return t, nil
}

// Close releases the fabric.
func (t *Trainer) Close() { t.fabric.Close() }

// BatchesPerEpoch returns the synchronised batch count per epoch.
func (t *Trainer) BatchesPerEpoch() int { return t.batchesPerEpoch }

// RunEpoch trains one epoch of synchronous mini-batches across workers.
func (t *Trainer) RunEpoch() EpochStats {
	start := time.Now()
	losses := make(chan float64, len(t.ws))
	for _, w := range t.ws {
		go func(w *worker) { losses <- w.runEpoch(t.epoch) }(w)
	}
	var sum float64
	for range t.ws {
		sum += <-losses
	}
	t.epoch++
	return EpochStats{
		Epoch: t.epoch, Loss: sum / float64(len(t.ws)),
		Duration: time.Since(start), Batches: t.batchesPerEpoch,
	}
}

// Evaluate computes full-graph accuracy with the current parameters.
func (t *Trainer) Evaluate(mask []bool) float64 {
	logits := engine.ReferenceForward(t.ds.Graph, t.ws[0].model, t.ds.Features)
	pred := tensor.ArgMaxRows(logits)
	correct, total := 0, 0
	for v, m := range mask {
		if !m {
			continue
		}
		total++
		if int32(pred[v]) == t.ds.Labels[v] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// runEpoch runs the worker's mini-batches, returning its mean batch loss.
func (w *worker) runEpoch(epoch int) float64 {
	t := w.tr
	coll := t.opts.Collector
	w.it.Reset()
	var lossSum float64
	batches := 0
	for b := 0; b < t.batchesPerEpoch; b++ {
		step := epoch*t.batchesPerEpoch + b
		batch := w.it.Next()
		if len(batch) > 0 {
			lossSum += w.trainBatch(step, batch, coll)
			batches++
		}
		// Synchronous data parallelism: everyone joins every all-reduce.
		w.allReduce(step)
		w.opt.Step(w.model.Params())
		nn.ZeroGrads(w.model.Params())
	}
	if batches == 0 {
		return 0
	}
	return lossSum / float64(batches)
}

// trainBatch samples, fetches remote features, and runs forward/backward.
func (w *worker) trainBatch(step int, batch []int32, coll *metrics.Collector) float64 {
	t := w.tr

	// --- Sampling phase (the DistDGL bottleneck) ---
	stop := coll.Track(w.id, metrics.Sample)
	blocks := sampler.Sample(t.ds.Graph, batch, t.opts.Fanouts, w.rng)
	stop()

	// --- Remote feature fetch for the input frontier ---
	feats := w.fetchFeatures(step, blocks[0].Srcs, coll)

	// --- Compute phase ---
	stop = coll.Track(w.id, metrics.Compute)
	defer stop()
	type run struct {
		tape *autograd.Tape
		in   *autograd.Variable
		out  *autograd.Variable
	}
	var runs []run
	h := feats
	for li, layer := range w.model.Layers {
		blk := blocks[li]
		tape := autograd.NewTape()
		in := tape.Leaf(h, li > 0, "h")
		rows := in
		if pt, ok := layer.(nn.PreTransformer); ok {
			rows = pt.PreTransform(tape, in, true, w.rng)
		}
		edgeNorm := make([]float32, blk.NumEdges())
		selfNorm := make([]float32, len(blk.Dsts))
		for e := range blk.SrcIdx {
			u := blk.Srcs[blk.SrcIdx[e]]
			v := blk.Dsts[blk.DstIdx[e]]
			edgeNorm[e] = t.edgeInvSqrt[u] * t.edgeInvSqrt[v]
		}
		for d, v := range blk.Dsts {
			selfNorm[d] = t.selfNorm[v]
		}
		ctx := &nn.ForwardCtx{
			Tape:     tape,
			EdgeSrc:  tape.Gather(rows, blk.SrcIdx),
			Self:     tape.Gather(rows, blk.SelfIdx),
			Offsets:  blk.Offsets,
			EdgeDst:  blk.DstIdx,
			EdgeNorm: edgeNorm,
			SelfNorm: selfNorm,
			Training: true,
			RNG:      w.rng,
		}
		out := layer.Forward(ctx)
		runs = append(runs, run{tape: tape, in: in, out: out})
		h = out.Value
	}
	// Loss over the batch seeds (the top block's destinations).
	top := runs[len(runs)-1]
	seeds := blocks[len(blocks)-1].Dsts
	labels := make([]int32, len(seeds))
	mask := make([]bool, len(seeds))
	for i, v := range seeds {
		labels[i] = t.ds.Labels[v]
		mask[i] = true
	}
	loss, _ := top.tape.NLLLossMasked(top.tape.LogSoftmax(top.out), labels, mask)
	top.tape.Backward(loss, nil)
	for l := len(runs) - 2; l >= 0; l-- {
		seed := runs[l+1].in.Grad
		if seed == nil {
			seed = tensor.New(runs[l].out.Value.Rows(), runs[l].out.Value.Cols())
		}
		runs[l].tape.Backward(runs[l].out, seed)
	}
	for _, p := range w.model.Params() {
		p.CollectGrad()
	}
	return float64(loss.Value.At(0, 0))
}

// fetchFeatures assembles the features of the input frontier. Owned rows
// come from local storage; remote rows cross the fabric from their owner's
// partition of the distributed feature store. (The owner's rows are read
// directly — the transfer cost, which is what matters, is charged to the
// owner's egress and this worker's ingress.)
func (w *worker) fetchFeatures(step int, frontier []int32, coll *metrics.Collector) *tensor.Tensor {
	t := w.tr
	dim := t.ds.Spec.FeatureDim
	out := tensor.New(len(frontier), dim)
	byOwner := make(map[int][]int, t.opts.Workers) // owner -> frontier positions
	for i, v := range frontier {
		owner := int(t.part.Assign[v])
		if owner == w.id {
			copy(out.Row(i), t.ds.Features.Row(int(v)))
		} else {
			byOwner[owner] = append(byOwner[owner], i)
		}
	}
	stop := coll.Track(w.id, metrics.Comm)
	defer stop()
	for owner, positions := range byOwner {
		rows := tensor.New(len(positions), dim)
		verts := make([]int32, len(positions))
		for k, pos := range positions {
			verts[k] = frontier[pos]
			copy(rows.Row(k), t.ds.Features.Row(int(frontier[pos])))
		}
		t.fabric.Send(&comm.Message{
			From: owner, To: w.id, Kind: comm.KindSample,
			Epoch: step, Layer: 0, Seq: 0, Vertices: verts, Rows: rows,
		})
		msg := w.mb.Wait(comm.KindSample, step, 0, 0, owner)
		for k, pos := range positions {
			copy(out.Row(pos), msg.Rows.Row(k))
		}
	}
	return out
}

// allReduce synchronises gradients across workers with the ring collective.
func (w *worker) allReduce(step int) {
	params := w.model.Params()
	total := 0
	for _, p := range params {
		total += p.Grad.Len()
	}
	buf := make([]float32, total)
	off := 0
	for _, p := range params {
		copy(buf[off:], p.Grad.Data())
		off += p.Grad.Len()
	}
	stop := w.tr.opts.Collector.Track(w.id, metrics.Comm)
	comm.RingAllReduce(w.tr.fabric, w.id, w.tr.opts.Workers, 1<<20+step, buf, w.tr.opts.Collector)
	stop()
	off = 0
	for _, p := range params {
		copy(p.Grad.Data(), buf[off:off+p.Grad.Len()])
		off += p.Grad.Len()
	}
}

func invSqrt(x int) float32 {
	return float32(1 / math.Sqrt(float64(x)))
}
