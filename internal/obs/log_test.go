package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
}

func TestLoggerTextFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.now = fixedClock
	l.Info("epoch done", "epoch", 3, "loss", 0.421875, "phase", "forward pass")
	got := buf.String()
	want := `ts=2026-08-05T12:00:00.000Z level=info msg="epoch done" epoch=3 loss=0.421875 phase="forward pass"` + "\n"
	if got != want {
		t.Fatalf("line = %q\nwant  %q", got, want)
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Debug("hidden")
	l.Info("shown")
	if strings.Contains(buf.String(), "hidden") || !strings.Contains(buf.String(), "shown") {
		t.Fatalf("level filter broken: %q", buf.String())
	}
	buf.Reset()
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Fatal("SetLevel(debug) did not enable debug lines")
	}
	buf.Reset()
	l.SetLevel(LevelError)
	l.Warn("suppressed")
	l.Error("kept", "err", errors.New("boom"))
	if strings.Contains(buf.String(), "suppressed") || !strings.Contains(buf.String(), "err=boom") {
		t.Fatalf("error-level filter: %q", buf.String())
	}
}

func TestLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf).WithJSON(true)
	l.now = fixedClock
	l.Info("hello", "n", 2, "who", `says "hi"`)
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	if obj["level"] != "info" || obj["msg"] != "hello" || obj["n"] != float64(2) || obj["who"] != `says "hi"` {
		t.Fatalf("obj = %v", obj)
	}
}

func TestLoggerWithFields(t *testing.T) {
	var buf bytes.Buffer
	root := NewLogger(&buf)
	child := root.With("worker", 3)
	child.Info("start")
	if !strings.Contains(buf.String(), "worker=3") {
		t.Fatalf("base field missing: %q", buf.String())
	}
	// Level is shared between root and derived loggers.
	child.SetLevel(LevelError)
	buf.Reset()
	root.Info("quiet")
	if buf.Len() != 0 {
		t.Fatal("shared level not applied to root")
	}
}

func TestLoggerNilAndOddPairs(t *testing.T) {
	var l *Logger
	l.Info("nothing happens") // must not panic
	l.SetLevel(LevelDebug)
	if l.With("a", 1) != nil || l.WithJSON(true) != nil {
		t.Fatal("nil logger should derive nil")
	}
	var buf bytes.Buffer
	lg := NewLogger(&buf)
	lg.Info("odd", "key")
	if !strings.Contains(buf.String(), `key=(MISSING)`) {
		t.Fatalf("odd pair marker missing: %q", buf.String())
	}
}

func TestParseLevel(t *testing.T) {
	if ParseLevel("debug") != LevelDebug || ParseLevel("WARN") != LevelWarn ||
		ParseLevel("error") != LevelError || ParseLevel("bogus") != LevelInfo {
		t.Fatal("ParseLevel mapping wrong")
	}
}
