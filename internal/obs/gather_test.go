package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestGatherSnapshotsEverySeries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("g_total", "t").Add(3)
	reg.Gauge("g_gauge", "t").Set(-2)
	reg.HistogramVec("g_seconds", "t", ExpBuckets(1e-3, 10, 3), "op").With("read").Observe(0.05)
	reg.CounterVec("g_ops_total", "t", "op").With("a").Inc()
	reg.CounterVec("g_ops_total", "t", "op").With("b").Add(4)

	snaps := reg.Gather()
	byKey := map[string]SeriesSnapshot{}
	for _, s := range snaps {
		byKey[s.Key()] = s
	}
	if s := byKey["g_total"]; s.Kind != "counter" || s.Value != 3 {
		t.Fatalf("g_total: %+v", s)
	}
	if s := byKey["g_gauge"]; s.Kind != "gauge" || s.Value != -2 {
		t.Fatalf("g_gauge: %+v", s)
	}
	h := byKey["g_seconds\xffread"]
	if h.Kind != "histogram" || h.Count != 1 || h.Labels()["op"] != "read" {
		t.Fatalf("g_seconds{op=read}: %+v", h)
	}
	if q := h.Quantile(0.5); q <= 0 {
		t.Fatalf("snapshot quantile = %v", q)
	}
	if byKey["g_ops_total\xffa"].Value != 1 || byKey["g_ops_total\xffb"].Value != 4 {
		t.Fatalf("vec children: %+v", byKey)
	}
}

// TestMetricsHandlerContentNegotiation is the /metrics exposition contract:
// the classic scrape gets the versioned 0.0.4 text content type, an
// OpenMetrics scrape gets the 1.0 rendering with bucket exemplars and the
// terminating # EOF.
func TestMetricsHandlerContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("neg_total", "t").Add(2)
	hist := reg.Histogram("neg_seconds", "t", ExpBuckets(1e-3, 10, 3))
	hist.ObserveWithExemplar(0.05, "00000000000000ab", time.Unix(1700000000, 0))

	ts := httptest.NewServer(MetricsHandler(reg))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != textContentType {
		t.Fatalf("default content type %q, want %q", ct, textContentType)
	}
	if !strings.Contains(string(plain), "neg_total 2") {
		t.Fatalf("plain exposition missing counter:\n%s", plain)
	}

	req, err := http.NewRequest("GET", ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0, text/plain;q=0.5")
	r, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	om, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if ct := r.Header.Get("Content-Type"); ct != openMetricsContentType {
		t.Fatalf("openmetrics content type %q, want %q", ct, openMetricsContentType)
	}
	body := string(om)
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("openmetrics body does not end with # EOF:\n...%s", body[len(body)-40:])
	}
	// Counter families declare under the base name; the sample keeps _total.
	if !strings.Contains(body, "# TYPE neg counter\n") || !strings.Contains(body, "neg_total 2") {
		t.Fatalf("counter family rendering:\n%s", body)
	}
	if !strings.Contains(body, `# {trace_id="00000000000000ab"} 0.05 1700000000.000`) {
		t.Fatalf("exemplar payload missing:\n%s", body)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	RegisterBuildInfo(reg) // idempotent

	var found *SeriesSnapshot
	for _, s := range reg.Gather() {
		if s.Name == "ns_build_info" {
			s := s
			if found != nil {
				t.Fatal("ns_build_info registered twice")
			}
			found = &s
		}
	}
	if found == nil {
		t.Fatal("ns_build_info not registered")
	}
	if found.Value != 1 {
		t.Fatalf("ns_build_info = %v, want 1", found.Value)
	}
	labels := found.Labels()
	for _, k := range []string{"version", "commit", "go_version"} {
		if labels[k] == "" {
			t.Fatalf("ns_build_info missing label %q: %v", k, labels)
		}
	}
	if !strings.HasPrefix(labels["go_version"], "go") {
		t.Fatalf("go_version = %q", labels["go_version"])
	}
}
