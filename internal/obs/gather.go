package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Gathering turns the live registry into plain data: one SeriesSnapshot per
// labeled series, ordered by family name then label values. The metric
// history samples these into its ring buffer, and the OpenMetrics writer
// renders them with exemplars — both consumers want a consistent point-in-
// time view without holding registry locks while they work.

// SeriesSnapshot is one series' instantaneous state. Counters and gauges
// carry Value; histograms carry Count/Sum plus the per-bucket breakdown
// (Buckets are non-cumulative, len(Upper)+1 with the +Inf bucket last) and
// any bucket exemplars. Upper aliases the family's bound slice, which is
// immutable after registration.
type SeriesSnapshot struct {
	Name        string
	Kind        string // "counter", "gauge" or "histogram"
	LabelNames  []string
	LabelValues []string
	Value       float64
	Count       uint64
	Sum         float64
	Upper       []float64
	Buckets     []uint64
	Exemplars   []*Exemplar
}

// Key identifies the series across snapshots: the family name plus the
// label values joined on a byte no label value may contain.
func (s *SeriesSnapshot) Key() string {
	if len(s.LabelValues) == 0 {
		return s.Name
	}
	return s.Name + "\xff" + strings.Join(s.LabelValues, "\xff")
}

// Labels renders the label set as a map (nil for an unlabeled series).
func (s *SeriesSnapshot) Labels() map[string]string {
	if len(s.LabelNames) == 0 {
		return nil
	}
	m := make(map[string]string, len(s.LabelNames))
	for i, n := range s.LabelNames {
		m[n] = s.LabelValues[i]
	}
	return m
}

// Quantile estimates the p-quantile of a histogram snapshot (0 for other
// kinds or an empty histogram), with the same interpolating estimator as
// Histogram.Quantile.
func (s *SeriesSnapshot) Quantile(p float64) float64 {
	if s.Kind != "histogram" {
		return 0
	}
	return bucketQuantile(s.Upper, s.Buckets, s.Sum, p)
}

// Gather snapshots every series in the registry, sorted by family name then
// label values. Under concurrent updates each series is individually
// consistent (its values were loaded together), like any monitoring read.
func (r *Registry) Gather() []SeriesSnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		names = append(names, name)
		fams[name] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var out []SeriesSnapshot
	for _, name := range names {
		f := fams[name]
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			se := f.series[k]
			snap := SeriesSnapshot{
				Name:        f.name,
				Kind:        f.kind.String(),
				LabelNames:  f.labelNames,
				LabelValues: se.labelValues,
			}
			switch f.kind {
			case counterKind:
				snap.Value = se.c.Value()
			case gaugeKind:
				snap.Value = se.g.Value()
			case histogramKind:
				snap.Count = se.h.Count()
				snap.Sum = se.h.Sum()
				snap.Upper = se.h.upper
				snap.Buckets = se.h.bucketCounts()
				snap.Exemplars = se.h.Exemplars()
			}
			out = append(out, snap)
		}
		f.mu.Unlock()
	}
	return out
}

// WriteOpenMetrics renders the registry in OpenMetrics 1.0 text format: like
// the classic exposition but with counter families declared under their base
// name (the _total suffix stays on the sample), bucket exemplars rendered as
// "# {trace_id=...} value timestamp" payloads, and a terminating # EOF line.
// Exemplars are the reason this format exists here — they are not expressible
// in the 0.0.4 text format.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	var b strings.Builder
	var lastFamily string
	for _, s := range r.Gather() {
		if s.Name != lastFamily {
			lastFamily = s.Name
			base := s.Name
			if s.Kind == "counter" {
				base = strings.TrimSuffix(base, "_total")
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, s.Kind)
		}
		switch s.Kind {
		case "counter", "gauge":
			writeSample(&b, s.Name, s.LabelNames, s.LabelValues, "", "", s.Value)
		case "histogram":
			var cum uint64
			for i, upper := range s.Upper {
				cum += s.Buckets[i]
				writeExemplarSample(&b, s.Name+"_bucket", s.LabelNames, s.LabelValues,
					formatFloat(upper), float64(cum), s.Exemplars[i])
			}
			cum += s.Buckets[len(s.Upper)]
			writeExemplarSample(&b, s.Name+"_bucket", s.LabelNames, s.LabelValues,
				"+Inf", float64(cum), s.Exemplars[len(s.Upper)])
			writeSample(&b, s.Name+"_sum", s.LabelNames, s.LabelValues, "", "", s.Sum)
			writeSample(&b, s.Name+"_count", s.LabelNames, s.LabelValues, "", "", float64(s.Count))
		}
	}
	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeExemplarSample renders one _bucket line, appending the OpenMetrics
// exemplar payload when the bucket has one.
func writeExemplarSample(b *strings.Builder, name string, labelNames, labelValues []string, le string, v float64, ex *Exemplar) {
	if ex == nil {
		writeSample(b, name, labelNames, labelValues, "le", le, v)
		return
	}
	var line strings.Builder
	writeSample(&line, name, labelNames, labelValues, "le", le, v)
	s := strings.TrimSuffix(line.String(), "\n")
	fmt.Fprintf(b, "%s # {trace_id=%q} %s %.3f\n",
		s, ex.TraceID, formatFloat(ex.Value), float64(ex.UnixNano)/1e9)
}

// openMetricsContentType is the scrape content type of the OpenMetrics text
// format; textContentType is the classic 0.0.4 exposition.
const (
	openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"
	textContentType        = "text/plain; version=0.0.4; charset=utf-8"
)

// MetricsHandler serves the registry as a /metrics endpoint with correct
// content negotiation: scrapers that accept application/openmetrics-text get
// the OpenMetrics rendering (which carries histogram exemplars), everything
// else gets the classic text format under its proper versioned content type.
// A nil registry serves Default(). Both the obs debug server and the serving
// HTTP API mount this handler, so every process exposes metrics identically.
func MetricsHandler(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			reg = Default()
		}
		if acceptsOpenMetrics(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", openMetricsContentType)
			_ = reg.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", textContentType)
		_ = reg.WritePrometheus(w)
	}
}

// acceptsOpenMetrics reports whether an Accept header asks for the
// OpenMetrics text format (parameters like version are ignored).
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) == "application/openmetrics-text" {
			return true
		}
	}
	return false
}
