package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The anomaly watchdog evaluates threshold rules over the flight recorder's
// epoch records: a stalled run (no epoch completing within a bound), an
// epoch-time regression against the trailing median, and a straggler index
// above bound. Alerts go three ways — a structured log line, the
// ns_watchdog_alerts_total{rule} counter, and the /healthwatch endpoint —
// so both a human tailing logs and a scraper polling the debug server see
// the same events.

// Watchdog rule names, used as the Alert.Rule value and the counter label.
const (
	RuleStall     = "stall"
	RuleRegress   = "regress"
	RuleStraggler = "straggler"
	// RuleSLOP99 and RuleSLOHitRate are the serving SLO burn-rate rules,
	// evaluated against the metric history (EvaluateSLO) rather than the
	// epoch stream.
	RuleSLOP99     = "slo_p99"
	RuleSLOHitRate = "slo_hitrate"
)

// Serving metric names the SLO rules read from the history. They must match
// what internal/serve registers.
const (
	serveLatencyMetric     = "ns_serve_latency_seconds"
	serveCacheHitsMetric   = "ns_serve_cache_hits_total"
	serveCacheMissesMetric = "ns_serve_cache_misses_total"
)

// WatchRules is the threshold-rule set of a Watchdog. Zero-valued rules are
// disabled, so the zero WatchRules watches nothing.
type WatchRules struct {
	// Stall fires when no epoch completes for longer than this.
	Stall time.Duration `json:"stall_seconds,omitempty"`
	// Regress fires when an epoch's wall time exceeds Regress times the
	// trailing median (needs at least watchMinHistory prior epochs).
	Regress float64 `json:"regress,omitempty"`
	// Straggler fires when an epoch's straggler index (max/mean per-worker
	// busy time) exceeds this bound on a multi-worker run.
	Straggler float64 `json:"straggler,omitempty"`
	// Window is the trailing-median window in epochs; 0 means
	// defaultWatchWindow.
	Window int `json:"window,omitempty"`
	// SLOP99 is the serving latency SLO target: the promise that at most 1%
	// of requests over the trailing SLOWindow exceed it. EvaluateSLO fires
	// when the measured tail share burns the budget faster than allowed
	// (burn rate > 1, i.e. the windowed p99 is above target).
	SLOP99 time.Duration `json:"slo_p99_seconds,omitempty"`
	// SLOWindow is the burn-rate evaluation window over the metric history;
	// 0 means defaultSLOWindow.
	SLOWindow time.Duration `json:"slo_window_seconds,omitempty"`
	// HitRate fires when the embedding cache's windowed hit rate
	// (delta hits / delta lookups over SLOWindow) drops below this floor.
	HitRate float64 `json:"hitrate,omitempty"`
}

const (
	defaultWatchWindow = 8
	// watchMinHistory is the minimum number of trailing epochs before the
	// regression rule can fire — a median of one or two samples is noise.
	watchMinHistory = 3
	// watchAlertKeep bounds retained alerts for /healthwatch.
	watchAlertKeep = 256
	// defaultSLOWindow is the burn-rate window when SLOWindow is unset.
	defaultSLOWindow = 30 * time.Second
	// sloTailShare is the tolerated tail: "p99 <= target" promises at most
	// 1% of requests above target, so burn rate = measured share / 1%.
	sloTailShare = 0.01
	// sloMinRequests / sloMinLookups gate SLO rules on enough windowed
	// traffic that the share is signal, not one unlucky request.
	sloMinRequests = 20
	sloMinLookups  = 10
)

// DefaultWatchRules is the rule set selected by the spec "default":
// conservative bounds that stay quiet on a healthy run.
func DefaultWatchRules() WatchRules {
	return WatchRules{Stall: 30 * time.Second, Regress: 1.5, Straggler: 3.0, Window: defaultWatchWindow}
}

// MarshalJSON renders Stall in seconds — the struct tag promises
// stall_seconds, and a raw time.Duration would marshal as nanoseconds.
func (r WatchRules) MarshalJSON() ([]byte, error) {
	type wire struct {
		StallSeconds     float64 `json:"stall_seconds,omitempty"`
		Regress          float64 `json:"regress,omitempty"`
		Straggler        float64 `json:"straggler,omitempty"`
		Window           int     `json:"window,omitempty"`
		SLOP99Seconds    float64 `json:"slo_p99_seconds,omitempty"`
		SLOWindowSeconds float64 `json:"slo_window_seconds,omitempty"`
		HitRate          float64 `json:"hitrate,omitempty"`
	}
	return json.Marshal(wire{r.Stall.Seconds(), r.Regress, r.Straggler, r.Window,
		r.SLOP99.Seconds(), r.SLOWindow.Seconds(), r.HitRate})
}

// UnmarshalJSON reads the seconds-valued wire form MarshalJSON writes, so a
// HealthReport round-trips through JSON (nstat decodes /healthwatch).
func (r *WatchRules) UnmarshalJSON(data []byte) error {
	var w struct {
		StallSeconds     float64 `json:"stall_seconds"`
		Regress          float64 `json:"regress"`
		Straggler        float64 `json:"straggler"`
		Window           int     `json:"window"`
		SLOP99Seconds    float64 `json:"slo_p99_seconds"`
		SLOWindowSeconds float64 `json:"slo_window_seconds"`
		HitRate          float64 `json:"hitrate"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = WatchRules{
		Stall:     time.Duration(w.StallSeconds * float64(time.Second)),
		Regress:   w.Regress,
		Straggler: w.Straggler,
		Window:    w.Window,
		SLOP99:    time.Duration(w.SLOP99Seconds * float64(time.Second)),
		SLOWindow: time.Duration(w.SLOWindowSeconds * float64(time.Second)),
		HitRate:   w.HitRate,
	}
	return nil
}

// Enabled reports whether any rule is active.
func (r WatchRules) Enabled() bool {
	return r.Stall > 0 || r.Regress > 0 || r.Straggler > 0 || r.SLOP99 > 0 || r.HitRate > 0
}

// window returns the effective trailing-median window.
func (r WatchRules) window() int {
	if r.Window > 0 {
		return r.Window
	}
	return defaultWatchWindow
}

// ParseWatchRules parses a rule spec of comma-separated key=value pairs,
// mirroring the fault-spec grammar:
//
//	stall=30s,regress=1.5,straggler=3.0,window=8
//	slo_p99=250ms,hitrate=0.3,slo_window=30s
//
// Keys: stall (Go duration > 0), regress (factor > 1), straggler (bound > 1),
// window (epochs >= watchMinHistory), slo_p99 (target latency, Go duration
// > 0), slo_window (burn-rate window, Go duration > 0), hitrate (cache
// hit-rate floor in (0,1]). The literal spec "default" selects
// DefaultWatchRules; the empty spec parses to the disabled zero rules.
// Unknown keys and out-of-range values are errors.
func ParseWatchRules(spec string) (WatchRules, error) {
	var r WatchRules
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return r, nil
	}
	if spec == "default" {
		return DefaultWatchRules(), nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return r, fmt.Errorf("obs: watch rule %q: want key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case RuleStall:
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return r, fmt.Errorf("obs: watch rule stall=%q: want a positive duration like 30s", val)
			}
			r.Stall = d
		case RuleRegress:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 1 {
				return r, fmt.Errorf("obs: watch rule regress=%q: want a factor > 1", val)
			}
			r.Regress = f
		case RuleStraggler:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 1 {
				return r, fmt.Errorf("obs: watch rule straggler=%q: want a bound > 1", val)
			}
			r.Straggler = f
		case "window":
			n, err := strconv.Atoi(val)
			if err != nil || n < watchMinHistory {
				return r, fmt.Errorf("obs: watch rule window=%q: want an integer >= %d", val, watchMinHistory)
			}
			r.Window = n
		case RuleSLOP99:
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return r, fmt.Errorf("obs: watch rule slo_p99=%q: want a positive duration like 250ms", val)
			}
			r.SLOP99 = d
		case "slo_window":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return r, fmt.Errorf("obs: watch rule slo_window=%q: want a positive duration like 30s", val)
			}
			r.SLOWindow = d
		case "hitrate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f > 1 {
				return r, fmt.Errorf("obs: watch rule hitrate=%q: want a floor in (0,1]", val)
			}
			r.HitRate = f
		default:
			return r, fmt.Errorf("obs: unknown watch rule %q (want stall, regress, straggler, window, slo_p99, slo_window or hitrate)", key)
		}
	}
	return r, nil
}

// Alert is one fired watchdog rule.
type Alert struct {
	Rule  string `json:"rule"`
	Epoch int    `json:"epoch"`
	// Worker is the implicated worker (straggler rule); -1 when the alert
	// concerns the whole run.
	Worker  int       `json:"worker"`
	Value   float64   `json:"value"`
	Bound   float64   `json:"bound"`
	Message string    `json:"message"`
	At      time.Time `json:"at"`
}

// HealthReport is the /healthwatch payload: overall verdict, liveness info
// and the recent alert history.
type HealthReport struct {
	Healthy bool       `json:"healthy"`
	Rules   WatchRules `json:"rules"`
	// LastEpoch is the most recently observed epoch (-1 before the first).
	LastEpoch int `json:"last_epoch"`
	// SinceLastSeconds is the time since that epoch completed.
	SinceLastSeconds float64 `json:"since_last_seconds"`
	Alerts           []Alert `json:"alerts"`
}

// Watchdog evaluates WatchRules over observed epoch records. All methods are
// safe for concurrent use; a nil *Watchdog is a no-op that reports healthy.
type Watchdog struct {
	rules WatchRules
	reg   *Registry

	mu           sync.Mutex
	log          *Logger
	walls        []float64 // trailing wall times, oldest first, cap window
	alerts       []Alert
	lastEpoch    int
	lastEpochAt  time.Time
	stallAlerted bool
	// sloBreached latches each SLO rule while its breach persists: one alert
	// per episode, re-armed when the window recovers.
	sloBreached map[string]bool
	now         func() time.Time // test hook
}

// NewWatchdog returns a watchdog with the given rules, logging alerts to log
// (nil discards) and counting them in reg (nil skips metrics; the counter is
// registered lazily on first alert, so an idle watchdog adds no series).
func NewWatchdog(rules WatchRules, log *Logger, reg *Registry) *Watchdog {
	return &Watchdog{rules: rules, reg: reg, log: log, lastEpoch: -1, now: time.Now}
}

// SetLogger replaces the alert logger.
func (w *Watchdog) SetLogger(log *Logger) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.log = log
	w.mu.Unlock()
}

// Rules returns the watchdog's rule set.
func (w *Watchdog) Rules() WatchRules {
	if w == nil {
		return WatchRules{}
	}
	return w.rules
}

// ObserveEpoch feeds one completed epoch record to the watchdog and returns
// any alerts it fired. Call once per epoch, in order.
func (w *Watchdog) ObserveEpoch(rec EpochRecord) []Alert {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	now := w.now()
	w.lastEpoch, w.lastEpochAt, w.stallAlerted = rec.Epoch, now, false

	var fired []Alert
	if w.rules.Regress > 0 && len(w.walls) >= watchMinHistory {
		med := median(w.walls)
		if med > 0 && rec.WallSeconds > w.rules.Regress*med {
			fired = append(fired, Alert{
				Rule: RuleRegress, Epoch: rec.Epoch, Worker: -1,
				Value: rec.WallSeconds, Bound: w.rules.Regress * med,
				Message: fmt.Sprintf("epoch %d took %.3fs, %.2fx the trailing median %.3fs",
					rec.Epoch, rec.WallSeconds, rec.WallSeconds/med, med),
				At: now,
			})
		}
	}
	if w.rules.Straggler > 0 && rec.Workers > 1 && rec.StragglerIndex > w.rules.Straggler {
		fired = append(fired, Alert{
			Rule: RuleStraggler, Epoch: rec.Epoch, Worker: rec.SlowestWorker,
			Value: rec.StragglerIndex, Bound: w.rules.Straggler,
			Message: fmt.Sprintf("epoch %d straggler index %.2f exceeds %.2f; slowest worker %d",
				rec.Epoch, rec.StragglerIndex, w.rules.Straggler, rec.SlowestWorker),
			At: now,
		})
	}
	// The trailing window excludes the epoch being judged, so one slow epoch
	// cannot mask itself by dragging the median up.
	w.walls = append(w.walls, rec.WallSeconds)
	if max := w.rules.window(); len(w.walls) > max {
		w.walls = w.walls[len(w.walls)-max:]
	}
	w.record(fired)
	log := w.log
	w.mu.Unlock()
	emit(log, fired)
	return fired
}

// Health evaluates the stall rule lazily and returns the current report —
// the /healthwatch payload. Healthy means no alert has fired in the current
// epoch-observation window and the run is not stalled.
func (w *Watchdog) Health() HealthReport {
	if w == nil {
		return HealthReport{Healthy: true, LastEpoch: -1}
	}
	return w.healthAt(w.now())
}

func (w *Watchdog) healthAt(now time.Time) HealthReport {
	w.mu.Lock()
	var fired []Alert
	since := time.Duration(0)
	if !w.lastEpochAt.IsZero() {
		since = now.Sub(w.lastEpochAt)
	}
	stalled := w.rules.Stall > 0 && !w.lastEpochAt.IsZero() && since > w.rules.Stall
	if stalled && !w.stallAlerted {
		w.stallAlerted = true // latch: one alert per stall, reset on progress
		fired = append(fired, Alert{
			Rule: RuleStall, Epoch: w.lastEpoch, Worker: -1,
			Value: since.Seconds(), Bound: w.rules.Stall.Seconds(),
			Message: fmt.Sprintf("no epoch completed for %.1fs (bound %.1fs); last epoch %d",
				since.Seconds(), w.rules.Stall.Seconds(), w.lastEpoch),
			At: now,
		})
		w.record(fired)
	}
	rep := HealthReport{
		Healthy:          !stalled && len(w.alerts) == 0,
		Rules:            w.rules,
		LastEpoch:        w.lastEpoch,
		SinceLastSeconds: since.Seconds(),
		// Non-nil so an alert-free report serialises as [], not null.
		Alerts: append(make([]Alert, 0, len(w.alerts)), w.alerts...),
	}
	log := w.log
	w.mu.Unlock()
	emit(log, fired)
	return rep
}

// record appends fired alerts to the retained history and bumps the metric.
// Caller holds w.mu.
func (w *Watchdog) record(fired []Alert) {
	for _, a := range fired {
		if len(w.alerts) >= watchAlertKeep {
			copy(w.alerts, w.alerts[1:])
			w.alerts = w.alerts[:len(w.alerts)-1]
		}
		w.alerts = append(w.alerts, a)
		if w.reg != nil {
			w.reg.CounterVec("ns_watchdog_alerts_total",
				"Watchdog alerts fired, by rule.", "rule").With(a.Rule).Inc()
		}
	}
}

// EvaluateSLO runs the serving SLO burn-rate rules against the metric
// history and returns any alerts fired. Unlike the instant threshold rules,
// these read windowed deltas: the latency rule computes the share of
// requests above the SLOP99 target from the bucket increase over SLOWindow
// (burn rate = share / 1%, fires above 1), the hit-rate rule the windowed
// delta hit rate against the HitRate floor. Each rule is latched per breach
// episode — it re-arms only after a window that meets the SLO — so a
// sustained breach produces one alert, not one per sample. Intended as the
// history's on-sample hook:
//
//	hist.SetOnSample(func() { watch.EvaluateSLO(hist) })
func (w *Watchdog) EvaluateSLO(h *History) []Alert {
	if w == nil || h == nil {
		return nil
	}
	r := w.rules
	if r.SLOP99 <= 0 && r.HitRate <= 0 {
		return nil
	}
	window := r.SLOWindow
	if window <= 0 {
		window = defaultSLOWindow
	}
	w.mu.Lock()
	now := w.now()
	if w.sloBreached == nil {
		w.sloBreached = make(map[string]bool)
	}
	var fired []Alert
	if r.SLOP99 > 0 {
		if first, last, dt, ok := h.windowEnds(serveLatencyMetric, window); ok {
			delta, sum, cnt := histogramDelta(&first, &last)
			if cnt >= sloMinRequests {
				over := countAboveBuckets(last.Upper, delta, r.SLOP99.Seconds())
				share := over / float64(cnt)
				burn := share / sloTailShare
				if burn > 1 {
					if !w.sloBreached[RuleSLOP99] {
						w.sloBreached[RuleSLOP99] = true
						p99 := bucketQuantile(last.Upper, delta, sum, 0.99)
						fired = append(fired, Alert{
							Rule: RuleSLOP99, Epoch: -1, Worker: -1,
							Value: burn, Bound: 1,
							Message: fmt.Sprintf(
								"serving p99 %.2fms over %.0fs window exceeds SLO %.2fms: %.1f%% of %d requests above target (burn %.1fx)",
								p99*1e3, dt.Seconds(), r.SLOP99.Seconds()*1e3,
								share*100, cnt, burn),
							At: now,
						})
					}
				} else {
					w.sloBreached[RuleSLOP99] = false
				}
			}
		}
	}
	if r.HitRate > 0 {
		hFirst, hLast, _, okH := h.windowEnds(serveCacheHitsMetric, window)
		mFirst, mLast, _, okM := h.windowEnds(serveCacheMissesMetric, window)
		if okH && okM {
			hits := counterIncrease(hFirst.Value, hLast.Value)
			misses := counterIncrease(mFirst.Value, mLast.Value)
			if lookups := hits + misses; lookups >= sloMinLookups {
				rate := hits / lookups
				if rate < r.HitRate {
					if !w.sloBreached[RuleSLOHitRate] {
						w.sloBreached[RuleSLOHitRate] = true
						fired = append(fired, Alert{
							Rule: RuleSLOHitRate, Epoch: -1, Worker: -1,
							Value: rate, Bound: r.HitRate,
							Message: fmt.Sprintf(
								"cache hit rate %.1f%% over %.0fs window below floor %.1f%% (%d lookups)",
								rate*100, window.Seconds(), r.HitRate*100, int64(lookups)),
							At: now,
						})
					}
				} else {
					w.sloBreached[RuleSLOHitRate] = false
				}
			}
		}
	}
	w.record(fired)
	log := w.log
	w.mu.Unlock()
	emit(log, fired)
	return fired
}

// countAboveBuckets estimates how many observations exceed t from per-bucket
// (non-cumulative) counts, interpolating linearly inside the bucket that
// contains t. Observations in the +Inf bucket all count as above any finite
// t at or past the top bound — they are only known to exceed it.
func countAboveBuckets(upper []float64, counts []uint64, t float64) float64 {
	var above float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = upper[i-1]
		}
		switch {
		case i == len(upper) || lower >= t:
			above += float64(c)
		case upper[i] <= t:
			// whole bucket at or below the target
		default:
			above += float64(c) * (upper[i] - t) / (upper[i] - lower)
		}
	}
	return above
}

// emit logs fired alerts outside w.mu (the logger takes its own lock).
func emit(log *Logger, fired []Alert) {
	for _, a := range fired {
		log.Warn("watchdog alert", "rule", a.Rule, "epoch", a.Epoch,
			"worker", a.Worker, "value", a.Value, "bound", a.Bound, "detail", a.Message)
	}
}

// median of a non-empty slice (input not modified).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
