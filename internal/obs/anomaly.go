package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The anomaly watchdog evaluates threshold rules over the flight recorder's
// epoch records: a stalled run (no epoch completing within a bound), an
// epoch-time regression against the trailing median, and a straggler index
// above bound. Alerts go three ways — a structured log line, the
// ns_watchdog_alerts_total{rule} counter, and the /healthwatch endpoint —
// so both a human tailing logs and a scraper polling the debug server see
// the same events.

// Watchdog rule names, used as the Alert.Rule value and the counter label.
const (
	RuleStall     = "stall"
	RuleRegress   = "regress"
	RuleStraggler = "straggler"
)

// WatchRules is the threshold-rule set of a Watchdog. Zero-valued rules are
// disabled, so the zero WatchRules watches nothing.
type WatchRules struct {
	// Stall fires when no epoch completes for longer than this.
	Stall time.Duration `json:"stall_seconds,omitempty"`
	// Regress fires when an epoch's wall time exceeds Regress times the
	// trailing median (needs at least watchMinHistory prior epochs).
	Regress float64 `json:"regress,omitempty"`
	// Straggler fires when an epoch's straggler index (max/mean per-worker
	// busy time) exceeds this bound on a multi-worker run.
	Straggler float64 `json:"straggler,omitempty"`
	// Window is the trailing-median window in epochs; 0 means
	// defaultWatchWindow.
	Window int `json:"window,omitempty"`
}

const (
	defaultWatchWindow = 8
	// watchMinHistory is the minimum number of trailing epochs before the
	// regression rule can fire — a median of one or two samples is noise.
	watchMinHistory = 3
	// watchAlertKeep bounds retained alerts for /healthwatch.
	watchAlertKeep = 256
)

// DefaultWatchRules is the rule set selected by the spec "default":
// conservative bounds that stay quiet on a healthy run.
func DefaultWatchRules() WatchRules {
	return WatchRules{Stall: 30 * time.Second, Regress: 1.5, Straggler: 3.0, Window: defaultWatchWindow}
}

// MarshalJSON renders Stall in seconds — the struct tag promises
// stall_seconds, and a raw time.Duration would marshal as nanoseconds.
func (r WatchRules) MarshalJSON() ([]byte, error) {
	type wire struct {
		StallSeconds float64 `json:"stall_seconds,omitempty"`
		Regress      float64 `json:"regress,omitempty"`
		Straggler    float64 `json:"straggler,omitempty"`
		Window       int     `json:"window,omitempty"`
	}
	return json.Marshal(wire{r.Stall.Seconds(), r.Regress, r.Straggler, r.Window})
}

// Enabled reports whether any rule is active.
func (r WatchRules) Enabled() bool {
	return r.Stall > 0 || r.Regress > 0 || r.Straggler > 0
}

// window returns the effective trailing-median window.
func (r WatchRules) window() int {
	if r.Window > 0 {
		return r.Window
	}
	return defaultWatchWindow
}

// ParseWatchRules parses a rule spec of comma-separated key=value pairs,
// mirroring the fault-spec grammar:
//
//	stall=30s,regress=1.5,straggler=3.0,window=8
//
// Keys: stall (Go duration > 0), regress (factor > 1), straggler (bound > 1),
// window (epochs >= watchMinHistory). The literal spec "default" selects
// DefaultWatchRules; the empty spec parses to the disabled zero rules.
// Unknown keys and out-of-range values are errors.
func ParseWatchRules(spec string) (WatchRules, error) {
	var r WatchRules
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return r, nil
	}
	if spec == "default" {
		return DefaultWatchRules(), nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return r, fmt.Errorf("obs: watch rule %q: want key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case RuleStall:
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return r, fmt.Errorf("obs: watch rule stall=%q: want a positive duration like 30s", val)
			}
			r.Stall = d
		case RuleRegress:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 1 {
				return r, fmt.Errorf("obs: watch rule regress=%q: want a factor > 1", val)
			}
			r.Regress = f
		case RuleStraggler:
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 1 {
				return r, fmt.Errorf("obs: watch rule straggler=%q: want a bound > 1", val)
			}
			r.Straggler = f
		case "window":
			n, err := strconv.Atoi(val)
			if err != nil || n < watchMinHistory {
				return r, fmt.Errorf("obs: watch rule window=%q: want an integer >= %d", val, watchMinHistory)
			}
			r.Window = n
		default:
			return r, fmt.Errorf("obs: unknown watch rule %q (want stall, regress, straggler or window)", key)
		}
	}
	return r, nil
}

// Alert is one fired watchdog rule.
type Alert struct {
	Rule  string `json:"rule"`
	Epoch int    `json:"epoch"`
	// Worker is the implicated worker (straggler rule); -1 when the alert
	// concerns the whole run.
	Worker  int       `json:"worker"`
	Value   float64   `json:"value"`
	Bound   float64   `json:"bound"`
	Message string    `json:"message"`
	At      time.Time `json:"at"`
}

// HealthReport is the /healthwatch payload: overall verdict, liveness info
// and the recent alert history.
type HealthReport struct {
	Healthy bool       `json:"healthy"`
	Rules   WatchRules `json:"rules"`
	// LastEpoch is the most recently observed epoch (-1 before the first).
	LastEpoch int `json:"last_epoch"`
	// SinceLastSeconds is the time since that epoch completed.
	SinceLastSeconds float64 `json:"since_last_seconds"`
	Alerts           []Alert `json:"alerts"`
}

// Watchdog evaluates WatchRules over observed epoch records. All methods are
// safe for concurrent use; a nil *Watchdog is a no-op that reports healthy.
type Watchdog struct {
	rules WatchRules
	reg   *Registry

	mu           sync.Mutex
	log          *Logger
	walls        []float64 // trailing wall times, oldest first, cap window
	alerts       []Alert
	lastEpoch    int
	lastEpochAt  time.Time
	stallAlerted bool
	now          func() time.Time // test hook
}

// NewWatchdog returns a watchdog with the given rules, logging alerts to log
// (nil discards) and counting them in reg (nil skips metrics; the counter is
// registered lazily on first alert, so an idle watchdog adds no series).
func NewWatchdog(rules WatchRules, log *Logger, reg *Registry) *Watchdog {
	return &Watchdog{rules: rules, reg: reg, log: log, lastEpoch: -1, now: time.Now}
}

// SetLogger replaces the alert logger.
func (w *Watchdog) SetLogger(log *Logger) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.log = log
	w.mu.Unlock()
}

// Rules returns the watchdog's rule set.
func (w *Watchdog) Rules() WatchRules {
	if w == nil {
		return WatchRules{}
	}
	return w.rules
}

// ObserveEpoch feeds one completed epoch record to the watchdog and returns
// any alerts it fired. Call once per epoch, in order.
func (w *Watchdog) ObserveEpoch(rec EpochRecord) []Alert {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	now := w.now()
	w.lastEpoch, w.lastEpochAt, w.stallAlerted = rec.Epoch, now, false

	var fired []Alert
	if w.rules.Regress > 0 && len(w.walls) >= watchMinHistory {
		med := median(w.walls)
		if med > 0 && rec.WallSeconds > w.rules.Regress*med {
			fired = append(fired, Alert{
				Rule: RuleRegress, Epoch: rec.Epoch, Worker: -1,
				Value: rec.WallSeconds, Bound: w.rules.Regress * med,
				Message: fmt.Sprintf("epoch %d took %.3fs, %.2fx the trailing median %.3fs",
					rec.Epoch, rec.WallSeconds, rec.WallSeconds/med, med),
				At: now,
			})
		}
	}
	if w.rules.Straggler > 0 && rec.Workers > 1 && rec.StragglerIndex > w.rules.Straggler {
		fired = append(fired, Alert{
			Rule: RuleStraggler, Epoch: rec.Epoch, Worker: rec.SlowestWorker,
			Value: rec.StragglerIndex, Bound: w.rules.Straggler,
			Message: fmt.Sprintf("epoch %d straggler index %.2f exceeds %.2f; slowest worker %d",
				rec.Epoch, rec.StragglerIndex, w.rules.Straggler, rec.SlowestWorker),
			At: now,
		})
	}
	// The trailing window excludes the epoch being judged, so one slow epoch
	// cannot mask itself by dragging the median up.
	w.walls = append(w.walls, rec.WallSeconds)
	if max := w.rules.window(); len(w.walls) > max {
		w.walls = w.walls[len(w.walls)-max:]
	}
	w.record(fired)
	log := w.log
	w.mu.Unlock()
	emit(log, fired)
	return fired
}

// Health evaluates the stall rule lazily and returns the current report —
// the /healthwatch payload. Healthy means no alert has fired in the current
// epoch-observation window and the run is not stalled.
func (w *Watchdog) Health() HealthReport {
	if w == nil {
		return HealthReport{Healthy: true, LastEpoch: -1}
	}
	return w.healthAt(w.now())
}

func (w *Watchdog) healthAt(now time.Time) HealthReport {
	w.mu.Lock()
	var fired []Alert
	since := time.Duration(0)
	if !w.lastEpochAt.IsZero() {
		since = now.Sub(w.lastEpochAt)
	}
	stalled := w.rules.Stall > 0 && !w.lastEpochAt.IsZero() && since > w.rules.Stall
	if stalled && !w.stallAlerted {
		w.stallAlerted = true // latch: one alert per stall, reset on progress
		fired = append(fired, Alert{
			Rule: RuleStall, Epoch: w.lastEpoch, Worker: -1,
			Value: since.Seconds(), Bound: w.rules.Stall.Seconds(),
			Message: fmt.Sprintf("no epoch completed for %.1fs (bound %.1fs); last epoch %d",
				since.Seconds(), w.rules.Stall.Seconds(), w.lastEpoch),
			At: now,
		})
		w.record(fired)
	}
	rep := HealthReport{
		Healthy:          !stalled && len(w.alerts) == 0,
		Rules:            w.rules,
		LastEpoch:        w.lastEpoch,
		SinceLastSeconds: since.Seconds(),
		// Non-nil so an alert-free report serialises as [], not null.
		Alerts: append(make([]Alert, 0, len(w.alerts)), w.alerts...),
	}
	log := w.log
	w.mu.Unlock()
	emit(log, fired)
	return rep
}

// record appends fired alerts to the retained history and bumps the metric.
// Caller holds w.mu.
func (w *Watchdog) record(fired []Alert) {
	for _, a := range fired {
		if len(w.alerts) >= watchAlertKeep {
			copy(w.alerts, w.alerts[1:])
			w.alerts = w.alerts[:len(w.alerts)-1]
		}
		w.alerts = append(w.alerts, a)
		if w.reg != nil {
			w.reg.CounterVec("ns_watchdog_alerts_total",
				"Watchdog alerts fired, by rule.", "rule").With(a.Rule).Inc()
		}
	}
}

// emit logs fired alerts outside w.mu (the logger takes its own lock).
func emit(log *Logger, fired []Alert) {
	for _, a := range fired {
		log.Warn("watchdog alert", "rule", a.Rule, "epoch", a.Epoch,
			"worker", a.Worker, "value", a.Value, "bound", a.Bound, "detail", a.Message)
	}
}

// median of a non-empty slice (input not modified).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
