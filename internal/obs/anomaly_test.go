package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseWatchRules(t *testing.T) {
	cases := []struct {
		spec string
		want WatchRules
	}{
		{"", WatchRules{}},
		{"default", DefaultWatchRules()},
		{"stall=30s,regress=1.5,straggler=3.0,window=8",
			WatchRules{Stall: 30 * time.Second, Regress: 1.5, Straggler: 3.0, Window: 8}},
		{" stall=500ms , window=4 ", WatchRules{Stall: 500 * time.Millisecond, Window: 4}},
		{"regress=2", WatchRules{Regress: 2}},
		{"straggler=1.1,,", WatchRules{Straggler: 1.1}},
	}
	for _, tc := range cases {
		got, err := ParseWatchRules(tc.spec)
		if err != nil {
			t.Fatalf("ParseWatchRules(%q): %v", tc.spec, err)
		}
		if got != tc.want {
			t.Fatalf("ParseWatchRules(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	if DefaultWatchRules().Enabled() != true || (WatchRules{}).Enabled() {
		t.Fatal("Enabled() wrong on defaults or zero rules")
	}
}

func TestParseWatchRulesErrors(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr string
	}{
		{"bogus", "key=value"},
		{"warp=9", "unknown watch rule"},
		{"stall=fast", "positive duration"},
		{"stall=-1s", "positive duration"},
		{"stall=0s", "positive duration"},
		{"regress=1", "factor > 1"},
		{"regress=0.5", "factor > 1"},
		{"regress=nope", "factor > 1"},
		{"straggler=1", "bound > 1"},
		{"straggler=x", "bound > 1"},
		{"window=2", ">= 3"},
		{"window=abc", ">= 3"},
		{"stall=30s,regress=0", "factor > 1"}, // later clause still validated
	}
	for _, tc := range cases {
		_, err := ParseWatchRules(tc.spec)
		if err == nil {
			t.Fatalf("ParseWatchRules(%q) accepted a malformed spec", tc.spec)
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Fatalf("ParseWatchRules(%q) error %q does not mention %q", tc.spec, err, tc.wantErr)
		}
	}
}

func TestWatchdogRegressAgainstTrailingMedian(t *testing.T) {
	reg := NewRegistry()
	w := NewWatchdog(WatchRules{Regress: 1.5, Window: 8}, nil, reg)
	// Three steady epochs build the history; none may alert (no history yet
	// for the first, and steady walls after).
	for e := 1; e <= 3; e++ {
		if fired := w.ObserveEpoch(EpochRecord{Epoch: e, WallSeconds: 0.100}); len(fired) != 0 {
			t.Fatalf("epoch %d fired %v with insufficient history", e, fired)
		}
	}
	// 0.120s vs median 0.100s is 1.2x: below the 1.5x bound.
	if fired := w.ObserveEpoch(EpochRecord{Epoch: 4, WallSeconds: 0.120}); len(fired) != 0 {
		t.Fatalf("epoch 4 fired %v below the bound", fired)
	}
	// 0.200s vs trailing median ~0.100s crosses 1.5x. The slow epoch itself
	// must not be in the window it is judged against.
	fired := w.ObserveEpoch(EpochRecord{Epoch: 5, WallSeconds: 0.200})
	if len(fired) != 1 || fired[0].Rule != RuleRegress || fired[0].Epoch != 5 || fired[0].Worker != -1 {
		t.Fatalf("epoch 5: fired = %+v, want one run-wide regress alert", fired)
	}
	if rep := w.Health(); rep.Healthy || len(rep.Alerts) != 1 {
		t.Fatalf("health after regress: %+v", rep)
	}
	// The alert counter was registered lazily and incremented.
	var dump strings.Builder
	reg.WritePrometheus(&dump)
	if !strings.Contains(dump.String(), `ns_watchdog_alerts_total{rule="regress"} 1`) {
		t.Fatalf("alert counter missing:\n%s", dump.String())
	}
}

func TestWatchdogStragglerNamesSlowestWorker(t *testing.T) {
	w := NewWatchdog(WatchRules{Straggler: 2.0}, nil, nil)
	// Single-worker runs cannot straggle.
	if fired := w.ObserveEpoch(EpochRecord{Epoch: 1, Workers: 1, StragglerIndex: 9, SlowestWorker: 0}); len(fired) != 0 {
		t.Fatalf("single-worker run fired %v", fired)
	}
	if fired := w.ObserveEpoch(EpochRecord{Epoch: 2, Workers: 4, StragglerIndex: 1.3, SlowestWorker: 2}); len(fired) != 0 {
		t.Fatalf("balanced epoch fired %v", fired)
	}
	fired := w.ObserveEpoch(EpochRecord{Epoch: 3, Workers: 4, StragglerIndex: 2.6, SlowestWorker: 2})
	if len(fired) != 1 || fired[0].Rule != RuleStraggler || fired[0].Worker != 2 {
		t.Fatalf("fired = %+v, want one straggler alert naming worker 2", fired)
	}
	if !strings.Contains(fired[0].Message, "worker 2") {
		t.Fatalf("alert message %q does not name the worker", fired[0].Message)
	}
}

func TestWatchdogStallLatchesAndResets(t *testing.T) {
	clock := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	w := NewWatchdog(WatchRules{Stall: 10 * time.Second}, nil, nil)
	w.now = func() time.Time { return clock }

	// Before any epoch there is nothing to stall against.
	if rep := w.healthAt(clock.Add(time.Hour)); !rep.Healthy {
		t.Fatalf("pre-first-epoch health: %+v", rep)
	}
	w.ObserveEpoch(EpochRecord{Epoch: 1, WallSeconds: 0.1})
	if rep := w.healthAt(clock.Add(5 * time.Second)); !rep.Healthy {
		t.Fatalf("5s after an epoch: %+v", rep)
	}
	rep := w.healthAt(clock.Add(15 * time.Second))
	if rep.Healthy || len(rep.Alerts) != 1 || rep.Alerts[0].Rule != RuleStall {
		t.Fatalf("15s stall: %+v", rep)
	}
	// Latched: polling again while still stalled must not multiply alerts.
	rep = w.healthAt(clock.Add(20 * time.Second))
	if len(rep.Alerts) != 1 {
		t.Fatalf("stall alert not latched: %+v", rep.Alerts)
	}
	// Progress resets the latch; a second stall fires a second alert.
	clock = clock.Add(30 * time.Second)
	w.ObserveEpoch(EpochRecord{Epoch: 2, WallSeconds: 0.1})
	rep = w.healthAt(clock.Add(11 * time.Second))
	if len(rep.Alerts) != 2 || rep.Alerts[1].Rule != RuleStall || rep.Alerts[1].Epoch != 2 {
		t.Fatalf("second stall after progress: %+v", rep.Alerts)
	}
}

func TestWatchdogNilIsNoOp(t *testing.T) {
	var w *Watchdog
	if fired := w.ObserveEpoch(EpochRecord{Epoch: 1}); fired != nil {
		t.Fatal("nil watchdog fired")
	}
	if rep := w.Health(); !rep.Healthy || rep.LastEpoch != -1 {
		t.Fatalf("nil watchdog health: %+v", rep)
	}
	w.SetLogger(nil)
	if r := w.Rules(); r.Enabled() {
		t.Fatalf("nil watchdog rules: %+v", r)
	}
}
