package obs

import "runtime/debug"

// RegisterBuildInfo sets the ns_build_info gauge on reg (Default() when nil):
// the conventional constant-1 info metric whose labels identify the running
// binary — module version, VCS commit (short) and Go toolchain — so a scrape
// of any NeutronStar process says what is actually deployed. Values default
// to "unknown" when the binary was built without module or VCS metadata
// (e.g. `go run` from a dirty tree). Safe to call more than once.
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		reg = Default()
	}
	version, commit, goVersion := buildInfo()
	reg.GaugeVec("ns_build_info",
		"Build metadata of the running binary; always 1.",
		"version", "commit", "go_version").With(version, commit, goVersion).Set(1)
}

// buildInfo extracts (version, commit, go-version) from the binary's
// embedded module metadata.
func buildInfo() (version, commit, goVersion string) {
	version, commit, goVersion = "unknown", "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	goVersion = bi.GoVersion
	if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			commit = s.Value[:12]
		}
	}
	return
}
